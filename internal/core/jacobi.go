package core

import (
	"math"

	"edgecache/internal/model"
)

// RunJacobi executes the asynchronous variant the paper leaves as future
// work (§VII): instead of the Gauss-Seidel sweep, every SBS solves its
// sub-problem in the same round against the previous round's aggregate —
// the classic Jacobi/parallel update, which models SBSs that compute
// concurrently on possibly-stale broadcast state.
//
// Because two SBSs can simultaneously claim the same residual demand, the
// raw Jacobi round may violate the no-overserve constraint (4). The BS
// repairs each round: wherever the aggregate exceeds one, every SBS's
// share of that demand is scaled down proportionally (the BS already owns
// the aggregate, so the repair needs no extra information exchange). The
// repaired policy is what the BS broadcasts, evaluates and finally
// returns, so every result is feasible.
//
// Convergence is assessed with the same γ rule as Run; the E9 ablation
// benchmark compares rounds-to-converge and final cost against the
// sequential sweep.
func (c *Coordinator) RunJacobi() (*RunResult, error) {
	inst := c.inst
	x := model.NewCachingPolicy(inst)
	y := model.NewRoutingPolicy(inst)

	// Every per-SBS y_{-n} of a round is computed into one reusable scratch
	// matrix; Jacobi is an ablation, so it keeps the reference
	// AggregateExcept summation rather than the incremental tracker.
	yMinus := inst.NewUFMat()

	res := &RunResult{}
	var best *model.Solution
	prevCost := math.Inf(1)
	for sweep := 0; sweep < c.cfg.MaxSweeps; sweep++ {
		// All SBSs observe the same pre-round policy (stale state).
		next := model.NewRoutingPolicy(inst)
		for n := 0; n < inst.N; n++ {
			y.AggregateExceptInto(inst, n, yMinus)
			sub, err := c.subs[n].Solve(yMinus)
			if err != nil {
				return nil, err
			}
			upload := sub.Routing
			if c.lppm != nil {
				upload, err = c.lppm.PerturbSBS(n, sub.Routing)
				if err != nil {
					return nil, err
				}
			}
			x.SetRow(n, sub.Cache)
			next.SetSBS(n, upload)
		}
		repairOverserve(inst, next)
		y = next

		cost := model.TotalServingCost(inst, y)
		res.History = append(res.History, cost.Total)
		res.Sweeps = sweep + 1
		if best == nil || cost.Total < best.Cost.Total {
			best = &model.Solution{Caching: x.Clone(), Routing: y.Clone(), Cost: cost}
		}
		if cost.Total > 0 && math.Abs(prevCost-cost.Total)/cost.Total <= c.cfg.Gamma {
			res.Converged = true
			prevCost = cost.Total
			break
		}
		prevCost = cost.Total
	}

	if best == nil {
		best = &model.Solution{Caching: x, Routing: y, Cost: model.TotalServingCost(inst, y)}
	}
	res.Solution = best
	return res, nil
}

// repairOverserve rescales routing proportionally wherever the aggregate
// Σ_n y_nuf·l_nu exceeds one, restoring constraint (4). Scaling down never
// violates bandwidth, box or cache constraints.
func repairOverserve(inst *model.Instance, y *model.RoutingPolicy) {
	agg := y.Aggregate(inst)
	for u := 0; u < inst.U; u++ {
		row := agg.Row(u)
		for f := range row {
			if row[f] <= 1+1e-12 {
				continue
			}
			factor := 1 / row[f]
			for n := 0; n < inst.N; n++ {
				if inst.Links[n][u] {
					y.Set(n, u, f, y.At(n, u, f)*factor)
				}
			}
		}
	}
}
