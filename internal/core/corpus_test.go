package core

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCorpusCommitted fails when the coordinator fuzz target loses its
// committed seeds under testdata/fuzz: plain `go test` (short mode
// included) replays them, so they are part of the regression suite.
func TestCorpusCommitted(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzCoordinator"))
	if err != nil || len(entries) == 0 {
		t.Errorf("no committed seed corpus for FuzzCoordinator (err=%v)", err)
	}
}
