package lp

import "math"

const (
	// pivotEps is the smallest pivot magnitude accepted during the ratio
	// test; smaller entries are treated as zero.
	pivotEps = 1e-9
	// costEps is the optimality tolerance on reduced costs.
	costEps = 1e-9
	// feasEps is the tolerance used when checking phase-1 feasibility.
	feasEps = 1e-7
)

// Solve solves the LP relaxation of p (Integer flags are ignored) with a
// dense two-phase primal simplex method. The returned solution carries
// Status Optimal, Infeasible, Unbounded or IterLimit; X and Objective are
// only meaningful for Optimal.
func Solve(p *Problem) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	std, err := toStandardForm(p)
	if err != nil {
		return nil, err
	}
	status := std.run()
	sol := &Solution{Status: status}
	if status != Optimal {
		return sol, nil
	}
	sol.X = std.extract(p)
	sol.Objective = 0
	for j, c := range p.Obj {
		sol.Objective += c * sol.X[j]
	}
	sol.Duals = std.extractDuals(len(p.Cons))
	return sol, nil
}

// column describes how one standard-form column maps back to an original
// variable: x_orig = shift + sign·x_std (plus a paired column for free
// variables, handled by listing two columns for the same variable).
type column struct {
	varIdx int
	sign   float64
	shift  float64
}

// standard is the standard-form tableau: minimize c·z s.t. Az = b, z ≥ 0.
type standard struct {
	m, n    int // rows, structural+slack columns (artificials appended after n)
	nStruct int // structural (transformed-variable) columns
	a       [][]float64
	b       []float64
	c       []float64 // phase-2 costs over the first n columns
	basis   []int
	cols    []column // len nStruct: mapping back to original variables
	nArt    int
	maxIter int

	// rowAux maps each standard row to the auxiliary column (slack,
	// surplus or artificial) whose reduced cost recovers the row's dual,
	// for shadow-price extraction. finalCRow is the phase-2 reduced-cost
	// row at optimality; maximize records the original problem sense.
	rowAux    []auxInfo
	finalCRow []float64
	maximize  bool
}

// auxInfo supports dual recovery for one standard-form row.
type auxInfo struct {
	// col is the auxiliary column index; coef its coefficient in the row
	// (+1 slack/artificial, −1 surplus).
	col  int
	coef float64
	// negated records that the row was sign-flipped to make its RHS
	// non-negative, which flips its dual.
	negated bool
}

// toStandardForm rewrites p into equality standard form with non-negative
// variables: lower bounds are shifted out, upper-bounded-below-unbounded
// variables are mirrored, free variables are split, finite upper bounds
// become extra rows, and slack/surplus columns are appended.
func toStandardForm(p *Problem) (*standard, error) {
	type row struct {
		coef []float64
		rel  Rel
		rhs  float64
	}

	// 1. Transform variables.
	var cols []column
	var objC []float64
	colOf := make([][]int, p.NumVars) // original var -> standard columns
	for j := 0; j < p.NumVars; j++ {
		lo, hi := p.lower(j), p.upper(j)
		obj := p.Obj[j]
		if p.Maximize {
			obj = -obj
		}
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			// Free: x = z+ - z-.
			colOf[j] = []int{len(cols), len(cols) + 1}
			cols = append(cols, column{j, 1, 0}, column{j, -1, 0})
			objC = append(objC, obj, -obj)
		case math.IsInf(lo, -1):
			// (-Inf, hi]: x = hi - z, z ≥ 0.
			colOf[j] = []int{len(cols)}
			cols = append(cols, column{j, -1, hi})
			objC = append(objC, -obj)
		default:
			// [lo, hi]: x = lo + z, z ≥ 0 (hi handled as an extra row).
			colOf[j] = []int{len(cols)}
			cols = append(cols, column{j, 1, lo})
			objC = append(objC, obj)
		}
	}
	nStruct := len(cols)

	// 2. Transform constraints, substituting the variable mapping.
	var rows []row
	addRow := func(coefOrig []float64, rel Rel, rhs float64) {
		coef := make([]float64, nStruct)
		for j, v := range coefOrig {
			if v == 0 {
				continue
			}
			for _, cidx := range colOf[j] {
				coef[cidx] += v * cols[cidx].sign
				rhs -= v * cols[cidx].shift
			}
			// Each shift applies once per original variable; for split free
			// variables both shifts are zero so double-counting is moot, but
			// guard correctness by only shifting through the first column.
			// (Handled above: shifts are zero for the second split column.)
		}
		rows = append(rows, row{coef, rel, rhs})
	}
	for _, c := range p.Cons {
		addRow(c.Coef, c.Rel, c.RHS)
	}
	// 3. Finite upper bounds on shifted variables become rows z ≤ hi-lo.
	for j := 0; j < p.NumVars; j++ {
		lo, hi := p.lower(j), p.upper(j)
		if math.IsInf(lo, -1) || math.IsInf(hi, 1) {
			continue // mirrored or row-free cases need no extra row
		}
		if hi == lo { //edgecache:lint-ignore floateq a variable is fixed only when its declared bounds coincide exactly
			// Fixed variable: z = 0; no row needed since z ≥ 0 and we can
			// force it with an equality row only if some constraint pushes it
			// up. z ≤ 0 with z ≥ 0 pins it; add the row to be safe.
			coef := make([]float64, nStruct)
			coef[colOf[j][0]] = 1
			rows = append(rows, row{coef, EQ, 0})
			continue
		}
		coef := make([]float64, nStruct)
		coef[colOf[j][0]] = 1
		rows = append(rows, row{coef, LE, hi - lo})
	}

	// 4. Normalize RHS signs and add slack/surplus columns.
	m := len(rows)
	negated := make([]bool, m)
	nSlack := 0
	for i := range rows {
		if rows[i].rhs < 0 {
			negated[i] = true
			for j := range rows[i].coef {
				rows[i].coef[j] = -rows[i].coef[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].rel {
			case LE:
				rows[i].rel = GE
			case GE:
				rows[i].rel = LE
			}
		}
		if rows[i].rel != EQ {
			nSlack++
		}
	}
	n := nStruct + nSlack

	std := &standard{
		m:        m,
		n:        n,
		nStruct:  nStruct,
		a:        make([][]float64, m),
		b:        make([]float64, m),
		c:        make([]float64, n),
		basis:    make([]int, m),
		cols:     cols,
		maxIter:  200 * (m + n + 10),
		rowAux:   make([]auxInfo, m),
		maximize: p.Maximize,
	}
	copy(std.c, objC)

	// 5. Assemble tableau; artificials appended per-row as needed.
	slackIdx := nStruct
	var artRows []int
	for i, r := range rows {
		rowVec := make([]float64, n) // artificial columns appended later
		copy(rowVec, r.coef)
		switch r.rel {
		case LE:
			rowVec[slackIdx] = 1
			std.basis[i] = slackIdx
			std.rowAux[i] = auxInfo{col: slackIdx, coef: 1, negated: negated[i]}
			slackIdx++
		case GE:
			rowVec[slackIdx] = -1
			std.rowAux[i] = auxInfo{col: slackIdx, coef: -1, negated: negated[i]}
			slackIdx++
			artRows = append(artRows, i)
		case EQ:
			// Dual recovered from the artificial column (coef +1),
			// assigned below once artificial indices are known.
			std.rowAux[i] = auxInfo{col: -1, coef: 1, negated: negated[i]}
			artRows = append(artRows, i)
		}
		std.a[i] = rowVec
		std.b[i] = r.rhs
	}
	// Append artificial columns.
	std.nArt = len(artRows)
	for k, i := range artRows {
		for r := 0; r < m; r++ {
			ext := 0.0
			if r == i {
				ext = 1
			}
			std.a[r] = append(std.a[r], ext)
		}
		std.basis[i] = n + k
		if std.rowAux[i].col == -1 { // EQ rows use the artificial
			std.rowAux[i].col = n + k
		}
	}
	return std, nil
}
