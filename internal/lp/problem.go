// Package lp is a small, dependency-free linear-programming toolkit: a
// dense two-phase primal simplex solver and a branch-and-bound wrapper for
// mixed-integer programs.
//
// The paper solves its caching and routing sub-problems with PuLP (a Python
// LP front end over CBC). Go has no comparable optimization ecosystem, so
// this package is the reproduction's numerical substrate. It targets the
// modest problem sizes of the edge-caching model (tens to a few hundred
// variables for the cross-validation instances); it uses a dense tableau
// and favors clarity and numerical robustness over sparse performance.
//
// Every specialised solver in internal/core and internal/baseline has a
// property test that checks it against this package on randomized small
// instances, which validates both sides.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int8

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

// String returns the mathematical symbol for the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int8(r))
	}
}

// Constraint is one linear constraint Σ Coef[j]·x[j] Rel RHS. Coef must
// have exactly Problem.NumVars entries.
type Constraint struct {
	Coef []float64
	Rel  Rel
	RHS  float64
}

// Problem is a linear (or mixed-integer) program.
//
//	minimize (or maximize)  Σ Obj[j]·x[j]
//	subject to              Cons
//	                        Lower[j] ≤ x[j] ≤ Upper[j]
//
// Lower defaults to 0 and Upper to +Inf when nil. Lower entries may be
// -Inf (free variables) and Upper entries +Inf. Integer marks variables
// that SolveMILP must drive to integrality; Solve ignores it (LP
// relaxation).
type Problem struct {
	NumVars  int
	Obj      []float64
	Maximize bool
	Cons     []Constraint
	Lower    []float64
	Upper    []float64
	Integer  []bool
}

// NewProblem returns a minimization problem with n variables, bounds
// [0, +Inf) and no constraints.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Obj: make([]float64, n)}
}

// AddConstraint appends Σ coef·x rel rhs. It copies coef.
func (p *Problem) AddConstraint(coef []float64, rel Rel, rhs float64) {
	p.Cons = append(p.Cons, Constraint{Coef: append([]float64(nil), coef...), Rel: rel, RHS: rhs})
}

// SetBounds sets the bounds of variable j, allocating bound slices on first
// use. Use math.Inf for unbounded sides.
func (p *Problem) SetBounds(j int, lo, hi float64) {
	if p.Lower == nil {
		p.Lower = make([]float64, p.NumVars)
	}
	if p.Upper == nil {
		p.Upper = make([]float64, p.NumVars)
		for i := range p.Upper {
			p.Upper[i] = math.Inf(1)
		}
	}
	p.Lower[j] = lo
	p.Upper[j] = hi
}

// MarkInteger requires variable j to be integral under SolveMILP.
func (p *Problem) MarkInteger(j int) {
	if p.Integer == nil {
		p.Integer = make([]bool, p.NumVars)
	}
	p.Integer[j] = true
}

// lower and upper return effective bounds with defaults applied.
func (p *Problem) lower(j int) float64 {
	if p.Lower == nil {
		return 0
	}
	return p.Lower[j]
}

func (p *Problem) upper(j int) float64 {
	if p.Upper == nil {
		return math.Inf(1)
	}
	return p.Upper[j]
}

func (p *Problem) integer(j int) bool {
	return p.Integer != nil && p.Integer[j]
}

// validate checks structural consistency.
func (p *Problem) validate() error {
	if p == nil {
		return errors.New("lp: nil problem")
	}
	if p.NumVars <= 0 {
		return fmt.Errorf("lp: NumVars must be positive, got %d", p.NumVars)
	}
	if len(p.Obj) != p.NumVars {
		return fmt.Errorf("lp: Obj has %d entries, want %d", len(p.Obj), p.NumVars)
	}
	if p.Lower != nil && len(p.Lower) != p.NumVars {
		return fmt.Errorf("lp: Lower has %d entries, want %d", len(p.Lower), p.NumVars)
	}
	if p.Upper != nil && len(p.Upper) != p.NumVars {
		return fmt.Errorf("lp: Upper has %d entries, want %d", len(p.Upper), p.NumVars)
	}
	if p.Integer != nil && len(p.Integer) != p.NumVars {
		return fmt.Errorf("lp: Integer has %d entries, want %d", len(p.Integer), p.NumVars)
	}
	for i, c := range p.Cons {
		if len(c.Coef) != p.NumVars {
			return fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coef), p.NumVars)
		}
		if math.IsNaN(c.RHS) {
			return fmt.Errorf("lp: constraint %d has NaN RHS", i)
		}
		for j, v := range c.Coef {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: constraint %d coefficient %d = %v", i, j, v)
			}
		}
	}
	for j := 0; j < p.NumVars; j++ {
		lo, hi := p.lower(j), p.upper(j)
		if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
			return fmt.Errorf("lp: variable %d has invalid bounds [%v, %v]", j, lo, hi)
		}
		if v := p.Obj[j]; math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: Obj[%d] = %v", j, v)
		}
	}
	return nil
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution.
	Infeasible
	// Unbounded means the objective is unbounded over the feasible region.
	Unbounded
	// IterLimit means the iteration budget was exhausted before
	// convergence; the solution is not trustworthy.
	IterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Duals holds one shadow price per entry of Problem.Cons: the rate of
	// change of the optimal objective per unit increase of that
	// constraint's RHS, in the problem's own sense (so for a maximization
	// a binding ≤ resource constraint has a non-negative dual). Only set
	// by Solve on Optimal; SolveMILP leaves it nil (integer programs have
	// no LP duals). At degenerate optima the shadow price is one-sided
	// and the reported value is the one the final simplex basis defines.
	Duals []float64
}
