package chaos

import (
	"reflect"
	"testing"
	"time"
)

// TestRandomScheduleDeterministic pins the generator contract soak relies
// on: the same config names the same schedule forever.
func TestRandomScheduleDeterministic(t *testing.T) {
	cfg := RandomScheduleConfig{Seed: 42, N: 3}
	a, err := RandomSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different schedules:\n%+v\n%+v", a, b)
	}
	if a.Seed != 42 {
		t.Fatalf("schedule seed %d, want the config seed 42", a.Seed)
	}
}

// TestRandomScheduleAlwaysValid sweeps many seeds and asserts every draw
// validates, passes the spec conflict rules, stays inside the sweep
// budget, pairs every crash with a restart, and round-trips through
// Spec()/ParseSpec — the full set of structural guarantees the generator
// documents.
func TestRandomScheduleAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		cfg := RandomScheduleConfig{Seed: seed, N: 4, MaxSweep: 8, Events: 6, Intensity: 1}
		s, err := RandomSchedule(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(cfg.N); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v", seed, err)
		}
		if err := checkSpecConflicts(s.Events); err != nil {
			t.Fatalf("seed %d: generated schedule conflicts: %v", seed, err)
		}
		crashes := map[int]int{}
		for _, ev := range s.Events {
			if ev.Sweep < 1 || ev.Sweep > cfg.MaxSweep {
				t.Fatalf("seed %d: event %v outside sweep budget [1, %d]", seed, ev, cfg.MaxSweep)
			}
			switch ev.Op {
			case OpCrash, OpBSCrash:
				crashes[ev.SBS]++
			case OpRestart, OpBSRestart:
				crashes[ev.SBS]--
			}
		}
		for sbs, n := range crashes {
			if n != 0 {
				t.Fatalf("seed %d: target %d has %d unpaired crash(es):\n%s", seed, sbs, n, s.Spec())
			}
		}
		rendered := s.Spec()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("seed %d: generated schedule does not re-parse: %v\nspec: %s", seed, err, rendered)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("seed %d: round trip changed generated schedule:\nspec:   %s\nbefore: %+v\nafter:  %+v", seed, rendered, s, again)
		}
	}
}

// TestRandomScheduleWeights checks a single-operation weight vector only
// emits that operation.
func TestRandomScheduleWeights(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		s, err := RandomSchedule(RandomScheduleConfig{
			Seed: seed, N: 3, Events: 5,
			Weights: ScheduleWeights{Crash: 1},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, ev := range s.Events {
			if ev.Op != OpCrash && ev.Op != OpRestart {
				t.Fatalf("seed %d: crash-only weights produced %v", seed, ev)
			}
		}
	}
}

// TestRandomScheduleRejectsBadConfig covers the config validation paths.
func TestRandomScheduleRejectsBadConfig(t *testing.T) {
	cases := []RandomScheduleConfig{
		{Seed: 1, N: 0},
		{Seed: 1, N: 3, Intensity: 1.5},
		{Seed: 1, N: 3, MaxSweep: 1},
		{Seed: 1, N: 3, Weights: ScheduleWeights{Crash: -1, Partition: 1}},
	}
	for _, cfg := range cases {
		if _, err := RandomSchedule(cfg); err == nil {
			t.Errorf("config %+v: expected error", cfg)
		}
	}
}

// TestRandomProcScheduleAlwaysValid is the proc-schedule analogue of
// TestRandomScheduleAlwaysValid: every draw validates against the cluster
// shape, obeys the one-kill/one-spawn-delay-per-target caps, and
// round-trips through Spec()/ParseProcSpec.
func TestRandomProcScheduleAlwaysValid(t *testing.T) {
	cells := []ProcCell{{Name: "cell-0", SBSs: 3}, {Name: "cell-1", SBSs: 2}}
	lookup := func(name string) int {
		for _, c := range cells {
			if c.Name == name {
				return c.SBSs
			}
		}
		return -1
	}
	for seed := int64(0); seed < 200; seed++ {
		cfg := RandomProcScheduleConfig{Seed: seed, Cells: cells, Events: 5}
		s, err := RandomProcSchedule(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(lookup); err != nil {
			t.Fatalf("seed %d: generated proc schedule invalid: %v", seed, err)
		}
		kills := map[string]int{}
		delays := map[string]int{}
		for _, ev := range s.Events {
			switch ev.Op {
			case ProcKill:
				kills[ev.target()]++
			case ProcSpawnDelay:
				delays[ev.target()]++
			}
		}
		for target, n := range kills {
			if n > 1 {
				t.Fatalf("seed %d: target %s killed %d times", seed, target, n)
			}
		}
		for target, n := range delays {
			if n > 1 {
				t.Fatalf("seed %d: target %s has %d spawn delays", seed, target, n)
			}
		}
		rendered := s.Spec()
		again, err := ParseProcSpec(rendered)
		if err != nil {
			t.Fatalf("seed %d: generated proc schedule does not re-parse: %v\nspec: %s", seed, err, rendered)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("seed %d: round trip changed generated proc schedule:\nspec: %s", seed, rendered)
		}
	}
}

// TestRandomProcScheduleStopBudget checks stop windows respect MaxStop.
func TestRandomProcScheduleStopBudget(t *testing.T) {
	maxStop := 60 * time.Millisecond
	for seed := int64(0); seed < 50; seed++ {
		s, err := RandomProcSchedule(RandomProcScheduleConfig{
			Seed:    seed,
			Cells:   []ProcCell{{Name: "c", SBSs: 2}},
			Events:  6,
			MaxStop: maxStop,
			Weights: ProcWeights{Stop: 1},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, ev := range s.Events {
			if ev.Op != ProcStop {
				t.Fatalf("seed %d: stop-only weights produced %v", seed, ev)
			}
			if ev.Delay <= 0 || ev.Delay > maxStop {
				t.Fatalf("seed %d: stop delay %v outside (0, %v]", seed, ev.Delay, maxStop)
			}
		}
	}
}
