package transport

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTCPSendToDeadPeerErrors: once the peer dies and its port stops
// listening, Send must surface an error after the redial attempts are
// exhausted rather than pretending delivery succeeded forever.
func TestTCPSendToDeadPeerErrors(t *testing.T) {
	ctx := testCtx(t)
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SetRedialPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: -1}); err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("b", b.Addr())
	if err := a.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// A write into the half-dead cached connection may succeed locally
	// before the RST lands; keep sending until the failure surfaces.
	var sendErr error
	for attempt := 0; attempt < 100 && sendErr == nil; attempt++ {
		sendErr = a.Send(ctx, "b", Message{Type: MsgDone})
		time.Sleep(5 * time.Millisecond)
	}
	if sendErr == nil {
		t.Fatal("Send to a dead peer never returned an error")
	}
}

// TestTCPSendRecoversAfterRedial: after the peer restarts on the same
// address, the very next Send call must succeed by redialing inside the
// call (backoff rides out the stale cached connection).
func TestTCPSendRecoversAfterRedial(t *testing.T) {
	ctx := testCtx(t)
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	a.AddPeer("b", addr)
	if err := a.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewTCPEndpoint("b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	// Sends may lose a message into the stale socket buffer, but with the
	// restarted listener up, redial-with-backoff must deliver promptly.
	received := make(chan struct{})
	go func() {
		if _, err := b2.Recv(ctx); err == nil {
			close(received)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := a.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
			t.Fatalf("Send did not recover after peer restart: %v", err)
		}
		select {
		case <-received:
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
	t.Fatal("restarted peer never received a message")
}

// TestTCPCloseDuringInflightSend: closing the endpoint while Sends are
// mid-retry must not deadlock — every Send returns promptly. Run under
// -race (verify.sh does).
func TestTCPCloseDuringInflightSend(t *testing.T) {
	ctx := testCtx(t)
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetRedialPolicy(RetryPolicy{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, Jitter: -1}); err != nil {
		t.Fatal(err)
	}
	// The peer dies immediately, so Sends sit in the redial loop.
	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("b", b.Addr())
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := a.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Send deadlocked across Close")
	}
	// A send on the closed endpoint fails fast.
	if err := a.Send(context.Background(), "b", Message{Type: MsgDone}); err == nil {
		t.Error("Send on closed endpoint succeeded")
	}
}
