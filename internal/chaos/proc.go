package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ProcOp enumerates the process-level fault operations the cluster
// supervisor can inject against real OS processes. They mirror the
// in-process bscrash/bsrestart semantics: a kill is an OpBSCrash whose
// recovery is the supervisor's restart-from-checkpoint path, a stop/cont
// pair is a freeze that protocol timeouts (and, if it lasts too long, the
// heartbeat deadline) observe, and a spawn delay exercises the late-join
// path of the protocol.
type ProcOp int

// Process fault operations.
const (
	// ProcKill SIGKILLs the target process when the cell's protocol time
	// reaches the trigger sweep. The supervisor's ordinary crash/restart
	// machinery owns recovery (restart budget, backoff, checkpoint resume).
	ProcKill ProcOp = iota + 1
	// ProcStop SIGSTOPs the target at the trigger sweep and schedules the
	// matching SIGCONT Delay later (wall-clock: a frozen process has no
	// protocol time to key the resume on).
	ProcStop
	// ProcCont resumes a stopped target. Generated internally from
	// ProcStop's Delay; specs never name it directly.
	ProcCont
	// ProcSpawnDelay delays every (re)spawn of the target by Delay. It is
	// a launch attribute, not a protocol-time event: the initial spawn and
	// every supervised restart of the target wait Delay first.
	ProcSpawnDelay
)

// String names the operation.
func (o ProcOp) String() string {
	switch o {
	case ProcKill:
		return "kill"
	case ProcStop:
		return "stop"
	case ProcCont:
		return "cont"
	case ProcSpawnDelay:
		return "spawn-delay"
	default:
		return fmt.Sprintf("ProcOp(%d)", int(o))
	}
}

// ProcEvent is one scheduled process fault. Protocol time is per cell: the
// supervisor fires the event when the cell's BS first reports a sweep at
// or past Sweep (via its heartbeat stream), so the same schedule replays
// at the same protocol points across runs.
type ProcEvent struct {
	// Cell names the target cell (ClusterSpec cell name).
	Cell string
	// SBS is the target SBS index within the cell; -1 targets the
	// cell's BS process.
	SBS int
	// Op selects the fault operation.
	Op ProcOp
	// Sweep is the protocol-time trigger (ignored for ProcSpawnDelay,
	// which is a launch attribute).
	Sweep int
	// Delay is the stop duration (ProcStop), or the spawn delay
	// (ProcSpawnDelay).
	Delay time.Duration
}

// String renders the event for logs and reports.
func (e ProcEvent) String() string {
	target := e.Cell
	if e.SBS >= 0 {
		target = fmt.Sprintf("%s.%d", e.Cell, e.SBS)
	}
	switch e.Op {
	case ProcSpawnDelay:
		return fmt.Sprintf("%s %s by %v", e.Op, target, e.Delay)
	case ProcStop:
		return fmt.Sprintf("%s %s @ sweep %d for %v", e.Op, target, e.Sweep, e.Delay)
	default:
		return fmt.Sprintf("%s %s @ sweep %d", e.Op, target, e.Sweep)
	}
}

// target keys conflict detection and supervisor dispatch.
func (e ProcEvent) target() string {
	if e.SBS < 0 {
		return e.Cell
	}
	return fmt.Sprintf("%s.%d", e.Cell, e.SBS)
}

// ProcSchedule is a deterministic process-fault plan for one cluster run.
type ProcSchedule struct {
	Events []ProcEvent
}

// Validate checks the schedule against the cluster's shape: cells resolves
// a cell name to its SBS count (negative means unknown).
func (s ProcSchedule) Validate(cells func(name string) int) error {
	for i, ev := range s.Events {
		n := cells(ev.Cell)
		if n < 0 {
			return fmt.Errorf("chaos: proc event %d (%s): unknown cell %q", i, ev, ev.Cell)
		}
		if ev.SBS < -1 || ev.SBS >= n {
			return fmt.Errorf("chaos: proc event %d (%s): SBS %d out of range (cell has %d, -1 = BS)", i, ev, ev.SBS, n)
		}
		switch ev.Op {
		case ProcKill:
			if ev.Sweep < 0 {
				return fmt.Errorf("chaos: proc event %d (%s): negative trigger sweep", i, ev)
			}
		case ProcStop:
			if ev.Sweep < 0 {
				return fmt.Errorf("chaos: proc event %d (%s): negative trigger sweep", i, ev)
			}
			if ev.Delay <= 0 {
				return fmt.Errorf("chaos: proc event %d (%s): stop needs a positive resume delay", i, ev)
			}
		case ProcSpawnDelay:
			if ev.Delay <= 0 {
				return fmt.Errorf("chaos: proc event %d (%s): spawn delay must be positive", i, ev)
			}
		case ProcCont:
			return fmt.Errorf("chaos: proc event %d (%s): cont is generated from stop's delay, never scheduled directly", i, ev)
		default:
			return fmt.Errorf("chaos: proc event %d: unknown op %v", i, ev.Op)
		}
	}
	return nil
}

// ParseProcSpec builds a ProcSchedule from a compact comma-separated spec
// string, the format accepted by edgesim's -proc-chaos flag:
//
//	kill=CELL@W         SIGKILL cell CELL's BS when its sweep reaches W
//	kill=CELL.S@W       SIGKILL SBS S of cell CELL at cell sweep W
//	stop=CELL@W+DUR     SIGSTOP the BS at sweep W, SIGCONT after DUR
//	stop=CELL.S@W+DUR   same for SBS S of CELL
//	spawndelay=CELL@DUR       delay every (re)spawn of the BS by DUR
//	spawndelay=CELL.S@DUR     same for SBS S of CELL
//
// DUR is a Go duration (e.g. 250ms). Example: "kill=cell-1@2" kills cell-1's
// coordinator mid-run and lets the supervisor restart it from its newest
// checkpoint; "stop=cell-0@1+100ms,kill=cell-0.2@3" freezes cell-0's BS for
// 100ms at sweep 1 and kills its SBS 2 at sweep 3.
//
// Like ParseSpec, duplicate or time-unordered events for the same target
// are rejected with a *SpecConflictError naming both directives.
func ParseProcSpec(spec string) (ProcSchedule, error) {
	var s ProcSchedule
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return ProcSchedule{}, specItemError(spec, item, errors.New("want key=value"))
		}
		var (
			ev  ProcEvent
			err error
		)
		switch key {
		case "kill":
			ev, err = parseProcTarget(val, false)
			ev.Op = ProcKill
		case "stop":
			ev, err = parseProcTarget(val, true)
			ev.Op = ProcStop
		case "spawndelay":
			ev, err = parseSpawnDelay(val)
		default:
			return ProcSchedule{}, specItemError(spec, item, errors.New("unknown proc directive"))
		}
		if err != nil {
			return ProcSchedule{}, specItemError(spec, item, err)
		}
		s.Events = append(s.Events, ev)
	}
	if err := checkProcConflicts(s.Events); err != nil {
		var conflict *SpecConflictError
		if errors.As(err, &conflict) {
			conflict.Spec = spec
		}
		return ProcSchedule{}, err
	}
	return s, nil
}

// parseProcTarget parses "CELL@W" / "CELL.S@W" (withDur adds "+DUR").
func parseProcTarget(val string, withDur bool) (ProcEvent, error) {
	target, at, ok := strings.Cut(val, "@")
	if !ok {
		want := "CELL[.S]@SWEEP"
		if withDur {
			want += "+DUR"
		}
		return ProcEvent{}, fmt.Errorf("want %s, got %q", want, val)
	}
	ev, err := splitProcTarget(target)
	if err != nil {
		return ProcEvent{}, err
	}
	when := at
	if withDur {
		sweepStr, durStr, hasDur := strings.Cut(at, "+")
		if !hasDur {
			return ProcEvent{}, fmt.Errorf("stop needs a resume delay: want SWEEP+DUR, got %q", at)
		}
		when = sweepStr
		if ev.Delay, err = time.ParseDuration(durStr); err != nil {
			return ProcEvent{}, err
		}
		if ev.Delay <= 0 {
			return ProcEvent{}, fmt.Errorf("duration must be positive, got %v", ev.Delay)
		}
	}
	if ev.Sweep, err = strconv.Atoi(when); err != nil {
		return ProcEvent{}, err
	}
	if ev.Sweep < 0 {
		return ProcEvent{}, fmt.Errorf("negative trigger sweep %d", ev.Sweep)
	}
	return ev, nil
}

// parseSpawnDelay parses "CELL@DUR" / "CELL.S@DUR".
func parseSpawnDelay(val string) (ProcEvent, error) {
	target, durStr, ok := strings.Cut(val, "@")
	if !ok {
		return ProcEvent{}, fmt.Errorf("want CELL[.S]@DUR, got %q", val)
	}
	ev, err := splitProcTarget(target)
	if err != nil {
		return ProcEvent{}, err
	}
	ev.Op = ProcSpawnDelay
	if ev.Delay, err = time.ParseDuration(durStr); err != nil {
		return ProcEvent{}, err
	}
	if ev.Delay <= 0 {
		return ProcEvent{}, fmt.Errorf("duration must be positive, got %v", ev.Delay)
	}
	return ev, nil
}

// splitProcTarget parses "CELL" or "CELL.S" into cell name and SBS index
// (-1 for the BS).
func splitProcTarget(target string) (ProcEvent, error) {
	ev := ProcEvent{SBS: -1}
	cell, idx, hasIdx := strings.Cut(target, ".")
	if cell == "" {
		return ProcEvent{}, fmt.Errorf("empty cell name in target %q", target)
	}
	ev.Cell = cell
	if hasIdx {
		n, err := strconv.Atoi(idx)
		if err != nil {
			return ProcEvent{}, fmt.Errorf("SBS index in target %q: %w", target, err)
		}
		if n < 0 {
			return ProcEvent{}, fmt.Errorf("negative SBS index in target %q", target)
		}
		ev.SBS = n
	}
	return ev, nil
}

// checkProcConflicts enforces the same per-target discipline as ParseSpec:
// protocol-time events for one target must be written in strictly
// increasing sweep order, and at most one spawn delay may name a target.
func checkProcConflicts(events []ProcEvent) error {
	lastTimed := map[string]ProcEvent{}
	spawn := map[string]ProcEvent{}
	for _, ev := range events {
		key := ev.target()
		if ev.Op == ProcSpawnDelay {
			if prev, ok := spawn[key]; ok {
				return &SpecConflictError{Prev: prev, Next: ev, Duplicate: true}
			}
			spawn[key] = ev
			continue
		}
		if prev, ok := lastTimed[key]; ok {
			if ev.Sweep == prev.Sweep {
				return &SpecConflictError{Prev: prev, Next: ev, Duplicate: true}
			}
			if ev.Sweep < prev.Sweep {
				return &SpecConflictError{Prev: prev, Next: ev}
			}
		}
		lastTimed[key] = ev
	}
	return nil
}
