package experiments

import (
	"fmt"
	"math/rand"

	"edgecache/internal/baseline"
	"edgecache/internal/core"
	"edgecache/internal/metrics"
	"edgecache/internal/model"
	"edgecache/internal/stats"
)

// Harness runs the figure experiments: one scenario family, a seed set to
// average over, and the algorithm configuration shared by every run.
type Harness struct {
	// Base is the scenario template; sweeps override single fields.
	Base Scenario
	// Seeds are the scenario seeds averaged per data point.
	Seeds []int64
	// Sub configures the per-SBS solver.
	Sub core.SubproblemConfig
	// Delta is LPPM's Laplace component factor δ (paper: 0.5).
	Delta float64
	// Epsilon is the privacy budget for the non-Fig. 3 experiments
	// (paper: 0.1).
	Epsilon float64
}

// DefaultHarness mirrors the paper's settings with three seeds.
func DefaultHarness() Harness {
	return Harness{
		Base:    DefaultScenario(),
		Seeds:   []int64{1, 2, 3},
		Sub:     core.DefaultSubproblemConfig(),
		Delta:   0.5,
		Epsilon: 0.1,
	}
}

// point is the cost triple of one experiment point.
type point struct {
	lppm, optimum, lrfu float64
}

// seedRun holds the ε-independent arms for one instance: the non-private
// Algorithm 1 result ("Optimum" in the paper's figures) and the LRFU
// online replay. LPPM is evaluated per ε on top.
type seedRun struct {
	inst    *model.Instance
	seed    int64
	optimum float64
	lrfu    float64
}

// lppmMaxSweeps bounds the LPPM runs: under noise the γ stop rule rarely
// fires (every sweep redraws noise), and the cost trajectory flattens
// within a handful of sweeps (experiment E8).
const lppmMaxSweeps = 12

// prepareSeed builds the instance and runs the ε-independent arms. The
// Optimum arm is a single fixed-order run of Algorithm 1, exactly as the
// paper's figures use it ("the distributed algorithm (Algorithm 1) which
// is the optimal solution of the problem", §V-A). Because the coupling
// constraint (4) makes the sweep order matter (DESIGN.md §4), a noisy LPPM
// run can very occasionally land marginally below this reference; the
// restart extension that removes the order dependence is measured
// separately by BenchmarkRestartAblation.
func (h Harness) prepareSeed(sc Scenario) (*seedRun, error) {
	inst, err := sc.Build()
	if err != nil {
		return nil, err
	}
	coord, err := core.NewCoordinator(inst, core.Config{Sub: h.Sub})
	if err != nil {
		return nil, err
	}
	opt, err := coord.Run()
	if err != nil {
		return nil, err
	}
	lrfu, err := baseline.PlanLRFU(inst, baseline.LRFUConfig{Seed: sc.Seed * 104729})
	if err != nil {
		return nil, err
	}
	return &seedRun{
		inst:    inst,
		seed:    sc.Seed,
		optimum: opt.Solution.Cost.Total,
		lrfu:    lrfu.OnlineCost.Total,
	}, nil
}

// runLPPM evaluates the privacy arm on a prepared seed.
func (h Harness) runLPPM(run *seedRun, epsilon float64) (float64, error) {
	privCfg := core.Config{
		Sub:       h.Sub,
		MaxSweeps: lppmMaxSweeps,
		Privacy: &core.PrivacyConfig{
			Epsilon: epsilon,
			Delta:   h.Delta,
			Rng:     rand.New(rand.NewSource(run.seed * 7919)),
		},
	}
	privCoord, err := core.NewCoordinator(run.inst, privCfg)
	if err != nil {
		return 0, err
	}
	priv, err := privCoord.Run()
	if err != nil {
		return 0, err
	}
	return priv.Solution.Cost.Total, nil
}

// prepareSeeds builds the per-seed ε-independent arms for one sweep point.
func (h Harness) prepareSeeds(mutate func(*Scenario)) ([]*seedRun, error) {
	var runs []*seedRun
	for _, seed := range h.Seeds {
		sc := h.Base
		sc.Seed = seed
		if mutate != nil {
			mutate(&sc)
		}
		run, err := h.prepareSeed(sc)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// averageAt evaluates the LPPM arm at one ε over prepared seeds and
// averages all three arms.
func (h Harness) averageAt(runs []*seedRun, epsilon float64) (point, error) {
	var lppm, opt, lrfu []float64
	for _, run := range runs {
		cost, err := h.runLPPM(run, epsilon)
		if err != nil {
			return point{}, err
		}
		lppm = append(lppm, cost)
		opt = append(opt, run.optimum)
		lrfu = append(lrfu, run.lrfu)
	}
	return point{
		lppm:    stats.Mean(lppm),
		optimum: stats.Mean(opt),
		lrfu:    stats.Mean(lrfu),
	}, nil
}

// averagePoint prepares seeds and evaluates one (sweep setting, ε) point.
func (h Harness) averagePoint(mutate func(*Scenario), epsilon float64) (point, error) {
	runs, err := h.prepareSeeds(mutate)
	if err != nil {
		return point{}, err
	}
	return h.averageAt(runs, epsilon)
}

// Fig2 tabulates the synthetic trending-video request distribution: the
// view counts of the first 20 videos, the series the paper's Fig. 2 plots.
func (h Harness) Fig2() (*metrics.Table, error) {
	sc := h.Base
	sc.Seed = h.Seeds[0]
	views, err := sc.Views()
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("Fig. 2 — request distribution of trending videos (synthetic trace)",
		"video rank", "views in 30 min")
	limit := 20
	if limit > len(views) {
		limit = len(views)
	}
	for k := 0; k < limit; k++ {
		tb.MustAddRow(k+1, views[k])
	}
	tb.AddNote("synthetic Zipf-shaped substitute for the paper's Dec 18 2018 trace (head %v, tail %v)",
		views[0], views[len(views)-1])
	return tb, nil
}

// Fig3 sweeps the privacy budget ε (paper defaults {0.01, 0.1, 1, 10, 100})
// and reports the mean total serving cost of LPPM, Optimum and LRFU, plus
// LPPM's relative gap to the optimum.
func (h Harness) Fig3(epsilons []float64) (*metrics.Table, error) {
	if len(epsilons) == 0 {
		epsilons = []float64{0.01, 0.1, 1, 10, 100}
	}
	tb := metrics.NewTable("Fig. 3 — total serving cost vs privacy budget ε",
		"epsilon", "LPPM", "Optimum", "LRFU", "LPPM vs opt (%)")
	runs, err := h.prepareSeeds(nil)
	if err != nil {
		return nil, err
	}
	var gapSum, lrfuGapSum float64
	for _, eps := range epsilons {
		p, err := h.averageAt(runs, eps)
		if err != nil {
			return nil, err
		}
		gap := stats.RelativeChange(p.lppm, p.optimum) * 100
		gapSum += gap
		lrfuGapSum += stats.RelativeChange(p.lppm, p.lrfu) * 100
		tb.MustAddRow(eps, p.lppm, p.optimum, p.lrfu, gap)
	}
	tb.AddNote("averages over %d seeds; paper reports +10.1%% at ε=0.01 falling to +1.2%% at ε=100,"+
		" overall +6.6%% vs optimum and −17.3%% vs LRFU", len(h.Seeds))
	tb.AddNote("measured means: LPPM %.1f%% above optimum, %.1f%% vs LRFU",
		gapSum/float64(len(epsilons)), lrfuGapSum/float64(len(epsilons)))
	return tb, nil
}

// Fig4 sweeps the number of MU groups (paper: 20..40) at ε = h.Epsilon.
// TargetDemand is held fixed: the same aggregate traffic is spread over
// more locations, matching the paper's modest cost growth.
func (h Harness) Fig4(groupCounts []int) (*metrics.Table, error) {
	if len(groupCounts) == 0 {
		groupCounts = []int{20, 25, 30, 35, 40}
	}
	tb := metrics.NewTable("Fig. 4 — total serving cost vs number of MUs",
		"MU groups", "LPPM", "Optimum", "LRFU", "LPPM vs opt (%)")
	for _, g := range groupCounts {
		g := g
		p, err := h.averagePoint(func(sc *Scenario) { sc.Groups = g }, h.Epsilon)
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(g, p.lppm, p.optimum, p.lrfu, stats.RelativeChange(p.lppm, p.optimum)*100)
	}
	tb.AddNote("ε=%.2g, δ=%.2g, %d links; paper reports +5.1%% LPPM growth from 20 to 40 MUs,"+
		" −11.0%% vs LRFU, +9.1%% vs optimum", h.Epsilon, h.Delta, h.Base.LinkCount)
	return tb, nil
}

// Fig5 sweeps the total number of MU-SBS links at ε = h.Epsilon.
func (h Harness) Fig5(linkCounts []int) (*metrics.Table, error) {
	if len(linkCounts) == 0 {
		linkCounts = []int{20, 30, 40, 50, 60}
	}
	tb := metrics.NewTable("Fig. 5 — total serving cost vs number of links",
		"links", "LPPM", "Optimum", "LRFU", "LPPM vs opt (%)")
	for _, l := range linkCounts {
		l := l
		p, err := h.averagePoint(func(sc *Scenario) { sc.LinkCount = l }, h.Epsilon)
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(l, p.lppm, p.optimum, p.lrfu, stats.RelativeChange(p.lppm, p.optimum)*100)
	}
	tb.AddNote("ε=%.2g, δ=%.2g, %d MU groups; paper reports −11.7%% vs LRFU, +8.5%% vs optimum,"+
		" with diminishing returns at high link counts", h.Epsilon, h.Delta, h.Base.Groups)
	return tb, nil
}

// Fig6 sweeps the per-SBS bandwidth at ε = h.Epsilon.
func (h Harness) Fig6(bandwidths []float64) (*metrics.Table, error) {
	if len(bandwidths) == 0 {
		bandwidths = []float64{250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2500}
	}
	tb := metrics.NewTable("Fig. 6 — total serving cost vs SBS bandwidth",
		"bandwidth", "LPPM", "Optimum", "LRFU", "LPPM vs opt (%)")
	for _, b := range bandwidths {
		b := b
		p, err := h.averagePoint(func(sc *Scenario) { sc.Bandwidth = b }, h.Epsilon)
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(b, p.lppm, p.optimum, p.lrfu, stats.RelativeChange(p.lppm, p.optimum)*100)
	}
	tb.AddNote("ε=%.2g, δ=%.2g; paper reports near-linear decrease until ~1500 then flattening,"+
		" −15.4%% vs LRFU, +13.8%% vs optimum", h.Epsilon, h.Delta)
	return tb, nil
}

// Summary reproduces the headline percentages of §V across all sweeps.
func (h Harness) Summary() (*metrics.Table, error) {
	type sweep struct {
		name  string
		paper string
		run   func() (lppmVsOpt, lppmVsLRFU float64, err error)
	}
	relMeans := func(points []point) (float64, float64) {
		var vsOpt, vsLRFU []float64
		for _, p := range points {
			vsOpt = append(vsOpt, stats.RelativeChange(p.lppm, p.optimum)*100)
			vsLRFU = append(vsLRFU, stats.RelativeChange(p.lppm, p.lrfu)*100)
		}
		return stats.Mean(vsOpt), stats.Mean(vsLRFU)
	}
	sweeps := []sweep{
		{
			name:  "Fig. 3 (ε sweep)",
			paper: "+6.6% vs opt, −17.3% vs LRFU",
			run: func() (float64, float64, error) {
				runs, err := h.prepareSeeds(nil)
				if err != nil {
					return 0, 0, err
				}
				var pts []point
				for _, eps := range []float64{0.01, 0.1, 1, 10, 100} {
					p, err := h.averageAt(runs, eps)
					if err != nil {
						return 0, 0, err
					}
					pts = append(pts, p)
				}
				a, b := relMeans(pts)
				return a, b, nil
			},
		},
		{
			name:  "Fig. 4 (MU sweep)",
			paper: "+9.1% vs opt, −11.0% vs LRFU",
			run: func() (float64, float64, error) {
				var pts []point
				for _, g := range []int{20, 25, 30, 35, 40} {
					g := g
					p, err := h.averagePoint(func(sc *Scenario) { sc.Groups = g }, h.Epsilon)
					if err != nil {
						return 0, 0, err
					}
					pts = append(pts, p)
				}
				a, b := relMeans(pts)
				return a, b, nil
			},
		},
		{
			name:  "Fig. 5 (link sweep)",
			paper: "+8.5% vs opt, −11.7% vs LRFU",
			run: func() (float64, float64, error) {
				var pts []point
				for _, l := range []int{20, 30, 40, 50, 60} {
					l := l
					p, err := h.averagePoint(func(sc *Scenario) { sc.LinkCount = l }, h.Epsilon)
					if err != nil {
						return 0, 0, err
					}
					pts = append(pts, p)
				}
				a, b := relMeans(pts)
				return a, b, nil
			},
		},
		{
			name:  "Fig. 6 (bandwidth sweep)",
			paper: "+13.8% vs opt, −15.4% vs LRFU",
			run: func() (float64, float64, error) {
				var pts []point
				for _, bw := range []float64{250, 500, 1000, 1500, 2000, 2500} {
					bw := bw
					p, err := h.averagePoint(func(sc *Scenario) { sc.Bandwidth = bw }, h.Epsilon)
					if err != nil {
						return 0, 0, err
					}
					pts = append(pts, p)
				}
				a, b := relMeans(pts)
				return a, b, nil
			},
		},
	}
	tb := metrics.NewTable("§V summary — LPPM relative cost across sweeps",
		"sweep", "LPPM vs optimum (%)", "LPPM vs LRFU (%)", "paper")
	for _, s := range sweeps {
		vsOpt, vsLRFU, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		tb.MustAddRow(s.name, vsOpt, vsLRFU, s.paper)
	}
	return tb, nil
}

// Convergence (E8) records the per-sweep cost history of one run with and
// without LPPM, demonstrating Theorem 3's convergence claim.
func (h Harness) Convergence() (*metrics.Table, error) {
	sc := h.Base
	sc.Seed = h.Seeds[0]
	inst, err := sc.Build()
	if err != nil {
		return nil, err
	}
	coord, err := core.NewCoordinator(inst, core.Config{Sub: h.Sub, Gamma: 1e-9, MaxSweeps: 12})
	if err != nil {
		return nil, err
	}
	clean, err := coord.Run()
	if err != nil {
		return nil, err
	}
	privCoord, err := core.NewCoordinator(inst, core.Config{
		Sub: h.Sub, Gamma: 1e-9, MaxSweeps: 12,
		Privacy: &core.PrivacyConfig{Epsilon: h.Epsilon, Delta: h.Delta, Rng: rand.New(rand.NewSource(99))},
	})
	if err != nil {
		return nil, err
	}
	noisy, err := privCoord.Run()
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("E8 — convergence of Algorithm 1 (total cost per sweep)",
		"sweep", "without LPPM", fmt.Sprintf("with LPPM (ε=%.2g, δ=%.2g)", h.Epsilon, h.Delta))
	rows := len(clean.History)
	if len(noisy.History) > rows {
		rows = len(noisy.History)
	}
	for i := 0; i < rows; i++ {
		cleanCell, noisyCell := "-", "-"
		if i < len(clean.History) {
			cleanCell = fmt.Sprintf("%.2f", clean.History[i])
		}
		if i < len(noisy.History) {
			noisyCell = fmt.Sprintf("%.2f", noisy.History[i])
		}
		tb.MustAddRow(i+1, cleanCell, noisyCell)
	}
	return tb, nil
}

// OptimalityGap (E7) compares Algorithm 1 against the centralized MILP
// oracle on down-scaled instances (the oracle is exponential in N·F).
func (h Harness) OptimalityGap(trials int) (*metrics.Table, error) {
	if trials <= 0 {
		trials = 5
	}
	tb := metrics.NewTable("E7 — Algorithm 1 vs centralized MILP optimum (small instances)",
		"trial", "distributed", "with restarts", "MILP optimum", "gap (%)", "restart gap (%)")
	var gaps, restartGaps []float64
	for trial := 0; trial < trials; trial++ {
		sc := h.Base
		sc.Seed = h.Seeds[0] + int64(trial)
		sc.Groups = 6
		sc.Videos = 8
		sc.LinkCount = 10
		sc.CachePerSBS = 3
		sc.Bandwidth = 200
		sc.TargetDemand = 600
		inst, err := sc.Build()
		if err != nil {
			return nil, err
		}
		opt, err := baseline.CentralizedMILP(inst, baseline.MILPOptions{})
		if err != nil {
			return nil, err
		}
		coord, err := core.NewCoordinator(inst, core.Config{Sub: h.Sub})
		if err != nil {
			return nil, err
		}
		res, err := coord.Run()
		if err != nil {
			return nil, err
		}
		multi, err := core.NewCoordinator(inst, core.Config{
			Sub: h.Sub, Restarts: 6, RestartSeed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		mres, err := multi.Run()
		if err != nil {
			return nil, err
		}
		gap := stats.RelativeChange(res.Solution.Cost.Total, opt.Cost.Total) * 100
		restartGap := stats.RelativeChange(mres.Solution.Cost.Total, opt.Cost.Total) * 100
		gaps = append(gaps, gap)
		restartGaps = append(restartGaps, restartGap)
		tb.MustAddRow(trial+1, res.Solution.Cost.Total, mres.Solution.Cost.Total,
			opt.Cost.Total, gap, restartGap)
	}
	tb.AddNote("mean gap %.3f%% (%.3f%% with 6 shuffled-order restarts); the coupling"+
		" constraint (4) breaks the Cartesian-product assumption behind Theorem 2, so the"+
		" fixed-order sweep can stall in order-dependent equilibria (DESIGN.md §4)",
		stats.Mean(gaps), stats.Mean(restartGaps))
	return tb, nil
}
