package baseline

import (
	"fmt"

	"edgecache/internal/lp"
	"edgecache/internal/model"
)

// MILPOptions tunes the centralized exact solver.
type MILPOptions struct {
	// MaxBinaries refuses instances with more than this many binary cache
	// variables (N·F); branch and bound is exponential and this oracle is
	// meant for verification-scale instances. 0 means the default 36.
	MaxBinaries int
	// Search forwards to the underlying branch-and-bound options.
	Search lp.MILPOptions
}

func (o MILPOptions) withDefaults() MILPOptions {
	if o.MaxBinaries == 0 {
		o.MaxBinaries = 36
	}
	return o
}

// CentralizedMILP solves the joint caching-and-routing problem (eq. 7-9
// with constraints 1-4) exactly as a mixed-integer program: binary x_nf,
// continuous y_nuf restricted to linked pairs with positive demand. It is
// the ground-truth oracle for the optimality experiments (E7 in DESIGN.md).
func CentralizedMILP(inst *model.Instance, opts MILPOptions) (*model.Solution, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	numX := inst.N * inst.F
	if numX > opts.MaxBinaries {
		return nil, fmt.Errorf("baseline: instance has %d binary variables, limit %d", numX, opts.MaxBinaries)
	}

	// Variable layout: x_nf at n·F+f, then y variables for servable pairs.
	type yVar struct{ n, u, f int }
	var yVars []yVar
	yIdx := make(map[[3]int]int)
	for n := 0; n < inst.N; n++ {
		for u := 0; u < inst.U; u++ {
			if !inst.Links[n][u] {
				continue
			}
			for f := 0; f < inst.F; f++ {
				if inst.Demand[u][f] <= 0 {
					continue
				}
				yIdx[[3]int{n, u, f}] = numX + len(yVars)
				yVars = append(yVars, yVar{n, u, f})
			}
		}
	}
	nv := numX + len(yVars)
	p := lp.NewProblem(nv)

	xAt := func(n, f int) int { return n*inst.F + f }
	for n := 0; n < inst.N; n++ {
		for f := 0; f < inst.F; f++ {
			j := xAt(n, f)
			p.SetBounds(j, 0, 1)
			p.MarkInteger(j)
		}
	}
	// Objective: minimize Σ (d_nu − d̂_u)·λ_uf·y. The constant W is added
	// back when reporting the cost.
	for i, v := range yVars {
		j := numX + i
		p.SetBounds(j, 0, 1)
		p.Obj[j] = (inst.EdgeCost[v.n][v.u] - inst.BSCost[v.u]) * inst.Demand[v.u][v.f]
	}

	// Eq. 1: cache capacity per SBS.
	for n := 0; n < inst.N; n++ {
		coef := make([]float64, nv)
		for f := 0; f < inst.F; f++ {
			coef[xAt(n, f)] = 1
		}
		p.AddConstraint(coef, lp.LE, float64(inst.CacheCap[n]))
	}
	// Eq. 2: y ≤ x per servable pair.
	for i, v := range yVars {
		coef := make([]float64, nv)
		coef[numX+i] = 1
		coef[xAt(v.n, v.f)] = -1
		p.AddConstraint(coef, lp.LE, 0)
	}
	// Eq. 3: bandwidth per SBS.
	for n := 0; n < inst.N; n++ {
		coef := make([]float64, nv)
		hasLoad := false
		for i, v := range yVars {
			if v.n == n {
				coef[numX+i] = inst.Demand[v.u][v.f]
				hasLoad = true
			}
		}
		if hasLoad {
			p.AddConstraint(coef, lp.LE, inst.Bandwidth[n])
		}
	}
	// Eq. 4: no demand served more than once.
	for u := 0; u < inst.U; u++ {
		for f := 0; f < inst.F; f++ {
			coef := make([]float64, nv)
			hasTerm := false
			for n := 0; n < inst.N; n++ {
				if j, ok := yIdx[[3]int{n, u, f}]; ok {
					coef[j] = 1
					hasTerm = true
				}
			}
			if hasTerm {
				p.AddConstraint(coef, lp.LE, 1)
			}
		}
	}

	sol, err := lp.SolveMILP(p, opts.Search)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("baseline: MILP solve ended with status %v", sol.Status)
	}

	caching := model.NewCachingPolicy(inst)
	for n := 0; n < inst.N; n++ {
		for f := 0; f < inst.F; f++ {
			caching.Set(n, f, sol.X[xAt(n, f)] > 0.5)
		}
	}
	routing := model.NewRoutingPolicy(inst)
	for i, v := range yVars {
		routing.Set(v.n, v.u, v.f, sol.X[numX+i])
	}
	return &model.Solution{
		Caching: caching,
		Routing: routing,
		Cost:    model.TotalServingCost(inst, routing),
	}, nil
}
