package lint

import (
	"go/ast"
	"go/types"
)

// The interprocedural analyzers (privflow, goleak, noalloc) all need the
// same two ingredients: a module-wide index from *types.Func to the
// declaration that defines it, and a way to resolve an interface by
// import path so sinks can be matched against every implementation. This
// file holds those shared pieces.

// modFunc is one module function body the interprocedural walks can reach.
type modFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// moduleFuncs indexes every function and method declaration in the module
// by its *types.Func. The index is computed once per Program and is safe
// for concurrent readers afterwards.
func (prog *Program) moduleFuncs() map[*types.Func]modFunc {
	prog.funcsOnce.Do(func() {
		prog.funcs = map[*types.Func]modFunc{}
		for _, pkg := range prog.Packages {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						prog.funcs[obj] = modFunc{pkg: pkg, decl: fd}
					}
				}
			}
		}
	})
	return prog.funcs
}

// namedInterface resolves an exported interface type by package path and
// name, or nil when the loaded module slice does not contain it (temp
// modules in the gate tests may omit whole layers).
func namedInterface(prog *Program, pkgPath, name string) *types.Interface {
	pkg := prog.ByPath[pkgPath]
	if pkg == nil {
		return nil
	}
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// implementsOrIs reports whether t implements iface, or is (a pointer to)
// the interface type itself — calls through the bare interface value count
// the same as calls on a concrete implementation.
func implementsOrIs(t types.Type, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if u, ok := t.Underlying().(*types.Interface); ok {
		return types.Identical(u, iface)
	}
	return false
}

// baseObject resolves the object a (possibly nested) lvalue or channel
// expression is rooted at: the variable for `x`, `x[i]`, `*x`, `x.f[i]`,
// and the field object for `s.f` / `s.f[i]`. It returns nil for
// expressions not rooted in a named object (calls, literals).
func baseObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			// Prefer the field/method object: `s.quit` is identified by
			// the quit field no matter which receiver value it came from,
			// which is what cross-function matching (close in one method,
			// receive in another) needs.
			if obj := pkg.Info.Uses[x.Sel]; obj != nil {
				return obj
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
