package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 2.138089935299395 // sample std (n−1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Error("StdDev of one value should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty should be NaN")
	}
	if !math.IsNaN(Percentile(xs, -1)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Error("out-of-range p should be NaN")
	}
	if got := Percentile([]float64{42}, 73); got != 42 {
		t.Errorf("Percentile of singleton = %v, want 42", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestCI95HalfWidth(t *testing.T) {
	xs := []float64{10, 12, 14, 16}
	want := 1.96 * StdDev(xs) / 2
	if got := CI95HalfWidth(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI95HalfWidth = %v, want %v", got, want)
	}
	if !math.IsNaN(CI95HalfWidth([]float64{1})) {
		t.Error("CI95 of one value should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.P50 != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if len(s.String()) == 0 {
		t.Error("String() empty")
	}
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeChange = %v, want 0.1", got)
	}
	if !math.IsNaN(RelativeChange(1, 0)) {
		t.Error("RelativeChange with zero base should be NaN")
	}
}

// Property: Min ≤ P50 ≤ Max and Min ≤ Mean ≤ Max.
func TestOrderingProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		mn, mx := Min(xs), Max(xs)
		med := Percentile(xs, 50)
		mean := Mean(xs)
		return mn <= med+1e-9 && med <= mx+1e-9 && mn <= mean+1e-9 && mean <= mx+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
