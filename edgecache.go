// Package edgecache is a Go implementation of privacy-preserving
// distributed edge caching for mobile data offloading in 5G networks,
// reproducing Zeng, Huang, Liu & Yang (ICDCS 2020).
//
// The library jointly optimizes which contents each small base station
// (SBS) caches and how user demand is routed between the SBSs and the
// macro base station (BS), minimizing the total serving cost
// f(y) = f1(y) + f2(y) under cache, bandwidth and no-overserve constraints
// (the paper's eq. 1-9). Two deployment styles are offered:
//
//   - Solve / SolveWithPrivacy run the paper's Algorithm 1 in-process: a
//     Gauss-Seidel sweep in which each SBS solves its sub-problem P_n by
//     Lagrangian dual decomposition against the BS-broadcast aggregate
//     routing of its peers.
//   - internal/sim (driven by cmd/edgesim -distributed and the
//     cdnfederation example) runs the same protocol as real BS/SBS agents
//     over an in-memory or TCP transport.
//
// Privacy: SolveWithPrivacy applies the paper's LPPM — each SBS subtracts
// bounded Laplace noise from its routing uploads, giving ε-differential
// privacy per release (Theorem 4) while keeping every constraint satisfied
// (noise only ever shrinks a routing value).
//
// The exported surface of this package is a façade over the internal
// packages; power users drive internal/core, internal/experiments and
// internal/sim directly from within this module (see the examples and
// cmd directories).
package edgecache

import (
	"math/rand"

	"edgecache/internal/core"
	"edgecache/internal/dp"
	"edgecache/internal/experiments"
	"edgecache/internal/model"
)

// Core model types.
type (
	// Instance is the problem data: demands λ, links l, capacities C and
	// B, and the edge/backhaul cost weights d and d̂.
	Instance = model.Instance
	// CachingPolicy is the binary x_nf decision; RoutingPolicy the
	// fractional y_nuf decision.
	CachingPolicy = model.CachingPolicy
	RoutingPolicy = model.RoutingPolicy
	// Solution bundles policies with their cost; CostBreakdown splits the
	// cost into the edge (f1) and backhaul (f2) parts.
	Solution      = model.Solution
	CostBreakdown = model.CostBreakdown
	// RunResult carries the solution plus convergence metadata.
	RunResult = core.RunResult
	// Scenario builds paper-style instances from a synthetic trending
	// trace; see DefaultScenario.
	Scenario = experiments.Scenario
	// Accountant tracks differential-privacy budget expenditure.
	Accountant = dp.Accountant
)

// DefaultScenario returns the paper's §V-A evaluation configuration
// (3 SBSs, 30 MU groups, 40 links, 50 contents).
func DefaultScenario() Scenario { return experiments.DefaultScenario() }

// Solve runs Algorithm 1 (the distributed updating algorithm, no privacy)
// on the instance and returns the converged joint caching/routing policy.
func Solve(inst *Instance) (*RunResult, error) {
	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return coord.Run()
}

// PrivacyParams configures SolveWithPrivacy.
type PrivacyParams struct {
	// Epsilon is the per-release differential-privacy budget (Theorem 4
	// calibrates the Laplace scale as Sensitivity/ε).
	Epsilon float64
	// Delta is the paper's Laplace component factor δ ∈ [0,1): noise for a
	// routing value y is drawn on [0, δ·y].
	Delta float64
	// Seed drives the noise deterministically.
	Seed int64
	// Accountant, when non-nil, records every ε spend per SBS.
	Accountant *Accountant
}

// SolveWithPrivacy runs Algorithm 1 with LPPM applied to every routing
// upload.
func SolveWithPrivacy(inst *Instance, p PrivacyParams) (*RunResult, error) {
	cfg := core.DefaultConfig()
	cfg.MaxSweeps = 12 // the γ rule rarely fires under per-sweep noise
	cfg.Privacy = &core.PrivacyConfig{
		Epsilon:    p.Epsilon,
		Delta:      p.Delta,
		Rng:        rand.New(rand.NewSource(p.Seed)),
		Accountant: p.Accountant,
	}
	coord, err := core.NewCoordinator(inst, cfg)
	if err != nil {
		return nil, err
	}
	return coord.Run()
}

// TotalServingCost evaluates f(y) = f1(y) + f2(y) for a routing policy.
func TotalServingCost(inst *Instance, y *RoutingPolicy) CostBreakdown {
	return model.TotalServingCost(inst, y)
}

// CheckFeasibility verifies a policy pair against the full constraint
// system (eq. 1-4) and returns human-readable violations, empty when
// feasible.
func CheckFeasibility(inst *Instance, x *CachingPolicy, y *RoutingPolicy) []model.Violation {
	return model.CheckFeasibility(inst, x, y)
}
