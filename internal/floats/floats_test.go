package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want bool
	}{
		{"identical", 1.5, 1.5, true},
		{"zero", 0, 0, true},
		{"within absolute eps", 1e-12, 0, true},
		{"outside absolute eps", 1e-6, 0, false},
		{"within relative eps", 1e12, 1e12 * (1 + 1e-10), true},
		{"outside relative eps", 1e12, 1e12 * (1 + 1e-6), false},
		{"accumulated thirds", 0.1 + 0.2, 0.3, true},
		{"same-sign infinities", math.Inf(1), math.Inf(1), true},
		{"opposite infinities", math.Inf(1), math.Inf(-1), false},
		{"nan never equal", math.NaN(), math.NaN(), false},
		{"nan vs finite", math.NaN(), 1, false},
	}
	for _, tc := range tests {
		if got := Eq(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: Eq(%v, %v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNearCustomEps(t *testing.T) {
	if !Near(1.0, 1.05, 0.1) {
		t.Error("Near(1, 1.05, 0.1) = false, want true")
	}
	if Near(1.0, 1.2, 0.1) {
		t.Error("Near(1, 1.2, 0.1) = true, want false")
	}
}

func TestLeqSlack(t *testing.T) {
	if !LeqSlack(1.0000000001, 1.0, 1e-9) {
		t.Error("rounding overshoot should satisfy LeqSlack")
	}
	if LeqSlack(1.1, 1.0, 1e-9) {
		t.Error("real violation should fail LeqSlack")
	}
}

func TestHelpersZeroAllocs(t *testing.T) {
	var sink bool
	for name, fn := range map[string]func(){
		"Eq":       func() { sink = Eq(1.5, 1.5000001) },
		"Near":     func() { sink = Near(1.5, 1.6, 0.2) },
		"LeqSlack": func() { sink = LeqSlack(1.0, 1.0, 1e-9) },
	} {
		if avg := testing.AllocsPerRun(100, fn); avg != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, avg)
		}
	}
	_ = sink
}
