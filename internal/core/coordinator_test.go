package core

import (
	"math"
	"math/rand"
	"testing"

	"edgecache/internal/dp"
	"edgecache/internal/model"
)

func TestCoordinatorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := randomInstance(rng, 2, 4, 5)
	bad := inst.Clone()
	bad.BSCost = bad.BSCost[:1]
	if _, err := NewCoordinator(bad, DefaultConfig()); err == nil {
		t.Error("invalid instance: want error")
	}
	cfg := DefaultConfig()
	cfg.Privacy = &PrivacyConfig{Epsilon: 0, Delta: 0.5, Rng: rng}
	if _, err := NewCoordinator(inst, cfg); err == nil {
		t.Error("epsilon=0: want error")
	}
	cfg.Privacy = &PrivacyConfig{Epsilon: 1, Delta: 1, Rng: rng}
	if _, err := NewCoordinator(inst, cfg); err == nil {
		t.Error("delta=1: want error")
	}
	cfg.Privacy = &PrivacyConfig{Epsilon: 1, Delta: 0.5, Rng: nil}
	if _, err := NewCoordinator(inst, cfg); err == nil {
		t.Error("nil rng: want error")
	}
	cfg.Privacy = &PrivacyConfig{Epsilon: 1, Delta: 0.5, Sensitivity: -1, Rng: rng}
	if _, err := NewCoordinator(inst, cfg); err == nil {
		t.Error("negative sensitivity: want error")
	}
}

func TestCoordinatorConvergesAndIsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(rng, 3, 6, 8)
		coord, err := NewCoordinator(inst, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("trial %d: did not converge in %d sweeps", trial, res.Sweeps)
		}
		if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
			t.Fatalf("trial %d: infeasible solution:\n%s", trial, model.FormatViolations(vs))
		}
		// Cost must beat the no-cache worst case whenever any gain exists.
		if res.Solution.Cost.Total > inst.MaxCost()+1e-9 {
			t.Errorf("trial %d: cost %v exceeds MaxCost %v", trial, res.Solution.Cost.Total, inst.MaxCost())
		}
		// The recomputed cost of the returned policy must match.
		recomputed := model.TotalServingCost(inst, res.Solution.Routing)
		if math.Abs(recomputed.Total-res.Solution.Cost.Total) > 1e-6 {
			t.Errorf("trial %d: cost mismatch %v vs %v", trial, recomputed.Total, res.Solution.Cost.Total)
		}
	}
}

func TestCoordinatorMonotoneWithoutNoise(t *testing.T) {
	// Theorem 2/3's core argument: each Gauss-Seidel phase re-optimizes one
	// block, so without noise the sweep-end cost never increases.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(rng, 3, 5, 7)
		coord, err := NewCoordinator(inst, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.History); i++ {
			if res.History[i] > res.History[i-1]+1e-6 {
				t.Fatalf("trial %d: cost increased between sweeps: %v", trial, res.History)
			}
		}
	}
}

func TestCoordinatorHistoryMatchesSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := randomInstance(rng, 2, 4, 5)
	coord, err := NewCoordinator(inst, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Sweeps {
		t.Errorf("history length %d, sweeps %d", len(res.History), res.Sweeps)
	}
	if res.History[len(res.History)-1] != res.Solution.Cost.Total {
		t.Errorf("final history %v != solution cost %v",
			res.History[len(res.History)-1], res.Solution.Cost.Total)
	}
}

func TestCoordinatorSweepBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(rng, 3, 5, 7)
	cfg := DefaultConfig()
	cfg.MaxSweeps = 1
	cfg.Gamma = 1e-12
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps != 1 || res.Converged {
		t.Errorf("sweeps=%d converged=%v, want 1 sweep and no convergence flag", res.Sweeps, res.Converged)
	}
}

func TestLPPMIncreasesCostButStaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 6; trial++ {
		inst := randomInstance(rng, 3, 5, 7)

		coord, err := NewCoordinator(inst, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		clean, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}

		cfg := DefaultConfig()
		cfg.Privacy = &PrivacyConfig{
			Epsilon: 0.1,
			Delta:   0.5,
			Rng:     rand.New(rand.NewSource(int64(trial))),
		}
		noisyCoord, err := NewCoordinator(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		noisy, err := noisyCoord.Run()
		if err != nil {
			t.Fatal(err)
		}

		if vs := model.CheckFeasibility(inst, noisy.Solution.Caching, noisy.Solution.Routing); len(vs) != 0 {
			t.Fatalf("trial %d: LPPM solution infeasible:\n%s", trial, model.FormatViolations(vs))
		}
		// Subtracting noise can only reduce edge service, so the noisy cost
		// must be at least the clean cost (up to numeric slack).
		if noisy.Solution.Cost.Total < clean.Solution.Cost.Total-1e-6 {
			t.Errorf("trial %d: noisy cost %v below clean cost %v",
				trial, noisy.Solution.Cost.Total, clean.Solution.Cost.Total)
		}
	}
}

func TestLPPMCostShrinksWithEpsilon(t *testing.T) {
	// Larger ε ⇒ smaller noise ⇒ cost closer to the non-private optimum
	// (the paper's Fig. 3 trend). Averaged over seeds to tame randomness.
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng, 3, 6, 8)

	coord, err := NewCoordinator(inst, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}

	avgCost := func(eps float64) float64 {
		var total float64
		const seeds = 5
		for s := int64(0); s < seeds; s++ {
			cfg := DefaultConfig()
			cfg.Privacy = &PrivacyConfig{Epsilon: eps, Delta: 0.5, Rng: rand.New(rand.NewSource(100 + s))}
			c, err := NewCoordinator(inst, cfg)
			if err != nil {
				t.Fatal(err)
			}
			r, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			total += r.Solution.Cost.Total
		}
		return total / seeds
	}

	lowEps := avgCost(0.01)
	highEps := avgCost(100)
	if lowEps < highEps-1e-9 {
		t.Errorf("cost at ε=0.01 (%v) should exceed cost at ε=100 (%v)", lowEps, highEps)
	}
	// At ε=100 the noise is negligible: within 1% of the clean optimum.
	if rel := (highEps - clean.Solution.Cost.Total) / clean.Solution.Cost.Total; rel > 0.01 {
		t.Errorf("ε=100 cost is %.2f%% above optimum, want < 1%%", rel*100)
	}
}

func TestLPPMAccountant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := randomInstance(rng, 3, 5, 6)
	var acct dp.Accountant
	cfg := DefaultConfig()
	cfg.Privacy = &PrivacyConfig{
		Epsilon:    0.5,
		Delta:      0.4,
		Rng:        rand.New(rand.NewSource(9)),
		Accountant: &acct,
	}
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantSpends := res.Sweeps * inst.N
	if got := acct.Count(); got != wantSpends {
		t.Errorf("accountant recorded %d spends, want sweeps·N = %d", got, wantSpends)
	}
	if got, want := acct.SequentialEpsilon(), 0.5*float64(wantSpends); math.Abs(got-want) > 1e-9 {
		t.Errorf("sequential ε = %v, want %v", got, want)
	}
	perLabel := acct.ByLabel()
	if len(perLabel) != inst.N {
		t.Errorf("labels = %d, want one per SBS (%d)", len(perLabel), inst.N)
	}
}

func TestLPPMDeltaZeroMatchesClean(t *testing.T) {
	// δ=0 draws zero noise, so the run must match the non-private one.
	rng := rand.New(rand.NewSource(10))
	inst := randomInstance(rng, 2, 4, 5)
	coord, err := NewCoordinator(inst, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Privacy = &PrivacyConfig{Epsilon: 0.1, Delta: 0, Rng: rand.New(rand.NewSource(11))}
	noisyCoord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := noisyCoord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noisy.Solution.Cost.Total-clean.Solution.Cost.Total) > 1e-9 {
		t.Errorf("δ=0 cost %v differs from clean cost %v",
			noisy.Solution.Cost.Total, clean.Solution.Cost.Total)
	}
}

func TestRestartsNeverWorseThanFixedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	improvedSomewhere := false
	for trial := 0; trial < 12; trial++ {
		inst := randomInstance(rng, 3, 6, 6)
		fixed, err := NewCoordinator(inst, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		fres, err := fixed.Run()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Restarts = 4
		cfg.RestartSeed = int64(trial)
		multi, err := NewCoordinator(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mres, err := multi.Run()
		if err != nil {
			t.Fatal(err)
		}
		if mres.Solution.Cost.Total > fres.Solution.Cost.Total+1e-9 {
			t.Errorf("trial %d: restarts cost %v exceeds fixed-order cost %v",
				trial, mres.Solution.Cost.Total, fres.Solution.Cost.Total)
		}
		if mres.Solution.Cost.Total < fres.Solution.Cost.Total-1e-9 {
			improvedSomewhere = true
		}
		if vs := model.CheckFeasibility(inst, mres.Solution.Caching, mres.Solution.Routing); len(vs) != 0 {
			t.Fatalf("trial %d: restart solution infeasible:\n%s", trial, model.FormatViolations(vs))
		}
	}
	t.Logf("restarts improved at least one instance: %v", improvedSomewhere)
}

func TestCoordinatorDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inst := randomInstance(rng, 3, 5, 6)
	run := func(seed int64) float64 {
		cfg := DefaultConfig()
		cfg.Privacy = &PrivacyConfig{Epsilon: 0.1, Delta: 0.5, Rng: rand.New(rand.NewSource(seed))}
		coord, err := NewCoordinator(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Solution.Cost.Total
	}
	if run(42) != run(42) {
		t.Error("same seed produced different costs")
	}
}
