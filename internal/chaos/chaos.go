// Package chaos executes deterministic, seed-reproducible fault schedules
// against the distributed protocol of internal/sim — the empirical
// counterpart of the paper's Theorem 2 convergence claim for an
// unreliable multi-operator network.
//
// A Schedule is a list of events keyed on protocol progress (sweep and
// phase as announced by the BS), not on wall-clock time, so the same
// schedule replays identically across machines and -race runs: crash SBS
// n at sweep s, restart it later, partition its link for d phases, or
// open a drop/dup/reorder/delay window on the links. Run wires the agents
// over an in-memory hub with a controllable fault layer and drives the BS
// to completion, reporting what fired and what the protocol observed.
package chaos

import (
	"fmt"
	"sort"

	"edgecache/internal/transport"
)

// Op enumerates the fault operations a schedule can inject.
type Op int

// Fault operations.
const (
	// OpCrash kills the SBS agent and unregisters its endpoint: sends to
	// it fail, its phases time out until quarantined.
	OpCrash Op = iota + 1
	// OpRestart registers a fresh endpoint under the same name and starts
	// a new agent — the rejoin path of the protocol.
	OpRestart
	// OpPartition cuts the SBS's link in both directions (messages are
	// silently discarded); the agent stays alive. Phases > 0 schedules
	// the matching heal automatically that many phases later.
	OpPartition
	// OpHeal restores a partitioned link.
	OpHeal
	// OpLinkFaults replaces the drop/dup/reorder/delay configuration of
	// the SBS's link (SBS == -1 targets every link including the BS's).
	OpLinkFaults
	// OpBSCrash kills the BS coordinator mid-run (SBS must be -1). The run
	// recovers only if an OpBSRestart is scheduled and the BS was
	// checkpointing (the runner installs an in-memory checkpoint store
	// automatically when the schedule contains a BS crash).
	OpBSCrash
	// OpBSRestart brings the BS back after an OpBSCrash, resuming from the
	// newest checkpoint (or cold from sweep 0 if none was captured yet).
	// Protocol time is frozen while the BS is down, so the event's trigger
	// point is nominal: it is consumed when the crash happens, not fired
	// at a protocol point.
	OpBSRestart
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpRestart:
		return "restart"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpLinkFaults:
		return "link-faults"
	case OpBSCrash:
		return "bs-crash"
	case OpBSRestart:
		return "bs-restart"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Event is one scheduled fault. It fires when the BS first announces a
// phase at or after (Sweep, Phase) in lexicographic protocol order.
type Event struct {
	// Sweep and Phase locate the trigger point in protocol time.
	Sweep, Phase int
	// SBS is the target SBS index; -1 means every link for OpLinkFaults
	// and is required for the coordinator-targeting OpBSCrash/OpBSRestart.
	SBS int
	// Op selects the fault operation.
	Op Op
	// Phases, for OpPartition, auto-schedules the heal that many phases
	// after the cut (0 means the partition lasts until an explicit
	// OpHeal, or forever).
	Phases int
	// Faults is the link configuration installed by OpLinkFaults. Its
	// Seed field is ignored — the runner derives per-link seeds from
	// Schedule.Seed so runs are reproducible.
	Faults transport.FaultConfig
}

// String renders the event for logs and reports.
func (e Event) String() string {
	s := fmt.Sprintf("%s sbs=%d @ sweep %d phase %d", e.Op, e.SBS, e.Sweep, e.Phase)
	if e.Op == OpPartition && e.Phases > 0 {
		s += fmt.Sprintf(" for %d phases", e.Phases)
	}
	return s
}

// Schedule is a deterministic fault plan for one protocol run.
type Schedule struct {
	// Seed drives every random choice (link fault draws); the schedule
	// itself is deterministic in protocol time.
	Seed int64
	// Links is the baseline fault configuration applied to every link
	// from the start of the run (its Seed field is ignored).
	Links transport.FaultConfig
	// Events are the scheduled faults; order does not matter, the runner
	// sorts them by trigger point.
	Events []Event
}

// Validate checks the schedule against the number of SBSs.
func (s Schedule) Validate(n int) error {
	if err := s.Links.Validate(); err != nil {
		return fmt.Errorf("chaos: baseline links: %w", err)
	}
	for i, ev := range s.Events {
		if ev.Sweep < 0 || ev.Phase < 0 || ev.Phase >= n {
			return fmt.Errorf("chaos: event %d (%s): trigger sweep %d phase %d out of range (N=%d)",
				i, ev, ev.Sweep, ev.Phase, n)
		}
		switch ev.Op {
		case OpCrash, OpRestart, OpPartition, OpHeal:
			if ev.SBS < 0 || ev.SBS >= n {
				return fmt.Errorf("chaos: event %d (%s): SBS %d out of range (N=%d)", i, ev, ev.SBS, n)
			}
		case OpLinkFaults:
			if ev.SBS < -1 || ev.SBS >= n {
				return fmt.Errorf("chaos: event %d (%s): SBS %d out of range (N=%d, -1 = all)", i, ev, ev.SBS, n)
			}
			if err := ev.Faults.Validate(); err != nil {
				return fmt.Errorf("chaos: event %d (%s): %w", i, ev, err)
			}
		case OpBSCrash, OpBSRestart:
			if ev.SBS != -1 {
				return fmt.Errorf("chaos: event %d (%s): BS ops target the coordinator; SBS must be -1", i, ev)
			}
		default:
			return fmt.Errorf("chaos: event %d: unknown op %v", i, ev.Op)
		}
		if ev.Op == OpPartition && ev.Phases < 0 {
			return fmt.Errorf("chaos: event %d (%s): negative partition length", i, ev)
		}
	}
	return nil
}

// sortedEvents returns the events ordered by trigger point (stable, so
// same-trigger events keep their schedule order).
func (s Schedule) sortedEvents() []Event {
	out := make([]Event, len(s.Events))
	copy(out, s.Events)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Sweep != out[j].Sweep {
			return out[i].Sweep < out[j].Sweep
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// advance returns the protocol point d phases after (sweep, phase) with n
// phases per sweep.
func advance(sweep, phase, d, n int) (int, int) {
	idx := sweep*n + phase + d
	return idx / n, idx % n
}
