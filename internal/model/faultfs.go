package model

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"syscall"
)

// FaultFSConfig sets the seeded per-operation fault probabilities of a
// FaultFS. All probabilities are in [0, 1]; a zero config injects nothing.
type FaultFSConfig struct {
	// Seed drives every fault draw; the same seed over the same operation
	// sequence injects the same faults.
	Seed int64
	// ShortWrite truncates a Write to a prefix and reports a write error
	// (a torn write the caller observes — the store deletes its temp
	// file and surfaces the error).
	ShortWrite float64
	// ENOSPC fails a Write with syscall.ENOSPC after persisting a prefix,
	// the disk-full case.
	ENOSPC float64
	// RenameFail fails a Rename outright with syscall.EIO, leaving the
	// temp file in place for prune to collect.
	RenameFail float64
	// TornRename truncates the source file to a prefix and then lets the
	// Rename succeed — the crash-during-rename case on filesystems
	// without atomic rename, which lands a corrupt file under the final
	// snapshot name that only CRC verification can catch.
	TornRename float64
	// BitRot flips one byte of the destination file after a successful
	// Rename: silent media corruption of a snapshot that was written
	// correctly.
	BitRot float64
}

// FaultFSStats counts the faults a FaultFS actually injected.
type FaultFSStats struct {
	ShortWrites int
	ENOSPC      int
	RenameFails int
	TornRenames int
	BitRots     int
}

// Total sums all injected faults.
func (s FaultFSStats) Total() int {
	return s.ShortWrites + s.ENOSPC + s.RenameFails + s.TornRenames + s.BitRots
}

// FaultFS wraps a CheckpointFS and injects seeded disk faults: short
// writes, ENOSPC, rename failures, torn renames, and post-write bit-rot.
// It is the soak harness's disk fault domain — CheckpointStore runs
// unmodified on top and its Scrub/DeepLatest recovery path has to cope
// with whatever lands on (the simulated) disk. Safe for concurrent use.
type FaultFS struct {
	inner CheckpointFS
	cfg   FaultFSConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultFSStats
}

var _ CheckpointFS = (*FaultFS)(nil)

// NewFaultFS wraps inner with seeded fault injection.
func NewFaultFS(inner CheckpointFS, cfg FaultFSConfig) *FaultFS {
	return &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a copy of the injected-fault counters.
func (f *FaultFS) Stats() FaultFSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// draw makes one seeded probability decision.
func (f *FaultFS) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

// MkdirAll passes through: directory creation is not a modeled fault.
func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error {
	return f.inner.MkdirAll(dir, perm)
}

// OpenFile opens the underlying file wrapped so Write can inject faults.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (CheckpointFile, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, file: file, name: name}, nil
}

// Rename injects rename failure, torn rename, or post-rename bit-rot;
// otherwise it passes through.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.draw(f.cfg.RenameFail) {
		f.count(func(s *FaultFSStats) { s.RenameFails++ })
		return fmt.Errorf("faultfs: injected rename failure %s -> %s: %w", oldpath, newpath, syscall.EIO)
	}
	if f.draw(f.cfg.TornRename) {
		if err := f.truncateToPrefix(oldpath); err == nil {
			f.count(func(s *FaultFSStats) { s.TornRenames++ })
		}
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	if f.draw(f.cfg.BitRot) {
		if err := f.flipByte(newpath); err == nil {
			f.count(func(s *FaultFSStats) { s.BitRots++ })
		}
	}
	return nil
}

// Remove passes through.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// ReadDirNames passes through.
func (f *FaultFS) ReadDirNames(dir string) ([]string, error) {
	return f.inner.ReadDirNames(dir)
}

// ReadFile passes through: read-side corruption is modeled as bit-rot at
// write time, so repeated reads see a stable (corrupt) file the way real
// media corruption behaves.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	return f.inner.ReadFile(name)
}

// count updates the stats under the lock.
func (f *FaultFS) count(update func(*FaultFSStats)) {
	f.mu.Lock()
	update(&f.stats)
	f.mu.Unlock()
}

// truncateToPrefix rewrites name with a seeded prefix of its contents
// (at least one byte short, possibly empty).
func (f *FaultFS) truncateToPrefix(name string) error {
	data, err := f.inner.ReadFile(name)
	if err != nil || len(data) == 0 {
		return err
	}
	f.mu.Lock()
	n := f.rng.Intn(len(data))
	f.mu.Unlock()
	return f.rewrite(name, data[:n])
}

// flipByte XOR-flips one seeded byte of name in place.
func (f *FaultFS) flipByte(name string) error {
	data, err := f.inner.ReadFile(name)
	if err != nil || len(data) == 0 {
		return err
	}
	f.mu.Lock()
	i := f.rng.Intn(len(data))
	bit := byte(1 << f.rng.Intn(8))
	f.mu.Unlock()
	data[i] ^= bit
	return f.rewrite(name, data)
}

// rewrite replaces name's contents via the inner FS (no fault injection —
// this is the injector's own mechanism, not a modeled operation).
func (f *FaultFS) rewrite(name string, data []byte) error {
	file, err := f.inner.OpenFile(name, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := file.Write(data); err != nil {
		file.Close()
		return err
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// faultFile wraps an open file to inject write-time faults.
type faultFile struct {
	fs   *FaultFS
	file CheckpointFile
	name string
}

// Write injects short writes and ENOSPC; both persist a seeded prefix and
// return an error, which is exactly what a torn write or a full disk does
// to the store's temp file.
func (w *faultFile) Write(p []byte) (int, error) {
	if w.fs.draw(w.fs.cfg.ShortWrite) {
		w.fs.mu.Lock()
		n := w.fs.rng.Intn(len(p) + 1)
		w.fs.mu.Unlock()
		if n > 0 {
			w.file.Write(p[:n])
		}
		w.fs.count(func(s *FaultFSStats) { s.ShortWrites++ })
		return n, fmt.Errorf("faultfs: injected short write of %s (%d of %d bytes)", w.name, n, len(p))
	}
	if w.fs.draw(w.fs.cfg.ENOSPC) {
		w.fs.mu.Lock()
		n := w.fs.rng.Intn(len(p) + 1)
		w.fs.mu.Unlock()
		if n > 0 {
			w.file.Write(p[:n])
		}
		w.fs.count(func(s *FaultFSStats) { s.ENOSPC++ })
		return n, fmt.Errorf("faultfs: injected write of %s: %w", w.name, syscall.ENOSPC)
	}
	return w.file.Write(p)
}

// Sync passes through.
func (w *faultFile) Sync() error { return w.file.Sync() }

// Close passes through.
func (w *faultFile) Close() error { return w.file.Close() }
