package model

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// CachingPolicy holds the binary caching decisions x_nf: Get(n, f) reports
// whether SBS n stores content f. The rows are packed into a single
// []uint64 bitset (one cache line covers 512 contents), so Count is a
// popcount sweep and DiffCount an XOR-popcount — both branch-free.
type CachingPolicy struct {
	// N and F are the numbers of SBSs and contents.
	N, F int
	// wordsPerRow is the per-SBS stride in 64-bit words.
	wordsPerRow int
	// bits is the packed storage: SBS n's row occupies
	// bits[n*wordsPerRow : (n+1)*wordsPerRow], content f at bit f%64 of
	// word f/64.
	bits []uint64
}

// NewCachingPolicy returns an all-empty caching policy sized for in.
func NewCachingPolicy(in *Instance) *CachingPolicy {
	return NewCachingPolicyDims(in.N, in.F)
}

// NewCachingPolicyDims returns an all-empty N×F caching policy.
func NewCachingPolicyDims(n, f int) *CachingPolicy {
	w := (f + 63) / 64
	return &CachingPolicy{N: n, F: f, wordsPerRow: w, bits: make([]uint64, n*w)}
}

// CachingPolicyFromBools builds a policy from nested rows (the stable
// serialization shape), validating rectangularity.
func CachingPolicyFromBools(rows [][]bool) (*CachingPolicy, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("model: caching policy needs at least one SBS row")
	}
	f := len(rows[0])
	p := NewCachingPolicyDims(n, f)
	for i, row := range rows {
		if len(row) != f {
			return nil, fmt.Errorf("model: caching row %d has %d entries, want %d", i, len(row), f)
		}
		p.SetRow(i, row)
	}
	return p, nil
}

// Get reports whether SBS n caches content f.
//
//edgecache:noalloc
func (p *CachingPolicy) Get(n, f int) bool {
	return p.bits[n*p.wordsPerRow+f/64]&(1<<(uint(f)%64)) != 0
}

// Set stores the caching decision for (n, f).
//
//edgecache:noalloc
func (p *CachingPolicy) Set(n, f int, cached bool) {
	w := &p.bits[n*p.wordsPerRow+f/64]
	mask := uint64(1) << (uint(f) % 64)
	if cached {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// SetRow replaces SBS n's cache vector from a []bool of length F. It is
// allocation-free, so the coordinator uses it in the sweep hot path.
//
//edgecache:noalloc
func (p *CachingPolicy) SetRow(n int, row []bool) {
	if len(row) != p.F {
		panic(fmt.Sprintf("model: SetRow got %d entries, want F=%d", len(row), p.F))
	}
	base := n * p.wordsPerRow
	for w := 0; w < p.wordsPerRow; w++ {
		var word uint64
		lo := w * 64
		hi := lo + 64
		if hi > p.F {
			hi = p.F
		}
		for f := lo; f < hi; f++ {
			if row[f] {
				word |= 1 << (uint(f) % 64)
			}
		}
		p.bits[base+w] = word
	}
}

// RowBools materializes SBS n's cache vector as a fresh []bool.
func (p *CachingPolicy) RowBools(n int) []bool {
	row := make([]bool, p.F)
	for f := 0; f < p.F; f++ {
		row[f] = p.Get(n, f)
	}
	return row
}

// Bools materializes the full policy as nested rows (the stable
// serialization shape).
func (p *CachingPolicy) Bools() [][]bool {
	rows := make([][]bool, p.N)
	for n := range rows {
		rows[n] = p.RowBools(n)
	}
	return rows
}

// Clone returns a deep copy of the policy.
func (p *CachingPolicy) Clone() *CachingPolicy {
	return &CachingPolicy{
		N: p.N, F: p.F, wordsPerRow: p.wordsPerRow,
		bits: append([]uint64(nil), p.bits...),
	}
}

// Count returns the number of contents cached at SBS n (a popcount sweep
// over the row's words).
func (p *CachingPolicy) Count(n int) int {
	count := 0
	for _, w := range p.bits[n*p.wordsPerRow : (n+1)*p.wordsPerRow] {
		count += bits.OnesCount64(w)
	}
	return count
}

// Contents returns the cached contents of SBS n in increasing order.
func (p *CachingPolicy) Contents(n int) []int {
	var out []int
	base := n * p.wordsPerRow
	for wi := 0; wi < p.wordsPerRow; wi++ {
		w := p.bits[base+wi]
		for w != 0 {
			f := wi*64 + bits.TrailingZeros64(w)
			out = append(out, f)
			w &= w - 1
		}
	}
	return out
}

// DiffCount returns the number of (n, f) placements present in exactly one
// of the two policies (the Hamming distance of the bitsets). Shapes must
// match.
func (p *CachingPolicy) DiffCount(o *CachingPolicy) int {
	if p.N != o.N || p.F != o.F {
		panic(fmt.Sprintf("model: DiffCount shape mismatch: %dx%d vs %dx%d", p.N, p.F, o.N, o.F))
	}
	diff := 0
	for i := range p.bits {
		diff += bits.OnesCount64(p.bits[i] ^ o.bits[i])
	}
	return diff
}

// RoutingPolicy holds the fractional routing decisions y_nuf ∈ [0,1]:
// At(n, u, f) is the fraction of MU group u's demand for content f that
// SBS n serves. The decisions live in a flat N×U×F Tensor3; SBS(n) exposes
// one SBS's U×F block as a zero-copy Mat view.
type RoutingPolicy struct {
	// T is the backing tensor. Direct Data access is allowed in tight
	// loops; prefer the accessors elsewhere.
	T Tensor3
}

// NewRoutingPolicy returns an all-zero routing policy sized for in.
func NewRoutingPolicy(in *Instance) *RoutingPolicy {
	return &RoutingPolicy{T: NewTensor3(in.N, in.U, in.F)}
}

// RoutingPolicyFromBlocks copies nested per-SBS blocks (the stable
// serialization shape) into a flat policy, validating shapes.
func RoutingPolicyFromBlocks(blocks [][][]float64) (*RoutingPolicy, error) {
	n := len(blocks)
	if n == 0 {
		return nil, fmt.Errorf("model: routing policy needs at least one SBS block")
	}
	u := len(blocks[0])
	if u == 0 {
		return nil, fmt.Errorf("model: routing block 0 is empty")
	}
	f := len(blocks[0][0])
	p := &RoutingPolicy{T: NewTensor3(n, u, f)}
	for i, block := range blocks {
		if len(block) != u {
			return nil, fmt.Errorf("model: routing block %d has %d rows, want %d", i, len(block), u)
		}
		for j, row := range block {
			if len(row) != f {
				return nil, fmt.Errorf("model: routing[%d][%d] has %d entries, want %d", i, j, len(row), f)
			}
			copy(p.T.SBSRow(i).Row(j), row)
		}
	}
	return p, nil
}

// At returns y_nuf.
//
//edgecache:noalloc
func (p *RoutingPolicy) At(n, u, f int) float64 { return p.T.At(n, u, f) }

// Set stores y_nuf.
//
//edgecache:noalloc
func (p *RoutingPolicy) Set(n, u, f int, v float64) { p.T.Set(n, u, f, v) }

// Clone returns a deep copy of the policy.
func (p *RoutingPolicy) Clone() *RoutingPolicy {
	return &RoutingPolicy{T: p.T.Clone()}
}

// SetSBS replaces SBS n's routing block with a copy of y (U×F). It is
// allocation-free: the data is copied into the tensor's backing array.
//
//edgecache:noalloc
func (p *RoutingPolicy) SetSBS(n int, y Mat) {
	p.T.SBSRow(n).CopyFrom(y)
}

// SBS returns SBS n's routing block as a Mat view without copying. Callers
// must not mutate the result unless they own the policy.
//
//edgecache:noalloc
func (p *RoutingPolicy) SBS(n int) Mat { return p.T.SBSRow(n) }

// Blocks materializes the policy as nested per-SBS blocks (the stable
// serialization shape).
func (p *RoutingPolicy) Blocks() [][][]float64 {
	out := make([][][]float64, p.T.N)
	for n := range out {
		out[n] = p.T.SBSRow(n).Rows()
	}
	return out
}

// Aggregate returns Σ_n y_nuf·l_nu as a U×F matrix: the total fraction of
// each (u,f) demand served at the edge. This is the quantity the BS
// assembles and broadcasts in the distributed algorithm.
func (p *RoutingPolicy) Aggregate(in *Instance) Mat {
	agg := NewMat(in.U, in.F)
	p.AggregateInto(in, agg)
	return agg
}

// AggregateInto computes Aggregate into a caller-owned U×F matrix without
// allocating. dst is overwritten.
//
//edgecache:noalloc
func (p *RoutingPolicy) AggregateInto(in *Instance, dst Mat) {
	dst.Zero()
	for n := 0; n < in.N; n++ {
		block := p.T.SBSRow(n)
		for u := 0; u < in.U; u++ {
			if !in.Links[n][u] {
				continue
			}
			dstRow := dst.Row(u)
			srcRow := block.Row(u)
			for f := range dstRow {
				dstRow[f] += srcRow[f]
			}
		}
	}
}

// AggregateExcept returns the aggregate routing y_{-n} (eq. 14 of the
// paper): the summed routing of every SBS other than n, masked by links.
//
// The DUA sweep no longer calls this — the coordinator and the BS agent
// maintain the aggregate incrementally (AggregateTracker) and derive
// y_{-n} in O(U·F) — but it remains the reference definition that the
// incremental path is tested against, and baselines still use it.
func (p *RoutingPolicy) AggregateExcept(in *Instance, n int) Mat {
	agg := NewMat(in.U, in.F)
	p.AggregateExceptInto(in, n, agg)
	return agg
}

// AggregateExceptInto computes AggregateExcept into a caller-owned U×F
// matrix without allocating. dst is overwritten.
//
//edgecache:noalloc
func (p *RoutingPolicy) AggregateExceptInto(in *Instance, n int, dst Mat) {
	dst.Zero()
	for i := 0; i < in.N; i++ {
		if i == n {
			continue
		}
		block := p.T.SBSRow(i)
		for u := 0; u < in.U; u++ {
			if !in.Links[i][u] {
				continue
			}
			dstRow := dst.Row(u)
			srcRow := block.Row(u)
			for f := range dstRow {
				dstRow[f] += srcRow[f]
			}
		}
	}
}

// Load returns Σ_u Σ_f y_nuf·l_nu·λ_uf, the bandwidth consumed at SBS n
// (left side of eq. 3). Entries on (n,u) pairs without a link are masked
// out, mirroring Aggregate: an off-link routing entry is structurally
// unservable (it already trips the no-link feasibility check), so it must
// not inflate the bandwidth accounting either.
//
//edgecache:noalloc
func (p *RoutingPolicy) Load(in *Instance, n int) float64 {
	var load float64
	block := p.T.SBSRow(n)
	for u := 0; u < in.U; u++ {
		if !in.Links[n][u] {
			continue
		}
		row := block.Row(u)
		demand := in.Demand[u]
		for f := range row {
			load += row[f] * demand[f]
		}
	}
	return load
}

// AggregateTracker maintains the running masked aggregate Σ_n y_nuf·l_nu
// across a Gauss-Seidel sweep so each phase costs O(U·F) instead of the
// O(N·U·F) AggregateExcept rebuild. The protocol per phase n is:
//
//	tracker.YMinusInto(in, y, n, yMinus)   // y_{-n} = agg − y_n (masked)
//	... SBS n computes its new block from yMinus ...
//	tracker.Install(in, y, n, yMinus, upload)
//
// Install writes the upload into y and rebuilds agg as yMinus + upload
// (masked), so stale mass from the replaced block never accumulates: each
// block's contribution is subtracted exactly once and re-added from fresh
// values. The in-process Coordinator and the message-passing BS agent run
// the identical update sequence, which keeps the two deployments
// bit-for-bit equivalent.
// In addition to the running sums the tracker keeps *change epochs*: a
// monotone phase clock plus, per user row and per SBS block, the clock
// value of the last bitwise change routed through a tracker mutator.
// Epochs are pure metadata — no arithmetic depends on them — and every
// bump decision is an exact bit compare of old versus new values, so a
// converged SBS whose install round-trip reproduces the previous bits
// dirties nothing. The sweep engines key the per-SBS solve memo on these
// epochs (see core.Subproblem): equal epochs over everything SBS n reads
// (its linked aggregate rows and its own block) imply a bit-identical
// y_{-n}, which implies a bit-identical solve — the dirty-set fast path.
type AggregateTracker struct {
	agg Mat
	// clock is the phase clock: engines advance it (BeginPhase) before
	// each mutation stage, and bumps within a stage stamp the current
	// value. Serial by contract — only the driver goroutine advances it.
	clock uint64
	// gen counts wholesale re-synchronizations (Reset/Restore). Memos
	// record it so a resumed or rebuilt tracker invalidates every memo.
	gen uint64
	// rowEpoch[u] is the clock stamp of the last bitwise change to
	// aggregate row u. Rows are written only by the mutator that owns
	// them (disjoint row ranges in the parallel engine), so plain writes
	// suffice.
	rowEpoch []uint64
	// blockEpoch[n] is the clock stamp of the last bitwise change to SBS
	// n's routing block routed through Install, MarkBlockDirty or the
	// overserve repair. The repair is row-sharded across workers and two
	// shards can both scale block n, so the slot is atomic.
	blockEpoch []atomic.Uint64
	// scratch backs the serial RebuildRows convenience; the parallel
	// engine passes per-worker scratch to RebuildRowsScratch instead.
	scratch []float64
}

// NewAggregateTracker returns a tracker for an all-zero routing policy
// sized for in.
func NewAggregateTracker(in *Instance) *AggregateTracker {
	return &AggregateTracker{
		agg:        NewMat(in.U, in.F),
		rowEpoch:   make([]uint64, in.U),
		blockEpoch: make([]atomic.Uint64, in.N),
		scratch:    make([]float64, in.F),
	}
}

// Reset re-synchronizes the tracker with policy y (a full O(N·U·F)
// rebuild). Call it when y changes outside the YMinusInto/Install cycle.
// Every row and block is considered changed: memos keyed on the previous
// generation go stale.
func (t *AggregateTracker) Reset(in *Instance, y *RoutingPolicy) {
	y.AggregateInto(in, t.agg)
	t.invalidateEpochs()
}

// invalidateEpochs bumps the generation and stamps every row and block
// dirty, so any memo keyed on earlier epochs misses.
func (t *AggregateTracker) invalidateEpochs() {
	t.gen++
	t.clock++
	for u := range t.rowEpoch {
		t.rowEpoch[u] = t.clock
	}
	for n := range t.blockEpoch {
		t.blockEpoch[n].Store(t.clock)
	}
}

// BeginPhase advances the phase clock. Engines call it once before each
// mutation stage (a Gauss-Seidel install, a Jacobi merge+repair) from the
// driver goroutine; bumps within the stage stamp the new value.
//
//edgecache:noalloc
func (t *AggregateTracker) BeginPhase() { t.clock++ }

// Gen returns the re-synchronization generation (see Reset/Restore).
//
//edgecache:noalloc
func (t *AggregateTracker) Gen() uint64 { return t.gen }

// RowEpoch returns the stamp of the last bitwise change to aggregate
// row u.
//
//edgecache:noalloc
func (t *AggregateTracker) RowEpoch(u int) uint64 { return t.rowEpoch[u] }

// BlockEpoch returns the stamp of the last bitwise change to SBS n's
// routing block.
//
//edgecache:noalloc
func (t *AggregateTracker) BlockEpoch(n int) uint64 { return t.blockEpoch[n].Load() }

// LinkedRowEpochMax returns the largest row epoch over the rows SBS n is
// linked to — the aggregate half of n's memo key. Epochs only grow, so
// the max moves if and only if some linked row changed.
//
//edgecache:noalloc
func (t *AggregateTracker) LinkedRowEpochMax(in *Instance, n int) uint64 {
	var hi uint64
	links := in.Links[n]
	for u, e := range t.rowEpoch {
		if links[u] && e > hi {
			hi = e
		}
	}
	return hi
}

// MarkBlockDirty stamps SBS n's block changed at the current clock. The
// Jacobi engines call it for every block they overwrote outside the
// tracker (the next-round buffer swap).
//
//edgecache:noalloc
func (t *AggregateTracker) MarkBlockDirty(n int) { t.blockEpoch[n].Store(t.clock) }

// Aggregate exposes the current aggregate as a view. Callers must not
// mutate it.
//
//edgecache:noalloc
func (t *AggregateTracker) Aggregate() Mat { return t.agg }

// Restore overwrites the tracker with a serialized aggregate (a
// checkpoint's). Resume must NOT rebuild via Reset: the incremental
// YMinusInto/Install path accumulates in a different floating-point order
// than a full rebuild, and the bit-identical resume guarantee requires the
// exact running sums. Epochs are invalidated wholesale — they are never
// serialized (the memo is rebuilt, not checkpointed), so a resumed run
// re-solves every sub-problem once and re-learns the dirty set.
func (t *AggregateTracker) Restore(src Mat) {
	t.agg.CopyFrom(src)
	t.invalidateEpochs()
}

// YMinusInto computes y_{-n} = aggregate − SBS n's masked block into dst
// without allocating. dst is overwritten.
//
//edgecache:noalloc
func (t *AggregateTracker) YMinusInto(in *Instance, y *RoutingPolicy, n int, dst Mat) {
	dst.CopyFrom(t.agg)
	block := y.T.SBSRow(n)
	for u := 0; u < in.U; u++ {
		if !in.Links[n][u] {
			continue
		}
		dstRow := dst.Row(u)
		srcRow := block.Row(u)
		for f := range dstRow {
			dstRow[f] -= srcRow[f]
		}
	}
}

// Install stores upload as SBS n's block in y and advances the aggregate
// to yMinus + upload (masked by n's links), all without allocating.
// yMinus must be the matrix YMinusInto produced for this phase.
//
// The values written are exactly the seed implementation's
// CopyFrom-then-add sequence; on top of it Install compares old and new
// bits and stamps the epochs of the rows and the block that actually
// changed. A converged SBS whose round-trip (agg − y_n) + y_n reproduces
// the previous bits therefore bumps nothing, which is what lets its
// neighbours keep their memos.
//
//edgecache:noalloc
func (t *AggregateTracker) Install(in *Instance, y *RoutingPolicy, n int, yMinus, upload Mat) {
	blockChanged := false
	dst := y.T.SBSRow(n)
	for u := 0; u < in.U; u++ {
		dstRow := dst.Row(u)
		upRow := upload.Row(u)
		for f := range dstRow {
			v := upRow[f]
			if math.Float64bits(dstRow[f]) != math.Float64bits(v) {
				blockChanged = true
			}
			dstRow[f] = v
		}
	}
	if blockChanged {
		t.blockEpoch[n].Store(t.clock)
	}
	links := in.Links[n]
	for u := 0; u < in.U; u++ {
		aggRow := t.agg.Row(u)
		ymRow := yMinus.Row(u)
		changed := false
		if !links[u] {
			// Off-link rows: the reference copies yMinus verbatim. By the
			// YMinusInto contract those bits already equal the aggregate's,
			// but the compare keeps the epochs exact even for callers that
			// hand-built yMinus.
			for f := range aggRow {
				v := ymRow[f]
				if math.Float64bits(aggRow[f]) != math.Float64bits(v) {
					changed = true
				}
				aggRow[f] = v
			}
		} else {
			upRow := upload.Row(u)
			for f := range aggRow {
				v := ymRow[f] + upRow[f]
				if math.Float64bits(aggRow[f]) != math.Float64bits(v) {
					changed = true
				}
				aggRow[f] = v
			}
		}
		if changed {
			t.rowEpoch[u] = t.clock
		}
	}
}

// Swap exchanges the backing tensors of p and o without copying. The
// Jacobi engines use it at the end of a round to promote the freshly
// written next-round policy while recycling the previous round's storage
// as the next scratch buffer. Shapes must match.
//
//edgecache:noalloc
func (p *RoutingPolicy) Swap(o *RoutingPolicy) {
	if p.T.N != o.T.N || p.T.U != o.T.U || p.T.F != o.T.F {
		panic(fmt.Sprintf("model: Swap shape mismatch: %dx%dx%d vs %dx%dx%d",
			p.T.N, p.T.U, p.T.F, o.T.N, o.T.U, o.T.F))
	}
	p.T, o.T = o.T, p.T
}

// RebuildRows recomputes the aggregate rows u ∈ [u0, u1) from y. Each
// entry is accumulated over n in ascending order — the same per-entry
// floating-point order as AggregateInto — so rebuilding the full range in
// one call, or sharding disjoint row ranges across goroutines, produces
// bit-identical results regardless of the partitioning. This is the merge
// step of the Jacobi round: the per-SBS blocks were written concurrently,
// and the reduction order is fixed by construction, not by scheduling.
//
//edgecache:noalloc
func (t *AggregateTracker) RebuildRows(in *Instance, y *RoutingPolicy, u0, u1 int) {
	t.RebuildRowsScratch(in, y, u0, u1, t.scratch)
}

// RebuildRowsScratch is RebuildRows with a caller-supplied length-F
// accumulation row. Concurrent shards must pass disjoint scratch (the
// parallel engine owns one per worker); the serial engines use the
// tracker-internal convenience above. The scratch lets the rebuild detect
// per-row bitwise change — the row is accumulated aside, compared, then
// copied — so the epoch stamps stay exact under the same n-ascending
// reduction order as before.
//
//edgecache:noalloc
func (t *AggregateTracker) RebuildRowsScratch(in *Instance, y *RoutingPolicy, u0, u1 int, scratch []float64) {
	for u := u0; u < u1; u++ {
		for f := range scratch {
			scratch[f] = 0
		}
		for n := 0; n < in.N; n++ {
			if !in.Links[n][u] {
				continue
			}
			srcRow := y.T.SBSRow(n).Row(u)
			for f := range scratch {
				scratch[f] += srcRow[f]
			}
		}
		aggRow := t.agg.Row(u)
		changed := false
		for f := range aggRow {
			v := scratch[f]
			if math.Float64bits(aggRow[f]) != math.Float64bits(v) {
				changed = true
			}
			aggRow[f] = v
		}
		if changed {
			t.rowEpoch[u] = t.clock
		}
	}
}

// RepairOverserveRows restores the no-overserve constraint (4) on rows
// u ∈ [u0, u1): wherever the aggregate exceeds one, every SBS's share of
// that demand is scaled down proportionally, and the aggregate entry is
// then recomputed from the repaired values with the same n-ascending
// per-entry order as RebuildRows. The recompute (rather than writing 1.0)
// keeps the tracker bit-identical to a full AggregateInto rebuild of the
// repaired policy, which is what keeps tracker-based cost evaluation
// bit-equal to the reference TotalServingCost path. Disjoint row ranges
// touch disjoint policy and aggregate memory, so shards may run
// concurrently.
//
// Scaling an overserved entry rewrites the aggregate entry and every
// contributing nonzero routing value, so the repair stamps the row epoch
// and — atomically, because two row shards can scale the same SBS's block
// — the block epoch of every SBS whose share actually moved (a zero share
// times any factor stays bitwise zero).
//
//edgecache:noalloc
func (t *AggregateTracker) RepairOverserveRows(in *Instance, y *RoutingPolicy, u0, u1 int) {
	for u := u0; u < u1; u++ {
		aggRow := t.agg.Row(u)
		rowChanged := false
		for f := range aggRow {
			if aggRow[f] <= 1+1e-12 {
				continue
			}
			factor := 1 / aggRow[f]
			var sum float64
			for n := 0; n < in.N; n++ {
				if !in.Links[n][u] {
					continue
				}
				row := y.T.SBSRow(n).Row(u)
				if math.Float64bits(row[f]) != 0 {
					row[f] *= factor
					t.blockEpoch[n].Store(t.clock)
				}
				sum += row[f]
			}
			aggRow[f] = sum
			rowChanged = true
		}
		if rowChanged {
			t.rowEpoch[u] = t.clock
		}
	}
}

// Solution bundles one pair of caching and routing policies together with
// the serving cost it achieves.
type Solution struct {
	Caching *CachingPolicy
	Routing *RoutingPolicy
	Cost    CostBreakdown
}

// Clone returns a deep copy of the solution.
func (s *Solution) Clone() *Solution {
	if s == nil {
		return nil
	}
	return &Solution{Caching: s.Caching.Clone(), Routing: s.Routing.Clone(), Cost: s.Cost}
}

// String summarizes the solution in one line.
func (s *Solution) String() string {
	return fmt.Sprintf("cost=%.2f (edge=%.2f backhaul=%.2f)", s.Cost.Total, s.Cost.Edge, s.Cost.Backhaul)
}
