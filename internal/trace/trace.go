// Package trace generates request workloads for the edge-caching
// experiments.
//
// The paper evaluates on a real trace: the view counts of the top-50
// trending videos of a well-known streaming site over 30 minutes on
// Dec 18 2018 (its Fig. 2 shows the first 20, with a head above 140,000
// views and a tail of a few thousand). That trace is not publicly
// available, so this package synthesizes an equivalent: a Zipf-shaped
// view-count vector calibrated to the same head and tail magnitudes, plus
// the machinery the experiments need around it — distributing each video's
// requests over MU groups and expanding the demand matrix into a
// time-ordered reference stream for cache-replacement baselines.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TrendingConfig parameterizes the synthetic trending-video trace.
type TrendingConfig struct {
	// Videos is the number of contents (the paper records 50).
	Videos int
	// HeadViews is the view count of the most popular video
	// (the paper's head exceeds 140,000).
	HeadViews float64
	// Exponent is the Zipf decay exponent s in views ∝ rank^(-s).
	// With Videos=50 and HeadViews≈150,000, s≈1.1 lands the tail in the
	// low thousands, matching Fig. 2.
	Exponent float64
	// Jitter is the multiplicative log-normal noise applied to each rank so
	// the curve is realistically ragged rather than a perfect power law.
	// 0 disables noise; 0.15 reproduces Fig. 2's raggedness.
	Jitter float64
	// Seed drives the jitter; traces are deterministic given a seed.
	Seed int64
}

// DefaultTrendingConfig returns the configuration used throughout the
// experiment harness, calibrated to the paper's Fig. 2.
func DefaultTrendingConfig() TrendingConfig {
	return TrendingConfig{
		Videos:    50,
		HeadViews: 150000,
		Exponent:  1.1,
		Jitter:    0.15,
		Seed:      2018_12_18,
	}
}

// TrendingVideos synthesizes the view-count vector, sorted by rank
// (most-viewed first). All counts are strictly positive.
func TrendingVideos(cfg TrendingConfig) ([]float64, error) {
	if cfg.Videos <= 0 {
		return nil, fmt.Errorf("trace: Videos must be positive, got %d", cfg.Videos)
	}
	if cfg.HeadViews <= 0 {
		return nil, fmt.Errorf("trace: HeadViews must be positive, got %v", cfg.HeadViews)
	}
	if cfg.Exponent < 0 {
		return nil, fmt.Errorf("trace: Exponent must be non-negative, got %v", cfg.Exponent)
	}
	if cfg.Jitter < 0 {
		return nil, fmt.Errorf("trace: Jitter must be non-negative, got %v", cfg.Jitter)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	views := make([]float64, cfg.Videos)
	for k := range views {
		v := cfg.HeadViews * math.Pow(float64(k+1), -cfg.Exponent)
		if cfg.Jitter > 0 {
			v *= math.Exp(rng.NormFloat64() * cfg.Jitter)
		}
		if v < 1 {
			v = 1
		}
		views[k] = math.Round(v)
	}
	// Jitter can locally reorder ranks; the trace reports videos by
	// popularity rank, so restore monotone non-increasing order.
	sort.Sort(sort.Reverse(sort.Float64Slice(views)))
	return views, nil
}

// Zipf returns n weights following a Zipf distribution with exponent s,
// normalized to sum to 1. It is the popularity model used by the synthetic
// workload generators.
func Zipf(n int, s float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: n must be positive, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("trace: exponent must be non-negative, got %v", s)
	}
	w := make([]float64, n)
	var sum float64
	for k := range w {
		w[k] = math.Pow(float64(k+1), -s)
		sum += w[k]
	}
	for k := range w {
		w[k] /= sum
	}
	return w, nil
}

// DemandMatrix distributes per-content view counts across U MU groups and
// returns the U×F demand matrix λ. Each content's views are split with
// random proportions (a symmetric Dirichlet via normalized exponentials),
// matching the paper's "we further distributed requests randomly among
// MUs". Scale multiplies every entry; the experiments use it to convert raw
// 30-minute view counts into request units commensurate with the SBS
// bandwidths (see EXPERIMENTS.md for the calibration).
func DemandMatrix(views []float64, groups int, scale float64, seed int64) ([][]float64, error) {
	if groups <= 0 {
		return nil, fmt.Errorf("trace: groups must be positive, got %d", groups)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("trace: scale must be positive, got %v", scale)
	}
	rng := rand.New(rand.NewSource(seed))
	demand := make([][]float64, groups)
	for u := range demand {
		demand[u] = make([]float64, len(views))
	}
	weights := make([]float64, groups)
	for f, total := range views {
		if total < 0 {
			return nil, fmt.Errorf("trace: views[%d] = %v is negative", f, total)
		}
		var sum float64
		for u := range weights {
			weights[u] = rng.ExpFloat64()
			sum += weights[u]
		}
		for u := range weights {
			demand[u][f] = total * scale * weights[u] / sum
		}
	}
	return demand, nil
}

// Request is one content reference in a replayable stream.
type Request struct {
	// Time is the reference timestamp in abstract time units.
	Time float64
	// Group is the MU group issuing the request.
	Group int
	// Content is the requested content.
	Content int
}

// Stream expands a demand matrix into a time-ordered reference stream over
// the given horizon. Each (u,f) demand of λ requests becomes a Poisson
// process of rate λ/horizon; the merged stream is sorted by time. Streams
// are what cache-replacement baselines such as LRFU consume.
//
// The expected stream length is Σλ; callers should scale demands down
// before expanding very large matrices.
func Stream(demand [][]float64, horizon float64, seed int64) ([]Request, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("trace: horizon must be positive, got %v", horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	var reqs []Request
	for u, row := range demand {
		for f, lambda := range row {
			if lambda < 0 {
				return nil, fmt.Errorf("trace: demand[%d][%d] = %v is negative", u, f, lambda)
			}
			// Sample arrivals of a Poisson process with rate lambda/horizon
			// on [0, horizon) by accumulating exponential gaps.
			rate := lambda / horizon
			if rate <= 0 {
				continue
			}
			t := rng.ExpFloat64() / rate
			for t < horizon {
				reqs = append(reqs, Request{Time: t, Group: u, Content: f})
				t += rng.ExpFloat64() / rate
			}
		}
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Time < reqs[j].Time })
	return reqs, nil
}

// DiurnalProfile returns per-slot demand multipliers following a smooth
// day/night curve: a raised cosine oscillating between trough and peak
// over one full period across the slots, starting at the phase offset (in
// slots). It feeds the time-slotted studies in internal/dynamic with a
// more realistic load pattern than constant demand.
func DiurnalProfile(slots int, trough, peak, phase float64) ([]float64, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("trace: slots must be positive, got %d", slots)
	}
	if trough < 0 || peak < trough {
		return nil, fmt.Errorf("trace: need 0 ≤ trough ≤ peak, got %v and %v", trough, peak)
	}
	out := make([]float64, slots)
	for t := range out {
		// Raised cosine in [0,1], peak at phase.
		x := (math.Cos(2*math.Pi*(float64(t)-phase)/float64(slots)) + 1) / 2
		out[t] = trough + (peak-trough)*x
	}
	return out, nil
}

// ScaleDemand returns a copy of the demand matrix multiplied by factor.
func ScaleDemand(demand [][]float64, factor float64) ([][]float64, error) {
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("trace: factor must be finite and non-negative, got %v", factor)
	}
	out := make([][]float64, len(demand))
	for u := range demand {
		out[u] = make([]float64, len(demand[u]))
		for f, v := range demand[u] {
			out[u][f] = v * factor
		}
	}
	return out, nil
}

// Popularity returns the per-content total demand Σ_u λ_uf of a demand
// matrix.
func Popularity(demand [][]float64) []float64 {
	if len(demand) == 0 {
		return nil
	}
	pop := make([]float64, len(demand[0]))
	for _, row := range demand {
		for f, v := range row {
			pop[f] += v
		}
	}
	return pop
}

// TopContents returns the indices of the k most demanded contents in
// decreasing popularity order (ties broken by lower index).
func TopContents(demand [][]float64, k int) []int {
	pop := Popularity(demand)
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pop[idx[a]] > pop[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	return idx[:k]
}
