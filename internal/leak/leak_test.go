package leak

import (
	"strings"
	"testing"
	"time"
)

// TestDiffCleanPass covers the no-leak path, including goroutines that
// exit between snapshot and check.
func TestDiffCleanPass(t *testing.T) {
	before := Take()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	if err := before.Diff(); err != nil {
		t.Fatalf("clean run reported a leak: %v", err)
	}
}

// shortSettle shrinks the retry schedule for tests that expect a leak, so
// they do not pay the full ~3s settle wait; the schedule is restored on
// cleanup.
func shortSettle(t *testing.T) {
	t.Helper()
	saved := settleSteps
	settleSteps = []time.Duration{time.Millisecond, 5 * time.Millisecond}
	t.Cleanup(func() { settleSteps = saved })
}

// TestDiffDetectsLeak leaks a parked goroutine on purpose and checks the
// error carries both the counts and a stack dump naming this file.
func TestDiffDetectsLeak(t *testing.T) {
	shortSettle(t)
	before := Take()
	park := make(chan struct{})
	defer close(park)
	started := make(chan struct{})
	go func() {
		close(started)
		<-park // parked until test cleanup: a deliberate leak
	}()
	<-started
	err := before.Diff()
	if err == nil {
		t.Fatal("leaked goroutine not detected")
	}
	if !strings.Contains(err.Error(), "leak_test.go") {
		t.Fatalf("leak error does not include a stack dump naming the source: %v", err)
	}
}

// TestDiffWaitsForSettle checks the retry loop tolerates goroutines that
// exit shortly after the guarded work returns.
func TestDiffWaitsForSettle(t *testing.T) {
	before := Take()
	go func() { time.Sleep(20 * time.Millisecond) }()
	if err := before.Diff(); err != nil {
		t.Fatalf("slow-exit goroutine reported as leak: %v", err)
	}
}

// recorder implements TB, capturing failures.
type recorder struct {
	*testing.T
	failed bool
}

func (r *recorder) Errorf(string, ...any) { r.failed = true }

// TestCheckReportsThroughTB wires Check to a fake TB and confirms the
// cleanup path fires on a leak.
func TestCheckReportsThroughTB(t *testing.T) {
	shortSettle(t)
	park := make(chan struct{})
	defer close(park)

	rec := &recorder{T: t}
	func() {
		before := Take()
		// Leak several goroutines so one unrelated goroutine exiting
		// concurrently (e.g. a previous test's teardown) cannot mask the
		// growth.
		started := make(chan struct{})
		for i := 0; i < 5; i++ {
			go func() {
				started <- struct{}{}
				<-park
			}()
			<-started
		}
		if err := before.Diff(); err == nil {
			t.Fatal("expected leak")
		} else {
			rec.Errorf("%v", err)
		}
	}()
	if !rec.failed {
		t.Fatal("leak not reported through TB")
	}
}
