package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/sim"
	"edgecache/internal/transport"
)

// Config wires one chaos run.
type Config struct {
	// BS tunes the BS agent; its OnEvent hook (if any) is preserved and
	// fed alongside the report's own counter.
	BS sim.BSConfig
	// Sub is the per-SBS sub-problem configuration.
	Sub core.SubproblemConfig
	// PrivacyFor, when non-nil, supplies per-SBS LPPM configurations
	// (mirrors sim.RunInmem).
	PrivacyFor func(n int) *core.PrivacyConfig
	// Schedule is the fault plan.
	Schedule Schedule
}

// FiredEvent records a scheduled event and the protocol point at which it
// actually fired (>= its trigger point when phases were skipped).
type FiredEvent struct {
	Event
	AtSweep, AtPhase int
}

// Report is what the chaos run observed.
type Report struct {
	// Fired lists the executed events in firing order; events whose
	// trigger point was never reached (run ended first) are in Unfired.
	Fired   []FiredEvent
	Unfired []Event
	// Counter aggregates every protocol anomaly seen by the BS and SBS
	// event hooks during the run.
	Counter *sim.EventCounter
}

// runner owns the live state of one chaos run.
type runner struct {
	inst    *model.Instance
	cfg     Config
	hub     *transport.Hub
	counter *sim.EventCounter
	baseCtx context.Context
	wg      sync.WaitGroup

	mu          sync.Mutex
	pending     []Event
	fired       []FiredEvent
	slots       []*sbsSlot
	bsLink      *link
	partitioned map[string]bool

	// BS lifecycle: bsCancel kills the current BS incarnation (OpBSCrash),
	// bsCrashed distinguishes a scheduled crash from a genuine run error,
	// bsRestarts queues the scheduled recoveries (consumed on crash, not
	// fired at a protocol point — protocol time is frozen while the BS is
	// down) and bsFaults tracks the BS link's current fault configuration
	// so a restarted incarnation inherits it.
	bsCancel   context.CancelFunc
	bsCrashed  bool
	bsRestarts []Event
	bsFaults   transport.FaultConfig
}

// sbsSlot tracks one SBS position: its current agent (if alive), link and
// fault configuration (inherited across restarts).
type sbsSlot struct {
	name       string
	alive      bool
	generation int
	link       *link
	cancel     context.CancelFunc
	faults     transport.FaultConfig
}

const bsName = "bs"

// Run executes the fault schedule against a full protocol run over an
// in-memory hub and returns the BS result plus the chaos report. The run
// is deterministic for a fixed instance, configuration and schedule up to
// goroutine scheduling of in-flight messages (the schedule itself always
// fires at the same protocol points).
func Run(ctx context.Context, inst *model.Instance, cfg Config) (*core.RunResult, *Report, error) {
	if err := inst.Validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.Schedule.Validate(inst.N); err != nil {
		return nil, nil, err
	}
	agentCtx, cancelAgents := context.WithCancel(ctx)
	defer cancelAgents()
	r := &runner{
		inst:        inst,
		cfg:         cfg,
		hub:         transport.NewHub(),
		counter:     &sim.EventCounter{},
		baseCtx:     agentCtx,
		partitioned: make(map[string]bool),
		bsFaults:    cfg.Schedule.Links,
	}
	// BS restarts are consumed by the incarnation loop below, not fired at
	// a protocol point, so they live in their own queue.
	for _, ev := range cfg.Schedule.sortedEvents() {
		if ev.Op == OpBSRestart {
			r.bsRestarts = append(r.bsRestarts, ev)
		} else {
			r.pending = append(r.pending, ev)
		}
	}

	sbsNames := make([]string, inst.N)
	for n := 0; n < inst.N; n++ {
		sbsNames[n] = fmt.Sprintf("sbs-%d", n)
		slot := &sbsSlot{name: sbsNames[n], faults: cfg.Schedule.Links}
		r.slots = append(r.slots, slot)
		if err := r.startAgent(n); err != nil {
			return nil, nil, err
		}
	}

	bsCfg := cfg.BS
	bsCfg.OnEvent = sim.MultiHook(cfg.BS.OnEvent, r.counter.Hook())
	// A schedule that crashes the BS needs somewhere to recover from:
	// default to an in-memory store snapshotting every sweep boundary.
	if bsCfg.Checkpoint == nil && hasBSCrash(cfg.Schedule) {
		bsCfg.Checkpoint = &core.CheckpointConfig{Sink: model.NewMemCheckpointStore(0), EverySweeps: 1}
	}

	// startBS brings up one BS endpoint incarnation. Each gets disjoint
	// sequence numbers (AdvanceSeq) so the SBS-side dedup windows do not
	// discard the restarted coordinator's first messages as duplicates.
	var bsEp *controller
	startBS := func(gen int) error {
		rawBS, err := r.hub.Register(bsName, 8*inst.N+8)
		if err != nil {
			return fmt.Errorf("chaos: start BS generation %d: %w", gen, err)
		}
		r.mu.Lock()
		faults := r.bsFaults
		r.mu.Unlock()
		lk, err := newLink(rawBS, faults, r.linkSeed(-1, gen))
		if err != nil {
			return err
		}
		rel, err := transport.NewReliableEndpoint(lk, transport.RetryPolicy{Seed: cfg.Schedule.Seed + int64(gen)})
		if err != nil {
			return err
		}
		rel.AdvanceSeq(uint64(gen) << 20)
		r.mu.Lock()
		r.bsLink = lk
		r.mu.Unlock()
		bsEp = &controller{r: r, inner: rel}
		return nil
	}
	if err := startBS(0); err != nil {
		return nil, nil, err
	}
	defer func() { bsEp.Close() }()

	// The BS incarnation loop: run (or resume) the coordinator until it
	// finishes, fails for real, or is crashed by the schedule; a scheduled
	// crash with a queued restart recovers from the newest checkpoint.
	var (
		res    *core.RunResult
		runErr error
		ck     *model.Checkpoint
	)
	for gen := 0; ; gen++ {
		bs, err := sim.NewBSAgent(inst, bsCfg, bsEp, sbsNames)
		if err != nil {
			return nil, nil, err
		}
		bsCtx, bsCancel := context.WithCancel(ctx)
		r.mu.Lock()
		r.bsCancel = bsCancel
		r.bsCrashed = false
		r.mu.Unlock()
		if ck != nil {
			res, runErr = bs.Resume(bsCtx, ck)
		} else {
			res, runErr = bs.Run(bsCtx)
		}
		bsCancel()
		r.mu.Lock()
		crashed := r.bsCrashed
		haveRestart := len(r.bsRestarts) > 0
		var restart Event
		if crashed && haveRestart {
			restart = r.bsRestarts[0]
			r.bsRestarts = r.bsRestarts[1:]
		}
		r.mu.Unlock()
		if !crashed || ctx.Err() != nil {
			break
		}
		if !haveRestart {
			runErr = fmt.Errorf("chaos: BS crashed with no scheduled restart: %w", runErr)
			break
		}
		// Tear down the dead incarnation (unregisters the BS name) and
		// recover from the newest decodable checkpoint; none means the
		// crash predates the first sweep boundary and the BS starts cold.
		bsEp.Close()
		if err := startBS(gen + 1); err != nil {
			return nil, nil, err
		}
		ck = nil
		if bsCfg.Checkpoint != nil {
			if src, ok := bsCfg.Checkpoint.Sink.(model.CheckpointSource); ok {
				c, err := src.Latest()
				switch {
				case err == nil:
					ck = c
				case errors.Is(err, model.ErrNoCheckpoint):
				default:
					return nil, nil, fmt.Errorf("chaos: recover checkpoint: %w", err)
				}
			}
		}
		at := 0
		if ck != nil {
			at = ck.Sweep
		}
		r.mu.Lock()
		r.fired = append(r.fired, FiredEvent{Event: restart, AtSweep: at, AtPhase: 0})
		r.mu.Unlock()
	}

	cancelAgents()
	done := make(chan struct{})
	go func() { r.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		return nil, nil, fmt.Errorf("chaos: SBS agents failed to stop")
	}
	return res, r.report(), runErr
}

// hasBSCrash reports whether the schedule contains an OpBSCrash.
func hasBSCrash(s Schedule) bool {
	for _, ev := range s.Events {
		if ev.Op == OpBSCrash {
			return true
		}
	}
	return false
}

// report assembles the final chaos report.
func (r *runner) report() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	unfired := append(append([]Event(nil), r.pending...), r.bsRestarts...)
	return &Report{Fired: r.fired, Unfired: unfired, Counter: r.counter}
}

// linkSeed derives a deterministic per-link, per-generation seed (-1 is
// the BS link).
func (r *runner) linkSeed(n, generation int) int64 {
	return r.cfg.Schedule.Seed*1_000_003 + int64(n+2)*1009 + int64(generation)*97
}

// startAgent registers a fresh endpoint for SBS n and launches its agent.
// Callers must not hold r.mu.
func (r *runner) startAgent(n int) error {
	r.mu.Lock()
	slot := r.slots[n]
	faults := slot.faults
	generation := slot.generation
	r.mu.Unlock()

	raw, err := r.hub.Register(slot.name, 16)
	if err != nil {
		return fmt.Errorf("chaos: restart %s: %w", slot.name, err)
	}
	lk, err := newLink(raw, faults, r.linkSeed(n, generation))
	if err != nil {
		return err
	}
	rel, err := transport.NewReliableEndpoint(lk, transport.RetryPolicy{Seed: r.linkSeed(n, generation) + 1})
	if err != nil {
		return err
	}
	// Each incarnation must use a sequence range disjoint from its
	// predecessors', or the BS's dedup window would discard the restarted
	// agent's first uploads as retry duplicates.
	rel.AdvanceSeq(uint64(generation) << 20)
	var privacy *core.PrivacyConfig
	if r.cfg.PrivacyFor != nil {
		privacy = r.cfg.PrivacyFor(n)
	}
	agent, err := sim.NewSBSAgent(r.inst, n, r.cfg.Sub, privacy, rel, bsName)
	if err != nil {
		return err
	}
	agent.SetEventHook(r.counter.Hook())
	actx, cancel := context.WithCancel(r.baseCtx)

	r.mu.Lock()
	slot.link = lk
	slot.cancel = cancel
	slot.alive = true
	slot.generation++
	r.mu.Unlock()

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		_ = agent.Run(actx) // exits on MsgDone, crash-cancel or run teardown
	}()
	return nil
}

// fire executes every pending event whose trigger point is at or before
// (sweep, phase).
func (r *runner) fire(sweep, phase int) {
	for {
		r.mu.Lock()
		if len(r.pending) == 0 {
			r.mu.Unlock()
			return
		}
		ev := r.pending[0]
		if ev.Sweep > sweep || (ev.Sweep == sweep && ev.Phase > phase) {
			r.mu.Unlock()
			return
		}
		r.pending = r.pending[1:]
		r.fired = append(r.fired, FiredEvent{Event: ev, AtSweep: sweep, AtPhase: phase})
		r.mu.Unlock()
		r.apply(ev)
	}
}

// apply executes one fault event. Errors are deliberately impossible by
// construction (the schedule was validated); registration races on
// restart leave the slot dead, which the protocol tolerates like any
// other crash.
func (r *runner) apply(ev Event) {
	switch ev.Op {
	case OpCrash:
		r.mu.Lock()
		slot := r.slots[ev.SBS]
		alive, cancel, lk := slot.alive, slot.cancel, slot.link
		slot.alive = false
		r.mu.Unlock()
		if alive {
			cancel()
			lk.Close() // unregisters the name; sends to it now fail
		}
	case OpRestart:
		r.mu.Lock()
		alive := r.slots[ev.SBS].alive
		r.mu.Unlock()
		if !alive {
			_ = r.startAgent(ev.SBS)
		}
	case OpPartition:
		r.mu.Lock()
		slot := r.slots[ev.SBS]
		lk := slot.link
		r.partitioned[slot.name] = true
		if ev.Phases > 0 {
			healSweep, healPhase := advance(ev.Sweep, ev.Phase, ev.Phases, r.inst.N)
			heal := Event{Sweep: healSweep, Phase: healPhase, SBS: ev.SBS, Op: OpHeal}
			r.pending = insertSorted(r.pending, heal)
		}
		r.mu.Unlock()
		if lk != nil {
			lk.setCut(true)
		}
	case OpHeal:
		r.mu.Lock()
		slot := r.slots[ev.SBS]
		lk := slot.link
		delete(r.partitioned, slot.name)
		r.mu.Unlock()
		if lk != nil {
			lk.setCut(false)
		}
	case OpBSCrash:
		// Cancel the current BS incarnation's context; its Run returns an
		// error and the incarnation loop decides whether a restart is due.
		r.mu.Lock()
		cancel := r.bsCancel
		r.bsCrashed = true
		r.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	case OpBSRestart:
		// Never reaches apply: restarts live in their own queue and are
		// consumed by the incarnation loop after a crash.
	case OpLinkFaults:
		if ev.SBS == -1 {
			r.mu.Lock()
			r.bsFaults = ev.Faults
			bsLink := r.bsLink
			r.mu.Unlock()
			_ = bsLink.setFaults(ev.Faults, r.linkSeed(-1, 1))
			r.mu.Lock()
			slots := append([]*sbsSlot(nil), r.slots...)
			r.mu.Unlock()
			for n, slot := range slots {
				r.mu.Lock()
				slot.faults = ev.Faults
				lk := slot.link
				r.mu.Unlock()
				if lk != nil {
					_ = lk.setFaults(ev.Faults, r.linkSeed(n, slot.generation))
				}
			}
		} else {
			r.mu.Lock()
			slot := r.slots[ev.SBS]
			slot.faults = ev.Faults
			lk := slot.link
			generation := slot.generation
			r.mu.Unlock()
			if lk != nil {
				_ = lk.setFaults(ev.Faults, r.linkSeed(ev.SBS, generation))
			}
		}
	}
}

// isPartitioned reports whether outbound traffic to the named peer is cut.
func (r *runner) isPartitioned(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.partitioned[name]
}

// insertSorted adds ev keeping the pending list ordered by trigger point.
func insertSorted(pending []Event, ev Event) []Event {
	i := 0
	for i < len(pending) && (pending[i].Sweep < ev.Sweep ||
		(pending[i].Sweep == ev.Sweep && pending[i].Phase <= ev.Phase)) {
		i++
	}
	pending = append(pending, Event{})
	copy(pending[i+1:], pending[i:])
	pending[i] = ev
	return pending
}

// controller is the BS-side chaos tap: every phase announcement advances
// protocol time and fires due events before the message leaves, so the
// schedule executes at deterministic protocol points. Outbound traffic to
// partitioned SBSs is discarded here (the SBS-side link cuts the reverse
// direction).
type controller struct {
	r     *runner
	inner transport.Endpoint
}

var _ transport.Endpoint = (*controller)(nil)

func (c *controller) Name() string { return c.inner.Name() }

func (c *controller) Send(ctx context.Context, to string, m transport.Message) error {
	if m.Type == transport.MsgPhaseStart {
		c.r.fire(m.Sweep, m.Phase)
	}
	if c.r.isPartitioned(to) {
		return nil // silently lost across the partition
	}
	return c.inner.Send(ctx, to, m)
}

func (c *controller) Recv(ctx context.Context) (transport.Message, error) {
	return c.inner.Recv(ctx)
}

func (c *controller) Close() error { return c.inner.Close() }
