package core

import (
	"testing"

	"edgecache/internal/model"
)

// FuzzCoordinator decodes an instance from raw fuzz bytes and asserts the
// end-to-end invariant: for every structurally valid instance, Algorithm 1
// terminates without panicking and returns a feasible policy. Run longer
// sessions with `go test -fuzz=FuzzCoordinator ./internal/core`.
func FuzzCoordinator(f *testing.F) {
	f.Add([]byte{2, 3, 4, 10, 20, 30, 5, 100, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{1, 1, 1, 0, 0, 0})
	f.Add([]byte{3, 2, 5, 255, 0, 128, 9, 9, 9, 9, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst := decodeInstance(data)
		if inst == nil {
			return
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("decodeInstance built an invalid instance: %v", err)
		}
		cfg := DefaultConfig()
		cfg.Sub.DualIters = 10
		cfg.MaxSweeps = 4
		coord, err := NewCoordinator(inst, cfg)
		if err != nil {
			t.Fatalf("NewCoordinator on valid instance: %v", err)
		}
		res, err := coord.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
			t.Fatalf("infeasible solution:\n%s", model.FormatViolations(vs))
		}
	})
}

// decodeInstance deterministically maps fuzz bytes onto a small valid
// instance (nil when too few bytes). Every byte influences some parameter,
// so the fuzzer can explore demand skews, link patterns and capacities.
func decodeInstance(data []byte) *model.Instance {
	if len(data) < 6 {
		return nil
	}
	next := func(i int) byte {
		return data[i%len(data)]
	}
	n := int(next(0))%3 + 1
	u := int(next(1))%5 + 1
	f := int(next(2))%6 + 1
	inst := &model.Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  make([]int, n),
		Bandwidth: make([]float64, n),
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	k := 3
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			inst.Demand[i][j] = float64(next(k) % 32)
			k++
		}
		inst.BSCost[i] = 50 + float64(next(k)%100)
		k++
	}
	for i := 0; i < n; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = next(k)%2 == 0
			k++
			inst.EdgeCost[i][j] = float64(next(k) % 8)
			k++
		}
		inst.CacheCap[i] = int(next(k)) % (f + 1)
		k++
		inst.Bandwidth[i] = float64(next(k) % 64)
		k++
	}
	return inst
}
