package core

import (
	"math/rand"
	"testing"

	"edgecache/internal/model"
)

func TestTheorem5BoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inst := randomInstance(rng, 2, 4, 5)
	coord, err := NewCoordinator(inst, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	lppm, err := NewLPPM(PrivacyConfig{
		Epsilon: 0.1, Delta: 0.5, Rng: rand.New(rand.NewSource(32)),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Theorem 5 must hold for every threshold ζ. Small ζ pushes Pr toward
	// 0 (bound → W, trivially true); large ζ pushes Pr toward 1 (bound →
	// Φ(ζ), which must still dominate the measured mean increase).
	for _, zeta := range []float64{0.1, 1, 5, 20, 100} {
		b, err := EvaluateTheorem5(inst, lppm, res.Solution.Routing, zeta, 400,
			rand.New(rand.NewSource(33)))
		if err != nil {
			t.Fatal(err)
		}
		if b.Pr < 0 || b.Pr > 1 {
			t.Fatalf("zeta=%v: Pr = %v", zeta, b.Pr)
		}
		if b.MeanIncrease > b.Bound+1e-9 {
			t.Errorf("zeta=%v: mean increase %v exceeds Theorem 5 bound %v (Pr=%v, Φ=%v)",
				zeta, b.MeanIncrease, b.Bound, b.Pr, b.Phi)
		}
		if b.MeanIncrease < -1e-9 {
			t.Errorf("zeta=%v: negative mean increase %v — subtractive noise cannot reduce cost",
				zeta, b.MeanIncrease)
		}
	}
}

func TestTheorem5PrMonotoneInZeta(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	inst := randomInstance(rng, 2, 4, 5)
	coord, err := NewCoordinator(inst, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	lppm, err := NewLPPM(PrivacyConfig{
		Epsilon: 1, Delta: 0.5, Rng: rand.New(rand.NewSource(35)),
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, zeta := range []float64{0, 0.5, 2, 10, 1e6} {
		b, err := EvaluateTheorem5(inst, lppm, res.Solution.Routing, zeta, 300,
			rand.New(rand.NewSource(36)))
		if err != nil {
			t.Fatal(err)
		}
		if b.Pr < prev-0.05 { // same seed; tolerate Monte Carlo wobble
			t.Errorf("Pr decreased from %v to %v at zeta=%v", prev, b.Pr, zeta)
		}
		prev = b.Pr
	}
	// A huge ζ covers every draw.
	b, err := EvaluateTheorem5(inst, lppm, res.Solution.Routing, 1e6, 100,
		rand.New(rand.NewSource(37)))
	if err != nil {
		t.Fatal(err)
	}
	if b.Pr != 1 {
		t.Errorf("Pr at huge zeta = %v, want 1", b.Pr)
	}
}

func TestTheorem5Validation(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	inst := randomInstance(rng, 1, 2, 3)
	y := model.NewRoutingPolicy(inst)
	lppm, err := NewLPPM(PrivacyConfig{Epsilon: 1, Delta: 0.5, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateTheorem5(inst, nil, y, 1, 10, rng); err == nil {
		t.Error("nil LPPM: want error")
	}
	if _, err := EvaluateTheorem5(inst, lppm, y, -1, 10, rng); err == nil {
		t.Error("negative zeta: want error")
	}
	if _, err := EvaluateTheorem5(inst, lppm, y, 1, 0, rng); err == nil {
		t.Error("zero samples: want error")
	}
	if _, err := EvaluateTheorem5(inst, lppm, y, 1, 10, nil); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := EvaluateTheorem5(&model.Instance{N: 0}, lppm, y, 1, 10, rng); err == nil {
		t.Error("invalid instance: want error")
	}
}
