package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"

	"edgecache/internal/core"
	"edgecache/internal/model"
)

// IncrementalScale records one instance size of the incremental-sweep
// benchmark.
type IncrementalScale struct {
	N         int `json:"n"`
	U         int `json:"u"`
	F         int `json:"f"`
	MaxSweeps int `json:"max_sweeps"`
}

// IncrementalSweepWork mirrors core.SweepWork in the JSON report: one
// sweep's partition of the N sub-problems into solved and memo-skipped.
type IncrementalSweepWork struct {
	Solves  int `json:"solves"`
	Skipped int `json:"skipped"`
}

// IncrementalEngineResult is one engine's measurement at one scale: the
// convergence trajectory shape (sweeps, per-sweep skip accounting) plus
// the end-to-end speedup of the memo-enabled run over the memo-disabled
// reference measured back-to-back on the same host. The two runs are
// bit-identical by construction (verified before timing), so the speedup
// is pure overhead removed, not a different trajectory.
type IncrementalEngineResult struct {
	Engine           string                 `json:"engine"`
	Workers          int                    `json:"workers,omitempty"`
	Sweeps           int                    `json:"sweeps_to_converge"`
	Converged        bool                   `json:"converged"`
	SolvesTotal      int                    `json:"solves_total"`
	SolvesSkipped    int                    `json:"solves_skipped"`
	PerSweep         []IncrementalSweepWork `json:"per_sweep_work"`
	MemoNsPerOp      float64                `json:"memo_ns_per_op"`
	ReferenceNsPerOp float64                `json:"reference_ns_per_op"`
	MemoAllocsPerOp  int64                  `json:"memo_allocs_per_op"`
	RefAllocsPerOp   int64                  `json:"reference_allocs_per_op"`
	Speedup          float64                `json:"speedup_vs_reference"`
}

// IncrementalScaleResult groups the engine measurements of one scale.
type IncrementalScaleResult struct {
	Scale   IncrementalScale          `json:"scale"`
	Engines []IncrementalEngineResult `json:"engines"`
}

// IncrementalBenchReport is the JSON document -bench-incremental writes
// (BENCH_incremental.json in the repository root is the committed
// baseline).
type IncrementalBenchReport struct {
	Description string                   `json:"description"`
	NumCPU      int                      `json:"num_cpu"`
	GoMaxProcs  int                      `json:"gomaxprocs"`
	HostNote    string                   `json:"host_note,omitempty"`
	Scales      []IncrementalScaleResult `json:"scales"`
}

// incrementalInstance draws the sparse-topology benchmark instance: the
// same demand/cost distribution as benchInstance (seed 99), but with ~5%
// link density — each MU group reaches a handful of SBSs, the realistic
// edge regime (small-cell coverage is local; the dense 60% topology of
// the scaling benchmark is the contention stress case). Sparse coupling
// is what the dirty-set memo is for: SBS neighbourhoods decouple, blocks
// freeze one by one as the run converges, and the steady-state dirty set
// shrinks to a fraction of N. On the dense
// stress topology the overserve repair keeps every neighbourhood
// oscillating and the memo never engages — by design, since a skip is
// only allowed when the recomputation would be bit-identical.
func incrementalInstance(n, u, f int) *model.Instance {
	rng := rand.New(rand.NewSource(99))
	inst := &model.Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  make([]int, n),
		Bandwidth: make([]float64, n),
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 20
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < n; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.05
			inst.EdgeCost[i][j] = 1 + rng.Float64()*3
		}
		inst.CacheCap[i] = 1 + rng.Intn(f)
		inst.Bandwidth[i] = 5 + rng.Float64()*40
	}
	return inst
}

// incrementalConfig builds the converging benchmark configuration: the
// sub-γ threshold drives every engine to its bitwise fixed point (where
// the dirty set drains and skips concentrate) instead of stopping at the
// first small relative improvement.
func incrementalConfig(engine core.EngineKind, workers, maxSweeps int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Engine = engine
	cfg.Workers = workers
	cfg.MaxSweeps = maxSweeps
	cfg.Gamma = 1e-300
	return cfg
}

// runIncrementalBench measures the dirty-set memo: for each scale and
// engine it verifies the memo run is bit-identical to the memo-disabled
// reference, records the per-sweep solve/skip split, then times both runs
// and reports the end-to-end speedup. Writes the report to path ("-" for
// stdout); when baseline names a committed report, fails on a >20%
// speedup regression or any allocation growth.
func runIncrementalBench(path, baseline string) error {
	scales := []IncrementalScale{
		{N: 50, U: 200, F: 200, MaxSweeps: 30},
		{N: 200, U: 120, F: 120, MaxSweeps: 30},
	}

	report := IncrementalBenchReport{
		Description: "Incremental dirty-set sweeps: memo-enabled engines versus the same engines with " +
			"Config.DisableIncremental, run to their bitwise fixed point (γ=1e-300). The two runs are " +
			"verified bit-identical before timing, so speedup_vs_reference is overhead removed at equal " +
			"output. ns/op is machine-dependent; the speedup ratios, the per-sweep solve/skip split and " +
			"allocs/op are the regression contract. Instance: sparse edge topology (5% link density, " +
			"tight bandwidth, seed 99) — neighbourhoods decouple and blocks freeze as the run settles, " +
			"which is the regime the memo targets; the dense benchScale topology oscillates under " +
			"overserve repair and skips nothing, so it is covered by BENCH_parallel.json instead. " +
			"Runs are a fixed sweep budget (fair because memo and reference are bitwise equal per sweep). " +
			"Generated with `go run ./cmd/benchfig -bench-incremental BENCH_incremental.json`.",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if report.GoMaxProcs == 1 {
		report.HostNote = "measured on a single-core host: the parallel engine rows bound pool+memo " +
			"overhead rather than scaling; the sequential rows are representative"
	}

	parWorkers := report.GoMaxProcs
	for _, sc := range scales {
		inst := incrementalInstance(sc.N, sc.U, sc.F)
		scaleRes := IncrementalScaleResult{Scale: sc}
		engines := []struct {
			name    string
			kind    core.EngineKind
			workers int
		}{
			{"gauss-seidel", core.EngineGaussSeidel, 0},
			{"jacobi", core.EngineJacobi, 0},
			{fmt.Sprintf("parallel-jacobi/w%d", parWorkers), core.EngineParallelJacobi, parWorkers},
		}
		for _, eng := range engines {
			memoCfg := incrementalConfig(eng.kind, eng.workers, sc.MaxSweeps)
			refCfg := memoCfg
			refCfg.DisableIncremental = true

			memoCoord, err := core.NewCoordinator(inst, memoCfg)
			if err != nil {
				return err
			}
			refCoord, err := core.NewCoordinator(inst, refCfg)
			if err != nil {
				memoCoord.Close()
				return err
			}

			// Correctness pre-pass: the memo may only skip work whose
			// recomputation reproduces the same bits.
			memoRes, err := memoCoord.Run()
			if err != nil {
				return fmt.Errorf("%s N=%d memo run: %w", eng.name, sc.N, err)
			}
			refRes, err := refCoord.Run()
			if err != nil {
				return fmt.Errorf("%s N=%d reference run: %w", eng.name, sc.N, err)
			}
			if len(memoRes.History) != len(refRes.History) {
				return fmt.Errorf("%s N=%d: memo ran %d sweeps, reference %d", eng.name, sc.N, len(memoRes.History), len(refRes.History))
			}
			for i := range memoRes.History {
				if math.Float64bits(memoRes.History[i]) != math.Float64bits(refRes.History[i]) {
					return fmt.Errorf("%s N=%d: memo diverged from reference at sweep %d: %v != %v",
						eng.name, sc.N, i, memoRes.History[i], refRes.History[i])
				}
			}

			er := IncrementalEngineResult{
				Engine:    eng.name,
				Workers:   eng.workers,
				Sweeps:    memoRes.Sweeps,
				Converged: memoRes.Converged,
			}
			for _, w := range memoRes.Work {
				er.PerSweep = append(er.PerSweep, IncrementalSweepWork{Solves: w.Solves, Skipped: w.Skipped})
			}
			tw := memoRes.TotalWork()
			er.SolvesTotal, er.SolvesSkipped = tw.Solves, tw.Skipped

			fmt.Fprintf(os.Stderr, "benchfig: measuring %s N=%d memo run (%d sweeps, %d/%d solves skipped) ...\n",
				eng.name, sc.N, er.Sweeps, er.SolvesSkipped, er.SolvesSkipped+er.SolvesTotal)
			memoBench, err := measureRun(memoCoord)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "benchfig: measuring %s N=%d reference run ...\n", eng.name, sc.N)
			refBench, err := measureRun(refCoord)
			memoCoord.Close()
			refCoord.Close()
			if err != nil {
				return err
			}
			memo := toResult("memo", memoBench)
			ref := toResult("reference", refBench)
			er.MemoNsPerOp, er.ReferenceNsPerOp = memo.NsPerOp, ref.NsPerOp
			er.MemoAllocsPerOp, er.RefAllocsPerOp = memo.AllocsPerOp, ref.AllocsPerOp
			er.Speedup = ref.NsPerOp / memo.NsPerOp
			fmt.Fprintf(os.Stderr, "benchfig: %s N=%d speedup %.2fx (memo %.0f ns/op, reference %.0f ns/op)\n",
				eng.name, sc.N, er.Speedup, er.MemoNsPerOp, er.ReferenceNsPerOp)
			scaleRes.Engines = append(scaleRes.Engines, er)
		}
		report.Scales = append(report.Scales, scaleRes)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchfig: wrote %s\n", path)
	}

	if baseline != "" {
		return compareIncrementalBaseline(report, baseline)
	}
	return nil
}

// compareIncrementalBaseline fails when the fresh report regresses against
// the committed baseline: a memo speedup more than 20% below baseline, a
// skip count that collapsed, or allocation growth on the memo run.
func compareIncrementalBaseline(report IncrementalBenchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base IncrementalBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	const tolerance = 0.20
	type key struct {
		n, u, f int
		engine  string
	}
	baseBy := make(map[key]IncrementalEngineResult)
	for _, sc := range base.Scales {
		for _, er := range sc.Engines {
			baseBy[key{sc.Scale.N, sc.Scale.U, sc.Scale.F, er.Engine}] = er
		}
	}
	var failures []string
	for _, sc := range report.Scales {
		for _, got := range sc.Engines {
			want, ok := baseBy[key{sc.Scale.N, sc.Scale.U, sc.Scale.F, got.Engine}]
			if !ok {
				continue // baseline predates this row (e.g. different worker count)
			}
			fmt.Fprintf(os.Stderr, "benchfig: %s N=%d speedup %.2fx (baseline %.2fx), skipped %d (baseline %d), memo allocs/op %d (baseline %d)\n",
				got.Engine, sc.Scale.N, got.Speedup, want.Speedup, got.SolvesSkipped, want.SolvesSkipped, got.MemoAllocsPerOp, want.MemoAllocsPerOp)
			if want.Speedup > 0 && got.Speedup < (1-tolerance)*want.Speedup {
				failures = append(failures, fmt.Sprintf(
					"%s N=%d: speedup %.2fx regressed >%d%% below baseline %.2fx",
					got.Engine, sc.Scale.N, got.Speedup, int(tolerance*100), want.Speedup))
			}
			if got.SolvesSkipped == 0 && want.SolvesSkipped > 0 {
				failures = append(failures, fmt.Sprintf(
					"%s N=%d: no solves skipped (baseline skipped %d) — the dirty-set memo never engaged",
					got.Engine, sc.Scale.N, want.SolvesSkipped))
			}
			if float64(got.MemoAllocsPerOp) > (1+tolerance)*float64(want.MemoAllocsPerOp)+1 {
				failures = append(failures, fmt.Sprintf(
					"%s N=%d: %d memo allocs/op versus baseline %d",
					got.Engine, sc.Scale.N, got.MemoAllocsPerOp, want.MemoAllocsPerOp))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("incremental bench regressed vs %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchfig: no regression vs %s\n", path)
	return nil
}
