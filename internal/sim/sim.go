// Package sim deploys Algorithm 1 as a real distributed protocol: one BS
// agent (coordinator/aggregator) and N SBS agents (sub-problem solvers)
// exchanging transport messages. This is the paper's operational setting —
// SBSs owned by different operators that reveal only their (LPPM-protected)
// routing uploads, never their internal state.
//
// Protocol per sweep τ, phase n (matching Algorithm 1 line by line):
//
//	BS  → SBS n: MsgPhaseStart{Sweep, Phase, AggregateAnnounce{y_{-n}}}
//	SBS n → BS:  MsgPolicyUpload{Sweep, Phase, PolicyUpload{x_n, ŷ_n}}
//
// and a final MsgDone broadcast. The BS tolerates SBS failures: if an
// upload does not arrive within PhaseTimeout, the SBS's previous policy is
// kept and the sweep continues (the SBS can rejoin in a later sweep).
//
// With privacy disabled the protocol run is bit-for-bit equivalent to the
// in-process core.Coordinator; the integration tests assert this.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/transport"
)

// BSConfig tunes the BS agent.
type BSConfig struct {
	// Gamma and MaxSweeps follow core.Config (0 means defaults: 1e-6, 50).
	Gamma     float64
	MaxSweeps int
	// PhaseTimeout bounds the wait for one SBS upload. 0 means 30s.
	PhaseTimeout time.Duration
}

func (c BSConfig) withDefaults() BSConfig {
	if c.Gamma <= 0 {
		c.Gamma = 1e-6
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 50
	}
	if c.PhaseTimeout <= 0 {
		c.PhaseTimeout = 30 * time.Second
	}
	return c
}

// BSAgent is the base-station side of the protocol. The BS knows the
// public instance data (demands, links — §I of the paper argues request
// information is the least sensitive data class) but never any SBS's
// internal solver state.
type BSAgent struct {
	inst     *model.Instance
	cfg      BSConfig
	ep       transport.Endpoint
	sbsNames []string
}

// NewBSAgent builds the BS agent. sbsNames[n] is the endpoint name of
// SBS n and must have exactly N entries.
func NewBSAgent(inst *model.Instance, cfg BSConfig, ep transport.Endpoint, sbsNames []string) (*BSAgent, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if ep == nil {
		return nil, errors.New("sim: BS agent requires an endpoint")
	}
	if len(sbsNames) != inst.N {
		return nil, fmt.Errorf("sim: %d SBS names for N=%d SBSs", len(sbsNames), inst.N)
	}
	return &BSAgent{inst: inst, cfg: cfg.withDefaults(), ep: ep, sbsNames: sbsNames}, nil
}

// Run drives the full protocol and returns the converged result. SBS
// agents must be running (or must join before their phase times out).
func (b *BSAgent) Run(ctx context.Context) (*core.RunResult, error) {
	inst := b.inst
	x := model.NewCachingPolicy(inst)
	y := model.NewRoutingPolicy(inst)

	// The BS maintains the masked aggregate incrementally, exactly like
	// core.Coordinator (same operation order keeps the two deployments
	// bit-for-bit equivalent): y_{-n} is derived in O(U·F) per phase and
	// the aggregate advances only when an upload is actually installed.
	tracker := model.NewAggregateTracker(inst)
	yMinus := inst.NewUFMat()

	res := &core.RunResult{}
	var best *model.Solution
	prevCost := math.Inf(1)
	for sweep := 0; sweep < b.cfg.MaxSweeps; sweep++ {
		for n := 0; n < inst.N; n++ {
			tracker.YMinusInto(inst, y, n, yMinus)
			if err := b.announcePhase(ctx, sweep, n, yMinus); err != nil {
				return nil, err
			}
			upload, ok, err := b.awaitUpload(ctx, sweep, n)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue // SBS unreachable this phase: keep its old policy
			}
			if err := b.applyUpload(x, y, tracker, n, yMinus, upload); err != nil {
				// A malformed upload is treated like a missing one; the
				// previous policy stays in force (and the aggregate is left
				// untouched, so the tracker stays consistent with y).
				continue
			}
		}
		cost := model.TotalServingCostFromAggregate(inst, y, tracker.Aggregate())
		res.History = append(res.History, cost.Total)
		res.Sweeps = sweep + 1
		// Mirror core.Coordinator: the BS keeps the cheapest policy it has
		// evaluated (identical to the final sweep when noise is off).
		if best == nil || cost.Total < best.Cost.Total {
			best = &model.Solution{Caching: x.Clone(), Routing: y.Clone(), Cost: cost}
		}
		if cost.Total > 0 && math.Abs(prevCost-cost.Total)/cost.Total <= b.cfg.Gamma {
			res.Converged = true
			prevCost = cost.Total
			break
		}
		prevCost = cost.Total
	}

	b.broadcastDone(ctx)
	if best == nil {
		best = &model.Solution{Caching: x, Routing: y, Cost: model.TotalServingCost(inst, y)}
	}
	res.Solution = best
	return res, nil
}

// announcePhase sends y_{-n} to SBS n. The wire schema stays nested, so
// the flat matrix is materialized at this boundary.
func (b *BSAgent) announcePhase(ctx context.Context, sweep, n int, yMinus model.Mat) error {
	payload, err := transport.EncodePayload(transport.AggregateAnnounce{
		YMinus: yMinus.Rows(),
	})
	if err != nil {
		return err
	}
	msg := transport.Message{Type: transport.MsgPhaseStart, Sweep: sweep, Phase: n, Payload: payload}
	if err := b.ep.Send(ctx, b.sbsNames[n], msg); err != nil {
		// Unreachable SBS: not fatal, the await below will time out.
		return nil
	}
	return nil
}

// awaitUpload waits for SBS n's upload for (sweep, n), discarding stale or
// duplicated messages. ok=false signals a timeout.
func (b *BSAgent) awaitUpload(ctx context.Context, sweep, n int) (transport.PolicyUpload, bool, error) {
	deadline, cancel := context.WithTimeout(ctx, b.cfg.PhaseTimeout)
	defer cancel()
	for {
		msg, err := b.ep.Recv(deadline)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return transport.PolicyUpload{}, false, nil
			}
			return transport.PolicyUpload{}, false, err
		}
		if msg.Type != transport.MsgPolicyUpload || msg.Sweep != sweep || msg.Phase != n ||
			msg.From != b.sbsNames[n] {
			continue // stale, duplicated or foreign message
		}
		var upload transport.PolicyUpload
		if err := transport.DecodePayload(msg.Payload, &upload); err != nil {
			return transport.PolicyUpload{}, false, nil // treat as missing
		}
		return upload, true, nil
	}
}

// applyUpload validates shapes and installs SBS n's policies, advancing
// the BS's running aggregate from the yMinus computed for this phase.
func (b *BSAgent) applyUpload(x *model.CachingPolicy, y *model.RoutingPolicy,
	tracker *model.AggregateTracker, n int, yMinus model.Mat, up transport.PolicyUpload) error {
	inst := b.inst
	if len(up.Cache) != inst.F {
		return fmt.Errorf("sim: SBS %d cache vector has %d entries, want %d", n, len(up.Cache), inst.F)
	}
	routing, err := model.MatFromRows(up.Routing)
	if err != nil {
		return fmt.Errorf("sim: SBS %d routing: %w", n, err)
	}
	if routing.U != inst.U || routing.F != inst.F {
		return fmt.Errorf("sim: SBS %d routing is %dx%d, want %dx%d", n, routing.U, routing.F, inst.U, inst.F)
	}
	x.SetRow(n, up.Cache)
	tracker.Install(inst, y, n, yMinus, routing)
	return nil
}

// broadcastDone tells every SBS the run finished; failures are ignored
// (an SBS that already left does not need the message).
func (b *BSAgent) broadcastDone(ctx context.Context) {
	for _, name := range b.sbsNames {
		_ = b.ep.Send(ctx, name, transport.Message{Type: transport.MsgDone})
	}
}

// SBSAgent is the small-base-station side: it waits for phase
// announcements, solves its sub-problem P_n, optionally applies LPPM to the
// routing before it leaves the premises, and uploads the result.
type SBSAgent struct {
	sub    *core.Subproblem
	lppm   *core.LPPM
	ep     transport.Endpoint
	bsName string
}

// NewSBSAgent builds the agent for SBS n. privacy may be nil. The SBS uses
// the shared public instance data plus its own private columns; the solver
// never sees another SBS's routing, only the BS aggregate.
func NewSBSAgent(inst *model.Instance, n int, sub core.SubproblemConfig,
	privacy *core.PrivacyConfig, ep transport.Endpoint, bsName string) (*SBSAgent, error) {
	if ep == nil {
		return nil, errors.New("sim: SBS agent requires an endpoint")
	}
	if bsName == "" {
		return nil, errors.New("sim: SBS agent requires the BS endpoint name")
	}
	solver, err := core.NewSubproblem(inst, n, sub)
	if err != nil {
		return nil, err
	}
	a := &SBSAgent{sub: solver, ep: ep, bsName: bsName}
	if privacy != nil {
		lppm, err := core.NewLPPM(*privacy)
		if err != nil {
			return nil, err
		}
		a.lppm = lppm
	}
	return a, nil
}

// Run serves phase announcements until MsgDone or context cancellation.
// A cancelled context returns ctx.Err(); MsgDone returns nil.
func (a *SBSAgent) Run(ctx context.Context) error {
	for {
		msg, err := a.ep.Recv(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		switch msg.Type {
		case transport.MsgDone:
			return nil
		case transport.MsgPhaseStart:
			if err := a.handlePhase(ctx, msg); err != nil {
				return err
			}
		default:
			// Unexpected message: ignore (robustness against duplicates).
		}
	}
}

func (a *SBSAgent) handlePhase(ctx context.Context, msg transport.Message) error {
	var ann transport.AggregateAnnounce
	if err := transport.DecodePayload(msg.Payload, &ann); err != nil {
		return nil // malformed announcement: skip; the BS will time out
	}
	yMinus, err := model.MatFromRows(ann.YMinus)
	if err != nil {
		return nil // ragged announcement: skip; the BS will time out
	}
	res, err := a.sub.Solve(yMinus)
	if err != nil {
		return nil // unsolvable announcement (bad shapes): skip
	}
	routing := res.Routing
	if a.lppm != nil {
		routing, err = a.lppm.Perturb(a.ep.Name(), res.Routing)
		if err != nil {
			return err
		}
	}
	payload, err := transport.EncodePayload(transport.PolicyUpload{Cache: res.Cache, Routing: routing.Rows()})
	if err != nil {
		return err
	}
	reply := transport.Message{
		Type:    transport.MsgPolicyUpload,
		Sweep:   msg.Sweep,
		Phase:   msg.Phase,
		Payload: payload,
	}
	if err := a.ep.Send(ctx, a.bsName, reply); err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}
