// Package noallocsrc holds deliberate //edgecache:noalloc violations and
// annotated-clean hot paths for the analyzer test suite. The edgelint
// driver skips everything under internal/lint/fixtures.
package noallocsrc

import (
	"math"
	"sync/atomic"
)

const workCap = 16

// State mimics a solver workspace: preallocated buffers refilled per call.
type State struct {
	ws    []int
	score [workCap]float64
	out   float64
}

// Hot violates the contract directly in the annotated body.
//
//edgecache:noalloc
func Hot(s *State, xs []int) int {
	fresh := []int{}             // want `slice literal allocates`
	fresh = append(fresh, xs...) // want `append may allocate`
	counts := make(map[int]int)  // want `make allocates`
	for _, x := range xs {
		counts[x]++
	}
	return len(fresh) + len(counts)
}

// Root is clean itself but calls a helper that allocates: the closure walk
// must carry the diagnostic back to the root annotation.
//
//edgecache:noalloc
func Root(s *State) float64 {
	return helper(s)
}

func helper(s *State) float64 {
	box := new(float64) // want `new allocates`
	*box = s.score[0]
	return *box
}

// Clean exercises every allowed construct: the workspace [:0] reset-append
// idiom, cold validation guards, and allowlisted math calls.
//
//edgecache:noalloc
func Clean(s *State, xs []int) float64 {
	if len(xs) > cap(s.ws) {
		panic("noallocsrc: input exceeds workspace " + "capacity")
	}
	buf := s.ws[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	total := 0.0
	for _, x := range buf {
		total += math.Sqrt(float64(x))
	}
	s.out = total
	return total
}

// Unmarked allocates freely: no directive, not reachable from one, so the
// analyzer must stay silent here.
func Unmarked(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// Pool mimics the parallel sweep engine's worker pool: per-worker
// workspaces, a shared atomic cursor handing out work items, and phase
// bodies annotated //edgecache:noalloc. The unannotated worker loop owns
// the channel parking (sends are not allocation-provable); the annotated
// phase body is where the closure walk applies.
type Pool struct {
	cursor  atomic.Int64
	scratch [][]float64
	items   int
	wake    chan struct{}
}

// worker is the (unannotated) parking loop: receives are allowed anywhere,
// and the phase dispatch below carries the noalloc closure.
func (p *Pool) worker(w int) {
	for range p.wake {
		p.RunShare(w)
		p.leakShare(w)
	}
}

// RunShare is a clean steady-state phase body: atomic cursor claims plus
// writes into the pre-sized per-worker workspace.
//
//edgecache:noalloc
func (p *Pool) RunShare(w int) {
	buf := p.scratch[w]
	for {
		i := int(p.cursor.Add(1)) - 1
		if i >= p.items {
			return
		}
		buf[i%len(buf)] = math.Sqrt(float64(i))
	}
}

// leakShare allocates per work item — the per-worker regression the
// closure walk must catch even though only the pool loop calls it.
//
//edgecache:noalloc
func (p *Pool) leakShare(w int) {
	row := make([]float64, p.items) // want `make allocates`
	p.scratch[w] = row
}
