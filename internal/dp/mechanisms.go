package dp

import (
	"fmt"
	"math"
	"math/rand"
)

// LaplaceMechanism is the classical ε-DP additive mechanism: it releases
// value + Lap(Δ/ε). The paper contrasts LPPM against it conceptually (plain
// additive noise can push routing values outside [0,1] and over-serve
// demands, which is why LPPM subtracts bounded noise instead).
type LaplaceMechanism struct {
	// Sensitivity is the L1 sensitivity Δ of the released query.
	Sensitivity float64
	// Epsilon is the privacy budget per release.
	Epsilon float64
}

// Release perturbs value with Laplace noise of scale Δ/ε.
func (m LaplaceMechanism) Release(rng *rand.Rand, value float64) (float64, error) {
	scale, err := BetaForEpsilon(m.Sensitivity, m.Epsilon)
	if err != nil {
		return 0, err
	}
	return value + SampleLaplace(rng, scale), nil
}

// GaussianMechanism is the (ε,δ)-DP additive mechanism with noise
// N(0, σ²), σ = Δ·sqrt(2·ln(1.25/δ))/ε. It is included for the ablation
// experiments comparing noise families; the paper's LPPM is Laplace-based.
type GaussianMechanism struct {
	Sensitivity float64
	Epsilon     float64
	// Delta is the (ε,δ)-DP slack, in (0,1). Not to be confused with the
	// paper's Laplace component factor δ.
	Delta float64
}

// Sigma returns the calibrated standard deviation.
func (m GaussianMechanism) Sigma() (float64, error) {
	if m.Sensitivity <= 0 {
		return 0, fmt.Errorf("dp: sensitivity must be positive, got %v", m.Sensitivity)
	}
	if m.Epsilon <= 0 || m.Epsilon >= 1 {
		return 0, fmt.Errorf("dp: the analytic Gaussian calibration needs epsilon in (0,1), got %v", m.Epsilon)
	}
	if m.Delta <= 0 || m.Delta >= 1 {
		return 0, fmt.Errorf("dp: delta must be in (0,1), got %v", m.Delta)
	}
	return m.Sensitivity * math.Sqrt(2*math.Log(1.25/m.Delta)) / m.Epsilon, nil
}

// Release perturbs value with calibrated Gaussian noise.
func (m GaussianMechanism) Release(rng *rand.Rand, value float64) (float64, error) {
	sigma, err := m.Sigma()
	if err != nil {
		return 0, err
	}
	return value + rng.NormFloat64()*sigma, nil
}

// TruncatedHalfNormal samples |N(0,σ)| conditioned on the result lying in
// [0, hi], by inverse-CDF sampling (F(r) = erf(r/(σ√2))/erf(hi/(σ√2))).
// It backs the Gaussian variant of the routing-perturbation mechanism in
// the noise-family ablation. hi = 0 returns 0.
func TruncatedHalfNormal(rng *rand.Rand, sigma, hi float64) (float64, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return 0, fmt.Errorf("dp: sigma must be positive and finite, got %v", sigma)
	}
	if hi < 0 || math.IsNaN(hi) {
		return 0, fmt.Errorf("dp: truncation bound must be non-negative, got %v", hi)
	}
	if hi == 0 {
		return 0, nil
	}
	scale := sigma * math.Sqrt2
	edge := math.Erf(hi / scale)
	u := rng.Float64()
	r := scale * math.Erfinv(u*edge)
	if r < 0 {
		r = 0
	}
	if r > hi {
		r = hi
	}
	return r, nil
}

// ExponentialMechanism selects an index from a utility vector with the
// exponential mechanism: P(i) ∝ exp(ε·u(i)/(2Δu)). It provides ε-DP
// selection and backs the "exponential" noise family in the ablation
// benchmarks.
type ExponentialMechanism struct {
	// Sensitivity is the utility sensitivity Δu.
	Sensitivity float64
	// Epsilon is the privacy budget per selection.
	Epsilon float64
}

// Select draws an index with probability proportional to
// exp(ε·utility/(2Δu)). Utilities may be any finite floats.
func (m ExponentialMechanism) Select(rng *rand.Rand, utilities []float64) (int, error) {
	if len(utilities) == 0 {
		return 0, fmt.Errorf("dp: empty utility vector")
	}
	if m.Sensitivity <= 0 {
		return 0, fmt.Errorf("dp: sensitivity must be positive, got %v", m.Sensitivity)
	}
	if m.Epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %v", m.Epsilon)
	}
	// Shift by the max for numerical stability before exponentiating.
	maxU := math.Inf(-1)
	for i, u := range utilities {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return 0, fmt.Errorf("dp: utilities[%d] = %v is not finite", i, u)
		}
		if u > maxU {
			maxU = u
		}
	}
	weights := make([]float64, len(utilities))
	var total float64
	for i, u := range utilities {
		weights[i] = math.Exp(m.Epsilon * (u - maxU) / (2 * m.Sensitivity))
		total += weights[i]
	}
	target := rng.Float64() * total
	for i, w := range weights {
		target -= w
		if target <= 0 {
			return i, nil
		}
	}
	return len(utilities) - 1, nil // guard against float round-off
}
