package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadViewsCSVRoundTrip(t *testing.T) {
	// Format compatibility with what cmd/tracegen writes.
	var buf bytes.Buffer
	buf.WriteString("rank,views\n1,150000\n2,80000\n3,4000\n")
	views, err := LoadViewsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{150000, 80000, 4000}
	if len(views) != len(want) {
		t.Fatalf("len = %d, want %d", len(views), len(want))
	}
	for i := range want {
		if views[i] != want[i] {
			t.Errorf("views[%d] = %v, want %v", i, views[i], want[i])
		}
	}
}

func TestLoadViewsCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"empty", ""},
		{"header only", "rank,views\n"},
		{"bad header", "id,count\n1,5\n"},
		{"bad rank", "rank,views\nx,5\n"},
		{"rank gap", "rank,views\n1,5\n3,4\n"},
		{"bad views", "rank,views\n1,abc\n"},
		{"negative views", "rank,views\n1,-2\n"},
		{"wrong columns", "rank,views\n1,2,3\n"},
	}
	for _, tc := range cases {
		if _, err := LoadViewsCSV(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
