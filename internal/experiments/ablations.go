package experiments

import (
	"math/rand"
	"strconv"

	"edgecache/internal/attack"
	"edgecache/internal/baseline"
	"edgecache/internal/cache"
	"edgecache/internal/core"
	"edgecache/internal/dynamic"
	"edgecache/internal/metrics"
	"edgecache/internal/sim"
	"edgecache/internal/stats"
)

// RestartAblation (E9) quantifies the order dependence of the Gauss-Seidel
// sweep: the fixed-order run of Algorithm 1 versus the best of R shuffled
// orders (the extension in core.Config.Restarts). A nonzero improvement is
// direct evidence that the coupling constraint (4) creates order-dependent
// equilibria (DESIGN.md §4); the restart column is this repository's
// remedy, not part of the paper.
func (h Harness) RestartAblation(restarts int) (*metrics.Table, error) {
	if restarts <= 0 {
		restarts = 4
	}
	tb := metrics.NewTable("E9 — order dependence of the Gauss-Seidel sweep",
		"seed", "fixed order", "best of restarts", "improvement (%)")
	var improvements []float64
	for _, seed := range h.Seeds {
		sc := h.Base
		sc.Seed = seed
		inst, err := sc.Build()
		if err != nil {
			return nil, err
		}
		fixed, err := core.NewCoordinator(inst, core.Config{Sub: h.Sub})
		if err != nil {
			return nil, err
		}
		fres, err := fixed.Run()
		if err != nil {
			return nil, err
		}
		multi, err := core.NewCoordinator(inst, core.Config{
			Sub: h.Sub, Restarts: restarts, RestartSeed: seed,
		})
		if err != nil {
			return nil, err
		}
		mres, err := multi.Run()
		if err != nil {
			return nil, err
		}
		improvement := stats.RelativeChange(fres.Solution.Cost.Total, mres.Solution.Cost.Total) * 100
		improvements = append(improvements, improvement)
		tb.MustAddRow(seed, fres.Solution.Cost.Total, mres.Solution.Cost.Total, improvement)
	}
	tb.AddNote("best of %d shuffled orders; mean improvement %.2f%% — the gap Theorem 2's"+
		" product-form assumption hides", restarts, stats.Mean(improvements))
	return tb, nil
}

// JacobiAblation (E10) compares the paper's sequential Gauss-Seidel sweep
// with the asynchronous Jacobi variant (§VII future work): final cost and
// rounds to convergence.
func (h Harness) JacobiAblation() (*metrics.Table, error) {
	tb := metrics.NewTable("E10 — sequential (Gauss-Seidel) vs parallel (Jacobi) updates",
		"seed", "sequential cost", "sequential sweeps", "jacobi cost", "jacobi rounds", "cost ratio")
	for _, seed := range h.Seeds {
		sc := h.Base
		sc.Seed = seed
		inst, err := sc.Build()
		if err != nil {
			return nil, err
		}
		coord, err := core.NewCoordinator(inst, core.Config{Sub: h.Sub})
		if err != nil {
			return nil, err
		}
		seq, err := coord.Run()
		if err != nil {
			return nil, err
		}
		jac, err := coord.RunJacobi()
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(seed,
			seq.Solution.Cost.Total, seq.Sweeps,
			jac.Solution.Cost.Total, jac.Sweeps,
			jac.Solution.Cost.Total/seq.Solution.Cost.Total)
	}
	tb.AddNote("Jacobi rounds let all SBSs compute concurrently on stale state;" +
		" the BS repairs overserved demands proportionally")
	return tb, nil
}

// MultiBSAblation (E12) makes the paper's "easily extended for multiple
// BSs" claim measurable: the same scenario coordinated by one, two and
// three BS regions (SBSs split round-robin), reporting cost and rounds.
func (h Harness) MultiBSAblation() (*metrics.Table, error) {
	tb := metrics.NewTable("E12 — multi-BS coordination (cost / rounds per region count)",
		"seed", "1 BS cost", "1 BS rounds", "2 BS cost", "2 BS rounds", "3 BS cost", "3 BS rounds")
	for _, seed := range h.Seeds {
		sc := h.Base
		sc.Seed = seed
		inst, err := sc.Build()
		if err != nil {
			return nil, err
		}
		row := []any{seed}
		for _, regions := range [][][]int{
			{{0, 1, 2}},
			{{0, 2}, {1}},
			{{0}, {1}, {2}},
		} {
			res, err := core.RunMultiBS(inst, core.MultiBSConfig{Regions: regions, Sub: h.Sub})
			if err != nil {
				return nil, err
			}
			row = append(row, res.Solution.Cost.Total, res.Sweeps)
		}
		tb.MustAddRow(row...)
	}
	tb.AddNote("regions exchange only privatizable regional aggregates once per round;" +
		" cross-region duplication is reconciled proportionally")
	return tb, nil
}

// FluidValidation (E13) replays a packet-level request stream against the
// solved fluid policy and reports model-vs-realized cost agreement — the
// sanity check that the paper's fractional-routing relaxation describes a
// system that actually serves discrete requests.
func (h Harness) FluidValidation(requests int) (*metrics.Table, error) {
	if requests <= 0 {
		requests = 40000
	}
	tb := metrics.NewTable("E13 — fluid model vs packet-level replay",
		"seed", "model cost", "realized cost", "error (%)", "edge-served", "fallbacks")
	for _, seed := range h.Seeds {
		sc := h.Base
		sc.Seed = seed
		inst, err := sc.Build()
		if err != nil {
			return nil, err
		}
		coord, err := core.NewCoordinator(inst, core.Config{Sub: h.Sub})
		if err != nil {
			return nil, err
		}
		res, err := coord.Run()
		if err != nil {
			return nil, err
		}
		report, err := sim.ValidatePolicy(inst, res.Solution, sim.ValidateOptions{
			Requests: requests, Seed: seed * 13,
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(seed, report.ModelCost.Total, report.RealizedCost.Total,
			report.RelativeError*100, report.EdgeServed, report.Fallbacks)
	}
	tb.AddNote("requests dispatched to SBSs with probability equal to their routing share;" +
		" bandwidth exhaustion spills to the BS")
	return tb, nil
}

// ReconstructionAttack (E15) quantifies the leak LPPM exists to plug: an
// observer of the BS broadcast channel solves B_n = Y − y_n across one
// converged sweep and recovers each SBS's routing policy. Without LPPM the
// recovery is exact (error 0); the table reports the relative L1
// reconstruction error as ε varies.
func (h Harness) ReconstructionAttack(epsilons []float64) (*metrics.Table, error) {
	if len(epsilons) == 0 {
		epsilons = []float64{0.01, 0.1, 1, 10, 100}
	}
	sc := h.Base
	sc.Seed = h.Seeds[0]
	inst, err := sc.Build()
	if err != nil {
		return nil, err
	}

	measure := func(privacy *core.PrivacyConfig) (float64, error) {
		cfg := core.Config{Sub: h.Sub, Privacy: privacy}
		if privacy != nil {
			cfg.MaxSweeps = lppmMaxSweeps
		}
		_, obs, truth, err := attack.RunWithObserver(inst, cfg)
		if err != nil {
			return 0, err
		}
		sweeps := obs.CompleteSweeps()
		if len(sweeps) == 0 {
			return 0, nil
		}
		last := sweeps[len(sweeps)-1]
		recovered, err := obs.Reconstruct(last)
		if err != nil {
			return 0, err
		}
		truthPolicy, err := truth.Truth(last)
		if err != nil {
			return 0, err
		}
		return attack.ReconstructionError(inst, truthPolicy, recovered)
	}

	tb := metrics.NewTable("E15 — broadcast-channel reconstruction attack (relative L1 error)",
		"mechanism", "reconstruction error")
	clean, err := measure(nil)
	if err != nil {
		return nil, err
	}
	tb.MustAddRow("no LPPM", clean)
	for _, eps := range epsilons {
		e, err := measure(&core.PrivacyConfig{
			Epsilon: eps, Delta: h.Delta,
			Rng: rand.New(rand.NewSource(sc.Seed * 41)),
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(metricsEps(eps), e)
	}
	tb.AddNote("error 0 = the attacker recovers every SBS's full routing policy exactly;" +
		" the no-LPPM row demonstrates the §IV threat is real, not hypothetical")
	return tb, nil
}

// CachePolicyAblation (E16) compares replacement families in the online
// replay: the same request stream, attachment draws and bandwidth rules,
// with only the eviction policy changing. LRFU is the paper's baseline;
// the others calibrate how much of its behaviour is the policy versus the
// reactive operating regime.
func (h Harness) CachePolicyAblation() (*metrics.Table, error) {
	sc := h.Base
	sc.Seed = h.Seeds[0]
	inst, err := sc.Build()
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("E16 — replacement-policy ablation (online replay)",
		"policy", "online cost", "hit rate (%)")
	for _, name := range cache.PolicyNames() {
		res, err := baseline.PlanLRFU(inst, baseline.LRFUConfig{
			Policy: name, Seed: sc.Seed * 104729,
		})
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(name, res.OnlineCost.Total, res.HitRate*100)
	}
	tb.AddNote("identical stream and attachment randomness across rows; only eviction differs")
	return tb, nil
}

// metricsEps renders an ε row label.
func metricsEps(eps float64) string {
	return "LPPM ε=" + strconv.FormatFloat(eps, 'g', -1, 64)
}

// ChurnStudy (E14) runs the time-slotted popularity-churn extension:
// per-slot costs of re-planning with Algorithm 1 versus keeping the slot-0
// caches versus the online LRFU baseline, plus the cache-refresh traffic
// re-planning causes.
func (h Harness) ChurnStudy(slots, swapsPerSlot int) (*metrics.Table, error) {
	if slots <= 0 {
		slots = 6
	}
	if swapsPerSlot < 0 {
		swapsPerSlot = 0
	}
	sc := h.Base
	sc.Seed = h.Seeds[0]
	inst, err := sc.Build()
	if err != nil {
		return nil, err
	}
	res, err := dynamic.RunChurnStudy(inst, dynamic.ChurnConfig{
		Slots: slots, SwapsPerSlot: swapsPerSlot, Seed: sc.Seed * 17,
	}, h.Sub)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("E14 — popularity churn over time slots",
		"slot", "replan", "static caches", "LRFU online", "cache changes")
	for _, s := range res.Slots {
		tb.MustAddRow(s.Slot+1, s.Replan, s.Static, s.LRFU, s.CacheChanges)
	}
	tb.AddNote("%d random popularity swaps per slot; horizon totals: replan %.4g,"+
		" static %.4g (+%.1f%%), LRFU %.4g; %d total cache changes",
		swapsPerSlot, res.TotalReplan, res.TotalStatic,
		stats.RelativeChange(res.TotalStatic, res.TotalReplan)*100,
		res.TotalLRFU, res.TotalCacheChanges)
	return tb, nil
}

// NoiseFamilyAblation (E11) compares the cost overhead of the bounded
// Laplace (LPPM), truncated Gaussian and uniform noise families at equal
// noise-interval factor δ. The Gaussian calibration requires ε < 1, so the
// sweep covers small budgets only.
func (h Harness) NoiseFamilyAblation(epsilons []float64) (*metrics.Table, error) {
	if len(epsilons) == 0 {
		epsilons = []float64{0.01, 0.1, 0.5, 0.9}
	}
	tb := metrics.NewTable("E11 — noise-family ablation (cost overhead vs non-private, %)",
		"epsilon", "laplace (LPPM)", "gaussian", "uniform")

	sc := h.Base
	sc.Seed = h.Seeds[0]
	inst, err := sc.Build()
	if err != nil {
		return nil, err
	}
	coord, err := core.NewCoordinator(inst, core.Config{Sub: h.Sub})
	if err != nil {
		return nil, err
	}
	clean, err := coord.Run()
	if err != nil {
		return nil, err
	}

	overhead := func(mech core.NoiseMechanism, eps float64) (float64, error) {
		cfg := core.Config{Sub: h.Sub, MaxSweeps: lppmMaxSweeps}
		cfg.Privacy = &core.PrivacyConfig{
			Epsilon:   eps,
			Delta:     h.Delta,
			Rng:       rand.New(rand.NewSource(sc.Seed * 31)),
			Mechanism: mech,
		}
		c, err := core.NewCoordinator(inst, cfg)
		if err != nil {
			return 0, err
		}
		res, err := c.Run()
		if err != nil {
			return 0, err
		}
		return stats.RelativeChange(res.Solution.Cost.Total, clean.Solution.Cost.Total) * 100, nil
	}

	for _, eps := range epsilons {
		lap, err := overhead(core.MechanismLaplace, eps)
		if err != nil {
			return nil, err
		}
		gau, err := overhead(core.MechanismGaussian, eps)
		if err != nil {
			return nil, err
		}
		uni, err := overhead(core.MechanismUniform, eps)
		if err != nil {
			return nil, err
		}
		tb.MustAddRow(eps, lap, gau, uni)
	}
	tb.AddNote("uniform noise ignores ε entirely (the naive 'random noise' the paper's §IV warns" +
		" against): its overhead never shrinks as the privacy budget loosens")
	return tb, nil
}
