package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// flakyEndpoint fails the first failures Send calls, then succeeds by
// delegating to an in-memory recorder.
type flakyEndpoint struct {
	mu       sync.Mutex
	failures int
	sent     []Message
	closed   bool
}

func (f *flakyEndpoint) Name() string { return "flaky" }

func (f *flakyEndpoint) Send(ctx context.Context, to string, m Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.failures > 0 {
		f.failures--
		return errors.New("transient network error")
	}
	m.To = to
	f.sent = append(f.sent, m)
	return nil
}

func (f *flakyEndpoint) Recv(ctx context.Context) (Message, error) {
	return Message{}, errors.New("flaky: no recv")
}

func (f *flakyEndpoint) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (f *flakyEndpoint) sentCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sent)
}

func TestRetryPolicyValidateAndDefaults(t *testing.T) {
	for _, bad := range []RetryPolicy{
		{MaxAttempts: -1},
		{BaseDelay: -time.Second},
		{MaxDelay: -1},
		{Multiplier: -2},
		{Jitter: 1.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("policy %+v: want validation error", bad)
		}
	}
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 4 || p.BaseDelay != 10*time.Millisecond || p.Multiplier != 2 {
		t.Errorf("defaults = %+v", p)
	}
	// Negative jitter disables randomization: the schedule is exact.
	d := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond,
		Multiplier: 2, Jitter: -1}.withDefaults()
	for i, want := range []time.Duration{10, 20, 35, 35} {
		if got := d.delay(i, nil); got != want*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i, got, want*time.Millisecond)
		}
	}
}

func TestReliableSendRetriesUntilSuccess(t *testing.T) {
	inner := &flakyEndpoint{failures: 2}
	ep, err := NewReliableEndpoint(inner, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(testCtx(t), "b", Message{Type: MsgDone}); err != nil {
		t.Fatalf("send after transient failures: %v", err)
	}
	if got := inner.sentCount(); got != 1 {
		t.Errorf("delivered %d messages, want 1", got)
	}
	st := ep.Stats()
	if st.Sends != 1 || st.Retries != 2 || st.SendFailures != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Retries reuse one sequence number, so the receiver can deduplicate.
	if inner.sent[0].Seq == 0 {
		t.Error("sent message has no sequence number")
	}
}

func TestReliableSendExhaustsAttempts(t *testing.T) {
	inner := &flakyEndpoint{failures: 100}
	ep, err := NewReliableEndpoint(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(testCtx(t), "b", Message{Type: MsgDone}); err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	st := ep.Stats()
	if st.SendFailures != 1 || st.Retries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReliableSendDoesNotRetryUnknownPeer(t *testing.T) {
	hub := NewHub()
	raw, err := hub.Register("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := NewReliableEndpoint(raw, RetryPolicy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := ep.Send(testCtx(t), "ghost", Message{Type: MsgDone}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Error("unknown peer was retried with backoff")
	}
}

func TestReliableSendRespectsContext(t *testing.T) {
	inner := &flakyEndpoint{failures: 100}
	ep, err := NewReliableEndpoint(inner, RetryPolicy{MaxAttempts: 100, BaseDelay: 20 * time.Millisecond, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ep.Send(ctx, "b", Message{Type: MsgDone}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled send returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send did not honor context cancellation")
	}
}

func TestReliableRecvDeduplicates(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	rawA, err := hub.Register("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := hub.Register("b", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReliableEndpoint(rawB, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a retry burst: the same sequence number arrives three times,
	// then a new one, then an unsequenced message.
	dup := Message{Type: MsgPolicyUpload, Seq: 7, Payload: []byte("x")}
	for i := 0; i < 3; i++ {
		if err := rawA.Send(ctx, "b", dup); err != nil {
			t.Fatal(err)
		}
	}
	if err := rawA.Send(ctx, "b", Message{Type: MsgPolicyUpload, Seq: 8}); err != nil {
		t.Fatal(err)
	}
	if err := rawA.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for i := 0; i < 3; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m.Seq)
	}
	if got[0] != 7 || got[1] != 8 || got[2] != 0 {
		t.Errorf("received seqs %v, want [7 8 0]", got)
	}
	if st := b.Stats(); st.DupsDropped != 2 {
		t.Errorf("DupsDropped = %d, want 2", st.DupsDropped)
	}
}

func TestReliableEndToEndOverHub(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	rawA, err := hub.Register("a", 32)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := hub.Register("b", 32)
	if err != nil {
		t.Fatal(err)
	}
	// A duplicating link between two reliable endpoints: the injected
	// duplicates carry the same sequence number and are filtered out.
	faulty, err := NewFaultyEndpoint(rawA, FaultConfig{DupProb: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewReliableEndpoint(faulty, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReliableEndpoint(rawB, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Send(ctx, "b", Message{Type: MsgPhaseStart, Sweep: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Sweep != i {
			t.Fatalf("message %d has sweep %d (duplicate leaked)", i, m.Sweep)
		}
	}
	// The duplicate of the final message is still queued (Recv returned on
	// the unique copy), so exactly 4 duplicates have been dropped.
	if st := b.Stats(); st.DupsDropped != 4 {
		t.Errorf("DupsDropped = %d, want 4", st.DupsDropped)
	}
}

func TestDedupWindowEviction(t *testing.T) {
	w := newDedupWindow()
	for seq := uint64(1); seq <= dedupWindowSize+10; seq++ {
		if w.observe(seq) {
			t.Fatalf("fresh seq %d reported as duplicate", seq)
		}
	}
	// The oldest entries have been evicted and would be accepted again;
	// recent ones are still remembered.
	if w.observe(1) {
		t.Error("evicted seq 1 still reported as duplicate")
	}
	if !w.observe(dedupWindowSize + 10) {
		t.Error("recent seq not reported as duplicate")
	}
	if len(w.seen) > dedupWindowSize+1 {
		t.Errorf("window grew to %d entries", len(w.seen))
	}
}

// TestFaultyEndpointReorders: with ReorderProb=1 every message is held and
// released after its successor — the adjacent-swap pattern 2,1,4,3 — which
// is the fault class the BS's stale-discard logic must tolerate.
func TestFaultyEndpointReorders(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	rawA, err := hub.Register("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Register("b", 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewFaultyEndpoint(rawA, FaultConfig{ReorderProb: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := a.Send(ctx, "b", Message{Type: MsgPhaseStart, Sweep: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	for i := 0; i < 4; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m.Sweep)
	}
	want := []int{2, 1, 4, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("delivery order %v, want %v", got, want)
	}
}

// TestFaultyEndpointReorderFlushOnClose: a held message is not lost when
// the endpoint closes before the next send.
func TestFaultyEndpointReorderFlushOnClose(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	rawA, err := hub.Register("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Register("b", 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewFaultyEndpoint(rawA, FaultConfig{ReorderProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", Message{Type: MsgDone, Sweep: 9}); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sweep != 9 {
		t.Errorf("flushed message sweep = %d, want 9", m.Sweep)
	}
}

// TestFaultyEndpointReorderSeededDeterminism: the same seed produces the
// same delivery order twice.
func TestFaultyEndpointReorderSeededDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		ctx := testCtx(t)
		hub := NewHub()
		rawA, err := hub.Register("a", 32)
		if err != nil {
			t.Fatal(err)
		}
		b, err := hub.Register("b", 32)
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewFaultyEndpoint(rawA, FaultConfig{ReorderProb: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		const total = 20
		for i := 1; i <= total; i++ {
			if err := a.Send(ctx, "b", Message{Type: MsgPhaseStart, Sweep: i}); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		var got []int
		for i := 0; i < total; i++ {
			m, err := b.Recv(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, m.Sweep)
		}
		return got
	}
	first, second := run(7), run(7)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("same seed produced different orders:\n%v\n%v", first, second)
	}
	reordered := false
	for i, v := range first {
		if v != i+1 {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Error("ReorderProb=0.5 over 20 sends produced in-order delivery")
	}
}
