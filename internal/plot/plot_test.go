package plot

import (
	"math"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	out, err := Lines(Config{Width: 20, Height: 5, Title: "T", YLabel: "cost"},
		Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		Series{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T\n", "legend: * a   o b", "y: cost", "+--------------------"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Increasing series 'a': marker in the bottom-left and top-right.
	lines := strings.Split(out, "\n")
	var plotRows []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotRows = append(plotRows, l[strings.Index(l, "|")+1:])
		}
	}
	if len(plotRows) != 5 {
		t.Fatalf("plot rows = %d, want 5", len(plotRows))
	}
	top, bottom := plotRows[0], plotRows[4]
	if !strings.Contains(top, "*") || !strings.HasPrefix(bottom, "*") {
		t.Errorf("series a not anchored at corners:\ntop=%q\nbottom=%q", top, bottom)
	}
	// Axis tick labels.
	if !strings.Contains(out, "0") || !strings.Contains(out, "2") {
		t.Error("tick labels missing")
	}
}

func TestLinesErrors(t *testing.T) {
	if _, err := Lines(Config{}); err == nil {
		t.Error("no series: want error")
	}
	if _, err := Lines(Config{}, Series{Name: "a", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Lines(Config{}, Series{Name: "a"}); err == nil {
		t.Error("empty series: want error")
	}
	if _, err := Lines(Config{}, Series{Name: "a", X: []float64{math.NaN()}, Y: []float64{1}}); err == nil {
		t.Error("NaN: want error")
	}
	var many []Series
	for i := 0; i < 7; i++ {
		many = append(many, Series{Name: "s", X: []float64{0}, Y: []float64{0}})
	}
	if _, err := Lines(Config{}, many...); err == nil {
		t.Error("too many series: want error")
	}
}

func TestLinesConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out, err := Lines(Config{Width: 16, Height: 4},
		Series{Name: "flat", X: []float64{1, 1}, Y: []float64{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("marker missing for constant series")
	}
}

func TestBars(t *testing.T) {
	out, err := Bars(Config{Width: 10, Title: "B"},
		[]string{"LRU", "LFU"}, []float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "LRU |##########") {
		t.Errorf("full bar missing:\n%s", out)
	}
	if !strings.Contains(out, "LFU |#####") {
		t.Errorf("half bar missing:\n%s", out)
	}
}

func TestBarsErrors(t *testing.T) {
	if _, err := Bars(Config{}, nil, nil); err == nil {
		t.Error("empty: want error")
	}
	if _, err := Bars(Config{}, []string{"a"}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Bars(Config{}, []string{"a"}, []float64{-1}); err == nil {
		t.Error("negative value: want error")
	}
	if _, err := Bars(Config{}, []string{"a"}, []float64{math.Inf(1)}); err == nil {
		t.Error("infinite value: want error")
	}
}

func TestBarsAllZero(t *testing.T) {
	out, err := Bars(Config{Width: 10}, []string{"a"}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "#") {
		t.Error("zero value drew a bar")
	}
}
