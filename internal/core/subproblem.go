// Package core implements the paper's two contributions: the distributed
// Gauss-Seidel algorithm (Algorithm 1, "DUA" — Distributed Updating
// Algorithm) that jointly optimizes caching and routing, and the LPPM
// privacy mechanism layered on the routing uploads.
//
// The package is organized bottom-up:
//
//   - subproblem.go solves the per-SBS problem P_n (eq. 10-14) by
//     Lagrangian dual decomposition: the coupling y ≤ x is relaxed with
//     multipliers μ (eq. 15-17); the caching sub-problem (eq. 18) is solved
//     by an integral greedy (Theorem 1), the routing sub-problem (eq. 20)
//     by a fractional knapsack, and μ follows the projected sub-gradient
//     update (eq. 21-23). A primal-recovery pass turns the dual iterates
//     into a feasible, high-quality (x_n, y_n) pair.
//   - coordinator.go runs Algorithm 1's synchronized sweep over SBSs,
//     optionally applying LPPM to every routing upload.
//   - exact.go provides an exhaustive P_n solver for small instances,
//     used by tests to certify the dual method's solution quality.
//
// Everything runs on the flat tensor substrate of internal/model: routing
// blocks are model.Mat (contiguous U×F), and each Subproblem owns a
// preallocated workspace so that repeated Solve calls — the access pattern
// of the Gauss-Seidel sweep — perform zero heap allocations.
package core

import (
	"fmt"
	"math"
	"sort"

	"edgecache/internal/model"
)

// SubproblemConfig tunes the dual-decomposition solver for P_n.
type SubproblemConfig struct {
	// DualIters is K, the number of sub-gradient iterations.
	DualIters int
	// Alpha is the step-size decay in η(k) = 1/(1 + α·k) (eq. 22).
	Alpha float64
	// StepScale multiplies η(k). The paper leaves the absolute step scale
	// implicit; the multipliers μ live on the scale of d̂·λ, so the scale
	// is calibrated per-SBS from the instance when left at 0 (auto).
	StepScale float64
	// MaxCandidates bounds the distinct cache vectors retained for primal
	// recovery. 0 means the default (8).
	MaxCandidates int
}

// DefaultSubproblemConfig returns the configuration used by the experiment
// harness.
func DefaultSubproblemConfig() SubproblemConfig {
	return SubproblemConfig{DualIters: 60, Alpha: 0.2}
}

func (c SubproblemConfig) withDefaults() SubproblemConfig {
	if c.DualIters <= 0 {
		c.DualIters = 60
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.2
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 8
	}
	return c
}

// Subproblem solves P_n for one SBS. It precomputes the SBS's item list
// (linked (u,f) pairs with positive demand) once and can then be solved
// repeatedly against different aggregate routings y_{-n}, which is exactly
// the access pattern of the Gauss-Seidel sweep. All scratch state lives in
// a preallocated workspace, so warm Solve calls allocate nothing.
//
// A Subproblem is NOT safe for concurrent use: Solve, SolveExact and
// RoutingGivenCache share the workspace. Give each goroutine its own
// Subproblem (the coordinator and the sim agents already do).
type Subproblem struct {
	inst *model.Instance
	n    int
	cfg  SubproblemConfig
	// items enumerates the SBS's servable (u,f) pairs.
	items []item
	// densityOrder lists item indices sorted by density descending (ties
	// by index). The density ranking is static, so the routing knapsack
	// for a fixed cache never needs a per-call sort.
	densityOrder []int
	// stepScale is the resolved sub-gradient step scale.
	stepScale float64
	// ws is the reusable solve workspace.
	ws solveWorkspace
	// densitySorter is the reusable sort.Sort adapter for densityOrder;
	// living in the struct keeps the one-time constructor sort — and any
	// future re-sort — free of the per-call closure allocation that
	// sort.Slice would cost.
	densitySorter densitySorter
	// memo is the dirty-set fast path: the epoch key of the tracker state
	// ws.result was solved against (see memoHit).
	memo solveMemo
}

// solveMemo records which tracker state the workspace result answers.
// Identical key ⇒ the y_{-n} this SBS would derive is bitwise identical
// ⇒ the deterministic solver would recompute the identical result, so the
// engines return ws.result verbatim instead. The memo is rebuilt, never
// serialized: a resumed or reset tracker bumps its generation and every
// key goes stale.
type solveMemo struct {
	valid bool
	// tracker identifies the tracker the key was read from; a different
	// run (Restarts, a fresh coordinator state) has a different tracker.
	tracker *model.AggregateTracker
	gen     uint64
	// rowMax is LinkedRowEpochMax at solve time: epochs only grow, so an
	// equal max proves no linked aggregate row changed since.
	rowMax uint64
	// block is the epoch of this SBS's own block (y_{-n} = agg − y_n
	// reads both halves).
	block uint64
}

// memoHit reports whether ws.result is still the exact best response to
// the state SBS n currently observes through t: same tracker incarnation
// and generation, no bitwise change to any linked aggregate row or to the
// SBS's own block since the result was computed.
//
//edgecache:noalloc
func (s *Subproblem) memoHit(t *model.AggregateTracker) bool {
	return s.memo.valid &&
		s.memo.tracker == t &&
		s.memo.gen == t.Gen() &&
		s.memo.block == t.BlockEpoch(s.n) &&
		s.memo.rowMax == t.LinkedRowEpochMax(s.inst, s.n)
}

// memoCapture records the epoch key of the state a just-completed Solve
// read. Engines call it after a successful Solve and before installing
// the result: the install's own bumps (if the round-trip changed bits)
// must invalidate the memo, because they change what this SBS observes.
//
//edgecache:noalloc
func (s *Subproblem) memoCapture(t *model.AggregateTracker) {
	s.memo = solveMemo{
		valid:   true,
		tracker: t,
		gen:     t.Gen(),
		rowMax:  t.LinkedRowEpochMax(s.inst, s.n),
		block:   t.BlockEpoch(s.n),
	}
}

// cachedResult returns the workspace result paired with the current memo.
// Only valid immediately after memoHit reported true.
//
//edgecache:noalloc
func (s *Subproblem) cachedResult() *Result { return &s.ws.result }

// memoInvalidate drops the memo. The engines call it (for every SBS) when
// a sweep aborts mid-round: the hit fast paths rely on "memoHit ⇒ the
// cached routing is bitwise equal to the currently installed block", an
// invariant only a completed round establishes — a capture from an aborted
// round answers the current tracker state but was never installed.
//
//edgecache:noalloc
func (s *Subproblem) memoInvalidate() { s.memo = solveMemo{} }

// item is one servable (u,f) pair from SBS n's perspective.
type item struct {
	u, f   int
	lambda float64
	// gain is (d̂_u − d_nu)·λ_uf: the cost saved by fully serving the pair
	// at the edge instead of the backhaul. The paper assumes d̂ ≫ d, so
	// gains are typically positive.
	gain float64
	// density is gain per unit of bandwidth, (d̂_u − d_nu).
	density float64
}

// solveWorkspace holds every buffer a Solve call touches. Sized once in
// NewSubproblem; nothing here escapes to the caller except result, whose
// ownership contract is documented on Solve.
type solveWorkspace struct {
	caps     []float64 // per-item residual capacity for this solve
	mu       []float64 // dual multipliers
	yDual    []float64 // routing iterate of the dual loop
	score    []float64 // per-content multiplier mass (len F)
	scoreIdx []int     // cachingStep sort buffer (cap F)
	order    []int     // routingStep eligible-item buffer (cap #items)
	ratio    []float64 // routingStep per-item cost ratio w/λ
	xStep    []bool    // cachingStep output (len F)
	greedyX  []bool    // greedyCache output (len F)
	workX    []bool    // localSearch mutation buffer (len F)
	yA, yB   []float64 // double-buffered routing evaluations
	scratchY []float64 // gain-only routing evaluations
	pool     candidatePool
	result   Result

	scoreSorter scoreSorter
	ratioSorter ratioSorter
}

// NewSubproblem builds the solver for SBS n.
func NewSubproblem(inst *model.Instance, n int, cfg SubproblemConfig) (*Subproblem, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if n < 0 || n >= inst.N {
		return nil, fmt.Errorf("core: SBS index %d outside [0,%d)", n, inst.N)
	}
	cfg = cfg.withDefaults()
	s := &Subproblem{inst: inst, n: n, cfg: cfg}
	var maxDensity float64
	for u := 0; u < inst.U; u++ {
		if !inst.Links[n][u] {
			continue
		}
		density := inst.BSCost[u] - inst.EdgeCost[n][u]
		if density > maxDensity {
			maxDensity = density
		}
		for f := 0; f < inst.F; f++ {
			lambda := inst.Demand[u][f]
			if lambda <= 0 {
				continue
			}
			s.items = append(s.items, item{
				u: u, f: f, lambda: lambda,
				gain:    density * lambda,
				density: density,
			})
		}
	}
	s.stepScale = cfg.StepScale
	if s.stepScale <= 0 {
		// μ must climb to the scale of the routing coefficients
		// ((d̂−d)·λ ≈ density·λ) within a handful of iterations; scale the
		// step by the largest per-unit density so convergence speed is
		// instance-independent.
		s.stepScale = maxDensity
		if s.stepScale <= 0 {
			s.stepScale = 1
		}
	}

	s.densityOrder = make([]int, len(s.items))
	for i := range s.densityOrder {
		s.densityOrder[i] = i
	}
	s.sortDensityOrder()

	ni := len(s.items)
	s.ws = solveWorkspace{
		caps:     make([]float64, ni),
		mu:       make([]float64, ni),
		yDual:    make([]float64, ni),
		score:    make([]float64, inst.F),
		scoreIdx: make([]int, 0, inst.F),
		order:    make([]int, 0, ni),
		ratio:    make([]float64, ni),
		xStep:    make([]bool, inst.F),
		greedyX:  make([]bool, inst.F),
		workX:    make([]bool, inst.F),
		yA:       make([]float64, ni),
		yB:       make([]float64, ni),
		scratchY: make([]float64, ni),
		result:   Result{Cache: make([]bool, inst.F), Routing: model.NewMat(inst.U, inst.F)},
	}
	s.ws.pool = newCandidatePool(cfg.MaxCandidates, inst.F)
	return s, nil
}

// Result is the outcome of one P_n solve.
type Result struct {
	// Cache is x_n (length F) and Routing y_n (U×F).
	Cache []bool
	// Routing is the raw pre-LPPM best response: per-MU routing shares
	// reveal which users requested what (§IV), so privflow requires every
	// egress of this field to pass an LPPM sanitizer first.
	//
	//edgecache:private pre-LPPM per-MU routing shares
	Routing model.Mat
	// Gain is the serving-cost reduction Σ (d̂−d)·λ·y achieved versus
	// routing nothing; the coordinator uses it for reporting only.
	Gain float64
	// DualIters is the number of sub-gradient iterations executed.
	DualIters int
}

// Solve computes SBS n's best response to the aggregate routing yMinus
// (U×F, the portion of each demand already served by the other SBSs). The
// returned policy satisfies the cache capacity, bandwidth, box and
// no-overserve constraints, and routing only touches cached contents.
//
// Workspace-reuse contract: the returned Result (Cache and Routing
// included) is owned by the Subproblem and is overwritten by the next
// Solve/SolveExact call. Callers must copy anything they retain —
// RoutingPolicy.SetSBS and CachingPolicy.SetRow both copy.
//
//edgecache:noalloc
func (s *Subproblem) Solve(yMinus model.Mat) (*Result, error) {
	if yMinus.U != s.inst.U || yMinus.F != s.inst.F {
		return nil, fmt.Errorf("core: yMinus is %dx%d, want U=%d F=%d",
			yMinus.U, yMinus.F, s.inst.U, s.inst.F)
	}

	ws := &s.ws
	// Residual capacity per item: y_nuf ≤ clamp(1 − y_{-n,uf}, 0, 1),
	// which enforces the coupling constraint (4) inside the block update.
	caps := ws.caps
	for i, it := range s.items {
		caps[i] = clamp01(1 - yMinus.At(it.u, it.f))
	}

	// Dual loop (eq. 21-23).
	mu := ws.mu // μ_uf ≥ 0, one per servable pair
	for i := range mu {
		mu[i] = 0
	}
	y := ws.yDual
	scoreBuf := ws.score
	ws.pool.reset()
	iters := 0
	for k := 0; k < s.cfg.DualIters; k++ {
		iters++
		// Caching sub-problem (eq. 18): maximize Σ_f x_f·Σ_u μ_uf under
		// Σ x_f ≤ C_n — integral greedy over per-content scores.
		for f := range scoreBuf {
			scoreBuf[f] = 0
		}
		for i, it := range s.items {
			scoreBuf[it.f] += mu[i]
		}
		x := s.cachingStep(scoreBuf)
		ws.pool.add(x)

		// Routing sub-problem (eq. 20): fractional knapsack with
		// coefficients w = (d−d̂)·λ + μ over the bandwidth budget.
		s.routingStep(y, mu, caps)

		// Projected sub-gradient update μ ← [μ + η·(y − x)]⁺ (eq. 21-23).
		eta := s.stepScale / (1 + s.cfg.Alpha*float64(k))
		done := true
		for i, it := range s.items {
			g := y[i]
			if x[it.f] {
				g -= 1
			}
			if g > 1e-9 {
				done = false
			}
			mu[i] = math.Max(0, mu[i]+eta*g)
		}
		if done && k >= 1 {
			// The relaxed constraint y ≤ x holds, so the current primal
			// pair is feasible; further dual iterations cannot improve it.
			break
		}
	}

	// Primal recovery: for every distinct cache vector seen, compute the
	// exact optimal routing given that cache and keep the best.
	best := s.recoverPrimal(caps)
	best.DualIters = iters
	return best, nil
}

// Multipliers returns a copy of the dual multipliers μ as left by the most
// recent Solve (zeros before the first). One entry per servable item, in
// item order. Checkpoints capture this for workspace completeness and as a
// warm-start hook; Solve itself cold-starts μ, so restoration does not
// alter the trajectory.
//
// The multipliers are derived from raw per-item demand pressure, so they
// are a privacy source: privflow flags any egress that has not passed an
// LPPM sanitizer.
//
//edgecache:private raw dual multipliers derived from per-MU demand
func (s *Subproblem) Multipliers() []float64 {
	return append([]float64(nil), s.ws.mu...)
}

// RestoreMultipliers reloads a μ vector captured by Multipliers.
func (s *Subproblem) RestoreMultipliers(mu []float64) error {
	if len(mu) != len(s.ws.mu) {
		return fmt.Errorf("core: SBS %d multiplier vector has %d entries, want %d", s.n, len(mu), len(s.ws.mu))
	}
	copy(s.ws.mu, mu)
	return nil
}

// cachingStep solves eq. 18: pick the C_n contents with the largest
// positive multiplier mass. Ties at zero are left uncached (they earn
// nothing in the dual); primal recovery fills free capacity greedily. The
// returned vector is the workspace's xStep buffer.
func (s *Subproblem) cachingStep(score []float64) []bool {
	ws := &s.ws
	x := ws.xStep
	for f := range x {
		x[f] = false
	}
	capN := s.inst.CacheCap[s.n]
	if capN == 0 {
		return x
	}
	idx := ws.scoreIdx[:0]
	for f, sc := range score {
		if sc > 0 {
			idx = append(idx, f)
		}
	}
	ws.scoreSorter.idx = idx
	ws.scoreSorter.score = score
	sort.Sort(&ws.scoreSorter)
	if len(idx) > capN {
		idx = idx[:capN]
	}
	for _, f := range idx {
		x[f] = true
	}
	return x
}

// routingStep solves eq. 20 in place: minimize Σ (w_i)·y_i with
// w_i = −gain_i + μ_i, subject to Σ λ_i·y_i ≤ B_n and 0 ≤ y_i ≤ caps_i.
// Only negative-coefficient items are worth serving; the optimal solution
// of this LP fills them in increasing w/λ order (fractional knapsack).
func (s *Subproblem) routingStep(y, mu, caps []float64) {
	ws := &s.ws
	order := ws.order[:0]
	for i := range s.items {
		y[i] = 0
		w := -s.items[i].gain + mu[i]
		if w < 0 && caps[i] > 0 {
			ws.ratio[i] = w / s.items[i].lambda
			order = append(order, i)
		}
	}
	ws.ratioSorter.order = order
	ws.ratioSorter.ratio = ws.ratio
	sort.Sort(&ws.ratioSorter)
	budget := s.inst.Bandwidth[s.n]
	for _, i := range order {
		if budget <= 0 {
			break
		}
		it := s.items[i]
		amount := math.Min(caps[i], budget/it.lambda)
		y[i] = amount
		budget -= amount * it.lambda
	}
}

// routingGivenCacheInto computes the exact optimal routing for a fixed
// cache vector x into the caller-supplied per-item buffer y and returns
// the gain. The eligible items are walked in the precomputed density order
// (the knapsack's fill order is static), so a call is one linear scan with
// no sort and no allocation.
func (s *Subproblem) routingGivenCacheInto(x []bool, caps, y []float64) float64 {
	for i := range y {
		y[i] = 0
	}
	budget := s.inst.Bandwidth[s.n]
	var gain float64
	for _, i := range s.densityOrder {
		if budget <= 1e-12 {
			break
		}
		it := s.items[i]
		if !x[it.f] || caps[i] <= 0 || it.gain <= 0 {
			continue
		}
		amount := math.Min(caps[i], budget/it.lambda)
		y[i] = amount
		budget -= amount * it.lambda
		gain += amount * it.gain
	}
	return gain
}

// RoutingGivenCache computes the exact optimal routing for a fixed cache
// vector x: a fractional knapsack over the cached, linked pairs with
// per-item capacity caps. It returns a fresh flat item routing and the
// total gain. This is both the primal-recovery engine and, composed with a
// cache search, an independent P_n solver.
func (s *Subproblem) RoutingGivenCache(x []bool, caps []float64) ([]float64, float64) {
	y := make([]float64, len(s.items))
	gain := s.routingGivenCacheInto(x, caps, y)
	return y, gain
}

// BestRoutingForCache computes the optimal routing block (U×F) for a fixed
// cache vector against the aggregate routing of the other SBSs. Baselines
// use it to route on externally chosen caches (e.g. LRFU's) with exactly
// the same knapsack the distributed algorithm uses, so cost comparisons
// isolate the caching decision.
func (s *Subproblem) BestRoutingForCache(x []bool, yMinus model.Mat) (model.Mat, error) {
	if len(x) != s.inst.F {
		return model.Mat{}, fmt.Errorf("core: cache vector has %d entries, want F=%d", len(x), s.inst.F)
	}
	if yMinus.U != s.inst.U || yMinus.F != s.inst.F {
		return model.Mat{}, fmt.Errorf("core: yMinus is %dx%d, want U=%d F=%d",
			yMinus.U, yMinus.F, s.inst.U, s.inst.F)
	}
	caps := make([]float64, len(s.items))
	for i, it := range s.items {
		caps[i] = clamp01(1 - yMinus.At(it.u, it.f))
	}
	y, _ := s.RoutingGivenCache(x, caps)
	block := model.NewMat(s.inst.U, s.inst.F)
	for i, it := range s.items {
		block.Set(it.u, it.f, y[i])
	}
	return block, nil
}

// recoverPrimal evaluates every candidate cache vector (plus a greedy
// marginal-gain candidate) with exact routing and returns the best
// feasible pair as a Result in matrix form. The Result is workspace-owned.
func (s *Subproblem) recoverPrimal(caps []float64) *Result {
	ws := &s.ws
	// The greedy candidate is evaluated unconditionally: it must not be
	// crowded out when the dual loop already produced MaxCandidates
	// distinct vectors.
	best, cand := ws.yA, ws.yB

	var bestGain float64 = -1
	var bestX []bool
	if gain := s.routingGivenCacheInto(s.greedyCache(caps), caps, best); gain > bestGain {
		bestGain, bestX = gain, ws.greedyX
	}
	for ci := 0; ci < ws.pool.n; ci++ {
		x := ws.pool.list[ci]
		gain := s.routingGivenCacheInto(x, caps, cand)
		if gain > bestGain {
			bestGain, bestX = gain, x
			best, cand = cand, best
		}
	}
	bestX, best, bestGain = s.localSearch(bestX, best, cand, bestGain, caps)

	res := &ws.result
	copy(res.Cache, bestX)
	res.Routing.Zero()
	for i, it := range s.items {
		res.Routing.Set(it.u, it.f, best[i])
	}
	res.Gain = bestGain
	res.DualIters = 0
	return res
}

// localSearch improves a cache vector by 1-swap exchanges (replace one
// cached content with one uncached content) until no swap improves the
// exact routing gain. The greedy candidate is near-optimal but not optimal
// (submodular greedy); swaps close the residual gap on the instances this
// repository targets. best and cand are the double-buffered routing
// evaluations; the returned slice is whichever buffer holds the winner.
func (s *Subproblem) localSearch(x []bool, best, cand []float64, gain float64, caps []float64) ([]bool, []float64, float64) {
	if x == nil {
		return x, best, gain
	}
	const maxPasses = 4
	work := s.ws.workX
	copy(work, x)
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for out := 0; out < s.inst.F; out++ {
			if !work[out] {
				continue
			}
			for in := 0; in < s.inst.F; in++ {
				if work[in] || in == out {
					continue
				}
				work[out], work[in] = false, true
				candGain := s.routingGivenCacheInto(work, caps, cand)
				if candGain > gain+1e-9 {
					gain = candGain
					best, cand = cand, best
					copy(x, work)
					improved = true
					break // 'out' is no longer cached; rescan
				}
				work[out], work[in] = true, false
			}
		}
		if !improved {
			break
		}
	}
	return x, best, gain
}

// greedyCache builds a cache vector by repeatedly adding the content with
// the largest marginal routing gain (a submodular-style greedy). It is the
// fallback candidate that keeps primal recovery strong when the dual
// multipliers have not yet separated the useful contents. The returned
// vector is the workspace's greedyX buffer.
func (s *Subproblem) greedyCache(caps []float64) []bool {
	ws := &s.ws
	x := ws.greedyX
	for f := range x {
		x[f] = false
	}
	capN := s.inst.CacheCap[s.n]
	if capN == 0 || len(s.items) == 0 {
		return x
	}
	baseGain := s.routingGivenCacheInto(x, caps, ws.scratchY)
	for picked := 0; picked < capN; picked++ {
		bestF, bestGain := -1, baseGain
		for f := 0; f < s.inst.F; f++ {
			if x[f] {
				continue
			}
			x[f] = true
			gain := s.routingGivenCacheInto(x, caps, ws.scratchY)
			x[f] = false
			if gain > bestGain+1e-12 {
				bestF, bestGain = f, gain
			}
		}
		if bestF == -1 {
			break // no content adds gain (bandwidth exhausted or no demand)
		}
		x[bestF] = true
		baseGain = bestGain
	}
	return x
}

// candidatePool deduplicates cache vectors up to a size cap, with every
// slot preallocated so add never touches the heap.
type candidatePool struct {
	max  int
	n    int
	list [][]bool
}

func newCandidatePool(max, f int) candidatePool {
	p := candidatePool{max: max, list: make([][]bool, max)}
	for i := range p.list {
		p.list[i] = make([]bool, f)
	}
	return p
}

func (c *candidatePool) reset() { c.n = 0 }

func (c *candidatePool) add(x []bool) {
	if c.n >= c.max {
		return
	}
	for i := 0; i < c.n; i++ {
		if boolsEqual(c.list[i], x) {
			return
		}
	}
	copy(c.list[c.n], x)
	c.n++
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortDensityOrder (re)establishes the density-descending order of
// densityOrder through the reusable sorter, so a sort costs no closure
// allocation.
//
//edgecache:noalloc
func (s *Subproblem) sortDensityOrder() {
	s.densitySorter.order = s.densityOrder
	s.densitySorter.items = s.items
	sort.Sort(&s.densitySorter)
}

// densitySorter orders item indices by density descending, ties by index.
type densitySorter struct {
	order []int
	items []item
}

func (s *densitySorter) Len() int { return len(s.order) }
func (s *densitySorter) Less(a, b int) bool {
	ia, ib := s.order[a], s.order[b]
	if s.items[ia].density != s.items[ib].density { //edgecache:lint-ignore floateq sort comparator must be a strict weak order; epsilon ties would break transitivity
		return s.items[ia].density > s.items[ib].density
	}
	return ia < ib
}
func (s *densitySorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }

// scoreSorter orders content indices by score descending, ties by index.
type scoreSorter struct {
	idx   []int
	score []float64
}

func (s *scoreSorter) Len() int { return len(s.idx) }
func (s *scoreSorter) Less(a, b int) bool {
	ia, ib := s.idx[a], s.idx[b]
	if s.score[ia] != s.score[ib] { //edgecache:lint-ignore floateq sort comparator must be a strict weak order; epsilon ties would break transitivity
		return s.score[ia] > s.score[ib]
	}
	return ia < ib
}
func (s *scoreSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// ratioSorter orders item indices by precomputed w/λ ascending, ties by
// index.
type ratioSorter struct {
	order []int
	ratio []float64
}

func (s *ratioSorter) Len() int { return len(s.order) }
func (s *ratioSorter) Less(a, b int) bool {
	ia, ib := s.order[a], s.order[b]
	if s.ratio[ia] != s.ratio[ib] { //edgecache:lint-ignore floateq sort comparator must be a strict weak order; epsilon ties would break transitivity
		return s.ratio[ia] < s.ratio[ib]
	}
	return ia < ib
}
func (s *ratioSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
