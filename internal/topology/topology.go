// Package topology generates the connectivity structure of the edge
// network: which MU groups each SBS can serve (the matrix L of l_nu flags)
// and the distance-weighted transmission costs d_nu and d̂_u.
//
// The paper's experiments fix N=3 SBSs and sweep the number of MU groups
// (Fig. 4) and the total number of MU-SBS links (Fig. 5), drawing links
// uniformly at random. This package implements that sampler plus a
// geometric placement model used by the examples.
package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// RandomLinksConfig parameterizes the uniform link sampler.
type RandomLinksConfig struct {
	// SBSs (N) and Groups (U) are the matrix dimensions.
	SBSs, Groups int
	// TotalLinks is the number of (n,u) pairs set to true. It must not
	// exceed SBSs·Groups.
	TotalLinks int
	// EnsureCoverage forces every MU group to receive at least one link
	// when TotalLinks ≥ Groups. Without it some groups may be servable only
	// by the BS, exactly as in the paper's sparse-link scenarios.
	EnsureCoverage bool
	// Seed drives the sampler.
	Seed int64
}

// RandomLinks samples a connectivity matrix with exactly TotalLinks links
// drawn uniformly without replacement.
func RandomLinks(cfg RandomLinksConfig) ([][]bool, error) {
	if cfg.SBSs <= 0 || cfg.Groups <= 0 {
		return nil, fmt.Errorf("topology: dimensions must be positive, got N=%d U=%d", cfg.SBSs, cfg.Groups)
	}
	total := cfg.SBSs * cfg.Groups
	if cfg.TotalLinks < 0 || cfg.TotalLinks > total {
		return nil, fmt.Errorf("topology: TotalLinks=%d outside [0,%d]", cfg.TotalLinks, total)
	}
	if cfg.EnsureCoverage && cfg.TotalLinks < cfg.Groups {
		return nil, fmt.Errorf("topology: cannot cover %d groups with %d links", cfg.Groups, cfg.TotalLinks)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	links := make([][]bool, cfg.SBSs)
	for n := range links {
		links[n] = make([]bool, cfg.Groups)
	}
	placed := 0
	if cfg.EnsureCoverage {
		// One uniformly chosen SBS per group first.
		for u := 0; u < cfg.Groups; u++ {
			links[rng.Intn(cfg.SBSs)][u] = true
			placed++
		}
	}
	// Fill the remainder by sampling free cells uniformly without
	// replacement (Fisher-Yates over the free-cell list).
	free := make([]int, 0, total-placed)
	for n := 0; n < cfg.SBSs; n++ {
		for u := 0; u < cfg.Groups; u++ {
			if !links[n][u] {
				free = append(free, n*cfg.Groups+u)
			}
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for _, cell := range free[:cfg.TotalLinks-placed] {
		links[cell/cfg.Groups][cell%cfg.Groups] = true
	}
	return links, nil
}

// Point is a planar location in abstract distance units.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// GeometricConfig parameterizes the geometric placement model: SBSs and MU
// groups are dropped uniformly in a square field around a central BS, and a
// link exists when an MU group lies within an SBS's coverage radius.
type GeometricConfig struct {
	// SBSs and Groups are the entity counts.
	SBSs, Groups int
	// FieldSize is the side length of the square deployment area; the BS
	// sits at its center.
	FieldSize float64
	// CoverageRadius is the SBS service radius: l_nu = 1 iff
	// dist(SBS n, MU u) ≤ CoverageRadius.
	CoverageRadius float64
	// Seed drives placement.
	Seed int64
}

// Geometric is a placed topology: positions plus the derived connectivity
// and distance matrices.
type Geometric struct {
	BS       Point
	SBSPos   []Point
	GroupPos []Point
	// Links[n][u] reports coverage.
	Links [][]bool
	// SBSDist[n][u] is the SBS-to-group distance; BSDist[u] is the
	// BS-to-group distance. Cost models are built from these.
	SBSDist [][]float64
	BSDist  []float64
}

// PlaceGeometric drops SBSs and MU groups uniformly at random and derives
// connectivity from the coverage radius.
func PlaceGeometric(cfg GeometricConfig) (*Geometric, error) {
	if cfg.SBSs <= 0 || cfg.Groups <= 0 {
		return nil, fmt.Errorf("topology: dimensions must be positive, got N=%d U=%d", cfg.SBSs, cfg.Groups)
	}
	if cfg.FieldSize <= 0 || cfg.CoverageRadius <= 0 {
		return nil, fmt.Errorf("topology: FieldSize and CoverageRadius must be positive, got %v and %v",
			cfg.FieldSize, cfg.CoverageRadius)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Geometric{
		BS:       Point{cfg.FieldSize / 2, cfg.FieldSize / 2},
		SBSPos:   make([]Point, cfg.SBSs),
		GroupPos: make([]Point, cfg.Groups),
		Links:    make([][]bool, cfg.SBSs),
		SBSDist:  make([][]float64, cfg.SBSs),
		BSDist:   make([]float64, cfg.Groups),
	}
	for n := range g.SBSPos {
		g.SBSPos[n] = Point{rng.Float64() * cfg.FieldSize, rng.Float64() * cfg.FieldSize}
	}
	for u := range g.GroupPos {
		g.GroupPos[u] = Point{rng.Float64() * cfg.FieldSize, rng.Float64() * cfg.FieldSize}
		g.BSDist[u] = g.BS.Dist(g.GroupPos[u])
	}
	for n := range g.SBSPos {
		g.Links[n] = make([]bool, cfg.Groups)
		g.SBSDist[n] = make([]float64, cfg.Groups)
		for u := range g.GroupPos {
			d := g.SBSPos[n].Dist(g.GroupPos[u])
			g.SBSDist[n][u] = d
			g.Links[n][u] = d <= cfg.CoverageRadius
		}
	}
	return g, nil
}

// UniformBSCosts draws d̂_u uniformly from [lo, hi], the paper's §V-A setup
// (d̂_u ~ U[100, 150]).
func UniformBSCosts(groups int, lo, hi float64, seed int64) ([]float64, error) {
	if groups <= 0 {
		return nil, fmt.Errorf("topology: groups must be positive, got %d", groups)
	}
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("topology: invalid cost range [%v,%v]", lo, hi)
	}
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, groups)
	for u := range costs {
		costs[u] = lo + rng.Float64()*(hi-lo)
	}
	return costs, nil
}

// ConstantEdgeCosts returns an N×U matrix with every d_nu = c, the paper's
// §V-A setup (d_nu = 1).
func ConstantEdgeCosts(sbss, groups int, c float64) ([][]float64, error) {
	if sbss <= 0 || groups <= 0 {
		return nil, fmt.Errorf("topology: dimensions must be positive, got N=%d U=%d", sbss, groups)
	}
	if c < 0 {
		return nil, fmt.Errorf("topology: cost must be non-negative, got %v", c)
	}
	m := make([][]float64, sbss)
	for n := range m {
		m[n] = make([]float64, groups)
		for u := range m[n] {
			m[n][u] = c
		}
	}
	return m, nil
}

// DistanceEdgeCosts converts a distance matrix into costs with a linear
// model cost = base + perUnit·distance, used by the geometric examples.
func DistanceEdgeCosts(dist [][]float64, base, perUnit float64) ([][]float64, error) {
	if base < 0 || perUnit < 0 {
		return nil, fmt.Errorf("topology: base and perUnit must be non-negative, got %v and %v", base, perUnit)
	}
	m := make([][]float64, len(dist))
	for n, row := range dist {
		m[n] = make([]float64, len(row))
		for u, d := range row {
			m[n][u] = base + perUnit*d
		}
	}
	return m, nil
}

// CountLinks returns the number of true cells in a connectivity matrix.
func CountLinks(links [][]bool) int {
	count := 0
	for _, row := range links {
		for _, l := range row {
			if l {
				count++
			}
		}
	}
	return count
}
