#!/bin/sh
# verify.sh — the repository's tier-1 gate.
#
# Runs the static checks plus the race-enabled test suites of the three
# packages that carry the concurrency- and hot-path-sensitive code:
#
#   internal/core      DUA sweep, zero-alloc subproblem workspaces
#   internal/sim       distributed BS/SBS protocol (goroutines + transport)
#   internal/transport in-process message passing
#   internal/chaos     fault schedules against the protocol (short mode)
#
# CI and pre-merge checks call this script; it exits non-zero on the first
# failure. The full (non-race) suite is `go test ./...`.
set -eu

cd "$(dirname "$0")"

echo "verify: go vet ./..."
go vet ./...

echo "verify: go test -race ./internal/core/... ./internal/sim/... ./internal/transport/..."
go test -race ./internal/core/... ./internal/sim/... ./internal/transport/...

echo "verify: go test -race -short ./internal/chaos/..."
go test -race -short ./internal/chaos/...

echo "verify: OK"
