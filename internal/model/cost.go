package model

// CostBreakdown decomposes the serving cost f(y) = f1(y) + f2(y) of eq. 7.
type CostBreakdown struct {
	// Edge is f1(y) = Σ_n Σ_u Σ_f d_nu·y_nuf·l_nu·λ_uf (eq. 5): the cost of
	// serving requests from SBS caches.
	Edge float64
	// Backhaul is f2(y) = Σ_u d̂_u Σ_f (1 − Σ_n y_nuf·l_nu)·λ_uf (eq. 6):
	// the cost of the residual demand the BS serves over the backhaul.
	Backhaul float64
	// Total is Edge + Backhaul.
	Total float64
}

// EdgeServingCost returns f1(y) (eq. 5).
func EdgeServingCost(in *Instance, y *RoutingPolicy) float64 {
	var cost float64
	for n := 0; n < in.N; n++ {
		block := y.T.SBSRow(n)
		for u := 0; u < in.U; u++ {
			if !in.Links[n][u] {
				continue
			}
			d := in.EdgeCost[n][u]
			row := block.Row(u)
			demand := in.Demand[u]
			for f := range row {
				cost += d * row[f] * demand[f]
			}
		}
	}
	return cost
}

// BackhaulServingCost returns f2(y) (eq. 6). The residual fraction
// 1 − Σ_n y·l is clamped at zero: if the edge over-serves a demand the
// surplus packets are discarded (paper §IV-B), they do not earn negative
// backhaul cost.
func BackhaulServingCost(in *Instance, y *RoutingPolicy) float64 {
	agg := y.Aggregate(in)
	return BackhaulCostFromAggregate(in, agg)
}

// BackhaulCostFromAggregate evaluates f2 from an already-computed masked
// aggregate Σ_n y·l (e.g. the AggregateTracker's running matrix), avoiding
// the O(N·U·F) rebuild.
func BackhaulCostFromAggregate(in *Instance, agg Mat) float64 {
	var cost float64
	for u := 0; u < in.U; u++ {
		dHat := in.BSCost[u]
		row := agg.Row(u)
		demand := in.Demand[u]
		for f := range row {
			residual := 1 - row[f]
			if residual < 0 {
				residual = 0
			}
			cost += dHat * residual * demand[f]
		}
	}
	return cost
}

// TotalServingCost returns the full decomposition of f(y) (eq. 7).
func TotalServingCost(in *Instance, y *RoutingPolicy) CostBreakdown {
	edge := EdgeServingCost(in, y)
	backhaul := BackhaulServingCost(in, y)
	return CostBreakdown{Edge: edge, Backhaul: backhaul, Total: edge + backhaul}
}

// TotalServingCostFromAggregate is TotalServingCost with the backhaul part
// evaluated from a pre-computed aggregate. The sweep loop uses it with the
// AggregateTracker's running matrix so per-sweep cost evaluation allocates
// nothing.
func TotalServingCostFromAggregate(in *Instance, y *RoutingPolicy, agg Mat) CostBreakdown {
	edge := EdgeServingCost(in, y)
	backhaul := BackhaulCostFromAggregate(in, agg)
	return CostBreakdown{Edge: edge, Backhaul: backhaul, Total: edge + backhaul}
}

// ServedFraction returns the share of the total demand served at the edge:
// Σ_{u,f} min(1, Σ_n y·l)·λ / Σ_{u,f} λ. It is a convenient scalar for
// dashboards and tests; it is not part of the paper's objective.
func ServedFraction(in *Instance, y *RoutingPolicy) float64 {
	total := in.TotalDemand()
	if total == 0 {
		return 0
	}
	agg := y.Aggregate(in)
	var served float64
	for u := 0; u < in.U; u++ {
		row := agg.Row(u)
		demand := in.Demand[u]
		for f := range row {
			frac := row[f]
			if frac > 1 {
				frac = 1
			}
			served += frac * demand[f]
		}
	}
	return served / total
}
