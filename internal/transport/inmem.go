package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Hub is an in-memory network: endpoints register by name and exchange
// messages through buffered channels. It is the default transport for
// tests, benchmarks and single-process simulations.
type Hub struct {
	mu        sync.Mutex
	endpoints map[string]*InmemEndpoint
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{endpoints: make(map[string]*InmemEndpoint)}
}

// Register creates an endpoint with the given name and inbound buffer.
// Registering a duplicate name fails.
func (h *Hub) Register(name string, buffer int) (*InmemEndpoint, error) {
	if name == "" {
		return nil, fmt.Errorf("transport: endpoint name must be non-empty")
	}
	if buffer < 0 {
		return nil, fmt.Errorf("transport: buffer must be non-negative, got %d", buffer)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.endpoints[name]; ok {
		return nil, fmt.Errorf("transport: endpoint %q already registered", name)
	}
	ep := &InmemEndpoint{hub: h, name: name, inbox: make(chan Message, buffer)}
	h.endpoints[name] = ep
	return ep, nil
}

// lookup returns the endpoint registered under name.
func (h *Hub) lookup(name string) (*InmemEndpoint, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ep, ok := h.endpoints[name]
	return ep, ok
}

// remove unregisters a closed endpoint.
func (h *Hub) remove(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.endpoints, name)
}

// InmemEndpoint is a hub-attached endpoint.
type InmemEndpoint struct {
	hub  *Hub
	name string

	mu     sync.Mutex
	closed bool
	inbox  chan Message
}

var _ Endpoint = (*InmemEndpoint)(nil)

// Name implements Endpoint.
func (e *InmemEndpoint) Name() string { return e.name }

// Send implements Endpoint.
func (e *InmemEndpoint) Send(ctx context.Context, to string, m Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	peer, ok := e.hub.lookup(to)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	m.From = e.name
	m.To = to
	return peer.deliver(ctx, m)
}

// deliver places a message in the inbox, respecting the context and the
// peer's closed state.
func (e *InmemEndpoint) deliver(ctx context.Context, m Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("%w: peer %q", ErrClosed, e.name)
	}
	inbox := e.inbox
	e.mu.Unlock()
	select {
	case inbox <- m:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv implements Endpoint.
func (e *InmemEndpoint) Recv(ctx context.Context) (Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	inbox := e.inbox
	e.mu.Unlock()
	select {
	case m, ok := <-inbox:
		if !ok {
			return Message{}, ErrClosed
		}
		return m, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Close implements Endpoint. In-flight deliveries racing Close may be
// dropped, which mirrors a real socket teardown.
func (e *InmemEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.hub.remove(e.name)
	return nil
}

// FaultConfig describes the failure behaviour of a FaultyEndpoint.
type FaultConfig struct {
	// DropProb and DupProb are per-Send probabilities of silently dropping
	// or duplicating the message.
	DropProb, DupProb float64
	// ReorderProb is the per-Send probability of holding the message back
	// and delivering it after the next one (a deterministic adjacent swap,
	// unlike the emergent reordering of MaxDelay). A held message that is
	// never followed by another Send is flushed on Close.
	ReorderProb float64
	// MaxDelay, when positive, sleeps a uniform random duration up to this
	// bound before each delivery (reordering emerges from concurrency).
	MaxDelay time.Duration
	// Seed drives the fault randomness.
	Seed int64
}

// Validate checks probability ranges.
func (c FaultConfig) Validate() error {
	if c.DropProb < 0 || c.DropProb > 1 || c.DupProb < 0 || c.DupProb > 1 ||
		c.ReorderProb < 0 || c.ReorderProb > 1 {
		return fmt.Errorf("transport: fault probabilities must be in [0,1], got drop=%v dup=%v reorder=%v",
			c.DropProb, c.DupProb, c.ReorderProb)
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("transport: MaxDelay must be non-negative, got %v", c.MaxDelay)
	}
	return nil
}

// FaultyEndpoint wraps an endpoint with message dropping, duplication,
// reordering and delay on the send path. Receives pass through untouched.
type FaultyEndpoint struct {
	inner Endpoint
	cfg   FaultConfig

	mu   sync.Mutex
	rng  *rand.Rand
	held *heldMessage
}

// heldMessage is a send deferred by ReorderProb until the next Send.
type heldMessage struct {
	to string
	m  Message
}

var _ Endpoint = (*FaultyEndpoint)(nil)

// NewFaultyEndpoint wraps inner with the given fault model.
func NewFaultyEndpoint(inner Endpoint, cfg FaultConfig) (*FaultyEndpoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FaultyEndpoint{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Name implements Endpoint.
func (e *FaultyEndpoint) Name() string { return e.inner.Name() }

// Send implements Endpoint with fault injection.
func (e *FaultyEndpoint) Send(ctx context.Context, to string, m Message) error {
	e.mu.Lock()
	drop := e.rng.Float64() < e.cfg.DropProb
	dup := e.rng.Float64() < e.cfg.DupProb
	reorder := e.rng.Float64() < e.cfg.ReorderProb
	var delay time.Duration
	if e.cfg.MaxDelay > 0 {
		delay = time.Duration(e.rng.Int63n(int64(e.cfg.MaxDelay)))
	}
	if !drop && reorder && e.held == nil {
		// Hold this message back; it goes out right after the next Send.
		e.held = &heldMessage{to: to, m: m}
		e.mu.Unlock()
		return nil
	}
	released := e.held
	e.held = nil
	e.mu.Unlock()

	if drop {
		// The current message is lost, but a previously held one still
		// rides out (loss must not extend the reorder window).
		if released != nil {
			return e.inner.Send(ctx, released.to, released.m)
		}
		return nil
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
	if err := e.inner.Send(ctx, to, m); err != nil {
		return err
	}
	if dup {
		if err := e.inner.Send(ctx, to, m); err != nil {
			return err
		}
	}
	if released != nil {
		return e.inner.Send(ctx, released.to, released.m)
	}
	return nil
}

// Recv implements Endpoint.
func (e *FaultyEndpoint) Recv(ctx context.Context) (Message, error) { return e.inner.Recv(ctx) }

// Close implements Endpoint, flushing a held reordered message so it is
// delayed, not silently lost.
func (e *FaultyEndpoint) Close() error {
	e.mu.Lock()
	released := e.held
	e.held = nil
	e.mu.Unlock()
	if released != nil {
		_ = e.inner.Send(context.Background(), released.to, released.m)
	}
	return e.inner.Close()
}
