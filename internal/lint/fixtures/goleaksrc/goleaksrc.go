// Package goleaksrc holds deliberate goroutine/timer-hygiene violations
// and the joined shapes the goleak analyzer approves. The package path is
// explicitly in the analyzer's scope list; the edgelint driver skips
// everything under internal/lint/fixtures.
package goleaksrc

import (
	"sync"
	"time"
)

// Pool mimics the parallel engine's worker pool: a quit channel closed by
// Close is the join signal, and a done channel acknowledges exit.
type Pool struct {
	quit chan struct{}
	done chan struct{}
}

// Start launches the worker; the quit-channel receive inside worker is the
// reachable join (close(p.quit) in Close is the package-wide evidence).
func (p *Pool) Start() {
	go p.worker()
}

func (p *Pool) worker() {
	<-p.quit
	p.done <- struct{}{}
}

// StartNested proves join evidence is found through a same-package callee
// one level below the goroutine body.
func (p *Pool) StartNested() {
	go p.runLoop()
}

func (p *Pool) runLoop() {
	p.waitQuit()
}

func (p *Pool) waitQuit() {
	<-p.quit
}

// Close triggers the join and waits for the acknowledgement.
func (p *Pool) Close() {
	close(p.quit)
	<-p.done
}

// BadFireAndForget launches a goroutine nothing can observe or stop.
func BadFireAndForget(work func()) {
	go func() { // want `goroutine has no reachable join`
		for {
			work()
		}
	}()
}

// BadDynamic spawns through a function value, so no body can be checked.
func BadDynamic(fn func()) {
	go fn() // want `goroutine body cannot be resolved statically`
}

// GoodWaitGroup joins through Done with a package-visible Wait.
func GoodWaitGroup(n int, work func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// GoodTicker stops its ticker on every exit path.
func GoodTicker(interval time.Duration, quit chan struct{}, tick func()) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			tick()
		case <-quit:
			return
		}
	}
}

// BadTicker captures a ticker no code ever stops.
func BadTicker(interval time.Duration) *time.Ticker {
	tk := time.NewTicker(interval) // want `has no Stop path`
	return tk
}

// BadDiscardedTicker drops the handle outright, so it can never stop.
func BadDiscardedTicker(interval time.Duration) {
	time.NewTicker(interval) // want `result is discarded`
}

// GoodAfterFunc discards the one-shot timer: it completes itself, so a
// discarded AfterFunc is exempt.
func GoodAfterFunc(d time.Duration, f func()) {
	time.AfterFunc(d, f)
}

// BadAfterFunc captures the timer but never arms a Stop path.
func BadAfterFunc(d time.Duration, f func()) *time.Timer {
	tm := time.AfterFunc(d, f) // want `has no Stop path`
	return tm
}
