package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"edgecache/internal/chaos"
	"edgecache/internal/model"
)

// Config configures a Supervisor run.
type Config struct {
	// Spec is the cluster description (validated by NewSupervisor).
	Spec model.ClusterSpec
	// Instances holds one built instance per spec cell, in cell order;
	// instance i's SBS count must match cell i's.
	Instances []*model.Instance
	// Command is the agent launch prefix; the agent flags ("-role", ...)
	// are appended. Typically the supervisor's own binary — one executable
	// is both supervisor and supervisee.
	Command []string
	// Env entries are appended to the inherited environment of every agent.
	Env []string
	// RunDir is the run's working directory: the cluster spec plus one
	// subdirectory per cell holding the instance file, checkpoint store,
	// result file and per-process stderr logs.
	RunDir string
	// Proc is the process-fault plan, validated against Spec.
	Proc chaos.ProcSchedule
	// OnEvent, when non-nil, observes supervision events. It is called
	// from the supervisor's event loop; keep it fast.
	OnEvent func(Event)
	// Log, when non-nil, receives the supervisor's human-readable log.
	Log io.Writer
}

// EventKind enumerates supervision events.
type EventKind int

// Supervision events.
const (
	// EventSpawned: a process (re)started; Generation counts incarnations
	// from 0.
	EventSpawned EventKind = iota + 1
	// EventListening: the process reported its bound address.
	EventListening
	// EventExited: a process died unexpectedly (crash, kill, non-zero
	// exit); the restart/escalation decision follows.
	EventExited
	// EventHeartbeatMiss: the liveness deadline expired; the supervisor is
	// about to SIGKILL the process and treat it as crashed.
	EventHeartbeatMiss
	// EventRestartScheduled: a restart was granted from the budget and
	// will fire after the backoff delay.
	EventRestartScheduled
	// EventEscalated: the restart budget is exhausted. An SBS is left
	// permanently down (the BS's quarantine absorbs it); a BS escalation
	// is followed by EventCellFailed.
	EventEscalated
	// EventProcFault: a scheduled process fault fired.
	EventProcFault
	// EventCellDone: the cell's BS finished cleanly and its result was
	// collected.
	EventCellDone
	// EventCellFailed: the cell is abandoned (BS budget exhausted, or an
	// unreadable result); its processes are torn down.
	EventCellFailed
)

// Event is one supervision observation.
type Event struct {
	Kind EventKind
	// Cell is the cell name; Proc the process name within it ("bs",
	// "sbs-3"), empty for cell-level events.
	Cell, Proc string
	// Generation is the process incarnation (0 = first launch).
	Generation int
	// Sweep is the cell's protocol time when the event happened (-1
	// before the first observed sweep).
	Sweep int
	// Fault is set for EventProcFault.
	Fault chaos.ProcEvent
	// Err carries the exit or escalation error, when there is one.
	Err error
}

// CellResult is one cell's outcome.
type CellResult struct {
	Name string
	// Completed reports a collected BS result; Failure names the reason
	// when the cell was abandoned instead.
	Completed bool
	Failure   string
	// Result is the BS agent's result.json (nil for failed cells).
	Result *AgentResult
	// BSRestarts and SBSRestarts count consumed restarts.
	BSRestarts  int
	SBSRestarts int
	// Escalated lists processes left permanently down.
	Escalated []string
}

// FiredProc records one fired process fault and the cell sweep that
// triggered it.
type FiredProc struct {
	Event   chaos.ProcEvent
	AtSweep int
}

// Result aggregates a supervised run.
type Result struct {
	Cells []CellResult
	// Fired lists the process faults that triggered; Unfired the scheduled
	// ones whose sweep was never reached.
	Fired   []FiredProc
	Unfired []chaos.ProcEvent
}

// procState is a process's supervision state.
type procState int

const (
	procIdle    procState = iota // never spawned
	procBackoff                  // spawn scheduled (initial delay or restart backoff)
	procRunning
	procDone // exited cleanly after DONE
	procDead // torn down or escalated
)

// proc is the supervisor's record of one supervised process. All fields
// are owned by the event loop; goroutines communicate via supEvent only.
type proc struct {
	cell  *cellState
	role  Role
	index int    // SBS index; -1 for the BS
	name  string // endpoint name, log file stem

	// addr is pinned at the first ADDR report; restarts re-bind it so the
	// peers' address books stay valid across incarnations.
	addr string
	// gen counts incarnations (-1 before the first spawn); restarts counts
	// consumed budget. spawnDelay is the chaos launch attribute.
	gen        int
	restarts   int
	spawnDelay time.Duration

	state      procState
	expectExit bool // exit is part of a teardown, not a failure
	doneSeen   bool

	cmd   *exec.Cmd
	stdin io.WriteCloser

	// Liveness bookkeeping. hbEpoch counts timer arms for this proc; a miss
	// event armed at an older epoch is stale (a heartbeat was processed
	// after it fired) and is discarded. hbSuspect implements two-strike
	// detection: the first valid miss only re-arms the timer, so a
	// supervisor that was itself starved of CPU for a deadline (many
	// race-instrumented processes on a loaded box) gets a grace window to
	// drain the queued heartbeats before declaring a healthy process dead.
	hbTimer   *time.Timer
	hbEpoch   int
	hbSuspect bool
}

func (p *proc) kill() {
	if p.cmd != nil && p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
}

func (p *proc) signal(sig syscall.Signal) {
	if p.cmd != nil && p.cmd.Process != nil {
		p.cmd.Process.Signal(sig)
	}
}

func (p *proc) stopHB() {
	if p.hbTimer != nil {
		p.hbTimer.Stop()
		p.hbTimer = nil
	}
}

// cellState is the supervisor's record of one cell.
type cellState struct {
	index int
	spec  model.ClusterCell
	dir   string

	bs      *proc
	sbss    []*proc
	members []*proc // bs followed by the sbss

	// initialPeered flips once the initial peer lists went out (all
	// members without a spawn delay have reported); later reports are
	// handled incrementally.
	initialPeered bool
	// sweep is the cell's protocol time as reported by its BS (-1 before
	// the first report); pending holds the unfired protocol-time faults,
	// sorted by trigger sweep.
	sweep   int
	pending []chaos.ProcEvent

	complete, failed bool
	failure          string
	result           *AgentResult
	escalated        []string
}

// evKind tags internal event-loop messages.
type evKind int

const (
	evAddr evKind = iota + 1
	evHB
	evDone
	evExit
	evHBMiss
	evRespawn
	evCont
)

// supEvent is one event-loop message. gen guards against stale timers and
// readers outliving the incarnation they were armed for; epoch (miss
// events only) guards against misses overtaken by a processed heartbeat.
type supEvent struct {
	kind         evKind
	p            *proc
	gen          int
	epoch        int
	addr         string
	sweep, phase int
	err          error
}

// Supervisor launches and supervises a cluster of agent processes. One
// goroutine (Run's event loop) owns all state; per-process reader and
// waiter goroutines, heartbeat deadlines, backoff timers and SIGCONT
// schedules all funnel through the events channel.
type Supervisor struct {
	cfg    Config
	events chan supEvent
	stopc  chan struct{}

	cells     []*cellState
	fired     []FiredProc
	remaining int // cells neither complete nor failed
	live      int // processes with an outstanding Wait
}

// NewSupervisor validates the configuration and lays out the supervision
// state (no processes are started until Run).
func NewSupervisor(cfg Config) (*Supervisor, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Command) == 0 || cfg.Command[0] == "" {
		return nil, errors.New("cluster: Config.Command must name the agent binary")
	}
	if cfg.RunDir == "" {
		return nil, errors.New("cluster: Config.RunDir is required")
	}
	if len(cfg.Instances) != len(cfg.Spec.Cells) {
		return nil, fmt.Errorf("cluster: %d instances for %d cells", len(cfg.Instances), len(cfg.Spec.Cells))
	}
	for i, c := range cfg.Spec.Cells {
		inst := cfg.Instances[i]
		if inst == nil {
			return nil, fmt.Errorf("cluster: cell %q has no instance", c.Name)
		}
		if err := inst.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: cell %q: %w", c.Name, err)
		}
		if inst.N != c.SBSs {
			return nil, fmt.Errorf("cluster: cell %q instance has %d SBSs, spec says %d", c.Name, inst.N, c.SBSs)
		}
	}
	if err := cfg.Proc.Validate(func(name string) int {
		i := cfg.Spec.Cell(name)
		if i < 0 {
			return -1
		}
		return cfg.Spec.Cells[i].SBSs
	}); err != nil {
		return nil, err
	}

	s := &Supervisor{cfg: cfg, events: make(chan supEvent, 1024), stopc: make(chan struct{})}
	for i, cs := range cfg.Spec.Cells {
		cell := &cellState{index: i, spec: cs, dir: filepath.Join(cfg.RunDir, cs.Name), sweep: -1}
		cell.bs = &proc{cell: cell, role: RoleBS, index: -1, name: bsName, gen: -1}
		cell.members = append(cell.members, cell.bs)
		for j := 0; j < cs.SBSs; j++ {
			sp := &proc{cell: cell, role: RoleSBS, index: j, name: sbsEndpointName(j), gen: -1}
			cell.sbss = append(cell.sbss, sp)
			cell.members = append(cell.members, sp)
		}
		s.cells = append(s.cells, cell)
	}
	s.remaining = len(s.cells)
	for _, fe := range cfg.Proc.Events {
		cell := s.cells[cfg.Spec.Cell(fe.Cell)]
		if fe.Op == chaos.ProcSpawnDelay {
			target := cell.bs
			if fe.SBS >= 0 {
				target = cell.sbss[fe.SBS]
			}
			target.spawnDelay = fe.Delay
		} else {
			cell.pending = append(cell.pending, fe)
		}
	}
	for _, c := range s.cells {
		pending := c.pending
		sort.SliceStable(pending, func(a, b int) bool { return pending[a].Sweep < pending[b].Sweep })
	}
	return s, nil
}

// post delivers an event to the loop unless the supervisor already shut
// down (so late timers never leak a blocked goroutine).
func (s *Supervisor) post(ev supEvent) {
	select {
	case s.events <- ev:
	case <-s.stopc:
	}
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "sup: "+format+"\n", args...)
	}
}

func (s *Supervisor) event(ev Event) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
}

// Run lays out the run directory, launches every cell and supervises until
// all cells completed or failed (or ctx is cancelled, which abandons the
// incomplete cells). The Result is returned even alongside an error; the
// error summarizes failed cells.
func (s *Supervisor) Run(ctx context.Context) (*Result, error) {
	if err := s.layout(); err != nil {
		return nil, err
	}
	defer close(s.stopc)
	for _, c := range s.cells {
		for _, p := range c.members {
			if p.spawnDelay > 0 {
				p.state = procBackoff
				pp := p
				s.logf("%s/%s: spawn delayed by %v", c.spec.Name, p.name, p.spawnDelay)
				time.AfterFunc(p.spawnDelay, func() { s.post(supEvent{kind: evRespawn, p: pp}) })
			} else {
				s.spawn(p)
			}
		}
	}
	var ctxErr error
	for s.remaining > 0 {
		select {
		case ev := <-s.events:
			s.handle(ev)
		case <-ctx.Done():
			ctxErr = ctx.Err()
			for _, c := range s.cells {
				if !c.complete && !c.failed {
					s.failCell(c, "supervisor cancelled: "+ctxErr.Error())
				}
			}
		}
	}
	s.drain()
	res := s.result()
	if ctxErr != nil {
		return res, ctxErr
	}
	var failed []string
	for _, c := range s.cells {
		if c.failed {
			failed = append(failed, c.spec.Name+": "+c.failure)
		}
	}
	if len(failed) > 0 {
		return res, fmt.Errorf("cluster: %d of %d cells failed: %s", len(failed), len(s.cells), strings.Join(failed, "; "))
	}
	return res, nil
}

// layout materializes the run directory: the cluster spec itself plus, per
// cell, the instance file and an empty checkpoint directory.
func (s *Supervisor) layout() error {
	if err := os.MkdirAll(s.cfg.RunDir, 0o755); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	f, err := os.Create(filepath.Join(s.cfg.RunDir, "cluster.json"))
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if err := s.cfg.Spec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	for i, c := range s.cells {
		if err := os.MkdirAll(filepath.Join(c.dir, "ckpt"), 0o755); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		f, err := os.Create(filepath.Join(c.dir, "instance.json"))
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		if err := s.cfg.Instances[i].WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	return nil
}

// agentArgs renders the command line for p's next incarnation.
func (s *Supervisor) agentArgs(p *proc) []string {
	spec := s.cfg.Spec
	cell := p.cell
	listen := p.addr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	seed := cell.spec.Seed
	if seed == 0 {
		seed = 1
	}
	args := []string{
		"-role", p.role.String(),
		"-cell", cell.spec.Name,
		"-instance", filepath.Join(cell.dir, "instance.json"),
		"-listen", listen,
		"-generation", strconv.Itoa(p.gen),
		"-hb-interval", formatDuration(spec.HeartbeatInterval()),
		"-seed", strconv.FormatInt(seed, 10),
	}
	if p.role == RoleBS {
		args = append(args,
			"-result", filepath.Join(cell.dir, "result.json"),
			"-ckpt-dir", filepath.Join(cell.dir, "ckpt"),
			"-phase-timeout", formatDuration(spec.PhaseTimeout()),
		)
		if spec.Gamma > 0 {
			args = append(args, "-gamma", formatFloat(spec.Gamma))
		}
		if spec.MaxSweeps > 0 {
			args = append(args, "-max-sweeps", strconv.Itoa(spec.MaxSweeps))
		}
		if spec.CheckpointRetain > 0 {
			args = append(args, "-ckpt-retain", strconv.Itoa(spec.CheckpointRetain))
		}
		if p.gen > 0 {
			args = append(args, "-resume")
		}
	} else {
		args = append(args, "-index", strconv.Itoa(p.index))
		if cell.spec.Epsilon > 0 {
			args = append(args, "-epsilon", formatFloat(cell.spec.Epsilon), "-delta", formatFloat(cell.spec.Delta))
		}
	}
	return args
}

// spawn launches p's next incarnation: stderr goes to the per-process log
// file, stdout is read by a line-protocol goroutine, a waiter goroutine
// reports the exit, and the heartbeat deadline is armed.
func (s *Supervisor) spawn(p *proc) {
	p.gen++
	p.state = procRunning
	p.doneSeen = false
	p.expectExit = false

	argv := append(append([]string(nil), s.cfg.Command[1:]...), s.agentArgs(p)...)
	cmd := exec.Command(s.cfg.Command[0], argv...)
	cmd.Env = append(os.Environ(), s.cfg.Env...)
	logf, err := os.OpenFile(filepath.Join(p.cell.dir, p.name+".log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.handleFailure(p, err)
		return
	}
	cmd.Stderr = logf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		logf.Close()
		s.handleFailure(p, err)
		return
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		logf.Close()
		s.handleFailure(p, err)
		return
	}
	if err := cmd.Start(); err != nil {
		logf.Close()
		s.handleFailure(p, err)
		return
	}
	p.cmd, p.stdin = cmd, stdin
	s.live++
	s.logf("%s/%s: spawned gen %d (pid %d)", p.cell.spec.Name, p.name, p.gen, cmd.Process.Pid)
	s.event(Event{Kind: EventSpawned, Cell: p.cell.spec.Name, Proc: p.name, Generation: p.gen, Sweep: p.cell.sweep})

	gen := p.gen
	p.hbSuspect = false
	s.armHB(p)
	// One goroutine reads stdout to EOF and only then calls Wait: calling
	// Wait concurrently with pipe reads is incorrect (Wait closes the pipe
	// on process exit, which can drop a final DONE line), and sequencing
	// also guarantees evDone is enqueued before evExit.
	go func() {
		s.readLines(stdout, p, gen)
		werr := cmd.Wait()
		logf.Close()
		s.post(supEvent{kind: evExit, p: p, gen: gen, err: werr})
	}()
}

// armHB (re)arms p's liveness timer at a fresh epoch. A fresh timer is
// created rather than Reset so the fired closure carries the epoch it was
// armed at: a miss event sitting in the queue behind newer heartbeats is
// recognized as stale and discarded when handled.
func (s *Supervisor) armHB(p *proc) {
	p.stopHB()
	p.hbEpoch++
	gen, epoch := p.gen, p.hbEpoch
	p.hbTimer = time.AfterFunc(s.cfg.Spec.HeartbeatDeadline(), func() {
		s.post(supEvent{kind: evHBMiss, p: p, gen: gen, epoch: epoch})
	})
}

// beatHB records a liveness proof: the suspect flag clears and the timer
// re-arms at a new epoch, invalidating any in-flight miss event.
func (s *Supervisor) beatHB(p *proc) {
	p.hbSuspect = false
	s.armHB(p)
}

// readLines forwards p's stdout line protocol into the event loop.
func (s *Supervisor) readLines(r io.Reader, p *proc, gen int) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		kind, sweep, phase, addr, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		switch kind {
		case lineAddr:
			s.post(supEvent{kind: evAddr, p: p, gen: gen, addr: addr})
		case lineHB:
			s.post(supEvent{kind: evHB, p: p, gen: gen, sweep: sweep, phase: phase})
		case lineDone:
			s.post(supEvent{kind: evDone, p: p, gen: gen})
		}
	}
}

// handle dispatches one event-loop message.
func (s *Supervisor) handle(ev supEvent) {
	p := ev.p
	switch ev.kind {
	case evAddr:
		if ev.gen != p.gen || p.state != procRunning {
			return
		}
		s.beatHB(p)
		if p.addr == "" {
			p.addr = ev.addr
		}
		s.logf("%s/%s: listening on %s (gen %d)", p.cell.spec.Name, p.name, p.addr, p.gen)
		s.event(Event{Kind: EventListening, Cell: p.cell.spec.Name, Proc: p.name, Generation: p.gen, Sweep: p.cell.sweep})
		s.distributePeers(p)

	case evHB:
		if ev.gen != p.gen || p.state != procRunning {
			return
		}
		s.beatHB(p)
		if p.role == RoleBS && ev.sweep > p.cell.sweep {
			p.cell.sweep = ev.sweep
			s.fireCellFaults(p.cell)
		}

	case evDone:
		if ev.gen != p.gen {
			return
		}
		p.doneSeen = true

	case evHBMiss:
		if ev.gen != p.gen || ev.epoch != p.hbEpoch || p.state != procRunning {
			return
		}
		if !p.hbSuspect {
			// First strike: grant one more deadline before declaring death,
			// so a scheduling hiccup on the supervisor's side cannot kill a
			// healthy agent. A truly dead process stays silent and is killed
			// on the second strike.
			p.hbSuspect = true
			s.armHB(p)
			return
		}
		s.logf("%s/%s: no heartbeat for 2x deadline (%v) at gen %d; killing",
			p.cell.spec.Name, p.name, s.cfg.Spec.HeartbeatDeadline(), p.gen)
		s.event(Event{Kind: EventHeartbeatMiss, Cell: p.cell.spec.Name, Proc: p.name, Generation: p.gen, Sweep: p.cell.sweep})
		p.kill() // the exit event drives the restart decision

	case evRespawn:
		if p.state != procBackoff || p.cell.complete || p.cell.failed {
			return
		}
		s.spawn(p)

	case evCont:
		if ev.gen == p.gen && p.state == procRunning {
			p.signal(syscall.SIGCONT)
		}

	case evExit:
		s.live--
		p.stopHB()
		if p.stdin != nil {
			p.stdin.Close()
			p.stdin = nil
		}
		cell := p.cell
		if cell.complete || cell.failed {
			p.state = procDead
			return
		}
		if ev.err == nil && p.doneSeen {
			if p.role == RoleBS {
				s.completeCell(cell)
			} else {
				p.state = procDone
			}
			return
		}
		if p.expectExit {
			p.state = procDead
			return
		}
		s.logf("%s/%s: gen %d exited unexpectedly: %v", cell.spec.Name, p.name, p.gen, ev.err)
		s.event(Event{Kind: EventExited, Cell: cell.spec.Name, Proc: p.name, Generation: p.gen, Sweep: cell.sweep, Err: ev.err})
		s.handleFailure(p, ev.err)
	}
}

// distributePeers reacts to an address report. Until every member without
// a spawn delay has reported, nothing is sent (agents block on their first
// peer list, so the whole cell starts together — the fault-free path sees
// no spurious misses). Afterwards, reports are incremental: the newcomer
// gets its current list and, for an SBS, the BS gets a refresh carrying
// the newcomer's address.
func (s *Supervisor) distributePeers(p *proc) {
	cell := p.cell
	if !cell.initialPeered {
		for _, m := range cell.members {
			if m.spawnDelay == 0 && m.addr == "" {
				return
			}
		}
		cell.initialPeered = true
		for _, m := range cell.members {
			if m.addr != "" && m.state == procRunning {
				s.sendPeers(m)
			}
		}
		return
	}
	s.sendPeers(p)
	if p.role == RoleSBS && cell.bs.state == procRunning {
		s.sendPeers(cell.bs)
	}
}

// sendPeers writes m's current peer list to its stdin. Write failures are
// logged, not handled — a dying process is the exit event's business.
func (s *Supervisor) sendPeers(m *proc) {
	if m.stdin == nil {
		return
	}
	pl := &PeerList{}
	if m.role == RoleBS {
		for _, sp := range m.cell.sbss {
			if sp.addr != "" {
				pl.Peers = append(pl.Peers, PeerAddr{Name: sp.name, Addr: sp.addr})
			}
		}
	} else if bs := m.cell.bs; bs.addr != "" {
		pl.Peers = append(pl.Peers, PeerAddr{Name: bsName, Addr: bs.addr})
	}
	data, err := encodePeerList(pl)
	if err != nil {
		s.logf("%s/%s: %v", m.cell.spec.Name, m.name, err)
		return
	}
	if _, err := m.stdin.Write(data); err != nil {
		s.logf("%s/%s: peer list write: %v", m.cell.spec.Name, m.name, err)
	}
}

// fireCellFaults fires every pending fault whose trigger sweep the cell
// has reached.
func (s *Supervisor) fireCellFaults(cell *cellState) {
	for len(cell.pending) > 0 && cell.pending[0].Sweep <= cell.sweep {
		fe := cell.pending[0]
		cell.pending = cell.pending[1:]
		s.fired = append(s.fired, FiredProc{Event: fe, AtSweep: cell.sweep})
		target := cell.bs
		if fe.SBS >= 0 {
			target = cell.sbss[fe.SBS]
		}
		s.logf("%s: firing %v (cell at sweep %d)", cell.spec.Name, fe, cell.sweep)
		s.event(Event{Kind: EventProcFault, Cell: cell.spec.Name, Proc: target.name, Generation: target.gen, Sweep: cell.sweep, Fault: fe})
		if target.state != procRunning {
			continue // nothing to fault; still recorded as fired
		}
		switch fe.Op {
		case chaos.ProcKill:
			target.kill()
		case chaos.ProcStop:
			target.signal(syscall.SIGSTOP)
			tp, gen := target, target.gen
			time.AfterFunc(fe.Delay, func() {
				s.post(supEvent{kind: evCont, p: tp, gen: gen})
			})
		}
	}
}

// handleFailure decides restart vs escalation after an unexpected death
// (or a failed spawn attempt).
func (s *Supervisor) handleFailure(p *proc, cause error) {
	budget := s.cfg.Spec.Restarts()
	if p.restarts >= budget {
		s.escalate(p, cause)
		return
	}
	p.restarts++
	delay := s.cfg.Spec.Backoff(p.restarts) + p.spawnDelay
	p.state = procBackoff
	s.logf("%s/%s: restart %d/%d in %v", p.cell.spec.Name, p.name, p.restarts, budget, delay)
	s.event(Event{Kind: EventRestartScheduled, Cell: p.cell.spec.Name, Proc: p.name, Generation: p.gen, Sweep: p.cell.sweep, Err: cause})
	time.AfterFunc(delay, func() { s.post(supEvent{kind: evRespawn, p: p}) })
}

// escalate handles an exhausted restart budget: an SBS is left permanently
// down (the BS's quarantine machinery absorbs the loss and the cell
// degrades gracefully); a dead BS means the cell cannot make progress, so
// the cell is failed and torn down while the other cells continue.
func (s *Supervisor) escalate(p *proc, cause error) {
	p.state = procDead
	cell := p.cell
	s.event(Event{Kind: EventEscalated, Cell: cell.spec.Name, Proc: p.name, Generation: p.gen, Sweep: cell.sweep, Err: cause})
	if p.role == RoleSBS {
		cell.escalated = append(cell.escalated, p.name)
		s.logf("%s/%s: restart budget exhausted; leaving it down (BS quarantine degrades the cell)",
			cell.spec.Name, p.name)
		return
	}
	s.failCell(cell, fmt.Sprintf("BS restart budget exhausted: %v", cause))
}

// completeCell collects a cleanly finished cell.
func (s *Supervisor) completeCell(cell *cellState) {
	res, err := ReadResultFile(filepath.Join(cell.dir, "result.json"))
	if err != nil {
		cell.bs.state = procDead
		s.failCell(cell, fmt.Sprintf("BS finished but its result is unreadable: %v", err))
		return
	}
	cell.bs.state = procDone
	cell.complete = true
	cell.result = res
	s.remaining--
	s.logf("%s: complete (converged=%v sweeps=%d cost=%v)", cell.spec.Name, res.Converged, res.Sweeps, res.CostTotal)
	s.event(Event{Kind: EventCellDone, Cell: cell.spec.Name, Sweep: cell.sweep})
	s.teardownCell(cell)
}

// failCell abandons a cell and tears its processes down.
func (s *Supervisor) failCell(cell *cellState, reason string) {
	cell.failed = true
	cell.failure = reason
	s.remaining--
	s.logf("%s: FAILED: %s", cell.spec.Name, reason)
	s.event(Event{Kind: EventCellFailed, Cell: cell.spec.Name, Sweep: cell.sweep, Err: errors.New(reason)})
	s.teardownCell(cell)
}

// teardownCell kills the cell's remaining processes (their exits are
// expected) and cancels pending backoff spawns.
func (s *Supervisor) teardownCell(cell *cellState) {
	for _, p := range cell.members {
		switch p.state {
		case procRunning:
			p.expectExit = true
			p.stopHB()
			// A SIGSTOPped process must be killable too; SIGKILL works on
			// stopped processes, so no SIGCONT is needed first.
			p.kill()
		case procBackoff, procIdle:
			p.state = procDead
		}
	}
}

// drain waits (bounded) for the outstanding process exits after the last
// cell resolved, so no waiter goroutine outlives Run.
func (s *Supervisor) drain() {
	if s.live == 0 {
		return
	}
	deadline := time.NewTimer(10 * time.Second)
	defer deadline.Stop()
	for s.live > 0 {
		select {
		case ev := <-s.events:
			if ev.kind == evExit {
				s.live--
				ev.p.stopHB()
				if ev.p.stdin != nil {
					ev.p.stdin.Close()
					ev.p.stdin = nil
				}
			}
		case <-deadline.C:
			s.logf("drain: %d processes still outstanding after 10s", s.live)
			return
		}
	}
}

// result assembles the run summary.
func (s *Supervisor) result() *Result {
	out := &Result{Cells: make([]CellResult, len(s.cells)), Fired: s.fired}
	for i, c := range s.cells {
		cr := CellResult{
			Name:       c.spec.Name,
			Completed:  c.complete,
			Failure:    c.failure,
			Result:     c.result,
			BSRestarts: c.bs.restarts,
			Escalated:  append([]string(nil), c.escalated...),
		}
		for _, sp := range c.sbss {
			cr.SBSRestarts += sp.restarts
		}
		out.Cells[i] = cr
		out.Unfired = append(out.Unfired, c.pending...)
	}
	return out
}
