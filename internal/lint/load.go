package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// The loader type-checks the module's packages without any dependency
// beyond the standard library and the go tool itself: `go list -export
// -deps -json` names every package in dependency order and produces gc
// export data for each (the go tool compiles offline from the build
// cache), module packages are parsed and type-checked from source so the
// analyzers see full syntax, and imports resolve through the freshly
// type-checked module packages first, falling back to the export data for
// the standard library. This is the stdlib stand-in for
// golang.org/x/tools/go/packages, which the build environment cannot
// fetch.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
}

// Package is one type-checked module package.
type Package struct {
	// Path is the import path, Dir the package directory.
	Path string
	Dir  string
	// Files holds the parsed non-test sources (comments included);
	// Filenames and Sources align with it (absolute paths, raw bytes).
	Files     []*ast.File
	Filenames []string
	Sources   [][]byte
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Program is a load of the module: every requested package plus every
// module dependency, type-checked, in dependency order.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	ByPath   map[string]*Package

	// The whole-program analyses (noalloc, privflow, atomicmix) and the
	// shared function index compute once on demand; sync.Once makes the
	// memoization safe under the parallel per-package driver.
	noallocOnce  sync.Once
	noallocDiag  map[string][]Diagnostic
	privflowOnce sync.Once
	privflowDiag map[string][]Diagnostic
	atomicOnce   sync.Once
	atomicDiag   map[string][]Diagnostic
	funcsOnce    sync.Once
	funcs        map[*types.Func]modFunc
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Load lists patterns in the module rooted at (or containing) dir and
// type-checks every non-standard-library package, dependencies first.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Standard,Export,GoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var modPkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			modPkgs = append(modPkgs, p)
		}
	}

	prog := &Program{Fset: token.NewFileSet(), ByPath: map[string]*Package{}}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	gc := importer.ForCompiler(prog.Fset, "gc", lookup)
	var imp importerFunc = func(path string) (*types.Package, error) {
		if p, ok := prog.ByPath[path]; ok {
			return p.Types, nil
		}
		return gc.Import(path)
	}

	for _, lp := range modPkgs {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir}
		for _, name := range lp.GoFiles {
			filename := filepath.Join(lp.Dir, name)
			src, err := os.ReadFile(filename)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			file, err := parser.ParseFile(prog.Fset, filename, src, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			pkg.Files = append(pkg.Files, file)
			pkg.Filenames = append(pkg.Filenames, filename)
			pkg.Sources = append(pkg.Sources, src)
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, prog.Fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
		}
		pkg.Types = tpkg
		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[lp.ImportPath] = pkg
	}
	return prog, nil
}

// sourceAt returns the raw source bytes of [pos, end) or "" when the range
// does not fall inside one of the package's files.
func (p *Package) sourceAt(fset *token.FileSet, pos, end token.Pos) string {
	position := fset.Position(pos)
	for i, name := range p.Filenames {
		if name == position.Filename {
			lo := fset.Position(pos).Offset
			hi := fset.Position(end).Offset
			if lo < 0 || hi > len(p.Sources[i]) || lo > hi {
				return ""
			}
			return string(p.Sources[i][lo:hi])
		}
	}
	return ""
}
