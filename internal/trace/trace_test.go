package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTrendingVideosShape(t *testing.T) {
	cfg := DefaultTrendingConfig()
	views, err := TrendingVideos(cfg)
	if err != nil {
		t.Fatalf("TrendingVideos: %v", err)
	}
	if len(views) != 50 {
		t.Fatalf("len(views) = %d, want 50", len(views))
	}
	// The paper's Fig. 2: head above 140k views, tail a few thousand.
	if views[0] < 100000 || views[0] > 300000 {
		t.Errorf("head views = %v, want roughly 150k", views[0])
	}
	if views[49] > 20000 || views[49] < 100 {
		t.Errorf("tail views = %v, want low thousands", views[49])
	}
	for k := 1; k < len(views); k++ {
		if views[k] > views[k-1] {
			t.Fatalf("views not sorted by rank: views[%d]=%v > views[%d]=%v", k, views[k], k-1, views[k-1])
		}
	}
	for k, v := range views {
		if v < 1 {
			t.Fatalf("views[%d] = %v, want ≥ 1", k, v)
		}
	}
}

func TestTrendingVideosDeterministic(t *testing.T) {
	cfg := DefaultTrendingConfig()
	a, err := TrendingVideos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrendingVideos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("trace not deterministic at rank %d: %v vs %v", k, a[k], b[k])
		}
	}
	cfg.Seed++
	c, err := TrendingVideos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered traces")
	}
}

func TestTrendingVideosNoJitterIsPowerLaw(t *testing.T) {
	views, err := TrendingVideos(TrendingConfig{Videos: 10, HeadViews: 1000, Exponent: 1, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range views {
		want := math.Round(1000 / float64(k+1))
		if v != want {
			t.Errorf("views[%d] = %v, want %v", k, v, want)
		}
	}
}

func TestTrendingVideosErrors(t *testing.T) {
	bad := []TrendingConfig{
		{Videos: 0, HeadViews: 1, Exponent: 1},
		{Videos: 5, HeadViews: 0, Exponent: 1},
		{Videos: 5, HeadViews: 1, Exponent: -1},
		{Videos: 5, HeadViews: 1, Exponent: 1, Jitter: -0.1},
	}
	for i, cfg := range bad {
		if _, err := TrendingVideos(cfg); err == nil {
			t.Errorf("case %d: TrendingVideos(%+v) = nil error, want error", i, cfg)
		}
	}
}

func TestZipf(t *testing.T) {
	w, err := Zipf(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Zipf weights sum = %v, want 1", sum)
	}
	// w_k ∝ 1/k: w[0]/w[1] = 2.
	if math.Abs(w[0]/w[1]-2) > 1e-12 {
		t.Errorf("w[0]/w[1] = %v, want 2", w[0]/w[1])
	}

	if _, err := Zipf(0, 1); err == nil {
		t.Error("Zipf(0,1) = nil error, want error")
	}
	if _, err := Zipf(3, -2); err == nil {
		t.Error("Zipf(3,-2) = nil error, want error")
	}
}

func TestZipfUniformWhenZeroExponent(t *testing.T) {
	w, err := Zipf(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("Zipf(5,0) = %v, want uniform 0.2", w)
		}
	}
}

func TestDemandMatrixConservesMass(t *testing.T) {
	views := []float64{100, 50, 10}
	demand, err := DemandMatrix(views, 7, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(demand) != 7 || len(demand[0]) != 3 {
		t.Fatalf("demand shape = %dx%d, want 7x3", len(demand), len(demand[0]))
	}
	for f, total := range views {
		var sum float64
		for u := 0; u < 7; u++ {
			if demand[u][f] < 0 {
				t.Fatalf("demand[%d][%d] negative", u, f)
			}
			sum += demand[u][f]
		}
		if math.Abs(sum-total*0.5) > 1e-9 {
			t.Errorf("content %d mass = %v, want %v", f, sum, total*0.5)
		}
	}
}

// Property: mass conservation holds for arbitrary view vectors.
func TestDemandMatrixMassProperty(t *testing.T) {
	prop := func(raw []uint16, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		views := make([]float64, len(raw))
		var total float64
		for i, v := range raw {
			views[i] = float64(v)
			total += float64(v)
		}
		demand, err := DemandMatrix(views, 5, 1, seed)
		if err != nil {
			return false
		}
		var sum float64
		for _, row := range demand {
			for _, v := range row {
				if v < 0 {
					return false
				}
				sum += v
			}
		}
		return math.Abs(sum-total) <= 1e-6*(1+total)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDemandMatrixErrors(t *testing.T) {
	if _, err := DemandMatrix([]float64{1}, 0, 1, 1); err == nil {
		t.Error("groups=0: want error")
	}
	if _, err := DemandMatrix([]float64{1}, 2, 0, 1); err == nil {
		t.Error("scale=0: want error")
	}
	if _, err := DemandMatrix([]float64{-1}, 2, 1, 1); err == nil {
		t.Error("negative views: want error")
	}
}

func TestStream(t *testing.T) {
	demand := [][]float64{{30, 0}, {0, 20}}
	reqs, err := Stream(demand, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Expected 50 requests; Poisson noise makes this stochastic, so accept
	// a wide band that would only fail on a broken generator.
	if len(reqs) < 20 || len(reqs) > 100 {
		t.Fatalf("stream length = %d, want ≈50", len(reqs))
	}
	last := -1.0
	counts := map[[2]int]int{}
	for _, r := range reqs {
		if r.Time < last {
			t.Fatal("stream not sorted by time")
		}
		last = r.Time
		if r.Time < 0 || r.Time >= 10 {
			t.Fatalf("request time %v outside [0,10)", r.Time)
		}
		counts[[2]int{r.Group, r.Content}]++
	}
	if counts[[2]int{0, 1}] != 0 || counts[[2]int{1, 0}] != 0 {
		t.Fatal("stream contains requests for zero-demand cells")
	}
	if counts[[2]int{0, 0}] == 0 || counts[[2]int{1, 1}] == 0 {
		t.Fatal("stream missing requests for positive-demand cells")
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := Stream([][]float64{{1}}, 0, 1); err == nil {
		t.Error("horizon=0: want error")
	}
	if _, err := Stream([][]float64{{-1}}, 1, 1); err == nil {
		t.Error("negative demand: want error")
	}
}

func TestStreamEmptyDemand(t *testing.T) {
	reqs, err := Stream([][]float64{{0, 0}}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 0 {
		t.Fatalf("zero demand produced %d requests", len(reqs))
	}
}

func TestDiurnalProfile(t *testing.T) {
	prof, err := DiurnalProfile(24, 0.5, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 24 {
		t.Fatalf("len = %d, want 24", len(prof))
	}
	if math.Abs(prof[0]-2.0) > 1e-12 {
		t.Errorf("peak at phase 0 = %v, want 2", prof[0])
	}
	if math.Abs(prof[12]-0.5) > 1e-12 {
		t.Errorf("trough opposite phase = %v, want 0.5", prof[12])
	}
	for t2, v := range prof {
		if v < 0.5-1e-12 || v > 2.0+1e-12 {
			t.Fatalf("prof[%d] = %v outside [trough,peak]", t2, v)
		}
	}
	// Phase shift moves the peak.
	shifted, err := DiurnalProfile(24, 0.5, 2.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shifted[6]-2.0) > 1e-12 {
		t.Errorf("peak at phase 6 = %v, want 2", shifted[6])
	}
	if _, err := DiurnalProfile(0, 0.5, 2, 0); err == nil {
		t.Error("zero slots: want error")
	}
	if _, err := DiurnalProfile(10, -1, 2, 0); err == nil {
		t.Error("negative trough: want error")
	}
	if _, err := DiurnalProfile(10, 3, 2, 0); err == nil {
		t.Error("peak < trough: want error")
	}
}

func TestScaleDemand(t *testing.T) {
	d := [][]float64{{1, 2}, {3, 0}}
	got, err := ScaleDemand(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][1] != 4 || got[1][0] != 6 {
		t.Errorf("scaled = %v", got)
	}
	if d[0][1] != 2 {
		t.Error("ScaleDemand mutated its input")
	}
	if _, err := ScaleDemand(d, -1); err == nil {
		t.Error("negative factor: want error")
	}
	if _, err := ScaleDemand(d, math.Inf(1)); err == nil {
		t.Error("infinite factor: want error")
	}
}

func TestPopularityAndTopContents(t *testing.T) {
	demand := [][]float64{
		{1, 5, 2},
		{1, 5, 9},
	}
	pop := Popularity(demand)
	want := []float64{2, 10, 11}
	for f := range want {
		if pop[f] != want[f] {
			t.Errorf("Popularity[%d] = %v, want %v", f, pop[f], want[f])
		}
	}
	top := TopContents(demand, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 1 {
		t.Errorf("TopContents(2) = %v, want [2 1]", top)
	}
	if got := TopContents(demand, 10); len(got) != 3 {
		t.Errorf("TopContents(10) length = %d, want 3", len(got))
	}
	if got := TopContents(demand, -1); len(got) != 0 {
		t.Errorf("TopContents(-1) length = %d, want 0", len(got))
	}
	if got := Popularity(nil); got != nil {
		t.Errorf("Popularity(nil) = %v, want nil", got)
	}
}

func TestTopContentsTieBreak(t *testing.T) {
	demand := [][]float64{{3, 3, 3}}
	top := TopContents(demand, 3)
	if top[0] != 0 || top[1] != 1 || top[2] != 2 {
		t.Errorf("tie-break order = %v, want [0 1 2]", top)
	}
}
