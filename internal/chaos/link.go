package chaos

import (
	"context"
	"sync"

	"edgecache/internal/transport"
)

// link is a controllable network attachment: a transport endpoint whose
// fault configuration can be swapped mid-run and whose traffic can be cut
// entirely (partition). The zero fault config passes messages through
// untouched.
type link struct {
	inner transport.Endpoint

	mu     sync.Mutex
	faulty *transport.FaultyEndpoint // nil when the config is fault-free
	cut    bool
}

var _ transport.Endpoint = (*link)(nil)

// newLink wraps inner with the given baseline faults. seed derives the
// link's private randomness.
func newLink(inner transport.Endpoint, cfg transport.FaultConfig, seed int64) (*link, error) {
	l := &link{inner: inner}
	if err := l.setFaults(cfg, seed); err != nil {
		return nil, err
	}
	return l, nil
}

// setFaults replaces the link's fault configuration. A message held for
// reordering by the previous configuration is dropped — the swap is
// itself a network event.
func (l *link) setFaults(cfg transport.FaultConfig, seed int64) error {
	var faulty *transport.FaultyEndpoint
	if cfg.DropProb > 0 || cfg.DupProb > 0 || cfg.ReorderProb > 0 || cfg.MaxDelay > 0 {
		cfg.Seed = seed
		var err error
		faulty, err = transport.NewFaultyEndpoint(l.inner, cfg)
		if err != nil {
			return err
		}
	} else if err := cfg.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	l.faulty = faulty
	l.mu.Unlock()
	return nil
}

// setCut opens or closes the partition gate.
func (l *link) setCut(cut bool) {
	l.mu.Lock()
	l.cut = cut
	l.mu.Unlock()
}

// Name implements transport.Endpoint.
func (l *link) Name() string { return l.inner.Name() }

// Send implements transport.Endpoint: partitioned links discard silently,
// otherwise the current fault configuration applies.
func (l *link) Send(ctx context.Context, to string, m transport.Message) error {
	l.mu.Lock()
	cut, faulty := l.cut, l.faulty
	l.mu.Unlock()
	if cut {
		return nil
	}
	if faulty != nil {
		return faulty.Send(ctx, to, m)
	}
	return l.inner.Send(ctx, to, m)
}

// Recv implements transport.Endpoint: messages that arrive while the link
// is cut are discarded (they were in flight across the partition).
func (l *link) Recv(ctx context.Context) (transport.Message, error) {
	for {
		m, err := l.inner.Recv(ctx)
		if err != nil {
			return m, err
		}
		l.mu.Lock()
		cut := l.cut
		l.mu.Unlock()
		if !cut {
			return m, nil
		}
	}
}

// Close implements transport.Endpoint.
func (l *link) Close() error { return l.inner.Close() }
