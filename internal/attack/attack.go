// Package attack implements the honest-but-curious adversary of the
// paper's §IV threat model: an observer of the aggregate routing policies
// the BS broadcasts during Algorithm 1, attempting to recover the private
// per-SBS routing policies.
//
// The attack exploits the protocol's structure. In phase n the BS
// broadcasts B_n = Σ_{i≠n} y_i (eq. 25 with the receiving SBS's own upload
// removed). Once the sweep has converged the uploads are sweep-invariant,
// so the N broadcasts of one sweep satisfy
//
//	B_n = Y − y_n   with   Y = Σ_i y_i = Σ_n B_n / (N−1),
//
// and every individual routing policy is recovered *exactly*:
// y_n = Y − B_n. Without LPPM the broadcast channel therefore leaks each
// operator's full routing policy — which is precisely the leak the paper
// motivates LPPM with. With LPPM the aggregates are built from noised
// uploads, and the reconstruction recovers only the noised values, whose
// distance to the true policies grows as ε shrinks (experiment E15).
package attack

import (
	"fmt"

	"edgecache/internal/core"
	"edgecache/internal/model"
)

// SweepObserver records the broadcasts of Algorithm 1 sweeps, keyed by
// sweep index. Wire its Tap method into core.Config.BroadcastTap.
type SweepObserver struct {
	sweeps map[int][][][]float64 // sweep → phase-ordered broadcast copies
	n      int
}

// NewSweepObserver creates an observer expecting n SBS phases per sweep.
func NewSweepObserver(n int) *SweepObserver {
	return &SweepObserver{sweeps: make(map[int][][][]float64), n: n}
}

// Tap implements the core.Config.BroadcastTap contract: it deep-copies
// every broadcast (the attacker records the channel).
func (o *SweepObserver) Tap(sweep, phase int, yMinus [][]float64) {
	cp := make([][]float64, len(yMinus))
	for u := range yMinus {
		cp[u] = append([]float64(nil), yMinus[u]...)
	}
	for len(o.sweeps[sweep]) < phase {
		o.sweeps[sweep] = append(o.sweeps[sweep], nil) // out-of-order guard
	}
	o.sweeps[sweep] = append(o.sweeps[sweep], cp)
}

// CompleteSweeps returns the sweep indices for which all N phase
// broadcasts were captured, in increasing order.
func (o *SweepObserver) CompleteSweeps() []int {
	var out []int
	for s := 0; ; s++ {
		b, ok := o.sweeps[s]
		if !ok {
			break
		}
		if len(b) == o.n && !hasNil(b) {
			out = append(out, s)
		}
	}
	return out
}

func hasNil(b [][][]float64) bool {
	for _, m := range b {
		if m == nil {
			return true
		}
	}
	return false
}

// Reconstruct recovers the per-SBS routing uploads from the broadcasts of
// one sweep under the converged-sweep assumption: y_n = ΣB/(N−1) − B_n.
// Negative round-off is clamped at zero. It fails if the sweep was not
// fully captured or N < 2 (with one SBS its broadcast is all zeros and
// carries no information).
func (o *SweepObserver) Reconstruct(sweep int) ([][][]float64, error) {
	broadcasts, ok := o.sweeps[sweep]
	if !ok || len(broadcasts) != o.n || hasNil(broadcasts) {
		return nil, fmt.Errorf("attack: sweep %d not fully captured", sweep)
	}
	if o.n < 2 {
		return nil, fmt.Errorf("attack: reconstruction needs at least 2 SBSs, got %d", o.n)
	}
	u := len(broadcasts[0])
	if u == 0 {
		return nil, fmt.Errorf("attack: empty broadcasts")
	}
	f := len(broadcasts[0][0])

	// Y = Σ_n B_n / (N−1).
	total := make([][]float64, u)
	for i := range total {
		total[i] = make([]float64, f)
	}
	for _, b := range broadcasts {
		for i := 0; i < u; i++ {
			for j := 0; j < f; j++ {
				total[i][j] += b[i][j]
			}
		}
	}
	inv := 1 / float64(o.n-1)
	for i := 0; i < u; i++ {
		for j := 0; j < f; j++ {
			total[i][j] *= inv
		}
	}

	out := make([][][]float64, o.n)
	for n := 0; n < o.n; n++ {
		out[n] = make([][]float64, u)
		for i := 0; i < u; i++ {
			out[n][i] = make([]float64, f)
			for j := 0; j < f; j++ {
				v := total[i][j] - broadcasts[n][i][j]
				if v < 0 {
					v = 0
				}
				out[n][i][j] = v
			}
		}
	}
	return out, nil
}

// ReconstructFirstSweep recovers uploads from the very first sweep's
// broadcasts, before any convergence: at τ = 0 every not-yet-updated SBS
// still has the all-zero initial policy, so consecutive broadcasts
// telescope as B_{n+1} − B_n = y_n(0). This recovers SBSs 0..N−2 exactly
// (the last SBS's upload never appears in a sweep-0 broadcast) — the leak
// does not wait for the algorithm to converge. Clamps round-off negatives.
func (o *SweepObserver) ReconstructFirstSweep() ([][][]float64, error) {
	broadcasts, ok := o.sweeps[0]
	if !ok || len(broadcasts) != o.n || hasNil(broadcasts) {
		return nil, fmt.Errorf("attack: sweep 0 not fully captured")
	}
	if o.n < 2 {
		return nil, fmt.Errorf("attack: reconstruction needs at least 2 SBSs, got %d", o.n)
	}
	u := len(broadcasts[0])
	if u == 0 {
		return nil, fmt.Errorf("attack: empty broadcasts")
	}
	f := len(broadcasts[0][0])
	out := make([][][]float64, o.n-1)
	for n := 0; n < o.n-1; n++ {
		out[n] = make([][]float64, u)
		for i := 0; i < u; i++ {
			out[n][i] = make([]float64, f)
			for j := 0; j < f; j++ {
				v := broadcasts[n+1][i][j] - broadcasts[n][i][j]
				if v < 0 {
					v = 0
				}
				out[n][i][j] = v
			}
		}
	}
	return out, nil
}

// ReconstructionError measures the attack's success against the true
// policies: the mean per-SBS L1 distance between reconstructed and true
// routing, normalized by the true L1 mass (0 = perfect reconstruction,
// i.e. total privacy failure; larger = better protection). Only MU groups
// linked to the SBS are compared — unlinked entries are structurally zero
// on both sides.
func ReconstructionError(inst *model.Instance, truth *model.RoutingPolicy, recovered [][][]float64) (float64, error) {
	if len(recovered) != inst.N {
		return 0, fmt.Errorf("attack: recovered %d SBS policies, want %d", len(recovered), inst.N)
	}
	var dist, mass float64
	for n := 0; n < inst.N; n++ {
		for u := 0; u < inst.U; u++ {
			if !inst.Links[n][u] {
				continue
			}
			for f := 0; f < inst.F; f++ {
				v := truth.At(n, u, f)
				d := v - recovered[n][u][f]
				if d < 0 {
					d = -d
				}
				dist += d
				mass += v
			}
		}
	}
	if mass == 0 {
		if dist == 0 {
			return 0, nil
		}
		return 1, nil
	}
	return dist / mass, nil
}

// TruthRecorder captures each sweep's pre-noise uploads — the ground
// truth the attack is measured against. Wire its Tap into
// core.Config.UploadTap (experiment instrumentation only).
type TruthRecorder struct {
	n      int
	sweeps map[int][][][]float64
}

// NewTruthRecorder creates a recorder for n SBSs.
func NewTruthRecorder(n int) *TruthRecorder {
	return &TruthRecorder{n: n, sweeps: make(map[int][][][]float64)}
}

// Tap implements the core.Config.UploadTap contract.
func (r *TruthRecorder) Tap(sweep, phase int, clean, _ [][]float64) {
	if r.sweeps[sweep] == nil {
		r.sweeps[sweep] = make([][][]float64, r.n)
	}
	cp := make([][]float64, len(clean))
	for u := range clean {
		cp[u] = append([]float64(nil), clean[u]...)
	}
	r.sweeps[sweep][phase] = cp
}

// Truth returns the recorded clean uploads of one sweep as a routing
// policy, or an error if the sweep is incomplete.
func (r *TruthRecorder) Truth(sweep int) (*model.RoutingPolicy, error) {
	blocks, ok := r.sweeps[sweep]
	if !ok {
		return nil, fmt.Errorf("attack: no uploads recorded for sweep %d", sweep)
	}
	for n, b := range blocks {
		if b == nil {
			return nil, fmt.Errorf("attack: sweep %d missing SBS %d upload", sweep, n)
		}
	}
	return model.RoutingPolicyFromBlocks(blocks)
}

// RunWithObserver runs Algorithm 1 with a broadcast observer (the
// attacker's view) and a truth recorder (the evaluation's ground truth)
// attached, and returns all three. Restarts are rejected: multiple runs
// would interleave their sweeps in the observers.
func RunWithObserver(inst *model.Instance, cfg core.Config) (*core.RunResult, *SweepObserver, *TruthRecorder, error) {
	if cfg.Restarts != 0 {
		return nil, nil, nil, fmt.Errorf("attack: RunWithObserver does not support restarts")
	}
	obs := NewSweepObserver(inst.N)
	truth := NewTruthRecorder(inst.N)
	cfg.BroadcastTap = obs.Tap
	cfg.UploadTap = truth.Tap
	coord, err := core.NewCoordinator(inst, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := coord.Run()
	if err != nil {
		return nil, nil, nil, err
	}
	return res, obs, truth, nil
}
