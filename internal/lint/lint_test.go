package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgecache/internal/lint"
	"edgecache/internal/lint/linttest"
)

// TestAnalyzers runs each analyzer over its fixture package and matches
// the reported diagnostics against the fixtures' // want comments: one
// true-positive set and one annotated-clean set per analyzer.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name      string
		analyzers string
		pattern   string
	}{
		{"noalloc", "noalloc", "./fixtures/noallocsrc"},
		{"determinism", "determinism", "./fixtures/determsrc"},
		{"floateq", "floateq", "./fixtures/floateqsrc"},
		{"flataccess", "flataccess", "./fixtures/flatsrc"},
		{"lockedsend", "lockedsend", "./fixtures/locksrc"},
		{"privflow", "privflow", "./fixtures/privflowsrc"},
		{"goleak", "goleak", "./fixtures/goleaksrc"},
		{"atomicmix", "atomicmix", "./fixtures/atomicsrc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			linttest.Check(t, ".", tc.analyzers, tc.pattern)
		})
	}
}

// TestRepoIsClean is the self-check the verify.sh gate relies on: the
// full suite over the whole module (fixtures skipped, as in the driver)
// must report nothing.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is not short")
	}
	prog, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range prog.Run(lint.Analyzers(), lint.DefaultSkip) {
		t.Errorf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// TestGateCatchesInjectedViolations demonstrates the acceptance criterion
// directly: dropping an allocating append into a //edgecache:noalloc
// function and a time.Now into internal/sim must fail the gate.
func TestGateCatchesInjectedViolations(t *testing.T) {
	tmp := t.TempDir()
	writeFile(t, filepath.Join(tmp, "go.mod"), "module edgecache\n\ngo 1.22\n")
	writeFile(t, filepath.Join(tmp, "internal/sim/sim.go"), `package sim

import "time"

// Hot pretends to be a zero-alloc hot path but grows its input.
//
//edgecache:noalloc
func Hot(xs []int, x int) []int { return append(xs, x) }

// Stamp reads the wall clock inside the deterministic simulation layer.
func Stamp() int64 { return time.Now().UnixNano() }
`)
	prog, err := lint.Load(tmp, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := prog.Run(lint.Analyzers(), lint.DefaultSkip)
	assertDiag(t, diags, "noalloc", "append may allocate")
	assertDiag(t, diags, "determinism", "time.Now")
	if len(diags) != 2 {
		t.Errorf("want exactly 2 findings, got %d: %v", len(diags), diags)
	}
}

// TestDirectiveValidation covers the suppression machinery's failure
// modes: missing reason, unknown analyzer, and a stale suppression.
func TestDirectiveValidation(t *testing.T) {
	tmp := t.TempDir()
	writeFile(t, filepath.Join(tmp, "go.mod"), "module edgecache\n\ngo 1.22\n")
	writeFile(t, filepath.Join(tmp, "internal/core/x.go"), `package core

// Reasonless suppresses without saying why.
func Reasonless(a, b float64) bool {
	//edgecache:lint-ignore floateq
	return a == b
}

// Typo names an analyzer that does not exist.
func Typo(a, b float64) bool {
	return a == b //edgecache:lint-ignore floateqq looks right at a glance
}

// Stale suppresses a line with nothing to suppress.
func Stale(a, b int) bool {
	return a == b //edgecache:lint-ignore floateq ints compare exactly anyway
}

// StalePriv suppresses the dataflow analyzer where nothing flows.
func StalePriv() int {
	return 1 //edgecache:lint-ignore privflow nothing private on this line
}
`)
	prog, err := lint.Load(tmp, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := prog.Run(lint.Analyzers(), lint.DefaultSkip)
	assertDiag(t, diags, "directive", "gives no reason")
	assertDiag(t, diags, "directive", `unknown analyzer "floateqq"`)
	assertDiag(t, diags, "directive", "unused lint-ignore floateq")
	assertDiag(t, diags, "directive", "unused lint-ignore privflow")
	// The malformed directive does not suppress, so Reasonless's comparison
	// still fires; Typo's misnamed directive leaves its comparison exposed
	// too.
	floatDiags := 0
	for _, d := range diags {
		if d.Analyzer == "floateq" {
			floatDiags++
		}
	}
	if floatDiags != 2 {
		t.Errorf("want 2 surviving floateq findings, got %d: %v", floatDiags, diags)
	}
}

// TestResultCacheRoundTrip drives RunCached through its three states:
// cold (load + populate), warm (no load, all hits), and invalidated by a
// source edit (load again, new results).
func TestResultCacheRoundTrip(t *testing.T) {
	tmp := t.TempDir()
	cacheDir := filepath.Join(tmp, "cache")
	srcPath := filepath.Join(tmp, "internal/core/x.go")
	writeFile(t, filepath.Join(tmp, "go.mod"), "module edgecache\n\ngo 1.22\n")
	writeFile(t, srcPath, `package core

import (
	"math"
)

// Same reports float equality the naive way.
func Same(a, b float64) bool {
	return math.Abs(a) == b
}
`)
	suite, err := lint.ByName("floateq")
	if err != nil {
		t.Fatal(err)
	}

	d1, s1, err := lint.RunCached(tmp, suite, lint.DefaultSkip, cacheDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Loaded || s1.CacheHits != 0 || len(d1) != 1 {
		t.Fatalf("cold run: stats %+v, %d diags", s1, len(d1))
	}

	d2, s2, err := lint.RunCached(tmp, suite, lint.DefaultSkip, cacheDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Loaded || s2.CacheHits != s2.Packages || s2.Packages == 0 {
		t.Fatalf("warm run should be all hits without loading: stats %+v", s2)
	}
	if len(d2) != 1 || d2[0].Message != d1[0].Message || d2[0].Pos.Line != d1[0].Pos.Line {
		t.Fatalf("cached diags differ from live: %v vs %v", d2, d1)
	}

	// Fixing the comparison must invalidate the entry and clear the finding.
	writeFile(t, srcPath, `package core

import (
	"math"
)

// Same reports float equality with a tolerance.
func Same(a, b float64) bool {
	return math.Abs(math.Abs(a)-b) <= 1e-9
}
`)
	d3, s3, err := lint.RunCached(tmp, suite, lint.DefaultSkip, cacheDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Loaded || len(d3) != 0 {
		t.Fatalf("edited run: stats %+v, diags %v", s3, d3)
	}
}

// TestResultCacheGlobalSuiteInvalidation checks the whole-program keying:
// a suite containing privflow must reanalyze every package when ANY module
// file changes, because a new //edgecache:private tag anywhere can create
// findings everywhere.
func TestResultCacheGlobalSuiteInvalidation(t *testing.T) {
	tmp := t.TempDir()
	cacheDir := filepath.Join(tmp, "cache")
	writeFile(t, filepath.Join(tmp, "go.mod"), "module edgecache\n\ngo 1.22\n")
	writeFile(t, filepath.Join(tmp, "internal/a/a.go"), "package a\n\n// V is a value.\nvar V = 1\n")
	writeFile(t, filepath.Join(tmp, "internal/b/b.go"), "package b\n\n// W is a value.\nvar W = 2\n")
	suite, err := lint.ByName("privflow")
	if err != nil {
		t.Fatal(err)
	}
	if _, s, err := lint.RunCached(tmp, suite, lint.DefaultSkip, cacheDir, "./..."); err != nil || !s.Loaded {
		t.Fatalf("cold run: stats %+v, err %v", s, err)
	}
	if _, s, err := lint.RunCached(tmp, suite, lint.DefaultSkip, cacheDir, "./..."); err != nil || s.Loaded {
		t.Fatalf("warm run: stats %+v, err %v", s, err)
	}
	// Touching b must miss a's entry too under a global suite.
	writeFile(t, filepath.Join(tmp, "internal/b/b.go"), "package b\n\n// W is a value.\nvar W = 3\n")
	if _, s, err := lint.RunCached(tmp, suite, lint.DefaultSkip, cacheDir, "./..."); err != nil || !s.Loaded || s.CacheHits != 0 {
		t.Fatalf("post-edit run should miss everywhere: stats %+v, err %v", s, err)
	}
}

func assertDiag(t *testing.T, diags []lint.Diagnostic, analyzer, substr string) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Errorf("no %s diagnostic containing %q in %v", analyzer, substr, diags)
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
