// Package soak is the randomized chaos soak harness: K seeded episodes of
// randomly generated fault schedules (chaos.RandomSchedule) run against an
// invariant checker, with ddmin-style delta debugging shrinking the first
// failing schedule to a minimal repro file. The point is to find the
// failure sequences nobody wrote down: hand-written chaos specs only ever
// test the interleavings a human imagined.
//
// Invariants per episode:
//
//   - run-error: the chaos run itself must not error.
//   - converged: the run converges within the sweep budget (checked only
//     for self-healing schedules — every fired crash/partition followed by
//     its restart/heal; a schedule whose restart never fired legitimately
//     ends with a dead SBS).
//   - cost-tolerance: the final cost lands within Tolerance of the
//     fault-free reference (same self-healing gate).
//   - feasible: the final solution satisfies every model constraint.
//   - accounting: the BS event counter and the per-SBS fault stats agree
//     (misses, quarantine spans, retries).
//   - goroutine-leak: the goroutine count returns to its pre-episode
//     baseline (internal/leak).
//   - disk-recovery: with DiskFaults, a checkpointed run over a
//     fault-injecting filesystem stays bit-identical to the reference, and
//     Scrub+DeepLatest recover a resumable snapshot whose resumed
//     trajectory is bit-identical too.
package soak

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"edgecache/internal/chaos"
	"edgecache/internal/core"
	"edgecache/internal/experiments"
	"edgecache/internal/leak"
	"edgecache/internal/model"
	"edgecache/internal/sim"
)

// Config tunes a soak run. The zero value (plus nothing else) is a valid
// small smoke configuration.
type Config struct {
	// Episodes is the in-process episode count (default 10).
	Episodes int
	// Seed derives every episode's seed; the same (Seed, Config) replays
	// the same soak.
	Seed int64
	// Tolerance is the allowed relative cost gap vs the fault-free
	// reference (default 0.05, the chaos acceptance bound).
	Tolerance float64
	// Scenario scale (experiments.Scenario knobs). Defaults: 3 SBSs, 10
	// groups, 14 links, 16 videos, cache 4 — small enough that one
	// episode runs in well under a second fault-free.
	SBSs, Groups, LinkCount, Videos, CacheCap int
	// EventsPerEpisode is the fault budget per generated schedule
	// (default 4); Intensity scales fault probabilities (default 0.5);
	// MaxSweep bounds trigger sweeps (default 6).
	EventsPerEpisode int
	Intensity        float64
	MaxSweep         int
	// DiskFaults enables the per-episode disk fault drill (default off;
	// the edgesim -soak gate and nightly job turn it on).
	DiskFaults bool
	// ReproDir receives the minimized repro file on failure ("" writes
	// next to the working directory as soak-repro.txt).
	ReproDir string
	// ShrinkRuns bounds the ddmin re-executions (default 100).
	ShrinkRuns int
	// ClusterEpisodes appends multi-process episodes with randomized
	// process-fault schedules; requires Command (the agent binary).
	ClusterEpisodes int
	Command         []string
	// Log receives progress lines (nil discards them).
	Log io.Writer
	// CheckEpisode, when non-nil, contributes extra violations per
	// episode — the hook tests use to inject a broken invariant and
	// prove the shrink-and-repro pipeline end to end.
	CheckEpisode func(*Episode) []Violation
}

func (cfg Config) withDefaults() Config {
	if cfg.Episodes == 0 {
		cfg.Episodes = 10
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = 0.05
	}
	if cfg.SBSs == 0 {
		cfg.SBSs = 3
	}
	if cfg.Groups == 0 {
		cfg.Groups = 10
	}
	if cfg.LinkCount == 0 {
		cfg.LinkCount = 14
	}
	if cfg.Videos == 0 {
		cfg.Videos = 16
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 4
	}
	if cfg.EventsPerEpisode == 0 {
		cfg.EventsPerEpisode = 4
	}
	if cfg.Intensity == 0 {
		cfg.Intensity = 0.5
	}
	if cfg.MaxSweep == 0 {
		cfg.MaxSweep = 6
	}
	if cfg.ShrinkRuns == 0 {
		cfg.ShrinkRuns = 100
	}
	return cfg
}

// Episode is one executed soak episode, handed to CheckEpisode hooks.
type Episode struct {
	Index    int
	Seed     int64
	Inst     *model.Instance
	Schedule chaos.Schedule
	Baseline *core.RunResult
	Result   *core.RunResult
	Report   *chaos.Report
	RunErr   error
}

// Violation is one failed invariant.
type Violation struct {
	// Invariant is the stable name ("converged", "cost-tolerance", ...).
	Invariant string
	// Detail is the human-readable diagnosis.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Failure describes the first failing episode, after shrinking.
type Failure struct {
	Episode    int
	Seed       int64
	Violations []Violation
	// Schedule is the original failing schedule; Minimized the ddmin
	// result (equal when shrinking could not remove anything). For
	// cluster episodes the Proc pair is set instead.
	Schedule  chaos.Schedule
	Minimized chaos.Schedule
	Proc      chaos.ProcSchedule
	MinProc   chaos.ProcSchedule
	Cluster   bool
	// ShrinkRuns counts the ddmin re-executions spent.
	ShrinkRuns int
	// ReproPath is the written repro file.
	ReproPath string
}

// Result summarizes a soak run.
type Result struct {
	// Episodes and ClusterEpisodes count episodes that PASSED.
	Episodes        int
	ClusterEpisodes int
	// Failure is non-nil when an invariant broke (the soak stops at the
	// first failure).
	Failure *Failure
	// DiskStats accumulates the injected disk faults across episodes.
	DiskStats model.FaultFSStats
}

// episodeBSConfig is the protocol tuning every episode runs under — the
// chaos acceptance-test configuration: timeouts short enough to keep
// faulty episodes fast, retry/quarantine budgets that survive 30% loss.
func episodeBSConfig() sim.BSConfig {
	return sim.BSConfig{
		PhaseTimeout:     800 * time.Millisecond,
		ProbeTimeout:     100 * time.Millisecond,
		AnnounceRetries:  5,
		QuarantineAfter:  2,
		QuarantineSweeps: 2,
		MaxSweeps:        40,
	}
}

// Run executes the soak: Episodes in-process episodes, then
// ClusterEpisodes supervised multi-process episodes, stopping at (and
// shrinking) the first failure. The returned error covers harness
// breakage (cannot build an instance, cannot write the repro); invariant
// failures are reported through Result.Failure, not the error.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.ClusterEpisodes > 0 && len(cfg.Command) == 0 {
		return nil, fmt.Errorf("soak: ClusterEpisodes > 0 requires Command (the agent binary to supervise)")
	}
	r := &soakRun{cfg: cfg, res: &Result{}}
	for i := 0; i < cfg.Episodes; i++ {
		if err := ctx.Err(); err != nil {
			return r.res, err
		}
		ep, violations, err := r.runEpisode(ctx, i)
		if err != nil {
			return r.res, err
		}
		if len(violations) > 0 {
			r.logf("episode %d FAILED: %v (schedule %s)", i, violations, ep.Schedule.Spec())
			failure, err := r.shrink(ctx, ep, violations)
			if err != nil {
				return r.res, err
			}
			r.res.Failure = failure
			return r.res, nil
		}
		r.res.Episodes++
		r.logf("episode %d ok (seed %d, %d events, %d sweeps)", i, ep.Seed, len(ep.Schedule.Events), ep.Result.Sweeps)
	}
	if cfg.ClusterEpisodes > 0 {
		if err := r.runClusterEpisodes(ctx); err != nil {
			return r.res, err
		}
	}
	return r.res, nil
}

// soakRun carries the mutable state of one Run call.
type soakRun struct {
	cfg Config
	res *Result
}

func (r *soakRun) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		fmt.Fprintf(r.cfg.Log, "soak: "+format+"\n", args...)
	}
}

// episodeSeed derives episode i's seed from the base seed.
func (r *soakRun) episodeSeed(i int) int64 {
	return r.cfg.Seed + int64(i)*1_000_003
}

// buildInstance rebuilds episode i's instance (deterministic in the seed).
func (r *soakRun) buildInstance(seed int64) (*model.Instance, error) {
	sc := experiments.DefaultScenario()
	sc.SBSs = r.cfg.SBSs
	sc.Groups = r.cfg.Groups
	sc.LinkCount = r.cfg.LinkCount
	sc.Videos = r.cfg.Videos
	sc.CachePerSBS = r.cfg.CacheCap
	sc.Seed = seed
	return sc.Build()
}

// baseline runs the fault-free in-process reference for the instance.
func baseline(inst *model.Instance) (*core.RunResult, error) {
	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	return coord.Run()
}

// runEpisode generates, executes and checks one episode.
func (r *soakRun) runEpisode(ctx context.Context, i int) (*Episode, []Violation, error) {
	seed := r.episodeSeed(i)
	inst, err := r.buildInstance(seed)
	if err != nil {
		return nil, nil, fmt.Errorf("soak: episode %d: build instance: %w", i, err)
	}
	sched, err := chaos.RandomSchedule(chaos.RandomScheduleConfig{
		Seed:      seed,
		N:         inst.N,
		MaxSweep:  r.cfg.MaxSweep,
		Events:    r.cfg.EventsPerEpisode,
		Intensity: r.cfg.Intensity,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("soak: episode %d: %w", i, err)
	}
	base, err := baseline(inst)
	if err != nil {
		return nil, nil, fmt.Errorf("soak: episode %d: baseline: %w", i, err)
	}
	ep := &Episode{Index: i, Seed: seed, Inst: inst, Schedule: sched, Baseline: base}
	violations := r.execute(ctx, ep)
	return ep, violations, nil
}

// execute runs the episode's schedule and checks every invariant; it is
// also the re-execution ddmin drives with candidate sub-schedules.
func (r *soakRun) execute(ctx context.Context, ep *Episode) []Violation {
	before := leak.Take()
	res, report, runErr := chaos.Run(ctx, ep.Inst, chaos.Config{
		BS:       episodeBSConfig(),
		Sub:      core.DefaultSubproblemConfig(),
		Schedule: ep.Schedule,
	})
	ep.Result, ep.Report, ep.RunErr = res, report, runErr

	var violations []Violation
	if runErr != nil {
		violations = append(violations, Violation{"run-error", runErr.Error()})
	} else {
		violations = append(violations, r.checkProtocol(ep)...)
	}
	if err := before.Diff(); err != nil {
		violations = append(violations, Violation{"goroutine-leak", err.Error()})
	}
	if r.cfg.DiskFaults {
		violations = append(violations, r.diskDrill(ep)...)
	}
	if r.cfg.CheckEpisode != nil {
		violations = append(violations, r.cfg.CheckEpisode(ep)...)
	}
	return violations
}

// checkProtocol evaluates the protocol invariants on a completed run.
func (r *soakRun) checkProtocol(ep *Episode) []Violation {
	var violations []Violation
	res, report := ep.Result, ep.Report

	// Liveness invariants only hold for self-healing outcomes: a
	// schedule whose restart never fired (the run converged first, or a
	// ddmin subset dropped it) legitimately ends with a dead SBS.
	if selfHealed(report) {
		if !res.Converged {
			violations = append(violations, Violation{"converged",
				fmt.Sprintf("did not converge in %d sweeps (faults %+v)", res.Sweeps, res.TotalFaults())})
		}
		if diff := relDiff(res.Solution.Cost.Total, ep.Baseline.Solution.Cost.Total); diff > r.cfg.Tolerance {
			violations = append(violations, Violation{"cost-tolerance",
				fmt.Sprintf("final cost %v is %.2f%% from fault-free %v (tolerance %.2f%%)",
					res.Solution.Cost.Total, diff*100, ep.Baseline.Solution.Cost.Total, r.cfg.Tolerance*100)})
		}
	}

	// Safety invariants always apply.
	if vs := model.CheckFeasibility(ep.Inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		violations = append(violations, Violation{"feasible", model.FormatViolations(vs)})
	}
	total := res.TotalFaults()
	if got := report.Counter.Count(sim.EventUploadTimeout); got != total.Misses {
		violations = append(violations, Violation{"accounting",
			fmt.Sprintf("counter misses %d != stats misses %d", got, total.Misses)})
	}
	if got := report.Counter.Count(sim.EventQuarantine); got != total.QuarantineSpans {
		violations = append(violations, Violation{"accounting",
			fmt.Sprintf("counter quarantines %d != stats spans %d", got, total.QuarantineSpans)})
	}
	if got := report.Counter.Count(sim.EventAnnounceRetry); got != total.Retries {
		violations = append(violations, Violation{"accounting",
			fmt.Sprintf("counter retries %d != stats retries %d", got, total.Retries)})
	}
	return violations
}

// selfHealed reports whether the run ended with every target recovered:
// each fired crash/partition followed by its restart/heal, and no
// recovery events left unfired.
func selfHealed(report *chaos.Report) bool {
	down := map[int]bool{}
	cut := map[int]bool{}
	for _, f := range report.Fired {
		switch f.Op {
		case chaos.OpCrash:
			down[f.SBS] = true
		case chaos.OpRestart:
			delete(down, f.SBS)
		case chaos.OpPartition:
			cut[f.SBS] = true
		case chaos.OpHeal:
			delete(cut, f.SBS)
		}
	}
	if len(down) > 0 || len(cut) > 0 {
		return false
	}
	for _, ev := range report.Unfired {
		switch ev.Op {
		case chaos.OpRestart, chaos.OpHeal, chaos.OpBSRestart:
			// A queued recovery that never ran: its crash may have fired
			// right at the end of the run. Only trust fully-recovered
			// outcomes.
			return false
		}
	}
	return true
}

// diskFaultConfig is the drill's injection mix: every fault class enabled,
// scaled so most episodes see at least one fault but an intact snapshot
// usually survives retention.
func diskFaultConfig(seed int64) model.FaultFSConfig {
	return model.FaultFSConfig{
		Seed:       seed,
		ShortWrite: 0.15,
		ENOSPC:     0.15,
		RenameFail: 0.10,
		TornRename: 0.15,
		BitRot:     0.20,
	}
}

// tolerantSink counts-but-swallows Save errors: the coordinator aborts a
// run on checkpoint failure (correct for production), but the disk drill
// wants the run to finish so recovery can be judged afterwards.
type tolerantSink struct {
	sink     model.CheckpointSink
	saveErrs int
}

func (t *tolerantSink) Save(ck *model.Checkpoint) error {
	if err := t.sink.Save(ck); err != nil {
		t.saveErrs++
	}
	return nil
}

// diskDrill runs the disk fault domain for one episode: a checkpointed
// fault-free run over a FaultFS-backed store, then Scrub + DeepLatest +
// Resume, asserting bit-identity with the episode baseline throughout.
func (r *soakRun) diskDrill(ep *Episode) []Violation {
	dir, err := os.MkdirTemp("", "soak-disk-")
	if err != nil {
		return []Violation{{"disk-recovery", fmt.Sprintf("temp dir: %v", err)}}
	}
	defer os.RemoveAll(dir)

	ffs := model.NewFaultFS(model.OSCheckpointFS{}, diskFaultConfig(ep.Seed))
	store, err := model.NewCheckpointStoreFS(dir, 5, ffs)
	if err != nil {
		return []Violation{{"disk-recovery", fmt.Sprintf("open store: %v", err)}}
	}
	sink := &tolerantSink{sink: store}

	cfg := core.DefaultConfig()
	cfg.Checkpoint = &core.CheckpointConfig{Sink: sink, EverySweeps: 1}
	coord, err := core.NewCoordinator(ep.Inst, cfg)
	if err != nil {
		return []Violation{{"disk-recovery", fmt.Sprintf("coordinator: %v", err)}}
	}
	res, err := coord.Run()
	coord.Close()
	if err != nil {
		return []Violation{{"disk-recovery", fmt.Sprintf("checkpointed run: %v", err)}}
	}
	stats := ffs.Stats()
	r.accumulateDisk(stats)

	var violations []Violation
	// Checkpointing through a faulty disk must not perturb the solve.
	if msg := bitDiff(res, ep.Baseline); msg != "" {
		violations = append(violations, Violation{"disk-recovery",
			"checkpointed run diverged from reference: " + msg})
	}

	// Recovery: quarantine the corrupt snapshots, resume from the newest
	// intact one, and land on the identical trajectory.
	report, err := store.Scrub()
	if err != nil {
		return append(violations, Violation{"disk-recovery", fmt.Sprintf("scrub: %v", err)})
	}
	ck, err := store.DeepLatest()
	if err != nil {
		if report.Intact == 0 {
			// Every save failed or rotted — legitimate under heavy
			// injection; there is nothing to resume and that is visible
			// to the operator (saveErrs, quarantine list), not silent.
			r.logf("disk drill: no intact snapshot (saves failed %d, quarantined %d, faults %+v)",
				sink.saveErrs, len(report.Quarantined), stats)
			return violations
		}
		return append(violations, Violation{"disk-recovery",
			fmt.Sprintf("DeepLatest failed with %d intact snapshots: %v", report.Intact, err)})
	}
	fresh, err := core.NewCoordinator(ep.Inst, cfg)
	if err != nil {
		return append(violations, Violation{"disk-recovery", fmt.Sprintf("resume coordinator: %v", err)})
	}
	resumed, err := fresh.Resume(ck)
	fresh.Close()
	if err != nil {
		return append(violations, Violation{"disk-recovery",
			fmt.Sprintf("resume from sweep %d: %v", ck.Sweep, err)})
	}
	if msg := bitDiff(resumed, ep.Baseline); msg != "" {
		violations = append(violations, Violation{"disk-recovery",
			fmt.Sprintf("resume from sweep %d diverged from reference: %s", ck.Sweep, msg)})
	}
	return violations
}

// accumulateDisk folds one drill's fault stats into the result.
func (r *soakRun) accumulateDisk(s model.FaultFSStats) {
	r.res.DiskStats.ShortWrites += s.ShortWrites
	r.res.DiskStats.ENOSPC += s.ENOSPC
	r.res.DiskStats.RenameFails += s.RenameFails
	r.res.DiskStats.TornRenames += s.TornRenames
	r.res.DiskStats.BitRots += s.BitRots
}

// bitDiff compares two run results bit-for-bit (history and final cost);
// "" means identical.
func bitDiff(got, want *core.RunResult) string {
	if len(got.History) != len(want.History) {
		return fmt.Sprintf("history length %d vs %d", len(got.History), len(want.History))
	}
	for i := range got.History {
		if math.Float64bits(got.History[i]) != math.Float64bits(want.History[i]) {
			return fmt.Sprintf("history[%d] %v vs %v", i, got.History[i], want.History[i])
		}
	}
	if math.Float64bits(got.Solution.Cost.Total) != math.Float64bits(want.Solution.Cost.Total) {
		return fmt.Sprintf("final cost %v vs %v", got.Solution.Cost.Total, want.Solution.Cost.Total)
	}
	return ""
}

// relDiff is the relative cost gap |a-b| / max(|b|, eps).
func relDiff(a, b float64) float64 {
	denom := math.Abs(b)
	if denom < 1e-9 {
		denom = 1e-9
	}
	return math.Abs(a-b) / denom
}

// shrink ddmin-minimizes the failing schedule's event list and writes the
// repro file. "Interesting" means the re-run violates at least one of the
// originally violated invariants.
func (r *soakRun) shrink(ctx context.Context, ep *Episode, violations []Violation) (*Failure, error) {
	failure := &Failure{
		Episode:    ep.Index,
		Seed:       ep.Seed,
		Violations: violations,
		Schedule:   ep.Schedule,
		Minimized:  ep.Schedule,
	}
	want := map[string]bool{}
	for _, v := range violations {
		want[v.Invariant] = true
	}
	runs := 0
	interesting := func(events []chaos.Event) bool {
		if runs >= r.cfg.ShrinkRuns || ctx.Err() != nil {
			return false
		}
		runs++
		cand := &Episode{
			Index:    ep.Index,
			Seed:     ep.Seed,
			Inst:     ep.Inst,
			Baseline: ep.Baseline,
			Schedule: chaos.Schedule{Seed: ep.Schedule.Seed, Links: ep.Schedule.Links, Events: events},
		}
		for _, v := range r.execute(ctx, cand) {
			if want[v.Invariant] {
				return true
			}
		}
		return false
	}
	minEvents := ddmin(ep.Schedule.Events, interesting)
	failure.ShrinkRuns = runs
	failure.Minimized = chaos.Schedule{Seed: ep.Schedule.Seed, Links: ep.Schedule.Links, Events: minEvents}
	r.logf("shrink: %d events -> %d (%d re-runs)", len(ep.Schedule.Events), len(minEvents), runs)

	path, err := r.writeRepro(failure)
	if err != nil {
		return nil, err
	}
	failure.ReproPath = path
	return failure, nil
}

// writeRepro persists the failure as a repro file and returns its path.
func (r *soakRun) writeRepro(f *Failure) (string, error) {
	repro := Repro{
		Episode:   f.Episode,
		Seed:      f.Seed,
		SBSs:      r.cfg.SBSs,
		Groups:    r.cfg.Groups,
		LinkCount: r.cfg.LinkCount,
		Videos:    r.cfg.Videos,
		CacheCap:  r.cfg.CacheCap,
	}
	if f.Cluster {
		repro.ProcSpec = f.MinProc.Spec()
	} else {
		repro.Spec = f.Minimized.Spec()
	}
	for _, v := range f.Violations {
		repro.Invariants = append(repro.Invariants, v.Invariant)
		repro.Detail = append(repro.Detail, v.String())
	}
	dir := r.cfg.ReproDir
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("soak: repro dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("soak-repro-ep%d-seed%d.txt", f.Episode, f.Seed))
	if err := repro.WriteFile(path); err != nil {
		return "", fmt.Errorf("soak: write repro: %w", err)
	}
	r.logf("repro written: %s", path)
	return path, nil
}

// ReplayRepro re-executes a parsed repro under the same invariant checker
// and returns the violations it still triggers (empty means the failure no
// longer reproduces).
func ReplayRepro(ctx context.Context, cfg Config, repro Repro) ([]Violation, error) {
	cfg.SBSs = repro.SBSs
	cfg.Groups = repro.Groups
	cfg.LinkCount = repro.LinkCount
	cfg.Videos = repro.Videos
	cfg.CacheCap = repro.CacheCap
	cfg = cfg.withDefaults()
	if repro.Spec == "" {
		return nil, fmt.Errorf("soak: repro has no in-process spec (proc-spec replay runs through -cluster)")
	}
	sched, err := chaos.ParseSpec(repro.Spec)
	if err != nil {
		return nil, err
	}
	r := &soakRun{cfg: cfg, res: &Result{}}
	inst, err := r.buildInstance(repro.Seed)
	if err != nil {
		return nil, err
	}
	base, err := baseline(inst)
	if err != nil {
		return nil, err
	}
	ep := &Episode{Index: repro.Episode, Seed: repro.Seed, Inst: inst, Schedule: sched, Baseline: base}
	return r.execute(ctx, ep), nil
}
