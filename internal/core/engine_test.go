package core

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"edgecache/internal/model"
)

// jacobiCfg returns a config running the reference Jacobi engine.
func jacobiCfg() Config {
	cfg := DefaultConfig()
	cfg.Engine = EngineJacobi
	return cfg
}

// parallelCfg returns a config running the parallel engine with the given
// pool size.
func parallelCfg(workers int) Config {
	cfg := DefaultConfig()
	cfg.Engine = EngineParallelJacobi
	cfg.Workers = workers
	return cfg
}

// TestParallelBitIdenticalToReferenceAcrossWorkerCounts is the
// determinism headline: the goroutine-sharded engine must reproduce the
// sequential reference Jacobi trajectory bit-for-bit at every worker
// count — the reduction order is fixed by construction, not by
// scheduling.
func TestParallelBitIdenticalToReferenceAcrossWorkerCounts(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 6, 9, 11)

		ref, err := NewCoordinator(inst, jacobiCfg())
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Run()
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			coord, err := NewCoordinator(inst, parallelCfg(workers))
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Run()
			coord.Close()
			if err != nil {
				t.Fatal(err)
			}
			bitEqualResults(t, got, want, "parallel engine")
		}
	}
}

// TestParallelBitIdenticalWithPrivacy extends the guarantee to LPPM runs:
// the parallel engine draws from the shared noise stream in the same
// ascending-SBS order as the sequential engines, so even the noised
// trajectories match bit-for-bit.
func TestParallelBitIdenticalWithPrivacy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(rng, 5, 8, 10)
	const noiseSeed = 77

	run := func(cfg Config) *RunResult {
		t.Helper()
		cfg.MaxSweeps = 8
		cfg.Privacy = &PrivacyConfig{Epsilon: 1.0, Delta: 0.4, Noise: NewNoiseSource(noiseSeed)}
		coord, err := NewCoordinator(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		res, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := run(jacobiCfg())
	for _, workers := range []int{1, 3} {
		bitEqualResults(t, run(parallelCfg(workers)), want, "private parallel run")
	}
}

// TestRunJacobiMatchesEngineConfig pins the legacy entry point to the
// engine path: RunJacobi on a default (Gauss-Seidel) coordinator and
// Run on an EngineJacobi coordinator must produce the same trajectory.
func TestRunJacobiMatchesEngineConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := randomInstance(rng, 4, 7, 9)

	legacy, err := NewCoordinator(inst, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacy.RunJacobi()
	if err != nil {
		t.Fatal(err)
	}

	coord, err := NewCoordinator(inst, jacobiCfg())
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	bitEqualResults(t, got, want, "RunJacobi vs Engine=jacobi")
}

// TestJacobiTrackerMatchesReferenceRepair pins the engines' incremental
// aggregate to the reference definitions: after a run, the tracker-
// maintained aggregate of the returned policy must equal a from-scratch
// AggregateInto rebuild, and the repair must leave no overserve behind —
// the properties the seed implementation got from recomputing
// AggregateExcept every phase.
func TestJacobiTrackerMatchesReferenceRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inst := randomInstance(rng, 5, 7, 8)
	coord, err := NewCoordinator(inst, jacobiCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Solution.Routing.Aggregate(inst)
	for u := 0; u < inst.U; u++ {
		for f := 0; f < inst.F; f++ {
			if agg.At(u, f) > 1+1e-9 {
				t.Fatalf("overserve at (%d,%d): %v", u, f, agg.At(u, f))
			}
		}
	}
}

func TestEngineConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inst := randomInstance(rng, 3, 5, 6)

	cfg := DefaultConfig()
	cfg.Engine = EngineKind(42)
	if _, err := NewCoordinator(inst, cfg); err == nil || !strings.Contains(err.Error(), "engine") {
		t.Errorf("unknown engine: got %v", err)
	}

	cfg = DefaultConfig()
	cfg.Workers = 2
	if _, err := NewCoordinator(inst, cfg); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Errorf("workers on sequential engine: got %v", err)
	}

	cfg = parallelCfg(-1)
	if _, err := NewCoordinator(inst, cfg); err == nil {
		t.Error("negative workers: want error")
	}

	cfg = jacobiCfg()
	cfg.Restarts = 2
	if _, err := NewCoordinator(inst, cfg); err == nil || !strings.Contains(err.Error(), "Restarts") {
		t.Errorf("restarts on jacobi engine: got %v", err)
	}

	cfg = jacobiCfg()
	cfg.BroadcastTap = func(int, int, [][]float64) {}
	if _, err := NewCoordinator(inst, cfg); err == nil || !strings.Contains(err.Error(), "tap") {
		t.Errorf("tap on jacobi engine: got %v", err)
	}

	cfg = jacobiCfg()
	cfg.Checkpoint = &CheckpointConfig{Sink: model.NewMemCheckpointStore(0), EachPhase: true}
	if _, err := NewCoordinator(inst, cfg); err == nil || !strings.Contains(err.Error(), "atomic") {
		t.Errorf("per-phase checkpoints on jacobi engine: got %v", err)
	}
}

// TestJacobiCheckpointResumeBitIdentical brings the crash-recovery
// guarantee to the Jacobi family: snapshots taken at round boundaries
// resume bit-identically — under the reference engine, the parallel
// engine (same family), and with LPPM active.
func TestJacobiCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := randomInstance(rng, 4, 6, 8)

	store := model.NewMemCheckpointStore(0)
	cfg := jacobiCfg()
	cfg.Checkpoint = &CheckpointConfig{Sink: store}
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	snaps := store.All()
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots captured", len(snaps))
	}
	for _, ck := range snaps {
		if ck.Engine != model.EngineJacobi {
			t.Fatalf("snapshot records engine %v, want jacobi", ck.Engine)
		}
		if ck.Phase != 0 {
			t.Fatalf("jacobi snapshot at mid-sweep phase %d", ck.Phase)
		}
		// Resume under the reference engine.
		fresh, err := NewCoordinator(inst, jacobiCfg())
		if err != nil {
			t.Fatal(err)
		}
		got, err := fresh.Resume(ck)
		if err != nil {
			t.Fatalf("resume at sweep %d: %v", ck.Sweep, err)
		}
		bitEqualResults(t, got, want, "jacobi resume")

		// Cross-engine, same family: the parallel engine must continue
		// the same trajectory.
		par, err := NewCoordinator(inst, parallelCfg(2))
		if err != nil {
			t.Fatal(err)
		}
		got, err = par.Resume(ck)
		par.Close()
		if err != nil {
			t.Fatalf("parallel resume at sweep %d: %v", ck.Sweep, err)
		}
		bitEqualResults(t, got, want, "parallel resume of jacobi snapshot")
	}
}

// TestParallelPrivateCheckpointResume runs the full stack at once:
// parallel engine, LPPM noise, boundary checkpoints, resume.
func TestParallelPrivateCheckpointResume(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	inst := randomInstance(rng, 4, 6, 7)
	const seed = 55

	cfgFor := func(noise *NoiseSource) Config {
		cfg := parallelCfg(2)
		cfg.MaxSweeps = 6
		cfg.Privacy = &PrivacyConfig{Epsilon: 1.0, Delta: 0.4, Noise: noise}
		return cfg
	}

	store := model.NewMemCheckpointStore(0)
	cfg := cfgFor(NewNoiseSource(seed))
	cfg.Checkpoint = &CheckpointConfig{Sink: store}
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	want, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ck := range store.All() {
		fresh, err := NewCoordinator(inst, cfgFor(NewNoiseSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := fresh.Resume(ck)
		fresh.Close()
		if err != nil {
			t.Fatalf("resume at sweep %d: %v", ck.Sweep, err)
		}
		bitEqualResults(t, got, want, "private parallel resume")
	}
}

// TestResumeEngineFamilyMismatch rejects cross-family resume in both
// directions: the Gauss-Seidel and Jacobi trajectories diverge, so
// continuing one from the other's snapshot would silently corrupt the
// bit-identity guarantee.
func TestResumeEngineFamilyMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	inst := randomInstance(rng, 3, 5, 6)

	gsStore := model.NewMemCheckpointStore(0)
	cfg := DefaultConfig()
	cfg.Checkpoint = &CheckpointConfig{Sink: gsStore}
	gs, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gs.Run(); err != nil {
		t.Fatal(err)
	}
	gsCk, err := gsStore.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if gsCk.Engine != model.EngineGaussSeidel {
		t.Fatalf("gs snapshot records engine %v", gsCk.Engine)
	}

	jac, err := NewCoordinator(inst, jacobiCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jac.Resume(gsCk); err == nil || !strings.Contains(err.Error(), "family") {
		t.Errorf("jacobi resume of gs snapshot: got %v", err)
	}

	jacStore := model.NewMemCheckpointStore(0)
	cfg = jacobiCfg()
	cfg.Checkpoint = &CheckpointConfig{Sink: jacStore}
	jacCk, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jacCk.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := jacStore.Latest()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewCoordinator(inst, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Resume(snap); err == nil || !strings.Contains(err.Error(), "family") {
		t.Errorf("gs resume of jacobi snapshot: got %v", err)
	}
}

// TestParallelEngineCloseIdempotent double-closes and verifies a closed
// engine refuses to run rather than deadlocking.
func TestParallelEngineCloseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	inst := randomInstance(rng, 3, 4, 5)
	coord, err := NewCoordinator(inst, parallelCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(); err != nil {
		t.Fatal(err)
	}
	coord.Close()
	coord.Close()
	if _, err := coord.Run(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("run after close: got %v", err)
	}
}
