package sim

import (
	"math/rand"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/model"
)

func TestValidatePolicyAgreesWithFluidModel(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	inst := randomInstance(rng, 3, 8, 10)
	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	report, err := ValidatePolicy(inst, res.Solution, ValidateOptions{Requests: 40000, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("no requests replayed")
	}
	// The packet-level realization should track the fluid model within a
	// few percent at this stream length.
	if report.RelativeError > 0.05 {
		t.Errorf("fluid-vs-packet error %.2f%% (model %v, realized %v)",
			report.RelativeError*100, report.ModelCost.Total, report.RealizedCost.Total)
	}
	// Bandwidth was sized by the model, so fallbacks must be rare.
	if frac := float64(report.Fallbacks) / float64(report.Requests); frac > 0.02 {
		t.Errorf("fallback fraction %.3f, want < 2%%", frac)
	}
}

func TestValidatePolicyEmptyRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	inst := randomInstance(rng, 2, 4, 5)
	sol := &model.Solution{
		Caching: model.NewCachingPolicy(inst),
		Routing: model.NewRoutingPolicy(inst),
	}
	report, err := ValidatePolicy(inst, sol, ValidateOptions{Requests: 5000, Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	if report.EdgeServed != 0 {
		t.Errorf("empty policy served %d requests at the edge", report.EdgeServed)
	}
	// Everything over the backhaul: realized ≈ W. The Poisson expansion
	// redistributes mass across MU groups with different d̂_u, so the
	// realized total wobbles slightly even after mass normalization.
	if report.RelativeError > 0.01 {
		t.Errorf("relative error %v for the all-backhaul case, want < 1%%", report.RelativeError)
	}
}

func TestValidatePolicyZeroDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	inst := randomInstance(rng, 2, 3, 4)
	for u := range inst.Demand {
		for f := range inst.Demand[u] {
			inst.Demand[u][f] = 0
		}
	}
	sol := &model.Solution{
		Caching: model.NewCachingPolicy(inst),
		Routing: model.NewRoutingPolicy(inst),
	}
	report, err := ValidatePolicy(inst, sol, ValidateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.RealizedCost.Total != 0 {
		t.Errorf("zero demand realized cost %v", report.RealizedCost.Total)
	}
}

func TestValidatePolicyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	inst := randomInstance(rng, 2, 3, 4)
	if _, err := ValidatePolicy(inst, nil, ValidateOptions{}); err == nil {
		t.Error("nil solution: want error")
	}
	if _, err := ValidatePolicy(&model.Instance{N: 0}, &model.Solution{}, ValidateOptions{}); err == nil {
		t.Error("invalid instance: want error")
	}
}

func TestValidatePolicyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	inst := randomInstance(rng, 2, 4, 5)
	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ValidatePolicy(inst, res.Solution, ValidateOptions{Requests: 2000, Seed: 58})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ValidatePolicy(inst, res.Solution, ValidateOptions{Requests: 2000, Seed: 58})
	if err != nil {
		t.Fatal(err)
	}
	if a.RealizedCost.Total != b.RealizedCost.Total {
		t.Error("same seed produced different realized costs")
	}
}
