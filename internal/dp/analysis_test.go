package dp

import (
	"math"
	"math/rand"
	"testing"
)

func TestEmpiricalPrivacyLossValidation(t *testing.T) {
	a := []float64{0.5}
	if _, err := EmpiricalPrivacyLoss(nil, a, 0, 1, 10, 1); err == nil {
		t.Error("empty A: want error")
	}
	if _, err := EmpiricalPrivacyLoss(a, nil, 0, 1, 10, 1); err == nil {
		t.Error("empty B: want error")
	}
	if _, err := EmpiricalPrivacyLoss(a, a, 1, 0, 10, 1); err == nil {
		t.Error("bad range: want error")
	}
	if _, err := EmpiricalPrivacyLoss(a, a, 0, 1, 0, 1); err == nil {
		t.Error("zero buckets: want error")
	}
	if _, err := EmpiricalPrivacyLoss([]float64{2}, a, 0, 1, 10, 1); err == nil {
		t.Error("out-of-range sample: want error")
	}
}

func TestEmpiricalPrivacyLossIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	res, err := EmpiricalPrivacyLoss(samples, samples, 0, 1, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRatio != 1 || res.EscapeMass != 0 {
		t.Errorf("identical samples: ratio=%v escape=%v", res.MaxRatio, res.EscapeMass)
	}
}

func TestEmpiricalPrivacyLossDisjoint(t *testing.T) {
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = 0.1
		b[i] = 0.9
	}
	res, err := EmpiricalPrivacyLoss(a, b, 0, 1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EscapeMass != 1 {
		t.Errorf("disjoint supports: escape = %v, want 1", res.EscapeMass)
	}
}

// TestLPPMEmpiricalPrivacyLoss measures the privacy loss of the paper's
// per-value bounded-Laplace perturbation on two neighboring routing
// values. Two findings, both documented in EXPERIMENTS.md:
//
//  1. Over the common support the probability ratio respects e^ε as
//     Theorem 4 claims (β = Δf/ε with Δf the value difference).
//  2. Because the noise interval [0, δ·y] depends on the protected value
//     itself, the two output supports differ; the escaping mass is a
//     residual leak that a fixed-interval bounded Laplace (Holohan et
//     al.) would avoid. The measurement quantifies it.
func TestLPPMEmpiricalPrivacyLoss(t *testing.T) {
	const (
		yA    = 0.80
		yB    = 0.78
		delta = 0.5
		eps   = 1.0
		n     = 400000
	)
	sens := yA - yB // neighboring uploads differing by one routing tweak
	beta, err := BetaForEpsilon(sens, eps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sample := func(y float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			r, err := LPPMNoise(rng, y, delta, beta)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = y - r
		}
		return out
	}
	a := sample(yA)
	b := sample(yB)
	res, err := EmpiricalPrivacyLoss(a, b, 0, 1, 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LPPM neighboring-output loss: maxRatio=%.3f (e^ε=%.3f), escapeMass=%.4f",
		res.MaxRatio, math.Exp(eps), res.EscapeMass)
	// Theorem 4's ratio bound over the common support, with slack for
	// bucket-edge effects and sampling noise.
	if res.MaxRatio > math.Exp(eps)*1.5 {
		t.Errorf("common-support ratio %v far exceeds e^ε = %v", res.MaxRatio, math.Exp(eps))
	}
	// The support mismatch is y-dependent by construction: the supports
	// are [(1−δ)·y, y]. With β = Δf/ε = 0.02 the noise concentrates near
	// zero, so most of A's outputs land above B's upper end (analytically
	// P(r < Δf) = (1−e^(−Δf/β))/(1−e^(−δ·y/β)) ≈ 1−e^(−1) ≈ 0.632 for A,
	// ≈ 0 for B, average ≈ 0.316). This measured leak — absent from a
	// fixed-interval bounded Laplace à la Holohan et al. — is the main
	// empirical caveat on the paper's Theorem 4 and is recorded in
	// EXPERIMENTS.md.
	if res.EscapeMass < 0.25 || res.EscapeMass > 0.40 {
		t.Errorf("escape mass %v outside the analytically expected ≈0.316 band", res.EscapeMass)
	}
}
