package core

import (
	"fmt"
	"math"
	"math/rand"

	"edgecache/internal/dp"
	"edgecache/internal/model"
)

// NoiseMechanism selects the noise family used to perturb routing uploads.
type NoiseMechanism int

// Supported mechanisms.
const (
	// MechanismLaplace is the paper's LPPM: bounded Laplace noise on
	// [0, δ·y] with scale β = Δf/ε (ε-DP, Theorem 4). The default.
	MechanismLaplace NoiseMechanism = iota
	// MechanismGaussian subtracts a |N(0,σ)| draw truncated to [0, δ·y]
	// with the analytic (ε, δ_DP) calibration — the Gaussian variant the
	// paper's §VII lists as future work.
	MechanismGaussian
	// MechanismUniform subtracts plain uniform noise on [0, δ·y]. It has
	// no calibrated DP guarantee; it is the "directly added random noise"
	// strawman the paper's §IV argues against, kept for the noise-family
	// ablation.
	MechanismUniform
)

// String names the mechanism.
func (m NoiseMechanism) String() string {
	switch m {
	case MechanismLaplace:
		return "laplace"
	case MechanismGaussian:
		return "gaussian"
	case MechanismUniform:
		return "uniform"
	default:
		return fmt.Sprintf("NoiseMechanism(%d)", int(m))
	}
}

// PrivacyConfig enables LPPM (§IV of the paper) on every routing upload.
type PrivacyConfig struct {
	// Epsilon is the per-release privacy budget ε; Theorem 4 calibrates the
	// Laplace scale as β = Sensitivity/ε.
	Epsilon float64
	// Delta is the paper's Laplace component factor δ ∈ [0,1): the noise
	// drawn for routing value y lives on [0, δ·y] (eq. 28). It is NOT the
	// (ε,δ)-DP slack.
	Delta float64
	// Sensitivity is Δf in eq. 30. The routing values are fractions in
	// [0,1], so the default (0 → 1) is the worst-case L1 change from one
	// SBS altering one routing entry.
	Sensitivity float64
	// Rng drives the noise. Either Rng or Noise is required.
	Rng *rand.Rand
	// Noise, when non-nil, supplies the Rng from a draw-counting, seekable
	// source (NewLPPM wires it up) so the noise stream's position can be
	// captured in a checkpoint and restored on resume. Required when
	// checkpointing a private run; ignored if Rng is also set.
	Noise *NoiseSource
	// Accountant optionally records every ε spend, labeled per SBS.
	Accountant *dp.Accountant
	// Mechanism selects the noise family; the zero value is the paper's
	// bounded Laplace (LPPM).
	Mechanism NoiseMechanism
	// DPDelta is the (ε, δ)-DP slack used only by MechanismGaussian.
	// 0 means 1e-5. Distinct from Delta, the noise-interval factor.
	DPDelta float64
}

func (p *PrivacyConfig) validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("core: privacy epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Delta < 0 || p.Delta >= 1 {
		return fmt.Errorf("core: privacy delta must be in [0,1), got %v", p.Delta)
	}
	if p.Sensitivity < 0 {
		return fmt.Errorf("core: privacy sensitivity must be non-negative, got %v", p.Sensitivity)
	}
	if p.Rng == nil && p.Noise == nil {
		return fmt.Errorf("core: privacy config requires an Rng or a Noise source")
	}
	switch p.Mechanism {
	case MechanismLaplace, MechanismUniform:
	case MechanismGaussian:
		if d := p.dpDelta(); d <= 0 || d >= 1 {
			return fmt.Errorf("core: gaussian mechanism needs DPDelta in (0,1), got %v", d)
		}
	default:
		return fmt.Errorf("core: unknown noise mechanism %v", p.Mechanism)
	}
	return nil
}

func (p *PrivacyConfig) dpDelta() float64 {
	if p.DPDelta > 0 {
		return p.DPDelta
	}
	return 1e-5
}

func (p *PrivacyConfig) sensitivity() float64 {
	if p.Sensitivity > 0 {
		return p.Sensitivity
	}
	return 1
}

// Config tunes Algorithm 1.
type Config struct {
	// Sub is the per-SBS sub-problem configuration.
	Sub SubproblemConfig
	// Gamma is the relative-improvement convergence threshold γ; the sweep
	// stops when |f(τ) − f(τ−1)|/f(τ) ≤ γ. 0 means the default 1e-6.
	Gamma float64
	// MaxSweeps is T, the sweep budget. 0 means the default 50.
	MaxSweeps int
	// Privacy, when non-nil, applies LPPM to every routing upload.
	Privacy *PrivacyConfig

	// BroadcastTap, when non-nil, observes every aggregate y_{-n} the BS
	// broadcasts (sweep, phase n, matrix), modeling the paper's §IV
	// attacker who listens on the broadcast channel. The matrices are
	// materialized per call (the tap owns them), so enabling a tap trades
	// the sweep loop's zero-allocation property for observability.
	// Used by internal/attack and experiment E15.
	BroadcastTap func(sweep, phase int, yMinus [][]float64)
	// UploadTap, when non-nil, observes each SBS's routing before (clean)
	// and after (upload) LPPM. It is experiment instrumentation — ground
	// truth for measuring what an attacker could recover — and must never
	// be wired up in a deployment. The matrices are materialized per call;
	// the tap owns them.
	UploadTap func(sweep, phase int, clean, upload [][]float64)

	// Checkpoint, when non-nil, snapshots the full sweep state to the
	// configured sink so a crashed run can be resumed bit-identically (see
	// Coordinator.Resume). Incompatible with Restarts > 0 (a snapshot
	// records one trajectory) and, when Privacy is set, requires
	// Privacy.Noise (a bare *rand.Rand has no capturable position).
	Checkpoint *CheckpointConfig

	// Restarts is an extension beyond the paper: because the no-overserve
	// constraint (4) couples the SBS blocks, the Gauss-Seidel sweep can
	// settle in an order-dependent equilibrium (see DESIGN.md and
	// experiment E7). When Restarts > 0 the coordinator reruns the
	// algorithm that many extra times with randomly shuffled SBS update
	// orders and keeps the cheapest result. The first attempt always uses
	// the paper's fixed 1..N order, so the result is never worse than
	// plain Algorithm 1. Requires RestartSeed-driven determinism.
	Restarts int
	// RestartSeed seeds the order shuffling for Restarts > 0.
	RestartSeed int64
}

// CheckpointConfig tunes snapshot capture.
type CheckpointConfig struct {
	// Sink receives every snapshot. Required.
	Sink model.CheckpointSink
	// EverySweeps is the sweep-boundary capture cadence; 0 means every
	// sweep.
	EverySweeps int
	// EachPhase additionally captures after every phase inside a sweep, so
	// a resume can continue mid-sweep. More snapshots, same guarantee.
	EachPhase bool
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{Sub: DefaultSubproblemConfig()}
}

func (c Config) withDefaults() Config {
	c.Sub = c.Sub.withDefaults()
	if c.Gamma <= 0 {
		c.Gamma = 1e-6
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 50
	}
	return c
}

// RunResult is the outcome of a full Algorithm 1 run.
type RunResult struct {
	// Solution is the final caching and routing policy as seen by the BS
	// (i.e. post-LPPM when privacy is enabled) with its serving cost.
	Solution *model.Solution
	// History records the total serving cost after every sweep; History[0]
	// is the cost after sweep τ=0.
	History []float64
	// Sweeps is the number of sweeps executed; Converged reports whether
	// the γ-criterion stopped the run (as opposed to the sweep budget).
	Sweeps    int
	Converged bool
	// Faults holds the per-SBS fault accounting of a distributed run
	// (one entry per SBS). It is nil for in-process runs, which have no
	// network to fail.
	Faults []SBSFaultStats
}

// SBSFaultStats is the BS-observed fault record of one SBS agent over a
// distributed run. The in-process Coordinator never populates it; the sim
// BS agent does, and the chaos tests assert it against the injected fault
// schedule.
type SBSFaultStats struct {
	// Misses counts phases whose upload never arrived within the full
	// PhaseTimeout window (each one stalls the sweep by that timeout).
	Misses int
	// Retries counts MsgPhaseStart retransmissions within phase windows.
	Retries int
	// Malformed counts uploads that arrived but failed validation
	// (undecodable payload or wrong shapes) and were discarded.
	Malformed int
	// QuarantineSpans counts entries into quarantine (including
	// re-entries after a failed rejoin probe).
	QuarantineSpans int
	// SkippedPhases counts phases skipped outright while quarantined —
	// sweeps that did NOT burn a PhaseTimeout on a dead SBS.
	SkippedPhases int
	// FailedProbes counts cheap rejoin probes that went unanswered (each
	// costs only ProbeTimeout, not PhaseTimeout).
	FailedProbes int
}

// TotalFaults sums the per-SBS fault stats into one record.
func (r *RunResult) TotalFaults() SBSFaultStats {
	var t SBSFaultStats
	for _, f := range r.Faults {
		t.Misses += f.Misses
		t.Retries += f.Retries
		t.Malformed += f.Malformed
		t.QuarantineSpans += f.QuarantineSpans
		t.SkippedPhases += f.SkippedPhases
		t.FailedProbes += f.FailedProbes
	}
	return t
}

// Coordinator runs Algorithm 1 in-process: it plays both the BS role
// (aggregating and re-broadcasting routing policies) and the SBS role
// (solving P_n). The message-passing deployment in internal/sim produces
// identical results over a real transport; tests assert that equivalence.
type Coordinator struct {
	inst *model.Instance
	cfg  Config
	subs []*Subproblem
	lppm *LPPM // nil when privacy is off
}

// NewCoordinator validates the instance and precomputes the per-SBS
// sub-problem solvers.
func NewCoordinator(inst *model.Instance, cfg Config) (*Coordinator, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if ck := cfg.Checkpoint; ck != nil {
		if ck.Sink == nil {
			return nil, fmt.Errorf("core: checkpoint config requires a sink")
		}
		if cfg.Restarts > 0 {
			return nil, fmt.Errorf("core: checkpointing is incompatible with Restarts > 0: a snapshot records a single trajectory")
		}
		if cfg.Privacy != nil && (cfg.Privacy.Noise == nil || cfg.Privacy.Rng != nil) {
			return nil, fmt.Errorf("core: checkpointing a private run requires Privacy.Noise alone (a seekable noise source); a bare Rng has no capturable position")
		}
	}
	c := &Coordinator{inst: inst, cfg: cfg}
	if cfg.Privacy != nil {
		lppm, err := NewLPPM(*cfg.Privacy)
		if err != nil {
			return nil, err
		}
		c.lppm = lppm
	}
	c.subs = make([]*Subproblem, inst.N)
	for n := 0; n < inst.N; n++ {
		sub, err := NewSubproblem(inst, n, cfg.Sub)
		if err != nil {
			return nil, err
		}
		c.subs[n] = sub
	}
	return c, nil
}

// Run executes Algorithm 1 from the all-zero initial policy. With
// Config.Restarts > 0 it additionally explores shuffled SBS update orders
// and returns the cheapest run.
func (c *Coordinator) Run() (*RunResult, error) {
	order := make([]int, c.inst.N)
	for i := range order {
		order[i] = i
	}
	best, err := c.runOnce(order)
	if err != nil {
		return nil, err
	}
	if c.cfg.Restarts > 0 {
		rng := rand.New(rand.NewSource(c.cfg.RestartSeed))
		for attempt := 0; attempt < c.cfg.Restarts; attempt++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			res, err := c.runOnce(order)
			if err != nil {
				return nil, err
			}
			if res.Solution.Cost.Total < best.Solution.Cost.Total {
				best = res
			}
		}
	}
	return best, nil
}

// sweepState is everything the sweep loop carries between phases — the
// live counterpart of a model.Checkpoint. newState builds the iteration-
// zero state; Resume rebuilds one from a snapshot.
type sweepState struct {
	order []int
	// sweep and phase are the NEXT point to execute: order position phase
	// of sweep sweep.
	sweep, phase int
	x            *model.CachingPolicy
	y            *model.RoutingPolicy // BS view: uploaded (noised) policies
	tracker      *model.AggregateTracker
	history      []float64
	prevCost     float64
	best         *model.Solution
}

// newState returns the all-zero initial state for one run.
func (c *Coordinator) newState(order []int) *sweepState {
	return &sweepState{
		order: order,
		x:     model.NewCachingPolicy(c.inst),
		y:     model.NewRoutingPolicy(c.inst),
		// The BS maintains the masked aggregate Σ_n y·l incrementally:
		// each phase derives y_{-n} in O(U·F) (subtract SBS n's block) and
		// advances the aggregate from the fresh upload, replacing the
		// O(N·U·F) AggregateExcept rebuild the seed implementation
		// performed per phase.
		tracker:  model.NewAggregateTracker(c.inst),
		prevCost: math.Inf(1),
	}
}

// runOnce executes one full Algorithm 1 run with the given per-sweep SBS
// update order.
func (c *Coordinator) runOnce(order []int) (*RunResult, error) {
	return c.runFrom(c.newState(order))
}

// Resume continues a run from a snapshot. The resumed trajectory — cost
// history, final cost and policies — is bit-identical to the uninterrupted
// run's, because the solver is deterministic, the snapshot carries the
// tracker's exact running sums, and (with privacy) the noise stream is
// repositioned to the recorded draw count. The coordinator must be built
// with the same instance and configuration as the crashed run.
func (c *Coordinator) Resume(ck *model.Checkpoint) (*RunResult, error) {
	if ck == nil {
		return nil, fmt.Errorf("core: nil checkpoint")
	}
	if err := ck.Validate(c.inst); err != nil {
		return nil, err
	}
	if c.cfg.Restarts > 0 {
		return nil, fmt.Errorf("core: cannot resume with Restarts > 0: a snapshot records a single trajectory")
	}
	if ck.HasNoise != (c.lppm != nil) {
		return nil, fmt.Errorf("core: checkpoint privacy state (LPPM=%v) does not match configuration (LPPM=%v)",
			ck.HasNoise, c.lppm != nil)
	}
	if c.lppm != nil {
		noise := c.cfg.Privacy.Noise
		if noise == nil {
			return nil, fmt.Errorf("core: resuming a private run requires Privacy.Noise")
		}
		if noise.SeedValue() != ck.NoiseSeed {
			return nil, fmt.Errorf("core: noise seed %d does not match checkpoint seed %d", noise.SeedValue(), ck.NoiseSeed)
		}
		noise.SeekTo(ck.NoiseDraws)
	}
	// μ restoration is diagnostic (Solve cold-starts the dual loop), but
	// it keeps the workspace byte-equal to the crashed process's.
	for n, mu := range ck.Mu {
		if len(mu) == 0 {
			continue
		}
		if err := c.subs[n].RestoreMultipliers(mu); err != nil {
			return nil, err
		}
	}
	st := &sweepState{
		order:    append([]int(nil), ck.Order...),
		sweep:    ck.Sweep,
		phase:    ck.Phase,
		x:        ck.Caching.Clone(),
		y:        ck.Routing.Clone(),
		tracker:  model.NewAggregateTracker(c.inst),
		history:  append([]float64(nil), ck.History...),
		prevCost: ck.PrevCost,
		best:     ck.Best.Clone(),
	}
	st.tracker.Restore(ck.Aggregate)
	return c.runFrom(st)
}

// runFrom drives Algorithm 1 from st (iteration zero or a resumed
// snapshot) to completion.
//
// The BS evaluates the uploaded aggregate after every sweep anyway
// (Algorithm 1's stop rule needs f(y(τ))), so it retains the cheapest
// policy seen and returns that. Without LPPM the sweep costs are
// non-increasing and this is exactly the final sweep; with LPPM per-sweep
// noise redraws can drift the trajectory (SBSs start duplicating demand
// their peers under-report), and keeping the best sweep is the natural
// BS-side behaviour.
func (c *Coordinator) runFrom(st *sweepState) (*RunResult, error) {
	inst := c.inst
	x, y, tracker := st.x, st.y, st.tracker
	yMinus := inst.NewUFMat()

	res := &RunResult{History: st.history, Sweeps: len(st.history)}
	ckpt := c.cfg.Checkpoint
	every := 1
	if ckpt != nil && ckpt.EverySweeps > 0 {
		every = ckpt.EverySweeps
	}

	for sweep := st.sweep; sweep < c.cfg.MaxSweeps; sweep++ {
		first := 0
		if sweep == st.sweep {
			first = st.phase
		}
		for pi := first; pi < len(st.order); pi++ {
			n := st.order[pi]
			// The BS broadcasts the aggregate routing; SBS n subtracts its
			// own last upload to obtain y_{-n} (eq. 25).
			tracker.YMinusInto(inst, y, n, yMinus)
			if c.cfg.BroadcastTap != nil {
				c.cfg.BroadcastTap(sweep, n, yMinus.Rows())
			}
			sub, err := c.subs[n].Solve(yMinus)
			if err != nil {
				return nil, err
			}
			upload := sub.Routing
			if c.lppm != nil {
				upload, err = c.lppm.PerturbSBS(n, sub.Routing)
				if err != nil {
					return nil, err
				}
			}
			if c.cfg.UploadTap != nil {
				c.cfg.UploadTap(sweep, n, sub.Routing.Rows(), upload.Rows())
			}
			x.SetRow(n, sub.Cache)
			tracker.Install(inst, y, n, yMinus, upload)
			if ckpt != nil && ckpt.EachPhase && pi+1 < len(st.order) {
				if err := c.snapshot(ckpt.Sink, st, res, sweep, pi+1); err != nil {
					return nil, err
				}
			}
		}
		cost := model.TotalServingCostFromAggregate(inst, y, tracker.Aggregate())
		res.History = append(res.History, cost.Total)
		res.Sweeps = sweep + 1
		if st.best == nil || cost.Total < st.best.Cost.Total {
			st.best = &model.Solution{Caching: x.Clone(), Routing: y.Clone(), Cost: cost}
		}

		// Algorithm 1's stop rule: relative improvement below γ. The
		// absolute value guards against noise-induced oscillation under
		// LPPM (Theorem 3 guarantees convergence of the underlying
		// sequence, but individual sweeps can regress slightly).
		if cost.Total > 0 && math.Abs(st.prevCost-cost.Total)/cost.Total <= c.cfg.Gamma {
			res.Converged = true
			st.prevCost = cost.Total
			break
		}
		st.prevCost = cost.Total
		if ckpt != nil && (sweep+1)%every == 0 {
			if err := c.snapshot(ckpt.Sink, st, res, sweep+1, 0); err != nil {
				return nil, err
			}
		}
	}

	if st.best == nil { // MaxSweeps == 0 cannot happen after withDefaults, but stay safe
		st.best = &model.Solution{Caching: x, Routing: y, Cost: model.TotalServingCost(inst, y)}
	}
	res.Solution = st.best
	return res, nil
}

// snapshot captures the current sweep state as of resume point
// (sweep, phase) and hands it to the sink.
func (c *Coordinator) snapshot(sink model.CheckpointSink, st *sweepState, res *RunResult, sweep, phase int) error {
	ck := &model.Checkpoint{
		Sweep:      sweep,
		Phase:      phase,
		Order:      append([]int(nil), st.order...),
		Caching:    st.x.Clone(),
		Routing:    st.y.Clone(),
		Aggregate:  st.tracker.Aggregate().Clone(),
		History:    append([]float64(nil), res.History...),
		PrevCost:   st.prevCost,
		Best:       st.best.Clone(),
		Mu:         make([][]float64, c.inst.N),
		InstanceFP: c.inst.Fingerprint(),
	}
	for n, sub := range c.subs {
		ck.Mu[n] = sub.Multipliers()
	}
	if c.lppm != nil {
		ck.HasNoise = true
		ck.NoiseSeed, ck.NoiseDraws = c.cfg.Privacy.Noise.Pos()
	}
	if err := sink.Save(ck); err != nil {
		return fmt.Errorf("core: checkpoint at sweep %d phase %d: %w", sweep, phase, err)
	}
	return nil
}
