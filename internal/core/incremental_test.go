package core

import (
	"math/rand"
	"runtime"
	"testing"

	"edgecache/internal/model"
)

// This file pins down the dirty-set memo fast path (DESIGN.md
// "Incremental sweeps"): every engine must produce a trajectory bit-equal
// to the memo-disabled reference — the memo may only skip work whose
// recomputation would reproduce the exact same bits — while actually
// skipping a meaningful share of solves on converging runs.

// withIncremental / withoutIncremental toggle the memo on a base config.
func withoutIncremental(cfg Config) Config {
	cfg.DisableIncremental = true
	return cfg
}

// runCfg builds a coordinator for cfg, runs it and returns the result.
func runCfg(t *testing.T, inst *model.Instance, cfg Config) *RunResult {
	t.Helper()
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIncrementalBitIdenticalToReference is the memo's headline contract:
// for every engine, with and without LPPM, the memo-enabled run is
// byte-equal to the memo-disabled reference — history, final cost and both
// final policies — and the non-private runs actually skip solves.
func TestIncrementalBitIdenticalToReference(t *testing.T) {
	// Seed and shape picked so the run reaches a bitwise fixed point
	// within the budget on every engine — skips must actually occur for
	// the assertion below to bite (an oscillating instance never skips).
	rng := rand.New(rand.NewSource(41))
	inst := randomInstance(rng, 10, 16, 20)

	base := func(engine Config) Config {
		// A tiny γ drives every engine to its bitwise fixed point, where
		// skips concentrate; the budget keeps the test fast.
		engine.Gamma = 1e-300
		engine.MaxSweeps = 12
		return engine
	}
	engines := map[string]Config{
		"gs":        base(DefaultConfig()),
		"jacobi":    base(jacobiCfg()),
		"parallel1": base(parallelCfg(1)),
		"parallel2": base(parallelCfg(2)),
		"parallelN": base(parallelCfg(runtime.NumCPU())),
	}

	for name, cfg := range engines {
		t.Run(name, func(t *testing.T) {
			want := runCfg(t, inst, withoutIncremental(cfg))
			got := runCfg(t, inst, cfg)
			bitEqualResults(t, got, want, "memo vs reference")
			if tw := got.TotalWork(); tw.Skipped == 0 {
				t.Errorf("memo run skipped no solves (work %+v); the fast path never engaged", got.Work)
			}
			if tw := want.TotalWork(); tw.Skipped != 0 {
				t.Errorf("DisableIncremental run skipped %d solves, want 0", tw.Skipped)
			}
		})
		t.Run(name+"/lppm", func(t *testing.T) {
			private := func(c Config) Config {
				c.Privacy = &PrivacyConfig{Epsilon: 1.0, Delta: 0.4, Noise: NewNoiseSource(123)}
				c.MaxSweeps = 6
				return c
			}
			want := runCfg(t, inst, withoutIncremental(private(cfg)))
			got := runCfg(t, inst, private(cfg))
			// LPPM redraws noise every sweep, so blocks keep changing and
			// skips are not expected — but the trajectories must still
			// match exactly (the memo never fires on changed inputs).
			bitEqualResults(t, got, want, "private memo vs reference")
		})
	}
}

// TestIncrementalSkipsOnStandardScenario is the CI tier gate against
// silent memo regressions: on the standard N=20 scenario every engine
// family must skip at least one solve, and the per-sweep accounting must
// partition N exactly.
func TestIncrementalSkipsOnStandardScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	inst := randomInstance(rng, 20, 60, 80)

	gs := DefaultConfig()
	gs.Gamma = 1e-300
	gs.MaxSweeps = 12
	jac := jacobiCfg()
	jac.MaxSweeps = 8
	par := parallelCfg(2)
	par.MaxSweeps = 8

	for name, cfg := range map[string]Config{"gs": gs, "jacobi": jac, "parallel": par} {
		t.Run(name, func(t *testing.T) {
			res := runCfg(t, inst, cfg)
			if len(res.Work) != res.Sweeps {
				t.Fatalf("%d Work entries for %d sweeps", len(res.Work), res.Sweeps)
			}
			for i, w := range res.Work {
				if w.Solves+w.Skipped != inst.N {
					t.Fatalf("sweep %d work %+v does not partition N=%d", i, w, inst.N)
				}
				if w.Solves < 0 || w.Skipped < 0 {
					t.Fatalf("sweep %d has negative work %+v", i, w)
				}
			}
			if tw := res.TotalWork(); tw.Skipped == 0 {
				t.Fatalf("no solves skipped over %d sweeps (work %v); dirty-set memo regressed", res.Sweeps, res.Work)
			}
		})
	}
}

// TestIncrementalResumeBitIdentical extends the memo contract across
// crash recovery: a memo-enabled run checkpointed after every phase
// (mid-sweep included) must resume onto the memo-disabled reference
// trajectory from every snapshot. The memo is rebuilt from scratch on
// resume — a resumed tracker starts a fresh generation — so this also
// exercises the re-learning path.
func TestIncrementalResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	inst := randomInstance(rng, 6, 9, 11)

	base := DefaultConfig()
	base.Gamma = 1e-300
	base.MaxSweeps = 8

	want := runCfg(t, inst, withoutIncremental(base))

	store := model.NewMemCheckpointStore(0)
	ckCfg := base
	ckCfg.Checkpoint = &CheckpointConfig{Sink: store, EachPhase: true}
	full := runCfg(t, inst, ckCfg)
	bitEqualResults(t, full, want, "checkpointed memo run vs reference")

	snaps := store.All()
	if len(snaps) < inst.N {
		t.Fatalf("only %d snapshots captured; want mid-sweep coverage", len(snaps))
	}
	midSweep := false
	for _, ck := range snaps {
		if ck.Phase != 0 {
			midSweep = true
		}
		fresh, err := NewCoordinator(inst, base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fresh.Resume(ck)
		if err != nil {
			t.Fatalf("resume at sweep %d phase %d: %v", ck.Sweep, ck.Phase, err)
		}
		bitEqualResults(t, got, want, "memo resume vs reference")
	}
	if !midSweep {
		t.Fatal("no mid-sweep snapshot exercised")
	}

	// Jacobi family: boundary snapshots, resumed under both engines.
	jac := jacobiCfg()
	jac.MaxSweeps = 8
	jacWant := runCfg(t, inst, withoutIncremental(jac))
	jacStore := model.NewMemCheckpointStore(0)
	jacCk := jac
	jacCk.Checkpoint = &CheckpointConfig{Sink: jacStore}
	bitEqualResults(t, runCfg(t, inst, jacCk), jacWant, "checkpointed jacobi memo run vs reference")
	for _, ck := range jacStore.All() {
		for name, cfg := range map[string]Config{"jacobi": jac, "parallel": parallelCfg(2)} {
			cfg.MaxSweeps = 8
			fresh, err := NewCoordinator(inst, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fresh.Resume(ck)
			fresh.Close()
			if err != nil {
				t.Fatalf("%s resume at round %d: %v", name, ck.Sweep, err)
			}
			bitEqualResults(t, got, jacWant, name+" memo resume vs reference")
		}
	}
}

// TestIncrementalRestartsIsolated pins the memo across Gauss-Seidel
// restarts: each restart builds a fresh tracker, so memos captured in one
// attempt must never leak hits into the next (the key carries the tracker
// identity). The restarted run must match the memo-disabled reference.
func TestIncrementalRestartsIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	inst := randomInstance(rng, 6, 8, 10)

	cfg := DefaultConfig()
	cfg.Gamma = 1e-300
	cfg.MaxSweeps = 6
	cfg.Restarts = 2
	cfg.RestartSeed = 7

	want := runCfg(t, inst, withoutIncremental(cfg))
	got := runCfg(t, inst, cfg)
	bitEqualResults(t, got, want, "restarted memo run vs reference")
}

// TestIncrementalTapsDisableMemo pins the observability escape hatch: a
// tapped run must execute every phase in full, so the taps see every
// broadcast even when the memo would have skipped the solve.
func TestIncrementalTapsDisableMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	inst := randomInstance(rng, 5, 7, 9)

	broadcasts := 0
	cfg := DefaultConfig()
	cfg.Gamma = 1e-300
	cfg.MaxSweeps = 8
	cfg.BroadcastTap = func(int, int, [][]float64) { broadcasts++ }

	res := runCfg(t, inst, cfg)
	if tw := res.TotalWork(); tw.Skipped != 0 {
		t.Fatalf("tapped run skipped %d solves; taps must disable the memo", tw.Skipped)
	}
	if want := res.Sweeps * inst.N; broadcasts != want {
		t.Fatalf("tap observed %d broadcasts, want %d", broadcasts, want)
	}
}
