package chaos

import (
	"errors"
	"testing"
)

// FuzzSpec hardens the -chaos flag parser: arbitrary spec strings must
// parse or error, never panic, and every accepted schedule must satisfy
// the per-target ordering discipline checkSpecConflicts enforces. The
// seed corpus deliberately includes the SpecConflictError shapes
// (duplicate trigger points, auto-generated restart collisions, and
// backwards jumps) so the replay in `go test` exercises the rejection
// paths, not just the happy parses.
func FuzzSpec(f *testing.F) {
	seeds := []string{
		// Valid specs across every directive.
		"seed=7,drop=0.3,crash=1@2+3",
		"bscrash=2+1,drop=0.3",
		"partition=0@1+2,delay=5ms,dup=0.1,reorder=0.05",
		"crash=1@2,crash=1@4,crash=2@2",
		"bsrestart=3",
		"",
		// Duplicate trigger points for one target.
		"crash=1@2,crash=1@2",
		"bscrash=2+1,bscrash=3",
		"partition=0@1+2,partition=0@1",
		// crash=1@2+3 auto-generates a restart at sweep 5, which the next
		// directive then collides with.
		"crash=1@2+3,crash=1@5",
		// Backwards jumps in protocol time.
		"crash=1@5,crash=1@2",
		"partition=2@4,crash=2@1",
		// Malformed inputs.
		"crash=1@2@3",
		"drop=1.5",
		"delay=banana",
		"crash",
		"=3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			var conflict *SpecConflictError
			if errors.As(err, &conflict) {
				if conflict.Prev == nil || conflict.Next == nil {
					t.Fatalf("conflict error without both events: %v", err)
				}
				if conflict.Error() == "" {
					t.Fatal("conflict error renders empty")
				}
			}
			return
		}
		// Every accepted schedule re-validates: the parser may not let a
		// shadowing spec through.
		if err := checkSpecConflicts(s.Events); err != nil {
			t.Fatalf("accepted schedule fails its own conflict check: %v", err)
		}
		for _, ev := range s.Events {
			if ev.String() == "" {
				t.Fatalf("event renders empty: %+v", ev)
			}
		}
	})
}

// FuzzProcSpec is the same hardening for the -proc-chaos parser: no
// panics, and accepted process schedules pass checkProcConflicts. Seeds
// cover duplicate kill/stop triggers and repeated spawn delays on one
// target, which are the *SpecConflictError paths.
func FuzzProcSpec(f *testing.F) {
	seeds := []string{
		// Valid specs.
		"kill=cell-1@2",
		"stop=cell-0@1+100ms,kill=cell-0.2@3",
		"spawndelay=cell-0@50ms,kill=cell-0@2",
		"kill=cell-0@1,kill=cell-1@1",
		"",
		// Duplicate trigger points for one target.
		"kill=cell-0@1,kill=cell-0@1",
		"stop=cell-0@1+100ms,kill=cell-0@1",
		"spawndelay=cell-0@50ms,spawndelay=cell-0@10ms",
		// Backwards jump in cell sweep time.
		"kill=cell-0@5,stop=cell-0@2+10ms",
		// Malformed inputs.
		"kill=cell-0",
		"stop=cell-0@1",
		"spawndelay=cell-0@-5ms",
		"kill=.0@1",
		"poke=cell-0@1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseProcSpec(spec)
		if err != nil {
			var conflict *SpecConflictError
			if errors.As(err, &conflict) {
				if conflict.Prev == nil || conflict.Next == nil {
					t.Fatalf("conflict error without both events: %v", err)
				}
				if conflict.Error() == "" {
					t.Fatal("conflict error renders empty")
				}
			}
			return
		}
		if err := checkProcConflicts(s.Events); err != nil {
			t.Fatalf("accepted schedule fails its own conflict check: %v", err)
		}
		for _, ev := range s.Events {
			if ev.String() == "" {
				t.Fatalf("event renders empty: %+v", ev)
			}
		}
	})
}
