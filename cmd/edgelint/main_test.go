package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsFullSuite(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"noalloc", "determinism", "floateq", "flataccess", "lockedsend", "privflow", "goleak", "atomicmix"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "nope", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, errOut.String())
	}
}

// TestRepoGatePasses runs the driver exactly as verify.sh does and
// requires a clean module.
func TestRepoGatePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is not short")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("edgelint found violations (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}

// TestGateFailsOnUnnoisedSend is the privacy acceptance criterion: a
// transport send of //edgecache:private data with no LPPM call in the
// path must fail the gate with exit 1.
func TestGateFailsOnUnnoisedSend(t *testing.T) {
	tmp := t.TempDir()
	writeTestFile(t, filepath.Join(tmp, "go.mod"), "module edgecache\n\ngo 1.22\n")
	writeTestFile(t, filepath.Join(tmp, "internal/transport/transport.go"), `// Package transport is the minimal wire layer the sink rules key on.
package transport

// Endpoint delivers payloads to peers.
type Endpoint interface {
	// Send delivers v to the named peer.
	Send(to string, v []float64) error
}
`)
	writeTestFile(t, filepath.Join(tmp, "internal/sim/push.go"), `package sim

import "edgecache/internal/transport"

// Demand returns the raw per-MU request counts.
//
//edgecache:private raw per-MU demand
func Demand() []float64 { return []float64{1} }

// Push uploads the demand without noising it first.
func Push(ep transport.Endpoint) error {
	return ep.Send("peer", Demand())
}
`)
	var out, errOut bytes.Buffer
	code := run([]string{"-C", tmp, "-no-cache", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; out:\n%s%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"privflow", "transport send"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestGateFailsOnLeakedGoroutine proves the concurrency criterion: a
// joinless goroutine in a cluster package fails the gate with exit 1.
func TestGateFailsOnLeakedGoroutine(t *testing.T) {
	tmp := t.TempDir()
	writeTestFile(t, filepath.Join(tmp, "go.mod"), "module edgecache\n\ngo 1.22\n")
	writeTestFile(t, filepath.Join(tmp, "internal/cluster/leak.go"), `// Package cluster is in goleak's process-lifetime scope.
package cluster

// Watch polls forever with nothing able to stop it.
func Watch(f func()) {
	go func() {
		for {
			f()
		}
	}()
}
`)
	var out, errOut bytes.Buffer
	code := run([]string{"-C", tmp, "-no-cache", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; out:\n%s%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"goleak", "no reachable join"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestFixIsIdempotent applies the floateq rewrite twice: the first run
// edits the file, the second must find nothing left to do and leave the
// bytes untouched.
func TestFixIsIdempotent(t *testing.T) {
	tmp := t.TempDir()
	srcPath := filepath.Join(tmp, "internal/core/x.go")
	writeTestFile(t, filepath.Join(tmp, "go.mod"), "module edgecache\n\ngo 1.22\n")
	writeTestFile(t, filepath.Join(tmp, "internal/floats/floats.go"), `// Package floats holds tolerance-based comparisons.
package floats

// Eq reports near-equality under an absolute tolerance.
func Eq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}
`)
	writeTestFile(t, srcPath, `package core

import (
	"math"
)

// Same reports float equality the naive way.
func Same(a, b float64) bool {
	return math.Abs(a) == b
}
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", tmp, "-analyzers", "floateq", "-fix", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("first -fix run: exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "applied 1 fix") {
		t.Fatalf("first -fix run applied nothing:\n%s", out.String())
	}
	fixed, err := os.ReadFile(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "floats.Eq(") {
		t.Fatalf("rewrite missing from fixed source:\n%s", fixed)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", tmp, "-analyzers", "floateq", "-fix", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("second -fix run: exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if strings.Contains(out.String(), "applied") {
		t.Fatalf("second -fix run was not a no-op:\n%s", out.String())
	}
	again, err := os.ReadFile(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, again) {
		t.Fatalf("second -fix run changed bytes:\n--- first ---\n%s\n--- second ---\n%s", fixed, again)
	}
}

func writeTestFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
