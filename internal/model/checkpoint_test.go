package model

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// testCheckpoint builds a fully-populated snapshot over testInstance(),
// exercising every optional section (best, mu, noise, health).
func testCheckpoint() *Checkpoint {
	in := testInstance()
	x := NewCachingPolicy(in)
	x.Set(0, 0, true)
	x.Set(1, 3, true)
	y := NewRoutingPolicy(in)
	y.Set(0, 0, 0, 0.5)
	y.Set(1, 1, 3, 0.25)
	agg := in.NewUFMat()
	y.AggregateInto(in, agg)
	bx := x.Clone()
	by := y.Clone()
	return &Checkpoint{
		Sweep:      3,
		Phase:      1,
		Order:      []int{1, 0},
		Caching:    x,
		Routing:    y,
		Aggregate:  agg,
		History:    []float64{250.5, 210.25, 198.125},
		PrevCost:   198.125,
		Best:       &Solution{Caching: bx, Routing: by, Cost: CostBreakdown{Edge: 10.5, Backhaul: 187.625, Total: 198.125}},
		Mu:         [][]float64{{0.25, 0.5, 0}, {1e-9}},
		Engine:     EngineJacobi,
		HasNoise:   true,
		NoiseSeed:  42,
		NoiseDraws: 1234,
		Health: []SBSHealthState{
			{ConsecMisses: 1, Misses: 3, Retries: 7},
			{Quarantined: true, ProbeSweep: 5, HoldConv: true, QuarantineSpans: 2, SkippedPhases: 4, FailedProbes: 1},
		},
		InstanceFP: in.Fingerprint(),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := testCheckpoint()
	data, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Errorf("round trip changed the snapshot:\n got %+v\nwant %+v", got, ck)
	}
	// Re-encoding the decoded snapshot must be byte-identical (canonical
	// encoding), which is what lets the fuzz target assert round-trip
	// stability on arbitrary accepted inputs.
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("re-encoding the decoded snapshot changed the bytes")
	}
}

func TestCheckpointRoundTripMinimal(t *testing.T) {
	// A snapshot captured before the first sweep boundary: +Inf prevCost,
	// no best, no mu, no health, no noise. The +Inf must survive exactly.
	in := testInstance()
	ck := &Checkpoint{
		Order:     []int{0, 1},
		Caching:   NewCachingPolicy(in),
		Routing:   NewRoutingPolicy(in),
		Aggregate: in.NewUFMat(),
		PrevCost:  math.Inf(1),
	}
	data, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.PrevCost, 1) {
		t.Errorf("PrevCost = %v, want +Inf", got.PrevCost)
	}
	if got.Best != nil || got.Mu != nil || got.Health != nil || got.HasNoise {
		t.Errorf("optional sections materialized from nothing: %+v", got)
	}
}

func TestCheckpointTruncationNeverPanics(t *testing.T) {
	data, err := testCheckpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := UnmarshalCheckpoint(data[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(data))
		}
	}
}

func TestCheckpointSingleByteCorruptionDetected(t *testing.T) {
	data, err := testCheckpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// CRC32 detects every burst error up to 32 bits, so ANY single flipped
	// byte — including in the trailer itself — must be rejected.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := UnmarshalCheckpoint(mut); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

// resealCRC recomputes the CRC trailer after a deliberate mutation, so the
// decoder's structural checks (not the checksum) are what must catch it.
func resealCRC(data []byte) {
	crc := crc32.ChecksumIEEE(data[:len(data)-4])
	data[len(data)-4] = byte(crc)
	data[len(data)-3] = byte(crc >> 8)
	data[len(data)-2] = byte(crc >> 16)
	data[len(data)-1] = byte(crc >> 24)
}

func TestCheckpointOversizedLengthRejectedBeforeAllocation(t *testing.T) {
	ck := testCheckpoint()
	data, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The health length prefix sits at a fixed distance from the trailer:
	// CRC (4) + entries (N*healthEntrySize) + the u32 itself.
	off := len(data) - 4 - len(ck.Health)*healthEntrySize - 4
	mut := append([]byte(nil), data...)
	mut[off] = 0xff
	mut[off+1] = 0xff
	mut[off+2] = 0xff
	mut[off+3] = 0xff
	resealCRC(mut)
	_, err = UnmarshalCheckpoint(mut)
	if err == nil {
		t.Fatal("4 GiB health length accepted")
	}
	if !strings.Contains(err.Error(), "overruns") {
		t.Errorf("want pre-allocation overrun error, got: %v", err)
	}
}

func TestCheckpointHeaderErrors(t *testing.T) {
	valid, err := testCheckpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := UnmarshalCheckpoint(nil); err == nil {
		t.Error("empty input accepted")
	}
	badMagic := append([]byte(nil), valid...)
	copy(badMagic, "NOTACKPT")
	resealCRC(badMagic)
	if _, err := UnmarshalCheckpoint(badMagic); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: got %v", err)
	}
	future := append([]byte(nil), valid...)
	future[len(checkpointMagic)] = 99 // version u16, little-endian low byte
	resealCRC(future)
	if _, err := UnmarshalCheckpoint(future); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: got %v", err)
	}
	zeroDim := append([]byte(nil), valid...)
	for i := 0; i < 4; i++ { // N u32 directly after magic+version
		zeroDim[len(checkpointMagic)+2+i] = 0
	}
	resealCRC(zeroDim)
	if _, err := UnmarshalCheckpoint(zeroDim); err == nil || !strings.Contains(err.Error(), "dimensions") {
		t.Errorf("zero N: got %v", err)
	}
}

func TestCheckpointPreflightErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Checkpoint)
	}{
		{"nil caching", func(ck *Checkpoint) { ck.Caching = nil }},
		{"order not permutation", func(ck *Checkpoint) { ck.Order = []int{0, 0} }},
		{"order too short", func(ck *Checkpoint) { ck.Order = []int{0} }},
		{"phase out of range", func(ck *Checkpoint) { ck.Phase = 2 }},
		{"negative sweep", func(ck *Checkpoint) { ck.Sweep = -1 }},
		{"mu length", func(ck *Checkpoint) { ck.Mu = ck.Mu[:1] }},
		{"health length", func(ck *Checkpoint) { ck.Health = ck.Health[:1] }},
		{"best nil policy", func(ck *Checkpoint) { ck.Best = &Solution{} }},
		{"aggregate shape", func(ck *Checkpoint) { ck.Aggregate = Mat{U: 1, F: 1, Data: []float64{0}} }},
	}
	for _, tt := range tests {
		ck := testCheckpoint()
		tt.mutate(ck)
		if _, err := ck.MarshalBinary(); err == nil {
			t.Errorf("%s: marshaled without error", tt.name)
		}
	}
}

func TestCheckpointValidateFingerprint(t *testing.T) {
	in := testInstance()
	ck := testCheckpoint()
	if err := ck.Validate(in); err != nil {
		t.Fatalf("matching instance rejected: %v", err)
	}
	other := testInstance()
	other.Demand[0][0] += 1
	if err := ck.Validate(other); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("mutated instance: got %v", err)
	}
	// FP zero (legacy/unknown) skips the fingerprint check but keeps the
	// shape check.
	ck.InstanceFP = 0
	if err := ck.Validate(other); err != nil {
		t.Errorf("FP 0 should skip fingerprint check: %v", err)
	}
}

func TestCheckpointStoreSaveLatestRetention(t *testing.T) {
	dir := t.TempDir()
	store, err := NewCheckpointStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for sweep := 1; sweep <= 5; sweep++ {
		ck := testCheckpoint()
		ck.Sweep = sweep
		ck.Phase = 0
		if err := store.Save(ck); err != nil {
			t.Fatal(err)
		}
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("retention kept %d files, want 3: %v", len(names), names)
	}
	got, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep != 5 {
		t.Errorf("Latest() sweep = %d, want 5", got.Sweep)
	}
}

func TestCheckpointStoreSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	store, err := NewCheckpointStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	ck := testCheckpoint()
	ck.Sweep, ck.Phase = 1, 0
	if err := store.Save(ck); err != nil {
		t.Fatal(err)
	}
	// A torn newer file (e.g. crash on a filesystem without atomic rename)
	// must not block recovery from the older good one.
	if err := os.WriteFile(filepath.Join(dir, fileName(2, 0)), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep != 1 {
		t.Errorf("Latest() sweep = %d, want the older intact snapshot", got.Sweep)
	}
	// All corrupt: the collected decode errors surface, not ErrNoCheckpoint.
	if err := os.Remove(filepath.Join(dir, fileName(1, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Latest(); err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("all-corrupt store: got %v, want decode errors", err)
	}
}

func TestCheckpointStoreEmptyAndTempCleanup(t *testing.T) {
	dir := t.TempDir()
	store, err := NewCheckpointStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("empty store: got %v, want ErrNoCheckpoint", err)
	}
	// A leftover .tmp from a crashed write is removed by the next prune and
	// never surfaces through List.
	tmp := filepath.Join(dir, fileName(9, 0)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck := testCheckpoint()
	if err := store.Save(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stale .tmp survived a save")
	}
	names, _ := store.List()
	if len(names) != 1 {
		t.Errorf("List() = %v, want exactly the saved snapshot", names)
	}
}

// TestCheckpointStoreTornTempPruneInterleave replays the messiest recovery
// directory a supervised restart can encounter: intact snapshots, a torn
// .tmp from a save the crash interrupted, and a torn final file (a rename
// that landed without its data on a filesystem with no rename atomicity) —
// then a post-restart save whose prune runs over all of it. Latest must
// return the newest intact snapshot at every step, the next save's prune
// must clear the .tmp without touching recoverable files, and retention
// must still bound the directory.
func TestCheckpointStoreTornTempPruneInterleave(t *testing.T) {
	dir := t.TempDir()
	store, err := NewCheckpointStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for sweep := 1; sweep <= 2; sweep++ {
		ck := testCheckpoint()
		ck.Sweep, ck.Phase = sweep, 0
		if err := store.Save(ck); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-save of sweep 3: the temp file exists, torn, never renamed.
	torn3 := filepath.Join(dir, fileName(3, 0)+".tmp")
	if err := os.WriteFile(torn3, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash around the rename of sweep 4: the final name exists but holds
	// garbage.
	torn4 := filepath.Join(dir, fileName(4, 0))
	if err := os.WriteFile(torn4, []byte("torn rename"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Recovery before any new save: the .tmp is invisible to Latest, the
	// torn final file is skipped, the newest intact snapshot (sweep 2) wins.
	got, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep != 2 {
		t.Errorf("Latest() over torn files = sweep %d, want 2", got.Sweep)
	}

	// The restarted run saves sweep 5; the piggy-backed prune must remove
	// the stale .tmp and enforce retention over the .ckpt files.
	ck := testCheckpoint()
	ck.Sweep, ck.Phase = 5, 0
	if err := store.Save(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn3); !os.IsNotExist(err) {
		t.Error("stale .tmp survived the post-restart save's prune")
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Errorf("retention kept %d files, want 3: %v", len(names), names)
	}
	// The torn sweep-4 file counts against retention (prune cannot decode
	// every candidate on every save), but recovery still lands on the
	// newest intact snapshot.
	got, err = store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep != 5 {
		t.Errorf("Latest() after post-restart save = sweep %d, want 5", got.Sweep)
	}
}

func TestMemCheckpointStore(t *testing.T) {
	store := NewMemCheckpointStore(2)
	for sweep := 1; sweep <= 3; sweep++ {
		ck := testCheckpoint()
		ck.Sweep = sweep
		if err := store.Save(ck); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 2 {
		t.Errorf("Len() = %d, want 2 after retention", store.Len())
	}
	got, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep != 3 {
		t.Errorf("Latest() sweep = %d, want 3", got.Sweep)
	}
	// The stored snapshot went through the codec: mutating it must not
	// touch what a later Latest returns... and it must not alias the saved
	// original either.
	all := NewMemCheckpointStore(0)
	ck := testCheckpoint()
	if err := all.Save(ck); err != nil {
		t.Fatal(err)
	}
	ck.Caching.Set(0, 1, true)
	stored, _ := all.Latest()
	if stored.Caching.Get(0, 1) {
		t.Error("stored snapshot aliases the live policy")
	}
	unlimited := NewMemCheckpointStore(0)
	for i := 0; i < 10; i++ {
		if err := unlimited.Save(testCheckpoint()); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(unlimited.All()); got != 10 {
		t.Errorf("unlimited store kept %d, want 10", got)
	}
}

// FuzzSnapshot drives the checkpoint decoder with arbitrary bytes: it must
// never panic, and any input it accepts must re-encode byte-identically
// (canonical encoding). Because the CRC gate rejects almost all random
// mutations, the target also retries each input with a resealed trailer so
// the fuzzer can reach the structural decoding paths.
func FuzzSnapshot(f *testing.F) {
	if valid, err := testCheckpoint().MarshalBinary(); err == nil {
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tryDecode(t, data)
		if len(data) >= len(checkpointMagic)+6 {
			fixed := append([]byte(nil), data...)
			resealCRC(fixed)
			tryDecode(t, fixed)
		}
	})
}

func tryDecode(t *testing.T, data []byte) {
	t.Helper()
	ck, err := UnmarshalCheckpoint(data)
	if err != nil {
		return // rejected is fine; panicking is not
	}
	out, err := ck.MarshalBinary()
	if err != nil {
		t.Fatalf("accepted snapshot failed to re-encode: %v", err)
	}
	// Re-encoding always emits the current format version. Inputs already
	// at the current version must round-trip byte-identically (canonical
	// encoding); accepted legacy versions migrate forward instead, so for
	// them the re-encoding must decode back to the same snapshot.
	version := uint16(data[len(checkpointMagic)]) | uint16(data[len(checkpointMagic)+1])<<8
	if version == checkpointVersion {
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted snapshot re-encoded differently (%d vs %d bytes)", len(out), len(data))
		}
		return
	}
	again, err := UnmarshalCheckpoint(out)
	if err != nil {
		t.Fatalf("migrated v%d snapshot failed to decode: %v", version, err)
	}
	if !reflect.DeepEqual(ck, again) {
		t.Fatalf("migrating a v%d snapshot changed its contents", version)
	}
}

// engineByteOffset is where the version-2 engine-kind byte sits: after
// magic, version, the three dims, the fingerprint and the sweep/phase
// cursor.
const engineByteOffset = len(checkpointMagic) + 2 + 3*4 + 8 + 4 + 4

// legacyV1Encode re-encodes ck in the version-1 layout (no engine byte) by
// splicing the byte out of the current encoding and resealing the CRC. The
// snapshot must be a Gauss-Seidel one — version 1 could express nothing
// else.
func legacyV1Encode(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	if ck.Engine != EngineGaussSeidel {
		t.Fatalf("version 1 cannot encode engine %v", ck.Engine)
	}
	data, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), data[:engineByteOffset]...)
	v1 = append(v1, data[engineByteOffset+1:]...)
	v1[len(checkpointMagic)] = 1
	v1[len(checkpointMagic)+1] = 0
	resealCRC(v1)
	return v1
}

func TestCheckpointDecodeV1Legacy(t *testing.T) {
	ck := testCheckpoint()
	ck.Engine = EngineGaussSeidel
	v1 := legacyV1Encode(t, ck)
	got, err := UnmarshalCheckpoint(v1)
	if err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	if got.Engine != EngineGaussSeidel {
		t.Errorf("version-1 snapshot decoded engine %v, want gauss-seidel", got.Engine)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Errorf("version-1 decode changed the snapshot:\n got %+v\nwant %+v", got, ck)
	}
	// Migration path: re-encoding emits version 2, which must round-trip.
	migrated, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	again, err := UnmarshalCheckpoint(migrated)
	if err != nil {
		t.Fatalf("migrated snapshot rejected: %v", err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Error("migrating the v1 snapshot to v2 changed its contents")
	}
}

func TestCheckpointRejectsUnknownEngine(t *testing.T) {
	data, err := testCheckpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	mut[engineByteOffset] = 0x7f
	resealCRC(mut)
	if _, err := UnmarshalCheckpoint(mut); err == nil || !strings.Contains(err.Error(), "engine") {
		t.Errorf("unknown engine kind: got %v", err)
	}
}

// The snapshot fuzz target keeps a committed seed corpus under
// testdata/fuzz/FuzzSnapshot so plain `go test` replays it. The encoding is
// produced by the codec itself, so the files are regenerated, not
// hand-edited:
//
//	EDGECACHE_REGEN_CORPUS=1 go test -run TestRegenCorpus ./internal/model
func TestRegenCorpus(t *testing.T) {
	if os.Getenv("EDGECACHE_REGEN_CORPUS") == "" {
		t.Skip("set EDGECACHE_REGEN_CORPUS=1 to rewrite testdata/fuzz seed files")
	}
	valid, err := testCheckpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	writeCorpusEntry(t, "FuzzSnapshot", "seed-valid", valid)
	writeCorpusEntry(t, "FuzzSnapshot", "seed-truncated", valid[:len(valid)-9])
	writeCorpusEntry(t, "FuzzSnapshot", "seed-bad-magic", append([]byte("NOTACKPT"), valid[8:]...))

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	writeCorpusEntry(t, "FuzzSnapshot", "seed-flipped-byte", flipped)

	oversized := append([]byte(nil), valid...)
	off := len(oversized) - 4 - 2*healthEntrySize - 4
	oversized[off], oversized[off+1], oversized[off+2], oversized[off+3] = 0xff, 0xff, 0xff, 0xff
	resealCRC(oversized)
	writeCorpusEntry(t, "FuzzSnapshot", "seed-oversized-health-len", oversized)

	legacy := testCheckpoint()
	legacy.Engine = EngineGaussSeidel
	writeCorpusEntry(t, "FuzzSnapshot", "seed-v1-legacy", legacyV1Encode(t, legacy))
}

// writeCorpusEntry writes one []byte seed in the `go test fuzz v1` format
// (same convention as internal/transport).
func writeCorpusEntry(t *testing.T, fuzzName, seedName string, data []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
	if err := os.WriteFile(filepath.Join(dir, seedName), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
