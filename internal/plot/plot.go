// Package plot renders ASCII line and bar charts. The repository is
// dependency-free and offline, so the figure harness uses these to give
// the paper's figures a visual shape directly in the terminal
// (cmd/benchfig -plot); CSV output remains the machine-readable path.
package plot

import (
	"fmt"
	"math"
	"strings"

	"edgecache/internal/floats"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Config sets chart geometry and labels.
type Config struct {
	// Width and Height are the plot-area dimensions in characters
	// (defaults 64×16; minimums 16×4).
	Width, Height int
	// Title is printed above the chart; YLabel to the left of the axis
	// annotations.
	Title  string
	YLabel string
}

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 64
	}
	if c.Height == 0 {
		c.Height = 16
	}
	if c.Width < 16 {
		c.Width = 16
	}
	if c.Height < 4 {
		c.Height = 4
	}
	return c
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Lines renders the series into one chart with shared axes.
func Lines(cfg Config, series ...Series) (string, error) {
	cfg = cfg.withDefaults()
	if len(series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	if len(series) > len(markers) {
		return "", fmt.Errorf("plot: at most %d series, got %d", len(markers), len(series))
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for i, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %d has %d x values and %d y values", i, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %d is empty", i)
		}
		for j := range s.X {
			if math.IsNaN(s.X[j]) || math.IsNaN(s.Y[j]) || math.IsInf(s.X[j], 0) || math.IsInf(s.Y[j], 0) {
				return "", fmt.Errorf("plot: series %d point %d is not finite", i, j)
			}
			xMin, xMax = math.Min(xMin, s.X[j]), math.Max(xMax, s.X[j])
			yMin, yMax = math.Min(yMin, s.Y[j]), math.Max(yMax, s.Y[j])
		}
	}
	if floats.Eq(xMax, xMin) {
		xMax = xMin + 1
	}
	if floats.Eq(yMax, yMin) {
		yMax = yMin + 1
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		mark := markers[si]
		for j := range s.X {
			col := int(math.Round((s.X[j] - xMin) / (xMax - xMin) * float64(cfg.Width-1)))
			row := int(math.Round((yMax - s.Y[j]) / (yMax - yMin) * float64(cfg.Height-1)))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yTop := formatTick(yMax)
	yBottom := formatTick(yMin)
	pad := len(yTop)
	if len(yBottom) > pad {
		pad = len(yBottom)
	}
	for r := 0; r < cfg.Height; r++ {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = leftPad(yTop, pad)
		case cfg.Height - 1:
			label = leftPad(yBottom, pad)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", cfg.Width))
	xLeft := formatTick(xMin)
	xRight := formatTick(xMax)
	gap := cfg.Width - len(xLeft) - len(xRight)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad), xLeft, strings.Repeat(" ", gap), xRight)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si], s.Name))
	}
	fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, "   "))
	if cfg.YLabel != "" {
		fmt.Fprintf(&b, "y: %s\n", cfg.YLabel)
	}
	return b.String(), nil
}

// Bars renders labeled horizontal bars scaled to the maximum value.
func Bars(cfg Config, labels []string, values []float64) (string, error) {
	cfg = cfg.withDefaults()
	if len(labels) == 0 || len(labels) != len(values) {
		return "", fmt.Errorf("plot: need equal non-empty labels (%d) and values (%d)", len(labels), len(values))
	}
	maxVal := math.Inf(-1)
	labelWidth := 0
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return "", fmt.Errorf("plot: values must be finite and non-negative, got %v", v)
		}
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	for i, v := range values {
		bar := int(math.Round(v / maxVal * float64(cfg.Width)))
		fmt.Fprintf(&b, "%s |%s %s\n", leftPad(labels[i], labelWidth),
			strings.Repeat("#", bar), formatTick(v))
	}
	return b.String(), nil
}

func leftPad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", width-len(s)) + s
}

func formatTick(v float64) string {
	return fmt.Sprintf("%.4g", v)
}
