// CDN federation: the paper's motivating deployment (§III) — a content
// provider coordinates small base stations owned by different wireless
// operators. The operators will not share their routing policies with each
// other, so each SBS runs as its own agent, talks to the BS coordinator
// over TCP, and protects its uploads with LPPM before they leave the
// premises.
//
//	go run ./examples/cdnfederation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/dp"
	"edgecache/internal/experiments"
	"edgecache/internal/model"
	"edgecache/internal/sim"
	"edgecache/internal/transport"
)

func main() {
	// One trending-video scenario: 3 operators' SBSs, 30 MU locations.
	sc := experiments.DefaultScenario()
	inst, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	operators := []string{"operator-alpha", "operator-beta", "operator-gamma"}

	// The content provider's coordinator endpoint.
	bsEp, err := transport.NewTCPEndpoint("content-provider", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer bsEp.Close()

	// One TCP endpoint and one agent per operator, each with its own noise
	// source and a shared privacy accountant for the report at the end.
	var acct dp.Accountant
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for n, name := range operators {
		ep, err := transport.NewTCPEndpoint(name, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ep.Close()
		bsEp.AddPeer(name, ep.Addr())
		ep.AddPeer("content-provider", bsEp.Addr())

		privacy := &core.PrivacyConfig{
			Epsilon:    0.5,
			Delta:      0.4,
			Rng:        rand.New(rand.NewSource(int64(1000 + n))),
			Accountant: &acct,
		}
		agent, err := sim.NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), privacy, ep, "content-provider")
		if err != nil {
			log.Fatal(err)
		}
		go func(op string) {
			if err := agent.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("%s agent: %v", op, err)
			}
		}(name)
	}

	// Under LPPM the γ stop rule rarely fires (noise is redrawn every
	// sweep), so bound the sweeps explicitly; the cost trajectory is flat
	// well before twelve (see the E8 convergence experiment).
	bs, err := sim.NewBSAgent(inst, sim.BSConfig{PhaseTimeout: 10 * time.Second, MaxSweeps: 12}, bsEp, operators)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("coordinating", len(operators), "operators over TCP with LPPM(ε=0.5, δ=0.4)…")
	res, err := bs.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconverged=%v after %d sweeps\n", res.Converged, res.Sweeps)
	fmt.Printf("total serving cost %.0f (backhaul ceiling %.0f, %.1f%% served at the edge)\n",
		res.Solution.Cost.Total, inst.MaxCost(), 100*model.ServedFraction(inst, res.Solution.Routing))
	for n, name := range operators {
		fmt.Printf("%s: caches %d contents, load %.0f/%.0f\n",
			name, res.Solution.Caching.Count(n),
			res.Solution.Routing.Load(inst, n), inst.Bandwidth[n])
	}
	fmt.Printf("\nprivacy ledger (parallel composition across operators):\n%s\n", acct.String())
}
