package model

import "fmt"

// CachingPolicy holds the binary caching decisions x_nf: Cache[n][f] reports
// whether SBS n stores content f.
type CachingPolicy struct {
	Cache [][]bool // N × F
}

// NewCachingPolicy returns an all-empty caching policy sized for in.
func NewCachingPolicy(in *Instance) *CachingPolicy {
	c := make([][]bool, in.N)
	for n := range c {
		c[n] = make([]bool, in.F)
	}
	return &CachingPolicy{Cache: c}
}

// Clone returns a deep copy of the policy.
func (p *CachingPolicy) Clone() *CachingPolicy {
	return &CachingPolicy{Cache: cloneBoolMatrix(p.Cache)}
}

// Count returns the number of contents cached at SBS n.
func (p *CachingPolicy) Count(n int) int {
	count := 0
	for _, cached := range p.Cache[n] {
		if cached {
			count++
		}
	}
	return count
}

// Contents returns the cached contents of SBS n in increasing order.
func (p *CachingPolicy) Contents(n int) []int {
	var out []int
	for f, cached := range p.Cache[n] {
		if cached {
			out = append(out, f)
		}
	}
	return out
}

// RoutingPolicy holds the fractional routing decisions y_nuf ∈ [0,1]:
// Route[n][u][f] is the fraction of MU group u's demand for content f that
// SBS n serves.
type RoutingPolicy struct {
	Route [][][]float64 // N × U × F
}

// NewRoutingPolicy returns an all-zero routing policy sized for in.
func NewRoutingPolicy(in *Instance) *RoutingPolicy {
	r := make([][][]float64, in.N)
	for n := range r {
		r[n] = in.NewZeroMatrix()
	}
	return &RoutingPolicy{Route: r}
}

// Clone returns a deep copy of the policy.
func (p *RoutingPolicy) Clone() *RoutingPolicy {
	r := make([][][]float64, len(p.Route))
	for n := range p.Route {
		r[n] = cloneMatrix(p.Route[n])
	}
	return &RoutingPolicy{Route: r}
}

// SetSBS replaces SBS n's routing block with a copy of y (U×F).
func (p *RoutingPolicy) SetSBS(n int, y [][]float64) {
	p.Route[n] = cloneMatrix(y)
}

// SBS returns SBS n's routing block without copying. Callers must not
// mutate the result unless they own the policy.
func (p *RoutingPolicy) SBS(n int) [][]float64 { return p.Route[n] }

// Aggregate returns Σ_n y_nuf·l_nu as a U×F matrix: the total fraction of
// each (u,f) demand served at the edge. This is the quantity the BS
// assembles and broadcasts in the distributed algorithm.
func (p *RoutingPolicy) Aggregate(in *Instance) [][]float64 {
	agg := in.NewZeroMatrix()
	for n := 0; n < in.N; n++ {
		for u := 0; u < in.U; u++ {
			if !in.Links[n][u] {
				continue
			}
			for f := 0; f < in.F; f++ {
				agg[u][f] += p.Route[n][u][f]
			}
		}
	}
	return agg
}

// AggregateExcept returns the aggregate routing y_{-n} (eq. 14 of the
// paper): the summed routing of every SBS other than n, masked by links.
func (p *RoutingPolicy) AggregateExcept(in *Instance, n int) [][]float64 {
	agg := in.NewZeroMatrix()
	for i := 0; i < in.N; i++ {
		if i == n {
			continue
		}
		for u := 0; u < in.U; u++ {
			if !in.Links[i][u] {
				continue
			}
			for f := 0; f < in.F; f++ {
				agg[u][f] += p.Route[i][u][f]
			}
		}
	}
	return agg
}

// Load returns Σ_u Σ_f y_nuf·λ_uf, the bandwidth consumed at SBS n (left
// side of eq. 3).
func (p *RoutingPolicy) Load(in *Instance, n int) float64 {
	var load float64
	for u := 0; u < in.U; u++ {
		for f := 0; f < in.F; f++ {
			load += p.Route[n][u][f] * in.Demand[u][f]
		}
	}
	return load
}

// Solution bundles one pair of caching and routing policies together with
// the serving cost it achieves.
type Solution struct {
	Caching *CachingPolicy
	Routing *RoutingPolicy
	Cost    CostBreakdown
}

// String summarizes the solution in one line.
func (s *Solution) String() string {
	return fmt.Sprintf("cost=%.2f (edge=%.2f backhaul=%.2f)", s.Cost.Total, s.Cost.Edge, s.Cost.Backhaul)
}
