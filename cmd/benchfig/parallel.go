package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"edgecache/internal/core"
)

// ParallelScale records the instance size of the scaling benchmark.
type ParallelScale struct {
	N      int `json:"n"`
	U      int `json:"u"`
	F      int `json:"f"`
	Sweeps int `json:"sweeps"`
}

// ParallelWorkerResult is one worker-count measurement of the parallel
// engine, with its speedup over the sequential reference Jacobi engine
// measured in the same run. The speedup ratio — not the machine-dependent
// ns/op — is what the CI baseline comparison checks.
type ParallelWorkerResult struct {
	Workers int `json:"workers"`
	BenchResult
	Speedup float64 `json:"speedup_vs_sequential"`
}

// ParallelBenchReport is the JSON document -bench-parallel writes
// (BENCH_parallel.json in the repository root is the committed baseline).
type ParallelBenchReport struct {
	Description string                 `json:"description"`
	NumCPU      int                    `json:"num_cpu"`
	GoMaxProcs  int                    `json:"gomaxprocs"`
	HostNote    string                 `json:"host_note,omitempty"`
	Scale       ParallelScale          `json:"scale"`
	Sequential  BenchResult            `json:"sequential_jacobi"`
	Parallel    []ParallelWorkerResult `json:"parallel_jacobi"`
}

// parseWorkers parses the -bench-workers list ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		w, err := strconv.Atoi(p)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("invalid worker count %q", p)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts given")
	}
	return out, nil
}

// measureRun benchmarks coord.Run. The coordinator is configured with a
// sub-γ threshold so every run exhausts the sweep budget: fixed work/op.
func measureRun(coord *core.Coordinator) (testing.BenchmarkResult, error) {
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coord.Run(); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	return res, runErr
}

// runParallelBench measures the parallel Jacobi engine against the
// sequential reference at each requested worker count, writes the report
// to path ("-" for stdout), and — when baseline names a committed report —
// fails if the speedup trajectory or the allocation behaviour regressed.
func runParallelBench(path, baseline, workersList string) error {
	workers, err := parseWorkers(workersList)
	if err != nil {
		return err
	}
	// The CI smoke scale: N=50 SBSs at U=200, F=200, one full Jacobi round
	// per op. Big enough that the solve fan-out dominates the barriers,
	// small enough for a per-commit gate.
	scale := ParallelScale{N: 50, U: 200, F: 200, Sweeps: 1}
	inst := benchInstance(scale.N, scale.U, scale.F)

	newCoord := func(engine core.EngineKind, w int) (*core.Coordinator, error) {
		cfg := core.DefaultConfig()
		cfg.MaxSweeps = scale.Sweeps
		cfg.Gamma = 1e-300 // exhaust the sweep budget: fixed work per op
		cfg.Engine = engine
		cfg.Workers = w
		return core.NewCoordinator(inst, cfg)
	}

	// Determinism smoke before timing anything: the parallel engine at
	// workers=1 must reproduce the reference trajectory bit-for-bit.
	seq, err := newCoord(core.EngineJacobi, 0)
	if err != nil {
		return err
	}
	seqRes, err := seq.Run()
	if err != nil {
		return err
	}
	par1, err := newCoord(core.EngineParallelJacobi, 1)
	if err != nil {
		return err
	}
	par1Res, err := par1.Run()
	par1.Close()
	if err != nil {
		return err
	}
	if len(seqRes.History) != len(par1Res.History) {
		return fmt.Errorf("parallel workers=1 ran %d sweeps, reference ran %d", len(par1Res.History), len(seqRes.History))
	}
	for i := range seqRes.History {
		if math.Float64bits(seqRes.History[i]) != math.Float64bits(par1Res.History[i]) {
			return fmt.Errorf("parallel workers=1 diverged from the reference at sweep %d: %v != %v",
				i, par1Res.History[i], seqRes.History[i])
		}
	}

	report := ParallelBenchReport{
		Description: fmt.Sprintf("Parallel Jacobi engine scaling: one full round at N=%d/U=%d/F=%d "+
			"(instance distribution matches internal/core benchScale, seed 99) versus the sequential "+
			"reference Jacobi engine. ns/op is machine-dependent; the speedup ratios and allocs/op are "+
			"the regression contract (the CI smoke compares those, not wall-clock). "+
			"Generated with `go run ./cmd/benchfig -bench-parallel BENCH_parallel.json`.",
			scale.N, scale.U, scale.F),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}
	if report.GoMaxProcs == 1 {
		report.HostNote = "measured on a single-core host: GOMAXPROCS=1 serializes the pool, so the " +
			"speedup ratios bound the pool's overhead (expected slightly below 1x) rather than its " +
			"scaling; near-linear scaling requires a multi-core host"
	}

	fmt.Fprintf(os.Stderr, "benchfig: measuring sequential jacobi (N=%d U=%d F=%d) ...\n", scale.N, scale.U, scale.F)
	res, err := measureRun(seq)
	if err != nil {
		return err
	}
	report.Sequential = toResult("JacobiRound/sequential", res)

	for _, w := range workers {
		fmt.Fprintf(os.Stderr, "benchfig: measuring parallel jacobi, workers=%d ...\n", w)
		coord, err := newCoord(core.EngineParallelJacobi, w)
		if err != nil {
			return err
		}
		res, err := measureRun(coord)
		coord.Close()
		if err != nil {
			return err
		}
		wr := ParallelWorkerResult{
			Workers:     w,
			BenchResult: toResult(fmt.Sprintf("JacobiRound/parallel_w%d", w), res),
		}
		wr.Speedup = report.Sequential.NsPerOp / wr.NsPerOp
		report.Parallel = append(report.Parallel, wr)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchfig: wrote %s\n", path)
	}

	if baseline != "" {
		return compareParallelBaseline(report, baseline)
	}
	return nil
}

// compareParallelBaseline fails when the fresh report regresses more than
// 20% against the committed baseline. Wall-clock ns/op is not comparable
// across machines, so the contract is the within-run speedup ratio (the
// parallel engine versus the sequential engine measured on the same host
// moments apart) plus the allocation counts, which are deterministic.
func compareParallelBaseline(report ParallelBenchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base ParallelBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	const tolerance = 0.20
	baseByWorkers := make(map[int]ParallelWorkerResult, len(base.Parallel))
	for _, b := range base.Parallel {
		baseByWorkers[b.Workers] = b
	}
	var failures []string
	for _, got := range report.Parallel {
		want, ok := baseByWorkers[got.Workers]
		if !ok {
			continue // baseline predates this worker count
		}
		fmt.Fprintf(os.Stderr, "benchfig: workers=%d speedup %.2fx (baseline %.2fx), allocs/op %d (baseline %d)\n",
			got.Workers, got.Speedup, want.Speedup, got.AllocsPerOp, want.AllocsPerOp)
		if want.Speedup > 0 && got.Speedup < (1-tolerance)*want.Speedup {
			failures = append(failures, fmt.Sprintf(
				"workers=%d: speedup %.2fx regressed >%d%% below baseline %.2fx",
				got.Workers, got.Speedup, int(tolerance*100), want.Speedup))
		}
		if float64(got.AllocsPerOp) > (1+tolerance)*float64(want.AllocsPerOp)+1 {
			failures = append(failures, fmt.Sprintf(
				"workers=%d: %d allocs/op versus baseline %d — the steady-state zero-alloc contract leaked",
				got.Workers, got.AllocsPerOp, want.AllocsPerOp))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("parallel bench regressed vs %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchfig: no regression vs %s\n", path)
	return nil
}
