package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism keeps the solver and protocol layers replayable: the chaos
// harness (internal/chaos) asserts exact schedules against seeded runs, so
// non-test code in the scoped packages may not read the wall clock
// (time.Now, time.Since), draw from the global math/rand source, or
// iterate a map (iteration order is randomized per run). Randomness flows
// through injected, seeded *rand.Rand values and timestamps through the
// caller; map contents are iterated via sorted key slices.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clock, global math/rand, or map iteration in protocol/solver code",
	Run:  runDeterminism,
}

// determinismPkgs are the import paths (prefix match on path segments)
// whose non-test code must be deterministic. The fixtures entry exists so
// the analyzer's own test suite runs through the identical scope check.
var determinismPkgs = []string{
	"edgecache/internal/core",
	"edgecache/internal/sim",
	"edgecache/internal/chaos",
	// The cluster supervisor replays chaos schedules keyed to protocol
	// time, and fault-free cluster runs must be bit-identical to the
	// in-process reference — the same replayability contract as the
	// solver. (Timer-based liveness via time.AfterFunc/NewTicker stays
	// legal; only wall-clock reads, global rand, and map iteration are
	// not.)
	"edgecache/internal/cluster",
	"edgecache/internal/lint/fixtures/determsrc",
}

// determinismFiles extends the scope to single files in otherwise exempt
// packages: the reliable-transport retry loop must be deterministic under
// seeded jitter even though the rest of the transport layer touches real
// sockets and timers.
var determinismFiles = map[string]map[string]bool{
	"edgecache/internal/transport": {"reliable.go": true},
}

// bannedGlobalRand lists the math/rand (and math/rand/v2) package-level
// functions backed by the shared global source.
var bannedGlobalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

func determinismInScope(pkgPath, filename string) bool {
	for _, p := range determinismPkgs {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	if files := determinismFiles[pkgPath]; files != nil {
		return files[filepath.Base(filename)]
	}
	return false
}

func runDeterminism(pass *Pass) {
	pkg := pass.Pkg
	for i, file := range pkg.Files {
		if !determinismInScope(pkg.Path, pkg.Filenames[i]) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				sel, ok := node.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					return true // methods (e.g. *rand.Rand, time.Timer) are fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
						pass.Reportf(node.Pos(),
							"time.%s breaks run replayability; inject a clock (or take the timestamp at the caller)", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if bannedGlobalRand[fn.Name()] {
						pass.Reportf(node.Pos(),
							"global rand.%s is seeded per-process; draw from an injected seeded *rand.Rand instead", fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := pkg.Info.Types[node.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(node.Pos(),
						"map iteration order is nondeterministic; collect and sort the keys first")
				}
			}
			return true
		})
	}
}
