// Protocol observability: both agents used to swallow malformed messages
// and timeouts silently (bare continue / return nil), which made fault
// handling untestable. An optional EventHook now observes every anomaly
// with a kind and reason; EventCounter is a ready-made thread-safe hook
// for tests and the chaos harness.
package sim

import (
	"fmt"
	"sync"
)

// EventKind classifies a protocol anomaly or fault-handling action.
type EventKind int

// Protocol event kinds.
const (
	// EventBadAnnounce: an SBS received a MsgPhaseStart it could not
	// decode or whose aggregate had ragged shape; the phase is skipped.
	EventBadAnnounce EventKind = iota + 1
	// EventUnsolvable: the announced aggregate had valid encoding but the
	// sub-problem rejected it (wrong dimensions); the phase is skipped.
	EventUnsolvable
	// EventBadUpload: the BS received an upload it could not decode; it
	// is treated as missing.
	EventBadUpload
	// EventMalformedUpload: the upload decoded but failed shape
	// validation in applyUpload; the previous policy stays in force.
	EventMalformedUpload
	// EventUploadTimeout: a full phase window elapsed with no usable
	// upload from the SBS.
	EventUploadTimeout
	// EventAnnounceRetry: the BS retransmitted MsgPhaseStart within the
	// phase window.
	EventAnnounceRetry
	// EventQuarantine: the BS quarantined an SBS after consecutive
	// misses (or re-quarantined it after a failed probe).
	EventQuarantine
	// EventProbeFailed: a cheap rejoin probe went unanswered.
	EventProbeFailed
	// EventRejoin: a quarantined SBS answered its rejoin probe and is
	// healthy again.
	EventRejoin
	// EventSendFailed: a protocol send returned an error (the protocol
	// continues; the timeout machinery owns recovery).
	EventSendFailed
	// EventStateSync: an SBS received a MsgStateSync from a resumed BS and
	// rehydrated its workspace to the carried resume point.
	EventStateSync
	// EventStateSyncMiss: a resumed BS got no MsgStateAck from the SBS
	// within the handshake window; the protocol continues (the phase
	// timeout machinery owns recovery), but the miss is observable.
	EventStateSyncMiss
	// EventStaleAnnounce: an SBS dropped a MsgPhaseStart older than its
	// last state-sync point — a pre-crash ghost still in flight.
	EventStaleAnnounce
	// EventReplayedUpload: an SBS answered a duplicated announce from its
	// reply cache instead of re-solving (and, under LPPM, instead of
	// drawing fresh noise for the same protocol point).
	EventReplayedUpload
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventBadAnnounce:
		return "bad-announce"
	case EventUnsolvable:
		return "unsolvable"
	case EventBadUpload:
		return "bad-upload"
	case EventMalformedUpload:
		return "malformed-upload"
	case EventUploadTimeout:
		return "upload-timeout"
	case EventAnnounceRetry:
		return "announce-retry"
	case EventQuarantine:
		return "quarantine"
	case EventProbeFailed:
		return "probe-failed"
	case EventRejoin:
		return "rejoin"
	case EventSendFailed:
		return "send-failed"
	case EventStateSync:
		return "state-sync"
	case EventStateSyncMiss:
		return "state-sync-miss"
	case EventStaleAnnounce:
		return "stale-announce"
	case EventReplayedUpload:
		return "replayed-upload"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observed protocol anomaly or fault-handling action.
type Event struct {
	Kind EventKind
	// SBS is the index of the SBS concerned (-1 when unknown, e.g. an
	// upload from an unexpected peer).
	SBS int
	// Sweep and Phase locate the event in protocol time.
	Sweep, Phase int
	// Err carries the reason when the event stems from an error.
	Err error
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%s sbs=%d sweep=%d phase=%d", e.Kind, e.SBS, e.Sweep, e.Phase)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// EventHook observes protocol events. Hooks run inline on the protocol
// path and must be fast and must not block; they may be called from
// multiple goroutines (BS and SBS agents).
type EventHook func(Event)

// EventCounter is a thread-safe EventHook implementation that counts
// events by kind — the assertion surface for the fault tests.
type EventCounter struct {
	mu     sync.Mutex
	counts map[EventKind]int
	events []Event
}

// Hook returns the EventHook that feeds this counter.
func (c *EventCounter) Hook() EventHook {
	return func(ev Event) {
		c.mu.Lock()
		if c.counts == nil {
			c.counts = make(map[EventKind]int)
		}
		c.counts[ev.Kind]++
		c.events = append(c.events, ev)
		c.mu.Unlock()
	}
}

// Count returns how many events of the given kind were observed.
func (c *EventCounter) Count(k EventKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// Total returns the number of observed events across all kinds.
func (c *EventCounter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Events returns a copy of the observed events in order.
func (c *EventCounter) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// MultiHook fans one event out to several hooks (nil entries are skipped).
func MultiHook(hooks ...EventHook) EventHook {
	return func(ev Event) {
		for _, h := range hooks {
			if h != nil {
				h(ev)
			}
		}
	}
}
