#!/bin/sh
# verify.sh — the repository's tier-1 gate.
#
# Runs the static checks plus the race-enabled test suites of the packages
# that carry the concurrency- and hot-path-sensitive code:
#
#   internal/model     flat tensor substrate, packed policies (zero-alloc)
#   internal/core      DUA sweep, zero-alloc subproblem workspaces
#   internal/sim       distributed BS/SBS protocol (goroutines + transport)
#   internal/transport in-process message passing
#   internal/chaos     fault schedules against the protocol (short mode)
#   cmd/...            CLI drivers, including the edgelint self-check
#
# The edgelint gate runs the repository's custom analyzers (internal/lint):
# noalloc, determinism, floateq, flataccess, lockedsend, plus the dataflow
# tier — privflow (//edgecache:private data must pass an LPPM sanitizer
# before transport/checkpoint/log egress), goleak (goroutines in
# cluster/parallel code need a reachable join; tickers/timers need a Stop
# path), and atomicmix (no plain access to sync/atomic locations). It runs
# before the race suites so invariant violations fail fast, and it must
# report zero findings — suppressions need an //edgecache:lint-ignore
# <analyzer> <reason> directive with a written reason. Results are cached
# per package on content hashes (see cmd/edgelint), so repeat runs cost
# one `go list`.
#
# CI and pre-merge checks call this script; it exits non-zero on the first
# failure. The full (non-race) suite is `go test ./...`.
set -eu

cd "$(dirname "$0")"

echo "verify: go vet ./..."
go vet ./...

echo "verify: edgelint ./..."
go run ./cmd/edgelint ./...

# Crash-recovery gate: the checkpoint/resume paths (bit-identical resume,
# snapshot codec hardening, BS crash recovery, state-sync handshake) run
# first under -race so a regression in the headline durability guarantee
# fails fast, before the broad suites.
echo "verify: crash-resume recovery gate (-race)"
go test -race -run 'Resume|Checkpoint|BSCrash|StateSync|ReplyCache|NoiseSource' \
	./internal/model ./internal/core ./internal/sim ./internal/chaos

# Parallel sweep-engine gate: the worker pool's determinism and crash
# recovery run under -race before the broad suites — a data race in the
# pool invalidates the bit-identity guarantee the engines are built on.
# TestIncremental covers the dirty-set memo: bit-identity against the
# memo-disabled reference (±LPPM, across resume) and the solves-skipped>0
# gate on the standard N=20 scenario.
echo "verify: parallel sweep-engine gate (-race)"
go test -race -run 'TestParallel|TestEngine|TestJacobi|TestRunJacobi|TestIncremental' ./internal/core

echo "verify: go test -race ./internal/core/... ./internal/sim/... ./internal/transport/..."
go test -race ./internal/core/... ./internal/sim/... ./internal/transport/...

echo "verify: go test -race ./internal/model/... ./cmd/..."
go test -race ./internal/model/... ./cmd/...

echo "verify: go test -race -short ./internal/chaos/..."
go test -race -short ./internal/chaos/...

echo "verify: go test -race -short ./internal/soak/... ./internal/leak/..."
go test -race -short ./internal/soak/... ./internal/leak/...

# Randomized chaos soak gate: 25 seeded episodes of generated fault
# schedules (plus per-episode disk fault-injection drills) under -race.
# On failure it writes a ddmin-minimized repro file; replay it with
# `edgesim -soak -soak-repro <file>`. The nightly job runs a much larger
# budget including multi-process cluster episodes.
echo "verify: randomized chaos soak gate (-race, 25 episodes)"
go run -race ./cmd/edgesim -soak -soak-episodes=25 -soak-seed=1

# Cluster supervision gate: real OS processes over TCP under -race — the
# fault-free 10x10 bit-identity run, SIGKILL/SIGSTOP recovery from
# checkpoint, SBS escalation and graceful degradation. These spawn dozens
# of processes; they run last so cheaper failures surface first.
echo "verify: cluster supervision gate (-race)"
go test -race -timeout 600s ./internal/cluster/...

echo "verify: OK"
