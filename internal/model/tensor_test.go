package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	if m.U != 2 || m.F != 3 || len(m.Data) != 6 {
		t.Fatalf("NewMat(2,3) = %dx%d with %d entries", m.U, m.F, len(m.Data))
	}
	m.Set(1, 2, 0.5)
	if m.At(1, 2) != 0.5 || m.Data[1*3+2] != 0.5 {
		t.Fatal("Set/At do not address Data[u*F+f]")
	}
	m.Add(1, 2, 0.25)
	if m.At(1, 2) != 0.75 {
		t.Fatalf("Add: got %v, want 0.75", m.At(1, 2))
	}
	// Row is a view: mutations are visible through the matrix.
	m.Row(0)[1] = 7
	if m.At(0, 1) != 7 {
		t.Fatal("Row is not a view of the backing array")
	}
	// Rows materializes fresh storage.
	rows := m.Rows()
	rows[0][1] = -1
	if m.At(0, 1) != 7 {
		t.Fatal("Rows shares storage with the matrix")
	}
	cl := m.Clone()
	cl.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Fatal("Clone shares storage")
	}
	if !m.ShapeEquals(cl) || m.ShapeEquals(NewMat(3, 2)) {
		t.Fatal("ShapeEquals wrong")
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left nonzero entries")
		}
	}
}

func TestMatFromRows(t *testing.T) {
	m, err := MatFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("MatFromRows misplaced entries")
	}
	if _, err := MatFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows: want error")
	}
	// Empty input yields a zero-shape matrix (callers dims-check at the
	// boundary), not an error.
	empty, err := MatFromRows(nil)
	if err != nil || empty.U != 0 || empty.F != 0 {
		t.Errorf("MatFromRows(nil) = %dx%d, %v; want 0x0, nil", empty.U, empty.F, err)
	}
}

func TestMatCopyFromPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched shape did not panic")
		}
	}()
	NewMat(2, 3).CopyFrom(NewMat(3, 2))
}

func TestTensor3Basics(t *testing.T) {
	ts := NewTensor3(2, 3, 4)
	ts.Set(1, 2, 3, 9)
	if ts.At(1, 2, 3) != 9 || ts.Data[(1*3+2)*4+3] != 9 {
		t.Fatal("Set/At do not address Data[(n*U+u)*F+f]")
	}
	// SBSRow is a zero-copy U×F view of block n.
	block := ts.SBSRow(1)
	if block.U != 3 || block.F != 4 {
		t.Fatalf("SBSRow shape %dx%d, want 3x4", block.U, block.F)
	}
	if block.At(2, 3) != 9 {
		t.Fatal("SBSRow does not alias the tensor")
	}
	block.Set(0, 0, 5)
	if ts.At(1, 0, 0) != 5 {
		t.Fatal("SBSRow mutation invisible in tensor")
	}
	if ts.At(0, 0, 0) != 0 {
		t.Fatal("SBSRow(1) aliased block 0")
	}
	cl := ts.Clone()
	cl.Set(0, 0, 0, 1)
	if ts.At(0, 0, 0) == 1 {
		t.Fatal("Clone shares storage")
	}
}

// randomPolicyInstance draws a random instance plus a random routing policy
// (including some entries on unlinked pairs, which the masked operations
// must ignore).
func randomPolicyInstance(rng *rand.Rand, n, u, f int) (*Instance, *RoutingPolicy, *CachingPolicy) {
	in := &Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  make([]int, n),
		Bandwidth: make([]float64, n),
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		in.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			in.Demand[i][j] = rng.Float64() * 10
		}
		in.BSCost[i] = 50 + rng.Float64()*100
	}
	for i := 0; i < n; i++ {
		in.Links[i] = make([]bool, u)
		in.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			in.Links[i][j] = rng.Float64() < 0.6
			in.EdgeCost[i][j] = rng.Float64() * 5
		}
		in.CacheCap[i] = rng.Intn(f + 1)
		in.Bandwidth[i] = rng.Float64() * 50
	}
	y := NewRoutingPolicy(in)
	x := NewCachingPolicyDims(n, f)
	for i := 0; i < n; i++ {
		for j := 0; j < u; j++ {
			for k := 0; k < f; k++ {
				if rng.Float64() < 0.4 {
					y.Set(i, j, k, rng.Float64())
				}
			}
		}
		for k := 0; k < f; k++ {
			x.Set(i, k, rng.Float64() < 0.3)
		}
	}
	return in, y, x
}

// Reference implementations on nested slices, written exactly like the
// seed's nested-loop code (same iteration order, same accumulation order),
// so the flat-tensor implementations can be compared bit-for-bit.

func refAggregate(in *Instance, y *RoutingPolicy) [][]float64 {
	agg := in.NewZeroMatrix()
	for n := 0; n < in.N; n++ {
		for u := 0; u < in.U; u++ {
			if !in.Links[n][u] {
				continue
			}
			for f := 0; f < in.F; f++ {
				agg[u][f] += y.At(n, u, f)
			}
		}
	}
	return agg
}

func refAggregateExcept(in *Instance, y *RoutingPolicy, except int) [][]float64 {
	agg := in.NewZeroMatrix()
	for n := 0; n < in.N; n++ {
		if n == except {
			continue
		}
		for u := 0; u < in.U; u++ {
			if !in.Links[n][u] {
				continue
			}
			for f := 0; f < in.F; f++ {
				agg[u][f] += y.At(n, u, f)
			}
		}
	}
	return agg
}

func refEdgeCost(in *Instance, y *RoutingPolicy) float64 {
	var cost float64
	for n := 0; n < in.N; n++ {
		for u := 0; u < in.U; u++ {
			if !in.Links[n][u] {
				continue
			}
			for f := 0; f < in.F; f++ {
				cost += in.EdgeCost[n][u] * y.At(n, u, f) * in.Demand[u][f]
			}
		}
	}
	return cost
}

func refBackhaulCost(in *Instance, agg [][]float64) float64 {
	var cost float64
	for u := 0; u < in.U; u++ {
		for f := 0; f < in.F; f++ {
			residual := 1 - agg[u][f]
			if residual < 0 {
				residual = 0
			}
			cost += in.BSCost[u] * residual * in.Demand[u][f]
		}
	}
	return cost
}

func refLoad(in *Instance, y *RoutingPolicy, n int) float64 {
	var load float64
	for u := 0; u < in.U; u++ {
		if !in.Links[n][u] {
			continue
		}
		for f := 0; f < in.F; f++ {
			load += y.At(n, u, f) * in.Demand[u][f]
		}
	}
	return load
}

// TestFlatMatchesNestedReference proves the flat-tensor aggregate, cost
// and load computations reproduce the nested-slice reference bit-for-bit
// (==, no tolerance) on randomized instances: the refactor changed the
// memory layout, not a single floating-point operation.
func TestFlatMatchesNestedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n, u, f := 1+rng.Intn(5), 1+rng.Intn(8), 1+rng.Intn(10)
		in, y, _ := randomPolicyInstance(rng, n, u, f)

		agg := y.Aggregate(in)
		ref := refAggregate(in, y)
		for uu := 0; uu < u; uu++ {
			for ff := 0; ff < f; ff++ {
				if agg.At(uu, ff) != ref[uu][ff] {
					t.Fatalf("trial %d: Aggregate[%d][%d] = %v, ref %v", trial, uu, ff, agg.At(uu, ff), ref[uu][ff])
				}
			}
		}

		for except := 0; except < n; except++ {
			ae := y.AggregateExcept(in, except)
			refE := refAggregateExcept(in, y, except)
			for uu := 0; uu < u; uu++ {
				for ff := 0; ff < f; ff++ {
					if ae.At(uu, ff) != refE[uu][ff] {
						t.Fatalf("trial %d: AggregateExcept(%d)[%d][%d] = %v, ref %v",
							trial, except, uu, ff, ae.At(uu, ff), refE[uu][ff])
					}
				}
			}
		}

		if got, want := EdgeServingCost(in, y), refEdgeCost(in, y); got != want {
			t.Fatalf("trial %d: EdgeServingCost = %v, ref %v", trial, got, want)
		}
		if got, want := BackhaulServingCost(in, y), refBackhaulCost(in, ref); got != want {
			t.Fatalf("trial %d: BackhaulServingCost = %v, ref %v", trial, got, want)
		}
		for sbs := 0; sbs < n; sbs++ {
			if got, want := y.Load(in, sbs), refLoad(in, y, sbs); got != want {
				t.Fatalf("trial %d: Load(%d) = %v, ref %v", trial, sbs, got, want)
			}
		}
	}
}

// TestFeasibilityMatchesNestedReference checks that the accessor-based
// feasibility pass flags exactly the same violation set as a nested-slice
// evaluation of the constraint system.
func TestFeasibilityMatchesNestedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n, u, f := 1+rng.Intn(4), 1+rng.Intn(6), 1+rng.Intn(8)
		in, y, x := randomPolicyInstance(rng, n, u, f)
		vs := CheckFeasibility(in, x, y)
		seen := map[string]bool{}
		for _, v := range vs {
			seen[v.Constraint+"@"+v.Where] = true
		}
		// Independent nested re-check of eq. 2 (routing requires cache) and
		// the no-link rule — the families random policies trip most often.
		for i := 0; i < n; i++ {
			for j := 0; j < u; j++ {
				for k := 0; k < f; k++ {
					v := y.At(i, j, k)
					if v <= FeasibilityTolerance || v > 1+FeasibilityTolerance {
						continue
					}
					key := func(c string) string {
						return c + "@" + violationWhere(i, j, k)
					}
					if !x.Get(i, k) && !seen[key("routing-requires-cache (2)")] && len(vs) < 100 {
						t.Fatalf("trial %d: missing eq.2 violation at n=%d u=%d f=%d", trial, i, j, k)
					}
					if !in.Links[i][j] && !seen[key("no-link")] && len(vs) < 100 {
						t.Fatalf("trial %d: missing no-link violation at n=%d u=%d f=%d", trial, i, j, k)
					}
				}
			}
		}
	}
}

func violationWhere(n, u, f int) string {
	return "n=" + itoa(n) + " u=" + itoa(u) + " f=" + itoa(f)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestLoadMasksOffLinkEntries is the regression test for the Load fix: an
// off-link routing entry is structurally unservable and must not inflate
// the bandwidth accounting (it previously did, making feasible policies
// look bandwidth-infeasible whenever a noised or adversarial upload put
// mass on an unlinked pair).
func TestLoadMasksOffLinkEntries(t *testing.T) {
	in := testInstance() // SBS1 has no link to MU2
	y := NewRoutingPolicy(in)
	y.Set(1, 2, 0, 1) // off-link: must not count
	if got := y.Load(in, 1); got != 0 {
		t.Fatalf("Load counted off-link entry: %v, want 0", got)
	}
	y.Set(1, 0, 0, 0.5) // linked: 0.5·λ_00 = 0.5·10
	if got, want := y.Load(in, 1), 5.0; got != want {
		t.Fatalf("Load(1) = %v, want %v", got, want)
	}
}

// TestAggregateTrackerMatchesRebuild drives the tracker through randomized
// sweep sequences and checks it stays consistent with the full rebuild.
// The incremental path reassociates float additions, so the comparison
// uses a tolerance far below FeasibilityTolerance but above ulp drift.
func TestAggregateTrackerMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		n, u, f := 2+rng.Intn(4), 1+rng.Intn(6), 1+rng.Intn(8)
		in, _, _ := randomPolicyInstance(rng, n, u, f)
		y := NewRoutingPolicy(in)
		tracker := NewAggregateTracker(in)
		yMinus := in.NewUFMat()
		upload := in.NewUFMat()
		for phase := 0; phase < 3*n; phase++ {
			sbs := phase % n
			tracker.YMinusInto(in, y, sbs, yMinus)
			// yMinus must equal AggregateExcept within drift tolerance.
			want := y.AggregateExcept(in, sbs)
			for i := range want.Data {
				if math.Abs(yMinus.Data[i]-want.Data[i]) > 1e-12 {
					t.Fatalf("trial %d phase %d: yMinus drifted: %v vs %v", trial, phase, yMinus.Data[i], want.Data[i])
				}
			}
			for i := range upload.Data {
				upload.Data[i] = 0
				if rng.Float64() < 0.3 {
					upload.Data[i] = rng.Float64()
				}
			}
			tracker.Install(in, y, sbs, yMinus, upload)
			// The installed block must be exactly the upload.
			block := y.SBS(sbs)
			for i := range upload.Data {
				if block.Data[i] != upload.Data[i] {
					t.Fatalf("trial %d: Install did not copy the upload", trial)
				}
			}
			// And the running aggregate must track the full rebuild.
			full := y.Aggregate(in)
			agg := tracker.Aggregate()
			for i := range full.Data {
				if math.Abs(agg.Data[i]-full.Data[i]) > 1e-12 {
					t.Fatalf("trial %d phase %d: aggregate drifted: %v vs %v", trial, phase, agg.Data[i], full.Data[i])
				}
			}
		}
		// Reset must snap back to the exact rebuild.
		tracker.Reset(in, y)
		full := y.Aggregate(in)
		for i := range full.Data {
			if tracker.Aggregate().Data[i] != full.Data[i] {
				t.Fatalf("trial %d: Reset is not the exact rebuild", trial)
			}
		}
	}
}

func TestCachingPolicyBitset(t *testing.T) {
	// Exercise word boundaries: F = 130 spans three words per row.
	p := NewCachingPolicyDims(2, 130)
	for _, f := range []int{0, 63, 64, 127, 128, 129} {
		p.Set(1, f, true)
		if !p.Get(1, f) {
			t.Fatalf("Get(1,%d) false after Set", f)
		}
		if p.Get(0, f) {
			t.Fatalf("Set(1,%d) leaked into row 0", f)
		}
	}
	if got := p.Count(1); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := p.Contents(1); len(got) != 6 || got[0] != 0 || got[5] != 129 {
		t.Fatalf("Contents = %v", got)
	}
	p.Set(1, 63, false)
	if p.Get(1, 63) || p.Count(1) != 5 {
		t.Fatal("clearing a bit failed")
	}

	q := p.Clone()
	if p.DiffCount(q) != 0 {
		t.Fatal("clone differs from original")
	}
	q.Set(0, 129, true)
	if p.DiffCount(q) != 1 {
		t.Fatalf("DiffCount = %d, want 1", p.DiffCount(q))
	}

	row := make([]bool, 130)
	row[1], row[128] = true, true
	p.SetRow(0, row)
	if got := p.RowBools(0); !got[1] || !got[128] || got[0] {
		t.Fatalf("SetRow/RowBools round trip failed: %v", got)
	}
}

func TestSetRowPanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetRow with wrong length did not panic")
		}
	}()
	NewCachingPolicyDims(1, 4).SetRow(0, make([]bool, 3))
}

// FuzzMatIndex fuzzes the Mat stride arithmetic: At/Set/Row must agree
// with the documented flat layout Data[u*F+f] for arbitrary shapes and
// indices.
func FuzzMatIndex(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(2), uint8(1), 1.5)
	f.Add(uint8(1), uint8(1), uint8(0), uint8(0), -2.25)
	f.Add(uint8(7), uint8(9), uint8(6), uint8(8), 0.0)
	f.Fuzz(func(t *testing.T, uDim, fDim, u, ff uint8, v float64) {
		U := 1 + int(uDim)%16
		F := 1 + int(fDim)%16
		ui := int(u) % U
		fi := int(ff) % F
		m := NewMat(U, F)
		m.Set(ui, fi, v)
		if math.Float64bits(m.At(ui, fi)) != math.Float64bits(v) {
			t.Fatalf("At(%d,%d) = %v after Set %v", ui, fi, m.At(ui, fi), v)
		}
		if math.Float64bits(m.Data[ui*F+fi]) != math.Float64bits(v) {
			t.Fatalf("Data[%d*%d+%d] does not hold the value", ui, F, fi)
		}
		if math.Float64bits(m.Row(ui)[fi]) != math.Float64bits(v) {
			t.Fatalf("Row(%d)[%d] does not alias the entry", ui, fi)
		}
		// Every other entry stays zero: the write did not smear.
		for i, d := range m.Data {
			if i != ui*F+fi && d != 0 {
				t.Fatalf("Set(%d,%d) also wrote Data[%d]", ui, fi, i)
			}
		}
	})
}

// FuzzTensor3Index fuzzes the Tensor3 stride arithmetic and the SBSRow
// view: At/Set must agree with Data[(n*U+u)*F+f] and with the Mat view of
// the same block.
func FuzzTensor3Index(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), uint8(1), uint8(2), uint8(3), 9.0)
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), uint8(0), uint8(0), -1.0)
	f.Fuzz(func(t *testing.T, nDim, uDim, fDim, n, u, ff uint8, v float64) {
		N := 1 + int(nDim)%8
		U := 1 + int(uDim)%8
		F := 1 + int(fDim)%8
		ni, ui, fi := int(n)%N, int(u)%U, int(ff)%F
		ts := NewTensor3(N, U, F)
		ts.Set(ni, ui, fi, v)
		if math.Float64bits(ts.At(ni, ui, fi)) != math.Float64bits(v) {
			t.Fatalf("At(%d,%d,%d) != Set value", ni, ui, fi)
		}
		if math.Float64bits(ts.Data[(ni*U+ui)*F+fi]) != math.Float64bits(v) {
			t.Fatalf("Data[(%d*%d+%d)*%d+%d] does not hold the value", ni, U, ui, F, fi)
		}
		block := ts.SBSRow(ni)
		if math.Float64bits(block.At(ui, fi)) != math.Float64bits(v) {
			t.Fatalf("SBSRow(%d).At(%d,%d) does not alias the tensor", ni, ui, fi)
		}
		for i, d := range ts.Data {
			if i != (ni*U+ui)*F+fi && d != 0 {
				t.Fatalf("Set(%d,%d,%d) also wrote Data[%d]", ni, ui, fi, i)
			}
		}
	})
}

// FuzzCachingPolicyBitset fuzzes the packed bitset against a plain []bool
// model.
func FuzzCachingPolicyBitset(f *testing.F) {
	f.Add(uint8(2), uint8(70), uint16(0x1234))
	f.Fuzz(func(t *testing.T, nDim, fDim uint8, ops uint16) {
		N := 1 + int(nDim)%4
		F := 1 + int(fDim)%130
		p := NewCachingPolicyDims(N, F)
		mirror := make([][]bool, N)
		for i := range mirror {
			mirror[i] = make([]bool, F)
		}
		// Drive 16 pseudo-ops from the fuzz input.
		state := uint32(ops) + 1
		for op := 0; op < 16; op++ {
			state = state*1664525 + 1013904223
			n := int(state>>8) % N
			ff := int(state>>16) % F
			val := state&1 == 0
			p.Set(n, ff, val)
			mirror[n][ff] = val
		}
		for n := 0; n < N; n++ {
			count := 0
			for ff := 0; ff < F; ff++ {
				if p.Get(n, ff) != mirror[n][ff] {
					t.Fatalf("Get(%d,%d) = %v, mirror %v", n, ff, p.Get(n, ff), mirror[n][ff])
				}
				if mirror[n][ff] {
					count++
				}
			}
			if p.Count(n) != count {
				t.Fatalf("Count(%d) = %d, mirror %d", n, p.Count(n), count)
			}
		}
	})
}
