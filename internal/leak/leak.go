// Package leak provides a reusable goroutine-leak guard for tests and for
// the soak harness's no-goroutine-growth invariant: snapshot the goroutine
// count before the work, compare after with a settle loop (goroutines that
// are shutting down need a moment to exit), and on growth report the full
// stack dump so the leaked goroutine is identified, not just counted.
package leak

import (
	"fmt"
	"runtime"
	"time"
)

// Snapshot records the current goroutine count.
type Snapshot struct {
	// Goroutines is the count at capture time.
	Goroutines int
}

// Take captures the current goroutine count.
func Take() Snapshot {
	return Snapshot{Goroutines: runtime.NumGoroutine()}
}

// settleSteps is the retry schedule Diff polls on: cheap fast retries
// first for the common case (a worker pool draining), then coarser waits
// up to ~3s total for slow teardown under -race or a loaded CI runner.
var settleSteps = []time.Duration{
	1 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, 1 * time.Second, 1 * time.Second,
}

// Diff compares the current goroutine count against the snapshot, polling
// until the count settles back to the baseline or the retry schedule is
// exhausted. On growth it returns an error carrying the leaked count and
// the full goroutine stack dump. A count at or below the baseline returns
// nil — goroutines that existed before the snapshot may exit during the
// guarded work.
func (s Snapshot) Diff() error {
	n := runtime.NumGoroutine()
	for _, wait := range settleSteps {
		if n <= s.Goroutines {
			return nil
		}
		time.Sleep(wait)
		n = runtime.NumGoroutine()
	}
	if n <= s.Goroutines {
		return nil
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("leak: goroutine count grew from %d to %d; stacks:\n%s", s.Goroutines, n, buf)
}

// TB is the subset of testing.TB the guard needs; an interface so the
// package stays importable outside tests (soak uses Diff directly).
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Check arms a guard for one test: it snapshots now and registers a
// cleanup that fails the test if the goroutine count has grown by the time
// the test (and its other cleanups) finished.
func Check(t TB) {
	t.Helper()
	before := Take()
	t.Cleanup(func() {
		if err := before.Diff(); err != nil {
			t.Errorf("%v", err)
		}
	})
}
