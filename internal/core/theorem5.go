package core

import (
	"fmt"
	"math/rand"

	"edgecache/internal/model"
)

// Theorem5Bound evaluates the paper's Theorem 5 cost-increase bound for a
// concrete routing policy y and LPPM configuration:
//
//	E[f(ŷ) − f(y)] ≤ Φ(ζ)·Pr + W·(1 − Pr),
//
// where ζ is a chosen total-noise threshold, Pr = P(Σ r_nuf ≤ ζ),
// Φ(ζ) = L·ζ with L the largest per-unit cost slope
// max_{n,u,f} (d̂_u − d_nu)·λ_uf (subtracting r from y_nuf moves the cost
// by at most that much per unit of noise), and W the all-backhaul ceiling.
//
// The paper computes Pr from the convolution of the per-entry bounded
// Laplace densities; Bound estimates it by Monte Carlo over the actual
// mechanism (samples draws of the full noise vector), which is exact in
// the limit and respects the data-dependent intervals [0, δ·y_nuf].
type Theorem5Bound struct {
	// Zeta is the threshold ζ on the total noise Σ|r|.
	Zeta float64
	// Bound is the right-hand side Φ(ζ)·Pr + W·(1−Pr).
	Bound float64
	// Pr is the estimated P(Σ r ≤ ζ).
	Pr float64
	// Phi is Φ(ζ) = L·ζ.
	Phi float64
	// MeanIncrease is the Monte Carlo estimate of E[f(ŷ) − f(y)], returned
	// for convenience so callers can verify the bound empirically.
	MeanIncrease float64
}

// EvaluateTheorem5 estimates the Theorem 5 quantities for routing policy y
// under the given LPPM, using `samples` Monte Carlo draws.
func EvaluateTheorem5(inst *model.Instance, lppm *LPPM, y *model.RoutingPolicy,
	zeta float64, samples int, rng *rand.Rand) (*Theorem5Bound, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if lppm == nil {
		return nil, fmt.Errorf("core: EvaluateTheorem5 requires an LPPM")
	}
	if zeta < 0 {
		return nil, fmt.Errorf("core: zeta must be non-negative, got %v", zeta)
	}
	if samples <= 0 {
		return nil, fmt.Errorf("core: samples must be positive, got %d", samples)
	}
	if rng == nil {
		return nil, fmt.Errorf("core: EvaluateTheorem5 requires an rng")
	}

	// L = max per-unit cost slope over servable pairs.
	var slope float64
	for n := 0; n < inst.N; n++ {
		for u := 0; u < inst.U; u++ {
			if !inst.Links[n][u] {
				continue
			}
			density := inst.BSCost[u] - inst.EdgeCost[n][u]
			if density < 0 {
				density = 0
			}
			for f := 0; f < inst.F; f++ {
				if s := density * inst.Demand[u][f]; s > slope {
					slope = s
				}
			}
		}
	}

	baseCost := model.TotalServingCost(inst, y).Total
	w := inst.MaxCost()

	within := 0
	var totalIncrease float64
	noised := y.Clone()
	for s := 0; s < samples; s++ {
		var noiseMass float64
		for n := 0; n < inst.N; n++ {
			clean := y.SBS(n)
			block, err := lppm.withRng(rng).Perturb("theorem5", clean)
			if err != nil {
				return nil, err
			}
			for u := 0; u < block.U; u++ {
				cleanRow, noisedRow := clean.Row(u), block.Row(u)
				for f, v := range noisedRow {
					noiseMass += cleanRow[f] - v
				}
			}
			noised.SetSBS(n, block)
		}
		if noiseMass <= zeta {
			within++
		}
		totalIncrease += model.TotalServingCost(inst, noised).Total - baseCost
	}

	pr := float64(within) / float64(samples)
	phi := slope * zeta
	bound := phi*pr + w*(1-pr)
	return &Theorem5Bound{
		Zeta:         zeta,
		Bound:        bound,
		Pr:           pr,
		Phi:          phi,
		MeanIncrease: totalIncrease / float64(samples),
	}, nil
}

// withRng returns a copy of the mechanism bound to a caller-supplied noise
// source and with accounting disabled — EvaluateTheorem5 draws thousands
// of hypothetical samples that must not pollute the privacy ledger.
func (l *LPPM) withRng(rng *rand.Rand) *LPPM {
	cp := *l
	cp.cfg.Rng = rng
	cp.cfg.Accountant = nil
	return &cp
}
