package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the zero-allocation contract: a function marked
// //edgecache:noalloc — and every function it statically calls within the
// module — may not contain allocating constructs. The analyzer flags
// append (unless it refills a workspace buffer reset with `buf[:0]` in the
// same function), make, new, slice/map composite literals, address-taken
// composite literals, func literals, go statements, string concatenation,
// allocating string<->[]byte conversions, and calls that cannot be proven
// allocation-free (dynamic calls, non-allowlisted functions outside the
// module).
//
// Two escape hatches keep the check aligned with the runtime contract that
// testing.AllocsPerRun locks in:
//
//   - cold guards — if-blocks that end in a return or panic — are exempt:
//     they are validation paths (shape checks building fmt.Errorf values)
//     that warm calls never take;
//   - interface method calls are not traced (no static callee); the
//     AllocsPerRun regression tests cover what dynamic dispatch hides.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//edgecache:noalloc functions and their module callees must not allocate",
	Run:  runNoAlloc,
}

// noallocAllowedCalls lists non-module functions that are known not to
// allocate on any path the hot functions exercise.
var noallocAllowedCalls = map[string]bool{
	"sort.Sort":           true, // data already satisfies sort.Interface; no boxing
	"sort.Search":         true,
	"sort.SearchInts":     true,
	"sort.SearchFloat64s": true,
}

// noallocAllowedPkgs lists non-module packages every function of which is
// allocation-free.
var noallocAllowedPkgs = map[string]bool{
	"math":      true,
	"math/bits": true,
	// The parallel sweep engine's per-worker phase bodies coordinate via
	// atomic counters; every sync/atomic operation compiles to a single
	// hardware instruction and never touches the heap.
	"sync/atomic": true,
}

func runNoAlloc(pass *Pass) {
	diags := pass.Prog.noallocResults()
	for _, d := range diags[pass.Pkg.Path] {
		*pass.diags = append(*pass.diags, d)
	}
}

// noallocFunc is one module function body the closure walk can reach.
type noallocFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// noallocResults runs the whole-program closure analysis once and caches
// the per-package diagnostics.
func (prog *Program) noallocResults() map[string][]Diagnostic {
	prog.noallocOnce.Do(prog.computeNoalloc)
	return prog.noallocDiag
}

func (prog *Program) computeNoalloc() {
	prog.noallocDiag = map[string][]Diagnostic{}

	// Index every function body in the module and find the directive roots.
	funcs := map[*types.Func]noallocFunc{}
	var roots []*types.Func
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				funcs[obj] = noallocFunc{pkg: pkg, decl: fd}
				if hasNoallocDirective(fd) {
					roots = append(roots, obj)
				}
			}
		}
	}

	// Breadth-first closure over static module-internal calls, remembering
	// which root each function is reachable from for the diagnostics.
	rootOf := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, r := range roots {
		rootOf[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		nf := funcs[fn]
		w := &noallocWalker{prog: prog, pkg: nf.pkg, fn: fn, root: rootOf[fn]}
		w.resetVars = collectResetVars(nf.pkg, nf.decl.Body)
		w.walkBody(nf.decl.Body)
		for _, callee := range w.moduleCallees {
			if _, seen := rootOf[callee]; seen {
				continue
			}
			if _, hasBody := funcs[callee]; !hasBody {
				continue
			}
			rootOf[callee] = rootOf[fn]
			queue = append(queue, callee)
		}
		prog.noallocDiag[nf.pkg.Path] = append(prog.noallocDiag[nf.pkg.Path], w.diags...)
	}
}

// collectResetVars finds local variables (re)initialized from a `buf[:0]`
// slice expression: appends that write back into such a variable reuse
// preallocated workspace capacity and are the one allowed append form.
func collectResetVars(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	reset := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			ident, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			sl, ok := as.Rhs[i].(*ast.SliceExpr)
			if !ok || sl.Low != nil || sl.High == nil {
				continue
			}
			if high, ok := sl.High.(*ast.BasicLit); !ok || high.Value != "0" {
				continue
			}
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = pkg.Info.Defs[ident]
			} else {
				obj = pkg.Info.Uses[ident]
			}
			if obj != nil {
				reset[obj] = true
			}
		}
		return true
	})
	return reset
}

// noallocWalker scans one function body.
type noallocWalker struct {
	prog *Program
	pkg  *Package
	fn   *types.Func
	root *types.Func

	resetVars     map[types.Object]bool
	moduleCallees []*types.Func
	diags         []Diagnostic
}

func (w *noallocWalker) reportf(pos token.Pos, format string, args ...any) {
	var where string
	if w.fn != w.root {
		where = fmt.Sprintf("%s (called from //edgecache:noalloc %s)", w.fn.Name(), w.root.Name())
	} else {
		where = fmt.Sprintf("//edgecache:noalloc %s", w.fn.Name())
	}
	w.diags = append(w.diags, Diagnostic{
		Analyzer: "noalloc",
		Pos:      w.prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...) + " in " + where,
	})
}

// walkBody scans a statement block, skipping cold guards.
func (w *noallocWalker) walkBody(block *ast.BlockStmt) {
	for _, stmt := range block.List {
		w.walkStmt(stmt)
	}
}

func (w *noallocWalker) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkExpr(s.Cond)
		if !coldGuard(s) {
			w.walkBody(s.Body)
		}
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.BlockStmt:
		w.walkBody(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond)
		}
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
		w.walkBody(s.Body)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.walkBody(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag)
		}
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, e := range cc.List {
				w.walkExpr(e)
			}
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Type switches box their operand and selects imply channel
		// traffic; neither belongs on a zero-alloc path.
		w.reportf(stmt.Pos(), "%T is not allowed", stmt)
	case *ast.GoStmt:
		w.reportf(s.Pos(), "go statement allocates a goroutine")
	case *ast.DeferStmt:
		w.walkExpr(s.Call)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.reportf(s.Pos(), "channel send is not allowed")
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt, nil:
	default:
		// Conservatively descend into anything unanticipated.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.walkExpr(e)
				return false
			}
			return true
		})
	}
}

// coldGuard reports whether the if statement is a validation guard: no
// else branch and a body ending in return or panic. Such blocks run only
// on the error path, which the zero-alloc contract does not cover.
func coldGuard(s *ast.IfStmt) bool {
	if s.Else != nil || len(s.Body.List) == 0 {
		return false
	}
	switch last := s.Body.List[len(s.Body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *noallocWalker) walkExpr(expr ast.Expr) {
	switch e := expr.(type) {
	case *ast.CallExpr:
		w.walkCall(e)
	case *ast.CompositeLit:
		w.checkCompositeLit(e, false)
	case *ast.FuncLit:
		w.reportf(e.Pos(), "func literal allocates a closure")
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := e.X.(*ast.CompositeLit); ok {
				w.checkCompositeLit(cl, true)
				return
			}
		}
		w.walkExpr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if t, ok := w.pkg.Info.Types[e.X]; ok {
				if basic, ok := t.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
					w.reportf(e.Pos(), "string concatenation allocates")
				}
			}
		}
		w.walkExpr(e.X)
		w.walkExpr(e.Y)
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
	case *ast.SelectorExpr:
		w.walkExpr(e.X)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.TypeAssertExpr:
		w.reportf(e.Pos(), "type assertion may allocate")
	}
}

// checkCompositeLit allows by-value struct and array literals (no heap
// allocation) and flags slice/map literals and address-taken literals.
func (w *noallocWalker) checkCompositeLit(cl *ast.CompositeLit, addressTaken bool) {
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			w.walkExpr(kv.Value)
		} else {
			w.walkExpr(elt)
		}
	}
	tv, ok := w.pkg.Info.Types[cl]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		w.reportf(cl.Pos(), "slice literal allocates")
	case *types.Map:
		w.reportf(cl.Pos(), "map literal allocates")
	default:
		if addressTaken {
			w.reportf(cl.Pos(), "address-taken composite literal escapes to the heap")
		}
	}
}

func (w *noallocWalker) walkCall(call *ast.CallExpr) {
	for _, arg := range call.Args {
		w.walkExpr(arg)
	}

	// Builtins and conversions.
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := w.pkg.Info.Uses[fun]; ok {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				w.checkBuiltin(fun.Name, call)
				return
			}
		}
	case *ast.ParenExpr, *ast.ArrayType, *ast.MapType:
		// Conversion via parenthesized or anonymous type below.
	}
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		w.checkConversion(tv.Type, call)
		return
	}

	callee := calleeFunc(w.pkg, call)
	if callee == nil {
		w.reportf(call.Pos(), "dynamic call %s cannot be proven allocation-free", exprString(w.pkg, w.prog, call.Fun))
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isInterface := sig.Recv().Type().Underlying().(*types.Interface); isInterface {
			// Interface dispatch: no static callee to trace. The
			// AllocsPerRun regression tests cover this blind spot.
			return
		}
	}
	if callee.Pkg() == nil {
		return // unsafe & friends
	}
	if w.prog.ByPath[callee.Pkg().Path()] != nil {
		w.moduleCallees = append(w.moduleCallees, callee)
		return
	}
	pkgPath := callee.Pkg().Path()
	if noallocAllowedPkgs[pkgPath] || noallocAllowedCalls[pkgPath+"."+callee.Name()] {
		return
	}
	w.reportf(call.Pos(), "call to %s.%s cannot be proven allocation-free", pkgPath, callee.Name())
}

func (w *noallocWalker) checkBuiltin(name string, call *ast.CallExpr) {
	switch name {
	case "append":
		if !w.isWorkspaceAppend(call) {
			w.reportf(call.Pos(), "append may allocate (only `buf = append(buf, ...)` on a `buf := ws[:0]` workspace reset is allowed)")
		}
	case "make":
		w.reportf(call.Pos(), "make allocates")
	case "new":
		w.reportf(call.Pos(), "new allocates")
	case "len", "cap", "copy", "delete", "min", "max", "real", "imag", "panic", "print", "println", "clear":
		// Allocation-free (panic only fires on dead paths; its argument
		// was already walked).
	}
}

// isWorkspaceAppend recognizes `buf = append(buf, ...)` where buf was
// reset from a workspace slice with `buf := ws[:0]` in the same function:
// such appends refill preallocated capacity. Whether the capacity truly
// suffices is the AllocsPerRun tests' job.
func (w *noallocWalker) isWorkspaceAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	argIdent, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.pkg.Info.Uses[argIdent]
	if obj == nil || !w.resetVars[obj] {
		return false
	}
	return true
}

func (w *noallocWalker) checkConversion(target types.Type, call *ast.CallExpr) {
	switch target.Underlying().(type) {
	case *types.Slice:
		w.reportf(call.Pos(), "conversion to %s allocates", target)
	case *types.Basic:
		if basic := target.Underlying().(*types.Basic); basic.Info()&types.IsString != 0 && len(call.Args) == 1 {
			if at, ok := w.pkg.Info.Types[call.Args[0]]; ok {
				if _, fromSlice := at.Type.Underlying().(*types.Slice); fromSlice {
					w.reportf(call.Pos(), "[]byte-to-string conversion allocates")
				}
			}
		}
	}
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls through function values.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.ParenExpr:
		return calleeFunc(pkg, &ast.CallExpr{Fun: fun.X, Args: call.Args})
	}
	return nil
}

// exprString renders an expression from source bytes, falling back to a
// coarse description.
func exprString(pkg *Package, prog *Program, e ast.Expr) string {
	if s := pkg.sourceAt(prog.Fset, e.Pos(), e.End()); s != "" {
		if len(s) > 40 {
			s = s[:40] + "..."
		}
		return s
	}
	return fmt.Sprintf("%T", e)
}
