package sim

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/transport"
)

// simBitEqual asserts exact trajectory equality between two protocol runs:
// history, final cost and final policies, all at the bit level. The sim
// resume guarantee (without LPPM) is bit-identity, not tolerance.
func simBitEqual(t *testing.T, got, want *core.RunResult, label string) {
	t.Helper()
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: history length %d, want %d", label, len(got.History), len(want.History))
	}
	for i := range got.History {
		if math.Float64bits(got.History[i]) != math.Float64bits(want.History[i]) {
			t.Fatalf("%s: history[%d] = %v, want %v (bit difference)", label, i, got.History[i], want.History[i])
		}
	}
	if got.Converged != want.Converged || got.Sweeps != want.Sweeps {
		t.Fatalf("%s: converged/sweeps = %v/%d, want %v/%d", label, got.Converged, got.Sweeps, want.Converged, want.Sweeps)
	}
	if math.Float64bits(got.Solution.Cost.Total) != math.Float64bits(want.Solution.Cost.Total) {
		t.Fatalf("%s: final cost %v, want %v", label, got.Solution.Cost.Total, want.Solution.Cost.Total)
	}
	if got.Solution.Caching.DiffCount(want.Solution.Caching) != 0 {
		t.Fatalf("%s: final caching policy differs", label)
	}
	gd, wd := got.Solution.Routing.T.Data, want.Solution.Routing.T.Data
	for i := range gd {
		if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
			t.Fatalf("%s: final routing[%d] = %v, want %v", label, i, gd[i], wd[i])
		}
	}
}

// runProtocol wires a fresh in-memory deployment (one BS, N SBS agents) and
// either starts a run from scratch (ck == nil) or resumes from a snapshot.
// It returns the SBS agents so tests can inspect their post-run state.
func runProtocol(t *testing.T, ctx context.Context, inst *model.Instance, cfg BSConfig,
	ck *model.Checkpoint, sbsHook EventHook) (*core.RunResult, []*SBSAgent, error) {
	t.Helper()
	hub := transport.NewHub()
	const bsName = "bs"
	rawBsEp, err := hub.Register(bsName, 4*inst.N+4)
	if err != nil {
		t.Fatal(err)
	}
	bsEp, err := transport.NewReliableEndpoint(rawBsEp, transport.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer bsEp.Close()

	sbsNames := make([]string, inst.N)
	agents := make([]*SBSAgent, inst.N)
	for n := 0; n < inst.N; n++ {
		sbsNames[n] = "sbs-" + string(rune('0'+n))
		ep, err := hub.Register(sbsNames[n], 8)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		relEp, err := transport.NewReliableEndpoint(ep, transport.RetryPolicy{Seed: int64(n) + 1})
		if err != nil {
			t.Fatal(err)
		}
		agent, err := NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), nil, relEp, bsName)
		if err != nil {
			t.Fatal(err)
		}
		if sbsHook != nil {
			agent.SetEventHook(sbsHook)
		}
		agents[n] = agent
	}

	bs, err := NewBSAgent(inst, cfg, bsEp, sbsNames)
	if err != nil {
		t.Fatal(err)
	}

	agentCtx, cancelAgents := context.WithCancel(ctx)
	defer cancelAgents()
	errCh := make(chan error, inst.N)
	for _, agent := range agents {
		agent := agent
		go func() { errCh <- agent.Run(agentCtx) }()
	}

	var res *core.RunResult
	var runErr error
	if ck != nil {
		res, runErr = bs.Resume(ctx, ck)
	} else {
		res, runErr = bs.Run(ctx)
	}
	cancelAgents()
	for range agents {
		select {
		case <-errCh:
		case <-time.After(5 * time.Second):
			t.Fatal("SBS agent failed to stop")
		}
	}
	return res, agents, runErr
}

func TestSimCheckpointNonIntrusive(t *testing.T) {
	// Turning checkpointing on must not change the protocol trajectory by a
	// single bit: BS snapshots are pure reads of the sweep state.
	rng := rand.New(rand.NewSource(61))
	inst := randomInstance(rng, 3, 5, 6)
	ctx := testCtx(t)

	want, _, err := runProtocol(t, ctx, inst, BSConfig{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	store := model.NewMemCheckpointStore(0)
	cfg := BSConfig{Checkpoint: &core.CheckpointConfig{Sink: store, EverySweeps: 1}}
	got, _, err := runProtocol(t, ctx, inst, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	simBitEqual(t, got, want, "checkpointed protocol run")
	if store.Len() == 0 {
		t.Fatal("no snapshots captured")
	}
	for _, ck := range store.All() {
		if ck.Phase != 0 {
			t.Fatalf("BS snapshot at phase %d; want sweep boundaries only", ck.Phase)
		}
		if ck.HasNoise {
			t.Fatal("BS snapshot claims an in-process noise stream")
		}
	}
}

func TestSimResumeEveryBoundaryBitIdentical(t *testing.T) {
	// Crash the BS at any sweep boundary, resume a fresh BS process from
	// the snapshot against fresh SBS agents: the trajectory must be
	// bit-identical to the uninterrupted protocol run.
	// This instance takes 4 sweeps to converge, so the boundary cadence
	// captures 3 distinct resume points (the greedy best-response dynamics
	// hit their fixed point fast on random instances).
	rng := rand.New(rand.NewSource(16))
	inst := randomInstance(rng, 8, 12, 16)
	ctx := testCtx(t)

	store := model.NewMemCheckpointStore(0)
	cfg := BSConfig{Checkpoint: &core.CheckpointConfig{Sink: store, EverySweeps: 1}}
	want, _, err := runProtocol(t, ctx, inst, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	snaps := store.All()
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots captured", len(snaps))
	}
	for _, ck := range snaps {
		got, _, err := runProtocol(t, ctx, inst, BSConfig{}, ck, nil)
		if err != nil {
			t.Fatalf("resume at sweep %d: %v", ck.Sweep, err)
		}
		simBitEqual(t, got, want, "resume at sweep "+string(rune('0'+ck.Sweep)))
	}
}

func TestSimStateSyncHandshake(t *testing.T) {
	// A resumed BS rebroadcasts the resume point: every live SBS must
	// receive exactly one MsgStateSync carrying its own restored policy and
	// acknowledge it within the handshake window.
	rng := rand.New(rand.NewSource(81))
	inst := randomInstance(rng, 3, 5, 6)
	ctx := testCtx(t)

	store := model.NewMemCheckpointStore(0)
	cfg := BSConfig{Checkpoint: &core.CheckpointConfig{Sink: store, EverySweeps: 1}}
	if _, _, err := runProtocol(t, ctx, inst, cfg, nil, nil); err != nil {
		t.Fatal(err)
	}
	ck, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}

	var bsEvents, sbsEvents EventCounter
	resumeCfg := BSConfig{OnEvent: bsEvents.Hook()}
	_, agents, err := runProtocol(t, ctx, inst, resumeCfg, ck, sbsEvents.Hook())
	if err != nil {
		t.Fatal(err)
	}
	if got := sbsEvents.Count(EventStateSync); got != inst.N {
		t.Errorf("state-sync events = %d, want %d", got, inst.N)
	}
	if got := bsEvents.Count(EventStateSyncMiss); got != 0 {
		t.Errorf("state-sync misses on clean links = %d, want 0", got)
	}
	for n, agent := range agents {
		cache, routing := agent.RestoredPolicy()
		if len(cache) != inst.F {
			t.Fatalf("SBS %d restored cache has %d entries, want %d", n, len(cache), inst.F)
		}
		if len(routing) != inst.U {
			t.Fatalf("SBS %d restored routing has %d rows, want %d", n, len(routing), inst.U)
		}
		// The sync must carry this SBS's own row of the checkpointed policy
		// — and nothing else (the privacy premise: one row per recipient).
		for f := 0; f < inst.F; f++ {
			if cache[f] != ck.Caching.Get(n, f) {
				t.Fatalf("SBS %d restored cache[%d] = %v, want %v", n, f, cache[f], ck.Caching.Get(n, f))
			}
		}
	}
}

func TestSimResumeRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	inst := randomInstance(rng, 3, 5, 6)
	ctx := testCtx(t)

	store := model.NewMemCheckpointStore(0)
	cfg := BSConfig{Checkpoint: &core.CheckpointConfig{Sink: store, EverySweeps: 1}}
	if _, _, err := runProtocol(t, ctx, inst, cfg, nil, nil); err != nil {
		t.Fatal(err)
	}
	ck, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}

	hub := transport.NewHub()
	ep, err := hub.Register("bs", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	bs, err := NewBSAgent(inst, BSConfig{}, ep, []string{"sbs-0", "sbs-1", "sbs-2"})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := bs.Resume(ctx, nil); err == nil {
		t.Error("nil checkpoint: want error")
	}

	noisy := *ck
	noisy.HasNoise = true
	noisy.NoiseSeed = 7
	if _, err := bs.Resume(ctx, &noisy); err == nil || !strings.Contains(err.Error(), "noise") {
		t.Errorf("noise-bearing snapshot: got %v", err)
	}

	midSweep := *ck
	midSweep.Phase = 1
	if _, err := bs.Resume(ctx, &midSweep); err == nil || !strings.Contains(err.Error(), "boundaries") {
		t.Errorf("mid-sweep snapshot: got %v", err)
	}

	shuffled := *ck
	shuffled.Order = []int{2, 1, 0}
	if _, err := bs.Resume(ctx, &shuffled); err == nil || !strings.Contains(err.Error(), "order") {
		t.Errorf("shuffled order: got %v", err)
	}

	// A checkpoint config without a sink is rejected at construction.
	if _, err := NewBSAgent(inst, BSConfig{Checkpoint: &core.CheckpointConfig{}}, ep,
		[]string{"sbs-0", "sbs-1", "sbs-2"}); err == nil {
		t.Error("checkpoint config without sink: want error")
	}
}

func TestSBSReplyCacheAndStaleFilter(t *testing.T) {
	// The SBS answers a duplicated announce from its reply cache (same
	// bytes, no re-solve) and drops announces older than the BS's announced
	// resume point.
	rng := rand.New(rand.NewSource(101))
	inst := randomInstance(rng, 2, 4, 5)
	ctx := testCtx(t)

	hub := transport.NewHub()
	bsEp, err := hub.Register("bs", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer bsEp.Close()
	sbsEp, err := hub.Register("sbs-0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sbsEp.Close()

	var events EventCounter
	agent, err := NewSBSAgent(inst, 0, core.DefaultSubproblemConfig(), nil, sbsEp, "bs")
	if err != nil {
		t.Fatal(err)
	}
	agent.SetEventHook(events.Hook())
	done := make(chan error, 1)
	go func() { done <- agent.Run(ctx) }()

	yMinus := inst.NewUFMat()
	announce, err := buildAnnounce(2, 0, yMinus)
	if err != nil {
		t.Fatal(err)
	}
	recvUpload := func() transport.Message {
		t.Helper()
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		for {
			msg, err := bsEp.Recv(rctx)
			if err != nil {
				t.Fatalf("no upload: %v", err)
			}
			if msg.Type == transport.MsgPolicyUpload {
				return msg
			}
		}
	}

	if err := bsEp.Send(ctx, "sbs-0", announce); err != nil {
		t.Fatal(err)
	}
	first := recvUpload()
	if err := bsEp.Send(ctx, "sbs-0", announce); err != nil {
		t.Fatal(err)
	}
	second := recvUpload()
	if string(first.Payload) != string(second.Payload) {
		t.Fatal("duplicated announce answered with different bytes")
	}
	if got := events.Count(EventReplayedUpload); got != 1 {
		t.Errorf("replayed-upload events = %d, want 1", got)
	}

	// State-sync to sweep 3: the sweep-2 announce becomes a pre-crash ghost.
	payload, err := transport.EncodePayload(transport.StateSync{
		Sweep:   3,
		Phase:   0,
		Cache:   make([]bool, inst.F),
		Routing: inst.NewUFMat().Rows(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sync := transport.Message{Type: transport.MsgStateSync, Sweep: 3, Phase: 0, Payload: payload}
	if err := bsEp.Send(ctx, "sbs-0", sync); err != nil {
		t.Fatal(err)
	}
	ackCtx, ackCancel := context.WithTimeout(ctx, 5*time.Second)
	defer ackCancel()
	for {
		msg, err := bsEp.Recv(ackCtx)
		if err != nil {
			t.Fatalf("no state-sync ack: %v", err)
		}
		if msg.Type == transport.MsgStateAck {
			if msg.Sweep != 3 {
				t.Fatalf("ack echoes sweep %d, want 3", msg.Sweep)
			}
			break
		}
	}

	if err := bsEp.Send(ctx, "sbs-0", announce); err != nil {
		t.Fatal(err)
	}
	// The stale announce must be dropped: no upload within a short window.
	quiet, quietCancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer quietCancel()
	for {
		msg, err := bsEp.Recv(quiet)
		if err != nil {
			break // silence — the ghost was filtered
		}
		if msg.Type == transport.MsgPolicyUpload {
			t.Fatal("stale announce was answered")
		}
	}
	if got := events.Count(EventStaleAnnounce); got != 1 {
		t.Errorf("stale-announce events = %d, want 1", got)
	}

	// The reply cache was cleared by the sync: a fresh announce at the
	// resume point is solved anew, not replayed.
	fresh, err := buildAnnounce(3, 0, yMinus)
	if err != nil {
		t.Fatal(err)
	}
	if err := bsEp.Send(ctx, "sbs-0", fresh); err != nil {
		t.Fatal(err)
	}
	recvUpload()
	if got := events.Count(EventReplayedUpload); got != 1 {
		t.Errorf("replayed-upload events after sync = %d, want still 1", got)
	}

	if err := bsEp.Send(ctx, "sbs-0", transport.Message{Type: transport.MsgDone}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("agent exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not stop on MsgDone")
	}
}
