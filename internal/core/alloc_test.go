package core

import (
	"testing"

	"edgecache/internal/model"
)

// allocSink keeps results alive so the compiler cannot elide the work
// under test.
var allocSink float64

// TestSweepPhaseZeroAllocs asserts the zero-alloc contract of the DUA hot
// path: after warm-up, one full SBS phase — deriving y_{-n} from the
// running aggregate, solving P_n in the workspace, installing the cache
// row and advancing the aggregate — performs zero heap allocations. This
// is the acceptance criterion for the flat-tensor refactor; any future
// allocation sneaking into Subproblem.Solve, AggregateTracker or the
// policy setters fails this test.
func TestSweepPhaseZeroAllocs(t *testing.T) {
	inst := benchScale(3, 30, 50)
	subs := make([]*Subproblem, inst.N)
	for n := 0; n < inst.N; n++ {
		sub, err := NewSubproblem(inst, n, DefaultSubproblemConfig())
		if err != nil {
			t.Fatal(err)
		}
		subs[n] = sub
	}
	x := model.NewCachingPolicy(inst)
	y := model.NewRoutingPolicy(inst)
	tracker := model.NewAggregateTracker(inst)
	yMinus := inst.NewUFMat()

	sweep := func() {
		for n := 0; n < inst.N; n++ {
			tracker.YMinusInto(inst, y, n, yMinus)
			res, err := subs[n].Solve(yMinus)
			if err != nil {
				panic(err)
			}
			x.SetRow(n, res.Cache)
			tracker.Install(inst, y, n, yMinus, res.Routing)
		}
		cost := model.TotalServingCostFromAggregate(inst, y, tracker.Aggregate())
		allocSink = cost.Total
	}

	// Warm up: the first solves size the per-subproblem workspaces.
	sweep()
	sweep()

	if allocs := testing.AllocsPerRun(10, sweep); allocs != 0 {
		t.Fatalf("steady-state sweep allocated %.1f times per run, want 0", allocs)
	}
}

// TestSolveZeroAllocsAfterWarmup pins the same contract on a single warm
// Solve call, which is the unit the benchmark tracks.
func TestSolveZeroAllocsAfterWarmup(t *testing.T) {
	inst := benchScale(3, 30, 50)
	sub, err := NewSubproblem(inst, 1, DefaultSubproblemConfig())
	if err != nil {
		t.Fatal(err)
	}
	yMinus := inst.NewUFMat()
	if _, err := sub.Solve(yMinus); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		res, err := sub.Solve(yMinus)
		if err != nil {
			panic(err)
		}
		allocSink = res.Gain
	}); allocs != 0 {
		t.Fatalf("warm Solve allocated %.1f times per run, want 0", allocs)
	}
}

// TestSortDensityOrderZeroAllocs pins the sorter idiom: re-sorting the
// density order through the reusable sort.Sort adapter must not allocate
// (the old sort.Slice closure allocated its func value and reflect shim on
// every call).
func TestSortDensityOrderZeroAllocs(t *testing.T) {
	inst := benchScale(3, 30, 50)
	sub, err := NewSubproblem(inst, 1, DefaultSubproblemConfig())
	if err != nil {
		t.Fatal(err)
	}
	sub.sortDensityOrder()
	if allocs := testing.AllocsPerRun(10, sub.sortDensityOrder); allocs != 0 {
		t.Fatalf("sortDensityOrder allocated %.1f times per run, want 0", allocs)
	}
}

// TestMemoProbeZeroAllocs pins the dirty-set fast path itself: probing the
// memo and returning the cached workspace result must stay allocation-free
// — the whole point of the skip is to cost less than the solve.
func TestMemoProbeZeroAllocs(t *testing.T) {
	inst := benchScale(3, 30, 50)
	sub, err := NewSubproblem(inst, 1, DefaultSubproblemConfig())
	if err != nil {
		t.Fatal(err)
	}
	tracker := model.NewAggregateTracker(inst)
	yMinus := inst.NewUFMat()
	if _, err := sub.Solve(yMinus); err != nil {
		t.Fatal(err)
	}
	sub.memoCapture(tracker)
	if allocs := testing.AllocsPerRun(10, func() {
		if !sub.memoHit(tracker) {
			panic("memo must hit on an unchanged tracker")
		}
		allocSink = sub.cachedResult().Gain
	}); allocs != 0 {
		t.Fatalf("memo probe allocated %.1f times per run, want 0", allocs)
	}
}

// TestSolveResultIsWorkspaceOwned documents the reuse contract: the Result
// returned by Solve aliases the subproblem's workspace and is overwritten
// by the next call. Callers that need to retain it must copy (SetRow and
// SetSBS/Install do exactly that).
func TestSolveResultIsWorkspaceOwned(t *testing.T) {
	inst := benchScale(2, 8, 12)
	sub, err := NewSubproblem(inst, 0, DefaultSubproblemConfig())
	if err != nil {
		t.Fatal(err)
	}
	yMinus := inst.NewUFMat()
	first, err := sub.Solve(yMinus)
	if err != nil {
		t.Fatal(err)
	}
	// Push every foreign aggregate to saturation: the second solve must
	// produce a different routing, and it must overwrite the first result
	// in place.
	for i := range yMinus.Data {
		yMinus.Data[i] = 1
	}
	second, err := sub.Solve(yMinus)
	if err != nil {
		t.Fatal(err)
	}
	if &first.Routing.Data[0] != &second.Routing.Data[0] {
		t.Fatal("Solve allocated a fresh Result; expected workspace reuse")
	}
}
