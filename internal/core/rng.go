package core

import "math/rand"

// NoiseSource is a seeded rand.Source that counts every draw, making the
// LPPM noise stream's position part of the checkpointable state: a resumed
// run reconstructs the exact stream by replaying Pos() draws from the seed
// (SeekTo), so crash-resume stays bit-identical even with privacy on.
//
// It deliberately implements ONLY rand.Source, not rand.Source64. The
// stdlib's internal source consumes TWO Int63 state steps per Uint64, so a
// counting Source64 would not see every state advance; without Uint64,
// every rand.Rand consumption path (Float64, NormFloat64, ExpFloat64, ...)
// funnels through the counted Int63, and (seed, draws) is a complete
// stream position.
//
// A NoiseSource is not safe for concurrent use, matching *rand.Rand.
type NoiseSource struct {
	seed  int64
	draws uint64
	src   rand.Source
}

var _ rand.Source = (*NoiseSource)(nil)

// NewNoiseSource returns a counting source at draw position zero.
func NewNoiseSource(seed int64) *NoiseSource {
	return &NoiseSource{seed: seed, src: rand.NewSource(seed)}
}

// Int63 implements rand.Source, counting the draw.
func (s *NoiseSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Seed implements rand.Source, restarting the stream at the new seed.
func (s *NoiseSource) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src = rand.NewSource(seed)
}

// Pos returns the stream identity: the seed and the number of Int63 draws
// consumed so far.
func (s *NoiseSource) Pos() (seed int64, draws uint64) {
	return s.seed, s.draws
}

// SeedValue returns the seed the stream was started from.
func (s *NoiseSource) SeedValue() int64 { return s.seed }

// SeekTo repositions the stream exactly draws draws past the seed,
// rewinding (re-seeding and replaying) when the target is behind the
// current position.
func (s *NoiseSource) SeekTo(draws uint64) {
	if draws < s.draws {
		s.src = rand.NewSource(s.seed)
		s.draws = 0
	}
	for s.draws < draws {
		s.draws++
		s.src.Int63()
	}
}
