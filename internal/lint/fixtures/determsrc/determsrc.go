// Package determsrc holds deliberate determinism violations and clean
// counterparts. Its import path is listed in the analyzer's scope so the
// test suite exercises the same path check production packages go
// through; the edgelint driver skips everything under
// internal/lint/fixtures.
package determsrc

import (
	"math/rand"
	"sort"
	"time"
)

// Violations reads the wall clock, the global rand source, and a map's
// iteration order — each one breaks seeded-run replayability.
func Violations(m map[string]int) int {
	start := time.Now()     // want `time\.Now breaks run replayability`
	total := rand.Intn(100) // want `global rand\.Intn is seeded per-process`
	for k := range m {      // want `map iteration order is nondeterministic`
		total += len(k)
	}
	elapsed := time.Since(start) // want `time\.Since breaks run replayability`
	return total + int(elapsed)
}

// Clean shows the approved forms: injected seeded source, and key
// collection whose order the subsequent sort restores (the one map range
// worth suppressing, with the reason written down).
func Clean(r *rand.Rand, m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m { //edgecache:lint-ignore determinism iteration order is laundered by the sort below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := r.Intn(100)
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// CleanMethods proves that methods on injected values stay allowed even
// when their packages export banned top-level twins.
func CleanMethods(r *rand.Rand, deadline time.Time) bool {
	return r.Float64() < 0.5 && deadline.IsZero()
}
