// Package model defines the joint caching-and-routing problem studied by
// Zeng et al., "Privacy-Preserving Distributed Edge Caching for Mobile Data
// Offloading in 5G Networks" (ICDCS 2020): one macro base station (BS),
// N small base stations (SBSs), U mobile-user (MU) groups and F unit-size
// contents.
//
// The package holds the problem data (Instance), the decision variables
// (CachingPolicy, RoutingPolicy), the serving-cost objective (eq. 5-7 of the
// paper) and feasibility checking for the constraint system (eq. 1-4).
// Everything else in this repository — the distributed algorithm, the
// privacy mechanism, the baselines and the experiment harness — is written
// against these types.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Instance is an immutable description of one problem instance.
//
// Index conventions used across the whole repository:
//
//	n ∈ [0,N) indexes SBSs,
//	u ∈ [0,U) indexes MU groups,
//	f ∈ [0,F) indexes contents.
//
// All contents have unit size (paper §II-A), so cache capacities are counted
// in contents and bandwidth in served request units.
type Instance struct {
	// N, U and F are the numbers of SBSs, MU groups and contents.
	N, U, F int

	// Demand[u][f] is λ_uf, the mean request arrival rate of MU group u
	// for content f. Demands may exceed 1: a group aggregates many users.
	Demand [][]float64

	// Links[n][u] is l_nu ∈ {0,1}: whether SBS n can serve MU group u.
	Links [][]bool

	// CacheCap[n] is C_n, the number of contents SBS n can cache (eq. 1).
	CacheCap []int

	// Bandwidth[n] is B_n, the total request units SBS n can serve (eq. 3).
	Bandwidth []float64

	// EdgeCost[n][u] is d_nu, the weighted transmission cost for SBS n to
	// serve one request unit of MU group u.
	EdgeCost [][]float64

	// BSCost[u] is d̂_u, the weighted transmission cost for the BS to serve
	// one request unit of MU group u. The paper assumes d̂_u ≫ d_nu.
	BSCost []float64
}

// Validate checks the structural and numeric consistency of the instance.
// It returns a descriptive error for the first problem found, or nil if the
// instance is well-formed.
func (in *Instance) Validate() error {
	if in == nil {
		return errors.New("model: nil instance")
	}
	if in.N <= 0 || in.U <= 0 || in.F <= 0 {
		return fmt.Errorf("model: dimensions must be positive, got N=%d U=%d F=%d", in.N, in.U, in.F)
	}
	if len(in.Demand) != in.U {
		return fmt.Errorf("model: Demand has %d rows, want U=%d", len(in.Demand), in.U)
	}
	for u, row := range in.Demand {
		if len(row) != in.F {
			return fmt.Errorf("model: Demand[%d] has %d entries, want F=%d", u, len(row), in.F)
		}
		for f, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("model: Demand[%d][%d] = %v is not a finite non-negative rate", u, f, v)
			}
		}
	}
	if len(in.Links) != in.N {
		return fmt.Errorf("model: Links has %d rows, want N=%d", len(in.Links), in.N)
	}
	for n, row := range in.Links {
		if len(row) != in.U {
			return fmt.Errorf("model: Links[%d] has %d entries, want U=%d", n, len(row), in.U)
		}
	}
	if len(in.CacheCap) != in.N {
		return fmt.Errorf("model: CacheCap has %d entries, want N=%d", len(in.CacheCap), in.N)
	}
	for n, c := range in.CacheCap {
		if c < 0 {
			return fmt.Errorf("model: CacheCap[%d] = %d is negative", n, c)
		}
	}
	if len(in.Bandwidth) != in.N {
		return fmt.Errorf("model: Bandwidth has %d entries, want N=%d", len(in.Bandwidth), in.N)
	}
	for n, b := range in.Bandwidth {
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("model: Bandwidth[%d] = %v is not a finite non-negative capacity", n, b)
		}
	}
	if len(in.EdgeCost) != in.N {
		return fmt.Errorf("model: EdgeCost has %d rows, want N=%d", len(in.EdgeCost), in.N)
	}
	for n, row := range in.EdgeCost {
		if len(row) != in.U {
			return fmt.Errorf("model: EdgeCost[%d] has %d entries, want U=%d", n, len(row), in.U)
		}
		for u, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("model: EdgeCost[%d][%d] = %v is not a finite non-negative cost", n, u, v)
			}
		}
	}
	if len(in.BSCost) != in.U {
		return fmt.Errorf("model: BSCost has %d entries, want U=%d", len(in.BSCost), in.U)
	}
	for u, v := range in.BSCost {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("model: BSCost[%d] = %v is not a finite non-negative cost", u, v)
		}
	}
	return nil
}

// Clone returns a deep copy of the instance. The copy shares no backing
// storage with the receiver, so callers may mutate it freely (the experiment
// harness uses this for parameter sweeps).
func (in *Instance) Clone() *Instance {
	out := &Instance{N: in.N, U: in.U, F: in.F}
	out.Demand = cloneMatrix(in.Demand)
	out.Links = cloneBoolMatrix(in.Links)
	out.CacheCap = append([]int(nil), in.CacheCap...)
	out.Bandwidth = append([]float64(nil), in.Bandwidth...)
	out.EdgeCost = cloneMatrix(in.EdgeCost)
	out.BSCost = append([]float64(nil), in.BSCost...)
	return out
}

// TotalDemand returns the aggregate request rate Σ_u Σ_f λ_uf.
func (in *Instance) TotalDemand() float64 {
	var sum float64
	for _, row := range in.Demand {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// ReachableDemand returns the part of the aggregate demand that at least one
// SBS is linked to. Demand from unlinked MU groups can only ever be served
// by the BS, so it is a constant offset in every policy comparison.
func (in *Instance) ReachableDemand() float64 {
	var sum float64
	for u := 0; u < in.U; u++ {
		linked := false
		for n := 0; n < in.N; n++ {
			if in.Links[n][u] {
				linked = true
				break
			}
		}
		if !linked {
			continue
		}
		for f := 0; f < in.F; f++ {
			sum += in.Demand[u][f]
		}
	}
	return sum
}

// LinkCount returns the number of (n,u) pairs with l_nu = 1.
func (in *Instance) LinkCount() int {
	count := 0
	for _, row := range in.Links {
		for _, l := range row {
			if l {
				count++
			}
		}
	}
	return count
}

// LinkedGroups returns the MU groups linked to SBS n, in increasing order.
func (in *Instance) LinkedGroups(n int) []int {
	var groups []int
	for u := 0; u < in.U; u++ {
		if in.Links[n][u] {
			groups = append(groups, u)
		}
	}
	return groups
}

// MaxCost returns W = Σ_u d̂_u Σ_f λ_uf, the serving cost when the BS serves
// every request directly (Theorem 5 of the paper uses this as the worst
// case). It is also the cost of the empty routing policy.
func (in *Instance) MaxCost() float64 {
	var sum float64
	for u := 0; u < in.U; u++ {
		var demand float64
		for f := 0; f < in.F; f++ {
			demand += in.Demand[u][f]
		}
		sum += in.BSCost[u] * demand
	}
	return sum
}

// Fingerprint returns a stable 64-bit FNV-1a digest of the instance data.
// Checkpoints embed it so a snapshot cannot be resumed against a different
// instance that happens to share the same dimensions — the trajectories
// would silently diverge instead of failing fast.
func (in *Instance) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mixF := func(v float64) { mix(math.Float64bits(v)) }
	mix(uint64(in.N))
	mix(uint64(in.U))
	mix(uint64(in.F))
	for _, row := range in.Demand {
		for _, v := range row {
			mixF(v)
		}
	}
	for _, row := range in.Links {
		for _, l := range row {
			if l {
				mix(1)
			} else {
				mix(0)
			}
		}
	}
	for _, c := range in.CacheCap {
		mix(uint64(c))
	}
	for _, b := range in.Bandwidth {
		mixF(b)
	}
	for _, row := range in.EdgeCost {
		for _, v := range row {
			mixF(v)
		}
	}
	for _, v := range in.BSCost {
		mixF(v)
	}
	return h
}

func cloneMatrix(m [][]float64) [][]float64 {
	if m == nil {
		return nil
	}
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

func cloneBoolMatrix(m [][]bool) [][]bool {
	if m == nil {
		return nil
	}
	out := make([][]bool, len(m))
	for i, row := range m {
		out[i] = append([]bool(nil), row...)
	}
	return out
}

// NewZeroMatrix returns a U×F zero matrix in nested form, shaped like a
// demand matrix for this instance. The solver layers work on the flat Mat
// (see NewUFMat); the nested form survives for the serialization and
// transport boundaries, whose wire schema stays nested for stability.
func (in *Instance) NewZeroMatrix() [][]float64 {
	m := make([][]float64, in.U)
	backing := make([]float64, in.U*in.F)
	for u := range m {
		m[u], backing = backing[:in.F:in.F], backing[in.F:]
	}
	return m
}

// NewUFMat returns a flat U×F zero matrix shaped like an aggregate routing
// matrix for this instance.
func (in *Instance) NewUFMat() Mat { return NewMat(in.U, in.F) }
