package soak

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReproRoundTrip(t *testing.T) {
	in := Repro{
		Invariants: []string{"converged", "accounting"},
		Episode:    3,
		Seed:       3000010,
		SBSs:       3, Groups: 10, LinkCount: 14, Videos: 16, CacheCap: 4,
		Spec:   "seed=7,drop=0.1,crash=1@2,restart=1@4",
		Detail: []string{"converged: did not converge in 40 sweeps"},
	}
	path := filepath.Join(t.TempDir(), "repro.txt")
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := ParseReproFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Detail lines travel as comments and invariants come back sorted;
	// everything else round-trips verbatim.
	want := in
	want.Detail = nil
	want.Invariants = []string{"accounting", "converged"}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("round trip = %+v, want %+v", out, want)
	}
}

func TestReproStringIsCommentedAndReplayable(t *testing.T) {
	r := Repro{Invariants: []string{"injected"}, Seed: 1, Spec: "seed=1,crash=0@1,restart=0@2",
		Detail: []string{"injected: multi\nline detail"}}
	s := r.String()
	if !strings.Contains(s, "# replay: go run ./cmd/edgesim -soak -soak-repro") {
		t.Errorf("missing replay hint:\n%s", s)
	}
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.Contains(line, ":") {
			t.Errorf("line %q is neither comment nor key: value", line)
		}
	}
	// Multi-line detail must not escape the comment prefix.
	if strings.Contains(s, "\nline detail") && !strings.Contains(s, "# line detail") {
		t.Errorf("detail line leaked uncommented:\n%s", s)
	}
}

func TestReproParseRejectsCorruptSpec(t *testing.T) {
	_, err := ParseRepro("seed: 1\nspec: crash=9000@zzz\n")
	if err == nil {
		t.Fatal("want parse error for corrupt spec")
	}
	// The chaos parser's self-diagnosing error must surface, naming the
	// offending spec.
	if !strings.Contains(err.Error(), "crash=9000@zzz") {
		t.Errorf("error %q does not name the corrupt spec", err)
	}
}

func TestReproParseRejectsCorruptProcSpec(t *testing.T) {
	_, err := ParseRepro("proc-spec: kill=@@@\n")
	if err == nil || !strings.Contains(err.Error(), "proc-spec") {
		t.Fatalf("err = %v, want a proc-spec parse error", err)
	}
}

func TestReproParseRejectsUnknownKeyAndBadInt(t *testing.T) {
	if _, err := ParseRepro("wat: 1\n"); err == nil || !strings.Contains(err.Error(), `"wat"`) {
		t.Errorf("unknown key: err = %v", err)
	}
	if _, err := ParseRepro("episode: twelve\n"); err == nil || !strings.Contains(err.Error(), "episode") {
		t.Errorf("bad int: err = %v", err)
	}
	if _, err := ParseRepro("no separator here\n"); err == nil {
		t.Error("want error for a line without a colon")
	}
}
