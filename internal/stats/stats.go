// Package stats provides the summary statistics the experiment harness
// uses to aggregate runs over random seeds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator), or NaN
// for fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest value, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics, or NaN for an empty slice or
// out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95HalfWidth returns the half-width of a normal-approximation 95%
// confidence interval for the mean (1.96·s/√n), or NaN for fewer than two
// values.
func CI95HalfWidth(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the descriptive statistics of one sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95      float64
	CI95HalfWidth float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N:             len(xs),
		Mean:          Mean(xs),
		Std:           StdDev(xs),
		Min:           Min(xs),
		Max:           Max(xs),
		P50:           Percentile(xs, 50),
		P95:           Percentile(xs, 95),
		CI95HalfWidth: CI95HalfWidth(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g std=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.CI95HalfWidth, s.Std, s.Min, s.P50, s.P95, s.Max)
}

// RelativeChange returns (a−b)/b, the relative difference of a versus the
// reference b. The experiment harness uses it for "x% more than optimum"
// style figures. Returns NaN when b is zero.
func RelativeChange(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return (a - b) / b
}
