package model

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
)

// saveAt stores the canonical test checkpoint stamped at (sweep, phase).
func saveAt(t *testing.T, store *CheckpointStore, sweep, phase int) *Checkpoint {
	t.Helper()
	ck := testCheckpoint()
	ck.Sweep = sweep
	ck.Phase = phase
	if err := store.Save(ck); err != nil {
		t.Fatalf("save sweep %d: %v", sweep, err)
	}
	return ck
}

// TestDeepLatestBitRotFallback flips one byte in the newest snapshot on
// disk and asserts DeepLatest falls back to the previous intact snapshot
// and quarantines the corrupt file — the recovery behavior the soak disk
// invariant depends on. Plain Latest keeps its non-mutating skip.
func TestDeepLatestBitRotFallback(t *testing.T) {
	dir := t.TempDir()
	store, err := NewCheckpointStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	saveAt(t, store, 1, 0)
	want := saveAt(t, store, 2, 0)
	saveAt(t, store, 3, 0)

	// Flip one byte mid-file in the newest snapshot.
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Plain Latest skips without touching the directory.
	if ck, err := store.Latest(); err != nil || ck.Sweep != want.Sweep {
		t.Fatalf("Latest after bit-rot: ck=%+v err=%v, want sweep %d", ck, err, want.Sweep)
	}
	if _, err := os.Stat(newest); err != nil {
		t.Fatalf("Latest must not move the corrupt file: %v", err)
	}

	// DeepLatest falls back AND quarantines.
	ck, err := store.DeepLatest()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Sweep != want.Sweep || !reflect.DeepEqual(ck, want) {
		t.Fatalf("DeepLatest returned sweep %d, want intact sweep %d", ck.Sweep, want.Sweep)
	}
	if _, err := os.Stat(newest); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file still under its snapshot name: %v", err)
	}
	if _, err := os.Stat(newest + ".corrupt"); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	// The quarantined file no longer shadows saves or listings.
	names, err = store.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.Contains(n, ".corrupt") {
			t.Fatalf("List returned quarantined file %s", n)
		}
	}
}

// TestSaveENOSPCKeepsStoreReadable forces a disk-full write mid-Save and
// asserts the error surfaces, the temp file is cleaned up, and every
// previously saved snapshot is still readable.
func TestSaveENOSPCKeepsStoreReadable(t *testing.T) {
	dir := t.TempDir()
	clean, err := NewCheckpointStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := saveAt(t, clean, 1, 0)

	ffs := NewFaultFS(OSCheckpointFS{}, FaultFSConfig{Seed: 7, ENOSPC: 1})
	faulty, err := NewCheckpointStoreFS(dir, 5, ffs)
	if err != nil {
		t.Fatal(err)
	}
	ck := testCheckpoint()
	ck.Sweep = 2
	if err := faulty.Save(ck); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Save under ENOSPC: err=%v, want ENOSPC", err)
	}
	if got := ffs.Stats().ENOSPC; got == 0 {
		t.Fatal("fault FS reports no injected ENOSPC")
	}

	// No temp or torn file left behind; the old snapshot still loads.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after failed save", e.Name())
		}
	}
	got, err := clean.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("surviving snapshot changed after failed save")
	}
}

// TestTornRenameRecovery injects a torn rename (prefix lands under the
// final name) and asserts DeepLatest recovers to the previous intact
// snapshot with the torn file quarantined.
func TestTornRenameRecovery(t *testing.T) {
	dir := t.TempDir()
	clean, err := NewCheckpointStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := saveAt(t, clean, 1, 0)

	ffs := NewFaultFS(OSCheckpointFS{}, FaultFSConfig{Seed: 3, TornRename: 1})
	faulty, err := NewCheckpointStoreFS(dir, 5, ffs)
	if err != nil {
		t.Fatal(err)
	}
	ck := testCheckpoint()
	ck.Sweep = 2
	// The store believes the save succeeded — that is the point of the
	// torn-rename fault: only CRC verification can catch it later.
	if err := faulty.Save(ck); err != nil {
		t.Fatalf("torn-rename save should appear to succeed: %v", err)
	}
	if ffs.Stats().TornRenames == 0 {
		t.Fatal("fault FS reports no injected torn rename")
	}

	got, err := clean.DeepLatest()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DeepLatest after torn rename returned sweep %d, want %d", got.Sweep, want.Sweep)
	}
	report, err := clean.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if report.Intact != 1 {
		t.Fatalf("Scrub reports %d intact, want 1 (quarantined: %v)", report.Intact, report.Quarantined)
	}
}

// TestScrubQuarantinesAllCorrupt corrupts two of three snapshots and
// checks the Scrub report.
func TestScrubQuarantinesAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	store, err := NewCheckpointStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	saveAt(t, store, 1, 0)
	saveAt(t, store, 2, 0)
	saveAt(t, store, 3, 0)
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{names[0], names[2]} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	report, err := store.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if report.Intact != 1 || len(report.Quarantined) != 2 {
		t.Fatalf("Scrub report %+v, want 1 intact / 2 quarantined", report)
	}
	ck, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Sweep != 2 {
		t.Fatalf("surviving snapshot sweep %d, want 2", ck.Sweep)
	}
}

// TestFaultFSDeterministic pins that the same seed over the same operation
// sequence injects the same faults — soak repro files record the disk
// seed, so replay depends on it.
func TestFaultFSDeterministic(t *testing.T) {
	run := func() FaultFSStats {
		dir := t.TempDir()
		ffs := NewFaultFS(OSCheckpointFS{}, FaultFSConfig{
			Seed: 99, ShortWrite: 0.3, ENOSPC: 0.2, RenameFail: 0.2, TornRename: 0.2, BitRot: 0.3,
		})
		store, err := NewCheckpointStoreFS(dir, 10, ffs)
		if err != nil {
			t.Fatal(err)
		}
		for sweep := 1; sweep <= 10; sweep++ {
			ck := testCheckpoint()
			ck.Sweep = sweep
			store.Save(ck) // errors are the point
		}
		return ffs.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different injected faults: %+v vs %+v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("no faults injected at these probabilities")
	}
}
