package edgecache_test

import (
	"fmt"
	"log"

	"edgecache"
	"edgecache/internal/model"
)

// Example demonstrates the primary entry point: build a small network and
// jointly optimize caching and routing with the paper's Algorithm 1.
func Example() {
	inst := &edgecache.Instance{
		N: 2, U: 2, F: 3,
		Demand: [][]float64{
			{20, 5, 0},
			{0, 10, 15},
		},
		Links:     [][]bool{{true, false}, {true, true}},
		CacheCap:  []int{1, 2},
		Bandwidth: []float64{25, 30},
		EdgeCost:  [][]float64{{1, 0}, {1, 1}},
		BSCost:    []float64{100, 120},
	}
	res, err := edgecache.Solve(inst)
	if err != nil {
		log.Fatal(err)
	}
	feasible := len(edgecache.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing)) == 0
	fmt.Println("converged:", res.Converged)
	fmt.Println("feasible:", feasible)
	fmt.Println("beats all-backhaul:", res.Solution.Cost.Total < inst.MaxCost())
	// Output:
	// converged: true
	// feasible: true
	// beats all-backhaul: true
}

// ExampleSolveWithPrivacy shows the LPPM-protected variant with privacy
// accounting.
func ExampleSolveWithPrivacy() {
	inst, err := edgecache.DefaultScenario().Build()
	if err != nil {
		log.Fatal(err)
	}
	var ledger edgecache.Accountant
	res, err := edgecache.SolveWithPrivacy(inst, edgecache.PrivacyParams{
		Epsilon: 0.5, Delta: 0.5, Seed: 42, Accountant: &ledger,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", model.IsFeasible(inst, res.Solution.Caching, res.Solution.Routing))
	fmt.Println("per-SBS budgets tracked:", len(ledger.ByLabel()) == inst.N)
	// Output:
	// feasible: true
	// per-SBS budgets tracked: true
}
