package core

import (
	"fmt"
	"math"

	"edgecache/internal/model"
)

// This file is the pluggable sweep-engine layer. Algorithm 1's outer loop
// — cost evaluation, best-solution tracking, the γ stop rule, checkpoint
// cadence and resume — is identical no matter how the per-SBS sub-problems
// are ordered within a sweep, so it lives once in Driver. What varies is
// the update discipline inside one sweep, and that is the SweepEngine
// interface: the sequential Gauss-Seidel sweep (the paper's Algorithm 1),
// the sequential reference Jacobi round (§VII), and the goroutine-sharded
// parallel Jacobi engine that computes the identical trajectory on a
// worker pool.

// EngineKind and its values are re-exported from internal/model, where the
// checkpoint codec serializes them.
type EngineKind = model.EngineKind

// Engine kinds accepted by Config.Engine.
const (
	EngineGaussSeidel    = model.EngineGaussSeidel
	EngineJacobi         = model.EngineJacobi
	EngineParallelJacobi = model.EngineParallelJacobi
)

// SweepState is everything a run carries between sweeps — the live
// counterpart of a model.Checkpoint. NewSweepState builds the
// iteration-zero state; Coordinator.Resume rebuilds one from a snapshot.
type SweepState struct {
	// Order is the SBS update order of the run. Gauss-Seidel honours it;
	// the Jacobi engines require the identity order (a Jacobi round has no
	// update order — every SBS sees the same pre-round state).
	Order []int
	// Sweep and Phase are the NEXT point to execute: order position Phase
	// of sweep Sweep.
	Sweep, Phase int
	// X and Y are the BS's view of the policies (post-LPPM when privacy is
	// on).
	X *model.CachingPolicy
	Y *model.RoutingPolicy
	// Tracker maintains the masked aggregate Σ_n y·l incrementally: each
	// Gauss-Seidel phase derives y_{-n} in O(U·F), and the Jacobi engines
	// rebuild it once per round in O(N·U·F) — replacing the per-phase
	// O(N·U·F) AggregateExcept rebuild the seed implementation performed.
	Tracker *model.AggregateTracker
	// History is the per-sweep cost trail; PrevCost the γ reference.
	History  []float64
	PrevCost float64
	// Best is the cheapest solution seen so far.
	Best *model.Solution
}

// NewSweepState returns the all-zero initial state for one run over inst.
// The order slice is retained, not copied.
func NewSweepState(inst *model.Instance, order []int) *SweepState {
	return &SweepState{
		Order:    order,
		X:        model.NewCachingPolicy(inst),
		Y:        model.NewRoutingPolicy(inst),
		Tracker:  model.NewAggregateTracker(inst),
		PrevCost: math.Inf(1),
	}
}

// identityOrder returns 0..n-1.
func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// SweepEngine executes one sweep (Gauss-Seidel) or one round (Jacobi) of
// the distributed updating algorithm. Implementations mutate st in place:
// after Sweep returns, st.X and st.Y hold the post-sweep policies and
// st.Tracker the matching aggregate, bit-identical to what a full
// AggregateInto rebuild of st.Y would produce for the Jacobi engines, or
// the incremental running sums for Gauss-Seidel.
type SweepEngine interface {
	// Kind identifies the engine; checkpoints record it and resume
	// requires a same-family engine.
	Kind() model.EngineKind
	// Sweep runs order positions [first, len(st.Order)) of sweep `sweep`.
	// first is nonzero only when resuming mid-sweep; engines that cannot
	// restart mid-sweep (the Jacobi family, whose rounds are atomic)
	// return an error for first != 0.
	//
	// phaseDone, when non-nil, is invoked after every completed phase
	// except the sweep's last, with the next order position to execute —
	// the mid-sweep checkpoint hook. Engines without mid-sweep resume
	// points never call it.
	Sweep(st *SweepState, sweep, first int, phaseDone func(nextPhase int) error) error
	// Close releases engine resources (the parallel engine's worker
	// pool). It is idempotent; the sequential engines are no-ops.
	Close()
}

// workCounter is the optional engine face of the dirty-set accounting:
// engines that track memo hits expose cumulative counters and the Driver
// turns them into per-sweep deltas in RunResult.Work. Engines without the
// accounting (the sim BS sweeper) simply don't implement it.
type workCounter interface {
	// workCounts returns the engine-lifetime totals of sub-problems solved
	// and served from the memo.
	workCounts() (solves, skipped uint64)
}

// Driver is the shared outer loop of Algorithm 1: it alternates
// engine sweeps with cost evaluation, best tracking, the γ stop rule and
// checkpoint capture. The in-process Coordinator and the message-passing
// BS agent (internal/sim) both run this exact loop, which is what keeps
// the two deployments bit-for-bit equivalent.
type Driver struct {
	// Inst is the problem instance.
	Inst *model.Instance
	// Gamma is the relative-improvement stop threshold; MaxSweeps the
	// sweep budget. Both must be set (Config.withDefaults does).
	Gamma     float64
	MaxSweeps int
	// Checkpoint, when non-nil, sets the capture cadence; Snapshot must
	// then be set and is called with the resume point (sweep, phase) to
	// capture.
	Checkpoint *CheckpointConfig
	Snapshot   func(st *SweepState, res *RunResult, sweep, phase int) error
	// HoldConvergence, when non-nil, is consulted after every sweep; a
	// true return vetoes the γ stop for that sweep. The sim BS agent uses
	// it when faults corrupted the sweep's cost signal (missed uploads,
	// quarantined SBSs).
	HoldConvergence func() bool
}

// Run drives the engine from st (iteration zero or a resumed snapshot) to
// completion.
//
// The BS evaluates the uploaded aggregate after every sweep anyway
// (Algorithm 1's stop rule needs f(y(τ))), so it retains the cheapest
// policy seen and returns that. Without LPPM the sweep costs are
// non-increasing and this is exactly the final sweep; with LPPM per-sweep
// noise redraws can drift the trajectory, and keeping the best sweep is
// the natural BS-side behaviour.
func (d *Driver) Run(eng SweepEngine, st *SweepState) (*RunResult, error) {
	res := &RunResult{History: st.History, Sweeps: len(st.History)}
	every := 1
	if d.Checkpoint != nil && d.Checkpoint.EverySweeps > 0 {
		every = d.Checkpoint.EverySweeps
	}
	var phaseDone func(int) error
	wc, _ := eng.(workCounter)
	var prevSolves, prevSkipped uint64
	if wc != nil {
		prevSolves, prevSkipped = wc.workCounts()
	}

	for sweep := st.Sweep; sweep < d.MaxSweeps; sweep++ {
		first := 0
		if sweep == st.Sweep {
			first = st.Phase
		}
		if d.Checkpoint != nil && d.Checkpoint.EachPhase {
			s := sweep // capture per iteration for the closure
			phaseDone = func(nextPhase int) error { return d.Snapshot(st, res, s, nextPhase) }
		}
		if err := eng.Sweep(st, sweep, first, phaseDone); err != nil {
			return nil, err
		}
		if wc != nil {
			solves, skipped := wc.workCounts()
			res.Work = append(res.Work, SweepWork{
				Solves:  int(solves - prevSolves),
				Skipped: int(skipped - prevSkipped),
			})
			prevSolves, prevSkipped = solves, skipped
		}
		cost := model.TotalServingCostFromAggregate(d.Inst, st.Y, st.Tracker.Aggregate())
		res.History = append(res.History, cost.Total)
		res.Sweeps = sweep + 1
		if st.Best == nil || cost.Total < st.Best.Cost.Total {
			st.Best = &model.Solution{Caching: st.X.Clone(), Routing: st.Y.Clone(), Cost: cost}
		}

		// Algorithm 1's stop rule: relative improvement below γ. The
		// absolute value guards against noise-induced oscillation under
		// LPPM (Theorem 3 guarantees convergence of the underlying
		// sequence, but individual sweeps can regress slightly).
		hold := d.HoldConvergence != nil && d.HoldConvergence()
		if !hold && cost.Total > 0 && math.Abs(st.PrevCost-cost.Total)/cost.Total <= d.Gamma {
			res.Converged = true
			st.PrevCost = cost.Total
			break
		}
		st.PrevCost = cost.Total
		if d.Checkpoint != nil && (sweep+1)%every == 0 {
			if err := d.Snapshot(st, res, sweep+1, 0); err != nil {
				return nil, err
			}
		}
	}

	if st.Best == nil { // MaxSweeps == 0 cannot happen after withDefaults, but stay safe
		st.Best = &model.Solution{Caching: st.X, Routing: st.Y, Cost: model.TotalServingCost(d.Inst, st.Y)}
	}
	res.Solution = st.Best
	return res, nil
}

// gsEngine is the paper's Algorithm 1 update discipline: SBSs update one
// at a time in st.Order, each solving against the aggregate that already
// includes every earlier update of the same sweep.
type gsEngine struct {
	c      *Coordinator
	yMinus model.Mat
	// solves and skips are the engine-lifetime dirty-set accounting the
	// Driver slices into per-sweep deltas.
	solves, skips uint64
}

func newGSEngine(c *Coordinator) *gsEngine {
	return &gsEngine{c: c, yMinus: c.inst.NewUFMat()}
}

func (e *gsEngine) Kind() model.EngineKind { return model.EngineGaussSeidel }
func (e *gsEngine) Close()                 {}

func (e *gsEngine) workCounts() (uint64, uint64) { return e.solves, e.skips }

func (e *gsEngine) Sweep(st *SweepState, sweep, first int, phaseDone func(int) error) error {
	c, inst := e.c, e.c.inst
	memo := c.incremental()
	for pi := first; pi < len(st.Order); pi++ {
		n := st.Order[pi]
		// Each phase is one mutation stage: bumps from this phase's Install
		// stamp a clock value newer than any memo key captured before it.
		st.Tracker.BeginPhase()
		// The BS broadcasts the aggregate routing; SBS n subtracts its
		// own last upload to obtain y_{-n} (eq. 25).
		st.Tracker.YMinusInto(inst, st.Y, n, e.yMinus)
		if c.cfg.BroadcastTap != nil {
			c.cfg.BroadcastTap(sweep, n, e.yMinus.Rows())
		}
		var sub *Result
		if memo && c.subs[n].memoHit(st.Tracker) {
			// Nothing SBS n reads changed since its last solve, so the
			// solver — deterministic in y_{-n} — would reproduce the cached
			// result bit for bit. Everything else in the phase (LPPM draws,
			// the install round-trip) still runs, so the trajectory and the
			// noise stream position stay byte-equal to the unskipped run's.
			sub = c.subs[n].cachedResult()
			e.skips++
		} else {
			var err error
			sub, err = c.subs[n].Solve(e.yMinus)
			if err != nil {
				c.invalidateMemos()
				return err
			}
			if memo {
				// Key the memo on the pre-install epochs: the result answers
				// the state the solve read, and the install below must
				// invalidate it if the round-trip moves any bits.
				c.subs[n].memoCapture(st.Tracker)
			}
			e.solves++
		}
		upload := sub.Routing
		if c.lppm != nil {
			var err error
			upload, err = c.lppm.PerturbSBS(n, sub.Routing)
			if err != nil {
				c.invalidateMemos()
				return err
			}
		}
		if c.cfg.UploadTap != nil {
			c.cfg.UploadTap(sweep, n, sub.Routing.Rows(), upload.Rows())
		}
		st.X.SetRow(n, sub.Cache)
		st.Tracker.Install(inst, st.Y, n, e.yMinus, upload)
		if phaseDone != nil && pi+1 < len(st.Order) {
			if err := phaseDone(pi + 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// newEngine builds the engine selected by cfg.Engine for this
// coordinator.
func (c *Coordinator) newEngine() (SweepEngine, error) {
	switch c.cfg.Engine {
	case model.EngineGaussSeidel:
		return newGSEngine(c), nil
	case model.EngineJacobi:
		return newJacobiEngine(c), nil
	case model.EngineParallelJacobi:
		return newParallelJacobiEngine(c, c.cfg.Workers), nil
	default:
		return nil, fmt.Errorf("core: unknown engine kind %v", c.cfg.Engine)
	}
}

// runEngine wires the coordinator's configuration into the shared driver
// and runs eng from st.
func (c *Coordinator) runEngine(eng SweepEngine, st *SweepState) (*RunResult, error) {
	d := &Driver{
		Inst:      c.inst,
		Gamma:     c.cfg.Gamma,
		MaxSweeps: c.cfg.MaxSweeps,
	}
	if ckpt := c.cfg.Checkpoint; ckpt != nil {
		d.Checkpoint = ckpt
		kind := eng.Kind()
		d.Snapshot = func(st *SweepState, res *RunResult, sweep, phase int) error {
			return c.snapshot(ckpt.Sink, kind, st, res, sweep, phase)
		}
	}
	return d.Run(eng, st)
}
