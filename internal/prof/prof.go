// Package prof is the shared pprof/trace harness behind the CLI profiling
// flags (-cpuprofile, -memprofile, -trace on benchfig and edgesim). It
// exists so both commands expose the identical contract: CPU and
// execution-trace capture bracket the run, and the heap profile is
// captured once at stop time after a forced GC — the steady-state live
// set, which is the number the zero-alloc sweep contract is about.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Session holds the open profile destinations between Start and Stop.
type Session struct {
	cpuFile   *os.File
	traceFile *os.File
	memPath   string
}

// Start begins the capture described by the three paths; any of them may
// be empty to skip that profile. On error every already-started capture is
// unwound, so a failed Start never leaks a running profiler.
func Start(cpuPath, memPath, tracePath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		s.cpuFile = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			s.abort()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			s.abort()
			return nil, fmt.Errorf("prof: trace: %w", err)
		}
		s.traceFile = f
	}
	return s, nil
}

// abort unwinds a partially started session.
func (s *Session) abort() {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		s.cpuFile.Close()
		s.cpuFile = nil
	}
}

// Stop ends every capture the session started and writes the heap profile,
// if one was requested. Safe to call on a nil session and idempotent, so
// callers can `defer sess.Stop()` and also stop explicitly before reading
// the files.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.traceFile != nil {
		trace.Stop()
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			keep(fmt.Errorf("prof: mem profile: %w", err))
		} else {
			runtime.GC() // materialize the steady-state live set
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		s.memPath = ""
	}
	return firstErr
}
