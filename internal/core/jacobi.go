package core

import (
	"fmt"

	"edgecache/internal/model"
)

// jacobiEngine is the sequential reference implementation of the
// parallel-update variant the paper leaves as future work (§VII): instead
// of the Gauss-Seidel sweep, every SBS of a round solves its sub-problem
// against the same pre-round aggregate — the classic Jacobi update, which
// models SBSs that compute concurrently on possibly-stale broadcast state.
//
// Because two SBSs can simultaneously claim the same residual demand, the
// raw Jacobi round may violate the no-overserve constraint (4). The BS
// repairs each round: wherever the aggregate exceeds one, every SBS's
// share of that demand is scaled down proportionally (the BS already owns
// the aggregate, so the repair needs no extra information exchange). The
// repaired policy is what the BS evaluates and finally returns, so every
// result is feasible.
//
// The per-SBS y_{-n} comes from the aggregate tracker in O(U·F) (the
// round's aggregate minus SBS n's own pre-round block), and the tracker is
// rebuilt once per round in O(N·U·F) — replacing the seed implementation's
// per-phase AggregateExcept recompute, which cost O(N·U·F) for every SBS
// of every round. The rebuild and the repair both accumulate each (u,f)
// entry over n in ascending order, so the parallel engine, which shards
// the same loops by row ranges, produces bit-identical aggregates.
type jacobiEngine struct {
	c      *Coordinator
	yMinus model.Mat
	// next receives the round's uploads while st.Y still holds the
	// pre-round policy every SBS observes; the two swap at the end of the
	// round, recycling the old tensor as the next round's buffer.
	next *model.RoutingPolicy
	// dirtyBlock[n] records whether SBS n's round-k block differs bitwise
	// from its round-(k−1) block; dirtyRow[u] whether any dirty block is
	// linked to user row u. Only dirty rows are re-merged and re-repaired.
	dirtyBlock []bool
	dirtyRow   []bool
	// solves and skips are the engine-lifetime dirty-set accounting.
	solves, skips uint64
}

func newJacobiEngine(c *Coordinator) *jacobiEngine {
	return &jacobiEngine{
		c:          c,
		yMinus:     c.inst.NewUFMat(),
		next:       model.NewRoutingPolicy(c.inst),
		dirtyBlock: make([]bool, c.inst.N),
		dirtyRow:   make([]bool, c.inst.U),
	}
}

func (e *jacobiEngine) Kind() model.EngineKind { return model.EngineJacobi }
func (e *jacobiEngine) Close()                 {}

func (e *jacobiEngine) workCounts() (uint64, uint64) { return e.solves, e.skips }

// allMemoHits reports whether every sub-problem's memo is valid for the
// current tracker state. Such a round is a complete no-op for a non-private
// run: every hit block is bitwise equal to its current value (had an
// earlier install or repair changed it, the epoch bump would have missed
// the memo), so the round's writes, merge and repair all reproduce the
// existing bits.
//
//edgecache:noalloc
func allMemoHits(c *Coordinator, t *model.AggregateTracker) bool {
	for _, sub := range c.subs {
		if !sub.memoHit(t) {
			return false
		}
	}
	return true
}

// markDirtyRows ORs the link rows of every dirty block into dirtyRow and
// reports whether any block was dirty. dirtyRow is reset first.
//
//edgecache:noalloc
func markDirtyRows(inst *model.Instance, dirtyBlock, dirtyRow []bool) bool {
	for u := range dirtyRow {
		dirtyRow[u] = false
	}
	any := false
	for n, dirty := range dirtyBlock {
		if !dirty {
			continue
		}
		any = true
		links := inst.Links[n]
		for u := range dirtyRow {
			if links[u] {
				dirtyRow[u] = true
			}
		}
	}
	return any
}

func (e *jacobiEngine) Sweep(st *SweepState, sweep, first int, phaseDone func(int) error) error {
	if first != 0 {
		return fmt.Errorf("core: a jacobi round is atomic; cannot resume at phase %d", first)
	}
	c, inst := e.c, e.c.inst
	memo := c.incremental()
	if memo && c.lppm == nil && allMemoHits(c, st.Tracker) {
		// Every block would be re-derived bit-identically, so the round
		// changes nothing: the γ rule sees an identical cost and stops.
		e.skips += uint64(inst.N)
		return nil
	}
	// All SBSs observe the same pre-round policy (stale state). Every
	// block of next is overwritten below, so the swapped-in buffer needs
	// no clearing.
	for n := 0; n < inst.N; n++ {
		var sub *Result
		if memo && c.subs[n].memoHit(st.Tracker) {
			sub = c.subs[n].cachedResult()
			e.skips++
		} else {
			st.Tracker.YMinusInto(inst, st.Y, n, e.yMinus)
			var err error
			sub, err = c.subs[n].Solve(e.yMinus)
			if err != nil {
				c.invalidateMemos()
				return err
			}
			if memo {
				c.subs[n].memoCapture(st.Tracker)
			}
			e.solves++
		}
		upload := sub.Routing
		if c.lppm != nil {
			var err error
			upload, err = c.lppm.PerturbSBS(n, sub.Routing)
			if err != nil {
				c.invalidateMemos()
				return err
			}
		}
		st.X.SetRow(n, sub.Cache)
		// Change detection against the pre-round block (st.Y still holds
		// it): a clean block's rows need no re-merge, and its owner's — and
		// neighbours' — memos survive the round.
		e.dirtyBlock[n] = !memo || !st.Y.SBS(n).BitsEqual(upload)
		e.next.SetSBS(n, upload)
	}
	st.Y.Swap(e.next)
	if !markDirtyRows(inst, e.dirtyBlock, e.dirtyRow) {
		// Every upload reproduced its previous bits; the aggregate is
		// already exact and repaired.
		return nil
	}
	st.Tracker.BeginPhase()
	for n, dirty := range e.dirtyBlock {
		if dirty {
			st.Tracker.MarkBlockDirty(n)
		}
	}
	if !memo {
		st.Tracker.RebuildRows(inst, st.Y, 0, inst.U)
		st.Tracker.RepairOverserveRows(inst, st.Y, 0, inst.U)
		return nil
	}
	// Merge and repair only the rows a dirty block contributes to:
	// untouched rows still equal the ascending-n sum of their (unchanged)
	// contributing blocks and already satisfied the overserve bound.
	for u0 := 0; u0 < inst.U; {
		if !e.dirtyRow[u0] {
			u0++
			continue
		}
		u1 := u0 + 1
		for u1 < inst.U && e.dirtyRow[u1] {
			u1++
		}
		st.Tracker.RebuildRows(inst, st.Y, u0, u1)
		st.Tracker.RepairOverserveRows(inst, st.Y, u0, u1)
		u0 = u1
	}
	return nil
}

// RunJacobi executes the reference Jacobi engine through the shared
// driver, regardless of Config.Engine — the E9/E10 ablations compare it
// against a Gauss-Seidel run of the same coordinator. Prefer
// Config.Engine for new code.
//
// Convergence is assessed with the same γ rule as Run.
func (c *Coordinator) RunJacobi() (*RunResult, error) {
	eng := c.engine
	if eng.Kind() != model.EngineJacobi {
		eng = newJacobiEngine(c)
	}
	return c.runEngine(eng, NewSweepState(c.inst, identityOrder(c.inst.N)))
}

// repairOverserve rescales routing proportionally wherever the aggregate
// Σ_n y_nuf·l_nu exceeds one, restoring constraint (4). Scaling down never
// violates bandwidth, box or cache constraints.
//
// The engines repair through AggregateTracker.RepairOverserveRows, which
// additionally keeps the running aggregate in sync; this standalone form
// is the reference definition the tracker path is tested against.
func repairOverserve(inst *model.Instance, y *model.RoutingPolicy) {
	agg := y.Aggregate(inst)
	for u := 0; u < inst.U; u++ {
		row := agg.Row(u)
		for f := range row {
			if row[f] <= 1+1e-12 {
				continue
			}
			factor := 1 / row[f]
			for n := 0; n < inst.N; n++ {
				if inst.Links[n][u] {
					y.Set(n, u, f, y.At(n, u, f)*factor)
				}
			}
		}
	}
}
