package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func requireMILP(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestMILPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c, 3a + 4b + 2c ≤ 6, binary → a=c=1 (obj 17)
	// beats b+c (20? 13+7=20, weight 6 feasible!) — check: b+c weight 4+2=6 ≤ 6,
	// value 20. Optimum is 20.
	p := NewProblem(3)
	p.Maximize = true
	p.Obj = []float64{10, 13, 7}
	p.AddConstraint([]float64{3, 4, 2}, LE, 6)
	for j := 0; j < 3; j++ {
		p.SetBounds(j, 0, 1)
		p.MarkInteger(j)
	}
	sol := requireMILP(t, p)
	if !almostEqual(sol.Objective, 20) {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
	if math.Round(sol.X[1]) != 1 || math.Round(sol.X[2]) != 1 {
		t.Errorf("X = %v, want items 1 and 2 selected", sol.X)
	}
}

func TestMILPIntegerRounding(t *testing.T) {
	// max x s.t. 2x ≤ 7, x integer → 3 (LP gives 3.5).
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]float64{2}, LE, 7)
	p.MarkInteger(0)
	sol := requireMILP(t, p)
	if !almostEqual(sol.Objective, 3) {
		t.Errorf("objective = %v, want 3", sol.Objective)
	}
}

func TestMILPMixed(t *testing.T) {
	// max 3x + 2y, x integer, y continuous; x + y ≤ 4.5, x ≤ 3.2.
	// x = 3, y = 1.5 → 12.
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{3, 2}
	p.AddConstraint([]float64{1, 1}, LE, 4.5)
	p.AddConstraint([]float64{1, 0}, LE, 3.2)
	p.MarkInteger(0)
	sol := requireMILP(t, p)
	if !almostEqual(sol.Objective, 12) {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	if !almostEqual(sol.X[0], 3) || !almostEqual(sol.X[1], 1.5) {
		t.Errorf("X = %v, want [3 1.5]", sol.X)
	}
}

func TestMILPInfeasible(t *testing.T) {
	// 0.4 ≤ x ≤ 0.6, x integer: no integer point.
	p := NewProblem(1)
	p.Obj = []float64{1}
	p.SetBounds(0, 0.4, 0.6)
	p.MarkInteger(0)
	sol, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMILPUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.MarkInteger(0)
	sol, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestMILPNoIntegerFallsBackToLP(t *testing.T) {
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.SetBounds(0, 0, 2.5)
	sol := requireMILP(t, p)
	if !almostEqual(sol.Objective, 2.5) {
		t.Errorf("objective = %v, want 2.5", sol.Objective)
	}
}

func TestMILPNodeBudget(t *testing.T) {
	// A problem requiring branching with a budget of 1 node must error.
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{1, 1}
	p.AddConstraint([]float64{2, 2}, LE, 3)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	p.MarkInteger(0)
	p.MarkInteger(1)
	if _, err := SolveMILP(p, MILPOptions{MaxNodes: 1}); err == nil {
		t.Fatal("want node-budget error")
	}
}

func TestMILPValidationError(t *testing.T) {
	if _, err := SolveMILP(&Problem{NumVars: 0}, MILPOptions{}); err == nil {
		t.Fatal("want validation error")
	}
}

// bruteForceBinary enumerates all 0/1 assignments and returns the best
// objective of the feasible ones, or NaN if none is feasible.
func bruteForceBinary(p *Problem) float64 {
	n := p.NumVars
	best := math.NaN()
	x := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			x[j] = float64((mask >> j) & 1)
		}
		feasible := true
		for _, c := range p.Cons {
			var lhs float64
			for j, v := range c.Coef {
				lhs += v * x[j]
			}
			switch c.Rel {
			case LE:
				feasible = lhs <= c.RHS+1e-9
			case GE:
				feasible = lhs >= c.RHS-1e-9
			case EQ:
				feasible = math.Abs(lhs-c.RHS) <= 1e-9
			}
			if !feasible {
				break
			}
		}
		if !feasible {
			continue
		}
		var obj float64
		for j := range x {
			obj += p.Obj[j] * x[j]
		}
		if math.IsNaN(best) || (p.Maximize && obj > best) || (!p.Maximize && obj < best) {
			best = obj
		}
	}
	return best
}

// Property: branch-and-bound matches exhaustive enumeration on random
// binary programs with random ≤ constraints.
func TestMILPMatchesBruteForceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7) // 2..8 binary vars
		p := NewProblem(n)
		p.Maximize = rng.Intn(2) == 0
		for j := 0; j < n; j++ {
			p.Obj[j] = math.Round(rng.Float64()*40 - 20)
			p.SetBounds(j, 0, 1)
			p.MarkInteger(j)
		}
		rows := 1 + rng.Intn(3)
		for r := 0; r < rows; r++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = math.Round(rng.Float64() * 10)
			}
			// RHS between 0 and the row sum keeps instances interesting.
			var sum float64
			for _, v := range coef {
				sum += v
			}
			p.AddConstraint(coef, LE, math.Round(rng.Float64()*sum))
		}
		want := bruteForceBinary(p)
		sol, err := SolveMILP(p, MILPOptions{})
		if err != nil {
			t.Logf("seed %d: SolveMILP error: %v", seed, err)
			return false
		}
		if math.IsNaN(want) {
			return sol.Status == Infeasible
		}
		if sol.Status != Optimal {
			t.Logf("seed %d: status %v, brute force found %v", seed, sol.Status, want)
			return false
		}
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Logf("seed %d: objective %v, brute force %v", seed, sol.Objective, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the LP relaxation bounds the MILP optimum from the right side.
func TestLPRelaxationBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		p := NewProblem(n)
		p.Maximize = true
		for j := 0; j < n; j++ {
			p.Obj[j] = rng.Float64() * 10
			p.SetBounds(j, 0, 1)
			p.MarkInteger(j)
		}
		coef := make([]float64, n)
		for j := range coef {
			coef[j] = 1 + rng.Float64()*5
		}
		p.AddConstraint(coef, LE, rng.Float64()*10)
		relax, err := Solve(p)
		if err != nil || relax.Status != Optimal {
			return false
		}
		milp, err := SolveMILP(p, MILPOptions{})
		if err != nil || milp.Status != Optimal {
			return false
		}
		return milp.Objective <= relax.Objective+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: solutions returned by Solve are always feasible for the
// declared constraint system, on random feasible-by-construction LPs.
func TestLPSolutionFeasibilityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		p := NewProblem(n)
		p.Maximize = rng.Intn(2) == 0
		for j := 0; j < n; j++ {
			p.Obj[j] = rng.Float64()*20 - 10
			p.SetBounds(j, 0, 1+rng.Float64()*4)
		}
		// Constraints of the form Σ a·x ≤ b with a ≥ 0, b ≥ 0 keep x=0
		// feasible, so the LP is never infeasible and never unbounded
		// (bounded box).
		rows := rng.Intn(4)
		for r := 0; r < rows; r++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = rng.Float64() * 5
			}
			p.AddConstraint(coef, LE, rng.Float64()*20)
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		for j, v := range sol.X {
			if v < p.lower(j)-1e-7 || v > p.upper(j)+1e-7 {
				return false
			}
		}
		for _, c := range p.Cons {
			var lhs float64
			for j, v := range c.Coef {
				lhs += v * sol.X[j]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
