// Package lint implements edgecache's custom static analyzers and the
// small driver framework they run on. The analyzers encode the invariants
// the hot-path, privacy, and protocol layers depend on but the compiler
// cannot check:
//
//	noalloc      //edgecache:noalloc functions (and their module-internal
//	             callees) contain no allocating constructs
//	determinism  no wall-clock reads, global math/rand, or map-order
//	             iteration in protocol/solver packages
//	floateq      no exact ==/!= between computed float64 values
//	flataccess   no raw Mat/Tensor3 backing-slice access outside
//	             internal/model
//	lockedsend   no blocking transport Send/Recv while a sync mutex is held
//	privflow     //edgecache:private data must pass an LPPM sanitizer
//	             before transport/checkpoint/log egress (interprocedural
//	             taint)
//	goleak       goroutines in cluster/parallel code need a reachable
//	             join; tickers/timers need a Stop path
//	atomicmix    a location accessed via sync/atomic is never touched
//	             plainly
//
// The framework mirrors the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic, suggested fixes) but is built purely on the
// standard library's go/ast + go/types, because this build environment
// cannot fetch external modules. Packages are analyzed concurrently (the
// whole-program passes memoize behind sync.Once), and cmd/edgelint layers
// a content-hash keyed result cache on top so repeat gate runs skip the
// load entirely. Diagnostics can be suppressed line-by-line with
//
//	//edgecache:lint-ignore <analyzer> <reason>
//
// where the reason is mandatory and unused or malformed directives are
// themselves diagnostics, so stale suppressions cannot linger.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and lint-ignore
	// directives; Doc is the one-line description `edgelint -list` prints.
	Name string
	Doc  string
	// Run reports the analyzer's findings for one package.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program
	diags    *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	Pos      token.Position
	Message  string
	// Fixes, when non-empty, is a machine-applicable rewrite (edgelint
	// -fix applies it).
	Fixes []TextEdit
}

// TextEdit replaces the source bytes of [Pos, End) with NewText.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...), nil)
}

// Report records a finding with optional fixes.
func (p *Pass) Report(pos token.Pos, message string, fixes []TextEdit) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  message,
		Fixes:    fixes,
	})
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoAlloc,
		Determinism,
		FloatEq,
		FlatAccess,
		LockedSend,
		Privflow,
		Goleak,
		Atomicmix,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// FixtureDirFragment marks the packages holding deliberate violations for
// the analyzer test suite; the driver skips them.
const FixtureDirFragment = "/internal/lint/fixtures/"

// DefaultSkip reports whether the driver should skip pkgPath: analyzer
// fixtures contain deliberate violations by design.
func DefaultSkip(pkgPath string) bool {
	return strings.Contains(pkgPath+"/", FixtureDirFragment)
}

// Run executes the analyzers over every loaded package for which skip
// returns false (nil means analyze everything), applies the lint-ignore
// directives, and returns the surviving diagnostics in file/line order.
func (prog *Program) Run(analyzers []*Analyzer, skip func(pkgPath string) bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkgDiags := range prog.RunPerPackage(analyzers, skip) {
		diags = append(diags, pkgDiags...)
	}
	sortDiagnostics(diags)
	return diags
}

// RunPerPackage is Run minus the final merge: it returns the surviving
// (post-ignore) diagnostics keyed by package path, which is the unit the
// edgelint result cache stores. Packages run concurrently; the analyzers
// only read the type-checked program, and the whole-program passes
// memoize behind sync.Once, so a per-package fan-out is safe.
func (prog *Program) RunPerPackage(analyzers []*Analyzer, skip func(pkgPath string) bool) map[string][]Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	// Warm the shared whole-program results serially when their analyzers
	// are requested: the first computation touches big shared state, and
	// front-loading it keeps the per-package goroutines read-only.
	for _, a := range analyzers {
		switch a.Name {
		case "noalloc":
			prog.noallocResults()
		case "privflow":
			prog.privflowResults()
		case "atomicmix":
			prog.atomicResults()
		}
	}

	results := make([][]Diagnostic, len(prog.Packages))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range prog.Packages {
		if skip != nil && skip(pkg.Path) {
			continue
		}
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ignores := collectIgnores(prog, pkg)
			var pkgDiags []Diagnostic
			for _, a := range analyzers {
				pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, diags: &pkgDiags}
				a.Run(pass)
			}
			results[i] = applyIgnores(pkgDiags, ignores, ran, known)
		}(i, pkg)
	}
	wg.Wait()

	out := map[string][]Diagnostic{}
	for i, pkg := range prog.Packages {
		if skip != nil && skip(pkg.Path) {
			continue
		}
		out[pkg.Path] = results[i]
	}
	return out
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// ignoreDirective is one parsed //edgecache:lint-ignore comment.
type ignoreDirective struct {
	analyzer string
	pos      token.Position
	// line is the source line the directive suppresses (the directive's
	// own line for trailing comments, the following line for standalone
	// comment lines).
	line int
	used bool
	// bad holds the malformed-directive diagnostic, when applicable.
	bad string
}

const ignorePrefix = "//edgecache:lint-ignore"

// collectIgnores parses every lint-ignore directive in the package.
func collectIgnores(prog *Program, pkg *Package) []*ignoreDirective {
	var out []*ignoreDirective
	for i, file := range pkg.Files {
		src := pkg.Sources[i]
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				d := &ignoreDirective{pos: pos, line: pos.Line}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "lint-ignore directive names no analyzer"
				case len(fields) == 1:
					d.bad = fmt.Sprintf("lint-ignore %s gives no reason; a written reason is mandatory", fields[0])
				default:
					d.analyzer = fields[0]
				}
				// A directive on its own line suppresses the next line; a
				// trailing directive suppresses its own line.
				if standaloneComment(src, pos) {
					d.line = pos.Line + 1
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// standaloneComment reports whether only whitespace precedes the comment
// on its line.
func standaloneComment(src []byte, pos token.Position) bool {
	offset := pos.Offset
	for offset > 0 && src[offset-1] != '\n' {
		offset--
		if ch := src[offset]; ch != ' ' && ch != '\t' {
			return false
		}
	}
	return true
}

// applyIgnores drops diagnostics covered by a well-formed directive and
// appends diagnostics for malformed or unused directives. ran is the set
// of analyzers executed this run (a directive for an analyzer that did
// not run cannot be judged unused); known is the full suite, so a
// directive naming a nonexistent analyzer is caught as a typo.
func applyIgnores(diags []Diagnostic, ignores []*ignoreDirective, ran, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, ig := range ignores {
			if ig.bad == "" && ig.analyzer == d.Analyzer &&
				ig.pos.Filename == d.Pos.Filename && ig.line == d.Pos.Line {
				ig.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, ig := range ignores {
		switch {
		case ig.bad != "":
			out = append(out, Diagnostic{Analyzer: "directive", Pos: ig.pos, Message: ig.bad})
		case !known[ig.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      ig.pos,
				Message:  fmt.Sprintf("lint-ignore names unknown analyzer %q", ig.analyzer),
			})
		case !ig.used && ran[ig.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      ig.pos,
				Message:  fmt.Sprintf("unused lint-ignore %s directive (nothing to suppress on its line); delete it", ig.analyzer),
			})
		}
	}
	return out
}

// noallocDirective marks a function whose body (and module-internal call
// closure) must not allocate.
const noallocDirective = "//edgecache:noalloc"

// hasNoallocDirective reports whether the function declaration carries the
// directive in its doc comment.
func hasNoallocDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if text := strings.TrimSpace(c.Text); text == noallocDirective {
			return true
		}
	}
	return false
}
