// Command tracegen emits synthetic trending-video workloads: the
// view-count vector (Fig. 2's series), the MU demand matrix, or an
// expanded time-ordered request stream, all as CSV on stdout.
//
// Usage:
//
//	tracegen                       # 50-video view counts
//	tracegen -format demand -groups 30 -scale 0.0075
//	tracegen -format stream -groups 30 -scale 0.001 -horizon 30
//	tracegen -videos 100 -exponent 1.0 -head 200000 -seed 7
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"edgecache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		videos   = fs.Int("videos", 50, "catalog size")
		head     = fs.Float64("head", 150000, "views of the most popular video")
		exponent = fs.Float64("exponent", 0.9, "Zipf decay exponent")
		jitter   = fs.Float64("jitter", 0.15, "log-normal rank jitter")
		seed     = fs.Int64("seed", 20181218, "generator seed")
		format   = fs.String("format", "views", "output: views, demand or stream")
		groups   = fs.Int("groups", 30, "MU groups (demand and stream formats)")
		scale    = fs.Float64("scale", 1, "demand scale factor")
		horizon  = fs.Float64("horizon", 30, "stream horizon in minutes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	views, err := trace.TrendingVideos(trace.TrendingConfig{
		Videos:    *videos,
		HeadViews: *head,
		Exponent:  *exponent,
		Jitter:    *jitter,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	switch *format {
	case "views":
		if err := w.Write([]string{"rank", "views"}); err != nil {
			return err
		}
		for k, v := range views {
			if err := w.Write([]string{strconv.Itoa(k + 1), strconv.FormatFloat(v, 'f', 0, 64)}); err != nil {
				return err
			}
		}
	case "demand":
		demand, err := trace.DemandMatrix(views, *groups, *scale, *seed+1)
		if err != nil {
			return err
		}
		header := []string{"group"}
		for f := 0; f < *videos; f++ {
			header = append(header, fmt.Sprintf("video%d", f+1))
		}
		if err := w.Write(header); err != nil {
			return err
		}
		for u, row := range demand {
			rec := []string{strconv.Itoa(u)}
			for _, v := range row {
				rec = append(rec, strconv.FormatFloat(v, 'g', 6, 64))
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	case "stream":
		demand, err := trace.DemandMatrix(views, *groups, *scale, *seed+1)
		if err != nil {
			return err
		}
		stream, err := trace.Stream(demand, *horizon, *seed+2)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"time", "group", "content"}); err != nil {
			return err
		}
		for _, req := range stream {
			if err := w.Write([]string{
				strconv.FormatFloat(req.Time, 'f', 4, 64),
				strconv.Itoa(req.Group),
				strconv.Itoa(req.Content),
			}); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown format %q (views, demand or stream)", *format)
	}
	return nil
}
