package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy describes an exponential-backoff retry schedule with jitter.
// The zero value asks for the defaults (4 attempts, 10ms base doubling up
// to 1s, 20% jitter). It is shared by ReliableEndpoint (per-send retries)
// and TCPEndpoint (redial-with-backoff on a dead cached connection).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// 0 means 4; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the wait before the first retry. 0 means 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. 0 means 1s.
	MaxDelay time.Duration
	// Multiplier is the per-retry growth factor. 0 means 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: the actual
	// wait is uniform in [d·(1−Jitter), d·(1+Jitter)]. 0 means 0.2;
	// negative disables jitter (deterministic delays for tests).
	Jitter float64
	// Seed drives the jitter randomness (deterministic tests).
	Seed int64
}

// Validate checks the policy ranges.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("transport: MaxAttempts must be non-negative, got %d", p.MaxAttempts)
	}
	if p.BaseDelay < 0 || p.MaxDelay < 0 {
		return fmt.Errorf("transport: retry delays must be non-negative, got base=%v max=%v",
			p.BaseDelay, p.MaxDelay)
	}
	if p.Multiplier < 0 {
		return fmt.Errorf("transport: Multiplier must be non-negative, got %v", p.Multiplier)
	}
	if p.Jitter > 1 {
		return fmt.Errorf("transport: Jitter must be at most 1, got %v", p.Jitter)
	}
	return nil
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	return p
}

// delay returns the jittered backoff before retry number retry (0-based).
// Callers must hold whatever lock guards rng.
func (p RetryPolicy) delay(retry int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 0; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 - p.Jitter + 2*p.Jitter*rng.Float64()
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// sleep waits for the given duration or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReliabilityStats is a snapshot of a ReliableEndpoint's counters.
type ReliabilityStats struct {
	// Sends counts Send calls; Retries counts extra attempts beyond the
	// first; SendFailures counts Sends that exhausted every attempt.
	Sends, Retries, SendFailures int64
	// DupsDropped counts inbound messages discarded by sequence-number
	// deduplication.
	DupsDropped int64
}

// dedupWindowSize bounds the per-peer set of remembered sequence numbers.
// The protocol is request/response with small in-flight counts, so a
// window of 512 comfortably exceeds any realistic retry burst.
const dedupWindowSize = 512

// dedupWindow remembers the last dedupWindowSize sequence numbers from one
// peer; membership is O(1) and eviction is FIFO.
type dedupWindow struct {
	seen  map[uint64]struct{}
	order []uint64
	next  int
}

func newDedupWindow() *dedupWindow {
	return &dedupWindow{seen: make(map[uint64]struct{}), order: make([]uint64, 0, dedupWindowSize)}
}

// observe records seq and reports whether it was already present.
func (w *dedupWindow) observe(seq uint64) bool {
	if _, ok := w.seen[seq]; ok {
		return true
	}
	if len(w.order) < dedupWindowSize {
		w.order = append(w.order, seq)
	} else {
		delete(w.seen, w.order[w.next])
		w.order[w.next] = seq
		w.next = (w.next + 1) % dedupWindowSize
	}
	w.seen[seq] = struct{}{}
	return false
}

// ReliableEndpoint wraps an Endpoint with per-send retries (exponential
// backoff + jitter) and receiver-side sequence-number deduplication, so
// retries compose safely with the at-most-once Endpoint contract: a
// message duplicated by a retry (or by a faulty link) is delivered to the
// application at most once. Messages from senders that do not stamp
// sequence numbers (Seq == 0) pass through untouched.
//
// Send never retries on context cancellation or on ErrClosed/ErrUnknownPeer
// (the peer set is static in this protocol, so an unknown name cannot
// become known by waiting).
type ReliableEndpoint struct {
	inner  Endpoint
	policy RetryPolicy

	nextSeq atomic.Uint64

	mu    sync.Mutex
	rng   *rand.Rand
	seen  map[string]*dedupWindow
	stats ReliabilityStats
}

var _ Endpoint = (*ReliableEndpoint)(nil)

// NewReliableEndpoint wraps inner with the given retry policy (zero value
// for defaults).
func NewReliableEndpoint(inner Endpoint, policy RetryPolicy) (*ReliableEndpoint, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	policy = policy.withDefaults()
	return &ReliableEndpoint{
		inner:  inner,
		policy: policy,
		rng:    rand.New(rand.NewSource(policy.Seed)),
		seen:   make(map[string]*dedupWindow),
	}, nil
}

// Name implements Endpoint.
func (e *ReliableEndpoint) Name() string { return e.inner.Name() }

// AdvanceSeq skips the next n sequence numbers. A restarted sender that
// reuses its peer name must advance past the range its previous
// incarnation used, or receivers still holding those numbers in their
// dedup window will discard its first messages as retry duplicates.
func (e *ReliableEndpoint) AdvanceSeq(n uint64) { e.nextSeq.Add(n) }

// Send implements Endpoint with retries. Each message gets a fresh
// sequence number, so a deliberate re-send by the caller (e.g. a protocol
// retransmission) is a distinct message, while the retries issued here
// reuse the number and are deduplicated by the receiver.
func (e *ReliableEndpoint) Send(ctx context.Context, to string, m Message) error {
	if m.Seq == 0 {
		m.Seq = e.nextSeq.Add(1)
	}
	e.mu.Lock()
	e.stats.Sends++
	e.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < e.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			e.mu.Lock()
			e.stats.Retries++
			d := e.policy.delay(attempt-1, e.rng)
			e.mu.Unlock()
			if err := sleepCtx(ctx, d); err != nil {
				return err
			}
		}
		err := e.inner.Send(ctx, to, m)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil || errors.Is(err, ErrClosed) || errors.Is(err, ErrUnknownPeer) {
			break
		}
	}
	e.mu.Lock()
	e.stats.SendFailures++
	e.mu.Unlock()
	return lastErr
}

// Recv implements Endpoint, dropping sequence-number duplicates.
func (e *ReliableEndpoint) Recv(ctx context.Context) (Message, error) {
	for {
		m, err := e.inner.Recv(ctx)
		if err != nil {
			return m, err
		}
		if m.Seq == 0 {
			return m, nil
		}
		e.mu.Lock()
		w, ok := e.seen[m.From]
		if !ok {
			w = newDedupWindow()
			e.seen[m.From] = w
		}
		dup := w.observe(m.Seq)
		if dup {
			e.stats.DupsDropped++
		}
		e.mu.Unlock()
		if !dup {
			return m, nil
		}
	}
}

// Close implements Endpoint.
func (e *ReliableEndpoint) Close() error { return e.inner.Close() }

// Stats returns a snapshot of the reliability counters.
func (e *ReliableEndpoint) Stats() ReliabilityStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
