package model

// CostBreakdown decomposes the serving cost f(y) = f1(y) + f2(y) of eq. 7.
type CostBreakdown struct {
	// Edge is f1(y) = Σ_n Σ_u Σ_f d_nu·y_nuf·l_nu·λ_uf (eq. 5): the cost of
	// serving requests from SBS caches.
	Edge float64
	// Backhaul is f2(y) = Σ_u d̂_u Σ_f (1 − Σ_n y_nuf·l_nu)·λ_uf (eq. 6):
	// the cost of the residual demand the BS serves over the backhaul.
	Backhaul float64
	// Total is Edge + Backhaul.
	Total float64
}

// EdgeServingCost returns f1(y) (eq. 5).
func EdgeServingCost(in *Instance, y *RoutingPolicy) float64 {
	var cost float64
	for n := 0; n < in.N; n++ {
		for u := 0; u < in.U; u++ {
			if !in.Links[n][u] {
				continue
			}
			d := in.EdgeCost[n][u]
			for f := 0; f < in.F; f++ {
				cost += d * y.Route[n][u][f] * in.Demand[u][f]
			}
		}
	}
	return cost
}

// BackhaulServingCost returns f2(y) (eq. 6). The residual fraction
// 1 − Σ_n y·l is clamped at zero: if the edge over-serves a demand the
// surplus packets are discarded (paper §IV-B), they do not earn negative
// backhaul cost.
func BackhaulServingCost(in *Instance, y *RoutingPolicy) float64 {
	agg := y.Aggregate(in)
	var cost float64
	for u := 0; u < in.U; u++ {
		dHat := in.BSCost[u]
		for f := 0; f < in.F; f++ {
			residual := 1 - agg[u][f]
			if residual < 0 {
				residual = 0
			}
			cost += dHat * residual * in.Demand[u][f]
		}
	}
	return cost
}

// TotalServingCost returns the full decomposition of f(y) (eq. 7).
func TotalServingCost(in *Instance, y *RoutingPolicy) CostBreakdown {
	edge := EdgeServingCost(in, y)
	backhaul := BackhaulServingCost(in, y)
	return CostBreakdown{Edge: edge, Backhaul: backhaul, Total: edge + backhaul}
}

// ServedFraction returns the share of the total demand served at the edge:
// Σ_{u,f} min(1, Σ_n y·l)·λ / Σ_{u,f} λ. It is a convenient scalar for
// dashboards and tests; it is not part of the paper's objective.
func ServedFraction(in *Instance, y *RoutingPolicy) float64 {
	total := in.TotalDemand()
	if total == 0 {
		return 0
	}
	agg := y.Aggregate(in)
	var served float64
	for u := 0; u < in.U; u++ {
		for f := 0; f < in.F; f++ {
			frac := agg[u][f]
			if frac > 1 {
				frac = 1
			}
			served += frac * in.Demand[u][f]
		}
	}
	return served / total
}
