package cluster

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/sim"
	"edgecache/internal/transport"
)

// agentConfig is the parsed agent command line.
type agentConfig struct {
	role       Role
	cell       string
	index      int
	listen     string
	inst       *model.Instance
	generation int
	hbInterval time.Duration
	seed       int64

	// SBS privacy knobs.
	epsilon, delta float64

	// BS-only.
	result       string
	ckptDir      string
	ckptRetain   int
	resume       bool
	gamma        float64
	maxSweeps    int
	phaseTimeout time.Duration
}

// AgentMain is the supervisee entrypoint behind `edgesim -role bs|sbs` (and
// behind the test binaries' re-exec hook). It parses the agent flags, loads
// the instance, binds the endpoint and runs one BS or SBS agent to
// completion, speaking the stdout line protocol and reading peer lists from
// stdin. The error return is for the launcher to report and exit non-zero
// on; the supervisor only ever sees the exit status and the log file.
func AgentMain(args []string) error {
	fs := flag.NewFlagSet("edgesim-agent", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		cfg      agentConfig
		role     = fs.String("role", "", "agent role: bs or sbs")
		instance = fs.String("instance", "", "instance JSON path")
	)
	fs.StringVar(&cfg.cell, "cell", "", "cell name (logs only)")
	fs.IntVar(&cfg.index, "index", -1, "SBS index within the cell (sbs role)")
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:0", "listen address (restarts pin the original port)")
	fs.IntVar(&cfg.generation, "generation", 0, "process incarnation number (0 = first launch)")
	fs.DurationVar(&cfg.hbInterval, "hb-interval", 25*time.Millisecond, "heartbeat cadence")
	fs.Int64Var(&cfg.seed, "seed", 1, "cell seed (retry jitter; SBS noise)")
	fs.Float64Var(&cfg.epsilon, "epsilon", 0, "LPPM epsilon (sbs role; 0 disables)")
	fs.Float64Var(&cfg.delta, "delta", 0, "LPPM delta (sbs role)")
	fs.StringVar(&cfg.result, "result", "", "result JSON path (bs role)")
	fs.StringVar(&cfg.ckptDir, "ckpt-dir", "", "checkpoint directory (bs role)")
	fs.IntVar(&cfg.ckptRetain, "ckpt-retain", 0, "checkpoint retention (bs role; 0 = store default)")
	fs.BoolVar(&cfg.resume, "resume", false, "resume from the newest checkpoint if any (bs role)")
	fs.Float64Var(&cfg.gamma, "gamma", 0, "convergence threshold (bs role; 0 = default)")
	fs.IntVar(&cfg.maxSweeps, "max-sweeps", 0, "sweep budget (bs role; 0 = default)")
	fs.DurationVar(&cfg.phaseTimeout, "phase-timeout", 2*time.Second, "phase window (bs role)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := ParseRole(*role)
	if err != nil {
		return err
	}
	cfg.role = r
	if *instance == "" {
		return errors.New("cluster: agent requires -instance")
	}
	f, err := os.Open(*instance)
	if err != nil {
		return err
	}
	cfg.inst, err = model.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	switch cfg.role {
	case RoleBS:
		if cfg.result == "" || cfg.ckptDir == "" {
			return errors.New("cluster: bs agent requires -result and -ckpt-dir")
		}
		return runBS(cfg, os.Stdout, os.Stdin)
	default:
		if cfg.index < 0 || cfg.index >= cfg.inst.N {
			return fmt.Errorf("cluster: sbs agent index %d out of range (instance has %d SBSs)", cfg.index, cfg.inst.N)
		}
		return runSBS(cfg, os.Stdout, os.Stdin)
	}
}

// reporter serializes the agent's stdout line protocol. Progress (sweep,
// phase) is tracked so the periodic beat always carries the freshest
// protocol time, and a sweep transition emits an immediate beat — that
// immediacy is what lets the supervisor fire protocol-time faults at the
// sweep they name instead of one heartbeat late.
type reporter struct {
	mu           sync.Mutex
	w            io.Writer
	sweep, phase int
}

func newReporter(w io.Writer) *reporter { return &reporter{w: w, sweep: -1, phase: -1} }

func (r *reporter) addr(a string) {
	r.mu.Lock()
	fmt.Fprintf(r.w, "%s %s\n", lineAddr, a)
	r.mu.Unlock()
}

// progress records a protocol-time observation, beating immediately when a
// new sweep starts.
func (r *reporter) progress(sweep, phase int) {
	r.mu.Lock()
	switch {
	case sweep > r.sweep:
		r.sweep, r.phase = sweep, phase
		fmt.Fprintf(r.w, "%s %d %d\n", lineHB, r.sweep, r.phase)
	case sweep == r.sweep && phase > r.phase:
		r.phase = phase
	}
	r.mu.Unlock()
}

// beat emits the periodic heartbeat with the current protocol time.
func (r *reporter) beat() {
	r.mu.Lock()
	fmt.Fprintf(r.w, "%s %d %d\n", lineHB, r.sweep, r.phase)
	r.mu.Unlock()
}

func (r *reporter) done() {
	r.mu.Lock()
	fmt.Fprintf(r.w, "%s\n", lineDone)
	r.mu.Unlock()
}

// progressEndpoint taps the protocol stream for sweep transitions: the BS
// observes its own MsgPhaseStart sends, an SBS the receipts. Everything
// else passes through untouched.
type progressEndpoint struct {
	inner transport.Endpoint
	tcp   *transport.TCPEndpoint
	rep   *reporter
}

var _ transport.Endpoint = (*progressEndpoint)(nil)

func (p *progressEndpoint) Name() string { return p.inner.Name() }
func (p *progressEndpoint) Close() error { return p.inner.Close() }

func (p *progressEndpoint) Send(ctx context.Context, to string, m transport.Message) error {
	if m.Type == transport.MsgPhaseStart {
		p.rep.progress(m.Sweep, m.Phase)
	}
	return p.inner.Send(ctx, to, m)
}

func (p *progressEndpoint) Recv(ctx context.Context) (transport.Message, error) {
	m, err := p.inner.Recv(ctx)
	if err == nil && m.Type == transport.MsgPhaseStart {
		p.rep.progress(m.Sweep, m.Phase)
	}
	return m, err
}

// listenWithRetry binds the agent's listener. A restarted agent re-binds
// its previous incarnation's exact port (so peers' address books stay
// valid); the old socket can linger briefly after a SIGKILL, hence the
// bounded retry.
func listenWithRetry(name, addr string) (*transport.TCPEndpoint, error) {
	var lastErr error
	for attempt := 0; attempt < 80; attempt++ {
		if attempt > 0 {
			time.Sleep(25 * time.Millisecond)
		}
		ep, err := transport.NewTCPEndpoint(name, addr)
		if err == nil {
			return ep, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// openEndpoint builds the agent's endpoint stack — TCP listener, reliable
// wrapper with a generation-disjoint sequence range, progress tap — and
// reports the bound address. The seq-range jump mirrors the in-process
// chaos runner: receivers still holding the previous incarnation's numbers
// in their dedup windows must not discard the newcomer's first messages.
func openEndpoint(name string, cfg agentConfig, rep *reporter) (*progressEndpoint, error) {
	tcp, err := listenWithRetry(name, cfg.listen)
	if err != nil {
		return nil, err
	}
	rep.addr(tcp.Addr())
	rel, err := transport.NewReliableEndpoint(tcp, transport.RetryPolicy{Seed: cfg.seed + int64(cfg.generation)})
	if err != nil {
		tcp.Close()
		return nil, err
	}
	if cfg.generation > 0 {
		rel.AdvanceSeq(uint64(cfg.generation) << 20)
	}
	return &progressEndpoint{inner: rel, tcp: tcp, rep: rep}, nil
}

// servePeers blocks for the initial peer list (the supervisor's start
// signal), then keeps applying later lists in the background — that is how
// a restarted or late-spawned peer's address reaches a live agent.
func servePeers(tcp *transport.TCPEndpoint, in io.Reader) error {
	br := bufio.NewReader(in)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("cluster: read initial peer list: %w", err)
	}
	pl, err := readPeerList(line)
	if err != nil {
		return err
	}
	for _, p := range pl.Peers {
		tcp.AddPeer(p.Name, p.Addr)
	}
	// The reader lives for the whole agent process: a Read blocked on stdin
	// has no portable interrupt, so the only join is process exit (the
	// supervisor closing the pipe unblocks ReadBytes with an error).
	//edgecache:lint-ignore goleak stdin reader runs for the agent's lifetime; blocked Read has no portable interrupt and process exit reaps it
	go func() {
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				return // stdin closed: the supervisor is gone
			}
			if pl, err := readPeerList(line); err == nil {
				for _, p := range pl.Peers {
					tcp.AddPeer(p.Name, p.Addr)
				}
			}
		}
	}()
	return nil
}

// startHeartbeat runs the periodic beat until the returned stop function is
// called.
func startHeartbeat(rep *reporter, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rep.beat()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// runBS drives the cell's coordinator: checkpoint every sweep boundary,
// resume from the newest snapshot when relaunched after a crash (falling
// back to a cold run if death preceded the first boundary), and leave the
// cell outcome in result.json before announcing DONE.
func runBS(cfg agentConfig, out io.Writer, in io.Reader) error {
	rep := newReporter(out)
	ep, err := openEndpoint(bsName, cfg, rep)
	if err != nil {
		return err
	}
	defer ep.Close()
	// Heartbeat from the moment the listener is up: liveness means "the
	// process is alive", not "the protocol is progressing". An agent idling
	// on the bootstrap peer list (its cell's siblings may spawn slowly)
	// must not look dead to the supervisor.
	stop := startHeartbeat(rep, cfg.hbInterval)
	defer stop()
	if err := servePeers(ep.tcp, in); err != nil {
		return err
	}
	store, err := model.NewCheckpointStore(cfg.ckptDir, cfg.ckptRetain)
	if err != nil {
		return err
	}
	sbsNames := make([]string, cfg.inst.N)
	for i := range sbsNames {
		sbsNames[i] = sbsEndpointName(i)
	}
	bs, err := sim.NewBSAgent(cfg.inst, sim.BSConfig{
		Gamma:        cfg.gamma,
		MaxSweeps:    cfg.maxSweeps,
		PhaseTimeout: cfg.phaseTimeout,
		Checkpoint:   &core.CheckpointConfig{Sink: store},
	}, ep, sbsNames)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var res *core.RunResult
	if cfg.resume {
		// DeepLatest rather than Latest: a supervised restart follows an
		// unclean death, so corrupt snapshots are quarantined on the way
		// to the newest intact one instead of silently skipped.
		ck, lerr := store.DeepLatest()
		switch {
		case errors.Is(lerr, model.ErrNoCheckpoint):
			// Died before the first sweep boundary: nothing to resume.
			res, err = bs.Run(ctx)
		case lerr != nil:
			return lerr
		default:
			res, err = bs.Resume(ctx, ck)
		}
	} else {
		res, err = bs.Run(ctx)
	}
	if err != nil {
		return err
	}
	faults := res.TotalFaults()
	if err := writeResultFile(cfg.result, &AgentResult{
		Converged:   res.Converged,
		Sweeps:      res.Sweeps,
		CostTotal:   res.Solution.Cost.Total,
		History:     res.History,
		Misses:      faults.Misses,
		Quarantines: faults.QuarantineSpans,
	}); err != nil {
		return err
	}
	stop()
	rep.done()
	return nil
}

// runSBS serves one sub-problem solver until the BS's MsgDone. A restarted
// SBS draws a fresh noise stream (generation-salted seed): LPPM noise is
// never replayed across incarnations.
func runSBS(cfg agentConfig, out io.Writer, in io.Reader) error {
	rep := newReporter(out)
	ep, err := openEndpoint(sbsEndpointName(cfg.index), cfg, rep)
	if err != nil {
		return err
	}
	defer ep.Close()
	stop := startHeartbeat(rep, cfg.hbInterval)
	defer stop()
	if err := servePeers(ep.tcp, in); err != nil {
		return err
	}
	var privacy *core.PrivacyConfig
	if cfg.epsilon > 0 {
		src := rand.NewSource(cfg.seed + int64(cfg.index)*1009 + int64(cfg.generation)*1000003)
		privacy = &core.PrivacyConfig{Epsilon: cfg.epsilon, Delta: cfg.delta, Rng: rand.New(src)}
	}
	agent, err := sim.NewSBSAgent(cfg.inst, cfg.index, core.DefaultSubproblemConfig(), privacy, ep, bsName)
	if err != nil {
		return err
	}
	if err := agent.Run(context.Background()); err != nil {
		return err
	}
	stop()
	rep.done()
	return nil
}
