package model

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CheckpointSink receives snapshots as the run progresses. Save must keep
// the previously saved snapshots recoverable until the new one is durable
// (write-then-rename for the file store).
type CheckpointSink interface {
	Save(*Checkpoint) error
}

// CheckpointSource hands back the newest recoverable snapshot. Stores that
// can both save and load (the file store, the in-memory store) implement
// both interfaces.
type CheckpointSource interface {
	// Latest returns the newest decodable snapshot, or ErrNoCheckpoint
	// when the store is empty.
	Latest() (*Checkpoint, error)
}

// ErrNoCheckpoint is returned by Latest when no snapshot is available.
var ErrNoCheckpoint = errors.New("model: no checkpoint available")

const checkpointExt = ".ckpt"

// CheckpointStore persists snapshots as files in one directory. Writes are
// atomic (temp file, fsync, rename), so a crash mid-save never corrupts an
// existing snapshot; retention prunes all but the newest files. The store
// assumes a single writer (the coordinator process).
type CheckpointStore struct {
	dir    string
	retain int
}

var (
	_ CheckpointSink   = (*CheckpointStore)(nil)
	_ CheckpointSource = (*CheckpointStore)(nil)
)

// NewCheckpointStore opens (creating if needed) a snapshot directory.
// retain bounds the number of kept snapshots; 0 means the default (5).
func NewCheckpointStore(dir string, retain int) (*CheckpointStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("model: checkpoint store needs a directory")
	}
	if retain <= 0 {
		retain = 5
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("model: checkpoint store: %w", err)
	}
	return &CheckpointStore{dir: dir, retain: retain}, nil
}

// Dir returns the store's directory.
func (s *CheckpointStore) Dir() string { return s.dir }

// fileName renders the canonical snapshot name; zero-padding makes the
// lexicographic order the chronological order.
func fileName(sweep, phase int) string {
	return fmt.Sprintf("ckpt-%08d-%04d%s", sweep, phase, checkpointExt)
}

// Save implements CheckpointSink with write-then-rename atomicity: the
// snapshot becomes visible under its final name only after the bytes are
// durably on disk, so readers (and post-crash recovery) only ever see
// complete files.
func (s *CheckpointStore) Save(ck *Checkpoint) error {
	data, err := ck.MarshalBinary()
	if err != nil {
		return err
	}
	final := filepath.Join(s.dir, fileName(ck.Sweep, ck.Phase))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("model: checkpoint store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("model: checkpoint store: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("model: checkpoint store: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("model: checkpoint store: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("model: checkpoint store: rename %s: %w", tmp, err)
	}
	return s.prune()
}

// List returns the stored snapshot file names, oldest first.
func (s *CheckpointStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("model: checkpoint store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), checkpointExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Latest implements CheckpointSource. A corrupted newest file (e.g. torn
// by a crash on a filesystem without rename atomicity) is skipped in favor
// of the next older decodable one; the collected decode errors are
// reported when nothing is recoverable.
func (s *CheckpointStore) Latest() (*Checkpoint, error) {
	names, err := s.List()
	if err != nil {
		return nil, err
	}
	var decodeErrs []error
	for i := len(names) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(s.dir, names[i]))
		if err != nil {
			decodeErrs = append(decodeErrs, err)
			continue
		}
		ck, err := UnmarshalCheckpoint(data)
		if err != nil {
			decodeErrs = append(decodeErrs, fmt.Errorf("%s: %w", names[i], err))
			continue
		}
		return ck, nil
	}
	if len(decodeErrs) > 0 {
		return nil, fmt.Errorf("model: checkpoint store: no recoverable snapshot: %w", errors.Join(decodeErrs...))
	}
	return nil, ErrNoCheckpoint
}

// prune removes stale temp files and all but the newest retain snapshots.
func (s *CheckpointStore) prune() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("model: checkpoint store: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, checkpointExt+".tmp") {
			// A leftover temp file is by definition incomplete (a finished
			// write is renamed away immediately); single-writer contract
			// makes removal safe.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if strings.HasSuffix(name, checkpointExt) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for len(names) > s.retain {
		if err := os.Remove(filepath.Join(s.dir, names[0])); err != nil {
			return fmt.Errorf("model: checkpoint store: prune: %w", err)
		}
		names = names[1:]
	}
	return nil
}

// MemCheckpointStore keeps snapshots in memory — the sink used by tests
// and by the chaos harness, where durability across processes is not the
// point but crash-resume semantics are. Save round-trips every snapshot
// through the binary codec, so the stored copies are fully isolated from
// the live run AND the codec is exercised on every capture.
type MemCheckpointStore struct {
	mu      sync.Mutex
	retain  int
	entries []*Checkpoint
}

var (
	_ CheckpointSink   = (*MemCheckpointStore)(nil)
	_ CheckpointSource = (*MemCheckpointStore)(nil)
)

// NewMemCheckpointStore returns an in-memory store keeping the newest
// retain snapshots (retain <= 0 keeps everything).
func NewMemCheckpointStore(retain int) *MemCheckpointStore {
	return &MemCheckpointStore{retain: retain}
}

// Save implements CheckpointSink.
func (s *MemCheckpointStore) Save(ck *Checkpoint) error {
	data, err := ck.MarshalBinary()
	if err != nil {
		return err
	}
	stored, err := UnmarshalCheckpoint(data)
	if err != nil {
		return fmt.Errorf("model: mem checkpoint store: round-trip: %w", err)
	}
	s.mu.Lock()
	s.entries = append(s.entries, stored)
	if s.retain > 0 && len(s.entries) > s.retain {
		s.entries = append([]*Checkpoint(nil), s.entries[len(s.entries)-s.retain:]...)
	}
	s.mu.Unlock()
	return nil
}

// Latest implements CheckpointSource.
func (s *MemCheckpointStore) Latest() (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return nil, ErrNoCheckpoint
	}
	return s.entries[len(s.entries)-1], nil
}

// All returns the stored snapshots in capture order.
func (s *MemCheckpointStore) All() []*Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Checkpoint(nil), s.entries...)
}

// Len returns the number of stored snapshots.
func (s *MemCheckpointStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
