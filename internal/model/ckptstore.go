package model

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CheckpointSink receives snapshots as the run progresses. Save must keep
// the previously saved snapshots recoverable until the new one is durable
// (write-then-rename for the file store).
type CheckpointSink interface {
	Save(*Checkpoint) error
}

// CheckpointSource hands back the newest recoverable snapshot. Stores that
// can both save and load (the file store, the in-memory store) implement
// both interfaces.
type CheckpointSource interface {
	// Latest returns the newest decodable snapshot, or ErrNoCheckpoint
	// when the store is empty.
	Latest() (*Checkpoint, error)
}

// ErrNoCheckpoint is returned by Latest when no snapshot is available.
var ErrNoCheckpoint = errors.New("model: no checkpoint available")

const checkpointExt = ".ckpt"

// CheckpointStore persists snapshots as files in one directory. Writes are
// atomic (temp file, fsync, rename), so a crash mid-save never corrupts an
// existing snapshot; retention prunes all but the newest files. The store
// assumes a single writer (the coordinator process).
type CheckpointStore struct {
	dir    string
	retain int
	fs     CheckpointFS
}

var (
	_ CheckpointSink   = (*CheckpointStore)(nil)
	_ CheckpointSource = (*CheckpointStore)(nil)
)

// NewCheckpointStore opens (creating if needed) a snapshot directory.
// retain bounds the number of kept snapshots; 0 means the default (5).
func NewCheckpointStore(dir string, retain int) (*CheckpointStore, error) {
	return NewCheckpointStoreFS(dir, retain, OSCheckpointFS{})
}

// NewCheckpointStoreFS is NewCheckpointStore over an explicit filesystem —
// the seam the soak harness uses to put a fault-injecting FaultFS under an
// otherwise unmodified store.
func NewCheckpointStoreFS(dir string, retain int, fs CheckpointFS) (*CheckpointStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("model: checkpoint store needs a directory")
	}
	if retain <= 0 {
		retain = 5
	}
	if fs == nil {
		fs = OSCheckpointFS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("model: checkpoint store: %w", err)
	}
	return &CheckpointStore{dir: dir, retain: retain, fs: fs}, nil
}

// Dir returns the store's directory.
func (s *CheckpointStore) Dir() string { return s.dir }

// fileName renders the canonical snapshot name; zero-padding makes the
// lexicographic order the chronological order.
func fileName(sweep, phase int) string {
	return fmt.Sprintf("ckpt-%08d-%04d%s", sweep, phase, checkpointExt)
}

// Save implements CheckpointSink with write-then-rename atomicity: the
// snapshot becomes visible under its final name only after the bytes are
// durably on disk, so readers (and post-crash recovery) only ever see
// complete files.
func (s *CheckpointStore) Save(ck *Checkpoint) error {
	data, err := ck.MarshalBinary()
	if err != nil {
		return err
	}
	final := filepath.Join(s.dir, fileName(ck.Sweep, ck.Phase))
	tmp := final + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("model: checkpoint store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("model: checkpoint store: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("model: checkpoint store: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("model: checkpoint store: close %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("model: checkpoint store: rename %s: %w", tmp, err)
	}
	return s.prune()
}

// List returns the stored snapshot file names, oldest first.
func (s *CheckpointStore) List() ([]string, error) {
	all, err := s.fs.ReadDirNames(s.dir)
	if err != nil {
		return nil, fmt.Errorf("model: checkpoint store: %w", err)
	}
	var names []string
	for _, name := range all {
		if strings.HasSuffix(name, checkpointExt) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Latest implements CheckpointSource. A corrupted newest file (e.g. torn
// by a crash on a filesystem without rename atomicity) is skipped in favor
// of the next older decodable one; the collected decode errors are
// reported when nothing is recoverable.
func (s *CheckpointStore) Latest() (*Checkpoint, error) {
	names, err := s.List()
	if err != nil {
		return nil, err
	}
	var decodeErrs []error
	for i := len(names) - 1; i >= 0; i-- {
		data, err := s.fs.ReadFile(filepath.Join(s.dir, names[i]))
		if err != nil {
			decodeErrs = append(decodeErrs, err)
			continue
		}
		ck, err := UnmarshalCheckpoint(data)
		if err != nil {
			decodeErrs = append(decodeErrs, fmt.Errorf("%s: %w", names[i], err))
			continue
		}
		return ck, nil
	}
	if len(decodeErrs) > 0 {
		return nil, fmt.Errorf("model: checkpoint store: no recoverable snapshot: %w", errors.Join(decodeErrs...))
	}
	return nil, ErrNoCheckpoint
}

// prune removes stale temp files and all but the newest retain snapshots.
func (s *CheckpointStore) prune() error {
	all, err := s.fs.ReadDirNames(s.dir)
	if err != nil {
		return fmt.Errorf("model: checkpoint store: %w", err)
	}
	var names []string
	for _, name := range all {
		if strings.HasSuffix(name, checkpointExt+".tmp") {
			// A leftover temp file is by definition incomplete (a finished
			// write is renamed away immediately); single-writer contract
			// makes removal safe.
			s.fs.Remove(filepath.Join(s.dir, name))
			continue
		}
		if strings.HasSuffix(name, checkpointExt) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for len(names) > s.retain {
		if err := s.fs.Remove(filepath.Join(s.dir, names[0])); err != nil {
			return fmt.Errorf("model: checkpoint store: prune: %w", err)
		}
		names = names[1:]
	}
	return nil
}

// DeepLatest is Latest with active recovery: every candidate is read and
// CRC-verified newest-first, corrupt files are quarantined (renamed aside
// with a ".corrupt" suffix) instead of merely skipped, and the newest
// intact snapshot is returned. Use it on the resume path after an unclean
// shutdown — unlike Latest it mutates the directory, which is exactly what
// recovery wants (a later save under a quarantined name must not resurrect
// corrupt bytes as the apparent newest snapshot).
func (s *CheckpointStore) DeepLatest() (*Checkpoint, error) {
	ck, _, err := s.scrub(true)
	return ck, err
}

// ScrubReport summarizes a Scrub pass.
type ScrubReport struct {
	// Intact counts snapshots that decoded cleanly.
	Intact int
	// Quarantined lists the snapshot file names (pre-rename) that failed
	// CRC or decode and were moved aside.
	Quarantined []string
}

// Scrub CRC-verifies every stored snapshot and quarantines the corrupt
// ones; the report says what was kept and what was moved aside. Scrub is
// the full-sweep variant of DeepLatest for offline checks (soak's disk
// invariant, an operator fsck).
func (s *CheckpointStore) Scrub() (ScrubReport, error) {
	_, report, err := s.scrub(false)
	if errors.Is(err, ErrNoCheckpoint) {
		err = nil
	}
	return report, err
}

// scrub walks snapshots newest-first, quarantining undecodable ones. With
// stopAtFirst it returns the newest intact snapshot as soon as it decodes;
// otherwise it verifies everything.
func (s *CheckpointStore) scrub(stopAtFirst bool) (*Checkpoint, ScrubReport, error) {
	names, err := s.List()
	if err != nil {
		return nil, ScrubReport{}, err
	}
	var (
		report  ScrubReport
		newest  *Checkpoint
		badErrs []error
	)
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(s.dir, names[i])
		ck, err := s.verify(path)
		if err != nil {
			badErrs = append(badErrs, fmt.Errorf("%s: %w", names[i], err))
			if qerr := s.fs.Rename(path, quarantineName(path)); qerr != nil {
				// Quarantine is best-effort: a read-only directory still
				// gets fallback semantics, just without the rename.
				badErrs = append(badErrs, fmt.Errorf("quarantine %s: %w", names[i], qerr))
			}
			report.Quarantined = append(report.Quarantined, names[i])
			continue
		}
		report.Intact++
		if newest == nil {
			newest = ck
			if stopAtFirst {
				return newest, report, nil
			}
		}
	}
	if newest == nil {
		// The caller needed a snapshot back (DeepLatest) and none
		// survived: that is an error, and the per-file diagnoses matter.
		// A full sweep (Scrub) that quarantined everything did its job —
		// the report records the outcome, so it reads as ErrNoCheckpoint
		// which Scrub maps to success.
		if stopAtFirst && len(badErrs) > 0 {
			return nil, report, fmt.Errorf("model: checkpoint store: no recoverable snapshot: %w", errors.Join(badErrs...))
		}
		return nil, report, ErrNoCheckpoint
	}
	return newest, report, nil
}

// verify reads and decodes one snapshot file (the decode includes the CRC
// check UnmarshalCheckpoint performs).
func (s *CheckpointStore) verify(path string) (*Checkpoint, error) {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalCheckpoint(data)
}

// MemCheckpointStore keeps snapshots in memory — the sink used by tests
// and by the chaos harness, where durability across processes is not the
// point but crash-resume semantics are. Save round-trips every snapshot
// through the binary codec, so the stored copies are fully isolated from
// the live run AND the codec is exercised on every capture.
type MemCheckpointStore struct {
	mu      sync.Mutex
	retain  int
	entries []*Checkpoint
}

var (
	_ CheckpointSink   = (*MemCheckpointStore)(nil)
	_ CheckpointSource = (*MemCheckpointStore)(nil)
)

// NewMemCheckpointStore returns an in-memory store keeping the newest
// retain snapshots (retain <= 0 keeps everything).
func NewMemCheckpointStore(retain int) *MemCheckpointStore {
	return &MemCheckpointStore{retain: retain}
}

// Save implements CheckpointSink.
func (s *MemCheckpointStore) Save(ck *Checkpoint) error {
	data, err := ck.MarshalBinary()
	if err != nil {
		return err
	}
	stored, err := UnmarshalCheckpoint(data)
	if err != nil {
		return fmt.Errorf("model: mem checkpoint store: round-trip: %w", err)
	}
	s.mu.Lock()
	s.entries = append(s.entries, stored)
	if s.retain > 0 && len(s.entries) > s.retain {
		s.entries = append([]*Checkpoint(nil), s.entries[len(s.entries)-s.retain:]...)
	}
	s.mu.Unlock()
	return nil
}

// Latest implements CheckpointSource.
func (s *MemCheckpointStore) Latest() (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return nil, ErrNoCheckpoint
	}
	return s.entries[len(s.entries)-1], nil
}

// All returns the stored snapshots in capture order.
func (s *MemCheckpointStore) All() []*Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Checkpoint(nil), s.entries...)
}

// Len returns the number of stored snapshots.
func (s *MemCheckpointStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
