package core

import (
	"fmt"
	"math/rand"
	"testing"

	"edgecache/internal/leak"
	"edgecache/internal/model"
)

// TestParallelSweepZeroAllocsPerWorker pins the steady-state allocation
// contract of the worker pool: after the pool has spawned and the
// per-worker scratch and solver workspaces are warm, a full Jacobi round
// — solve fan-out, aggregate merge, overserve repair — performs zero heap
// allocations on any goroutine (AllocsPerRun counts process-wide mallocs,
// so worker allocations are included). Any allocation sneaking into
// runPhase, solveShare or the tracker row kernels fails this test, in
// concert with the static noalloc analyzer gate.
func TestParallelSweepZeroAllocsPerWorker(t *testing.T) {
	// The pool's workers must all exit when the coordinator closes.
	leak.Check(t)
	const workers = 4
	inst := benchScale(workers, 30, 50)
	c, err := NewCoordinator(inst, parallelCfg(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st := NewSweepState(inst, identityOrder(inst.N))

	round := func() {
		if err := c.engine.Sweep(st, 0, 0, nil); err != nil {
			panic(err)
		}
		cost := model.TotalServingCostFromAggregate(inst, st.Y, st.Tracker.Aggregate())
		allocSink = cost.Total
	}

	// Warm up: spawn the pool, size the solver workspaces.
	round()
	round()

	if allocs := testing.AllocsPerRun(10, round); allocs != 0 {
		t.Fatalf("steady-state parallel round allocated %.1f times per run, want 0", allocs)
	}
}

// TestParallelPoolChaosScheduledCrashes hammers the worker pool under a
// seeded chaos schedule of SBS solver crashes, under -race: on
// chaos-scheduled rounds one SBS's solver is swapped for a broken one
// (wrong instance shape, so its Solve fails mid-round while the other
// workers race through theirs), the round must surface the error without
// corrupting the pre-round state, and the retried round must put the
// trajectory back on the reference path bit-for-bit. Three schedules run
// in parallel to multiply scheduler interleavings.
func TestParallelPoolChaosScheduledCrashes(t *testing.T) {
	// Crash-and-retry rounds must not strand pool workers. The subtests
	// run in parallel, so the guard sits on the parent: it fires after
	// every subtest (and its pools) finished.
	leak.Check(t)
	const rounds = 12
	for _, seed := range []int64{11, 23, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			inst := randomInstance(rng, 5, 8, 10)

			// Reference trajectory: the same rounds on the sequential
			// reference engine, undisturbed.
			ref, err := NewCoordinator(inst, jacobiCfg())
			if err != nil {
				t.Fatal(err)
			}
			refSt := NewSweepState(inst, identityOrder(inst.N))
			var want []float64
			for sweep := 0; sweep < rounds; sweep++ {
				if err := ref.engine.Sweep(refSt, sweep, 0, nil); err != nil {
					t.Fatal(err)
				}
				want = append(want, model.TotalServingCostFromAggregate(inst, refSt.Y, refSt.Tracker.Aggregate()).Total)
			}

			c, err := NewCoordinator(inst, parallelCfg(4))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			// The "crashed" solver: built for a different instance shape, so
			// its Solve rejects the real y_{-n} mid-round.
			broken, err := NewSubproblem(randomInstance(rng, 2, 3, 4), 0, DefaultSubproblemConfig())
			if err != nil {
				t.Fatal(err)
			}

			st := NewSweepState(inst, identityOrder(inst.N))
			crashes := 0
			var got []float64
			for sweep := 0; sweep < rounds; sweep++ {
				// Chaos schedule: the seeded rng decides which SBS crashes
				// this round, if any. The swap happens on the driver
				// goroutine between rounds; the barrier channels carry the
				// happens-before edge to the workers.
				if rng.Intn(2) == 1 {
					n := rng.Intn(inst.N)
					crashes++
					saved := c.subs[n]
					c.subs[n] = broken
					if err := c.engine.Sweep(st, sweep, 0, nil); err == nil {
						t.Fatalf("sweep %d: crashed SBS %d surfaced no error", sweep, n)
					}
					c.subs[n] = saved
				}
				if err := c.engine.Sweep(st, sweep, 0, nil); err != nil {
					t.Fatalf("sweep %d: recovery round: %v", sweep, err)
				}
				got = append(got, model.TotalServingCostFromAggregate(inst, st.Y, st.Tracker.Aggregate()).Total)
			}
			if crashes == 0 {
				t.Fatalf("seed %d scheduled no crashes; pick a seed that does", seed)
			}
			bitEqualHistories(t, got, want, "chaos-crashed parallel trajectory")
		})
	}
}
