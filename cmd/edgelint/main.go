// Command edgelint runs edgecache's custom static analyzers (see
// internal/lint) over the module and prints findings in the familiar
// file:line:col format. It exits non-zero when any finding survives the
// //edgecache:lint-ignore directives, so verify.sh and CI can gate on it.
//
// Results are cached per package under $EDGELINT_CACHE (falling back to
// the user cache dir), keyed on source content hashes: a repeat run over
// unchanged sources costs one `go list` and no type-checking. -no-cache
// forces a live run; -fix always runs live because cached diagnostics
// carry no rewrite positions.
//
// Usage:
//
//	go run ./cmd/edgelint ./...
//	go run ./cmd/edgelint -analyzers floateq,determinism -fix ./...
//	go run ./cmd/edgelint -list
//	go run ./cmd/edgelint -no-cache ./...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"edgecache/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("edgelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "print the analyzer suite and exit")
		fix       = fs.Bool("fix", false, "apply machine-applicable fixes (floateq rewrites) in place")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		dir       = fs.String("C", ".", "change to this directory before loading packages")
		noCache   = fs.Bool("no-cache", false, "disable the per-package result cache")
		cacheDir  = fs.String("cache-dir", "", "result cache directory (default: $EDGELINT_CACHE, then the user cache dir)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var diags []lint.Diagnostic
	if *fix {
		// -fix needs the live program: cached diagnostics carry no edit
		// positions, and applying edits needs the FileSet they index.
		prog, err := lint.Load(*dir, patterns...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = prog.Run(suite, lint.DefaultSkip)
		applied, err := applyFixes(prog, diags)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(stdout, "edgelint: applied %d fix(es); re-run to verify\n", applied)
		}
		// Report only what a fix could not resolve.
		var remaining []lint.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	} else {
		diags, _, err = lint.RunCached(*dir, suite, lint.DefaultSkip, resolveCacheDir(*noCache, *cacheDir), patterns...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	for _, d := range diags {
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "edgelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// resolveCacheDir picks the result-cache location: flag, then the
// EDGELINT_CACHE environment variable, then the user cache dir. An empty
// return disables caching.
func resolveCacheDir(noCache bool, flagDir string) string {
	if noCache {
		return ""
	}
	if flagDir != "" {
		return flagDir
	}
	if env := os.Getenv("EDGELINT_CACHE"); env != "" {
		return env
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "edgelint")
}

// applyFixes rewrites source files with every machine-applicable fix.
// Edits are grouped per file and applied back-to-front so earlier offsets
// stay valid.
func applyFixes(prog *lint.Program, diags []lint.Diagnostic) (int, error) {
	type edit struct {
		start, end int // byte offsets
		newText    string
	}
	perFile := map[string][]edit{}
	seen := map[string]map[edit]bool{}
	applied := 0
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		applied++
		for _, f := range d.Fixes {
			start := prog.Fset.Position(f.Pos)
			end := prog.Fset.Position(f.End)
			e := edit{start.Offset, end.Offset, f.NewText}
			// Several diagnostics in one file may carry the same edit
			// (e.g. each floateq finding wants the same import insertion);
			// apply it once.
			if seen[start.Filename] == nil {
				seen[start.Filename] = map[edit]bool{}
			}
			if seen[start.Filename][e] {
				continue
			}
			seen[start.Filename][e] = true
			perFile[start.Filename] = append(perFile[start.Filename], e)
		}
	}
	for filename, edits := range perFile {
		src, err := os.ReadFile(filename)
		if err != nil {
			return applied, fmt.Errorf("edgelint: -fix: %v", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].end > edits[i-1].start {
				return applied, fmt.Errorf("edgelint: -fix: overlapping edits in %s; fix manually", filename)
			}
		}
		for _, e := range edits {
			src = append(src[:e.start], append([]byte(e.newText), src[e.end:]...)...)
		}
		if err := os.WriteFile(filename, src, 0o644); err != nil {
			return applied, fmt.Errorf("edgelint: -fix: %v", err)
		}
	}
	return applied, nil
}
