package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockedSend forbids blocking transport calls (Endpoint.Send/Recv and any
// implementation's Send/Recv) while a sync.Mutex or sync.RWMutex is held.
// The PR 2 retry loops make this shape actively dangerous: a Send can
// sleep through several backoff windows (or redial TCP), so a mutex held
// across it stalls every other goroutine touching that lock — in the
// worst case the very Recv loop whose progress the Send is waiting on,
// which is a deadlock, not a slowdown. The fix is the pattern
// ReliableEndpoint.Send itself uses: update state under the lock, release
// it, then perform the blocking call.
//
// The analysis is a per-function lexical scan: Lock/RLock adds the lock
// expression to the held set, Unlock/RUnlock removes it, a deferred
// Unlock pins it for the rest of the function, and nested function
// literals start with a clean slate (they run on their own goroutine or
// after return).
var LockedSend = &Analyzer{
	Name: "lockedsend",
	Doc:  "no blocking transport Send/Recv while a sync.Mutex/RWMutex is held",
	Run:  runLockedSend,
}

const transportPkgPath = "edgecache/internal/transport"

func runLockedSend(pass *Pass) {
	endpoint := endpointInterface(pass.Prog)
	if endpoint == nil {
		return // module slice under analysis does not include the transport layer
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanLockedSend(pass, endpoint, fd.Body, map[string]token.Pos{})
		}
	}
}

// endpointInterface finds transport.Endpoint's interface type in the
// loaded program.
func endpointInterface(prog *Program) *types.Interface {
	pkg := prog.ByPath[transportPkgPath]
	if pkg == nil {
		return nil
	}
	obj := pkg.Types.Scope().Lookup("Endpoint")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// scanLockedSend walks one statement list with the current held-lock set
// (keyed by the lock expression's source text). Branch bodies get a copy:
// an Unlock inside an if releases the lock only on that path, and after a
// conditional release the conservative answer is "still held" — a Send
// that is safe only on one branch is still a bug on the other.
func scanLockedSend(pass *Pass, endpoint *types.Interface, block *ast.BlockStmt, held map[string]token.Pos) {
	for _, stmt := range block.List {
		scanLockedSendStmt(pass, endpoint, stmt, held)
	}
}

func scanLockedSendStmt(pass *Pass, endpoint *types.Interface, stmt ast.Stmt, held map[string]token.Pos) {
	copyHeld := func() map[string]token.Pos {
		cp := make(map[string]token.Pos, len(held))
		for k, v := range held {
			cp[k] = v
		}
		return cp
	}
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, recv, kind := lockCall(pass.Pkg, call); kind != 0 {
				if kind > 0 {
					held[recv] = call.Pos()
				} else {
					delete(held, recv)
				}
				_ = name
				return
			}
		}
		checkSendsUnder(pass, endpoint, s.X, held)
	case *ast.DeferStmt:
		if _, recv, kind := lockCall(pass.Pkg, s.Call); kind < 0 {
			// Deferred unlock: the lock stays held for the remainder of
			// the function body, which is exactly what the scan models by
			// leaving it in the set.
			_ = recv
			return
		}
		checkSendsUnder(pass, endpoint, s.Call, held)
	case *ast.IfStmt:
		if s.Init != nil {
			scanLockedSendStmt(pass, endpoint, s.Init, held)
		}
		checkSendsUnder(pass, endpoint, s.Cond, held)
		scanLockedSend(pass, endpoint, s.Body, copyHeld())
		if s.Else != nil {
			scanLockedSendStmt(pass, endpoint, s.Else, copyHeld())
		}
	case *ast.BlockStmt:
		scanLockedSend(pass, endpoint, s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			scanLockedSendStmt(pass, endpoint, s.Init, held)
		}
		if s.Cond != nil {
			checkSendsUnder(pass, endpoint, s.Cond, held)
		}
		scanLockedSend(pass, endpoint, s.Body, copyHeld())
	case *ast.RangeStmt:
		checkSendsUnder(pass, endpoint, s.X, held)
		scanLockedSend(pass, endpoint, s.Body, copyHeld())
	case *ast.SwitchStmt:
		if s.Init != nil {
			scanLockedSendStmt(pass, endpoint, s.Init, held)
		}
		if s.Tag != nil {
			checkSendsUnder(pass, endpoint, s.Tag, held)
		}
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			cp := copyHeld()
			for _, st := range cc.Body {
				scanLockedSendStmt(pass, endpoint, st, cp)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			cp := copyHeld()
			for _, st := range cc.Body {
				scanLockedSendStmt(pass, endpoint, st, cp)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			cp := copyHeld()
			if cc.Comm != nil {
				scanLockedSendStmt(pass, endpoint, cc.Comm, cp)
			}
			for _, st := range cc.Body {
				scanLockedSendStmt(pass, endpoint, st, cp)
			}
		}
	case *ast.GoStmt:
		// The goroutine body runs concurrently with its own (empty) lock
		// state; function-literal bodies are scanned below.
		scanFuncLits(pass, endpoint, s.Call)
	case *ast.LabeledStmt:
		scanLockedSendStmt(pass, endpoint, s.Stmt, held)
	default:
		if stmt != nil {
			ast.Inspect(stmt, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					checkSendsUnder(pass, endpoint, e, held)
					return false
				}
				return true
			})
		}
	}
}

// checkSendsUnder flags transport Send/Recv calls inside expr while locks
// are held, and scans nested function literals with a clean slate.
func checkSendsUnder(pass *Pass, endpoint *types.Interface, expr ast.Expr, held map[string]token.Pos) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			scanLockedSend(pass, endpoint, node.Body, map[string]token.Pos{})
			return false
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			if target := transportCallName(pass.Pkg, endpoint, node); target != "" {
				for lock, pos := range held {
					pass.Reportf(node.Pos(),
						"%s while %s is held (locked at %s): release the mutex before blocking transport calls",
						target, lock, pass.Prog.Fset.Position(pos))
					break
				}
			}
		}
		return true
	})
}

// scanFuncLits scans function literals below n with empty lock state.
func scanFuncLits(pass *Pass, endpoint *types.Interface, n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			scanLockedSend(pass, endpoint, fl.Body, map[string]token.Pos{})
			return false
		}
		return true
	})
}

// lockCall classifies a call as a sync mutex Lock (+1) / Unlock (-1) and
// returns the lock expression's source text; kind 0 means not a lock op.
func lockCall(pkg *Package, call *ast.CallExpr) (name, recv string, kind int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", 0
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", 0
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", "", 0
	}
	recvType := sig.Recv().Type()
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok {
		return "", "", 0
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", "", 0
	}
	recv = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return fn.Name(), recv, 1
	case "Unlock", "RUnlock":
		return fn.Name(), recv, -1
	}
	return "", "", 0
}

// transportCallName returns a printable name when the call is a blocking
// transport call: a Send/Recv method on transport.Endpoint itself or on
// any type implementing it.
func transportCallName(pkg *Package, endpoint *types.Interface, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if fn.Name() != "Send" && fn.Name() != "Recv" {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return ""
	}
	recvType := sig.Recv().Type()
	if types.Implements(recvType, endpoint) {
		return recvName(recvType) + "." + fn.Name()
	}
	if _, isIface := recvType.Underlying().(*types.Interface); isIface {
		if types.Identical(recvType.Underlying(), endpoint) {
			return recvName(recvType) + "." + fn.Name()
		}
	}
	return ""
}

func recvName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
