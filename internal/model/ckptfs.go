package model

import (
	"io"
	"os"
	"sort"
)

// CheckpointFS is the filesystem seam CheckpointStore writes through. The
// default implementation (OSCheckpointFS) passes straight to the os
// package; the fault-injecting implementation (FaultFS) wraps another
// CheckpointFS to simulate short writes, full disks, failed renames, and
// post-write bit-rot, which is how the soak harness makes disk a fault
// domain instead of an assumption.
type CheckpointFS interface {
	// MkdirAll creates the directory (and parents) if needed.
	MkdirAll(dir string, perm os.FileMode) error
	// OpenFile opens a file for writing with the given flags.
	OpenFile(name string, flag int, perm os.FileMode) (CheckpointFile, error)
	// Rename atomically moves oldpath to newpath (the durability step of
	// write-then-rename, and the quarantine step of Scrub).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDirNames returns the names (not paths) of the plain files in
	// dir, sorted.
	ReadDirNames(dir string) ([]string, error)
	// ReadFile returns a file's full contents.
	ReadFile(name string) ([]byte, error)
}

// CheckpointFile is the open-file surface Save needs: write, make durable,
// close.
type CheckpointFile interface {
	io.Writer
	Sync() error
	Close() error
}

// OSCheckpointFS implements CheckpointFS directly on the os package.
type OSCheckpointFS struct{}

var _ CheckpointFS = OSCheckpointFS{}

// MkdirAll implements CheckpointFS.
func (OSCheckpointFS) MkdirAll(dir string, perm os.FileMode) error {
	return os.MkdirAll(dir, perm)
}

// OpenFile implements CheckpointFS.
func (OSCheckpointFS) OpenFile(name string, flag int, perm os.FileMode) (CheckpointFile, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename implements CheckpointFS.
func (OSCheckpointFS) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}

// Remove implements CheckpointFS.
func (OSCheckpointFS) Remove(name string) error {
	return os.Remove(name)
}

// ReadDirNames implements CheckpointFS.
func (OSCheckpointFS) ReadDirNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements CheckpointFS.
func (OSCheckpointFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(name)
}

// quarantineExt marks snapshots DeepLatest/Scrub moved aside after a
// failed CRC or decode; the suffix keeps them out of List (and prune) while
// preserving the bytes for post-mortem.
const quarantineExt = ".corrupt"

// quarantineName renders the aside-name for a corrupt snapshot.
func quarantineName(name string) string {
	return name + quarantineExt
}
