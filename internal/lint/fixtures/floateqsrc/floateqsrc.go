// Package floateqsrc holds deliberate exact-float-comparison violations,
// sentinel comparisons the analyzer must allow, and the directive forms
// (used, unused, malformed) the suppression machinery is tested against.
// The edgelint driver skips everything under internal/lint/fixtures.
package floateqsrc

import "math"

// Converged compares two computed values exactly — the canonical bug.
func Converged(prev, cost float64) bool {
	return prev == cost // want `exact float == comparison`
}

// Changed accumulates and then compares exactly.
func Changed(xs []float64, prev float64) bool {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum != prev // want `exact float != comparison`
}

// Sentinels shows the allowed exact forms: constants and math.Inf are
// exact by construction.
func Sentinels(cost float64) bool {
	if cost == 0 {
		return true
	}
	if cost == math.Inf(1) {
		return false
	}
	const unset = -1.0
	return cost != unset
}

// TieBreak is the sanctioned escape hatch: exactness is the point, and the
// directive says why.
func TieBreak(a, b float64) bool {
	if a != b { //edgecache:lint-ignore floateq sort tie-break must distinguish any bit-level difference
		return a < b
	}
	return false
}

//edgecache:lint-ignore floateq nothing on the next line compares floats // want `unused lint-ignore floateq directive`
func Stale(a, b int) bool {
	return a == b
}
