package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTCPRestartStormSeqDisjoint replays the cluster supervisor's restart
// storm at the transport layer: a long-lived receiver holds a dedup window
// for peer "sbs" while that peer is repeatedly torn down and relaunched on
// the same address, each incarnation advancing its sequence range with
// AdvanceSeq (generation << 20) exactly as a supervised agent does. Every
// incarnation's first messages must reach the application — a window still
// holding the previous generation's numbers must not discard them as retry
// duplicates. A sender goroutine hammers the restarting address throughout
// so the redial path races the listener teardown/rebind; run under -race
// (verify.sh does).
func TestTCPRestartStormSeqDisjoint(t *testing.T) {
	ctx := testCtx(t)
	bsTCP, err := NewTCPEndpoint("bs", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bsTCP.Close()
	bs, err := NewReliableEndpoint(bsTCP, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}

	const (
		generations = 4
		perGen      = 8
	)

	// Pin the peer's address by binding once and immediately recycling it,
	// so every incarnation below can rebind the same port.
	probe, err := NewTCPEndpoint("sbs", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	bsTCP.AddPeer("sbs", addr)

	// Background hammer: the bs keeps sending into the restarting address
	// for the whole storm, racing connTo/dropConn against the peer's
	// teardown and rebind. Delivery failures are expected mid-restart;
	// only a deadlock or a race report fails the test.
	hammerCtx, stopHammer := context.WithCancel(ctx)
	defer stopHammer()
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		for hammerCtx.Err() == nil {
			_ = bs.Send(hammerCtx, "sbs", Message{Type: MsgDone})
			time.Sleep(time.Millisecond)
		}
	}()

	type stamp struct{ sweep, phase int }
	got := make(chan stamp, generations*perGen)
	go func() {
		for {
			m, err := bs.Recv(ctx)
			if err != nil {
				return
			}
			got <- stamp{m.Sweep, m.Phase}
		}
	}()

	for gen := 0; gen < generations; gen++ {
		var sbsTCP *TCPEndpoint
		// The previous incarnation's port lingers briefly after Close;
		// rebinding can need a few attempts even with SO_REUSEADDR.
		for attempt := 0; ; attempt++ {
			if sbsTCP, err = NewTCPEndpoint("sbs", addr); err == nil {
				break
			}
			if attempt >= 100 {
				t.Fatalf("gen %d: rebind %s: %v", gen, addr, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		sbs, err := NewReliableEndpoint(sbsTCP, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: -1})
		if err != nil {
			t.Fatal(err)
		}
		sbs.AdvanceSeq(uint64(gen) << 20)
		sbsTCP.AddPeer("bs", bsTCP.Addr())

		// Drain the peer's inbox concurrently so the hammer's deliveries
		// cannot back-pressure this incarnation.
		drainCtx, stopDrain := context.WithCancel(ctx)
		var drained sync.WaitGroup
		drained.Add(1)
		go func() {
			defer drained.Done()
			for {
				if _, err := sbs.Recv(drainCtx); err != nil {
					return
				}
			}
		}()

		for i := 0; i < perGen; i++ {
			if err := sbs.Send(ctx, "bs", Message{Type: MsgPolicyUpload, Sweep: gen, Phase: i}); err != nil {
				t.Fatalf("gen %d send %d: %v", gen, i, err)
			}
		}

		// Every message of this incarnation must surface despite the
		// receiver's window remembering earlier generations.
		want := make(map[stamp]bool, perGen)
		for i := 0; i < perGen; i++ {
			want[stamp{gen, i}] = true
		}
		deadline := time.After(10 * time.Second)
		for len(want) > 0 {
			select {
			case s := <-got:
				if s.sweep == gen && !want[s] {
					t.Errorf("gen %d: message %+v delivered twice", gen, s)
				}
				delete(want, s)
			case <-deadline:
				t.Fatalf("gen %d: %d messages never delivered (likely deduplicated against an earlier generation): %v",
					gen, len(want), keys(want))
			}
		}

		stopDrain()
		drained.Wait()
		if err := sbsTCP.Close(); err != nil {
			t.Fatal(err)
		}
	}
	stopHammer()
	hammer.Wait()
}

func keys[K comparable, V any](m map[K]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, fmt.Sprint(k))
	}
	return out
}
