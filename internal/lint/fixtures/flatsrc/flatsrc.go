// Package flatsrc holds deliberate raw backing-slice accesses to model.Mat
// and model.Tensor3 plus the accessor-based clean forms. The edgelint
// driver skips everything under internal/lint/fixtures.
package flatsrc

import "edgecache/internal/model"

// SumRaw ranges the backing slice directly — the exact pattern the
// flat-tensor boundary forbids outside internal/model.
func SumRaw(m model.Mat) float64 {
	total := 0.0
	for _, v := range m.Data { // want `raw access to model\.Mat backing storage`
		total += v
	}
	return total
}

// PokeRaw writes through hand-rolled stride arithmetic.
func PokeRaw(t *model.Tensor3, n, u, f int) {
	t.Data[(n*t.U+u)*t.F+f] = 1 // want `raw access to model\.Tensor3 backing storage`
}

// SumClean is the approved form: accessors keep the stride arithmetic in
// internal/model.
func SumClean(m model.Mat) float64 {
	total := 0.0
	for u := 0; u < m.U; u++ {
		row := m.Row(u)
		for _, v := range row {
			total += v
		}
	}
	return total
}

// PokeClean writes through the accessor API.
func PokeClean(t *model.Tensor3, n, u, f int) {
	t.Set(n, u, f, 1)
}
