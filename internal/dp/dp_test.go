package dp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSampleLaplaceMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	const scale = 2.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := SampleLaplace(rng, scale)
		sum += v
		sumAbs += math.Abs(v)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	if math.Abs(mean) > 0.05 {
		t.Errorf("empirical mean = %v, want ≈0", mean)
	}
	// E|X| = scale for Laplace.
	if math.Abs(meanAbs-scale) > 0.05 {
		t.Errorf("empirical E|X| = %v, want %v", meanAbs, scale)
	}
}

func TestSampleLaplacePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive scale")
		}
	}()
	SampleLaplace(rand.New(rand.NewSource(1)), 0)
}

func TestBetaForEpsilon(t *testing.T) {
	beta, err := BetaForEpsilon(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if beta != 4 {
		t.Errorf("beta = %v, want 4", beta)
	}
	if _, err := BetaForEpsilon(0, 1); err == nil {
		t.Error("zero sensitivity: want error")
	}
	if _, err := BetaForEpsilon(1, 0); err == nil {
		t.Error("zero epsilon: want error")
	}
}

func TestBoundedLaplaceConstruction(t *testing.T) {
	if _, err := NewBoundedLaplace(0, 0, 1); err == nil {
		t.Error("beta=0: want error")
	}
	if _, err := NewBoundedLaplace(1, 2, 1); err == nil {
		t.Error("lo>hi: want error")
	}
	if _, err := NewBoundedLaplace(math.NaN(), 0, 1); err == nil {
		t.Error("NaN beta: want error")
	}
	if _, err := NewBoundedLaplace(1, math.NaN(), 1); err == nil {
		t.Error("NaN lo: want error")
	}
}

func TestBoundedLaplaceSampleInRange(t *testing.T) {
	cases := []struct{ beta, lo, hi float64 }{
		{1, 0, 0.5},
		{0.1, 0, 0.01},
		{10, -3, 2},
		{2, -5, -1},
		{1, 1, 4},
	}
	rng := rand.New(rand.NewSource(7))
	for _, c := range cases {
		bl, err := NewBoundedLaplace(c.beta, c.lo, c.hi)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			v := bl.Sample(rng)
			if v < c.lo || v > c.hi {
				t.Fatalf("sample %v outside [%v,%v] (beta=%v)", v, c.lo, c.hi, c.beta)
			}
		}
	}
}

func TestBoundedLaplaceDegenerate(t *testing.T) {
	bl, err := NewBoundedLaplace(1, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if got := bl.Sample(rng); got != 0.3 {
		t.Errorf("degenerate sample = %v, want 0.3", got)
	}
	if got := bl.Mean(); got != 0.3 {
		t.Errorf("degenerate mean = %v, want 0.3", got)
	}
}

func TestBoundedLaplaceMeanMatchesMonteCarlo(t *testing.T) {
	cases := []struct{ beta, lo, hi float64 }{
		{1, 0, 0.5},
		{0.5, -2, 3},
		{3, -4, -1},
		{0.2, 0, 1},
	}
	rng := rand.New(rand.NewSource(11))
	for _, c := range cases {
		bl, err := NewBoundedLaplace(c.beta, c.lo, c.hi)
		if err != nil {
			t.Fatal(err)
		}
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += bl.Sample(rng)
		}
		mc := sum / n
		if math.Abs(mc-bl.Mean()) > 0.02*(1+math.Abs(bl.Mean())) {
			t.Errorf("interval [%v,%v] beta=%v: Monte Carlo mean %v vs analytic %v",
				c.lo, c.hi, c.beta, mc, bl.Mean())
		}
	}
}

func TestBoundedLaplaceNormalizingConstant(t *testing.T) {
	// For [0, hi]: α = (1 − e^(−hi/β))/2.
	bl, err := NewBoundedLaplace(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - math.Exp(-0.5)) / 2
	if got := bl.NormalizingConstant(); math.Abs(got-want) > 1e-12 {
		t.Errorf("alpha = %v, want %v", got, want)
	}
	// Full line would integrate to 1; a huge interval should approach 1.
	bl, err = NewBoundedLaplace(1, -100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := bl.NormalizingConstant(); math.Abs(got-1) > 1e-9 {
		t.Errorf("alpha over wide interval = %v, want ≈1", got)
	}
}

func TestBoundedLaplaceDensityIntegratesToOne(t *testing.T) {
	bl, err := NewBoundedLaplace(0.7, -1, 2)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 200000
	width := 3.0 / steps
	var integral float64
	for i := 0; i < steps; i++ {
		r := -1 + (float64(i)+0.5)*width
		integral += bl.Density(r) * width
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Errorf("density integral = %v, want 1", integral)
	}
	if bl.Density(-1.5) != 0 || bl.Density(2.5) != 0 {
		t.Error("density outside support must be 0")
	}
}

func TestBoundedLaplaceAccessors(t *testing.T) {
	bl, err := NewBoundedLaplace(0.5, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := bl.Interval()
	if lo != 0 || hi != 0.25 {
		t.Errorf("Interval() = [%v,%v], want [0,0.25]", lo, hi)
	}
	if bl.Beta() != 0.5 {
		t.Errorf("Beta() = %v, want 0.5", bl.Beta())
	}
}

// Property: samples always stay in the configured interval.
func TestBoundedLaplaceRangeProperty(t *testing.T) {
	prop := func(betaRaw, loRaw, width uint16, seed int64) bool {
		beta := 0.01 + float64(betaRaw)/1000
		lo := float64(loRaw)/100 - 300
		hi := lo + float64(width)/100
		bl, err := NewBoundedLaplace(beta, lo, hi)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			v := bl.Sample(rng)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLPPMNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		r, err := LPPMNoise(rng, 0.8, 0.5, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r < 0 || r > 0.4 {
			t.Fatalf("noise %v outside [0, δ·y] = [0, 0.4]", r)
		}
	}
	if r, err := LPPMNoise(rng, 0, 0.5, 1); err != nil || r != 0 {
		t.Errorf("zero y: noise = %v err = %v, want 0, nil", r, err)
	}
	if r, err := LPPMNoise(rng, 0.5, 0, 1); err != nil || r != 0 {
		t.Errorf("zero delta: noise = %v err = %v, want 0, nil", r, err)
	}
	if _, err := LPPMNoise(rng, 0.5, 1.0, 1); err == nil {
		t.Error("delta=1: want error")
	}
	if _, err := LPPMNoise(rng, -0.1, 0.5, 1); err == nil {
		t.Error("negative y: want error")
	}
	if _, err := LPPMNoise(rng, 0.5, 0.5, 0); err == nil {
		t.Error("zero beta: want error")
	}
}

// TestLaplaceMechanismDPRatio estimates the ε-DP inequality (the paper's
// eq. 26) by Monte Carlo: for the additive Laplace mechanism on two
// neighboring values differing by the sensitivity, the probability of any
// output interval differs by at most e^ε (up to sampling error).
func TestLaplaceMechanismDPRatio(t *testing.T) {
	const (
		eps   = 0.5
		delta = 1.0 // sensitivity
		n     = 300000
	)
	m := LaplaceMechanism{Sensitivity: delta, Epsilon: eps}
	rng := rand.New(rand.NewSource(5))
	histA := make(map[int]float64)
	histB := make(map[int]float64)
	bucket := func(v float64) int { return int(math.Floor(v)) }
	for i := 0; i < n; i++ {
		a, err := m.Release(rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Release(rng, delta)
		if err != nil {
			t.Fatal(err)
		}
		histA[bucket(a)]++
		histB[bucket(b)]++
	}
	bound := math.Exp(eps)
	for k, ca := range histA {
		cb := histB[k]
		if ca < 3000 || cb < 3000 {
			continue // skip tails with too few samples for a stable ratio
		}
		ratio := ca / cb
		if ratio > bound*1.1 || ratio < 1/(bound*1.1) {
			t.Errorf("bucket %d: probability ratio %v outside e^±ε = %v", k, ratio, bound)
		}
	}
}

func TestTruncatedHalfNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, c := range []struct{ sigma, hi float64 }{
		{1, 0.5}, {0.1, 0.5}, {10, 0.01}, {0.5, 3},
	} {
		for i := 0; i < 3000; i++ {
			v, err := TruncatedHalfNormal(rng, c.sigma, c.hi)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > c.hi {
				t.Fatalf("sample %v outside [0,%v] (sigma=%v)", v, c.hi, c.sigma)
			}
		}
	}
	// hi = 0 is a point mass at 0.
	if v, err := TruncatedHalfNormal(rng, 1, 0); err != nil || v != 0 {
		t.Errorf("hi=0: v=%v err=%v", v, err)
	}
	if _, err := TruncatedHalfNormal(rng, 0, 1); err == nil {
		t.Error("sigma=0: want error")
	}
	if _, err := TruncatedHalfNormal(rng, 1, -1); err == nil {
		t.Error("negative hi: want error")
	}
	// With hi ≫ σ the truncation is inactive: the mean must approach the
	// half-normal mean σ·√(2/π).
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v, err := TruncatedHalfNormal(rng, 1, 50)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	want := math.Sqrt(2 / math.Pi)
	if got := sum / n; math.Abs(got-want) > 0.02 {
		t.Errorf("mean = %v, want ≈%v", got, want)
	}
}

func TestGaussianMechanism(t *testing.T) {
	m := GaussianMechanism{Sensitivity: 1, Epsilon: 0.5, Delta: 1e-5}
	sigma, err := m.Sigma()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2*math.Log(1.25/1e-5)) / 0.5
	if math.Abs(sigma-want) > 1e-12 {
		t.Errorf("sigma = %v, want %v", sigma, want)
	}
	rng := rand.New(rand.NewSource(9))
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v, err := m.Release(rng, 10)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Errorf("mean release = %v, want ≈10", mean)
	}

	bad := []GaussianMechanism{
		{Sensitivity: 0, Epsilon: 0.5, Delta: 1e-5},
		{Sensitivity: 1, Epsilon: 0, Delta: 1e-5},
		{Sensitivity: 1, Epsilon: 2, Delta: 1e-5},
		{Sensitivity: 1, Epsilon: 0.5, Delta: 0},
		{Sensitivity: 1, Epsilon: 0.5, Delta: 1},
	}
	for i, m := range bad {
		if _, err := m.Sigma(); err == nil {
			t.Errorf("case %d: Sigma accepted invalid mechanism %+v", i, m)
		}
	}
}

func TestExponentialMechanism(t *testing.T) {
	m := ExponentialMechanism{Sensitivity: 1, Epsilon: 4}
	rng := rand.New(rand.NewSource(13))
	utilities := []float64{0, 5, 1}
	counts := make([]int, 3)
	const n = 20000
	for i := 0; i < n; i++ {
		idx, err := m.Select(rng, utilities)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	// Index 1 has utility 5 and should dominate: P(1)/P(0) = e^(4·5/2) ≫ 1.
	if counts[1] < n*9/10 {
		t.Errorf("high-utility index selected %d/%d times, want > 90%%", counts[1], n)
	}
	// Ratios between observed frequencies follow the exponential weights.
	// Use a two-option vector so both options get enough samples:
	// P(1)/P(0) = e^(2·1/2) = e ≈ 2.72.
	m2 := ExponentialMechanism{Sensitivity: 1, Epsilon: 2}
	two := []float64{0, 1}
	counts2 := make([]int, 2)
	for i := 0; i < n; i++ {
		idx, err := m2.Select(rng, two)
		if err != nil {
			t.Fatal(err)
		}
		counts2[idx]++
	}
	ratio := float64(counts2[1]) / float64(counts2[0])
	if ratio < 2.3 || ratio > 3.2 {
		t.Errorf("P(1)/P(0) = %v, want ≈e", ratio)
	}

	if _, err := m.Select(rng, nil); err == nil {
		t.Error("empty utilities: want error")
	}
	if _, err := (ExponentialMechanism{Sensitivity: 0, Epsilon: 1}).Select(rng, utilities); err == nil {
		t.Error("zero sensitivity: want error")
	}
	if _, err := (ExponentialMechanism{Sensitivity: 1, Epsilon: 0}).Select(rng, utilities); err == nil {
		t.Error("zero epsilon: want error")
	}
	if _, err := m.Select(rng, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN utility: want error")
	}
}

func TestAccountant(t *testing.T) {
	var a Accountant
	if err := a.Record("sbs-0", 0.1); err != nil {
		t.Fatal(err)
	}
	if err := a.Record("sbs-0", 0.2); err != nil {
		t.Fatal(err)
	}
	if err := a.Record("sbs-1", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := a.Record("sbs-0", -1); err == nil {
		t.Error("negative epsilon: want error")
	}
	if got := a.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := a.SequentialEpsilon(); math.Abs(got-0.55) > 1e-12 {
		t.Errorf("SequentialEpsilon = %v, want 0.55", got)
	}
	if got := a.ParallelEpsilon(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("ParallelEpsilon = %v, want 0.3", got)
	}
	byLabel := a.ByLabel()
	if math.Abs(byLabel["sbs-0"]-0.3) > 1e-12 || math.Abs(byLabel["sbs-1"]-0.25) > 1e-12 {
		t.Errorf("ByLabel = %v", byLabel)
	}
	if s := a.String(); len(s) == 0 {
		t.Error("String() empty")
	}
	a.Reset()
	if a.Count() != 0 || a.SequentialEpsilon() != 0 {
		t.Error("Reset did not clear spends")
	}
}

func TestAdvancedComposition(t *testing.T) {
	// k releases at small ε: advanced composition must beat k·ε.
	const eps, k = 0.1, 100
	total, deltaTotal, err := AdvancedComposition(eps, 0, k, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if total >= eps*k {
		t.Errorf("advanced ε %v not below sequential %v", total, eps*k)
	}
	if math.Abs(deltaTotal-1e-6) > 1e-18 {
		t.Errorf("δ_total = %v, want δ' when δ=0", deltaTotal)
	}
	// Exact formula spot check.
	want := eps*math.Sqrt(2*float64(k)*math.Log(1e6)) + float64(k)*eps*(math.Exp(eps)-1)
	if math.Abs(total-want) > 1e-12 {
		t.Errorf("ε_total = %v, want %v", total, want)
	}
	bad := [][4]float64{
		{0, 0, 1, 0.1},
		{1, -0.1, 1, 0.1},
		{1, 1, 1, 0.1},
		{1, 0, 0, 0.1},
		{1, 0, 1, 0},
		{1, 0, 1, 1},
	}
	for i, c := range bad {
		if _, _, err := AdvancedComposition(c[0], c[1], int(c[2]), c[3]); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestAccountantConcurrent(t *testing.T) {
	var a Accountant
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := a.Record("sbs", 0.01); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := a.Count(); got != 800 {
		t.Errorf("Count = %d, want 800", got)
	}
	if got := a.SequentialEpsilon(); math.Abs(got-8) > 1e-9 {
		t.Errorf("SequentialEpsilon = %v, want 8", got)
	}
}
