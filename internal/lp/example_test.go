package lp_test

import (
	"fmt"
	"log"

	"edgecache/internal/lp"
)

// Example solves a small production-planning LP and reads both the primal
// solution and the shadow prices.
func Example() {
	// max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0.
	p := lp.NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{3, 5}
	p.AddConstraint([]float64{1, 0}, lp.LE, 4)
	p.AddConstraint([]float64{0, 2}, lp.LE, 12)
	p.AddConstraint([]float64{3, 2}, lp.LE, 18)

	sol, err := lp.Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status: %v\n", sol.Status)
	fmt.Printf("objective: %.0f at x=%.0f y=%.0f\n", sol.Objective, sol.X[0], sol.X[1])
	fmt.Printf("shadow prices: %.1f %.1f %.1f\n", sol.Duals[0], sol.Duals[1], sol.Duals[2])
	// Output:
	// status: optimal
	// objective: 36 at x=2 y=6
	// shadow prices: 0.0 1.5 1.0
}

// ExampleSolveMILP solves a binary knapsack exactly.
func ExampleSolveMILP() {
	p := lp.NewProblem(3)
	p.Maximize = true
	p.Obj = []float64{10, 13, 7}
	p.AddConstraint([]float64{3, 4, 2}, lp.LE, 6)
	for j := 0; j < 3; j++ {
		p.SetBounds(j, 0, 1)
		p.MarkInteger(j)
	}
	sol, err := lp.SolveMILP(p, lp.MILPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best value %.0f picking items %.0f %.0f %.0f\n",
		sol.Objective, sol.X[0], sol.X[1], sol.X[2])
	// Output:
	// best value 20 picking items 0 1 1
}
