package edgecache

// This file is the benchmark harness required by DESIGN.md: one benchmark
// per paper figure (Fig. 2-6), one per extension experiment (E7-E11), and
// micro-benchmarks for the load-bearing components. Figure benchmarks run
// the same generators as cmd/benchfig on a single seed so one benchmark
// iteration is one full figure regeneration; run cmd/benchfig for the
// multi-seed tables recorded in EXPERIMENTS.md.

import (
	"context"
	"math/rand"
	"testing"

	"edgecache/internal/baseline"
	"edgecache/internal/cache"
	"edgecache/internal/core"
	"edgecache/internal/dp"
	"edgecache/internal/experiments"
	"edgecache/internal/lp"
	"edgecache/internal/sim"
	"edgecache/internal/trace"
)

// benchHarness is the single-seed harness used by the figure benchmarks.
func benchHarness() experiments.Harness {
	h := experiments.DefaultHarness()
	h.Seeds = []int64{1}
	return h
}

func BenchmarkFig2(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig3(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig4(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig5(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig6(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalityGap(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.OptimalityGap(3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvergence(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.Convergence(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestartAblation(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.RestartAblation(4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiAblation(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.JacobiAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoiseFamilies(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.NoiseFamilyAblation(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiBS(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.MultiBSAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFluidValidation(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.FluidValidation(20000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructionAttack(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.ReconstructionAttack(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachePolicies(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.CachePolicyAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChurnStudy(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if _, err := h.ChurnStudy(4, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks -------------------------------------------------

func benchInstance(b *testing.B) *Instance {
	b.Helper()
	inst, err := DefaultScenario().Build()
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkSubproblemSolve measures one P_n dual-decomposition solve at
// the paper's default scale (the inner loop of everything).
func BenchmarkSubproblemSolve(b *testing.B) {
	inst := benchInstance(b)
	sub, err := core.NewSubproblem(inst, 0, core.DefaultSubproblemConfig())
	if err != nil {
		b.Fatal(err)
	}
	yMinus := inst.NewUFMat()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sub.Solve(yMinus); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm1 measures a full in-process run on the paper-default
// scenario.
func BenchmarkAlgorithm1(b *testing.B) {
	inst := benchInstance(b)
	for i := 0; i < b.N; i++ {
		if _, err := Solve(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm1Jacobi measures the asynchronous variant.
func BenchmarkAlgorithm1Jacobi(b *testing.B) {
	inst := benchInstance(b)
	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.RunJacobi(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedInmem measures a full protocol run with real agents
// over the in-memory transport.
func BenchmarkDistributedInmem(b *testing.B) {
	inst := benchInstance(b)
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunInmem(context.Background(), inst, sim.BSConfig{},
			core.DefaultSubproblemConfig(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLRFUOnlineReplay measures the baseline's trace replay.
func BenchmarkLRFUOnlineReplay(b *testing.B) {
	inst := benchInstance(b)
	for i := 0; i < b.N; i++ {
		if _, err := baseline.PlanLRFU(inst, baseline.LRFUConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplex measures the LP substrate on a dense 20x40 problem.
func BenchmarkSimplex(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := lp.NewProblem(40)
	for j := 0; j < 40; j++ {
		p.Obj[j] = rng.Float64()*10 - 5
		p.SetBounds(j, 0, 1)
	}
	for r := 0; r < 20; r++ {
		coef := make([]float64, 40)
		for j := range coef {
			coef[j] = rng.Float64() * 3
		}
		p.AddConstraint(coef, lp.LE, 10+rng.Float64()*20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := lp.Solve(p)
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}

// BenchmarkMILP measures branch and bound on a 14-item binary knapsack.
func BenchmarkMILP(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := lp.NewProblem(14)
	p.Maximize = true
	coef := make([]float64, 14)
	for j := 0; j < 14; j++ {
		p.Obj[j] = 1 + rng.Float64()*9
		p.SetBounds(j, 0, 1)
		p.MarkInteger(j)
		coef[j] = 1 + rng.Float64()*4
	}
	p.AddConstraint(coef, lp.LE, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := lp.SolveMILP(p, lp.MILPOptions{})
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}

// BenchmarkBoundedLaplace measures the LPPM noise draw.
func BenchmarkBoundedLaplace(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	bl, err := dp.NewBoundedLaplace(10, 0, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Sample(rng)
	}
}

// BenchmarkLRFUCacheAccess measures the raw cache policy.
func BenchmarkLRFUCacheAccess(b *testing.B) {
	lrfu, err := cache.NewLRFU(64, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	keys := make([]int, 4096)
	for i := range keys {
		keys[i] = rng.Intn(512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lrfu.Access(keys[i%len(keys)])
	}
}

// BenchmarkTraceStream measures workload expansion.
func BenchmarkTraceStream(b *testing.B) {
	views, err := trace.TrendingVideos(trace.DefaultTrendingConfig())
	if err != nil {
		b.Fatal(err)
	}
	demand, err := trace.DemandMatrix(views, 30, 4500/600000.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Stream(demand, 1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
