package core

import (
	"fmt"
	"math"

	"edgecache/internal/model"
)

// MultiBSConfig configures the multi-BS extension. The paper (§II-A)
// analyzes a single BS and claims the analysis "can be easily extended
// for multiple BSs"; this type makes the extension concrete. SBSs are
// partitioned into regions, each coordinated by its own BS. Within a
// region the BS runs the paper's Gauss-Seidel sweep; across regions the
// BSs exchange only their *regional aggregate routing* once per outer
// round (regions belong to different operators, so per-SBS uploads never
// cross a region boundary — strictly less information than the
// single-BS protocol exposes).
//
// Because regions update concurrently against one-round-stale foreign
// aggregates, two regions can claim the same residual demand; after each
// round the BSs reconcile through the core network by scaling overserved
// demands proportionally (the same repair the Jacobi variant uses).
type MultiBSConfig struct {
	// Regions partitions the SBS indices: every SBS appears in exactly
	// one region and regions are non-empty.
	Regions [][]int
	// Sub, Gamma, MaxRounds follow Config (0 → defaults 1e-6 and 50).
	Sub       SubproblemConfig
	Gamma     float64
	MaxRounds int
	// Privacy, when non-nil, applies LPPM to every upload (as in the
	// single-BS algorithm, noise is added before the routing leaves the
	// SBS, so regional aggregates are already privatized).
	Privacy *PrivacyConfig
}

func (c MultiBSConfig) withDefaults() MultiBSConfig {
	c.Sub = c.Sub.withDefaults()
	if c.Gamma <= 0 {
		c.Gamma = 1e-6
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 50
	}
	return c
}

// validateRegions checks that Regions is a partition of 0..N-1.
func (c MultiBSConfig) validateRegions(n int) error {
	if len(c.Regions) == 0 {
		return fmt.Errorf("core: multi-BS config needs at least one region")
	}
	seen := make([]bool, n)
	count := 0
	for r, region := range c.Regions {
		if len(region) == 0 {
			return fmt.Errorf("core: region %d is empty", r)
		}
		for _, idx := range region {
			if idx < 0 || idx >= n {
				return fmt.Errorf("core: region %d contains SBS %d outside [0,%d)", r, idx, n)
			}
			if seen[idx] {
				return fmt.Errorf("core: SBS %d assigned to more than one region", idx)
			}
			seen[idx] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("core: regions cover %d of %d SBSs", count, n)
	}
	return nil
}

// RunMultiBS executes the multi-BS protocol and returns the converged
// result. With a single region containing every SBS it degenerates to
// exactly Algorithm 1 (the repair step never fires because the sequential
// sweep keeps constraint (4) tight), which the tests assert.
func RunMultiBS(inst *model.Instance, cfg MultiBSConfig) (*RunResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.validateRegions(inst.N); err != nil {
		return nil, err
	}
	var lppm *LPPM
	if cfg.Privacy != nil {
		l, err := NewLPPM(*cfg.Privacy)
		if err != nil {
			return nil, err
		}
		lppm = l
	}
	subs := make([]*Subproblem, inst.N)
	for n := 0; n < inst.N; n++ {
		sub, err := NewSubproblem(inst, n, cfg.Sub)
		if err != nil {
			return nil, err
		}
		subs[n] = sub
	}

	// regionOf[n] gives each SBS's region for the foreign-aggregate math.
	regionOf := make([]int, inst.N)
	for r, region := range cfg.Regions {
		for _, n := range region {
			regionOf[n] = r
		}
	}

	x := model.NewCachingPolicy(inst)
	y := model.NewRoutingPolicy(inst)

	res := &RunResult{}
	var best *model.Solution
	prevCost := math.Inf(1)
	for round := 0; round < cfg.MaxRounds; round++ {
		// Foreign aggregates are frozen at the start of the round: each
		// region only knows what the other BSs published last round.
		foreign := make([]model.Mat, len(cfg.Regions))
		for r := range cfg.Regions {
			foreign[r] = foreignAggregate(inst, y, regionOf, r)
		}

		next := y.Clone()
		for r, region := range cfg.Regions {
			// Within the region: the paper's sequential sweep against
			// foreign + intra-region aggregates.
			for _, n := range region {
				yMinus := intraAggregateExcept(inst, next, region, n)
				yMinus.AddFrom(foreign[r])
				sub, err := subs[n].Solve(yMinus)
				if err != nil {
					return nil, err
				}
				upload := sub.Routing
				if lppm != nil {
					upload, err = lppm.PerturbSBS(n, sub.Routing)
					if err != nil {
						return nil, err
					}
				}
				x.SetRow(n, sub.Cache)
				next.SetSBS(n, upload)
			}
		}
		// Cross-region reconciliation: concurrent regions may have
		// claimed the same residual demand.
		repairOverserve(inst, next)
		y = next

		cost := model.TotalServingCost(inst, y)
		res.History = append(res.History, cost.Total)
		res.Sweeps = round + 1
		if best == nil || cost.Total < best.Cost.Total {
			best = &model.Solution{Caching: x.Clone(), Routing: y.Clone(), Cost: cost}
		}
		if cost.Total > 0 && math.Abs(prevCost-cost.Total)/cost.Total <= cfg.Gamma {
			res.Converged = true
			prevCost = cost.Total
			break
		}
		prevCost = cost.Total
	}

	if best == nil {
		best = &model.Solution{Caching: x, Routing: y, Cost: model.TotalServingCost(inst, y)}
	}
	res.Solution = best
	return res, nil
}

// foreignAggregate sums the uploaded routing of every SBS outside region r.
func foreignAggregate(inst *model.Instance, y *model.RoutingPolicy, regionOf []int, r int) model.Mat {
	agg := inst.NewUFMat()
	for n := 0; n < inst.N; n++ {
		if regionOf[n] == r {
			continue
		}
		block := y.SBS(n)
		for u := 0; u < inst.U; u++ {
			if !inst.Links[n][u] {
				continue
			}
			dstRow := agg.Row(u)
			srcRow := block.Row(u)
			for f := range dstRow {
				dstRow[f] += srcRow[f]
			}
		}
	}
	return agg
}

// intraAggregateExcept sums the region's own current routing except SBS n.
func intraAggregateExcept(inst *model.Instance, y *model.RoutingPolicy, region []int, except int) model.Mat {
	agg := inst.NewUFMat()
	for _, n := range region {
		if n == except {
			continue
		}
		block := y.SBS(n)
		for u := 0; u < inst.U; u++ {
			if !inst.Links[n][u] {
				continue
			}
			dstRow := agg.Row(u)
			srcRow := block.Row(u)
			for f := range dstRow {
				dstRow[f] += srcRow[f]
			}
		}
	}
	return agg
}
