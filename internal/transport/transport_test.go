package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestPayloadRoundTrip(t *testing.T) {
	in := AggregateAnnounce{YMinus: [][]float64{{0.1, 0.2}, {0.3, 0}}}
	data, err := EncodePayload(in)
	if err != nil {
		t.Fatal(err)
	}
	var out AggregateAnnounce
	if err := DecodePayload(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.YMinus) != 2 || out.YMinus[0][1] != 0.2 {
		t.Errorf("round trip = %+v", out)
	}

	up := PolicyUpload{Cache: []bool{true, false}, Routing: [][]float64{{1}}}
	data, err = EncodePayload(up)
	if err != nil {
		t.Fatal(err)
	}
	var upOut PolicyUpload
	if err := DecodePayload(data, &upOut); err != nil {
		t.Fatal(err)
	}
	if !upOut.Cache[0] || upOut.Routing[0][0] != 1 {
		t.Errorf("round trip = %+v", upOut)
	}

	if err := DecodePayload([]byte("garbage"), &upOut); err == nil {
		t.Error("garbage payload: want error")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgPhaseStart.String() != "phase-start" || MsgPolicyUpload.String() != "policy-upload" ||
		MsgDone.String() != "done" {
		t.Error("MsgType.String mismatch")
	}
	if MsgType(99).String() != "MsgType(99)" {
		t.Error("unknown MsgType should format numerically")
	}
}

func TestHubSendRecv(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	a, err := hub.Register("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Register("b", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "a" {
		t.Errorf("Name = %q", a.Name())
	}
	msg := Message{Type: MsgPhaseStart, Sweep: 2, Phase: 1, Payload: []byte("x")}
	if err := a.Send(ctx, "b", msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.To != "b" || got.Sweep != 2 || got.Type != MsgPhaseStart {
		t.Errorf("received %+v", got)
	}
}

func TestHubErrors(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	if _, err := hub.Register("", 1); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := hub.Register("a", -1); err == nil {
		t.Error("negative buffer: want error")
	}
	a, err := hub.Register("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Register("a", 1); err == nil {
		t.Error("duplicate name: want error")
	}
	if err := a.Send(ctx, "ghost", Message{Type: MsgDone}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("send to unknown peer: %v, want ErrUnknownPeer", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := a.Send(ctx, "a", Message{Type: MsgDone}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v, want ErrClosed", err)
	}
	if _, err := a.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after close: %v, want ErrClosed", err)
	}
	// A closed endpoint's name is free again.
	if _, err := hub.Register("a", 1); err != nil {
		t.Errorf("re-register after close: %v", err)
	}
}

func TestHubRecvContextCancel(t *testing.T) {
	hub := NewHub()
	a, err := hub.Register("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Recv = %v, want deadline exceeded", err)
	}
}

func TestHubSendToClosedPeer(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	a, _ := hub.Register("a", 1)
	b, _ := hub.Register("b", 1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", Message{Type: MsgDone}); err == nil {
		t.Error("send to closed peer: want error")
	}
}

func TestHubConcurrentSenders(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	sink, err := hub.Register("sink", 256)
	if err != nil {
		t.Fatal(err)
	}
	const senders, each = 8, 16
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := hub.Register(fmt.Sprintf("s%d", s), 1)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := ep.Send(ctx, "sink", Message{Type: MsgPolicyUpload, Sweep: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < senders*each; i++ {
		if _, err := sink.Recv(ctx); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
}

func TestCountingEndpoint(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	rawA, _ := hub.Register("a", 4)
	rawB, _ := hub.Register("b", 4)
	a := NewCountingEndpoint(rawA)
	b := NewCountingEndpoint(rawB)
	if a.Name() != "a" {
		t.Errorf("Name = %q", a.Name())
	}
	msg := Message{Type: MsgPolicyUpload, Payload: []byte("12345")}
	if err := a.Send(ctx, "b", msg); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", msg); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.SentMessages != 2 || sa.SentBytes != 10 {
		t.Errorf("sender stats = %+v", sa)
	}
	if sb.RecvMessages != 1 || sb.RecvBytes != 5 {
		t.Errorf("receiver stats = %+v", sb)
	}
	// Failed sends are not counted.
	if err := a.Send(ctx, "ghost", msg); err == nil {
		t.Fatal("send to ghost should fail")
	}
	if got := a.Stats().SentMessages; got != 2 {
		t.Errorf("failed send counted: %d", got)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyEndpointDropsAll(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	a, _ := hub.Register("a", 1)
	b, _ := hub.Register("b", 8)
	faulty, err := NewFaultyEndpoint(a, FaultConfig{DropProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := faulty.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
			t.Fatal(err)
		}
	}
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("message leaked through full drop: %v", err)
	}
}

func TestFaultyEndpointDuplicates(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	a, _ := hub.Register("a", 1)
	b, _ := hub.Register("b", 8)
	faulty, err := NewFaultyEndpoint(a, FaultConfig{DupProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Recv(ctx); err != nil {
			t.Fatalf("expected duplicated delivery, recv %d failed: %v", i, err)
		}
	}
	if faulty.Name() != "a" {
		t.Errorf("Name = %q", faulty.Name())
	}
	if err := faulty.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyEndpointDelay(t *testing.T) {
	ctx := testCtx(t)
	hub := NewHub()
	a, _ := hub.Register("a", 1)
	b, _ := hub.Register("b", 8)
	faulty, err := NewFaultyEndpoint(a, FaultConfig{MaxDelay: 5 * time.Millisecond, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	bad := []FaultConfig{
		{DropProb: -0.1},
		{DropProb: 1.1},
		{DupProb: 2},
		{MaxDelay: -time.Second},
	}
	hub := NewHub()
	a, _ := hub.Register("a", 1)
	for i, cfg := range bad {
		if _, err := NewFaultyEndpoint(a, cfg); err == nil {
			t.Errorf("case %d: want error for %+v", i, cfg)
		}
	}
}

func TestTCPSendRecv(t *testing.T) {
	ctx := testCtx(t)
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())

	payload, err := EncodePayload(PolicyUpload{Cache: []bool{true}, Routing: [][]float64{{0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", Message{Type: MsgPolicyUpload, Sweep: 3, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.Sweep != 3 || got.Type != MsgPolicyUpload {
		t.Errorf("received %+v", got)
	}
	var up PolicyUpload
	if err := DecodePayload(got.Payload, &up); err != nil {
		t.Fatal(err)
	}
	if !up.Cache[0] || up.Routing[0][0] != 0.5 {
		t.Errorf("payload = %+v", up)
	}

	// Reply over the reverse direction.
	if err := b.Send(ctx, "a", Message{Type: MsgDone}); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Recv(ctx); err != nil || got.Type != MsgDone {
		t.Fatalf("reverse recv = %+v, %v", got, err)
	}
}

func TestTCPManyMessagesBothWays(t *testing.T) {
	ctx := testCtx(t)
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())

	const rounds = 50
	for i := 0; i < rounds; i++ {
		if err := a.Send(ctx, "b", Message{Type: MsgPhaseStart, Sweep: i}); err != nil {
			t.Fatal(err)
		}
		got, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Sweep != i {
			t.Fatalf("out of order: got sweep %d, want %d", got.Sweep, i)
		}
		if err := b.Send(ctx, "a", Message{Type: MsgPolicyUpload, Sweep: i}); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPErrors(t *testing.T) {
	ctx := testCtx(t)
	if _, err := NewTCPEndpoint("", "127.0.0.1:0"); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := NewTCPEndpoint("a", "256.0.0.1:0"); err == nil {
		t.Error("bad address: want error")
	}
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "ghost", Message{Type: MsgDone}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("unknown peer: %v", err)
	}
	a.AddPeer("dead", "127.0.0.1:1") // nothing listens there
	if err := a.Send(ctx, "dead", Message{Type: MsgDone}); err == nil {
		t.Error("dial to dead peer: want error")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := a.Send(ctx, "dead", Message{Type: MsgDone}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	if _, err := a.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after close: %v", err)
	}
}

func TestTCPPeerRestart(t *testing.T) {
	ctx := testCtx(t)
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	a.AddPeer("b", addr)
	if err := a.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	// Restart b on the same address; a's cached connection is now stale and
	// the send path must redial.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewTCPEndpoint("b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	// A write into the stale cached connection can succeed locally before
	// the RST arrives (the message is silently lost); the next write then
	// errors and triggers the redial. Retry send-then-receive until the
	// restarted peer actually gets a message — the same at-most-once
	// semantics the BS protocol is built to tolerate.
	received := false
	for attempt := 0; attempt < 50 && !received; attempt++ {
		if err := a.Send(ctx, "b", Message{Type: MsgDone}); err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		shortCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
		if _, err := b2.Recv(shortCtx); err == nil {
			received = true
		}
		cancel()
	}
	if !received {
		t.Fatal("restarted peer never received a message")
	}
}

func TestFrameSizeLimit(t *testing.T) {
	huge := Message{Type: MsgPolicyUpload, Payload: make([]byte, maxFrameSize+1)}
	if _, err := encodeFrame(huge); err == nil {
		t.Error("oversized frame: want error")
	}
}

func TestReadFrameRejectsZeroType(t *testing.T) {
	frame, err := encodeFrame(Message{Type: MsgDone})
	if err != nil {
		t.Fatal(err)
	}
	// Valid frame decodes.
	if _, err := readFrame(bytesReader(frame)); err != nil {
		t.Fatal(err)
	}
	// Zero-type message is rejected.
	bad, err := encodeFrame(Message{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(bytesReader(bad)); err == nil {
		t.Error("zero-type frame: want error")
	}
}

func bytesReader(b []byte) *sliceReader { return &sliceReader{b: b} }

type sliceReader struct {
	b   []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, errors.New("EOF")
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
