package model

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ClusterSpec describes a multi-process deployment: one BS cell per entry,
// each cell running the DUA protocol over its own SBS fleet, all launched
// and supervised as real OS processes speaking the TCP transport. The spec
// is the document `edgesim -cluster` consumes and the supervisor persists
// into its run directory, so it lives next to the other stable on-disk
// codecs (instance, solution, checkpoint).
//
// Durations are carried as integer milliseconds so the JSON stays plain;
// the accessor methods return time.Duration with the defaults applied.
type ClusterSpec struct {
	// Cells lists the BS cells. Names must be non-empty and unique (they
	// become directory names and chaos targets).
	Cells []ClusterCell `json:"cells"`

	// Gamma and MaxSweeps mirror core.Config (0 means the agent defaults:
	// 1e-6 and 50).
	Gamma     float64 `json:"gamma,omitempty"`
	MaxSweeps int     `json:"max_sweeps,omitempty"`
	// PhaseTimeoutMS bounds one BS phase wait. 0 means 2000.
	PhaseTimeoutMS int `json:"phase_timeout_ms,omitempty"`

	// HeartbeatMS is the agent heartbeat interval (0 means 25).
	// HeartbeatMisses is how many intervals may elapse without a beat
	// before the supervisor declares the process dead and kills it
	// (0 means 40, i.e. a one-second deadline at the default interval).
	HeartbeatMS     int `json:"heartbeat_ms,omitempty"`
	HeartbeatMisses int `json:"heartbeat_misses,omitempty"`

	// RestartBudget is the number of supervised restarts each process may
	// consume before escalation (permanent quarantine for an SBS, cell
	// failure for a BS). 0 means 3; -1 means no restarts at all.
	RestartBudget int `json:"restart_budget,omitempty"`
	// BackoffBaseMS is the delay before the first restart, doubling per
	// consumed restart up to BackoffMaxMS (defaults 25 and 1000).
	BackoffBaseMS int `json:"backoff_base_ms,omitempty"`
	BackoffMaxMS  int `json:"backoff_max_ms,omitempty"`

	// CheckpointRetain bounds each cell's on-disk snapshot count
	// (0 means the store default).
	CheckpointRetain int `json:"checkpoint_retain,omitempty"`
}

// ClusterCell is one BS cell of the cluster: a name, an SBS fleet size and
// either a pre-built instance file or the scenario knobs the launcher
// (cmd/edgesim) interprets to build one. The model layer only validates
// the shape; scenario semantics live with the launcher.
type ClusterCell struct {
	Name string `json:"name"`
	SBSs int    `json:"sbss"`
	// Instance, when non-empty, is the path of an instance JSON file; the
	// scenario fields below are then ignored.
	Instance string `json:"instance,omitempty"`
	// Scenario knobs (see experiments.Scenario); 0 means the launcher
	// default.
	Seed      int64   `json:"seed,omitempty"`
	Groups    int     `json:"groups,omitempty"`
	Links     int     `json:"links,omitempty"`
	Videos    int     `json:"videos,omitempty"`
	CacheCap  int     `json:"cache_capacity,omitempty"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Epsilon and Delta, when Epsilon > 0, enable LPPM on the cell's SBS
	// agents (bit-identity with the in-process reference then no longer
	// holds; see the sim package docs).
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
}

// Validate checks the spec's shape.
func (s *ClusterSpec) Validate() error {
	if len(s.Cells) == 0 {
		return fmt.Errorf("model: cluster spec has no cells")
	}
	seen := make(map[string]int, len(s.Cells))
	for i, c := range s.Cells {
		if c.Name == "" {
			return fmt.Errorf("model: cluster cell %d has no name", i)
		}
		for _, r := range c.Name {
			if r == '/' || r == '.' || r == ' ' || r == ',' || r == '@' {
				return fmt.Errorf("model: cluster cell %q: name may not contain %q (it becomes a path and a chaos target)", c.Name, r)
			}
		}
		if j, dup := seen[c.Name]; dup {
			return fmt.Errorf("model: cluster cells %d and %d share the name %q", j, i, c.Name)
		}
		seen[c.Name] = i
		if c.SBSs <= 0 {
			return fmt.Errorf("model: cluster cell %q: SBSs must be positive, got %d", c.Name, c.SBSs)
		}
		if c.Epsilon < 0 || c.Delta < 0 {
			return fmt.Errorf("model: cluster cell %q: negative privacy parameters", c.Name)
		}
	}
	if s.Gamma < 0 || s.MaxSweeps < 0 || s.PhaseTimeoutMS < 0 ||
		s.HeartbeatMS < 0 || s.HeartbeatMisses < 0 ||
		s.BackoffBaseMS < 0 || s.BackoffMaxMS < 0 || s.CheckpointRetain < 0 {
		return fmt.Errorf("model: cluster spec has a negative tuning field")
	}
	if s.RestartBudget < -1 {
		return fmt.Errorf("model: RestartBudget must be >= -1, got %d", s.RestartBudget)
	}
	return nil
}

// Cell returns the index of the named cell, or -1.
func (s *ClusterSpec) Cell(name string) int {
	for i, c := range s.Cells {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// PhaseTimeout returns the phase timeout with the default applied.
func (s *ClusterSpec) PhaseTimeout() time.Duration {
	if s.PhaseTimeoutMS <= 0 {
		return 2 * time.Second
	}
	return time.Duration(s.PhaseTimeoutMS) * time.Millisecond
}

// HeartbeatInterval returns the agent heartbeat cadence with the default
// applied.
func (s *ClusterSpec) HeartbeatInterval() time.Duration {
	if s.HeartbeatMS <= 0 {
		return 25 * time.Millisecond
	}
	return time.Duration(s.HeartbeatMS) * time.Millisecond
}

// HeartbeatDeadline returns the liveness deadline: the interval times the
// allowed miss count.
func (s *ClusterSpec) HeartbeatDeadline() time.Duration {
	misses := s.HeartbeatMisses
	if misses <= 0 {
		misses = 40
	}
	return s.HeartbeatInterval() * time.Duration(misses)
}

// Restarts returns the per-process restart budget with the default
// applied (-1 collapses to zero restarts).
func (s *ClusterSpec) Restarts() int {
	switch {
	case s.RestartBudget == 0:
		return 3
	case s.RestartBudget < 0:
		return 0
	default:
		return s.RestartBudget
	}
}

// Backoff returns the delay before restart number attempt (1-based):
// base doubling per consumed restart, capped.
func (s *ClusterSpec) Backoff(attempt int) time.Duration {
	base := s.BackoffBaseMS
	if base <= 0 {
		base = 25
	}
	maxMS := s.BackoffMaxMS
	if maxMS <= 0 {
		maxMS = 1000
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= maxMS {
			d = maxMS
			break
		}
	}
	if d > maxMS {
		d = maxMS
	}
	return time.Duration(d) * time.Millisecond
}

// WriteJSON serializes the spec, indented for human inspection; the spec
// is validated first so no malformed cluster description reaches disk.
func (s *ClusterSpec) WriteJSON(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadClusterSpec deserializes and validates a cluster spec.
func ReadClusterSpec(r io.Reader) (*ClusterSpec, error) {
	var s ClusterSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decode cluster spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
