package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Goleak enforces goroutine and timer hygiene in the process-lifetime
// layers: every `go` statement in the scoped code must have a reachable
// join — visible evidence inside the goroutine body that something else
// can observe or trigger its termination — and every captured
// time.Ticker/time.Timer must have a Stop path.
//
// Accepted join evidence, searched in the goroutine body (a func literal,
// or the body of a statically-resolved module callee) and one level of
// same-module callees below it:
//
//   - a receive (or range/select case) from a channel object that is
//     close()d or sent to somewhere else in the package — the quit-channel
//     pattern;
//   - a send to a channel object that is received somewhere in the
//     package — the done-channel handshake;
//   - a call to Done on a sync.WaitGroup whose Wait is called in the
//     package;
//   - a call to (*os/exec.Cmd).Wait — the goroutine ends when the child
//     process exits, which the supervisor's exit event observes.
//
// Timer rules: the results of time.NewTicker and time.NewTimer must have
// a .Stop() call on the same object (variable or struct field) somewhere
// in the package; time.AfterFunc is checked only when its result is
// captured — a discarded AfterFunc is a one-shot that completes itself.
//
// Channel and WaitGroup identity is the types.Object of the variable or
// struct field, so `close(e.quit)` in Close matches `<-e.quit` in a
// worker regardless of receiver spelling. Channels passed through
// function parameters are outside this net — keep the signal object and
// its close in the same package, as all scoped code already does.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in cluster/parallel code need a reachable join; tickers and timers need a Stop path",
	Run:  runGoleak,
}

// goleakPkgs are the package paths (prefix match) whose goroutines and
// timers are process-lifetime-sensitive: the cluster supervisor and agents
// run for many protocol generations, so an unjoined goroutine or
// unstopped timer is a real leak, not shutdown noise.
var goleakPkgs = []string{
	"edgecache/internal/cluster",
	"edgecache/internal/lint/fixtures/goleaksrc",
}

// goleakFiles extends the scope to single files: the parallel engine's
// worker pool lives in an otherwise sequential package.
var goleakFiles = map[string]map[string]bool{
	"edgecache/internal/core": {"parallel.go": true},
}

func goleakInScope(pkgPath, filename string) bool {
	for _, p := range goleakPkgs {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	if files := goleakFiles[pkgPath]; files != nil {
		return files[filepath.Base(filename)]
	}
	return false
}

// goleakEvidence is the package-wide signal inventory the per-goroutine
// checks match against.
type goleakEvidence struct {
	closedChans   map[types.Object]bool // close(ch)
	sentChans     map[types.Object]bool // ch <- v
	recvdChans    map[types.Object]bool // <-ch, range ch
	waitedWGs     map[types.Object]bool // wg.Wait() on sync.WaitGroup
	stoppedTimers map[types.Object]bool // t.Stop() on *time.Ticker/*time.Timer
}

func runGoleak(pass *Pass) {
	pkg := pass.Pkg
	inScope := false
	for i := range pkg.Files {
		if goleakInScope(pkg.Path, pkg.Filenames[i]) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}

	ev := collectGoleakEvidence(pkg)
	funcs := pass.Prog.moduleFuncs()

	for i, file := range pkg.Files {
		if !goleakInScope(pkg.Path, pkg.Filenames[i]) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(pass, pkg, funcs, ev, node)
			case *ast.AssignStmt:
				for j, rhs := range node.Rhs {
					kind := timerCtor(pkg, rhs)
					if kind == "" {
						continue
					}
					var target ast.Expr
					if len(node.Lhs) == len(node.Rhs) {
						target = node.Lhs[j]
					} else if len(node.Lhs) > 0 {
						target = node.Lhs[0]
					}
					checkTimerCapture(pass, pkg, ev, rhs.(*ast.CallExpr), kind, target)
				}
			case *ast.ExprStmt:
				if kind := timerCtor(pkg, node.X); kind != "" && kind != "AfterFunc" {
					// A discarded NewTicker/NewTimer can never be stopped;
					// a discarded AfterFunc is a self-completing one-shot.
					pass.Reportf(node.Pos(), "time.%s result is discarded, so the %s can never be stopped",
						kind, timerNoun(kind))
				}
			}
			return true
		})
	}
}

func timerNoun(kind string) string {
	if kind == "NewTicker" {
		return "ticker"
	}
	return "timer"
}

// timerCtor reports which timer-allocating time function e calls ("" for
// none).
func timerCtor(pkg *Package, e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	switch fn.Name() {
	case "NewTicker", "NewTimer", "AfterFunc":
		return fn.Name()
	}
	return ""
}

// checkTimerCapture requires a package-wide Stop on the object the timer
// was captured into.
func checkTimerCapture(pass *Pass, pkg *Package, ev *goleakEvidence, call *ast.CallExpr, kind string, target ast.Expr) {
	if target == nil {
		return
	}
	if ident, ok := target.(*ast.Ident); ok && ident.Name == "_" {
		if kind != "AfterFunc" {
			pass.Reportf(call.Pos(), "time.%s result is discarded, so the %s can never be stopped", kind, timerNoun(kind))
		}
		return
	}
	obj := baseObject(pkg, target)
	if obj == nil {
		return
	}
	if !ev.stoppedTimers[obj] {
		pass.Reportf(call.Pos(), "time.%s result %s has no Stop path in this package", kind, obj.Name())
	}
}

// checkGoStmt requires join evidence in the goroutine body.
func checkGoStmt(pass *Pass, pkg *Package, funcs map[*types.Func]modFunc, ev *goleakEvidence, g *ast.GoStmt) {
	var body *ast.BlockStmt
	bodyPkg := pkg
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if callee := calleeFunc(pkg, g.Call); callee != nil {
			if mf, ok := funcs[callee]; ok {
				body, bodyPkg = mf.decl.Body, mf.pkg
			}
		}
	}
	if body == nil {
		pass.Reportf(g.Pos(), "goroutine body cannot be resolved statically, so no join can be proven")
		return
	}
	if !hasJoinEvidence(bodyPkg, funcs, ev, body, 2) {
		pass.Reportf(g.Pos(), "goroutine has no reachable join (no quit-channel receive, done-channel send, WaitGroup.Done with a package Wait, or child-process Wait)")
	}
}

// hasJoinEvidence searches a body (descending depth levels of static
// same-module callees) for any accepted join signal.
func hasJoinEvidence(pkg *Package, funcs map[*types.Func]modFunc, ev *goleakEvidence, body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				if obj := baseObject(pkg, node.X); obj != nil &&
					(ev.closedChans[obj] || ev.sentChans[obj]) {
					found = true
				}
			}
		case *ast.RangeStmt:
			if isChanType(pkg, node.X) {
				if obj := baseObject(pkg, node.X); obj != nil &&
					(ev.closedChans[obj] || ev.sentChans[obj]) {
					found = true
				}
			}
		case *ast.SendStmt:
			if obj := baseObject(pkg, node.Chan); obj != nil && ev.recvdChans[obj] {
				found = true
			}
		case *ast.CallExpr:
			fn := calleeFunc(pkg, node)
			if fn == nil {
				return true
			}
			switch {
			case fn.Name() == "Done" && isWaitGroupMethod(fn):
				if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
					if obj := baseObject(pkg, sel.X); obj != nil && ev.waitedWGs[obj] {
						found = true
					}
				}
			case fn.Name() == "Wait" && isExecCmdMethod(fn):
				found = true
			default:
				if depth > 0 {
					if mf, ok := funcs[fn]; ok && mf.pkg == pkg {
						if hasJoinEvidence(mf.pkg, funcs, ev, mf.decl.Body, depth-1) {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

// collectGoleakEvidence inventories the whole package's channel, WaitGroup
// and timer signals.
func collectGoleakEvidence(pkg *Package) *goleakEvidence {
	ev := &goleakEvidence{
		closedChans:   map[types.Object]bool{},
		sentChans:     map[types.Object]bool{},
		recvdChans:    map[types.Object]bool{},
		waitedWGs:     map[types.Object]bool{},
		stoppedTimers: map[types.Object]bool{},
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if ident, ok := node.Fun.(*ast.Ident); ok && len(node.Args) == 1 {
					if _, isBuiltin := pkg.Info.Uses[ident].(*types.Builtin); isBuiltin && ident.Name == "close" {
						if obj := baseObject(pkg, node.Args[0]); obj != nil {
							ev.closedChans[obj] = true
						}
						return true
					}
				}
				fn := calleeFunc(pkg, node)
				if fn == nil {
					return true
				}
				sel, ok := node.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch {
				case fn.Name() == "Wait" && isWaitGroupMethod(fn):
					if obj := baseObject(pkg, sel.X); obj != nil {
						ev.waitedWGs[obj] = true
					}
				case fn.Name() == "Stop" && isTimerMethod(fn):
					if obj := baseObject(pkg, sel.X); obj != nil {
						ev.stoppedTimers[obj] = true
					}
				}
			case *ast.SendStmt:
				if obj := baseObject(pkg, node.Chan); obj != nil {
					ev.sentChans[obj] = true
				}
			case *ast.UnaryExpr:
				if node.Op == token.ARROW {
					if obj := baseObject(pkg, node.X); obj != nil {
						ev.recvdChans[obj] = true
					}
				}
			case *ast.RangeStmt:
				if isChanType(pkg, node.X) {
					if obj := baseObject(pkg, node.X); obj != nil {
						ev.recvdChans[obj] = true
					}
				}
			}
			return true
		})
	}
	return ev
}

func isChanType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func methodRecvNamed(fn *types.Func, pkgPath, typeName string) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return recvName(sig.Recv().Type()) == typeName
}

func isWaitGroupMethod(fn *types.Func) bool {
	return methodRecvNamed(fn, "sync", "WaitGroup")
}

func isExecCmdMethod(fn *types.Func) bool {
	return methodRecvNamed(fn, "os/exec", "Cmd")
}

func isTimerMethod(fn *types.Func) bool {
	return methodRecvNamed(fn, "time", "Ticker") || methodRecvNamed(fn, "time", "Timer")
}
