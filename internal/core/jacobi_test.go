package core

import (
	"math/rand"
	"testing"

	"edgecache/internal/model"
)

func TestJacobiFeasibleAndConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(rng, 3, 6, 8)
		coord, err := NewCoordinator(inst, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.RunJacobi()
		if err != nil {
			t.Fatal(err)
		}
		if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
			t.Fatalf("trial %d: Jacobi solution infeasible:\n%s", trial, model.FormatViolations(vs))
		}
		if !res.Converged {
			t.Errorf("trial %d: Jacobi did not converge in %d rounds", trial, res.Sweeps)
		}
		if res.Solution.Cost.Total > inst.MaxCost()+1e-9 {
			t.Errorf("trial %d: cost %v above ceiling", trial, res.Solution.Cost.Total)
		}
	}
}

func TestJacobiComparableToSequential(t *testing.T) {
	// Jacobi converges to costs of similar quality (its BS-side repair can
	// land in a different equilibrium, better or worse): guard a broad
	// window to catch regressions.
	rng := rand.New(rand.NewSource(22))
	var seq, jac float64
	for trial := 0; trial < 6; trial++ {
		inst := randomInstance(rng, 3, 6, 8)
		coord, err := NewCoordinator(inst, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		j, err := coord.RunJacobi()
		if err != nil {
			t.Fatal(err)
		}
		seq += s.Solution.Cost.Total
		jac += j.Solution.Cost.Total
	}
	if jac > seq*1.25 {
		t.Errorf("Jacobi aggregate cost %v far above sequential %v", jac, seq)
	}
	if jac < seq*0.75 {
		t.Errorf("Jacobi aggregate cost %v suspiciously below sequential %v", jac, seq)
	}
}

func TestJacobiWithPrivacy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := randomInstance(rng, 3, 5, 6)
	cfg := DefaultConfig()
	cfg.MaxSweeps = 10
	cfg.Privacy = &PrivacyConfig{Epsilon: 0.1, Delta: 0.5, Rng: rand.New(rand.NewSource(24))}
	coord, err := NewCoordinator(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.RunJacobi()
	if err != nil {
		t.Fatal(err)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible:\n%s", model.FormatViolations(vs))
	}
}

func TestRepairOverserve(t *testing.T) {
	inst := &model.Instance{
		N: 2, U: 1, F: 1,
		Demand:    [][]float64{{10}},
		Links:     [][]bool{{true}, {true}},
		CacheCap:  []int{1, 1},
		Bandwidth: []float64{100, 100},
		EdgeCost:  [][]float64{{1}, {1}},
		BSCost:    []float64{100},
	}
	y := model.NewRoutingPolicy(inst)
	y.Set(0, 0, 0, 0.8)
	y.Set(1, 0, 0, 0.6) // aggregate 1.4
	repairOverserve(inst, y)
	agg := y.Aggregate(inst)
	if agg.At(0, 0) > 1+1e-9 {
		t.Fatalf("aggregate after repair = %v", agg.At(0, 0))
	}
	// Proportional: 0.8/1.4 and 0.6/1.4.
	if diff := y.At(0, 0, 0) - 0.8/1.4; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("SBS0 share = %v, want %v", y.At(0, 0, 0), 0.8/1.4)
	}
	// Already-feasible entries must be untouched.
	y2 := model.NewRoutingPolicy(inst)
	y2.Set(0, 0, 0, 0.3)
	repairOverserve(inst, y2)
	if y2.At(0, 0, 0) != 0.3 {
		t.Error("repair modified a feasible entry")
	}
}

func TestNoiseMechanisms(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	inst := randomInstance(rng, 2, 4, 5)
	for _, mech := range []NoiseMechanism{MechanismLaplace, MechanismGaussian, MechanismUniform} {
		cfg := DefaultConfig()
		cfg.MaxSweeps = 8
		cfg.Privacy = &PrivacyConfig{
			Epsilon:   0.5,
			Delta:     0.5,
			Rng:       rand.New(rand.NewSource(26)),
			Mechanism: mech,
		}
		coord, err := NewCoordinator(inst, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		res, err := coord.Run()
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
			t.Fatalf("%v infeasible:\n%s", mech, model.FormatViolations(vs))
		}
	}
}

func TestNoiseMechanismValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	// Gaussian needs ε in (0,1).
	if _, err := NewLPPM(PrivacyConfig{
		Epsilon: 5, Delta: 0.5, Rng: rng, Mechanism: MechanismGaussian,
	}); err == nil {
		t.Error("gaussian with ε=5: want error")
	}
	if _, err := NewLPPM(PrivacyConfig{
		Epsilon: 0.5, Delta: 0.5, Rng: rng, Mechanism: MechanismGaussian, DPDelta: 2,
	}); err == nil {
		t.Error("DPDelta=2: want error")
	}
	if _, err := NewLPPM(PrivacyConfig{
		Epsilon: 0.5, Delta: 0.5, Rng: rng, Mechanism: NoiseMechanism(9),
	}); err == nil {
		t.Error("unknown mechanism: want error")
	}
	l, err := NewLPPM(PrivacyConfig{
		Epsilon: 0.5, Delta: 0.5, Rng: rng, Mechanism: MechanismGaussian, DPDelta: 1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Sigma() <= 0 || l.Mechanism() != MechanismGaussian {
		t.Errorf("sigma=%v mechanism=%v", l.Sigma(), l.Mechanism())
	}
}

func TestNoiseMechanismStrings(t *testing.T) {
	if MechanismLaplace.String() != "laplace" || MechanismGaussian.String() != "gaussian" ||
		MechanismUniform.String() != "uniform" {
		t.Error("mechanism names wrong")
	}
	if NoiseMechanism(7).String() != "NoiseMechanism(7)" {
		t.Error("unknown mechanism should format numerically")
	}
}

func TestPerturbKeepsZeroesAndRange(t *testing.T) {
	for _, mech := range []NoiseMechanism{MechanismLaplace, MechanismGaussian, MechanismUniform} {
		eps := 0.5
		l, err := NewLPPM(PrivacyConfig{
			Epsilon: eps, Delta: 0.4, Rng: rand.New(rand.NewSource(28)), Mechanism: mech,
		})
		if err != nil {
			t.Fatal(err)
		}
		routing, err := model.MatFromRows([][]float64{{0, 0.5, 1}, {0.25, 0, 0.75}})
		if err != nil {
			t.Fatal(err)
		}
		noised, err := l.Perturb("x", routing)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < routing.U; u++ {
			for f := 0; f < routing.F; f++ {
				v := routing.At(u, f)
				got := noised.At(u, f)
				if v == 0 && got != 0 {
					t.Fatalf("%v: zero entry perturbed to %v", mech, got)
				}
				if got > v+1e-12 {
					t.Fatalf("%v: noise added instead of subtracted (%v → %v)", mech, v, got)
				}
				if got < v*(1-0.4)-1e-12 {
					t.Fatalf("%v: noise exceeded δ·y (%v → %v)", mech, v, got)
				}
			}
		}
	}
}
