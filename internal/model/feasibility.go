package model

import (
	"fmt"
	"strings"
)

// FeasibilityTolerance is the numeric slack allowed when checking the
// constraint system. Solvers in this repository work in float64 and the
// routing sub-problem accumulates sums over U×F terms, so exact comparisons
// would reject optimal solutions.
const FeasibilityTolerance = 1e-6

// Violation describes one violated constraint.
type Violation struct {
	// Constraint names the violated constraint family using the paper's
	// equation numbers: "cache-capacity (1)", "routing-requires-cache (2)",
	// "bandwidth (3)", "no-overserve (4)", or "box".
	Constraint string
	// Where identifies the offending indices (n, u, f as applicable).
	Where string
	// Amount is by how much the constraint is exceeded.
	Amount float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %s exceeded by %.3g", v.Constraint, v.Where, v.Amount)
}

// CheckFeasibility verifies the full constraint system (eq. 1-4 plus the
// box constraints on x and y) and returns every violation found, up to a
// cap of 100 to bound output on badly broken inputs. A nil/empty result
// means the pair (x, y) is feasible within FeasibilityTolerance.
func CheckFeasibility(in *Instance, x *CachingPolicy, y *RoutingPolicy) []Violation {
	const maxViolations = 100
	var out []Violation
	add := func(v Violation) bool {
		out = append(out, v)
		return len(out) >= maxViolations
	}

	// Eq. 1: cache capacity.
	for n := 0; n < in.N; n++ {
		if c := x.Count(n); c > in.CacheCap[n] {
			if add(Violation{"cache-capacity (1)", fmt.Sprintf("n=%d", n), float64(c - in.CacheCap[n])}) {
				return out
			}
		}
	}

	// Box constraints and eq. 2: routing requires the content cached.
	for n := 0; n < in.N; n++ {
		block := y.SBS(n)
		for u := 0; u < in.U; u++ {
			row := block.Row(u)
			for f := range row {
				v := row[f]
				if v < -FeasibilityTolerance || v > 1+FeasibilityTolerance {
					if add(Violation{"box", fmt.Sprintf("n=%d u=%d f=%d", n, u, f), boxExcess(v)}) {
						return out
					}
					continue
				}
				if v > FeasibilityTolerance && !x.Get(n, f) {
					if add(Violation{"routing-requires-cache (2)", fmt.Sprintf("n=%d u=%d f=%d", n, u, f), v}) {
						return out
					}
				}
				if v > FeasibilityTolerance && !in.Links[n][u] {
					if add(Violation{"no-link", fmt.Sprintf("n=%d u=%d f=%d", n, u, f), v}) {
						return out
					}
				}
			}
		}
	}

	// Eq. 3: bandwidth.
	for n := 0; n < in.N; n++ {
		if load := y.Load(in, n); load > in.Bandwidth[n]+bandwidthTol(in.Bandwidth[n]) {
			if add(Violation{"bandwidth (3)", fmt.Sprintf("n=%d", n), load - in.Bandwidth[n]}) {
				return out
			}
		}
	}

	// Eq. 4: no demand served more than once in total.
	agg := y.Aggregate(in)
	for u := 0; u < in.U; u++ {
		row := agg.Row(u)
		for f := range row {
			if row[f] > 1+FeasibilityTolerance {
				if add(Violation{"no-overserve (4)", fmt.Sprintf("u=%d f=%d", u, f), row[f] - 1}) {
					return out
				}
			}
		}
	}
	return out
}

// IsFeasible reports whether (x, y) satisfies the full constraint system.
func IsFeasible(in *Instance, x *CachingPolicy, y *RoutingPolicy) bool {
	return len(CheckFeasibility(in, x, y)) == 0
}

// FormatViolations renders violations one per line for error messages.
func FormatViolations(vs []Violation) string {
	lines := make([]string, len(vs))
	for i, v := range vs {
		lines[i] = v.String()
	}
	return strings.Join(lines, "\n")
}

func boxExcess(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v - 1
}

// bandwidthTol scales the feasibility tolerance with the capacity so that
// summing thousands of float64 terms against a large B_n does not produce
// spurious violations.
func bandwidthTol(b float64) float64 {
	tol := FeasibilityTolerance * b
	if tol < FeasibilityTolerance {
		tol = FeasibilityTolerance
	}
	return tol
}
