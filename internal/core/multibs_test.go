package core

import (
	"math"
	"math/rand"
	"testing"

	"edgecache/internal/model"
)

func TestMultiBSSingleRegionMatchesAlgorithm1(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		inst := randomInstance(rng, 3, 6, 7)
		coord, err := NewCoordinator(inst, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		want, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunMultiBS(inst, MultiBSConfig{Regions: [][]int{{0, 1, 2}}})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Solution.Cost.Total-want.Solution.Cost.Total) > 1e-9 {
			t.Errorf("trial %d: single-region multi-BS cost %v != Algorithm 1 cost %v",
				trial, got.Solution.Cost.Total, want.Solution.Cost.Total)
		}
		if got.Sweeps != want.Sweeps {
			t.Errorf("trial %d: rounds %d != sweeps %d", trial, got.Sweeps, want.Sweeps)
		}
	}
}

func TestMultiBSFeasibleAndConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		inst := randomInstance(rng, 4, 7, 8)
		res, err := RunMultiBS(inst, MultiBSConfig{Regions: [][]int{{0, 1}, {2, 3}}})
		if err != nil {
			t.Fatal(err)
		}
		if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
			t.Fatalf("trial %d: infeasible:\n%s", trial, model.FormatViolations(vs))
		}
		if !res.Converged {
			t.Errorf("trial %d: did not converge in %d rounds", trial, res.Sweeps)
		}
	}
}

func TestMultiBSComparableToSingleBS(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var single, multi float64
	for trial := 0; trial < 6; trial++ {
		inst := randomInstance(rng, 4, 7, 8)
		coord, err := NewCoordinator(inst, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		m, err := RunMultiBS(inst, MultiBSConfig{Regions: [][]int{{0, 1}, {2, 3}}})
		if err != nil {
			t.Fatal(err)
		}
		single += s.Solution.Cost.Total
		multi += m.Solution.Cost.Total
	}
	// Splitting coordination across two BSs loses only the cross-region
	// staleness; aggregate costs must stay in the same ballpark.
	if multi > single*1.25 || multi < single*0.75 {
		t.Errorf("multi-BS aggregate cost %v vs single-BS %v outside ±25%%", multi, single)
	}
}

func TestMultiBSWithPrivacy(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	inst := randomInstance(rng, 4, 6, 7)
	res, err := RunMultiBS(inst, MultiBSConfig{
		Regions:   [][]int{{0, 2}, {1, 3}},
		MaxRounds: 8,
		Privacy:   &PrivacyConfig{Epsilon: 0.2, Delta: 0.5, Rng: rand.New(rand.NewSource(45))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible:\n%s", model.FormatViolations(vs))
	}
}

func TestMultiBSValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	inst := randomInstance(rng, 3, 4, 5)
	cases := []MultiBSConfig{
		{},                                  // no regions
		{Regions: [][]int{{0, 1}}},          // missing SBS 2
		{Regions: [][]int{{0, 1, 2}, {}}},   // empty region
		{Regions: [][]int{{0, 1, 2, 3}}},    // out of range
		{Regions: [][]int{{0, 1}, {1, 2}}},  // duplicate
		{Regions: [][]int{{0, 1}, {-1, 2}}}, // negative
	}
	for i, cfg := range cases {
		if _, err := RunMultiBS(inst, cfg); err == nil {
			t.Errorf("case %d: want error for %+v", i, cfg.Regions)
		}
	}
	if _, err := RunMultiBS(&model.Instance{N: 0}, MultiBSConfig{Regions: [][]int{{0}}}); err == nil {
		t.Error("invalid instance: want error")
	}
	if _, err := RunMultiBS(inst, MultiBSConfig{
		Regions: [][]int{{0, 1, 2}},
		Privacy: &PrivacyConfig{Epsilon: -1},
	}); err == nil {
		t.Error("bad privacy: want error")
	}
}
