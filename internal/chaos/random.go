package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"edgecache/internal/transport"
)

// This file generates randomized fault schedules: seeded, weighted draws
// over the same operations the hand-written -chaos/-proc-chaos specs can
// express, always emitting conflict-free schedules (the per-target
// strictly-increasing protocol-time discipline ParseSpec/ParseProcSpec
// enforce). Every generated schedule round-trips through Spec() and back,
// so a failing soak episode is reproducible as a plain spec string.
//
// The generators never use wall-clock time or global randomness — a
// (seed, config) pair names one schedule forever.

// ScheduleWeights biases the per-draw operation choice of RandomSchedule.
// The zero value selects the defaults (crash 4, partition 3, link-fault 2,
// BS-crash 1); set any field to shift the mix, or set a single field to
// generate only that operation.
type ScheduleWeights struct {
	// Crash draws a crash/restart cycle on one SBS.
	Crash float64
	// Partition draws a self-healing link partition on one SBS.
	Partition float64
	// LinkFault draws a transient drop/dup/reorder/delay window on one
	// SBS's link or on every link.
	LinkFault float64
	// BSCrash draws a coordinator crash with a queued recovery restart
	// (the runner auto-installs an in-memory checkpoint store).
	BSCrash float64
}

func (w ScheduleWeights) withDefaults() ScheduleWeights {
	if w == (ScheduleWeights{}) {
		return ScheduleWeights{Crash: 4, Partition: 3, LinkFault: 2, BSCrash: 1}
	}
	return w
}

// RandomScheduleConfig configures one randomized schedule draw.
type RandomScheduleConfig struct {
	// Seed drives every draw and becomes the schedule's link-fault seed.
	Seed int64
	// N is the SBS count the schedule targets (required).
	N int
	// MaxSweep bounds the trigger sweeps: every generated event lands in
	// sweeps [1, MaxSweep] so it has a chance to fire before convergence.
	// 0 means 6.
	MaxSweep int
	// Events is the fault-episode budget: how many weighted draws are
	// attempted (a draw whose target has no remaining sweep room is
	// skipped, so the emitted schedule may be shorter). 0 means 4.
	Events int
	// Intensity in (0, 1] scales the baseline and window fault
	// probabilities (a 1.0 draw can reach 30% drop, the acceptance-test
	// ceiling the protocol is known to survive). 0 means 0.5.
	Intensity float64
	// Weights biases the operation mix.
	Weights ScheduleWeights
}

func (cfg RandomScheduleConfig) withDefaults() RandomScheduleConfig {
	if cfg.MaxSweep == 0 {
		cfg.MaxSweep = 6
	}
	if cfg.Events == 0 {
		cfg.Events = 4
	}
	if cfg.Intensity == 0 {
		cfg.Intensity = 0.5
	}
	cfg.Weights = cfg.Weights.withDefaults()
	return cfg
}

// RandomSchedule draws one seeded, conflict-free fault schedule. The same
// config always yields the same schedule, the result always passes
// Validate(cfg.N) plus the spec conflict rules, and Spec() renders it as a
// -chaos string that re-parses to the identical schedule.
//
// Structural guarantees, chosen so the soak invariants stay meaningful:
// every crash is paired with a restart and every partition self-heals
// (an unfired restart only happens when the run converges first, which
// the invariant checker accounts for), and link-fault windows are later
// restored to the baseline configuration.
func RandomSchedule(cfg RandomScheduleConfig) (Schedule, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 1 {
		return Schedule{}, fmt.Errorf("chaos: random schedule: need at least one SBS, got %d", cfg.N)
	}
	if cfg.Intensity < 0 || cfg.Intensity > 1 {
		return Schedule{}, fmt.Errorf("chaos: random schedule: intensity %v outside (0, 1]", cfg.Intensity)
	}
	if cfg.MaxSweep < 2 {
		return Schedule{}, fmt.Errorf("chaos: random schedule: MaxSweep %d too small (need >= 2)", cfg.MaxSweep)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Schedule{Seed: cfg.Seed}

	// Baseline link faults, scaled by intensity; roughly half of all
	// schedules start on clean links so the fault-free fast path stays in
	// the soak mix too.
	if rng.Float64() < 0.6 {
		s.Links = randomFaults(rng, cfg.Intensity)
	}

	// nextFree[t] is the first sweep target t may schedule at; index N is
	// the coordinator/all-links target (-1). Slices, not maps: this
	// package is in the determinism analyzer's scope and the draw order
	// must be reproducible.
	nextFree := make([]int, cfg.N+1)
	for i := range nextFree {
		nextFree[i] = 1
	}
	targetIdx := func(sbs int) int {
		if sbs == -1 {
			return cfg.N
		}
		return sbs
	}

	w := cfg.Weights
	total := w.Crash + w.Partition + w.LinkFault + w.BSCrash
	if total <= 0 {
		return Schedule{}, fmt.Errorf("chaos: random schedule: all weights zero")
	}
	for draw := 0; draw < cfg.Events; draw++ {
		pick := rng.Float64() * total
		switch {
		case pick < w.Crash:
			sbs := rng.Intn(cfg.N)
			at := nextFree[sbs]
			dur := 1 + rng.Intn(2)
			if at+dur > cfg.MaxSweep {
				continue // no room left for the full crash/restart cycle
			}
			at += rng.Intn(cfg.MaxSweep - at - dur + 1)
			s.Events = append(s.Events,
				Event{Sweep: at, SBS: sbs, Op: OpCrash},
				Event{Sweep: at + dur, SBS: sbs, Op: OpRestart})
			nextFree[sbs] = at + dur + 1
		case pick < w.Crash+w.Partition:
			sbs := rng.Intn(cfg.N)
			at := nextFree[sbs]
			if at > cfg.MaxSweep {
				continue
			}
			at += rng.Intn(cfg.MaxSweep - at + 1)
			phases := 1 + rng.Intn(2*cfg.N)
			s.Events = append(s.Events,
				Event{Sweep: at, SBS: sbs, Op: OpPartition, Phases: phases})
			// The auto-scheduled heal lands phases later; keep the
			// target free past it so a follow-up crash cannot collide.
			nextFree[sbs] = at + (phases+cfg.N-1)/cfg.N + 1
		case pick < w.Crash+w.Partition+w.LinkFault:
			// Half the windows hit one link, half every link; the
			// all-links target shares the coordinator's conflict slot.
			sbs := -1
			if rng.Float64() < 0.5 {
				sbs = rng.Intn(cfg.N)
			}
			ti := targetIdx(sbs)
			at := nextFree[ti]
			dur := 1 + rng.Intn(2)
			if at+dur > cfg.MaxSweep {
				continue
			}
			at += rng.Intn(cfg.MaxSweep - at - dur + 1)
			s.Events = append(s.Events,
				Event{Sweep: at, SBS: sbs, Op: OpLinkFaults, Faults: randomFaults(rng, cfg.Intensity)},
				Event{Sweep: at + dur, SBS: sbs, Op: OpLinkFaults, Faults: s.Links})
			nextFree[ti] = at + dur + 1
		default:
			ti := targetIdx(-1)
			at := nextFree[ti]
			dur := 1 + rng.Intn(2)
			if at+dur > cfg.MaxSweep {
				continue
			}
			at += rng.Intn(cfg.MaxSweep - at - dur + 1)
			s.Events = append(s.Events,
				Event{Sweep: at, SBS: -1, Op: OpBSCrash},
				Event{Sweep: at + dur, SBS: -1, Op: OpBSRestart})
			nextFree[ti] = at + dur + 1
		}
	}

	// Written order = trigger order: a stable sort keeps each target's
	// events (already strictly increasing by construction) in order, so
	// the schedule satisfies the spec conflict rules and Spec() re-parses.
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].Sweep != s.Events[j].Sweep {
			return s.Events[i].Sweep < s.Events[j].Sweep
		}
		return s.Events[i].Phase < s.Events[j].Phase
	})
	if err := s.Validate(cfg.N); err != nil {
		return Schedule{}, fmt.Errorf("chaos: random schedule (seed %d): %w", cfg.Seed, err)
	}
	if err := checkSpecConflicts(s.Events); err != nil {
		return Schedule{}, fmt.Errorf("chaos: random schedule (seed %d): %w", cfg.Seed, err)
	}
	return s, nil
}

// randomFaults draws one link fault configuration scaled by intensity.
func randomFaults(rng *rand.Rand, intensity float64) transport.FaultConfig {
	fc := transport.FaultConfig{
		DropProb: roundProb(rng.Float64() * 0.3 * intensity),
		DupProb:  roundProb(rng.Float64() * 0.3 * intensity),
	}
	if rng.Float64() < 0.5 {
		fc.ReorderProb = roundProb(rng.Float64() * 0.2 * intensity)
	}
	if rng.Float64() < 0.3 {
		fc.MaxDelay = time.Duration(1+rng.Intn(3)) * time.Millisecond
	}
	return fc
}

// roundProb quantizes a probability to 1e-3 so spec strings stay short;
// the quantized value round-trips bit-exactly through formatProb/ParseFloat.
func roundProb(p float64) float64 {
	return float64(int(p*1000)) / 1000
}

// ProcWeights biases the per-draw operation choice of RandomProcSchedule.
// The zero value selects the defaults (kill 3, stop 2, spawn-delay 1).
type ProcWeights struct {
	// Kill draws a SIGKILL of a BS or SBS process at a protocol sweep.
	Kill float64
	// Stop draws a SIGSTOP/SIGCONT freeze window.
	Stop float64
	// SpawnDelay draws a per-target (re)spawn launch delay.
	SpawnDelay float64
}

func (w ProcWeights) withDefaults() ProcWeights {
	if w == (ProcWeights{}) {
		return ProcWeights{Kill: 3, Stop: 2, SpawnDelay: 1}
	}
	return w
}

// ProcCell names one cell a random process schedule may target.
type ProcCell struct {
	Name string
	SBSs int
}

// RandomProcScheduleConfig configures one randomized process-fault draw.
type RandomProcScheduleConfig struct {
	// Seed drives every draw.
	Seed int64
	// Cells describes the cluster shape (required, in spec order).
	Cells []ProcCell
	// MaxSweep bounds the trigger sweeps (0 means 4 — cluster cells
	// converge in few sweeps, so late events would never fire).
	MaxSweep int
	// Events is the draw budget (0 means 3).
	Events int
	// Weights biases the operation mix.
	Weights ProcWeights
	// MaxStop caps the SIGSTOP freeze duration (0 means 150ms: long
	// enough to stall protocol timeouts, short enough not to trip the
	// heartbeat two-strike kill on a loaded host).
	MaxStop time.Duration
	// MaxSpawnDelay caps the spawn-delay launch attribute (0 means 80ms).
	MaxSpawnDelay time.Duration
}

func (cfg RandomProcScheduleConfig) withDefaults() RandomProcScheduleConfig {
	if cfg.MaxSweep == 0 {
		cfg.MaxSweep = 4
	}
	if cfg.Events == 0 {
		cfg.Events = 3
	}
	if cfg.MaxStop == 0 {
		cfg.MaxStop = 150 * time.Millisecond
	}
	if cfg.MaxSpawnDelay == 0 {
		cfg.MaxSpawnDelay = 80 * time.Millisecond
	}
	cfg.Weights = cfg.Weights.withDefaults()
	return cfg
}

// procTarget is one schedulable process position during generation.
type procTarget struct {
	cell string
	sbs  int // -1 = the cell's BS
	// nextFree is the first available trigger sweep; killed and delayed
	// cap each target at one kill (restart budgets are finite) and one
	// spawn delay (ParseProcSpec rejects duplicates).
	nextFree int
	killed   bool
	delayed  bool
}

// RandomProcSchedule draws one seeded, conflict-free process-fault
// schedule for the given cluster shape. The same config always yields the
// same schedule, the result validates against the cell shapes and the
// ParseProcSpec conflict rules, and Spec() renders it as a -proc-chaos
// string that re-parses to the identical schedule. Each target receives at
// most one kill (supervisor restart budgets are finite) and at most one
// spawn delay.
func RandomProcSchedule(cfg RandomProcScheduleConfig) (ProcSchedule, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Cells) == 0 {
		return ProcSchedule{}, fmt.Errorf("chaos: random proc schedule: no cells")
	}
	if cfg.MaxSweep < 1 {
		return ProcSchedule{}, fmt.Errorf("chaos: random proc schedule: MaxSweep %d too small", cfg.MaxSweep)
	}
	var targets []*procTarget
	for _, c := range cfg.Cells {
		if c.Name == "" || c.SBSs < 0 {
			return ProcSchedule{}, fmt.Errorf("chaos: random proc schedule: bad cell %+v", c)
		}
		targets = append(targets, &procTarget{cell: c.Name, sbs: -1, nextFree: 1})
		for sbs := 0; sbs < c.SBSs; sbs++ {
			targets = append(targets, &procTarget{cell: c.Name, sbs: sbs, nextFree: 1})
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := cfg.Weights
	total := w.Kill + w.Stop + w.SpawnDelay
	if total <= 0 {
		return ProcSchedule{}, fmt.Errorf("chaos: random proc schedule: all weights zero")
	}

	var timed, delays []ProcEvent
	for draw := 0; draw < cfg.Events; draw++ {
		t := targets[rng.Intn(len(targets))]
		pick := rng.Float64() * total
		switch {
		case pick < w.Kill:
			if t.killed || t.nextFree > cfg.MaxSweep {
				continue
			}
			at := t.nextFree + rng.Intn(cfg.MaxSweep-t.nextFree+1)
			timed = append(timed, ProcEvent{Cell: t.cell, SBS: t.sbs, Op: ProcKill, Sweep: at})
			t.killed = true
			t.nextFree = at + 1
		case pick < w.Kill+w.Stop:
			if t.nextFree > cfg.MaxSweep {
				continue
			}
			at := t.nextFree + rng.Intn(cfg.MaxSweep-t.nextFree+1)
			delay := randomDelay(rng, 30*time.Millisecond, cfg.MaxStop)
			timed = append(timed, ProcEvent{Cell: t.cell, SBS: t.sbs, Op: ProcStop, Sweep: at, Delay: delay})
			t.nextFree = at + 1
		default:
			if t.delayed {
				continue
			}
			delay := randomDelay(rng, 10*time.Millisecond, cfg.MaxSpawnDelay)
			delays = append(delays, ProcEvent{Cell: t.cell, SBS: t.sbs, Op: ProcSpawnDelay, Delay: delay})
			t.delayed = true
		}
	}

	// Spawn delays are launch attributes; list them first, then the timed
	// events in trigger order (stable, so each target's events keep their
	// strictly-increasing construction order).
	sort.SliceStable(timed, func(i, j int) bool { return timed[i].Sweep < timed[j].Sweep })
	s := ProcSchedule{Events: append(delays, timed...)}
	cells := func(name string) int {
		for _, c := range cfg.Cells {
			if c.Name == name {
				return c.SBSs
			}
		}
		return -1
	}
	if err := s.Validate(cells); err != nil {
		return ProcSchedule{}, fmt.Errorf("chaos: random proc schedule (seed %d): %w", cfg.Seed, err)
	}
	if err := checkProcConflicts(s.Events); err != nil {
		return ProcSchedule{}, fmt.Errorf("chaos: random proc schedule (seed %d): %w", cfg.Seed, err)
	}
	return s, nil
}

// randomDelay draws a duration in [min, max] at millisecond granularity
// (so spec strings stay short and round-trip exactly).
func randomDelay(rng *rand.Rand, min, max time.Duration) time.Duration {
	if max < min {
		max = min
	}
	ms := int64(min/time.Millisecond) + rng.Int63n(int64(max/time.Millisecond)-int64(min/time.Millisecond)+1)
	return time.Duration(ms) * time.Millisecond
}
