package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected to a pipe and returns the output.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		out, _ := io.ReadAll(r)
		done <- string(out)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

func TestRunViews(t *testing.T) {
	out := capture(t, func() error { return run([]string{"-videos", "5"}) })
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want header + 5", len(lines))
	}
	if lines[0] != "rank,views" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunDemand(t *testing.T) {
	out := capture(t, func() error {
		return run([]string{"-format", "demand", "-videos", "4", "-groups", "3", "-scale", "0.5"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + 3 groups", len(lines))
	}
	if !strings.HasPrefix(lines[0], "group,video1") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunStream(t *testing.T) {
	out := capture(t, func() error {
		return run([]string{"-format", "stream", "-videos", "4", "-groups", "3", "-scale", "0.0005", "-horizon", "10"})
	})
	if !strings.HasPrefix(out, "time,group,content") {
		t.Errorf("header missing: %q", out[:min(40, len(out))])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-format", "nope"}); err == nil {
		t.Error("unknown format: want error")
	}
	if err := run([]string{"-videos", "0"}); err == nil {
		t.Error("zero videos: want error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag: want error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
