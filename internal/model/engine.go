package model

import "fmt"

// EngineKind identifies the sweep engine that produced a run or a
// checkpoint. It lives in the model package (not internal/core, which
// implements the engines) because the checkpoint codec serializes it: a
// snapshot records which update discipline produced its trajectory, and
// resume must replay the same discipline to stay bit-identical.
type EngineKind uint8

const (
	// EngineGaussSeidel is the paper's Algorithm 1: SBSs update one at a
	// time, each observing every earlier update of the same sweep.
	EngineGaussSeidel EngineKind = iota
	// EngineJacobi is the sequential reference implementation of the
	// parallel-update variant (§VII): every SBS of a round solves against
	// the same pre-round aggregate, then the BS repairs over-serving.
	EngineJacobi
	// EngineParallelJacobi is the goroutine-sharded implementation of the
	// same discipline: identical trajectory to EngineJacobi, computed by a
	// worker pool. The two share a checkpoint family.
	EngineParallelJacobi

	// engineKindCount bounds the valid range for codec validation.
	engineKindCount
)

// EngineFamily groups engines whose trajectories are interchangeable: a
// checkpoint taken under one engine can resume under another of the same
// family bit-identically.
type EngineFamily int

const (
	// FamilyGaussSeidel covers the sequential Gauss-Seidel sweep.
	FamilyGaussSeidel EngineFamily = iota
	// FamilyJacobi covers the reference and parallel Jacobi engines, which
	// compute the same trajectory by construction.
	FamilyJacobi
)

// Valid reports whether k is a known engine kind.
func (k EngineKind) Valid() bool { return k < engineKindCount }

// Family returns the trajectory family of the engine.
func (k EngineKind) Family() EngineFamily {
	if k == EngineGaussSeidel {
		return FamilyGaussSeidel
	}
	return FamilyJacobi
}

// String names the engine kind; the names double as the CLI -engine values.
func (k EngineKind) String() string {
	switch k {
	case EngineGaussSeidel:
		return "gs"
	case EngineJacobi:
		return "jacobi"
	case EngineParallelJacobi:
		return "parallel"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// String names the family for error messages.
func (f EngineFamily) String() string {
	switch f {
	case FamilyGaussSeidel:
		return "gauss-seidel"
	case FamilyJacobi:
		return "jacobi"
	default:
		return fmt.Sprintf("EngineFamily(%d)", int(f))
	}
}

// ParseEngineKind maps a CLI -engine value ("gs", "jacobi", "parallel")
// back to its kind. "gauss-seidel" is accepted as a spelled-out alias.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "gs", "gauss-seidel":
		return EngineGaussSeidel, nil
	case "jacobi":
		return EngineJacobi, nil
	case "parallel":
		return EngineParallelJacobi, nil
	default:
		return 0, fmt.Errorf("model: unknown engine %q (want gs, jacobi or parallel)", s)
	}
}
