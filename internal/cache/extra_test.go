package cache

import (
	"testing"
	"testing/quick"
)

func TestLFUDAEviction(t *testing.T) {
	c, err := NewLFUDA(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(1) // key(1)=2
	c.Access(2) // key(2)=1
	c.Access(3) // evicts 2 (lowest key), age ← 1, key(3)=2
	if c.Contains(2) || !c.Contains(1) || !c.Contains(3) {
		t.Errorf("contents = %v, want [1 3]", c.Contents())
	}
	if c.Name() != "LFUDA" || c.Cap() != 2 || c.Len() != 2 {
		t.Error("metadata wrong")
	}
}

func TestLFUDAAgingBeatsStaleFrequency(t *testing.T) {
	// Plain LFU would keep content 1 forever after many early hits; LFUDA
	// ages it out once fresher contents keep cycling through.
	c, err := NewLFUDA(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Access(1) // key(1) = 10
	}
	// Cycle fresh contents: each admission bumps the age.
	for i := 2; i < 20; i++ {
		c.Access(i)
	}
	if c.Contains(1) {
		t.Error("LFUDA failed to age out the stale frequent content")
	}
}

func TestLFUDAConstructor(t *testing.T) {
	if _, err := NewLFUDA(-1); err == nil {
		t.Error("negative capacity: want error")
	}
}

func TestClockEviction(t *testing.T) {
	c, err := NewClock(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(2)
	if !c.Access(1) { // sets 1's reference bit
		t.Error("access of cached 1 should hit")
	}
	c.Access(3) // sweep: clears 1's bit (or evicts 2) — LRU-ish: 2 goes
	if !c.Contains(1) {
		t.Errorf("contents = %v: second chance should spare the referenced content", c.Contents())
	}
	if !c.Contains(3) {
		t.Errorf("contents = %v: new content must be admitted", c.Contents())
	}
	if c.Name() != "CLOCK" || c.Cap() != 2 {
		t.Error("metadata wrong")
	}
}

func TestClockConstructor(t *testing.T) {
	if _, err := NewClock(-1); err == nil {
		t.Error("negative capacity: want error")
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewByName(name, 4, 0.3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewByName(%q).Name() = %q", name, p.Name())
		}
		if p.Cap() != 4 {
			t.Errorf("%s: Cap = %d", name, p.Cap())
		}
	}
	if _, err := NewByName("nope", 4, 0.3); err == nil {
		t.Error("unknown policy: want error")
	}
	if _, err := NewByName("LRFU", 4, 7); err == nil {
		t.Error("bad lambda must propagate")
	}
}

// Property: the new policies obey the same invariants as the original set.
func TestExtraPolicyInvariantsProperty(t *testing.T) {
	prop := func(capRaw uint8, refs []uint8) bool {
		capacity := int(capRaw % 8)
		for _, name := range []string{"LFUDA", "CLOCK"} {
			p, err := NewByName(name, capacity, 0)
			if err != nil {
				return false
			}
			for _, r := range refs {
				content := int(r % 16)
				p.Access(content)
				if p.Len() > capacity {
					return false
				}
				if capacity > 0 && !p.Contains(content) {
					return false
				}
			}
			if len(p.Contents()) != p.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
