package transport

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// The wire-format fuzz targets keep committed seed corpora under
// testdata/fuzz/<FuzzName>/ so `go test` (short mode included) replays
// them on every run. The frame and payload encodings are produced by the
// codec itself, so the files are regenerated rather than hand-edited:
//
//	EDGECACHE_REGEN_CORPUS=1 go test -run TestRegenCorpus ./internal/transport

// corpusEntry writes one []byte seed in the `go test fuzz v1` format.
func writeCorpusEntry(t *testing.T, fuzzName, seedName string, data []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
	if err := os.WriteFile(filepath.Join(dir, seedName), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRegenCorpus(t *testing.T) {
	if os.Getenv("EDGECACHE_REGEN_CORPUS") == "" {
		t.Skip("set EDGECACHE_REGEN_CORPUS=1 to rewrite testdata/fuzz seed files")
	}
	valid, err := encodeFrame(Message{Type: MsgPhaseStart, Sweep: 1, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, maxFrameSize+1)
	writeCorpusEntry(t, "FuzzReadFrame", "seed-valid-frame", valid)
	writeCorpusEntry(t, "FuzzReadFrame", "seed-truncated-header", valid[:2])
	writeCorpusEntry(t, "FuzzReadFrame", "seed-truncated-body", valid[:len(valid)-1])
	writeCorpusEntry(t, "FuzzReadFrame", "seed-garbage-body", append(append([]byte(nil), valid[:4]...), 0xde, 0xad))
	writeCorpusEntry(t, "FuzzReadFrame", "seed-over-limit-length", huge)

	agg, err := EncodePayload(AggregateAnnounce{YMinus: [][]float64{{0.5, 0}, {1, 0.25}}})
	if err != nil {
		t.Fatal(err)
	}
	up, err := EncodePayload(PolicyUpload{Cache: []bool{true}, Routing: [][]float64{{0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	writeCorpusEntry(t, "FuzzDecodePayload", "seed-aggregate", agg)
	writeCorpusEntry(t, "FuzzDecodePayload", "seed-upload", up)
	writeCorpusEntry(t, "FuzzDecodePayload", "seed-garbage", []byte("garbage"))
}

// TestCorpusCommitted fails when a fuzz target loses its committed seeds:
// the corpus is part of the regression suite, not an optional extra.
func TestCorpusCommitted(t *testing.T) {
	for _, name := range []string{"FuzzReadFrame", "FuzzDecodePayload"} {
		entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", name))
		if err != nil || len(entries) == 0 {
			t.Errorf("no committed seed corpus for %s (err=%v); regenerate with EDGECACHE_REGEN_CORPUS=1", name, err)
		}
	}
}
