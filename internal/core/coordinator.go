package core

import (
	"fmt"
	"math/rand"

	"edgecache/internal/dp"
	"edgecache/internal/model"
)

// NoiseMechanism selects the noise family used to perturb routing uploads.
type NoiseMechanism int

// Supported mechanisms.
const (
	// MechanismLaplace is the paper's LPPM: bounded Laplace noise on
	// [0, δ·y] with scale β = Δf/ε (ε-DP, Theorem 4). The default.
	MechanismLaplace NoiseMechanism = iota
	// MechanismGaussian subtracts a |N(0,σ)| draw truncated to [0, δ·y]
	// with the analytic (ε, δ_DP) calibration — the Gaussian variant the
	// paper's §VII lists as future work.
	MechanismGaussian
	// MechanismUniform subtracts plain uniform noise on [0, δ·y]. It has
	// no calibrated DP guarantee; it is the "directly added random noise"
	// strawman the paper's §IV argues against, kept for the noise-family
	// ablation.
	MechanismUniform
)

// String names the mechanism.
func (m NoiseMechanism) String() string {
	switch m {
	case MechanismLaplace:
		return "laplace"
	case MechanismGaussian:
		return "gaussian"
	case MechanismUniform:
		return "uniform"
	default:
		return fmt.Sprintf("NoiseMechanism(%d)", int(m))
	}
}

// PrivacyConfig enables LPPM (§IV of the paper) on every routing upload.
type PrivacyConfig struct {
	// Epsilon is the per-release privacy budget ε; Theorem 4 calibrates the
	// Laplace scale as β = Sensitivity/ε.
	Epsilon float64
	// Delta is the paper's Laplace component factor δ ∈ [0,1): the noise
	// drawn for routing value y lives on [0, δ·y] (eq. 28). It is NOT the
	// (ε,δ)-DP slack.
	Delta float64
	// Sensitivity is Δf in eq. 30. The routing values are fractions in
	// [0,1], so the default (0 → 1) is the worst-case L1 change from one
	// SBS altering one routing entry.
	Sensitivity float64
	// Rng drives the noise. Either Rng or Noise is required.
	Rng *rand.Rand
	// Noise, when non-nil, supplies the Rng from a draw-counting, seekable
	// source (NewLPPM wires it up) so the noise stream's position can be
	// captured in a checkpoint and restored on resume. Required when
	// checkpointing a private run; ignored if Rng is also set.
	Noise *NoiseSource
	// Accountant optionally records every ε spend, labeled per SBS.
	Accountant *dp.Accountant
	// Mechanism selects the noise family; the zero value is the paper's
	// bounded Laplace (LPPM).
	Mechanism NoiseMechanism
	// DPDelta is the (ε, δ)-DP slack used only by MechanismGaussian.
	// 0 means 1e-5. Distinct from Delta, the noise-interval factor.
	DPDelta float64
}

func (p *PrivacyConfig) validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("core: privacy epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Delta < 0 || p.Delta >= 1 {
		return fmt.Errorf("core: privacy delta must be in [0,1), got %v", p.Delta)
	}
	if p.Sensitivity < 0 {
		return fmt.Errorf("core: privacy sensitivity must be non-negative, got %v", p.Sensitivity)
	}
	if p.Rng == nil && p.Noise == nil {
		return fmt.Errorf("core: privacy config requires an Rng or a Noise source")
	}
	switch p.Mechanism {
	case MechanismLaplace, MechanismUniform:
	case MechanismGaussian:
		if d := p.dpDelta(); d <= 0 || d >= 1 {
			return fmt.Errorf("core: gaussian mechanism needs DPDelta in (0,1), got %v", d)
		}
	default:
		return fmt.Errorf("core: unknown noise mechanism %v", p.Mechanism)
	}
	return nil
}

func (p *PrivacyConfig) dpDelta() float64 {
	if p.DPDelta > 0 {
		return p.DPDelta
	}
	return 1e-5
}

func (p *PrivacyConfig) sensitivity() float64 {
	if p.Sensitivity > 0 {
		return p.Sensitivity
	}
	return 1
}

// Config tunes Algorithm 1.
type Config struct {
	// Sub is the per-SBS sub-problem configuration.
	Sub SubproblemConfig
	// Gamma is the relative-improvement convergence threshold γ; the sweep
	// stops when |f(τ) − f(τ−1)|/f(τ) ≤ γ. 0 means the default 1e-6.
	Gamma float64
	// MaxSweeps is T, the sweep budget. 0 means the default 50.
	MaxSweeps int
	// Engine selects the sweep discipline: the zero value is the paper's
	// sequential Gauss-Seidel sweep (Algorithm 1); EngineJacobi is the
	// sequential reference of the parallel-update variant (§VII);
	// EngineParallelJacobi computes the same trajectory on a worker pool.
	Engine EngineKind
	// Workers sizes the parallel engine's pool; 0 means GOMAXPROCS. It is
	// an error to set it for the sequential engines.
	Workers int
	// DisableIncremental turns off the dirty-set memo fast path and runs
	// the engines exactly as the pre-memo reference: every sub-problem is
	// re-solved every sweep and the Jacobi merge/repair touch every row.
	// The trajectory is bit-identical either way (tests assert it); the
	// flag exists for that assertion and for benchmarking the memo's win.
	DisableIncremental bool
	// Privacy, when non-nil, applies LPPM to every routing upload.
	Privacy *PrivacyConfig

	// BroadcastTap, when non-nil, observes every aggregate y_{-n} the BS
	// broadcasts (sweep, phase n, matrix), modeling the paper's §IV
	// attacker who listens on the broadcast channel. The matrices are
	// materialized per call (the tap owns them), so enabling a tap trades
	// the sweep loop's zero-allocation property for observability.
	// Used by internal/attack and experiment E15.
	BroadcastTap func(sweep, phase int, yMinus [][]float64)
	// UploadTap, when non-nil, observes each SBS's routing before (clean)
	// and after (upload) LPPM. It is experiment instrumentation — ground
	// truth for measuring what an attacker could recover — and must never
	// be wired up in a deployment. The matrices are materialized per call;
	// the tap owns them.
	UploadTap func(sweep, phase int, clean, upload [][]float64)

	// Checkpoint, when non-nil, snapshots the full sweep state to the
	// configured sink so a crashed run can be resumed bit-identically (see
	// Coordinator.Resume). Incompatible with Restarts > 0 (a snapshot
	// records one trajectory) and, when Privacy is set, requires
	// Privacy.Noise (a bare *rand.Rand has no capturable position).
	Checkpoint *CheckpointConfig

	// Restarts is an extension beyond the paper: because the no-overserve
	// constraint (4) couples the SBS blocks, the Gauss-Seidel sweep can
	// settle in an order-dependent equilibrium (see DESIGN.md and
	// experiment E7). When Restarts > 0 the coordinator reruns the
	// algorithm that many extra times with randomly shuffled SBS update
	// orders and keeps the cheapest result. The first attempt always uses
	// the paper's fixed 1..N order, so the result is never worse than
	// plain Algorithm 1. Requires RestartSeed-driven determinism.
	Restarts int
	// RestartSeed seeds the order shuffling for Restarts > 0.
	RestartSeed int64
}

// CheckpointConfig tunes snapshot capture.
type CheckpointConfig struct {
	// Sink receives every snapshot. Required.
	Sink model.CheckpointSink
	// EverySweeps is the sweep-boundary capture cadence; 0 means every
	// sweep.
	EverySweeps int
	// EachPhase additionally captures after every phase inside a sweep, so
	// a resume can continue mid-sweep. More snapshots, same guarantee.
	EachPhase bool
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{Sub: DefaultSubproblemConfig()}
}

func (c Config) withDefaults() Config {
	c.Sub = c.Sub.withDefaults()
	if c.Gamma <= 0 {
		c.Gamma = 1e-6
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 50
	}
	return c
}

// RunResult is the outcome of a full Algorithm 1 run.
type RunResult struct {
	// Solution is the final caching and routing policy as seen by the BS
	// (i.e. post-LPPM when privacy is enabled) with its serving cost.
	Solution *model.Solution
	// History records the total serving cost after every sweep; History[0]
	// is the cost after sweep τ=0.
	History []float64
	// Sweeps is the number of sweeps executed; Converged reports whether
	// the γ-criterion stopped the run (as opposed to the sweep budget).
	Sweeps    int
	Converged bool
	// Work records the dirty-set accounting of each sweep this run
	// executed: how many sub-problems were actually solved and how many
	// were served from the memo (see DESIGN.md "Incremental sweeps"). It is
	// nil for engines without the accounting (the sim BS sweeper) and is
	// not serialized in checkpoints — a resumed run restarts it, matching
	// the memo itself being rebuilt rather than restored.
	Work []SweepWork
	// Faults holds the per-SBS fault accounting of a distributed run
	// (one entry per SBS). It is nil for in-process runs, which have no
	// network to fail.
	Faults []SBSFaultStats
}

// SweepWork is one sweep's dirty-set accounting: Solves sub-problems were
// recomputed, Skipped were answered verbatim from the per-SBS memo because
// nothing they read had changed. Solves+Skipped == N for the in-process
// engines.
type SweepWork struct {
	Solves  int
	Skipped int
}

// TotalWork sums the per-sweep accounting.
func (r *RunResult) TotalWork() SweepWork {
	var t SweepWork
	for _, w := range r.Work {
		t.Solves += w.Solves
		t.Skipped += w.Skipped
	}
	return t
}

// SBSFaultStats is the BS-observed fault record of one SBS agent over a
// distributed run. The in-process Coordinator never populates it; the sim
// BS agent does, and the chaos tests assert it against the injected fault
// schedule.
type SBSFaultStats struct {
	// Misses counts phases whose upload never arrived within the full
	// PhaseTimeout window (each one stalls the sweep by that timeout).
	Misses int
	// Retries counts MsgPhaseStart retransmissions within phase windows.
	Retries int
	// Malformed counts uploads that arrived but failed validation
	// (undecodable payload or wrong shapes) and were discarded.
	Malformed int
	// QuarantineSpans counts entries into quarantine (including
	// re-entries after a failed rejoin probe).
	QuarantineSpans int
	// SkippedPhases counts phases skipped outright while quarantined —
	// sweeps that did NOT burn a PhaseTimeout on a dead SBS.
	SkippedPhases int
	// FailedProbes counts cheap rejoin probes that went unanswered (each
	// costs only ProbeTimeout, not PhaseTimeout).
	FailedProbes int
}

// TotalFaults sums the per-SBS fault stats into one record.
func (r *RunResult) TotalFaults() SBSFaultStats {
	var t SBSFaultStats
	for _, f := range r.Faults {
		t.Misses += f.Misses
		t.Retries += f.Retries
		t.Malformed += f.Malformed
		t.QuarantineSpans += f.QuarantineSpans
		t.SkippedPhases += f.SkippedPhases
		t.FailedProbes += f.FailedProbes
	}
	return t
}

// Coordinator runs Algorithm 1 in-process: it plays both the BS role
// (aggregating and re-broadcasting routing policies) and the SBS role
// (solving P_n). The message-passing deployment in internal/sim produces
// identical results over a real transport; tests assert that equivalence.
type Coordinator struct {
	inst   *model.Instance
	cfg    Config
	subs   []*Subproblem
	lppm   *LPPM       // nil when privacy is off
	engine SweepEngine // the engine cfg.Engine selected
}

// NewCoordinator validates the instance and precomputes the per-SBS
// sub-problem solvers. Callers using EngineParallelJacobi should Close the
// coordinator when done to release its worker pool.
func NewCoordinator(inst *model.Instance, cfg Config) (*Coordinator, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if !cfg.Engine.Valid() {
		return nil, fmt.Errorf("core: unknown engine kind %d", cfg.Engine)
	}
	if cfg.Workers != 0 && cfg.Engine != EngineParallelJacobi {
		return nil, fmt.Errorf("core: Workers applies only to the parallel engine, not %v", cfg.Engine)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: Workers must be non-negative, got %d", cfg.Workers)
	}
	if cfg.Engine != EngineGaussSeidel {
		if cfg.Restarts > 0 {
			return nil, fmt.Errorf("core: Restarts explores SBS update orders, which only the Gauss-Seidel engine has")
		}
		if cfg.BroadcastTap != nil || cfg.UploadTap != nil {
			return nil, fmt.Errorf("core: attack taps instrument the Gauss-Seidel broadcast protocol; engine %v does not drive them", cfg.Engine)
		}
	}
	if ck := cfg.Checkpoint; ck != nil {
		if ck.Sink == nil {
			return nil, fmt.Errorf("core: checkpoint config requires a sink")
		}
		if cfg.Restarts > 0 {
			return nil, fmt.Errorf("core: checkpointing is incompatible with Restarts > 0: a snapshot records a single trajectory")
		}
		if ck.EachPhase && cfg.Engine != EngineGaussSeidel {
			return nil, fmt.Errorf("core: per-phase checkpoints need mid-sweep resume points; a %v round is atomic (use sweep-boundary cadence)", cfg.Engine)
		}
		if cfg.Privacy != nil && (cfg.Privacy.Noise == nil || cfg.Privacy.Rng != nil) {
			return nil, fmt.Errorf("core: checkpointing a private run requires Privacy.Noise alone (a seekable noise source); a bare Rng has no capturable position")
		}
	}
	c := &Coordinator{inst: inst, cfg: cfg}
	if cfg.Privacy != nil {
		lppm, err := NewLPPM(*cfg.Privacy)
		if err != nil {
			return nil, err
		}
		c.lppm = lppm
	}
	c.subs = make([]*Subproblem, inst.N)
	for n := 0; n < inst.N; n++ {
		sub, err := NewSubproblem(inst, n, cfg.Sub)
		if err != nil {
			return nil, err
		}
		c.subs[n] = sub
	}
	engine, err := c.newEngine()
	if err != nil {
		return nil, err
	}
	c.engine = engine
	return c, nil
}

// Close releases the coordinator's engine resources (the parallel
// engine's worker pool). It is idempotent and safe to skip for the
// sequential engines.
func (c *Coordinator) Close() { c.engine.Close() }

// incremental reports whether the engines may use the dirty-set memo fast
// path. The attack taps observe every broadcast and upload, so a tapped
// run must execute every phase in full — skipping would change what the
// tap sees even though the trajectory is identical.
func (c *Coordinator) incremental() bool {
	return !c.cfg.DisableIncremental && c.cfg.BroadcastTap == nil && c.cfg.UploadTap == nil
}

// invalidateMemos drops every sub-problem memo. Engines call it on every
// error return out of a sweep: an aborted round may have captured memos it
// never installed, which would break the hit fast paths on a retry (see
// Subproblem.memoInvalidate).
func (c *Coordinator) invalidateMemos() {
	for _, sub := range c.subs {
		sub.memoInvalidate()
	}
}

// Run executes the configured engine from the all-zero initial policy.
// With Config.Restarts > 0 (Gauss-Seidel only) it additionally explores
// shuffled SBS update orders and returns the cheapest run.
func (c *Coordinator) Run() (*RunResult, error) {
	order := identityOrder(c.inst.N)
	best, err := c.runEngine(c.engine, NewSweepState(c.inst, order))
	if err != nil {
		return nil, err
	}
	if c.cfg.Restarts > 0 {
		rng := rand.New(rand.NewSource(c.cfg.RestartSeed))
		for attempt := 0; attempt < c.cfg.Restarts; attempt++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			res, err := c.runEngine(c.engine, NewSweepState(c.inst, order))
			if err != nil {
				return nil, err
			}
			if res.Solution.Cost.Total < best.Solution.Cost.Total {
				best = res
			}
		}
	}
	return best, nil
}

// Resume continues a run from a snapshot. The resumed trajectory — cost
// history, final cost and policies — is bit-identical to the uninterrupted
// run's, because the solver is deterministic, the snapshot carries the
// tracker's exact running sums, and (with privacy) the noise stream is
// repositioned to the recorded draw count. The coordinator must be built
// with the same instance and configuration as the crashed run; the engine
// must be of the same family as the one that took the snapshot (the
// reference and parallel Jacobi engines are interchangeable, Gauss-Seidel
// is not interchangeable with either).
func (c *Coordinator) Resume(ck *model.Checkpoint) (*RunResult, error) {
	if ck == nil {
		return nil, fmt.Errorf("core: nil checkpoint")
	}
	if err := ck.Validate(c.inst); err != nil {
		return nil, err
	}
	if c.cfg.Restarts > 0 {
		return nil, fmt.Errorf("core: cannot resume with Restarts > 0: a snapshot records a single trajectory")
	}
	if want, have := ck.Engine.Family(), c.engine.Kind().Family(); want != have {
		return nil, fmt.Errorf("core: checkpoint was taken by engine %v (%v family); configured engine %v (%v family) would diverge from its trajectory",
			ck.Engine, want, c.engine.Kind(), have)
	}
	if ck.HasNoise != (c.lppm != nil) {
		return nil, fmt.Errorf("core: checkpoint privacy state (LPPM=%v) does not match configuration (LPPM=%v)",
			ck.HasNoise, c.lppm != nil)
	}
	if c.lppm != nil {
		noise := c.cfg.Privacy.Noise
		if noise == nil {
			return nil, fmt.Errorf("core: resuming a private run requires Privacy.Noise")
		}
		if noise.SeedValue() != ck.NoiseSeed {
			return nil, fmt.Errorf("core: noise seed %d does not match checkpoint seed %d", noise.SeedValue(), ck.NoiseSeed)
		}
		noise.SeekTo(ck.NoiseDraws)
	}
	// μ restoration is diagnostic (Solve cold-starts the dual loop), but
	// it keeps the workspace byte-equal to the crashed process's.
	for n, mu := range ck.Mu {
		if len(mu) == 0 {
			continue
		}
		if err := c.subs[n].RestoreMultipliers(mu); err != nil {
			return nil, err
		}
	}
	st := &SweepState{
		Order:    append([]int(nil), ck.Order...),
		Sweep:    ck.Sweep,
		Phase:    ck.Phase,
		X:        ck.Caching.Clone(),
		Y:        ck.Routing.Clone(),
		Tracker:  model.NewAggregateTracker(c.inst),
		History:  append([]float64(nil), ck.History...),
		PrevCost: ck.PrevCost,
		Best:     ck.Best.Clone(),
	}
	st.Tracker.Restore(ck.Aggregate)
	return c.runEngine(c.engine, st)
}

// snapshot captures the current sweep state as of resume point
// (sweep, phase) and hands it to the sink, recording which engine kind
// produced the trajectory.
func (c *Coordinator) snapshot(sink model.CheckpointSink, kind EngineKind, st *SweepState, res *RunResult, sweep, phase int) error {
	ck := &model.Checkpoint{
		Sweep:      sweep,
		Phase:      phase,
		Engine:     kind,
		Order:      append([]int(nil), st.Order...),
		Caching:    st.X.Clone(),
		Routing:    st.Y.Clone(),
		Aggregate:  st.Tracker.Aggregate().Clone(),
		History:    append([]float64(nil), res.History...),
		PrevCost:   st.PrevCost,
		Best:       st.Best.Clone(),
		Mu:         make([][]float64, c.inst.N),
		InstanceFP: c.inst.Fingerprint(),
	}
	for n, sub := range c.subs {
		ck.Mu[n] = sub.Multipliers()
	}
	if c.lppm != nil {
		ck.HasNoise = true
		ck.NoiseSeed, ck.NoiseDraws = c.cfg.Privacy.Noise.Pos()
	}
	// Checkpoints are local trusted state: raw μ never leaves the process
	// and bit-identical resume requires the un-noised values (§V-C).
	//edgecache:lint-ignore privflow checkpoint is local trusted state; raw multipliers are required for bit-identical resume and never cross the transport
	if err := sink.Save(ck); err != nil {
		return fmt.Errorf("core: checkpoint at sweep %d phase %d: %w", sweep, phase, err)
	}
	return nil
}
