package chaos

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"edgecache/internal/transport"
)

// TestSpecRoundTrip is the deterministic core of FuzzSpecRoundTrip: parse,
// format, re-parse, compare — plus the exact rendering for a few anchors
// so the output format stays reviewable.
func TestSpecRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want string // "" means only assert the structural round trip
	}{
		{spec: "", want: "seed=1"},
		{spec: "seed=7,drop=0.3,crash=1@2+3", want: "seed=7,drop=0.3,crash=1@2,restart=1@5"},
		{spec: "bscrash=2+1", want: "seed=1,bscrash=2,bsrestart=3"},
		{spec: "partition=0@1+2,delay=5ms", want: "seed=1,delay=5ms,partition=0@1+2"},
		{spec: "linkfault=*@2:drop=0.2;dup=0.1;reorder=0.05;delay=3ms"},
		{spec: "linkfault=1@2:drop=0.25,linkfault=1@4"},
		{spec: "crash=0@2.1,restart=0@3", want: "seed=1,crash=0@2.1,restart=0@3"},
		{spec: "seed=-9,dup=0.125,reorder=0.0625,heal=2@4"},
	}
	for _, tc := range cases {
		s, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		got := s.Spec()
		if tc.want != "" && got != tc.want {
			t.Errorf("ParseSpec(%q).Spec() = %q, want %q", tc.spec, got, tc.want)
		}
		again, err := ParseSpec(got)
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", got, tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(s, again) {
			t.Errorf("round trip of %q changed schedule: %+v vs %+v", tc.spec, s, again)
		}
	}
}

// TestProcSpecRoundTrip mirrors TestSpecRoundTrip for -proc-chaos specs.
func TestProcSpecRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{spec: "", want: ""},
		{spec: "kill=cell-1@2", want: "kill=cell-1@2"},
		{spec: "stop=cell-0@1+100ms,kill=cell-0.2@3", want: "stop=cell-0@1+100ms,kill=cell-0.2@3"},
		{spec: "spawndelay=cell-0@50ms,kill=cell-0@2", want: "spawndelay=cell-0@50ms,kill=cell-0@2"},
	}
	for _, tc := range cases {
		s, err := ParseProcSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseProcSpec(%q): %v", tc.spec, err)
			continue
		}
		got := s.Spec()
		if got != tc.want {
			t.Errorf("ParseProcSpec(%q).Spec() = %q, want %q", tc.spec, got, tc.want)
		}
		again, err := ParseProcSpec(got)
		if err != nil {
			t.Errorf("re-parse of %q: %v", got, err)
			continue
		}
		if !reflect.DeepEqual(s, again) {
			t.Errorf("round trip of %q changed schedule: %+v vs %+v", tc.spec, s, again)
		}
	}
}

// TestSpecProgrammaticFormat covers schedules built in code rather than
// parsed, including the all-links target and fault attribute rendering.
func TestSpecProgrammaticFormat(t *testing.T) {
	s := Schedule{
		Seed:  11,
		Links: transport.FaultConfig{DropProb: 0.1, MaxDelay: 2 * time.Millisecond},
		Events: []Event{
			{Sweep: 1, SBS: 0, Op: OpCrash},
			{Sweep: 2, Phase: 1, SBS: -1, Op: OpLinkFaults, Faults: transport.FaultConfig{DupProb: 0.05}},
			{Sweep: 3, SBS: 0, Op: OpRestart},
		},
	}
	want := "seed=11,drop=0.1,delay=2ms,crash=0@1,linkfault=*@2.1:dup=0.05,restart=0@3"
	if got := s.Spec(); got != want {
		t.Fatalf("Spec() = %q, want %q", got, want)
	}
	again, err := ParseSpec(want)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("round trip changed schedule: %+v vs %+v", s, again)
	}
}

// TestSpecErrorsNameFullSpec pins the satellite requirement that parse
// errors are self-diagnosing: the message carries both the offending item
// and the complete original spec string, so a soak repro line that fails
// to parse identifies itself.
func TestSpecErrorsNameFullSpec(t *testing.T) {
	cases := []struct {
		parse func(string) error
		spec  string
		item  string
	}{
		{func(s string) error { _, err := ParseSpec(s); return err }, "drop=0.1,crash=banana@2", "crash=banana@2"},
		{func(s string) error { _, err := ParseSpec(s); return err }, "crash=1@2,frobnicate=3", "frobnicate=3"},
		{func(s string) error { _, err := ParseProcSpec(s); return err }, "kill=cell-0@1,stop=cell-0@2", "stop=cell-0@2"},
		{func(s string) error { _, err := ParseProcSpec(s); return err }, "spawndelay=cell-0@-5ms,kill=cell-0@1", "spawndelay=cell-0@-5ms"},
	}
	for _, tc := range cases {
		err := tc.parse(tc.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q): expected error", tc.spec)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, strconvQuote(tc.spec)) {
			t.Errorf("error for %q does not name the full spec: %q", tc.spec, msg)
		}
		if !strings.Contains(msg, strconvQuote(tc.item)) {
			t.Errorf("error for %q does not name the offending item %q: %q", tc.spec, tc.item, msg)
		}
	}
}

// TestSpecConflictErrorNamesSpec checks conflict rejections carry the full
// spec too.
func TestSpecConflictErrorNamesSpec(t *testing.T) {
	spec := "crash=1@5,crash=1@2"
	_, err := ParseSpec(spec)
	var conflict *SpecConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("expected SpecConflictError, got %v", err)
	}
	if conflict.Spec != spec {
		t.Fatalf("conflict.Spec = %q, want %q", conflict.Spec, spec)
	}
	if !strings.Contains(err.Error(), strconvQuote(spec)) {
		t.Fatalf("conflict message does not name the spec: %q", err.Error())
	}

	procSpec := "kill=cell-0@1,kill=cell-0@1"
	_, err = ParseProcSpec(procSpec)
	if !errors.As(err, &conflict) {
		t.Fatalf("expected SpecConflictError, got %v", err)
	}
	if conflict.Spec != procSpec {
		t.Fatalf("proc conflict.Spec = %q, want %q", conflict.Spec, procSpec)
	}
}

// strconvQuote mirrors the %q rendering the error paths use.
func strconvQuote(s string) string {
	return `"` + s + `"`
}
