package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandomLinksExactCount(t *testing.T) {
	for _, total := range []int{0, 1, 40, 90} {
		links, err := RandomLinks(RandomLinksConfig{SBSs: 3, Groups: 30, TotalLinks: total, Seed: 1})
		if err != nil {
			t.Fatalf("TotalLinks=%d: %v", total, err)
		}
		if got := CountLinks(links); got != total {
			t.Errorf("TotalLinks=%d: CountLinks = %d", total, got)
		}
		if len(links) != 3 || len(links[0]) != 30 {
			t.Fatalf("shape = %dx%d, want 3x30", len(links), len(links[0]))
		}
	}
}

func TestRandomLinksCoverage(t *testing.T) {
	links, err := RandomLinks(RandomLinksConfig{
		SBSs: 3, Groups: 30, TotalLinks: 40, EnsureCoverage: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := CountLinks(links); got != 40 {
		t.Fatalf("CountLinks = %d, want 40", got)
	}
	for u := 0; u < 30; u++ {
		covered := false
		for n := 0; n < 3; n++ {
			covered = covered || links[n][u]
		}
		if !covered {
			t.Errorf("group %d not covered", u)
		}
	}
}

func TestRandomLinksDeterministic(t *testing.T) {
	cfg := RandomLinksConfig{SBSs: 3, Groups: 10, TotalLinks: 12, Seed: 9}
	a, _ := RandomLinks(cfg)
	b, _ := RandomLinks(cfg)
	for n := range a {
		for u := range a[n] {
			if a[n][u] != b[n][u] {
				t.Fatal("same seed produced different links")
			}
		}
	}
}

func TestRandomLinksErrors(t *testing.T) {
	cases := []RandomLinksConfig{
		{SBSs: 0, Groups: 5, TotalLinks: 1},
		{SBSs: 2, Groups: 0, TotalLinks: 1},
		{SBSs: 2, Groups: 3, TotalLinks: -1},
		{SBSs: 2, Groups: 3, TotalLinks: 7},
		{SBSs: 2, Groups: 5, TotalLinks: 4, EnsureCoverage: true},
	}
	for i, cfg := range cases {
		if _, err := RandomLinks(cfg); err == nil {
			t.Errorf("case %d: want error for %+v", i, cfg)
		}
	}
}

// Property: the sampler always yields exactly TotalLinks links within shape,
// for arbitrary feasible configurations.
func TestRandomLinksCountProperty(t *testing.T) {
	prop := func(n, u uint8, frac uint8, seed int64, cover bool) bool {
		sbss := int(n%5) + 1
		groups := int(u%20) + 1
		total := int(frac) % (sbss*groups + 1)
		cfg := RandomLinksConfig{SBSs: sbss, Groups: groups, TotalLinks: total, EnsureCoverage: cover, Seed: seed}
		links, err := RandomLinks(cfg)
		if cover && total < groups {
			return err != nil
		}
		if err != nil {
			return false
		}
		return CountLinks(links) == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlaceGeometric(t *testing.T) {
	g, err := PlaceGeometric(GeometricConfig{SBSs: 4, Groups: 25, FieldSize: 100, CoverageRadius: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.SBSPos) != 4 || len(g.GroupPos) != 25 {
		t.Fatal("wrong entity counts")
	}
	if g.BS.X != 50 || g.BS.Y != 50 {
		t.Errorf("BS at %+v, want field center", g.BS)
	}
	for n := range g.SBSPos {
		for u := range g.GroupPos {
			d := g.SBSPos[n].Dist(g.GroupPos[u])
			if math.Abs(d-g.SBSDist[n][u]) > 1e-12 {
				t.Fatalf("SBSDist[%d][%d] = %v, want %v", n, u, g.SBSDist[n][u], d)
			}
			if g.Links[n][u] != (d <= 30) {
				t.Fatalf("Links[%d][%d] inconsistent with distance %v", n, u, d)
			}
		}
	}
	for u := range g.GroupPos {
		if math.Abs(g.BSDist[u]-g.BS.Dist(g.GroupPos[u])) > 1e-12 {
			t.Fatalf("BSDist[%d] mismatch", u)
		}
	}
}

func TestPlaceGeometricErrors(t *testing.T) {
	cases := []GeometricConfig{
		{SBSs: 0, Groups: 1, FieldSize: 1, CoverageRadius: 1},
		{SBSs: 1, Groups: 0, FieldSize: 1, CoverageRadius: 1},
		{SBSs: 1, Groups: 1, FieldSize: 0, CoverageRadius: 1},
		{SBSs: 1, Groups: 1, FieldSize: 1, CoverageRadius: 0},
	}
	for i, cfg := range cases {
		if _, err := PlaceGeometric(cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestUniformBSCosts(t *testing.T) {
	costs, err := UniformBSCosts(100, 100, 150, 11)
	if err != nil {
		t.Fatal(err)
	}
	for u, c := range costs {
		if c < 100 || c > 150 {
			t.Fatalf("costs[%d] = %v outside [100,150]", u, c)
		}
	}
	if _, err := UniformBSCosts(0, 1, 2, 1); err == nil {
		t.Error("groups=0: want error")
	}
	if _, err := UniformBSCosts(2, -1, 2, 1); err == nil {
		t.Error("negative lo: want error")
	}
	if _, err := UniformBSCosts(2, 5, 2, 1); err == nil {
		t.Error("hi<lo: want error")
	}
}

func TestConstantEdgeCosts(t *testing.T) {
	m, err := ConstantEdgeCosts(2, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for n := range m {
		for u := range m[n] {
			if m[n][u] != 1.5 {
				t.Fatalf("m[%d][%d] = %v, want 1.5", n, u, m[n][u])
			}
		}
	}
	if _, err := ConstantEdgeCosts(0, 1, 1); err == nil {
		t.Error("want error for zero dims")
	}
	if _, err := ConstantEdgeCosts(1, 1, -1); err == nil {
		t.Error("want error for negative cost")
	}
}

func TestDistanceEdgeCosts(t *testing.T) {
	dist := [][]float64{{0, 10}, {5, 20}}
	m, err := DistanceEdgeCosts(dist, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 2}, {1.5, 3}}
	for n := range want {
		for u := range want[n] {
			if math.Abs(m[n][u]-want[n][u]) > 1e-12 {
				t.Fatalf("m[%d][%d] = %v, want %v", n, u, m[n][u], want[n][u])
			}
		}
	}
	if _, err := DistanceEdgeCosts(dist, -1, 0); err == nil {
		t.Error("want error for negative base")
	}
}

func TestPointDist(t *testing.T) {
	if got := (Point{0, 0}).Dist(Point{3, 4}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}
