package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgecache/internal/model"
)

// randomInstance draws a small random instance with the paper's structure:
// d̂ ≫ d, unit-size contents, random links.
func randomInstance(rng *rand.Rand, n, u, f int) *model.Instance {
	inst := &model.Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  make([]int, n),
		Bandwidth: make([]float64, n),
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 20
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < n; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.6
			inst.EdgeCost[i][j] = 1 + rng.Float64()*3
		}
		inst.CacheCap[i] = 1 + rng.Intn(f)
		inst.Bandwidth[i] = 5 + rng.Float64()*40
	}
	return inst
}

func zeroYMinus(inst *model.Instance) model.Mat { return inst.NewUFMat() }

func TestNewSubproblemErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := randomInstance(rng, 2, 3, 4)
	if _, err := NewSubproblem(inst, -1, SubproblemConfig{}); err == nil {
		t.Error("negative SBS index: want error")
	}
	if _, err := NewSubproblem(inst, 2, SubproblemConfig{}); err == nil {
		t.Error("out-of-range SBS index: want error")
	}
	bad := inst.Clone()
	bad.Demand[0][0] = -1
	if _, err := NewSubproblem(bad, 0, SubproblemConfig{}); err == nil {
		t.Error("invalid instance: want error")
	}
}

func TestSolveShapeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := randomInstance(rng, 1, 3, 4)
	sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Solve(model.NewMat(2, inst.F)); err == nil {
		t.Error("wrong row count: want error")
	}
	if _, err := sub.Solve(model.NewMat(inst.U, 2)); err == nil {
		t.Error("wrong column count: want error")
	}
}

// checkResultFeasible verifies a sub-problem result against the full
// constraint system for SBS n, with the aggregate routing of the others.
func checkResultFeasible(t *testing.T, inst *model.Instance, n int, res *Result, yMinus model.Mat) {
	t.Helper()
	// Cache capacity.
	count := 0
	for _, cached := range res.Cache {
		if cached {
			count++
		}
	}
	if count > inst.CacheCap[n] {
		t.Fatalf("cache uses %d slots, capacity %d", count, inst.CacheCap[n])
	}
	var load float64
	for u := 0; u < inst.U; u++ {
		for f := 0; f < inst.F; f++ {
			v := res.Routing.At(u, f)
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("routing[%d][%d] = %v outside [0,1]", u, f, v)
			}
			if v > 1e-9 {
				if !res.Cache[f] {
					t.Fatalf("routing[%d][%d] = %v without cached content", u, f, v)
				}
				if !inst.Links[n][u] {
					t.Fatalf("routing[%d][%d] = %v without link", u, f, v)
				}
				if v+yMinus.At(u, f) > 1+1e-6 {
					t.Fatalf("routing[%d][%d] overserves: %v + %v > 1", u, f, v, yMinus.At(u, f))
				}
			}
			load += v * inst.Demand[u][f]
		}
	}
	if load > inst.Bandwidth[n]*(1+1e-9)+1e-9 {
		t.Fatalf("load %v exceeds bandwidth %v", load, inst.Bandwidth[n])
	}
}

func TestSolveFeasibleAndPositiveGain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(rng, 1, 4, 6)
		sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
		if err != nil {
			t.Fatal(err)
		}
		yMinus := zeroYMinus(inst)
		res, err := sub.Solve(yMinus)
		if err != nil {
			t.Fatal(err)
		}
		checkResultFeasible(t, inst, 0, res, yMinus)
		if res.Gain < 0 {
			t.Fatalf("gain = %v, want ≥ 0", res.Gain)
		}
		// Gain must agree with an independent evaluation.
		if got := EvaluateUpload(inst, 0, res.Routing); math.Abs(got-res.Gain) > 1e-6*(1+res.Gain) {
			t.Fatalf("EvaluateUpload = %v, Result.Gain = %v", got, res.Gain)
		}
	}
}

// TestSolveMatchesExact certifies the dual solver against exhaustive cache
// enumeration on small instances: the recovered primal must reach ≥ 99.9%
// of the exact gain (the greedy primal-recovery candidate makes this hold
// in practice; a tiny tolerance covers knapsack tie-breaks).
func TestSolveMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	worst := 1.0
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng, 1, 3+rng.Intn(3), 4+rng.Intn(4))
		sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
		if err != nil {
			t.Fatal(err)
		}
		yMinus := zeroYMinus(inst)
		// Random partial pre-service from "other SBSs".
		for u := 0; u < inst.U; u++ {
			for f := 0; f < inst.F; f++ {
				if rng.Float64() < 0.3 {
					yMinus.Set(u, f, rng.Float64())
				}
			}
		}
		got, err := sub.Solve(yMinus)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sub.SolveExact(yMinus)
		if err != nil {
			t.Fatal(err)
		}
		if want.Gain <= 0 {
			continue
		}
		ratio := got.Gain / want.Gain
		if ratio < worst {
			worst = ratio
		}
		if ratio < 0.999 {
			t.Errorf("trial %d: dual gain %v < exact gain %v (ratio %v)", trial, got.Gain, want.Gain, ratio)
		}
	}
	t.Logf("worst dual/exact gain ratio over trials: %v", worst)
}

func TestSolveExactRefusesLargeF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(rng, 1, 2, 21)
	sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.SolveExact(zeroYMinus(inst)); err == nil {
		t.Error("F=21: want error")
	}
}

func TestSolveRespectsResidualCaps(t *testing.T) {
	// One MU, one content, fully pre-served by others: nothing to route.
	inst := &model.Instance{
		N: 1, U: 1, F: 1,
		Demand:    [][]float64{{10}},
		Links:     [][]bool{{true}},
		CacheCap:  []int{1},
		Bandwidth: []float64{100},
		EdgeCost:  [][]float64{{1}},
		BSCost:    []float64{100},
	}
	sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	yMinus := model.NewMat(1, 1)
	yMinus.Set(0, 0, 1)
	res, err := sub.Solve(yMinus)
	if err != nil {
		t.Fatal(err)
	}
	if res.Routing.At(0, 0) != 0 {
		t.Errorf("routing = %v, want 0 (demand already served)", res.Routing.At(0, 0))
	}
	// Half pre-served: can serve at most the other half.
	yMinus.Set(0, 0, 0.5)
	res, err = sub.Solve(yMinus)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Routing.At(0, 0)-0.5) > 1e-9 {
		t.Errorf("routing = %v, want 0.5", res.Routing.At(0, 0))
	}
}

func TestSolveBandwidthBinds(t *testing.T) {
	// Two MUs with different backhaul costs competing for tight bandwidth:
	// the high-d̂ MU must be preferred.
	inst := &model.Instance{
		N: 1, U: 2, F: 1,
		Demand:    [][]float64{{10}, {10}},
		Links:     [][]bool{{true, true}},
		CacheCap:  []int{1},
		Bandwidth: []float64{10},
		EdgeCost:  [][]float64{{1, 1}},
		BSCost:    []float64{200, 100},
	}
	sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sub.Solve(zeroYMinus(inst))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Routing.At(0, 0)-1) > 1e-9 {
		t.Errorf("high-value MU served %v, want 1", res.Routing.At(0, 0))
	}
	if res.Routing.At(1, 0) > 1e-9 {
		t.Errorf("low-value MU served %v, want 0 (bandwidth exhausted)", res.Routing.At(1, 0))
	}
}

func TestSolveCacheCapacityBinds(t *testing.T) {
	// Three contents, capacity 1: only the most demanded content cached.
	inst := &model.Instance{
		N: 1, U: 1, F: 3,
		Demand:    [][]float64{{1, 5, 3}},
		Links:     [][]bool{{true}},
		CacheCap:  []int{1},
		Bandwidth: []float64{100},
		EdgeCost:  [][]float64{{1}},
		BSCost:    []float64{100},
	}
	sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sub.Solve(zeroYMinus(inst))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cache[1] || res.Cache[0] || res.Cache[2] {
		t.Errorf("cache = %v, want only content 1", res.Cache)
	}
	if math.Abs(res.Routing.At(0, 1)-1) > 1e-9 {
		t.Errorf("routing[0][1] = %v, want 1", res.Routing.At(0, 1))
	}
}

func TestSolveZeroCapacitySBS(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := randomInstance(rng, 1, 3, 4)
	inst.CacheCap[0] = 0
	sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sub.Solve(zeroYMinus(inst))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gain != 0 {
		t.Errorf("gain = %v, want 0 with no cache", res.Gain)
	}
}

func TestSolveNoLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng, 1, 3, 4)
	for u := range inst.Links[0] {
		inst.Links[0][u] = false
	}
	sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sub.Solve(zeroYMinus(inst))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gain != 0 {
		t.Errorf("gain = %v, want 0 with no links", res.Gain)
	}
}

// Property: sub-problem solutions are always feasible, for random
// instances and random residual capacities.
func TestSolveFeasibilityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1, 2+rng.Intn(5), 2+rng.Intn(8))
		sub, err := NewSubproblem(inst, 0, SubproblemConfig{DualIters: 30})
		if err != nil {
			return false
		}
		yMinus := zeroYMinus(inst)
		for u := 0; u < inst.U; u++ {
			for f := 0; f < inst.F; f++ {
				yMinus.Set(u, f, rng.Float64()*1.2) // may exceed 1: cap must clamp
			}
		}
		res, err := sub.Solve(yMinus)
		if err != nil {
			return false
		}
		count := 0
		for _, cached := range res.Cache {
			if cached {
				count++
			}
		}
		if count > inst.CacheCap[0] {
			return false
		}
		var load float64
		for u := 0; u < inst.U; u++ {
			for f := 0; f < inst.F; f++ {
				v := res.Routing.At(u, f)
				if v < 0 || v > 1+1e-9 {
					return false
				}
				if v > 1e-9 && (!res.Cache[f] || !inst.Links[0][u]) {
					return false
				}
				if v > clamp01(1-yMinus.At(u, f))+1e-9 {
					return false
				}
				load += v * inst.Demand[u][f]
			}
		}
		return load <= inst.Bandwidth[0]*(1+1e-9)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRoutingGivenCachePrefersDensity(t *testing.T) {
	inst := &model.Instance{
		N: 1, U: 2, F: 2,
		Demand:    [][]float64{{4, 0}, {0, 4}},
		Links:     [][]bool{{true, true}},
		CacheCap:  []int{2},
		Bandwidth: []float64{4},
		EdgeCost:  [][]float64{{1, 1}},
		BSCost:    []float64{50, 150},
	}
	sub, err := NewSubproblem(inst, 0, SubproblemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1, 1}
	y, gain := sub.RoutingGivenCache([]bool{true, true}, caps)
	// Bandwidth 4 fits exactly one full demand; MU1 (density 149) wins.
	var served0, served1 float64
	for i, it := range sub.items {
		if it.u == 0 {
			served0 = y[i]
		} else {
			served1 = y[i]
		}
	}
	if math.Abs(served1-1) > 1e-9 || served0 > 1e-9 {
		t.Errorf("served = (%v, %v), want (0, 1)", served0, served1)
	}
	if math.Abs(gain-149*4) > 1e-6 {
		t.Errorf("gain = %v, want %v", gain, 149.0*4)
	}
}
