package transport

import (
	"context"
	"sync"
)

// Stats is a snapshot of a CountingEndpoint's traffic counters.
type Stats struct {
	// SentMessages/RecvMessages count Send and Recv completions;
	// SentBytes/RecvBytes sum the payload sizes (protocol headers are
	// transport-specific and excluded, so the numbers are comparable
	// between the in-memory and TCP transports).
	SentMessages, RecvMessages int64
	SentBytes, RecvBytes       int64
}

// CountingEndpoint wraps an Endpoint with traffic accounting. The
// distributed runtime uses it to report how much routing information
// actually crosses the network — the quantity LPPM is protecting.
type CountingEndpoint struct {
	inner Endpoint

	mu    sync.Mutex
	stats Stats
}

var _ Endpoint = (*CountingEndpoint)(nil)

// NewCountingEndpoint wraps inner.
func NewCountingEndpoint(inner Endpoint) *CountingEndpoint {
	return &CountingEndpoint{inner: inner}
}

// Name implements Endpoint.
func (e *CountingEndpoint) Name() string { return e.inner.Name() }

// Send implements Endpoint, counting successful sends.
func (e *CountingEndpoint) Send(ctx context.Context, to string, m Message) error {
	if err := e.inner.Send(ctx, to, m); err != nil {
		return err
	}
	e.mu.Lock()
	e.stats.SentMessages++
	e.stats.SentBytes += int64(len(m.Payload))
	e.mu.Unlock()
	return nil
}

// Recv implements Endpoint, counting successful receives.
func (e *CountingEndpoint) Recv(ctx context.Context) (Message, error) {
	m, err := e.inner.Recv(ctx)
	if err != nil {
		return m, err
	}
	e.mu.Lock()
	e.stats.RecvMessages++
	e.stats.RecvBytes += int64(len(m.Payload))
	e.mu.Unlock()
	return m, nil
}

// Close implements Endpoint.
func (e *CountingEndpoint) Close() error { return e.inner.Close() }

// Stats returns a snapshot of the counters.
func (e *CountingEndpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
