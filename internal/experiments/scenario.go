// Package experiments regenerates every figure of the paper's evaluation
// (§V) from the reproduced system: the synthetic trending-video workload
// (Fig. 2), the privacy-budget sweep (Fig. 3), the MU-count sweep (Fig. 4),
// the link-count sweep (Fig. 5) and the bandwidth sweep (Fig. 6), plus the
// extension experiments E7 (optimality gap vs the MILP oracle) and E8
// (convergence traces). Results come back as metrics.Table values that
// cmd/benchfig renders as text or CSV.
package experiments

import (
	"fmt"

	"edgecache/internal/model"
	"edgecache/internal/topology"
	"edgecache/internal/trace"
)

// Scenario describes one experiment configuration following the paper's
// §V-A setup: 3 SBSs serving 30 MU groups over 40 random links, 50
// contents from a trending-video trace, bandwidth 1000 per SBS, d_nu = 1,
// d̂_u ~ U[100, 150].
type Scenario struct {
	// SBSs, Groups, LinkCount and Videos set the topology and catalog
	// sizes (paper defaults: 3, 30, 40, 50).
	SBSs, Groups, LinkCount, Videos int
	// CachePerSBS is C_n. The paper does not state it; 10 of 50 contents
	// makes the caching decision non-trivial (see EXPERIMENTS.md).
	CachePerSBS int
	// Bandwidth is B_n in request units (paper: 1000).
	Bandwidth float64
	// TargetDemand rescales the raw 30-minute view counts so the aggregate
	// request rate is commensurate with the bandwidths. The paper plots
	// bandwidth effects up to ~2500 units with a knee near 1500 per SBS
	// (Fig. 6), implying an aggregate demand around 4500 units; the raw
	// view counts (≈600k) are scaled down to this.
	TargetDemand float64
	// Exponent is the Zipf popularity decay of the synthetic trace. The
	// paper's Fig. 2 head (>140k) and tail (a few thousand) pin it to
	// roughly 0.9-1.1 over 50 videos; see EXPERIMENTS.md for the
	// calibration.
	Exponent float64
	// EdgeCost is the uniform d_nu (paper: 1). BSCostLo/Hi bound the
	// uniform d̂_u draw (paper: 100, 150).
	EdgeCost           float64
	BSCostLo, BSCostHi float64
	// CustomViews, when non-empty, replaces the synthetic trace with an
	// externally supplied view-count vector (e.g. a real trace loaded via
	// trace.LoadViewsCSV). Its length overrides Videos.
	CustomViews []float64
	// Seed derives all randomness (trace jitter, demand split, links,
	// BS costs) through fixed offsets, so a Scenario is one deterministic
	// instance.
	Seed int64
}

// DefaultScenario returns the paper's §V-A configuration.
func DefaultScenario() Scenario {
	return Scenario{
		SBSs:         3,
		Groups:       30,
		LinkCount:    40,
		Videos:       50,
		CachePerSBS:  10,
		Bandwidth:    1000,
		TargetDemand: 4500,
		Exponent:     0.9,
		EdgeCost:     1,
		BSCostLo:     100,
		BSCostHi:     150,
		Seed:         1,
	}
}

// Views synthesizes the scenario's trending-video view counts (the Fig. 2
// series).
func (s Scenario) Views() ([]float64, error) {
	if len(s.CustomViews) > 0 {
		return append([]float64(nil), s.CustomViews...), nil
	}
	cfg := trace.DefaultTrendingConfig()
	cfg.Videos = s.Videos
	cfg.Seed = s.Seed
	if s.Exponent > 0 {
		cfg.Exponent = s.Exponent
	}
	return trace.TrendingVideos(cfg)
}

// Build materializes the scenario as a model.Instance.
func (s Scenario) Build() (*model.Instance, error) {
	if len(s.CustomViews) > 0 {
		s.Videos = len(s.CustomViews)
	}
	if s.SBSs <= 0 || s.Groups <= 0 || s.Videos <= 0 {
		return nil, fmt.Errorf("experiments: scenario dimensions must be positive: %+v", s)
	}
	views, err := s.Views()
	if err != nil {
		return nil, err
	}
	var totalViews float64
	for _, v := range views {
		totalViews += v
	}
	if s.TargetDemand <= 0 {
		return nil, fmt.Errorf("experiments: TargetDemand must be positive, got %v", s.TargetDemand)
	}
	scale := s.TargetDemand / totalViews

	demand, err := trace.DemandMatrix(views, s.Groups, scale, s.Seed+1)
	if err != nil {
		return nil, err
	}
	// Links are drawn uniformly at random without a coverage guarantee,
	// matching the paper's "total 40 links between MUs and SBSs"; MU
	// groups that end up unlinked are served by the BS only. (Forcing
	// coverage would change methodology mid-sweep in Fig. 5, whose low
	// end has fewer links than groups.)
	links, err := topology.RandomLinks(topology.RandomLinksConfig{
		SBSs:       s.SBSs,
		Groups:     s.Groups,
		TotalLinks: s.LinkCount,
		Seed:       s.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	bsCosts, err := topology.UniformBSCosts(s.Groups, s.BSCostLo, s.BSCostHi, s.Seed+3)
	if err != nil {
		return nil, err
	}
	edgeCosts, err := topology.ConstantEdgeCosts(s.SBSs, s.Groups, s.EdgeCost)
	if err != nil {
		return nil, err
	}

	inst := &model.Instance{
		N: s.SBSs, U: s.Groups, F: s.Videos,
		Demand:    demand,
		Links:     links,
		CacheCap:  make([]int, s.SBSs),
		Bandwidth: make([]float64, s.SBSs),
		EdgeCost:  edgeCosts,
		BSCost:    bsCosts,
	}
	for n := 0; n < s.SBSs; n++ {
		inst.CacheCap[n] = s.CachePerSBS
		inst.Bandwidth[n] = s.Bandwidth
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: built instance invalid: %w", err)
	}
	return inst, nil
}
