// Command benchfig regenerates the paper's evaluation figures (§V) as text
// tables, optionally writing CSV files for plotting.
//
// Usage:
//
//	benchfig -fig 3                 # one figure (2..6)
//	benchfig -all                   # figures 2..6
//	benchfig -summary               # §V headline percentages
//	benchfig -extra                 # E7 optimality gap + E8 convergence
//	benchfig -all -csv out/         # also write out/fig<N>.csv
//	benchfig -seeds 1,2,3,4,5       # average over more seeds
//	benchfig -epsilon 0.5 -delta .3 # non-Fig.3 privacy parameters
//	benchfig -bench-json BENCH.json # DUA hot-path microbenchmarks as JSON
//	benchfig -bench-parallel BENCH_parallel.json   # parallel-engine scaling report
//	benchfig -bench-parallel new.json -bench-baseline BENCH_parallel.json  # CI regression smoke
//	benchfig -bench-incremental BENCH_incremental.json  # dirty-set memo speedup report
//	benchfig -bench-incremental new.json -bench-baseline BENCH_incremental.json
//	benchfig -summary -cpuprofile cpu.pprof -memprofile mem.pprof -trace trace.out
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"edgecache/internal/experiments"
	"edgecache/internal/metrics"
	"edgecache/internal/plot"
	"edgecache/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchfig", flag.ContinueOnError)
	var (
		fig       = fs.Int("fig", 0, "figure to regenerate (2..6)")
		all       = fs.Bool("all", false, "regenerate figures 2..6")
		summary   = fs.Bool("summary", false, "print the §V headline summary")
		extra     = fs.Bool("extra", false, "run extension experiments E7 and E8")
		ablations = fs.Bool("ablations", false, "run ablation experiments E9-E16")
		csvDir    = fs.String("csv", "", "directory to write CSV copies into")
		seeds     = fs.String("seeds", "1,2,3", "comma-separated scenario seeds")
		epsilon   = fs.Float64("epsilon", 0.1, "privacy budget ε for figures 4-6")
		delta     = fs.Float64("delta", 0.5, "LPPM Laplace component factor δ")
		trials    = fs.Int("gap-trials", 5, "trials for the E7 optimality-gap experiment")
		plotFigs  = fs.Bool("plot", false, "render figures 3-6 as ASCII charts too")
		benchJSON = fs.String("bench-json", "", "run the DUA hot-path microbenchmarks and write JSON to this path (\"-\" for stdout)")
		benchPar  = fs.String("bench-parallel", "", "run the parallel sweep-engine scaling benchmark and write JSON to this path (\"-\" for stdout)")
		benchIncr = fs.String("bench-incremental", "", "run the incremental dirty-set sweep benchmark and write JSON to this path (\"-\" for stdout)")
		benchBase = fs.String("bench-baseline", "", "with -bench-parallel or -bench-incremental: fail on >20% speedup/alloc regression vs this committed baseline (e.g. BENCH_parallel.json)")
		benchWrk  = fs.String("bench-workers", "1,2,4,8", "worker counts measured by -bench-parallel")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile (post-GC live set) to this file at exit")
		traceOut  = fs.String("trace", "", "write a runtime execution trace of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := prof.Start(*cpuProf, *memProf, *traceOut)
	if err != nil {
		return err
	}
	defer sess.Stop()
	runProfiled := func(fn func() error) error {
		if err := fn(); err != nil {
			return err
		}
		return sess.Stop()
	}
	if *benchJSON != "" {
		return runProfiled(func() error { return runBenchJSON(*benchJSON) })
	}
	if *benchPar != "" && *benchIncr != "" {
		return fmt.Errorf("-bench-parallel and -bench-incremental are mutually exclusive")
	}
	if *benchPar != "" {
		return runProfiled(func() error { return runParallelBench(*benchPar, *benchBase, *benchWrk) })
	}
	if *benchIncr != "" {
		return runProfiled(func() error { return runIncrementalBench(*benchIncr, *benchBase) })
	}
	if *benchBase != "" {
		return fmt.Errorf("-bench-baseline requires -bench-parallel or -bench-incremental")
	}
	if !*all && *fig == 0 && !*summary && !*extra && !*ablations {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -fig N, -all, -summary, -extra or -ablations")
	}

	h := experiments.DefaultHarness()
	h.Epsilon = *epsilon
	h.Delta = *delta
	parsedSeeds, err := parseSeeds(*seeds)
	if err != nil {
		return err
	}
	h.Seeds = parsedSeeds

	emit := func(name string, tb *metrics.Table) error {
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		return nil
	}

	figures := map[int]func() (*metrics.Table, error){
		2: h.Fig2,
		3: func() (*metrics.Table, error) { return h.Fig3(nil) },
		4: func() (*metrics.Table, error) { return h.Fig4(nil) },
		5: func() (*metrics.Table, error) { return h.Fig5(nil) },
		6: func() (*metrics.Table, error) { return h.Fig6(nil) },
	}

	var wanted []int
	switch {
	case *all:
		wanted = []int{2, 3, 4, 5, 6}
	case *fig != 0:
		if _, ok := figures[*fig]; !ok {
			return fmt.Errorf("unknown figure %d (valid: 2..6)", *fig)
		}
		wanted = []int{*fig}
	}
	for _, n := range wanted {
		tb, err := figures[n]()
		if err != nil {
			return fmt.Errorf("figure %d: %w", n, err)
		}
		if err := emit(fmt.Sprintf("fig%d", n), tb); err != nil {
			return err
		}
		if *plotFigs && n >= 3 {
			chart, err := renderFigureChart(tb)
			if err != nil {
				return fmt.Errorf("figure %d chart: %w", n, err)
			}
			fmt.Println(chart)
		}
	}

	if *summary {
		tb, err := h.Summary()
		if err != nil {
			return fmt.Errorf("summary: %w", err)
		}
		if err := emit("summary", tb); err != nil {
			return err
		}
	}
	if *extra {
		tb, err := h.OptimalityGap(*trials)
		if err != nil {
			return fmt.Errorf("E7: %w", err)
		}
		if err := emit("e7_optimality_gap", tb); err != nil {
			return err
		}
		tb, err = h.Convergence()
		if err != nil {
			return fmt.Errorf("E8: %w", err)
		}
		if err := emit("e8_convergence", tb); err != nil {
			return err
		}
	}
	if *ablations {
		runs := []struct {
			name string
			fn   func() (*metrics.Table, error)
		}{
			{"e9_restarts", func() (*metrics.Table, error) { return h.RestartAblation(4) }},
			{"e10_jacobi", h.JacobiAblation},
			{"e11_noise_families", func() (*metrics.Table, error) { return h.NoiseFamilyAblation(nil) }},
			{"e12_multibs", h.MultiBSAblation},
			{"e13_fluid_validation", func() (*metrics.Table, error) { return h.FluidValidation(0) }},
			{"e14_churn", func() (*metrics.Table, error) { return h.ChurnStudy(6, 5) }},
			{"e15_reconstruction", func() (*metrics.Table, error) { return h.ReconstructionAttack(nil) }},
			{"e16_cache_policies", h.CachePolicyAblation},
		}
		for _, r := range runs {
			tb, err := r.fn()
			if err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
			if err := emit(r.name, tb); err != nil {
				return err
			}
		}
	}
	return sess.Stop()
}

// renderFigureChart turns a figure table (numeric sweep column followed by
// LPPM/Optimum/LRFU cost columns) into an ASCII line chart.
func renderFigureChart(tb *metrics.Table) (string, error) {
	cols := tb.Columns()
	if len(cols) < 4 {
		return "", fmt.Errorf("table %q has %d columns, want ≥ 4", tb.Title, len(cols))
	}
	parse := func(row, col int) (float64, error) {
		return strconv.ParseFloat(tb.Cell(row, col), 64)
	}
	series := make([]plot.Series, 3)
	for i := range series {
		series[i].Name = cols[i+1]
	}
	for row := 0; row < tb.NumRows(); row++ {
		x, err := parse(row, 0)
		if err != nil {
			return "", err
		}
		for i := range series {
			y, err := parse(row, i+1)
			if err != nil {
				return "", err
			}
			series[i].X = append(series[i].X, x)
			series[i].Y = append(series[i].Y, y)
		}
	}
	// Figure 3's ε axis spans four decades: chart it in log10.
	if cols[0] == "epsilon" {
		for i := range series {
			for j := range series[i].X {
				series[i].X[j] = math.Log10(series[i].X[j])
			}
		}
	}
	return plot.Lines(plot.Config{Title: tb.Title + " (chart)", YLabel: "total serving cost"}, series...)
}

func parseSeeds(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	var seeds []int64
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid seed %q: %w", p, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return seeds, nil
}
