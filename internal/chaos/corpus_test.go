package chaos

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCorpusCommitted fails when a fuzz target loses its committed seeds
// under testdata/fuzz: plain `go test` (short mode included) replays
// them, so they are part of the regression suite.
func TestCorpusCommitted(t *testing.T) {
	for _, name := range []string{"FuzzSpec", "FuzzProcSpec", "FuzzSpecRoundTrip", "FuzzProcSpecRoundTrip"} {
		entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", name))
		if err != nil || len(entries) == 0 {
			t.Errorf("no committed seed corpus for %s (err=%v)", name, err)
		}
	}
}
