package model

import (
	"fmt"
	"math"
)

// This file is the flat dense-tensor substrate the solver layers run on.
// The hot paths of the repository — cost evaluation (eq. 5-7), the
// Gauss-Seidel sweep (Algorithm 1) and the per-SBS sub-problem — iterate
// U×F and N×U×F arrays billions of times at scale. Nested slices
// ([][]float64, [][][]float64) put every row behind a pointer: loads miss
// the cache, bounds checks repeat per level, and building one requires one
// allocation per row. Mat and Tensor3 store the same data in a single
// contiguous []float64 with stride indexing, so a full traversal is one
// linear scan and building one is a single allocation.
//
// Stride convention (row-major, matching the paper's index order n, u, f):
//
//	Mat:     element (u, f)    lives at Data[u*F + f]
//	Tensor3: element (n, u, f) lives at Data[(n*U + u)*F + f]
//
// Both types are value types holding a slice header: copying a Mat copies
// the header, not the data, exactly like a slice. Views returned by Row and
// SBSRow alias the backing array — mutating a view mutates the tensor.

// Mat is a dense U×F matrix over a single contiguous backing slice. The
// zero value is an empty matrix; use NewMat for a sized one.
type Mat struct {
	// U and F are the row and column counts.
	U, F int
	// Data is the row-major backing storage, len U·F. Direct access is
	// allowed only inside internal/model (the flataccess analyzer enforces
	// this); everything else goes through At/Set/Add/Row or a dedicated
	// accessor added here.
	Data []float64
}

// NewMat returns a zeroed U×F matrix backed by one allocation.
func NewMat(u, f int) Mat {
	return Mat{U: u, F: f, Data: make([]float64, u*f)}
}

// MatFromRows copies a nested [][]float64 into a flat Mat, validating that
// the rows are rectangular. It is the conversion used at serialization and
// transport boundaries, where the wire format stays nested for stability.
func MatFromRows(rows [][]float64) (Mat, error) {
	u := len(rows)
	if u == 0 {
		return Mat{}, nil
	}
	f := len(rows[0])
	m := NewMat(u, f)
	for i, row := range rows {
		if len(row) != f {
			return Mat{}, fmt.Errorf("model: row %d has %d entries, want %d", i, len(row), f)
		}
		copy(m.Row(i), row)
	}
	return m, nil
}

// At returns element (u, f).
//
//edgecache:noalloc
func (m Mat) At(u, f int) float64 { return m.Data[u*m.F+f] }

// Set stores v at element (u, f).
//
//edgecache:noalloc
func (m Mat) Set(u, f int, v float64) { m.Data[u*m.F+f] = v }

// Add accumulates v into element (u, f).
//
//edgecache:noalloc
func (m Mat) Add(u, f int, v float64) { m.Data[u*m.F+f] += v }

// Row returns row u as a slice view aliasing the backing array.
//
//edgecache:noalloc
func (m Mat) Row(u int) []float64 { return m.Data[u*m.F : (u+1)*m.F : (u+1)*m.F] }

// Rows materializes the matrix as a fresh nested [][]float64 (one backing
// allocation plus the row headers). Used at codec/transport boundaries and
// by instrumentation taps; not for hot paths.
func (m Mat) Rows() [][]float64 {
	rows := make([][]float64, m.U)
	backing := append([]float64(nil), m.Data...)
	for u := range rows {
		rows[u], backing = backing[:m.F:m.F], backing[m.F:]
	}
	return rows
}

// Clone returns a deep copy.
func (m Mat) Clone() Mat {
	return Mat{U: m.U, F: m.F, Data: append([]float64(nil), m.Data...)}
}

// CopyFrom overwrites m with src's contents. Shapes must match.
//
//edgecache:noalloc
func (m Mat) CopyFrom(src Mat) {
	if m.U != src.U || m.F != src.F {
		panic(fmt.Sprintf("model: CopyFrom shape mismatch: %dx%d vs %dx%d", m.U, m.F, src.U, src.F))
	}
	copy(m.Data, src.Data)
}

// AddFrom accumulates src into m element-wise. Shapes must match. This is
// the whole-matrix accessor the multi-BS sweep uses to fold a foreign
// aggregate into y⁻ without touching the backing slice directly.
//
//edgecache:noalloc
func (m Mat) AddFrom(src Mat) {
	if m.U != src.U || m.F != src.F {
		panic(fmt.Sprintf("model: AddFrom shape mismatch: %dx%d vs %dx%d", m.U, m.F, src.U, src.F))
	}
	for i, v := range src.Data {
		m.Data[i] += v
	}
}

// Zero clears every element in place.
//
//edgecache:noalloc
func (m Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// ShapeEquals reports whether m and o have the same dimensions.
func (m Mat) ShapeEquals(o Mat) bool { return m.U == o.U && m.F == o.F }

// BitsEqual reports whether m and o hold bitwise-identical values (an
// exact Float64bits compare, so -0 ≠ +0 and NaN == NaN with the same
// payload). The sweep engines use it for dirty-set change detection, where
// "no change" must mean "a recompute reproduces these exact bits" — an
// epsilon compare would let drift accumulate silently. Shapes must match.
//
//edgecache:noalloc
func (m Mat) BitsEqual(o Mat) bool {
	if m.U != o.U || m.F != o.F {
		panic(fmt.Sprintf("model: BitsEqual shape mismatch: %dx%d vs %dx%d", m.U, m.F, o.U, o.F))
	}
	for i, v := range m.Data {
		if math.Float64bits(v) != math.Float64bits(o.Data[i]) {
			return false
		}
	}
	return true
}

// Tensor3 is a dense N×U×F tensor over a single contiguous backing slice.
type Tensor3 struct {
	// N, U and F are the extents of the three axes.
	N, U, F int
	// Data is the row-major backing storage, len N·U·F.
	Data []float64
}

// NewTensor3 returns a zeroed N×U×F tensor backed by one allocation.
func NewTensor3(n, u, f int) Tensor3 {
	return Tensor3{N: n, U: u, F: f, Data: make([]float64, n*u*f)}
}

// At returns element (n, u, f).
//
//edgecache:noalloc
func (t Tensor3) At(n, u, f int) float64 { return t.Data[(n*t.U+u)*t.F+f] }

// Set stores v at element (n, u, f).
//
//edgecache:noalloc
func (t Tensor3) Set(n, u, f int, v float64) { t.Data[(n*t.U+u)*t.F+f] = v }

// SBSRow returns the U×F block of SBS n as a Mat view aliasing the backing
// array: mutations through the view mutate the tensor. This is the accessor
// that replaces `Route[n]` from the nested-slice era.
//
//edgecache:noalloc
func (t Tensor3) SBSRow(n int) Mat {
	base := n * t.U * t.F
	return Mat{U: t.U, F: t.F, Data: t.Data[base : base+t.U*t.F : base+t.U*t.F]}
}

// Clone returns a deep copy.
func (t Tensor3) Clone() Tensor3 {
	return Tensor3{N: t.N, U: t.U, F: t.F, Data: append([]float64(nil), t.Data...)}
}

// Zero clears every element in place.
func (t Tensor3) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}
