// Package atomicsrc deliberately mixes sync/atomic and plain access on
// one location, plus the sanctioned shapes the atomicmix analyzer
// approves. The edgelint driver skips everything under
// internal/lint/fixtures.
package atomicsrc

import "sync/atomic"

// Counter guards hits with package-level atomics but leaks plain accesses
// in Snapshot and Reset.
type Counter struct {
	hits int64
	name string
}

// Incr is the sanctioned atomic path; the &c.hits operand itself is not a
// plain access.
func (c *Counter) Incr() {
	atomic.AddInt64(&c.hits, 1)
}

// GoodLoad stays inside sync/atomic.
func (c *Counter) GoodLoad() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Snapshot reads hits plainly — the race the analyzer exists for.
func (c *Counter) Snapshot() int64 {
	return c.hits // want `hits is accessed with sync/atomic elsewhere`
}

// Reset writes plainly, racing every concurrent atomic add.
func (c *Counter) Reset() {
	c.hits = 0 // want `hits is accessed with sync/atomic elsewhere`
}

// NewCounter initializes through a composite-literal key, which happens
// before any concurrency and is exempt.
func NewCounter(name string) *Counter {
	return &Counter{hits: 0, name: name}
}

// TypedCounter uses the typed atomics, which enforce the discipline at
// the type level and are outside the analyzer's net.
type TypedCounter struct {
	hits atomic.Int64
}

// Incr and Get may coexist freely: atomic.Int64 has no plain access path.
func (t *TypedCounter) Incr() { t.hits.Add(1) }

// Get reads through the typed atomic.
func (t *TypedCounter) Get() int64 { return t.hits.Load() }
