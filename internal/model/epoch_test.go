package model

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

// This file pins the AggregateTracker epoch semantics the core dirty-set
// memo is keyed on (DESIGN.md "Incremental sweeps"): every mutating
// accessor must bump exactly the rows and blocks whose bits it changed —
// no more (a spurious bump only costs a wasted re-solve, but it defeats
// the optimisation) and no less (a missed bump breaks bit-identity).

// trackerSnap captures everything the epoch oracle compares: the aggregate
// row bits, the per-SBS routing block bits, and the epoch metadata.
type trackerSnap struct {
	aggBits   [][]uint64
	blockBits [][]uint64
	rowEp     []uint64
	blockEp   []uint64
	gen       uint64
}

func snapTracker(in *Instance, t *AggregateTracker, y *RoutingPolicy) trackerSnap {
	s := trackerSnap{gen: t.Gen()}
	agg := t.Aggregate()
	for u := 0; u < in.U; u++ {
		row := make([]uint64, in.F)
		for f, v := range agg.Row(u) {
			row[f] = math.Float64bits(v)
		}
		s.aggBits = append(s.aggBits, row)
		s.rowEp = append(s.rowEp, t.RowEpoch(u))
	}
	for n := 0; n < in.N; n++ {
		block := y.SBS(n)
		bits := make([]uint64, len(block.Data))
		for i, v := range block.Data {
			bits[i] = math.Float64bits(v)
		}
		s.blockBits = append(s.blockBits, bits)
		s.blockEp = append(s.blockEp, t.BlockEpoch(n))
	}
	return s
}

// rowChanged reports whether aggregate row u's bits differ from the snap.
func (s trackerSnap) rowChanged(t *AggregateTracker, u int) bool {
	for f, v := range t.Aggregate().Row(u) {
		if math.Float64bits(v) != s.aggBits[u][f] {
			return true
		}
	}
	return false
}

// blockChanged reports whether SBS n's routing block bits differ.
func (s trackerSnap) blockChanged(y *RoutingPolicy, n int) bool {
	for i, v := range y.SBS(n).Data {
		if math.Float64bits(v) != s.blockBits[n][i] {
			return true
		}
	}
	return false
}

// checkRowEpochsExact asserts the iff contract after a row mutator:
// rowEpoch[u] moved exactly when row u's bits changed. Epochs must never
// decrease.
func checkRowEpochsExact(t *testing.T, in *Instance, tr *AggregateTracker, before trackerSnap, ctx string) {
	t.Helper()
	for u := 0; u < in.U; u++ {
		ep := tr.RowEpoch(u)
		if ep < before.rowEp[u] {
			t.Fatalf("%s: rowEpoch[%d] decreased %d -> %d", ctx, u, before.rowEp[u], ep)
		}
		bumped := ep != before.rowEp[u]
		changed := before.rowChanged(tr, u)
		if bumped != changed {
			t.Fatalf("%s: rowEpoch[%d] bumped=%v but bits changed=%v", ctx, u, bumped, changed)
		}
	}
}

// checkBlockEpochsExact asserts the iff contract for block epochs.
func checkBlockEpochsExact(t *testing.T, in *Instance, tr *AggregateTracker, y *RoutingPolicy, before trackerSnap, ctx string) {
	t.Helper()
	for n := 0; n < in.N; n++ {
		ep := tr.BlockEpoch(n)
		if ep < before.blockEp[n] {
			t.Fatalf("%s: blockEpoch[%d] decreased %d -> %d", ctx, n, before.blockEp[n], ep)
		}
		bumped := ep != before.blockEp[n]
		changed := before.blockChanged(y, n)
		if bumped != changed {
			t.Fatalf("%s: blockEpoch[%d] bumped=%v but bits changed=%v", ctx, n, bumped, changed)
		}
	}
}

// installVia runs one well-formed YMinusInto/Install round for SBS n.
func installVia(in *Instance, tr *AggregateTracker, y *RoutingPolicy, n int, upload Mat) {
	yMinus := NewMat(in.U, in.F)
	tr.BeginPhase()
	tr.YMinusInto(in, y, n, yMinus)
	tr.Install(in, y, n, yMinus, upload)
}

// TestEpochInstallBumpsExactlyChangedRows: an install bumps the block and
// exactly the linked rows whose aggregate bits moved; re-installing the
// identical block bumps nothing (the converged-SBS case the memo lives on).
func TestEpochInstallBumpsExactlyChangedRows(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	tr := NewAggregateTracker(in)

	upload := NewMat(in.U, in.F)
	upload.Row(0)[1] = 0.25 // linked row, changes
	upload.Row(2)[3] = 0.5  // linked row, changes
	// Row 1 stays all-zero: its aggregate bits cannot move.

	before := snapTracker(in, tr, y)
	installVia(in, tr, y, 0, upload)
	checkRowEpochsExact(t, in, tr, before, "first install")
	checkBlockEpochsExact(t, in, tr, y, before, "first install")
	if tr.RowEpoch(0) == before.rowEp[0] || tr.RowEpoch(2) == before.rowEp[2] {
		t.Fatal("install did not bump the rows it changed")
	}
	if tr.RowEpoch(1) != before.rowEp[1] {
		t.Fatal("install bumped an untouched row")
	}
	if tr.BlockEpoch(0) == before.blockEp[0] {
		t.Fatal("install did not bump the written block")
	}
	if tr.BlockEpoch(1) != before.blockEp[1] {
		t.Fatal("install bumped a foreign block")
	}

	// The round-trip (agg − y_0) + y_0 reproduces the previous bits here,
	// so a converged re-install must leave every epoch untouched.
	quiet := snapTracker(in, tr, y)
	installVia(in, tr, y, 0, upload)
	checkRowEpochsExact(t, in, tr, quiet, "converged re-install")
	checkBlockEpochsExact(t, in, tr, y, quiet, "converged re-install")
	for u := 0; u < in.U; u++ {
		if tr.RowEpoch(u) != quiet.rowEp[u] {
			t.Fatalf("converged re-install bumped rowEpoch[%d]", u)
		}
	}
	if tr.BlockEpoch(0) != quiet.blockEp[0] {
		t.Fatal("converged re-install bumped the block epoch")
	}
}

// TestEpochInstallUnlinkedRowUntouched: SBS 1 is not linked to MU 2, so an
// install on SBS 1 must never stamp row 2 — even with garbage in the
// upload's unlinked row (the aggregate masks it away).
func TestEpochInstallUnlinkedRowUntouched(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	tr := NewAggregateTracker(in)

	upload := NewMat(in.U, in.F)
	upload.Row(0)[0] = 0.5
	upload.Row(2)[2] = 0.75 // unlinked for SBS 1: stored in the block, masked in the aggregate

	before := snapTracker(in, tr, y)
	installVia(in, tr, y, 1, upload)
	checkRowEpochsExact(t, in, tr, before, "unlinked install")
	if tr.RowEpoch(2) != before.rowEp[2] {
		t.Fatal("install on an unlinked SBS stamped the unlinked row")
	}
	if tr.RowEpoch(0) == before.rowEp[0] {
		t.Fatal("install did not stamp the linked row it changed")
	}
	if tr.BlockEpoch(1) == before.blockEp[1] {
		t.Fatal("block write did not stamp the block epoch")
	}
}

// TestEpochRebuildRowsExact: RebuildRows (and the scratch variant) stamp
// exactly the rows whose recomputed bits differ, and a second rebuild of
// the same range is a fixed point that stamps nothing.
func TestEpochRebuildRowsExact(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	tr := NewAggregateTracker(in)

	// Mutate y outside the tracker, then merge: only row 1 changes.
	y.Set(0, 1, 2, 0.4)
	before := snapTracker(in, tr, y)
	tr.BeginPhase()
	tr.RebuildRows(in, y, 0, in.U)
	checkRowEpochsExact(t, in, tr, before, "rebuild")
	if tr.RowEpoch(1) == before.rowEp[1] {
		t.Fatal("rebuild did not stamp the changed row")
	}
	if tr.RowEpoch(0) != before.rowEp[0] || tr.RowEpoch(2) != before.rowEp[2] {
		t.Fatal("rebuild stamped an unchanged row")
	}

	// Fixed point: rebuilding again (serial or sharded scratch) is quiet.
	quiet := snapTracker(in, tr, y)
	tr.BeginPhase()
	scratch := make([]float64, in.F)
	tr.RebuildRowsScratch(in, y, 0, in.U, scratch)
	checkRowEpochsExact(t, in, tr, quiet, "rebuild fixed point")
	for u := 0; u < in.U; u++ {
		if tr.RowEpoch(u) != quiet.rowEp[u] {
			t.Fatalf("idempotent rebuild stamped rowEpoch[%d]", u)
		}
	}
}

// TestEpochRepairOverserveExact: the repair stamps exactly the overserved
// rows and exactly the blocks whose nonzero shares it scaled — a linked
// block with a zero share keeps both its bits and its epoch.
func TestEpochRepairOverserveExact(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	tr := NewAggregateTracker(in)

	// Row 0 overserved by SBS 0 alone; SBS 1 is linked to row 0 but holds
	// a zero share there. Row 1 is served within bounds.
	y.Set(0, 0, 0, 1.5)
	y.Set(1, 1, 1, 0.9)
	tr.Reset(in, y)

	before := snapTracker(in, tr, y)
	tr.BeginPhase()
	tr.RepairOverserveRows(in, y, 0, in.U)
	checkRowEpochsExact(t, in, tr, before, "repair")
	checkBlockEpochsExact(t, in, tr, y, before, "repair")
	if tr.RowEpoch(0) == before.rowEp[0] {
		t.Fatal("repair did not stamp the overserved row")
	}
	if tr.RowEpoch(1) != before.rowEp[1] {
		t.Fatal("repair stamped an in-bounds row")
	}
	if tr.BlockEpoch(0) == before.blockEp[0] {
		t.Fatal("repair did not stamp the scaled block")
	}
	if tr.BlockEpoch(1) != before.blockEp[1] {
		t.Fatal("repair stamped a block whose shares it never touched")
	}
	if got := y.At(0, 0, 0); got > 1+1e-12 {
		t.Fatalf("repair left an overserve: %v", got)
	}

	// Already-repaired rows are a fixed point.
	quiet := snapTracker(in, tr, y)
	tr.BeginPhase()
	tr.RepairOverserveRows(in, y, 0, in.U)
	for u := 0; u < in.U; u++ {
		if tr.RowEpoch(u) != quiet.rowEp[u] {
			t.Fatalf("idempotent repair stamped rowEpoch[%d]", u)
		}
	}
	for n := 0; n < in.N; n++ {
		if tr.BlockEpoch(n) != quiet.blockEp[n] {
			t.Fatalf("idempotent repair stamped blockEpoch[%d]", n)
		}
	}
}

// TestEpochResetRestoreInvalidate: wholesale re-synchronization must bump
// the generation and stamp every row and block — even when the restored
// bits are identical — so any memo keyed on the old tracker state misses.
func TestEpochResetRestoreInvalidate(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	tr := NewAggregateTracker(in)
	y.Set(0, 0, 0, 0.5)
	tr.Reset(in, y)

	for _, tc := range []struct {
		name string
		call func()
	}{
		{"reset", func() { tr.Reset(in, y) }},
		{"restore-identical", func() {
			clone := NewMat(in.U, in.F)
			clone.CopyFrom(tr.Aggregate())
			tr.Restore(clone)
		}},
	} {
		before := snapTracker(in, tr, y)
		tc.call()
		if tr.Gen() == before.gen {
			t.Fatalf("%s did not bump the generation", tc.name)
		}
		for u := 0; u < in.U; u++ {
			if tr.RowEpoch(u) <= before.rowEp[u] {
				t.Fatalf("%s left rowEpoch[%d] at %d", tc.name, u, tr.RowEpoch(u))
			}
		}
		for n := 0; n < in.N; n++ {
			if tr.BlockEpoch(n) <= before.blockEp[n] {
				t.Fatalf("%s left blockEpoch[%d] at %d", tc.name, n, tr.BlockEpoch(n))
			}
		}
	}
}

// TestEpochMarkBlockDirtyAndLinkedRowMax: MarkBlockDirty stamps only its
// block, and LinkedRowEpochMax moves exactly when a linked row moved —
// the two halves of the core memo key.
func TestEpochMarkBlockDirtyAndLinkedRowMax(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	tr := NewAggregateTracker(in)

	before := snapTracker(in, tr, y)
	max0, max1 := tr.LinkedRowEpochMax(in, 0), tr.LinkedRowEpochMax(in, 1)

	tr.BeginPhase()
	tr.MarkBlockDirty(1)
	if tr.BlockEpoch(1) == before.blockEp[1] {
		t.Fatal("MarkBlockDirty did not stamp its block")
	}
	if tr.BlockEpoch(0) != before.blockEp[0] {
		t.Fatal("MarkBlockDirty stamped a foreign block")
	}
	for u := 0; u < in.U; u++ {
		if tr.RowEpoch(u) != before.rowEp[u] {
			t.Fatal("MarkBlockDirty stamped a row")
		}
	}

	// Row 2 is linked to SBS 0 only: changing it must move SBS 0's max and
	// leave SBS 1's untouched.
	upload := NewMat(in.U, in.F)
	upload.Row(2)[0] = 0.3
	installVia(in, tr, y, 0, upload)
	if tr.LinkedRowEpochMax(in, 0) == max0 {
		t.Fatal("linked row changed but LinkedRowEpochMax(0) did not move")
	}
	if tr.LinkedRowEpochMax(in, 1) != max1 {
		t.Fatal("LinkedRowEpochMax(1) moved without a linked-row change")
	}
}

// fuzzTrackerInstance derives a small valid instance and an op stream from
// fuzz bytes. The rng is seeded from the header so every run is
// deterministic per input.
func fuzzTrackerInstance(data []byte) (*Instance, *rand.Rand, []byte) {
	for len(data) < 4 {
		data = append(data, 0)
	}
	n := 1 + int(data[0]%3)
	u := 1 + int(data[1]%4)
	f := 1 + int(data[2]%4)
	rng := rand.New(rand.NewSource(int64(data[3]) + 1))

	in := &Instance{N: n, U: u, F: f}
	for i := 0; i < u; i++ {
		row := make([]float64, f)
		for j := range row {
			row[j] = rng.Float64() * 10
		}
		in.Demand = append(in.Demand, row)
		in.BSCost = append(in.BSCost, 50+rng.Float64()*100)
	}
	for i := 0; i < n; i++ {
		links := make([]bool, u)
		for j := range links {
			links[j] = rng.Intn(4) != 0
		}
		cost := make([]float64, u)
		for j := range cost {
			cost[j] = rng.Float64() * 5
		}
		in.Links = append(in.Links, links)
		in.EdgeCost = append(in.EdgeCost, cost)
		in.CacheCap = append(in.CacheCap, rng.Intn(f+1))
		in.Bandwidth = append(in.Bandwidth, rng.Float64()*20)
	}
	return in, rng, data[4:]
}

// FuzzTrackerEpochs drives randomized mutator sequences against the
// brute-force oracle: snapshot all aggregate-row and routing-block bits
// before each mutation, apply it, and require epoch-diff ⟺ bit-diff for
// every row and block (modulo the documented wholesale invalidations).
func FuzzTrackerEpochs(f *testing.F) {
	f.Add([]byte{2, 3, 3, 7, 0, 1, 2, 3, 4, 5, 0, 0, 2, 1})
	f.Add([]byte{1, 0, 1, 1, 0, 0})
	f.Add([]byte{2, 2, 2, 9, 0, 0, 1, 2, 0, 2, 3, 0, 4, 5, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, rng, ops := fuzzTrackerInstance(data)
		if len(ops) > 256 {
			ops = ops[:256]
		}
		y := NewRoutingPolicy(in)
		tr := NewAggregateTracker(in)
		upload := NewMat(in.U, in.F)

		for i, op := range ops {
			before := snapTracker(in, tr, y)
			var wholesale bool
			switch op % 6 {
			case 0: // install a fresh random block
				n := rng.Intn(in.N)
				for u := 0; u < in.U; u++ {
					for j, row := 0, upload.Row(u); j < in.F; j++ {
						row[j] = rng.Float64()
					}
				}
				installVia(in, tr, y, n, upload)
			case 1: // re-install the current block (converged round-trip)
				n := rng.Intn(in.N)
				upload.CopyFrom(y.SBS(n))
				installVia(in, tr, y, n, upload)
			case 2: // merge a row range
				u0 := rng.Intn(in.U)
				u1 := u0 + 1 + rng.Intn(in.U-u0)
				tr.BeginPhase()
				tr.RebuildRows(in, y, u0, u1)
			case 3: // repair a row range
				u0 := rng.Intn(in.U)
				u1 := u0 + 1 + rng.Intn(in.U-u0)
				tr.BeginPhase()
				tr.RepairOverserveRows(in, y, u0, u1)
			case 4: // wholesale re-synchronization
				wholesale = true
				if rng.Intn(2) == 0 {
					tr.Reset(in, y)
				} else {
					clone := NewMat(in.U, in.F)
					clone.CopyFrom(tr.Aggregate())
					tr.Restore(clone)
				}
			case 5: // explicit dirty mark
				n := rng.Intn(in.N)
				tr.BeginPhase()
				tr.MarkBlockDirty(n)
				if tr.BlockEpoch(n) == before.blockEp[n] {
					t.Fatalf("op %d: MarkBlockDirty(%d) did not stamp", i, n)
				}
				before.blockEp[n] = tr.BlockEpoch(n)
			}

			if wholesale {
				if tr.Gen() == before.gen {
					t.Fatalf("op %d: wholesale resync did not bump the generation", i)
				}
				for u := 0; u < in.U; u++ {
					if tr.RowEpoch(u) <= before.rowEp[u] {
						t.Fatalf("op %d: resync left rowEpoch[%d] behind", i, u)
					}
				}
				for n := 0; n < in.N; n++ {
					if tr.BlockEpoch(n) <= before.blockEp[n] {
						t.Fatalf("op %d: resync left blockEpoch[%d] behind", i, n)
					}
				}
				continue
			}
			if tr.Gen() != before.gen {
				t.Fatalf("op %d: row/block mutator bumped the generation", i)
			}
			checkRowEpochsExact(t, in, tr, before, "fuzz op")
			checkBlockEpochsExact(t, in, tr, y, before, "fuzz op")
		}
	})
}

// TestRegenEpochCorpus rewrites the committed FuzzTrackerEpochs seeds; the
// corpus files under testdata/fuzz are committed so plain `go test`
// replays them (see TestCorpusCommitted). Run with
//
//	EDGECACHE_REGEN_CORPUS=1 go test -run TestRegenEpochCorpus ./internal/model
func TestRegenEpochCorpus(t *testing.T) {
	if os.Getenv("EDGECACHE_REGEN_CORPUS") == "" {
		t.Skip("set EDGECACHE_REGEN_CORPUS=1 to rewrite testdata/fuzz seed files")
	}
	writeCorpusEntry(t, "FuzzTrackerEpochs", "seed-mixed-ops", []byte{2, 3, 3, 7, 0, 1, 2, 3, 4, 5, 0, 0, 2, 1})
	writeCorpusEntry(t, "FuzzTrackerEpochs", "seed-min-dims", []byte{1, 0, 1, 1, 0, 0})
	writeCorpusEntry(t, "FuzzTrackerEpochs", "seed-repair-heavy", []byte{2, 2, 2, 9, 0, 0, 1, 2, 0, 2, 3, 0, 4, 5, 0, 1, 2})
}
