package dp

import (
	"fmt"
	"math"
)

// PrivacyLoss is the result of an empirical privacy-loss measurement
// between the output distributions of a mechanism on two neighboring
// inputs.
type PrivacyLoss struct {
	// MaxRatio is the largest probability ratio observed between
	// histogram buckets populated by both distributions — the empirical
	// e^ε over the common support.
	MaxRatio float64
	// EscapeMass is the probability mass (averaged over both directions)
	// that one distribution places where the other has no support. A
	// mechanism with data-dependent output ranges (such as the paper's
	// per-value noise interval [0, δ·y]) leaks through this mass no
	// matter how large its noise scale is; it behaves like the δ of an
	// (ε, δ)-DP guarantee.
	EscapeMass float64
	// Buckets is the histogram resolution used.
	Buckets int
}

// EmpiricalPrivacyLoss histograms two sample sets over [lo, hi] with the
// given number of buckets and reports the maximum cross-bucket probability
// ratio (over buckets where both sides have at least minCount samples) and
// the escape mass. It is a measurement tool for tests and analyses, not a
// proof: sampling noise makes the ratio an estimate.
func EmpiricalPrivacyLoss(samplesA, samplesB []float64, lo, hi float64, buckets, minCount int) (*PrivacyLoss, error) {
	if len(samplesA) == 0 || len(samplesB) == 0 {
		return nil, fmt.Errorf("dp: both sample sets must be non-empty")
	}
	if hi <= lo {
		return nil, fmt.Errorf("dp: invalid range [%v, %v]", lo, hi)
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("dp: buckets must be positive, got %d", buckets)
	}
	if minCount <= 0 {
		minCount = 1
	}
	histA := make([]int, buckets)
	histB := make([]int, buckets)
	fill := func(hist []int, samples []float64) error {
		width := (hi - lo) / float64(buckets)
		for _, v := range samples {
			if v < lo || v > hi {
				return fmt.Errorf("dp: sample %v outside [%v, %v]", v, lo, hi)
			}
			idx := int((v - lo) / width)
			if idx >= buckets {
				idx = buckets - 1
			}
			hist[idx]++
		}
		return nil
	}
	if err := fill(histA, samplesA); err != nil {
		return nil, err
	}
	if err := fill(histB, samplesB); err != nil {
		return nil, err
	}

	res := &PrivacyLoss{Buckets: buckets, MaxRatio: 1}
	escapeA, escapeB := 0, 0
	for i := 0; i < buckets; i++ {
		a, b := histA[i], histB[i]
		switch {
		case a >= minCount && b >= minCount:
			pa := float64(a) / float64(len(samplesA))
			pb := float64(b) / float64(len(samplesB))
			ratio := math.Max(pa/pb, pb/pa)
			if ratio > res.MaxRatio {
				res.MaxRatio = ratio
			}
		case a > 0 && b == 0:
			escapeA += a
		case b > 0 && a == 0:
			escapeB += b
		}
	}
	res.EscapeMass = (float64(escapeA)/float64(len(samplesA)) +
		float64(escapeB)/float64(len(samplesB))) / 2
	return res, nil
}
