package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix forbids mixing memory models on one location: a variable or
// struct field whose address is passed to a sync/atomic package-level
// function anywhere in the module may never be read or written plainly
// anywhere else. A plain load next to atomic stores is a data race the
// race detector only catches when the schedule cooperates; the analyzer
// catches it always.
//
// The check is two-phase over the whole module: phase one records the
// types.Object behind every `&x` handed to sync/atomic (atomic.AddInt64,
// atomic.LoadUint64, atomic.CompareAndSwapPointer, ...); phase two flags
// every other appearance of those objects. Composite-literal keys are
// exempt (`s := state{seq: 0}` is initialization before the goroutines
// exist), as is the field's declaration itself. The typed atomics
// (atomic.Int64 & friends) enforce this at the type level and are the
// preferred fix.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a location accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicmix,
}

func runAtomicmix(pass *Pass) {
	for _, d := range pass.Prog.atomicResults()[pass.Pkg.Path] {
		*pass.diags = append(*pass.diags, d)
	}
}

// atomicResults runs the whole-module two-phase scan once.
func (prog *Program) atomicResults() map[string][]Diagnostic {
	prog.atomicOnce.Do(func() {
		prog.atomicDiag = map[string][]Diagnostic{}

		// Phase 1: objects used atomically, and the positions of the
		// identifiers inside sanctioned &x atomic operands.
		atomicObjs := map[types.Object]bool{}
		sanctioned := map[token.Pos]bool{}
		for _, pkg := range prog.Packages {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg, call)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
						return true
					}
					if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
						return true // typed-atomic methods carry their own discipline
					}
					for _, arg := range call.Args {
						un, ok := arg.(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						obj, pos := operandObject(pkg, un.X)
						if obj == nil {
							continue
						}
						atomicObjs[obj] = true
						sanctioned[pos] = true
					}
					return true
				})
			}
		}
		if len(atomicObjs) == 0 {
			return
		}

		// Phase 2: any other appearance of those objects is a plain
		// access.
		for _, pkg := range prog.Packages {
			for _, file := range pkg.Files {
				exemptKeys := compositeLitKeyPositions(file)
				ast.Inspect(file, func(n ast.Node) bool {
					ident, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					obj := pkg.Info.Uses[ident]
					if obj == nil || !atomicObjs[obj] {
						return true
					}
					if sanctioned[ident.Pos()] || exemptKeys[ident.Pos()] {
						return true
					}
					prog.atomicDiag[pkg.Path] = append(prog.atomicDiag[pkg.Path], Diagnostic{
						Analyzer: "atomicmix",
						Pos:      prog.Fset.Position(ident.Pos()),
						Message:  obj.Name() + " is accessed with sync/atomic elsewhere; plain reads/writes race with the atomic ops (use the typed atomics, or go through sync/atomic everywhere)",
					})
					return true
				})
			}
		}
	})
	return prog.atomicDiag
}

// operandObject resolves the object behind an atomic operand expression
// (`x` or `s.f`, possibly parenthesized) and the identifier position that
// names it.
func operandObject(pkg *Package, e ast.Expr) (types.Object, token.Pos) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pkg.Info.Uses[x], x.Pos()
		case *ast.SelectorExpr:
			return pkg.Info.Uses[x.Sel], x.Sel.Pos()
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, token.NoPos
		}
	}
}

// compositeLitKeyPositions collects the field-key identifier positions in
// composite literals: `state{seq: 0}` initializes before concurrency and
// is not a plain access.
func compositeLitKeyPositions(file *ast.File) map[token.Pos]bool {
	keys := map[token.Pos]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if ident, ok := kv.Key.(*ast.Ident); ok {
					keys[ident.Pos()] = true
				}
			}
		}
		return true
	})
	return keys
}
