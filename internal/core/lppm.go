package core

import (
	"fmt"
	"math/rand"

	"edgecache/internal/dp"
	"edgecache/internal/model"
)

// LPPM is the paper's Laplace Privacy-Preserving Mechanism (Definition 2)
// as a reusable component: it perturbs a routing block by subtracting
// bounded noise, ŷ_nuf = y_nuf − r_nuf with r drawn on [0, δ·y]. The
// default noise family is the paper's bounded Laplace with β = Δf/ε
// (Theorem 4); PrivacyConfig.Mechanism selects the Gaussian or uniform
// variants used by the noise-family ablation (the paper's §VII future
// work).
//
// The in-process Coordinator and the message-passing SBS agents in
// internal/sim share this type, so the two deployments are provably
// running the same mechanism.
type LPPM struct {
	cfg   PrivacyConfig
	beta  float64 // Laplace scale (MechanismLaplace)
	sigma float64 // Gaussian scale (MechanismGaussian)
}

// NewLPPM validates the configuration and calibrates the noise scale. When
// only a seekable Noise source is configured, the Rng is derived from it,
// so every draw advances the countable position.
func NewLPPM(cfg PrivacyConfig) (*LPPM, error) {
	if cfg.Rng == nil && cfg.Noise != nil {
		cfg.Rng = rand.New(cfg.Noise)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l := &LPPM{cfg: cfg}
	switch cfg.Mechanism {
	case MechanismLaplace:
		beta, err := dp.BetaForEpsilon(cfg.sensitivity(), cfg.Epsilon)
		if err != nil {
			return nil, err
		}
		l.beta = beta
	case MechanismGaussian:
		sigma, err := dp.GaussianMechanism{
			Sensitivity: cfg.sensitivity(),
			Epsilon:     cfg.Epsilon,
			Delta:       cfg.dpDelta(),
		}.Sigma()
		if err != nil {
			return nil, err
		}
		l.sigma = sigma
	case MechanismUniform:
		// No calibration: magnitude is set purely by δ·y.
	}
	return l, nil
}

// Beta returns the calibrated Laplace scale (zero for other mechanisms).
func (l *LPPM) Beta() float64 { return l.beta }

// Sigma returns the calibrated Gaussian scale (zero for other mechanisms).
func (l *LPPM) Sigma() float64 { return l.sigma }

// Epsilon returns the per-release privacy budget.
func (l *LPPM) Epsilon() float64 { return l.cfg.Epsilon }

// Mechanism returns the configured noise family.
func (l *LPPM) Mechanism() NoiseMechanism { return l.cfg.Mechanism }

// Perturb returns a noised copy of the routing block and records the ε
// spend under the given label (typically the SBS identifier) when an
// accountant is configured. Zero entries stay exactly zero: a demand that
// was never served leaks nothing and must not be jittered into service.
//
// Perturb allocates the returned matrix: the zero-allocation guarantee of
// the sweep loop applies to the non-private path, and a fresh copy keeps
// the clean block intact for the UploadTap ground truth.
func (l *LPPM) Perturb(label string, routing model.Mat) (model.Mat, error) {
	noised := model.NewMat(routing.U, routing.F)
	for u := 0; u < routing.U; u++ {
		src := routing.Row(u)
		dst := noised.Row(u)
		for f, v := range src {
			if v <= 0 {
				continue
			}
			r, err := l.noise(v)
			if err != nil {
				return model.Mat{}, err
			}
			dst[f] = v - r
		}
	}
	if l.cfg.Accountant != nil {
		if err := l.cfg.Accountant.Record(label, l.cfg.Epsilon); err != nil {
			return model.Mat{}, err
		}
	}
	return noised, nil
}

// noise draws the disturbance for one routing value.
func (l *LPPM) noise(y float64) (float64, error) {
	switch l.cfg.Mechanism {
	case MechanismLaplace:
		return dp.LPPMNoise(l.cfg.Rng, y, l.cfg.Delta, l.beta)
	case MechanismGaussian:
		return dp.TruncatedHalfNormal(l.cfg.Rng, l.sigma, l.cfg.Delta*y)
	case MechanismUniform:
		return l.cfg.Rng.Float64() * l.cfg.Delta * y, nil
	default:
		return 0, fmt.Errorf("core: unknown noise mechanism %v", l.cfg.Mechanism)
	}
}

// PerturbSBS is a convenience for callers that label spends by SBS index
// rather than by name.
func (l *LPPM) PerturbSBS(n int, routing model.Mat) (model.Mat, error) {
	return l.Perturb(fmt.Sprintf("sbs-%d", n), routing)
}
