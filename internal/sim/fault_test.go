package sim

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/transport"
)

// filterEndpoint drops sends selected by the predicate — deterministic
// fault injection for retransmission tests.
type filterEndpoint struct {
	transport.Endpoint
	mu   sync.Mutex
	drop func(m transport.Message) bool
}

func (f *filterEndpoint) Send(ctx context.Context, to string, m transport.Message) error {
	f.mu.Lock()
	dropped := f.drop(m)
	f.mu.Unlock()
	if dropped {
		return nil
	}
	return f.Endpoint.Send(ctx, to, m)
}

// TestAnnounceRetransmitRecoversLostAnnounce: the first announce of every
// phase is dropped; retransmission inside the phase window must recover
// each one, so the run stays bit-for-bit identical to the in-process
// coordinator — no phase is ever missed.
func TestAnnounceRetransmitRecoversLostAnnounce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inst := randomInstance(rng, 3, 5, 6)
	ctx := testCtx(t)

	hub := transport.NewHub()
	rawBs, err := hub.Register("bs", 64)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]bool)
	bsEp := &filterEndpoint{Endpoint: rawBs, drop: func(m transport.Message) bool {
		if m.Type != transport.MsgPhaseStart {
			return false
		}
		key := [2]int{m.Sweep, m.Phase}
		if !seen[key] {
			seen[key] = true
			return true // first announce of this phase is lost
		}
		return false
	}}

	sbsNames := []string{"sbs-0", "sbs-1", "sbs-2"}
	for n, name := range sbsNames {
		ep, err := hub.Register(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		agent, err := NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), nil, ep, "bs")
		if err != nil {
			t.Fatal(err)
		}
		go agent.Run(ctx) //nolint — exits on MsgDone or ctx cancel
	}

	var counter EventCounter
	bs, err := NewBSAgent(inst, BSConfig{
		PhaseTimeout:    300 * time.Millisecond,
		AnnounceRetries: 2,
		OnEvent:         counter.Hook(),
	}, bsEp, sbsNames)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bs.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(got.History), len(want.History))
	}
	for i := range got.History {
		if math.Abs(got.History[i]-want.History[i]) > 1e-12 {
			t.Errorf("history[%d] = %v, want %v", i, got.History[i], want.History[i])
		}
	}
	tf := got.TotalFaults()
	if tf.Misses != 0 {
		t.Errorf("misses = %d, want 0 (every announce should be recovered)", tf.Misses)
	}
	if tf.Retries == 0 {
		t.Error("no announce retries recorded despite dropped announces")
	}
	if c := counter.Count(EventAnnounceRetry); c != tf.Retries {
		t.Errorf("hook counted %d retries, stats say %d", c, tf.Retries)
	}
}

// TestQuarantineSkipsDeadSBS: a permanently dead SBS must cost one full
// PhaseTimeout per quarantine entry, not one per sweep — its phases are
// skipped while quarantined and only cheap probes go out afterwards.
func TestQuarantineSkipsDeadSBS(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	inst := randomInstance(rng, 3, 5, 6)
	ctx := testCtx(t)

	hub := transport.NewHub()
	bsEp, err := hub.Register("bs", 64)
	if err != nil {
		t.Fatal(err)
	}
	sbsNames := []string{"sbs-0", "sbs-1", "sbs-2"}
	// sbs-1 is registered but never answers.
	silent, err := hub.Register("sbs-1", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	for _, n := range []int{0, 2} {
		ep, err := hub.Register(sbsNames[n], 8)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		agent, err := NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), nil, ep, "bs")
		if err != nil {
			t.Fatal(err)
		}
		go agent.Run(ctx) //nolint — exits on MsgDone or ctx cancel
	}

	const phaseTimeout = 300 * time.Millisecond
	var counter EventCounter
	bs, err := NewBSAgent(inst, BSConfig{
		PhaseTimeout:     phaseTimeout,
		ProbeTimeout:     20 * time.Millisecond,
		QuarantineAfter:  1,
		QuarantineSweeps: 2,
		MaxSweeps:        8,
		OnEvent:          counter.Hook(),
	}, bsEp, sbsNames)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := bs.Run(ctx)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("run did not converge with two healthy SBSs")
	}
	dead := res.Faults[1]
	if dead.Misses != 1 {
		t.Errorf("dead SBS misses = %d, want exactly 1 (then quarantine)", dead.Misses)
	}
	if dead.QuarantineSpans < 1 {
		t.Error("dead SBS was never quarantined")
	}
	if dead.SkippedPhases < 1 {
		t.Error("no phases were skipped for the quarantined SBS")
	}
	for _, n := range []int{0, 2} {
		if f := res.Faults[n]; f != (core.SBSFaultStats{}) {
			t.Errorf("healthy SBS %d has fault stats %+v", n, f)
		}
	}
	// The stall bound: one PhaseTimeout per full-window miss plus cheap
	// probes — far below one PhaseTimeout per sweep.
	budget := time.Duration(dead.Misses)*phaseTimeout +
		time.Duration(dead.FailedProbes)*20*time.Millisecond + 2*time.Second
	if elapsed > budget {
		t.Errorf("run took %v, stall budget %v", elapsed, budget)
	}
	if c := counter.Count(EventQuarantine); c != dead.QuarantineSpans {
		t.Errorf("hook counted %d quarantines, stats say %d", c, dead.QuarantineSpans)
	}
	if c := counter.Count(EventUploadTimeout); c != dead.Misses {
		t.Errorf("hook counted %d timeouts, stats say %d", c, dead.Misses)
	}
}

// TestMalformedUploadsAreCountedAndSurvived: a rogue agent answers every
// announce with an undecodable payload; the BS must count each bad upload,
// treat the phase as missed, quarantine the rogue and still converge with
// the healthy SBSs.
func TestMalformedUploadsAreCountedAndSurvived(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := randomInstance(rng, 3, 5, 6)
	ctx := testCtx(t)

	hub := transport.NewHub()
	bsEp, err := hub.Register("bs", 64)
	if err != nil {
		t.Fatal(err)
	}
	sbsNames := []string{"sbs-0", "sbs-1", "sbs-2"}
	rogue, err := hub.Register("sbs-0", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	go func() {
		for {
			msg, err := rogue.Recv(ctx)
			if err != nil {
				return
			}
			if msg.Type != transport.MsgPhaseStart {
				continue
			}
			_ = rogue.Send(ctx, "bs", transport.Message{
				Type:    transport.MsgPolicyUpload,
				Sweep:   msg.Sweep,
				Phase:   msg.Phase,
				Payload: []byte("not gob"),
			})
		}
	}()
	for _, n := range []int{1, 2} {
		ep, err := hub.Register(sbsNames[n], 8)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		agent, err := NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), nil, ep, "bs")
		if err != nil {
			t.Fatal(err)
		}
		go agent.Run(ctx) //nolint — exits on MsgDone or ctx cancel
	}

	var counter EventCounter
	bs, err := NewBSAgent(inst, BSConfig{
		PhaseTimeout:    150 * time.Millisecond,
		QuarantineAfter: 1,
		MaxSweeps:       8,
		OnEvent:         counter.Hook(),
	}, bsEp, sbsNames)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bs.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bad := res.Faults[0]
	if bad.Malformed == 0 {
		t.Error("no malformed uploads counted for the rogue SBS")
	}
	if bad.Misses == 0 {
		t.Error("rogue phases were not treated as missing")
	}
	if c := counter.Count(EventBadUpload); c != bad.Malformed {
		t.Errorf("hook counted %d bad uploads, stats say %d", c, bad.Malformed)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible:\n%s", model.FormatViolations(vs))
	}
	// The rogue never contributed a valid policy.
	for u := 0; u < inst.U; u++ {
		for f := 0; f < inst.F; f++ {
			if res.Solution.Routing.At(0, u, f) != 0 {
				t.Fatal("rogue SBS has nonzero routing")
			}
		}
	}
}

// TestSBSHookSeesBadAnnouncements: the SBS-side hook observes undecodable
// and ragged announcements instead of swallowing them silently.
func TestSBSHookSeesBadAnnouncements(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	inst := randomInstance(rng, 1, 3, 4)
	ctx := testCtx(t)

	hub := transport.NewHub()
	bsEp, err := hub.Register("bs", 8)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := hub.Register("sbs-0", 8)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewSBSAgent(inst, 0, core.DefaultSubproblemConfig(), nil, ep, "bs")
	if err != nil {
		t.Fatal(err)
	}
	var counter EventCounter
	agent.SetEventHook(counter.Hook())
	done := make(chan error, 1)
	go func() { done <- agent.Run(ctx) }()

	// Undecodable payload.
	if err := bsEp.Send(ctx, "sbs-0", transport.Message{
		Type: transport.MsgPhaseStart, Sweep: 0, Phase: 0, Payload: []byte("junk"),
	}); err != nil {
		t.Fatal(err)
	}
	// Ragged aggregate.
	ragged, err := transport.EncodePayload(transport.AggregateAnnounce{
		YMinus: [][]float64{{1, 2}, {3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bsEp.Send(ctx, "sbs-0", transport.Message{
		Type: transport.MsgPhaseStart, Sweep: 0, Phase: 0, Payload: ragged,
	}); err != nil {
		t.Fatal(err)
	}
	// Wrong-shaped (but well-formed) aggregate: U×F is 3×4, send 2×2.
	wrong, err := transport.EncodePayload(transport.AggregateAnnounce{
		YMinus: [][]float64{{1, 2}, {3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bsEp.Send(ctx, "sbs-0", transport.Message{
		Type: transport.MsgPhaseStart, Sweep: 0, Phase: 0, Payload: wrong,
	}); err != nil {
		t.Fatal(err)
	}
	if err := bsEp.Send(ctx, "sbs-0", transport.Message{Type: transport.MsgDone}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not exit on MsgDone")
	}
	if c := counter.Count(EventBadAnnounce); c != 2 {
		t.Errorf("bad-announce events = %d, want 2", c)
	}
	if c := counter.Count(EventUnsolvable); c != 1 {
		t.Errorf("unsolvable events = %d, want 1", c)
	}
}

// TestProtocolSurvivesReordering: ReorderProb on every SBS link exercises
// the stale-discard logic in awaitUpload that duplicates and reordering
// were claimed to be handled by — the run must stay feasible and create
// edge-serving value.
func TestProtocolSurvivesReordering(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	inst := randomInstance(rng, 3, 5, 6)
	ctx := testCtx(t)

	hub := transport.NewHub()
	rawBs, err := hub.Register("bs", 64)
	if err != nil {
		t.Fatal(err)
	}
	bsEp, err := transport.NewFaultyEndpoint(rawBs, transport.FaultConfig{ReorderProb: 0.4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	sbsNames := []string{"sbs-0", "sbs-1", "sbs-2"}
	for n, name := range sbsNames {
		ep, err := hub.Register(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		faulty, err := transport.NewFaultyEndpoint(ep, transport.FaultConfig{ReorderProb: 0.4, Seed: int64(40 + n)})
		if err != nil {
			t.Fatal(err)
		}
		agent, err := NewSBSAgent(inst, n, core.DefaultSubproblemConfig(), nil, faulty, "bs")
		if err != nil {
			t.Fatal(err)
		}
		go agent.Run(ctx) //nolint — exits on MsgDone or ctx cancel
	}
	bs, err := NewBSAgent(inst, BSConfig{PhaseTimeout: 150 * time.Millisecond, MaxSweeps: 12}, bsEp, sbsNames)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bs.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible under reordering:\n%s", model.FormatViolations(vs))
	}
	if res.Solution.Cost.Total >= inst.MaxCost() {
		t.Error("reordered run produced no edge serving at all")
	}
}
