// Package locksrc holds deliberate send-under-mutex violations and the
// release-then-send forms the lockedsend analyzer approves. The edgelint
// driver skips everything under internal/lint/fixtures.
package locksrc

import (
	"context"
	"sync"

	"edgecache/internal/transport"
)

// Node mimics a protocol participant guarding sequence state with a mutex.
type Node struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	seq int
	ep  transport.Endpoint
}

// BadDeferred holds the mutex across the blocking Send via defer — the
// classic shape the analyzer exists for.
func (n *Node) BadDeferred(ctx context.Context, m transport.Message) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	return n.ep.Send(ctx, "peer", m) // want `Endpoint\.Send while n\.mu is held`
}

// BadReliable shows the concrete-type case: ReliableEndpoint implements
// Endpoint, and its Send can sleep through whole backoff windows.
func BadReliable(ctx context.Context, mu *sync.Mutex, re *transport.ReliableEndpoint, m transport.Message) error {
	mu.Lock()
	defer mu.Unlock()
	return re.Send(ctx, "peer", m) // want `ReliableEndpoint\.Send while mu is held`
}

// BadReadLocked proves read locks count too: a blocked Recv under RLock
// still stalls every writer.
func (n *Node) BadReadLocked(ctx context.Context) (transport.Message, error) {
	n.rw.RLock()
	defer n.rw.RUnlock()
	return n.ep.Recv(ctx) // want `Endpoint\.Recv while n\.rw is held`
}

// GoodReleaseFirst is the approved shape (the one ReliableEndpoint.Send
// itself uses): mutate state under the lock, release, then block.
func (n *Node) GoodReleaseFirst(ctx context.Context, m transport.Message) error {
	n.mu.Lock()
	n.seq++
	m.Seq = uint64(n.seq)
	n.mu.Unlock()
	return n.ep.Send(ctx, "peer", m)
}

// GoodGoroutine may hold the lock while spawning: the goroutine body runs
// with its own lock state.
func (n *Node) GoodGoroutine(ctx context.Context, m transport.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	go func() {
		_ = n.ep.Send(ctx, "peer", m)
	}()
}
