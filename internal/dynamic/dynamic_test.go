package dynamic

import (
	"math"
	"math/rand"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/trace"
)

func testInstance(rng *rand.Rand) *model.Instance {
	const n, u, f = 3, 8, 12
	inst := &model.Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  []int{4, 4, 4},
		Bandwidth: []float64{60, 60, 60},
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 15
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < n; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.6
			inst.EdgeCost[i][j] = 1
		}
	}
	return inst
}

func TestEvolveDemandConservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := testInstance(rng)
	var before float64
	for _, row := range inst.Demand {
		for _, v := range row {
			before += v
		}
	}
	evolved := EvolveDemand(inst.Demand, 10, rng)
	var after float64
	for _, row := range evolved {
		for _, v := range row {
			after += v
		}
	}
	if math.Abs(before-after) > 1e-9 {
		t.Errorf("mass changed: %v → %v", before, after)
	}
	// The original must be untouched.
	var orig float64
	for _, row := range inst.Demand {
		for _, v := range row {
			orig += v
		}
	}
	if orig != before {
		t.Error("EvolveDemand mutated its input")
	}
}

func TestEvolveDemandZeroSwapsIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := testInstance(rng)
	evolved := EvolveDemand(inst.Demand, 0, rng)
	for u := range evolved {
		for f := range evolved[u] {
			if evolved[u][f] != inst.Demand[u][f] {
				t.Fatal("zero swaps changed the demand")
			}
		}
	}
}

func TestEvolveDemandDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := EvolveDemand(nil, 5, rng); len(got) != 0 {
		t.Error("nil demand should stay empty")
	}
	one := [][]float64{{7}}
	if got := EvolveDemand(one, 5, rng); got[0][0] != 7 {
		t.Error("single-content demand must be invariant")
	}
}

func TestRunChurnStudyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := testInstance(rng)
	if _, err := RunChurnStudy(inst, ChurnConfig{Slots: 0}, core.DefaultSubproblemConfig()); err == nil {
		t.Error("zero slots: want error")
	}
	if _, err := RunChurnStudy(inst, ChurnConfig{Slots: 1, SwapsPerSlot: -1}, core.DefaultSubproblemConfig()); err == nil {
		t.Error("negative swaps: want error")
	}
	if _, err := RunChurnStudy(&model.Instance{N: 0}, ChurnConfig{Slots: 1}, core.DefaultSubproblemConfig()); err == nil {
		t.Error("invalid instance: want error")
	}
}

func TestRunChurnStudyNoChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := testInstance(rng)
	res, err := RunChurnStudy(inst, ChurnConfig{Slots: 3, SwapsPerSlot: 0, Seed: 6}, core.DefaultSubproblemConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slots) != 3 {
		t.Fatalf("slots = %d, want 3", len(res.Slots))
	}
	// Frozen workload: re-planning changes nothing and matches static.
	if res.TotalCacheChanges != 0 {
		t.Errorf("cache changes without churn = %d, want 0", res.TotalCacheChanges)
	}
	for _, s := range res.Slots {
		if math.Abs(s.Replan-s.Static) > 1e-6*(1+s.Replan) {
			t.Errorf("slot %d: replan %v != static %v without churn", s.Slot, s.Replan, s.Static)
		}
	}
}

func TestRunChurnStudyDiurnal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := testInstance(rng)
	scale, err := trace.DiurnalProfile(4, 0.5, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunChurnStudy(inst, ChurnConfig{
		Slots: 4, SwapsPerSlot: 0, SlotScale: scale, Seed: 10,
	}, core.DefaultSubproblemConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Demand scale varies across slots, so so must the replan cost (the
	// no-churn invariance only holds at constant load).
	allEqual := true
	for _, s := range res.Slots[1:] {
		if math.Abs(s.Replan-res.Slots[0].Replan) > 1e-6 {
			allEqual = false
		}
	}
	if allEqual {
		t.Error("diurnal load produced identical per-slot costs")
	}
	// Validation errors.
	if _, err := RunChurnStudy(inst, ChurnConfig{Slots: 4, SlotScale: []float64{1}}, core.DefaultSubproblemConfig()); err == nil {
		t.Error("short SlotScale: want error")
	}
	if _, err := RunChurnStudy(inst, ChurnConfig{Slots: 1, SlotScale: []float64{-1}}, core.DefaultSubproblemConfig()); err == nil {
		t.Error("negative SlotScale: want error")
	}
}

func TestRunChurnStudyWithChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := testInstance(rng)
	res, err := RunChurnStudy(inst, ChurnConfig{Slots: 5, SwapsPerSlot: 6, Seed: 8}, core.DefaultSubproblemConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Re-planning can never lose to keeping stale caches (same routing
	// optimizer, superset of choices) beyond solver tie noise, per slot.
	for _, s := range res.Slots {
		if s.Replan > s.Static*1.02+1e-6 {
			t.Errorf("slot %d: replan %v worse than static %v", s.Slot, s.Replan, s.Static)
		}
	}
	if res.TotalReplan > res.TotalStatic+1e-6 {
		t.Errorf("total replan %v worse than static %v", res.TotalReplan, res.TotalStatic)
	}
	// Churn must actually force cache updates.
	if res.TotalCacheChanges == 0 {
		t.Error("churned workload produced no cache changes")
	}
	// Slot 0 has no previous policy to diff against.
	if res.Slots[0].CacheChanges != 0 {
		t.Error("slot 0 reported cache changes")
	}
}
