package model

import "testing"

func TestEngineKindRoundTrip(t *testing.T) {
	for _, k := range []EngineKind{EngineGaussSeidel, EngineJacobi, EngineParallelJacobi} {
		got, err := ParseEngineKind(k.String())
		if err != nil {
			t.Errorf("ParseEngineKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseEngineKind(%q) = %v, want %v", k.String(), got, k)
		}
		if !k.Valid() {
			t.Errorf("%v reported invalid", k)
		}
	}
	if _, err := ParseEngineKind("simplex"); err == nil {
		t.Error("unknown engine name accepted")
	}
	if EngineKind(17).Valid() {
		t.Error("out-of-range kind reported valid")
	}
}

func TestEngineKindFamily(t *testing.T) {
	if EngineGaussSeidel.Family() != FamilyGaussSeidel {
		t.Error("gauss-seidel engine not in gauss-seidel family")
	}
	if EngineJacobi.Family() != FamilyJacobi || EngineParallelJacobi.Family() != FamilyJacobi {
		t.Error("jacobi engines must share the jacobi family")
	}
	if FamilyGaussSeidel.String() == FamilyJacobi.String() {
		t.Error("family names collide")
	}
}

func TestRoutingPolicySwap(t *testing.T) {
	in := testInstance()
	a := NewRoutingPolicy(in)
	b := NewRoutingPolicy(in)
	a.Set(0, 0, 0, 0.5)
	b.Set(1, 1, 1, 0.25)
	a.Swap(b)
	if a.At(1, 1, 1) != 0.25 || b.At(0, 0, 0) != 0.5 {
		t.Error("Swap did not exchange the backing tensors")
	}
	if a.At(0, 0, 0) != 0 || b.At(1, 1, 1) != 0 {
		t.Error("Swap left stale values behind")
	}
}

func TestTrackerRebuildRowsMatchesAggregateInto(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	y.Set(0, 0, 0, 0.375)
	y.Set(1, 1, 3, 0.625)
	y.Set(1, 0, 2, 0.125)
	want := y.Aggregate(in)

	tr := NewAggregateTracker(in)
	// Rebuild in two disjoint shards; the result must be bit-identical to
	// the one-shot AggregateInto order.
	mid := in.U / 2
	tr.RebuildRows(in, y, 0, mid)
	tr.RebuildRows(in, y, mid, in.U)
	got := tr.Aggregate()
	for u := 0; u < in.U; u++ {
		for f := 0; f < in.F; f++ {
			if got.At(u, f) != want.At(u, f) {
				t.Fatalf("sharded rebuild differs at (%d,%d): %v vs %v", u, f, got.At(u, f), want.At(u, f))
			}
		}
	}
}

func TestTrackerRepairOverserveRows(t *testing.T) {
	in := testInstance()
	y := NewRoutingPolicy(in)
	// Overserve (u,f) = (0,0) through every linked SBS.
	for n := 0; n < in.N; n++ {
		if in.Links[n][0] {
			y.Set(n, 0, 0, 0.9)
		}
	}
	tr := NewAggregateTracker(in)
	tr.RebuildRows(in, y, 0, in.U)
	if tr.Aggregate().At(0, 0) <= 1 {
		t.Skip("test instance does not overserve; need ≥2 links on user 0")
	}
	tr.RepairOverserveRows(in, y, 0, in.U)
	// The repaired aggregate must equal a fresh rebuild of the repaired
	// policy bit-for-bit, and must no longer overserve (up to the repair
	// slack).
	fresh := y.Aggregate(in)
	for u := 0; u < in.U; u++ {
		for f := 0; f < in.F; f++ {
			if tr.Aggregate().At(u, f) != fresh.At(u, f) {
				t.Fatalf("repaired aggregate differs from rebuild at (%d,%d)", u, f)
			}
			if fresh.At(u, f) > 1+1e-9 {
				t.Fatalf("overserve survived repair at (%d,%d): %v", u, f, fresh.At(u, f))
			}
		}
	}
}
