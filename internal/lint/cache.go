package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The result cache keeps the verify.sh/CI gate fast despite the
// interprocedural analyzers: a run over unchanged sources never
// type-checks anything. The unit of caching is one package's surviving
// (post-ignore) diagnostics under one analyzer suite.
//
// Keys are pure content hashes — no mtimes — so the cache is safe to share
// across checkouts and CI restores:
//
//   - every key includes the schema version, the Go toolchain version,
//     the suite's analyzer names, and the content hash of internal/lint
//     itself (edit an analyzer, invalidate everything);
//   - a local (per-package) suite keys each package on its own source
//     hash plus the hashes of its module dependencies (a dep's types can
//     change a caller's diagnostics);
//   - a suite containing a whole-program analyzer (noalloc, privflow,
//     atomicmix) additionally keys every package on the module-wide
//     source hash, since any file can add a source, a directive root, or
//     an atomic access.
//
// The pre-check runs `go list` WITHOUT -export: on a full hit the
// packages never compile or type-check, which is where the time goes.
// Stored diagnostics drop their Fixes (token.Pos values are meaningless
// across loads); -fix runs bypass the cache for that reason.

// cacheSchemaVersion invalidates every entry when the storage format or
// key derivation changes.
const cacheSchemaVersion = "edgelint-cache-v1"

// globalAnalyzers are the whole-program passes whose results can change
// when any module file changes.
var globalAnalyzers = map[string]bool{
	"noalloc":   true,
	"privflow":  true,
	"atomicmix": true,
}

// RunStats reports what a cached run did.
type RunStats struct {
	// Packages is the number of analyzed (non-skipped) module packages;
	// CacheHits of them were served from the cache. Loaded reports
	// whether a full type-checking load was needed.
	Packages  int
	CacheHits int
	Loaded    bool
}

// cachedDiag is the stored form of one diagnostic.
type cachedDiag struct {
	Analyzer string
	File     string
	Offset   int
	Line     int
	Column   int
	Message  string
}

type cacheEntry struct {
	Version string
	Diags   []cachedDiag
}

// pkgMeta is the cheap (no -export) listing of one module package.
type pkgMeta struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	Deps       []string

	hash string
}

// RunCached runs the analyzers over the module at dir with per-package
// result caching under cacheDir. An empty cacheDir disables caching.
// Cache read/write failures degrade to a normal run, never to an error.
func RunCached(dir string, analyzers []*Analyzer, skip func(pkgPath string) bool,
	cacheDir string, patterns ...string) ([]Diagnostic, RunStats, error) {
	var stats RunStats
	if cacheDir == "" {
		prog, err := Load(dir, patterns...)
		if err != nil {
			return nil, stats, err
		}
		stats.Loaded = true
		diags := prog.Run(analyzers, skip)
		stats.Packages = countAnalyzed(prog, skip)
		return diags, stats, nil
	}

	metas, err := listMetas(dir, patterns...)
	if err != nil {
		return nil, stats, err
	}
	keys := cacheKeys(metas, analyzers, skip)
	stats.Packages = len(keys)

	// Read phase: a full hit returns without loading anything.
	cached := map[string][]Diagnostic{}
	for path, key := range keys {
		entry, ok := readCacheEntry(cacheDir, key)
		if !ok {
			continue
		}
		cached[path] = entry
		stats.CacheHits++
	}
	if stats.CacheHits == len(keys) {
		var diags []Diagnostic
		for _, pkgDiags := range cached {
			diags = append(diags, pkgDiags...)
		}
		sortDiagnostics(diags)
		return diags, stats, nil
	}

	// Miss: load and analyze everything, then refresh the cache. (The
	// load cost dominates, so partially-hit runs recompute hit packages
	// too rather than complicating the driver; their entries rewrite to
	// identical bytes.)
	prog, err := Load(dir, patterns...)
	if err != nil {
		return nil, stats, err
	}
	stats.Loaded = true
	perPkg := prog.RunPerPackage(analyzers, skip)
	var diags []Diagnostic
	for path, pkgDiags := range perPkg {
		diags = append(diags, pkgDiags...)
		if key, ok := keys[path]; ok {
			writeCacheEntry(cacheDir, key, pkgDiags)
		}
	}
	sortDiagnostics(diags)
	return diags, stats, nil
}

func countAnalyzed(prog *Program, skip func(string) bool) int {
	n := 0
	for _, pkg := range prog.Packages {
		if skip == nil || !skip(pkg.Path) {
			n++
		}
	}
	return n
}

// listMetas lists the module packages without -export: no compilation, so
// a warm-cache gate run costs one `go list` plus file reads.
func listMetas(dir string, patterns ...string) ([]*pkgMeta, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Standard,GoFiles,Deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var metas []*pkgMeta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m pkgMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		if err := m.computeHash(); err != nil {
			return nil, err
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

// computeHash digests the package's source file names and contents.
func (m *pkgMeta) computeHash() error {
	h := sha256.New()
	for _, name := range m.GoFiles {
		data, err := os.ReadFile(filepath.Join(m.Dir, name))
		if err != nil {
			return fmt.Errorf("lint: %v", err)
		}
		fmt.Fprintf(h, "%s %d\n", name, len(data))
		h.Write(data)
	}
	m.hash = hex.EncodeToString(h.Sum(nil))
	return nil
}

// cacheKeys derives the cache key per analyzed package path.
func cacheKeys(metas []*pkgMeta, analyzers []*Analyzer, skip func(string) bool) map[string]string {
	byPath := map[string]*pkgMeta{}
	for _, m := range metas {
		byPath[m.ImportPath] = m
	}

	var names []string
	global := false
	for _, a := range analyzers {
		names = append(names, a.Name)
		if globalAnalyzers[a.Name] {
			global = true
		}
	}
	sort.Strings(names)

	// The module-wide hash covers the analyzed packages; the lint
	// package's own hash rides along in every key so editing an analyzer
	// invalidates results even for local suites.
	var analyzed []*pkgMeta
	lintHash := ""
	moduleHash := sha256.New()
	for _, m := range metas {
		if m.ImportPath == "edgecache/internal/lint" {
			lintHash = m.hash
		}
		if skip != nil && skip(m.ImportPath) {
			continue
		}
		analyzed = append(analyzed, m)
		fmt.Fprintf(moduleHash, "%s %s\n", m.ImportPath, m.hash)
	}
	modHash := hex.EncodeToString(moduleHash.Sum(nil))

	prefix := fmt.Sprintf("%s|%s|%s|%s|", cacheSchemaVersion, runtime.Version(),
		strings.Join(names, ","), lintHash)

	keys := map[string]string{}
	for _, m := range analyzed {
		h := sha256.New()
		io.WriteString(h, prefix)
		fmt.Fprintf(h, "%s %s\n", m.ImportPath, m.hash)
		if global {
			fmt.Fprintf(h, "module %s\n", modHash)
		} else {
			// Module deps in listing order (go list emits a stable
			// dependency order); stdlib deps are covered by the toolchain
			// version in the prefix.
			for _, dep := range m.Deps {
				if dm, ok := byPath[dep]; ok {
					fmt.Fprintf(h, "dep %s %s\n", dep, dm.hash)
				}
			}
		}
		keys[m.ImportPath] = hex.EncodeToString(h.Sum(nil))
	}
	return keys
}

func cachePath(cacheDir, key string) string {
	return filepath.Join(cacheDir, key[:2], key+".json")
}

func readCacheEntry(cacheDir, key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(cachePath(cacheDir, key))
	if err != nil {
		return nil, false
	}
	var entry cacheEntry
	if json.Unmarshal(data, &entry) != nil || entry.Version != cacheSchemaVersion {
		return nil, false
	}
	diags := make([]Diagnostic, 0, len(entry.Diags))
	for _, d := range entry.Diags {
		diags = append(diags, Diagnostic{
			Analyzer: d.Analyzer,
			Pos: token.Position{
				Filename: d.File, Offset: d.Offset, Line: d.Line, Column: d.Column,
			},
			Message: d.Message,
		})
	}
	return diags, true
}

// writeCacheEntry stores one package's surviving diagnostics. Fixes are
// dropped (their token.Pos values die with the FileSet); -fix runs bypass
// cache reads so they always see live fixes. Failures are ignored — the
// cache is an accelerator, not a correctness layer.
func writeCacheEntry(cacheDir, key string, diags []Diagnostic) {
	entry := cacheEntry{Version: cacheSchemaVersion}
	for _, d := range diags {
		entry.Diags = append(entry.Diags, cachedDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Offset:   d.Pos.Offset,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return
	}
	path := cachePath(cacheDir, key)
	if os.MkdirAll(filepath.Dir(path), 0o755) != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, path)
}
