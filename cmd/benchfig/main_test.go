package main

import (
	"strings"
	"testing"

	"edgecache/internal/metrics"
)

func TestParseSeeds(t *testing.T) {
	seeds, err := parseSeeds("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 || seeds[0] != 1 || seeds[2] != 3 {
		t.Errorf("seeds = %v", seeds)
	}
	if _, err := parseSeeds(""); err == nil {
		t.Error("empty: want error")
	}
	if _, err := parseSeeds("a,b"); err == nil {
		t.Error("non-numeric: want error")
	}
	if seeds, err := parseSeeds("7,"); err != nil || len(seeds) != 1 {
		t.Errorf("trailing comma: seeds=%v err=%v", seeds, err)
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no action: want error")
	}
	if err := run([]string{"-fig", "9"}); err == nil {
		t.Error("unknown figure: want error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag: want error")
	}
	if err := run([]string{"-fig", "3", "-seeds", "x"}); err == nil {
		t.Error("bad seeds: want error")
	}
}

func TestRenderFigureChart(t *testing.T) {
	tb := metrics.NewTable("Fig. X", "epsilon", "LPPM", "Optimum", "LRFU")
	tb.MustAddRow(0.01, 300.0, 250.0, 350.0)
	tb.MustAddRow(100.0, 260.0, 250.0, 350.0)
	out, err := renderFigureChart(tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"legend: * LPPM", "o Optimum", "+ LRFU"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	bad := metrics.NewTable("short", "a", "b")
	bad.MustAddRow(1, 2)
	if _, err := renderFigureChart(bad); err == nil {
		t.Error("short table: want error")
	}
	nonNumeric := metrics.NewTable("t", "x", "a", "b", "c")
	nonNumeric.MustAddRow("oops", 1, 2, 3)
	if _, err := renderFigureChart(nonNumeric); err == nil {
		t.Error("non-numeric sweep column: want error")
	}
}

func TestRunFig2(t *testing.T) {
	// Fig. 2 needs no solver runs, so it is fast enough for a unit test.
	if err := run([]string{"-fig", "2", "-csv", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}
