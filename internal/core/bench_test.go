package core

import (
	"math/rand"
	"testing"

	"edgecache/internal/model"
)

// benchScale builds a random instance at the given scale with the paper's
// structure (d̂ ≫ d, ~60% link density, skewed demand).
func benchScale(n, u, f int) *model.Instance {
	rng := rand.New(rand.NewSource(99))
	return randomInstance(rng, n, u, f)
}

// BenchmarkSweep measures full Algorithm 1 runs with a fixed sweep budget:
// the Gauss-Seidel DUA sweep is the system's hot path. The "paper" scale is
// the §V-A default (N=3, U=30, F=50); "scaled" is the scaling-study regime
// (N=20, U=200, F=500) from the edge-caching literature's larger sweeps.
func BenchmarkSweep(b *testing.B) {
	for _, tc := range []struct {
		name    string
		n, u, f int
		sweeps  int
	}{
		{"paper_N3_U30_F50", 3, 30, 50, 4},
		{"scaled_N20_U200_F500", 20, 200, 500, 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			inst := benchScale(tc.n, tc.u, tc.f)
			cfg := DefaultConfig()
			cfg.MaxSweeps = tc.sweeps
			cfg.Gamma = 1e-300 // exhaust the sweep budget: fixed work per iteration
			coord, err := NewCoordinator(inst, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubproblemSolveCore measures one warm P_n solve — the inner loop
// of every sweep — at paper scale.
func BenchmarkSubproblemSolveCore(b *testing.B) {
	inst := benchScale(3, 30, 50)
	sub, err := NewSubproblem(inst, 0, DefaultSubproblemConfig())
	if err != nil {
		b.Fatal(err)
	}
	yMinus := inst.NewUFMat()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sub.Solve(yMinus); err != nil {
			b.Fatal(err)
		}
	}
}
