package chaos

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/sim"
	"edgecache/internal/transport"
)

func testInstance(seed int64, n, u, f int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := &model.Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  make([]int, n),
		Bandwidth: make([]float64, n),
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 20
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < n; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.6
			inst.EdgeCost[i][j] = 1 + rng.Float64()*3
		}
		inst.CacheCap[i] = 1 + rng.Intn(f/2+1)
		inst.Bandwidth[i] = 5 + rng.Float64()*40
	}
	return inst
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func faultFreeBaseline(t *testing.T, inst *model.Instance) *core.RunResult {
	t.Helper()
	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAdvance(t *testing.T) {
	cases := []struct{ sweep, phase, d, n, wantS, wantP int }{
		{0, 0, 1, 3, 0, 1},
		{0, 2, 1, 3, 1, 0},
		{1, 0, 3, 3, 2, 0},
		{2, 1, 5, 4, 3, 2},
	}
	for _, c := range cases {
		s, p := advance(c.sweep, c.phase, c.d, c.n)
		if s != c.wantS || p != c.wantP {
			t.Errorf("advance(%d,%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.sweep, c.phase, c.d, c.n, s, p, c.wantS, c.wantP)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Schedule{
		{Links: transport.FaultConfig{DropProb: 2}},
		{Events: []Event{{Sweep: -1, SBS: 0, Op: OpCrash}}},
		{Events: []Event{{Phase: 3, SBS: 0, Op: OpCrash}}},
		{Events: []Event{{SBS: 3, Op: OpCrash}}},
		{Events: []Event{{SBS: -1, Op: OpCrash}}}, // -1 only valid for link faults
		{Events: []Event{{SBS: 0, Op: OpPartition, Phases: -1}}},
		{Events: []Event{{SBS: 0, Op: Op(99)}}},
		{Events: []Event{{SBS: -1, Op: OpLinkFaults, Faults: transport.FaultConfig{DupProb: -1}}}},
	}
	for i, s := range bad {
		if err := s.Validate(3); err == nil {
			t.Errorf("schedule %d: Validate(3) accepted invalid schedule", i)
		}
	}
	ok := Schedule{
		Links: transport.FaultConfig{DropProb: 0.5},
		Events: []Event{
			{Sweep: 2, SBS: 1, Op: OpCrash},
			{Sweep: 4, SBS: 1, Op: OpRestart},
			{Sweep: 1, SBS: -1, Op: OpLinkFaults, Faults: transport.FaultConfig{DupProb: 0.2}},
		},
	}
	if err := ok.Validate(3); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	sorted := ok.sortedEvents()
	if sorted[0].Op != OpLinkFaults || sorted[1].Op != OpCrash || sorted[2].Op != OpRestart {
		t.Errorf("sortedEvents order wrong: %v", sorted)
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("seed=7, drop=0.25,dup=0.1,reorder=0.05,delay=3ms,crash=1@2+3,partition=0@1+4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 {
		t.Errorf("seed = %d, want 7", s.Seed)
	}
	want := transport.FaultConfig{DropProb: 0.25, DupProb: 0.1, ReorderProb: 0.05, MaxDelay: 3 * time.Millisecond}
	if s.Links != want {
		t.Errorf("links = %+v, want %+v", s.Links, want)
	}
	wantEvents := []Event{
		{Sweep: 2, SBS: 1, Op: OpCrash},
		{Sweep: 5, SBS: 1, Op: OpRestart},
		{Sweep: 1, SBS: 0, Op: OpPartition, Phases: 4},
	}
	if len(s.Events) != len(wantEvents) {
		t.Fatalf("events = %v, want %v", s.Events, wantEvents)
	}
	for i := range wantEvents {
		if s.Events[i] != wantEvents[i] {
			t.Errorf("event %d = %+v, want %+v", i, s.Events[i], wantEvents[i])
		}
	}
	if s, err := ParseSpec(""); err != nil || len(s.Events) != 0 {
		t.Errorf("empty spec: %v, %v", s, err)
	}
	for _, bad := range []string{
		"bogus=1", "drop=1.5", "drop", "crash=1", "crash=x@2", "crash=1@y",
		"crash=1@2+0", "partition=0@1+-2", "delay=3parsecs", "seed=abc",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
}

// TestCrashRestartCycleExactStats injects a crash and a restart on clean
// links and asserts the BS's fault accounting matches the schedule
// exactly: one miss, one quarantine span, QuarantineSweeps skipped
// phases, a successful probe and a rejoin.
func TestCrashRestartCycleExactStats(t *testing.T) {
	inst := testInstance(11, 3, 6, 8)
	cfg := Config{
		BS: sim.BSConfig{
			PhaseTimeout:     400 * time.Millisecond,
			ProbeTimeout:     50 * time.Millisecond,
			AnnounceRetries:  -1, // clean links: keep Retries at 0 for exact stats
			QuarantineAfter:  1,
			QuarantineSweeps: 2,
			MaxSweeps:        30,
		},
		Sub: core.DefaultSubproblemConfig(),
		Schedule: Schedule{
			Seed: 5,
			Events: []Event{
				{Sweep: 1, SBS: 1, Op: OpCrash},
				{Sweep: 4, SBS: 1, Op: OpRestart},
			},
		},
	}
	start := time.Now()
	res, report, err := Run(testCtx(t), inst, cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("run did not converge")
	}
	// The cycle is: miss at sweep 1 (quarantine), skip sweeps 2-3, probe
	// at sweep 4 answered by the restarted agent. The run must have
	// reached at least sweep 4 for the rejoin to happen at all.
	if res.Sweeps < 5 {
		t.Errorf("run ended after %d sweeps, before the rejoin cycle completed", res.Sweeps)
	}
	want := core.SBSFaultStats{Misses: 1, QuarantineSpans: 1, SkippedPhases: 2}
	if res.Faults[1] != want {
		t.Errorf("SBS 1 fault stats = %+v, want %+v", res.Faults[1], want)
	}
	for _, n := range []int{0, 2} {
		if res.Faults[n] != (core.SBSFaultStats{}) {
			t.Errorf("healthy SBS %d has fault stats %+v", n, res.Faults[n])
		}
	}
	if len(report.Fired) != 2 || len(report.Unfired) != 0 {
		t.Errorf("fired %d unfired %d events, want 2/0: %v %v",
			len(report.Fired), len(report.Unfired), report.Fired, report.Unfired)
	}
	for kind, wantCount := range map[sim.EventKind]int{
		sim.EventUploadTimeout: 1,
		sim.EventQuarantine:    1,
		sim.EventRejoin:        1,
		sim.EventProbeFailed:   0,
		sim.EventAnnounceRetry: 0,
	} {
		if got := report.Counter.Count(kind); got != wantCount {
			t.Errorf("counter[%v] = %d, want %d", kind, got, wantCount)
		}
	}
	// Only the single miss burns a PhaseTimeout; everything else is fast.
	if elapsed > cfg.BS.PhaseTimeout+5*time.Second {
		t.Errorf("run took %v; quarantine did not bound the stall", elapsed)
	}
	// The crashed SBS rejoined with its policy intact, so the run must
	// end at the same fixed point as the fault-free baseline.
	base := faultFreeBaseline(t, inst)
	if diff := relDiff(res.Solution.Cost.Total, base.Solution.Cost.Total); diff > 0.05 {
		t.Errorf("final cost %v is %.1f%% from fault-free %v",
			res.Solution.Cost.Total, diff*100, base.Solution.Cost.Total)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible solution:\n%s", model.FormatViolations(vs))
	}
}

// TestDuplicateStormIsInvisible turns on 100% duplication on every link
// mid-run: sequence-number dedup must cancel it exactly, leaving the run
// bit-for-bit identical to the fault-free baseline.
func TestDuplicateStormIsInvisible(t *testing.T) {
	inst := testInstance(4, 3, 5, 6)
	cfg := Config{
		BS:  sim.BSConfig{PhaseTimeout: 5 * time.Second},
		Sub: core.DefaultSubproblemConfig(),
		Schedule: Schedule{
			Seed: 9,
			Events: []Event{
				{Sweep: 0, SBS: -1, Op: OpLinkFaults, Faults: transport.FaultConfig{DupProb: 1}},
			},
		},
	}
	res, report, err := Run(testCtx(t), inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := faultFreeBaseline(t, inst)
	if res.Sweeps != base.Sweeps || res.Converged != base.Converged {
		t.Errorf("sweeps/converged = %d/%v, want %d/%v", res.Sweeps, res.Converged, base.Sweeps, base.Converged)
	}
	if len(res.History) != len(base.History) {
		t.Fatalf("history length %d, want %d", len(res.History), len(base.History))
	}
	for i := range res.History {
		if math.Abs(res.History[i]-base.History[i]) > 1e-9 {
			t.Errorf("history[%d] = %v, want %v", i, res.History[i], base.History[i])
		}
	}
	if got := res.TotalFaults(); got != (core.SBSFaultStats{}) {
		t.Errorf("duplication leaked into fault stats: %+v", got)
	}
	if len(report.Fired) != 1 {
		t.Errorf("fired = %v, want the single link-faults event", report.Fired)
	}
}

// TestPartitionHealsWithoutQuarantine cuts one SBS's link for three
// phases: exactly one miss, no quarantine (the partition heals before a
// second consecutive miss), and the run still converges.
func TestPartitionHealsWithoutQuarantine(t *testing.T) {
	inst := testInstance(8, 3, 6, 8)
	cfg := Config{
		BS: sim.BSConfig{
			PhaseTimeout:    300 * time.Millisecond,
			AnnounceRetries: -1,
			QuarantineAfter: 2,
			MaxSweeps:       30,
		},
		Sub: core.DefaultSubproblemConfig(),
		Schedule: Schedule{
			Seed: 3,
			Events: []Event{
				{Sweep: 1, Phase: 0, SBS: 0, Op: OpPartition, Phases: 3},
			},
		},
	}
	res, report, err := Run(testCtx(t), inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("run did not converge after the partition healed")
	}
	want := core.SBSFaultStats{Misses: 1}
	if res.Faults[0] != want {
		t.Errorf("SBS 0 fault stats = %+v, want %+v", res.Faults[0], want)
	}
	// The auto-scheduled heal must have fired.
	var healed bool
	for _, f := range report.Fired {
		if f.Op == OpHeal && f.SBS == 0 {
			healed = true
		}
	}
	if !healed {
		t.Errorf("heal event never fired: %v", report.Fired)
	}
	base := faultFreeBaseline(t, inst)
	if diff := relDiff(res.Solution.Cost.Total, base.Solution.Cost.Total); diff > 0.05 {
		t.Errorf("final cost %v is %.1f%% from fault-free %v",
			res.Solution.Cost.Total, diff*100, base.Solution.Cost.Total)
	}
}

// TestChaosAcceptance is the issue's acceptance scenario: one SBS crashed
// for three sweeps and then restarted, with 30% packet loss on every
// link. The run must converge without stalling more than roughly one
// PhaseTimeout per observed miss, end within 5% of the fault-free cost,
// and report fault stats consistent with the injected schedule.
func TestChaosAcceptance(t *testing.T) {
	inst := testInstance(42, 3, 6, 8)
	bs := sim.BSConfig{
		PhaseTimeout:     800 * time.Millisecond,
		ProbeTimeout:     100 * time.Millisecond,
		AnnounceRetries:  5, // sub-window ~133ms; miss prob ~0.51^6 per phase
		QuarantineAfter:  2,
		QuarantineSweeps: 2,
		MaxSweeps:        40,
	}
	cfg := Config{
		BS:  bs,
		Sub: core.DefaultSubproblemConfig(),
		Schedule: Schedule{
			Seed:  7,
			Links: transport.FaultConfig{DropProb: 0.3},
			Events: []Event{
				{Sweep: 1, SBS: 1, Op: OpCrash},
				{Sweep: 4, SBS: 1, Op: OpRestart},
			},
		},
	}
	start := time.Now()
	res, report, err := Run(testCtx(t), inst, cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("run did not converge (sweeps=%d, faults=%+v)", res.Sweeps, res.TotalFaults())
	}

	// Stats must reflect the schedule: the crashed SBS accumulated the
	// misses that led to quarantine and at least one quarantine span.
	crashed := res.Faults[1]
	if crashed.Misses < bs.QuarantineAfter {
		t.Errorf("crashed SBS misses = %d, want >= %d", crashed.Misses, bs.QuarantineAfter)
	}
	if crashed.QuarantineSpans < 1 || crashed.SkippedPhases < 1 {
		t.Errorf("crashed SBS never quarantined/skipped: %+v", crashed)
	}
	if len(report.Unfired) != 0 {
		t.Errorf("schedule events never fired: %v", report.Unfired)
	}

	// Stall bound: every miss burns at most one PhaseTimeout and every
	// failed probe one ProbeTimeout; everything else (skipped phases,
	// live phases, retransmits) must be fast. The slack covers solver and
	// scheduling overhead across all sweeps.
	total := res.TotalFaults()
	budget := time.Duration(total.Misses)*bs.PhaseTimeout +
		time.Duration(total.FailedProbes)*bs.ProbeTimeout + 5*time.Second
	if elapsed > budget {
		t.Errorf("run took %v, budget %v (faults %+v)", elapsed, budget, total)
	}

	// BS-side event counts and RunResult stats are two views of the same
	// accounting and must agree.
	if got := report.Counter.Count(sim.EventUploadTimeout); got != total.Misses {
		t.Errorf("counter misses = %d, stats = %d", got, total.Misses)
	}
	if got := report.Counter.Count(sim.EventQuarantine); got != total.QuarantineSpans {
		t.Errorf("counter quarantines = %d, stats = %d", got, total.QuarantineSpans)
	}
	if got := report.Counter.Count(sim.EventAnnounceRetry); got != total.Retries {
		t.Errorf("counter retries = %d, stats = %d", got, total.Retries)
	}

	base := faultFreeBaseline(t, inst)
	if diff := relDiff(res.Solution.Cost.Total, base.Solution.Cost.Total); diff > 0.05 {
		t.Errorf("final cost %v is %.1f%% from fault-free %v",
			res.Solution.Cost.Total, diff*100, base.Solution.Cost.Total)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible solution:\n%s", model.FormatViolations(vs))
	}
}

// TestRunFromSpec drives a run straight from a -chaos spec string.
func TestRunFromSpec(t *testing.T) {
	sched, err := ParseSpec("seed=3,dup=0.5,partition=2@1+3")
	if err != nil {
		t.Fatal(err)
	}
	inst := testInstance(6, 3, 5, 6)
	cfg := Config{
		BS: sim.BSConfig{
			PhaseTimeout:    300 * time.Millisecond,
			QuarantineAfter: 2,
			MaxSweeps:       30,
		},
		Sub:      core.DefaultSubproblemConfig(),
		Schedule: sched,
	}
	res, report, err := Run(testCtx(t), inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("run did not converge")
	}
	if len(report.Unfired) != 0 {
		t.Errorf("unfired events: %v", report.Unfired)
	}
	if vs := model.CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible solution:\n%s", model.FormatViolations(vs))
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
