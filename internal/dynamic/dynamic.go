// Package dynamic studies the caching schemes under popularity churn over
// a time-slotted horizon. The paper optimizes one static snapshot (its
// companion work, Zeng et al. ICDCS 2019 [33], treats the online setting
// centrally); this package extends the reproduction with the natural
// distributed-online question: how much does re-planning with Algorithm 1
// every slot buy over planning once, and how does the reactive LRFU
// baseline fare when popularity keeps moving under it?
//
// Churn model: between slots, randomly chosen content pairs swap their
// demand columns (rank churn — trending videos overtaking each other),
// leaving the total demand mass invariant so costs stay comparable across
// slots.
package dynamic

import (
	"fmt"
	"math/rand"

	"edgecache/internal/baseline"
	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/trace"
)

// ChurnConfig describes the popularity process.
type ChurnConfig struct {
	// Slots is the horizon length (≥ 1).
	Slots int
	// SwapsPerSlot is how many random content pairs exchange popularity
	// between consecutive slots. 0 freezes the workload.
	SwapsPerSlot int
	// SlotScale, when non-empty, multiplies each slot's demand by the
	// given factor (length must be ≥ Slots) — e.g. a diurnal curve from
	// trace.DiurnalProfile. Empty means constant load.
	SlotScale []float64
	// Seed drives the churn.
	Seed int64
}

func (c ChurnConfig) validate() error {
	if c.Slots <= 0 {
		return fmt.Errorf("dynamic: Slots must be positive, got %d", c.Slots)
	}
	if c.SwapsPerSlot < 0 {
		return fmt.Errorf("dynamic: SwapsPerSlot must be non-negative, got %d", c.SwapsPerSlot)
	}
	if len(c.SlotScale) > 0 && len(c.SlotScale) < c.Slots {
		return fmt.Errorf("dynamic: SlotScale has %d entries for %d slots", len(c.SlotScale), c.Slots)
	}
	for i, f := range c.SlotScale {
		if f < 0 {
			return fmt.Errorf("dynamic: SlotScale[%d] = %v is negative", i, f)
		}
	}
	return nil
}

// EvolveDemand returns a copy of demand with the given number of random
// content-pair swaps applied (columns exchanged across all MU groups).
func EvolveDemand(demand [][]float64, swaps int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, len(demand))
	for u := range demand {
		out[u] = append([]float64(nil), demand[u]...)
	}
	if len(demand) == 0 || len(demand[0]) < 2 {
		return out
	}
	f := len(demand[0])
	for s := 0; s < swaps; s++ {
		a, b := rng.Intn(f), rng.Intn(f)
		if a == b {
			continue
		}
		for u := range out {
			out[u][a], out[u][b] = out[u][b], out[u][a]
		}
	}
	return out
}

// SlotResult is one slot's outcome under the three planning regimes.
type SlotResult struct {
	Slot int
	// Replan is the cost when Algorithm 1 re-optimizes caches and routing
	// for the slot's demand; CacheChanges counts the content placements
	// that differ from the previous slot (the refresh traffic re-planning
	// causes).
	Replan       float64
	CacheChanges int
	// Static is the cost when the slot-0 caches are kept and only the
	// routing re-optimizes (caching is the slow, expensive decision;
	// routing adapts per slot for free).
	Static float64
	// LRFU is the online baseline replayed against the slot's demand with
	// its caches carried over from the previous slot's replay.
	LRFU float64
}

// StudyResult aggregates a churn study.
type StudyResult struct {
	Slots []SlotResult
	// TotalReplan/Static/LRFU are horizon sums; TotalCacheChanges counts
	// every placement change the re-planning regime made after slot 0.
	TotalReplan, TotalStatic, TotalLRFU float64
	TotalCacheChanges                   int
}

// RunChurnStudy executes the study on the given base instance.
func RunChurnStudy(base *model.Instance, churn ChurnConfig, sub core.SubproblemConfig) (*StudyResult, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if err := churn.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(churn.Seed))

	res := &StudyResult{}
	demand := base.Demand
	var prevCache *model.CachingPolicy
	var staticCache *model.CachingPolicy
	for slot := 0; slot < churn.Slots; slot++ {
		if slot > 0 {
			demand = EvolveDemand(demand, churn.SwapsPerSlot, rng)
		}
		inst := base.Clone()
		inst.Demand = demand
		if len(churn.SlotScale) > 0 {
			scaled, err := trace.ScaleDemand(demand, churn.SlotScale[slot])
			if err != nil {
				return nil, err
			}
			inst.Demand = scaled
		}

		// Re-planning regime: full Algorithm 1 on the slot's demand.
		coord, err := core.NewCoordinator(inst, core.Config{Sub: sub})
		if err != nil {
			return nil, err
		}
		replan, err := coord.Run()
		if err != nil {
			return nil, err
		}
		slotRes := SlotResult{Slot: slot, Replan: replan.Solution.Cost.Total}
		if prevCache != nil {
			slotRes.CacheChanges = cacheDiff(prevCache, replan.Solution.Caching)
		}
		prevCache = replan.Solution.Caching

		// Static regime: slot-0 caches, fresh routing.
		if staticCache == nil {
			staticCache = replan.Solution.Caching
			slotRes.Static = slotRes.Replan
		} else {
			routing, err := baseline.GreedyRouting(inst, staticCache)
			if err != nil {
				return nil, err
			}
			slotRes.Static = model.TotalServingCost(inst, routing).Total
		}

		// LRFU regime: fresh online replay per slot (its caches would
		// carry over in a long-running system; the per-slot replay is the
		// conservative approximation that favors LRFU by skipping the
		// adjustment transient only on slot 0).
		lrfu, err := baseline.PlanLRFU(inst, baseline.LRFUConfig{Seed: churn.Seed + int64(slot)})
		if err != nil {
			return nil, err
		}
		slotRes.LRFU = lrfu.OnlineCost.Total

		res.Slots = append(res.Slots, slotRes)
		res.TotalReplan += slotRes.Replan
		res.TotalStatic += slotRes.Static
		res.TotalLRFU += slotRes.LRFU
		res.TotalCacheChanges += slotRes.CacheChanges
	}
	return res, nil
}

// cacheDiff counts placements present in exactly one of the two policies
// (an XOR-popcount over the packed bitsets).
func cacheDiff(a, b *model.CachingPolicy) int {
	return a.DiffCount(b)
}
