package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsKnownLP(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
	// Classic textbook duals: y1=0 (x ≤ 4 slack), y2=1.5, y3=1.
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{3, 5}
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	sol := requireOptimal(t, p)
	want := []float64{0, 1.5, 1}
	if len(sol.Duals) != 3 {
		t.Fatalf("Duals length = %d, want 3", len(sol.Duals))
	}
	for i := range want {
		if !almostEqual(sol.Duals[i], want[i]) {
			t.Errorf("dual[%d] = %v, want %v", i, sol.Duals[i], want[i])
		}
	}
}

func TestDualsMinimizationGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10 (binding) → dual = marginal cost of one
	// extra unit of requirement = 2 (cheapest variable fills it).
	p := NewProblem(2)
	p.Obj = []float64{2, 3}
	p.AddConstraint([]float64{1, 1}, GE, 10)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Duals[0], 2) {
		t.Errorf("dual = %v, want 2", sol.Duals[0])
	}
}

func TestDualsEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 5, x ≤ 3 → x=3, y=2. Raising the RHS to 6
	// forces one more unit of y: dual = 2.
	p := NewProblem(2)
	p.Obj = []float64{1, 2}
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.SetBounds(0, 0, 3)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Duals[0], 2) {
		t.Errorf("equality dual = %v, want 2", sol.Duals[0])
	}
}

func TestDualsNegativeRHS(t *testing.T) {
	// min x + y, x,y ∈ [-5, 5] free-ish, x + y ≥ -4 binding → dual 1.
	p := NewProblem(2)
	p.Obj = []float64{1, 1}
	p.SetBounds(0, -5, 5)
	p.SetBounds(1, -2, 2)
	p.AddConstraint([]float64{1, 1}, GE, -4)
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Duals[0], 1) {
		t.Errorf("dual = %v, want 1", sol.Duals[0])
	}
}

func TestDualsNonBindingIsZero(t *testing.T) {
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.SetBounds(0, 0, 2)
	p.AddConstraint([]float64{1}, LE, 100) // slack: dual 0
	sol := requireOptimal(t, p)
	if !almostEqual(sol.Duals[0], 0) {
		t.Errorf("non-binding dual = %v, want 0", sol.Duals[0])
	}
}

func TestMILPDualsNil(t *testing.T) {
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.SetBounds(0, 0, 2.5)
	p.MarkInteger(0)
	p.AddConstraint([]float64{1}, LE, 2.2)
	sol, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Duals != nil {
		t.Error("MILP solution should not carry LP duals")
	}
}

// TestDualsFiniteDifferenceProperty verifies the shadow-price semantics on
// random LPs: perturbing a constraint's RHS by ±h changes the optimum by
// ≈ dual·(±h). Degenerate optima have one-sided shadow prices, so cases
// where the forward and backward differences disagree are skipped.
func TestDualsFiniteDifferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for trial := 0; trial < 200 && checked < 60; trial++ {
		n := 2 + rng.Intn(4)
		p := NewProblem(n)
		p.Maximize = rng.Intn(2) == 0
		for j := 0; j < n; j++ {
			p.Obj[j] = rng.Float64()*10 - 5
			p.SetBounds(j, 0, 1+rng.Float64()*3)
		}
		rows := 1 + rng.Intn(3)
		for r := 0; r < rows; r++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = rng.Float64() * 4
			}
			p.AddConstraint(coef, LE, 1+rng.Float64()*8)
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			continue
		}
		target := rng.Intn(rows)
		const h = 1e-5
		perturb := func(d float64) (float64, bool) {
			q := p.cloneShallow()
			cons := append([]Constraint(nil), p.Cons...)
			cons[target] = Constraint{
				Coef: p.Cons[target].Coef,
				Rel:  p.Cons[target].Rel,
				RHS:  p.Cons[target].RHS + d,
			}
			q.Cons = cons
			s, err := Solve(q)
			if err != nil || s.Status != Optimal {
				return 0, false
			}
			return s.Objective, true
		}
		up, okUp := perturb(h)
		down, okDown := perturb(-h)
		if !okUp || !okDown {
			continue
		}
		fwd := (up - sol.Objective) / h
		bwd := (sol.Objective - down) / h
		if math.Abs(fwd-bwd) > 1e-3*(1+math.Abs(fwd)) {
			continue // degenerate: one-sided shadow price
		}
		checked++
		if math.Abs(fwd-sol.Duals[target]) > 1e-3*(1+math.Abs(fwd)) {
			t.Errorf("trial %d: dual[%d] = %v, finite difference = %v",
				trial, target, sol.Duals[target], fwd)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d non-degenerate cases checked; generator too degenerate", checked)
	}
}

// TestStrongDualityOnStandardLPs: for LPs with default bounds [0, ∞) the
// dual objective Σ y_i·b_i must equal the primal optimum (strong duality;
// variable bounds carry no extra duals in this family).
func TestStrongDualityOnStandardLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	checked := 0
	for trial := 0; trial < 100 && checked < 40; trial++ {
		n := 2 + rng.Intn(4)
		p := NewProblem(n)
		// Minimize positive costs over covering constraints: bounded and
		// feasible with default [0, ∞) bounds.
		for j := 0; j < n; j++ {
			p.Obj[j] = 1 + rng.Float64()*9
		}
		rows := 1 + rng.Intn(3)
		for r := 0; r < rows; r++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = rng.Float64() * 4
			}
			coef[rng.Intn(n)] += 0.5 // ensure the row is satisfiable
			p.AddConstraint(coef, GE, 1+rng.Float64()*6)
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			continue
		}
		checked++
		var dualObj float64
		for i, c := range p.Cons {
			dualObj += sol.Duals[i] * c.RHS
		}
		if math.Abs(dualObj-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Errorf("trial %d: dual objective %v != primal %v", trial, dualObj, sol.Objective)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d cases checked", checked)
	}
}
