// Package sim deploys Algorithm 1 as a real distributed protocol: one BS
// agent (coordinator/aggregator) and N SBS agents (sub-problem solvers)
// exchanging transport messages. This is the paper's operational setting —
// SBSs owned by different operators that reveal only their (LPPM-protected)
// routing uploads, never their internal state.
//
// Protocol per sweep τ, phase n (matching Algorithm 1 line by line):
//
//	BS  → SBS n: MsgPhaseStart{Sweep, Phase, AggregateAnnounce{y_{-n}}}
//	SBS n → BS:  MsgPolicyUpload{Sweep, Phase, PolicyUpload{x_n, ŷ_n}}
//
// and a final MsgDone broadcast. The BS tolerates SBS failures at three
// levels: the announce is retransmitted within the phase window
// (AnnounceRetries), a phase whose upload never arrives keeps the SBS's
// previous policy, and an SBS that misses QuarantineAfter consecutive
// phases is quarantined — its phases are skipped for QuarantineSweeps
// sweeps and a cheap ProbeTimeout-bounded rejoin probe (instead of a full
// PhaseTimeout wait) decides when it is healthy again. Per-SBS fault
// accounting is returned on core.RunResult.Faults and every anomaly is
// observable through an EventHook.
//
// With privacy disabled the protocol run is bit-for-bit equivalent to the
// in-process core.Coordinator; the integration tests assert this.
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/transport"
)

// BSConfig tunes the BS agent.
type BSConfig struct {
	// Gamma and MaxSweeps follow core.Config (0 means defaults: 1e-6, 50).
	Gamma     float64
	MaxSweeps int
	// PhaseTimeout bounds the wait for one SBS upload. 0 means 30s.
	PhaseTimeout time.Duration
	// AnnounceRetries is how many times MsgPhaseStart is retransmitted
	// within one phase window (the window splits into AnnounceRetries+1
	// equal sub-windows, re-announcing at each boundary). Lost announces
	// and lost uploads are both recovered this way. 0 means 2; negative
	// disables retransmission.
	AnnounceRetries int
	// QuarantineAfter is the number of consecutive full-window misses
	// before an SBS is quarantined. 0 means 2; negative disables
	// quarantine (every miss burns a full PhaseTimeout, the pre-fault-
	// tolerance behaviour).
	QuarantineAfter int
	// QuarantineSweeps is how many sweeps a quarantined SBS's phases are
	// skipped outright before a cheap rejoin probe is sent. 0 means 3.
	QuarantineSweeps int
	// ProbeTimeout bounds the wait for a rejoin-probe reply. 0 means
	// PhaseTimeout/8.
	ProbeTimeout time.Duration
	// OnEvent, when non-nil, observes protocol anomalies and
	// fault-handling actions (see EventKind). Must be fast and non-nil
	// safe across goroutines.
	OnEvent EventHook
	// Checkpoint, when non-nil, snapshots the BS's sweep state (policies,
	// aggregate, history, per-SBS health and fault accounting) to the
	// configured sink at sweep boundaries, enabling Resume after a
	// coordinator crash. EachPhase is ignored: the BS's γ-deferral state
	// (sweepMissed) is intra-sweep and not captured, so the agent only
	// checkpoints at boundaries where that state is empty.
	Checkpoint *core.CheckpointConfig
}

func (c BSConfig) withDefaults() BSConfig {
	if c.Gamma <= 0 {
		c.Gamma = 1e-6
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 50
	}
	if c.PhaseTimeout <= 0 {
		c.PhaseTimeout = 30 * time.Second
	}
	if c.AnnounceRetries == 0 {
		c.AnnounceRetries = 2
	} else if c.AnnounceRetries < 0 {
		c.AnnounceRetries = 0
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 2
	}
	if c.QuarantineSweeps <= 0 {
		c.QuarantineSweeps = 3
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.PhaseTimeout / 8
	}
	return c
}

// sbsHealth is the BS's per-SBS liveness record.
type sbsHealth struct {
	// consecMisses counts full-window misses since the last good upload.
	consecMisses int
	// quarantined marks the SBS as skipped; probeSweep is the sweep at
	// which the next rejoin probe goes out.
	quarantined bool
	probeSweep  int
	// holdConv defers the γ-convergence check while this SBS is freshly
	// quarantined: its policy is frozen, so the cost plateaus immediately
	// and the criterion would fire before a transient outage can heal.
	// The hold is released by the first rejoin probe of the outage —
	// answered (rejoin) or not (persistently dead, stop waiting for it).
	holdConv bool
}

// BSAgent is the base-station side of the protocol. The BS knows the
// public instance data (demands, links — §I of the paper argues request
// information is the least sensitive data class) but never any SBS's
// internal solver state.
type BSAgent struct {
	inst     *model.Instance
	cfg      BSConfig
	ep       transport.Endpoint
	sbsNames []string
	health   []sbsHealth
}

// NewBSAgent builds the BS agent. sbsNames[n] is the endpoint name of
// SBS n and must have exactly N entries.
func NewBSAgent(inst *model.Instance, cfg BSConfig, ep transport.Endpoint, sbsNames []string) (*BSAgent, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if ep == nil {
		return nil, errors.New("sim: BS agent requires an endpoint")
	}
	if len(sbsNames) != inst.N {
		return nil, fmt.Errorf("sim: %d SBS names for N=%d SBSs", len(sbsNames), inst.N)
	}
	if cfg.Checkpoint != nil && cfg.Checkpoint.Sink == nil {
		return nil, errors.New("sim: checkpoint config requires a sink")
	}
	return &BSAgent{inst: inst, cfg: cfg.withDefaults(), ep: ep, sbsNames: sbsNames,
		health: make([]sbsHealth, inst.N)}, nil
}

// event reports a protocol event to the configured hook, if any.
func (b *BSAgent) event(kind EventKind, sbs, sweep, phase int, err error) {
	if b.cfg.OnEvent != nil {
		b.cfg.OnEvent(Event{Kind: kind, SBS: sbs, Sweep: sweep, Phase: phase, Err: err})
	}
}

// Run drives the full protocol and returns the converged result. SBS
// agents must be running (or must join before their phase times out).
func (b *BSAgent) Run(ctx context.Context) (*core.RunResult, error) {
	return b.run(ctx, nil)
}

// Resume continues a crashed run from a snapshot: health and fault
// accounting are restored, live SBS agents are rehydrated with a
// MsgStateSync handshake, and the sweep loop continues from the recorded
// boundary. Without LPPM the resumed trajectory is bit-identical to the
// uninterrupted run's (the SBS solvers are deterministic and the snapshot
// carries the tracker's exact running sums); with LPPM the SBS agents
// redraw noise the BS cannot reposition, so only convergence — not
// bit-equality — is guaranteed.
func (b *BSAgent) Resume(ctx context.Context, ck *model.Checkpoint) (*core.RunResult, error) {
	if ck == nil {
		return nil, errors.New("sim: nil checkpoint")
	}
	if err := ck.Validate(b.inst); err != nil {
		return nil, err
	}
	if ck.HasNoise {
		return nil, errors.New("sim: checkpoint records an in-process noise stream; in the distributed deployment noise lives inside the SBS agents and the BS cannot restore it")
	}
	if ck.Phase != 0 {
		return nil, fmt.Errorf("sim: BS agent resumes at sweep boundaries only, got phase %d", ck.Phase)
	}
	if ck.Engine.Family() != model.FamilyGaussSeidel {
		return nil, fmt.Errorf("sim: checkpoint records a %v-family engine; the BS protocol is a Gauss-Seidel sweep and cannot resume a %v run", ck.Engine.Family(), ck.Engine)
	}
	for i, v := range ck.Order {
		if v != i {
			return nil, fmt.Errorf("sim: BS agent sweeps SBSs in identity order; checkpoint order has %d at position %d", v, i)
		}
	}
	return b.run(ctx, ck)
}

// bsSweeper is the network-backed core.SweepEngine: one Sweep call runs
// one full protocol sweep (announce/await/apply per SBS, with the
// quarantine and probe machinery). The BS thereby shares the exact outer
// loop — cost evaluation, best tracking, γ stop, checkpoint cadence — with
// the in-process Coordinator via core.Driver, which is what keeps the two
// deployments bit-for-bit equivalent with privacy off. Like the Jacobi
// engines it never calls phaseDone: the BS's γ-deferral state is
// intra-sweep and not captured, so checkpoints happen at sweep boundaries
// only (BSConfig.Checkpoint documents that EachPhase is ignored).
type bsSweeper struct {
	b   *BSAgent
	ctx context.Context
	// yMinus is the per-phase O(U·F) scratch, exactly like the in-process
	// engines: the aggregate advances only when an upload is installed.
	yMinus model.Mat
	faults []core.SBSFaultStats
	// sweepMissed records whether a live (non-quarantined) SBS missed its
	// phase in the sweep just executed; a frozen policy makes the cost
	// spuriously flat, so such sweeps must not satisfy the γ-criterion.
	sweepMissed bool
}

func (s *bsSweeper) Kind() model.EngineKind { return model.EngineGaussSeidel }
func (s *bsSweeper) Close()                 {}

// holdConvergence implements the driver veto: the γ-criterion is deferred
// on sweeps where a live SBS missed and while any freshly-quarantined SBS
// awaits its first rejoin probe — in both cases the cost is flat only
// because policies are frozen, not because the algorithm has converged.
func (s *bsSweeper) holdConvergence() bool {
	if s.sweepMissed {
		return true
	}
	for n := range s.b.health {
		if s.b.health[n].holdConv {
			return true
		}
	}
	return false
}

func (s *bsSweeper) Sweep(st *core.SweepState, sweep, first int, _ func(int) error) error {
	b, inst := s.b, s.b.inst
	s.sweepMissed = false
	for pi := first; pi < len(st.Order); pi++ {
		n := st.Order[pi] // identity order, validated at Resume
		h := &b.health[n]
		fs := &s.faults[n]

		// Quarantined SBSs are skipped outright — no announce, no
		// PhaseTimeout burned — until their probe sweep comes up;
		// then one cheap probe (ProbeTimeout) decides rejoin vs
		// another quarantine span.
		probing := false
		timeout := b.cfg.PhaseTimeout
		if h.quarantined {
			if sweep < h.probeSweep {
				fs.SkippedPhases++
				continue
			}
			probing = true
			timeout = b.cfg.ProbeTimeout
		}

		st.Tracker.YMinusInto(inst, st.Y, n, s.yMinus)
		announce, err := buildAnnounce(sweep, n, s.yMinus)
		if err != nil {
			return err
		}
		b.sendAnnounce(s.ctx, sweep, n, announce)
		upload, ok, err := b.awaitUpload(s.ctx, sweep, n, timeout, fs, announce)
		if err != nil {
			return err
		}
		if !ok {
			// SBS unreachable this phase: keep its old policy.
			if probing {
				fs.FailedProbes++
				fs.QuarantineSpans++
				h.probeSweep = sweep + b.cfg.QuarantineSweeps + 1
				// The first probe of the outage went unanswered: the
				// SBS is treated as persistently dead and no longer
				// delays convergence.
				h.holdConv = false
				b.event(EventProbeFailed, n, sweep, n, nil)
				b.event(EventQuarantine, n, sweep, n, nil)
			} else {
				fs.Misses++
				h.consecMisses++
				s.sweepMissed = true
				b.event(EventUploadTimeout, n, sweep, n, nil)
				if b.cfg.QuarantineAfter > 0 && h.consecMisses >= b.cfg.QuarantineAfter {
					h.quarantined = true
					h.consecMisses = 0
					fs.QuarantineSpans++
					h.probeSweep = sweep + b.cfg.QuarantineSweeps + 1
					h.holdConv = true
					b.event(EventQuarantine, n, sweep, n, nil)
				}
			}
			continue
		}
		if h.quarantined {
			h.quarantined = false
			h.holdConv = false
			b.event(EventRejoin, n, sweep, n, nil)
		}
		h.consecMisses = 0
		if err := b.applyUpload(st.X, st.Y, st.Tracker, n, s.yMinus, upload); err != nil {
			// A malformed upload is treated like a missing one; the
			// previous policy stays in force (and the aggregate is left
			// untouched, so the tracker stays consistent with y).
			fs.Malformed++
			b.event(EventMalformedUpload, n, sweep, n, err)
			continue
		}
	}
	return nil
}

func (b *BSAgent) run(ctx context.Context, ck *model.Checkpoint) (*core.RunResult, error) {
	inst := b.inst
	order := make([]int, inst.N)
	for i := range order {
		order[i] = i
	}
	st := core.NewSweepState(inst, order)
	sweeper := &bsSweeper{b: b, ctx: ctx, yMinus: inst.NewUFMat(),
		faults: make([]core.SBSFaultStats, inst.N)}
	if ck != nil {
		st.Sweep = ck.Sweep
		st.X = ck.Caching.Clone()
		st.Y = ck.Routing.Clone()
		st.Tracker.Restore(ck.Aggregate)
		st.History = append([]float64(nil), ck.History...)
		st.PrevCost = ck.PrevCost
		st.Best = ck.Best.Clone()
		b.restoreHealth(ck.Health, sweeper.faults)
		b.stateSync(ctx, ck)
	}
	d := &core.Driver{
		Inst:            inst,
		Gamma:           b.cfg.Gamma,
		MaxSweeps:       b.cfg.MaxSweeps,
		HoldConvergence: sweeper.holdConvergence,
	}
	if ckpt := b.cfg.Checkpoint; ckpt != nil {
		// Sweep-boundary snapshots only: bsSweeper never calls phaseDone,
		// so the driver's EachPhase hook is inert even if set. Unlike
		// core.Coordinator the BS also records per-SBS health and fault
		// accounting.
		d.Checkpoint = ckpt
		d.Snapshot = func(st *core.SweepState, res *core.RunResult, sweep, _ int) error {
			return b.snapshot(ckpt.Sink, st, res, sweeper.faults, sweep)
		}
	}
	res, err := d.Run(sweeper, st)
	if err != nil {
		return nil, err
	}
	res.Faults = sweeper.faults
	b.broadcastDone(ctx)
	return res, nil
}

// buildAnnounce renders the phase-start message carrying y_{-n}. The wire
// schema stays nested, so the flat matrix is materialized at this boundary.
func buildAnnounce(sweep, n int, yMinus model.Mat) (transport.Message, error) {
	payload, err := transport.EncodePayload(transport.AggregateAnnounce{
		YMinus: yMinus.Rows(),
	})
	if err != nil {
		return transport.Message{}, err
	}
	return transport.Message{Type: transport.MsgPhaseStart, Sweep: sweep, Phase: n, Payload: payload}, nil
}

// sendAnnounce delivers a phase-start to SBS n. Send failures are not
// fatal (the await will time out and the health machinery takes over),
// but they are surfaced to the event hook.
func (b *BSAgent) sendAnnounce(ctx context.Context, sweep, n int, msg transport.Message) {
	if err := b.ep.Send(ctx, b.sbsNames[n], msg); err != nil {
		b.event(EventSendFailed, n, sweep, n, err)
	}
}

// awaitUpload waits up to timeout for SBS n's upload for (sweep, n),
// discarding stale or duplicated messages. The window is split into
// AnnounceRetries+1 sub-windows and the announce message is
// retransmitted at each boundary, so a single lost announce or upload
// costs one sub-window, not the whole phase. The retransmission is
// byte-identical (y_{-n} cannot change within a phase) and the SBS's
// solver is deterministic, so a double-delivered announce is harmless.
// ok=false signals a timeout.
func (b *BSAgent) awaitUpload(ctx context.Context, sweep, n int, timeout time.Duration,
	fs *core.SBSFaultStats, announce transport.Message) (transport.PolicyUpload, bool, error) {
	// Probes retransmit like regular phases: a probe's cost is its
	// (short) timeout, not its sends, and on lossy links a single-shot
	// probe would fail even against a healthy rejoined SBS.
	retries := b.cfg.AnnounceRetries
	sub := timeout / time.Duration(retries+1)
	overall, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	for attempt := 0; ; attempt++ {
		waitCtx, waitCancel := overall, context.CancelFunc(func() {})
		if attempt < retries {
			waitCtx, waitCancel = context.WithTimeout(overall, sub)
		}
		upload, ok, err := b.recvUpload(waitCtx, sweep, n, fs)
		waitCancel()
		if err != nil || ok {
			return upload, ok, err
		}
		// Sub-window expired. Give up when the full window (or the parent
		// context) is spent; otherwise retransmit the announcement.
		if ctx.Err() != nil {
			return transport.PolicyUpload{}, false, ctx.Err()
		}
		if overall.Err() != nil {
			return transport.PolicyUpload{}, false, nil
		}
		fs.Retries++
		b.event(EventAnnounceRetry, n, sweep, n, nil)
		b.sendAnnounce(ctx, sweep, n, announce)
	}
}

// recvUpload drains the inbox until SBS n's upload for (sweep, n) arrives
// or the context expires. A deadline returns ok=false with a nil error;
// any other receive failure is fatal.
func (b *BSAgent) recvUpload(ctx context.Context, sweep, n int,
	fs *core.SBSFaultStats) (transport.PolicyUpload, bool, error) {
	for {
		msg, err := b.ep.Recv(ctx)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() != nil {
				return transport.PolicyUpload{}, false, nil
			}
			return transport.PolicyUpload{}, false, err
		}
		if msg.Type != transport.MsgPolicyUpload || msg.Sweep != sweep || msg.Phase != n ||
			msg.From != b.sbsNames[n] {
			continue // stale, duplicated or foreign message
		}
		var upload transport.PolicyUpload
		if err := transport.DecodePayload(msg.Payload, &upload); err != nil {
			// Undecodable upload: count it and keep waiting — a
			// retransmission may still deliver a good copy in-window.
			fs.Malformed++
			b.event(EventBadUpload, n, sweep, n, err)
			continue
		}
		return upload, true, nil
	}
}

// applyUpload validates shapes and installs SBS n's policies, advancing
// the BS's running aggregate from the yMinus computed for this phase.
func (b *BSAgent) applyUpload(x *model.CachingPolicy, y *model.RoutingPolicy,
	tracker *model.AggregateTracker, n int, yMinus model.Mat, up transport.PolicyUpload) error {
	inst := b.inst
	if len(up.Cache) != inst.F {
		return fmt.Errorf("sim: SBS %d cache vector has %d entries, want %d", n, len(up.Cache), inst.F)
	}
	routing, err := model.MatFromRows(up.Routing)
	if err != nil {
		return fmt.Errorf("sim: SBS %d routing: %w", n, err)
	}
	if routing.U != inst.U || routing.F != inst.F {
		return fmt.Errorf("sim: SBS %d routing is %dx%d, want %dx%d", n, routing.U, routing.F, inst.U, inst.F)
	}
	x.SetRow(n, up.Cache)
	tracker.Install(inst, y, n, yMinus, routing)
	return nil
}

// broadcastDone tells every SBS the run finished; failures are ignored
// (an SBS that already left does not need the message).
func (b *BSAgent) broadcastDone(ctx context.Context) {
	for _, name := range b.sbsNames {
		_ = b.ep.Send(ctx, name, transport.Message{Type: transport.MsgDone})
	}
}

// snapshot captures the BS's sweep state as of boundary sweep and hands it
// to the sink. Unlike core.Coordinator the BS agent also records per-SBS
// health and fault accounting, so a resumed BS keeps quarantine spans and
// probe schedules instead of re-learning which SBSs are dead.
func (b *BSAgent) snapshot(sink model.CheckpointSink, st *core.SweepState, res *core.RunResult,
	faults []core.SBSFaultStats, sweep int) error {
	ck := &model.Checkpoint{
		Sweep:      sweep,
		Phase:      0,
		Engine:     model.EngineGaussSeidel,
		Order:      append([]int(nil), st.Order...),
		Caching:    st.X.Clone(),
		Routing:    st.Y.Clone(),
		Aggregate:  st.Tracker.Aggregate().Clone(),
		History:    append([]float64(nil), res.History...),
		PrevCost:   st.PrevCost,
		Best:       st.Best.Clone(),
		Health:     b.healthSnapshot(faults),
		InstanceFP: b.inst.Fingerprint(),
	}
	if err := sink.Save(ck); err != nil {
		return fmt.Errorf("sim: checkpoint at sweep %d: %w", sweep, err)
	}
	return nil
}

// healthSnapshot freezes the live per-SBS health records plus the fault
// accounting into checkpoint form.
func (b *BSAgent) healthSnapshot(faults []core.SBSFaultStats) []model.SBSHealthState {
	hs := make([]model.SBSHealthState, len(b.health))
	for n := range hs {
		h := b.health[n]
		f := faults[n]
		hs[n] = model.SBSHealthState{
			ConsecMisses:    h.consecMisses,
			Quarantined:     h.quarantined,
			ProbeSweep:      h.probeSweep,
			HoldConv:        h.holdConv,
			Misses:          f.Misses,
			Retries:         f.Retries,
			Malformed:       f.Malformed,
			QuarantineSpans: f.QuarantineSpans,
			SkippedPhases:   f.SkippedPhases,
			FailedProbes:    f.FailedProbes,
		}
	}
	return hs
}

// restoreHealth is the inverse of healthSnapshot. A checkpoint without
// health entries (e.g. one captured by the in-process Coordinator) leaves
// the all-healthy initial state in place.
func (b *BSAgent) restoreHealth(hs []model.SBSHealthState, faults []core.SBSFaultStats) {
	for n := range hs {
		h := hs[n]
		b.health[n] = sbsHealth{
			consecMisses: h.ConsecMisses,
			quarantined:  h.Quarantined,
			probeSweep:   h.ProbeSweep,
			holdConv:     h.HoldConv,
		}
		faults[n] = core.SBSFaultStats{
			Misses:          h.Misses,
			Retries:         h.Retries,
			Malformed:       h.Malformed,
			QuarantineSpans: h.QuarantineSpans,
			SkippedPhases:   h.SkippedPhases,
			FailedProbes:    h.FailedProbes,
		}
	}
}

// stateSync rebroadcasts the resume point to every non-quarantined SBS so
// live agents drop pre-crash ghosts and rehydrate their own last
// BS-visible policy (each sync carries ONLY the receiving SBS's row — the
// privacy premise of §III is unchanged). Acks are gathered within one
// ProbeTimeout window; a missing ack is observable (EventStateSyncMiss)
// but never fatal — the phase-timeout machinery owns recovery, exactly as
// for lost announces.
func (b *BSAgent) stateSync(ctx context.Context, ck *model.Checkpoint) {
	awaiting := make([]bool, b.inst.N)
	expected := 0
	for n, name := range b.sbsNames {
		if b.health[n].quarantined {
			continue // known-dead: do not stall the handshake on it
		}
		payload, err := transport.EncodePayload(transport.StateSync{
			Sweep:   ck.Sweep,
			Phase:   ck.Phase,
			Cache:   ck.Caching.RowBools(n),
			Routing: ck.Routing.SBS(n).Rows(),
		})
		if err != nil {
			b.event(EventSendFailed, n, ck.Sweep, ck.Phase, err)
			continue
		}
		msg := transport.Message{Type: transport.MsgStateSync, Sweep: ck.Sweep, Phase: ck.Phase, Payload: payload}
		if err := b.ep.Send(ctx, name, msg); err != nil {
			b.event(EventSendFailed, n, ck.Sweep, ck.Phase, err)
		}
		awaiting[n] = true
		expected++
	}
	if expected == 0 {
		return
	}
	waitCtx, cancel := context.WithTimeout(ctx, b.cfg.ProbeTimeout)
	defer cancel()
	for acked := 0; acked < expected; {
		msg, err := b.ep.Recv(waitCtx)
		if err != nil {
			break
		}
		if msg.Type != transport.MsgStateAck || msg.Sweep != ck.Sweep || msg.Phase != ck.Phase {
			continue
		}
		for n, name := range b.sbsNames {
			if name == msg.From && awaiting[n] {
				awaiting[n] = false
				acked++
				break
			}
		}
	}
	for n, w := range awaiting {
		if w {
			b.event(EventStateSyncMiss, n, ck.Sweep, ck.Phase, nil)
		}
	}
}

// SBSAgent is the small-base-station side: it waits for phase
// announcements, solves its sub-problem P_n, optionally applies LPPM to the
// routing before it leaves the premises, and uploads the result.
type SBSAgent struct {
	n      int
	sub    *core.Subproblem
	lppm   *core.LPPM
	ep     transport.Endpoint
	bsName string
	hook   EventHook

	// syncSweep/syncPhase mark the last BS resume point received via
	// MsgStateSync; announces strictly older are pre-crash ghosts and are
	// dropped (EventStaleAnnounce).
	syncSweep, syncPhase int
	// lastSweep/lastPhase/lastReply cache the most recent upload so a
	// duplicated announce (BS retransmission, or replay across a BS
	// restart at the same protocol point) is answered byte-identically
	// without re-solving — and, under LPPM, without drawing fresh noise
	// for a protocol point already answered.
	lastSweep, lastPhase int
	lastReply            []byte
	// restoredCache/restoredRouting hold the policy carried by the last
	// MsgStateSync: this agent's own last BS-visible decisions. An SBS
	// that itself restarted (losing its in-memory view) recovers it here.
	restoredCache   []bool
	restoredRouting [][]float64
}

// NewSBSAgent builds the agent for SBS n. privacy may be nil. The SBS uses
// the shared public instance data plus its own private columns; the solver
// never sees another SBS's routing, only the BS aggregate.
func NewSBSAgent(inst *model.Instance, n int, sub core.SubproblemConfig,
	privacy *core.PrivacyConfig, ep transport.Endpoint, bsName string) (*SBSAgent, error) {
	if ep == nil {
		return nil, errors.New("sim: SBS agent requires an endpoint")
	}
	if bsName == "" {
		return nil, errors.New("sim: SBS agent requires the BS endpoint name")
	}
	solver, err := core.NewSubproblem(inst, n, sub)
	if err != nil {
		return nil, err
	}
	a := &SBSAgent{n: n, sub: solver, ep: ep, bsName: bsName, lastSweep: -1, lastPhase: -1}
	if privacy != nil {
		lppm, err := core.NewLPPM(*privacy)
		if err != nil {
			return nil, err
		}
		a.lppm = lppm
	}
	return a, nil
}

// SetEventHook installs an observer for protocol anomalies (malformed or
// unsolvable announcements, failed upload sends). Call before Run.
func (a *SBSAgent) SetEventHook(h EventHook) { a.hook = h }

// event reports a protocol event to the configured hook, if any.
func (a *SBSAgent) event(kind EventKind, sweep, phase int, err error) {
	if a.hook != nil {
		a.hook(Event{Kind: kind, SBS: a.n, Sweep: sweep, Phase: phase, Err: err})
	}
}

// Run serves phase announcements until MsgDone or context cancellation.
// A cancelled context returns ctx.Err(); MsgDone returns nil.
func (a *SBSAgent) Run(ctx context.Context) error {
	for {
		msg, err := a.ep.Recv(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		switch msg.Type {
		case transport.MsgDone:
			return nil
		case transport.MsgPhaseStart:
			if err := a.handlePhase(ctx, msg); err != nil {
				return err
			}
		case transport.MsgStateSync:
			a.handleStateSync(ctx, msg)
		default:
			// Unexpected message: ignore (robustness against duplicates).
		}
	}
}

func (a *SBSAgent) handlePhase(ctx context.Context, msg transport.Message) error {
	// Announces older than the BS's announced resume point are pre-crash
	// ghosts still in flight; answering them would upload state the
	// resumed BS has already rolled past.
	if msg.Sweep < a.syncSweep || (msg.Sweep == a.syncSweep && msg.Phase < a.syncPhase) {
		a.event(EventStaleAnnounce, msg.Sweep, msg.Phase, nil)
		return nil
	}
	// A duplicated announce for the point just answered is served from the
	// reply cache: re-solving is wasted work, and under LPPM it would draw
	// fresh noise — spending privacy budget twice on one protocol point.
	if a.lastReply != nil && msg.Sweep == a.lastSweep && msg.Phase == a.lastPhase {
		a.event(EventReplayedUpload, msg.Sweep, msg.Phase, nil)
		return a.sendReply(ctx, msg.Sweep, msg.Phase, a.lastReply)
	}
	var ann transport.AggregateAnnounce
	if err := transport.DecodePayload(msg.Payload, &ann); err != nil {
		// Malformed announcement: skip; the BS will retransmit or time out.
		a.event(EventBadAnnounce, msg.Sweep, msg.Phase, err)
		return nil
	}
	yMinus, err := model.MatFromRows(ann.YMinus)
	if err != nil {
		// Ragged announcement: skip; the BS will retransmit or time out.
		a.event(EventBadAnnounce, msg.Sweep, msg.Phase, err)
		return nil
	}
	res, err := a.sub.Solve(yMinus)
	if err != nil {
		// Unsolvable announcement (bad shapes): skip.
		a.event(EventUnsolvable, msg.Sweep, msg.Phase, err)
		return nil
	}
	routing := res.Routing
	if a.lppm != nil {
		routing, err = a.lppm.Perturb(a.ep.Name(), res.Routing)
		if err != nil {
			return err
		}
	}
	payload, err := transport.EncodePayload(transport.PolicyUpload{Cache: res.Cache, Routing: routing.Rows()})
	if err != nil {
		return err
	}
	a.lastSweep, a.lastPhase, a.lastReply = msg.Sweep, msg.Phase, payload
	return a.sendReply(ctx, msg.Sweep, msg.Phase, payload)
}

// sendReply uploads a (possibly cached) policy payload for (sweep, phase).
// Send failures are non-fatal — the BS's timeout machinery owns recovery —
// unless the context itself is done.
func (a *SBSAgent) sendReply(ctx context.Context, sweep, phase int, payload []byte) error {
	reply := transport.Message{
		Type:    transport.MsgPolicyUpload,
		Sweep:   sweep,
		Phase:   phase,
		Payload: payload,
	}
	if err := a.ep.Send(ctx, a.bsName, reply); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.event(EventSendFailed, sweep, phase, err)
	}
	return nil
}

// handleStateSync rehydrates the agent after a BS resume: it records the
// resume point (the stale-announce filter), stores its own restored
// policy view, drops the reply cache (pre-crash uploads must not answer
// post-resume announces) and acknowledges.
func (a *SBSAgent) handleStateSync(ctx context.Context, msg transport.Message) {
	var sync transport.StateSync
	if err := transport.DecodePayload(msg.Payload, &sync); err != nil {
		a.event(EventBadAnnounce, msg.Sweep, msg.Phase, err)
		return
	}
	a.syncSweep, a.syncPhase = sync.Sweep, sync.Phase
	a.restoredCache, a.restoredRouting = sync.Cache, sync.Routing
	a.lastSweep, a.lastPhase, a.lastReply = -1, -1, nil
	a.event(EventStateSync, sync.Sweep, sync.Phase, nil)
	ack := transport.Message{Type: transport.MsgStateAck, Sweep: msg.Sweep, Phase: msg.Phase}
	if err := a.ep.Send(ctx, a.bsName, ack); err != nil {
		a.event(EventSendFailed, msg.Sweep, msg.Phase, err)
	}
}

// RestoredPolicy returns the agent's own last BS-visible policy as carried
// by the most recent MsgStateSync (nil before any sync). It is the
// recovery path for an SBS that itself restarted and lost its in-memory
// view.
func (a *SBSAgent) RestoredPolicy() (cache []bool, routing [][]float64) {
	return a.restoredCache, a.restoredRouting
}
