package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// instanceJSON is the stable on-disk schema for Instance. Field names are
// spelled out so saved scenarios remain readable and diffable.
type instanceJSON struct {
	SBSs      int         `json:"sbss"`
	Groups    int         `json:"groups"`
	Contents  int         `json:"contents"`
	Demand    [][]float64 `json:"demand"`
	Links     [][]bool    `json:"links"`
	CacheCap  []int       `json:"cache_capacity"`
	Bandwidth []float64   `json:"bandwidth"`
	EdgeCost  [][]float64 `json:"edge_cost"`
	BSCost    []float64   `json:"bs_cost"`
}

// WriteJSON serializes the instance, indented for human inspection. The
// instance is validated first so no malformed scenario reaches disk.
func (in *Instance) WriteJSON(w io.Writer) error {
	if err := in.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(instanceJSON{
		SBSs:      in.N,
		Groups:    in.U,
		Contents:  in.F,
		Demand:    in.Demand,
		Links:     in.Links,
		CacheCap:  in.CacheCap,
		Bandwidth: in.Bandwidth,
		EdgeCost:  in.EdgeCost,
		BSCost:    in.BSCost,
	})
}

// ReadJSON deserializes and validates an instance.
func ReadJSON(r io.Reader) (*Instance, error) {
	var raw instanceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("model: decode instance: %w", err)
	}
	in := &Instance{
		N: raw.SBSs, U: raw.Groups, F: raw.Contents,
		Demand:    raw.Demand,
		Links:     raw.Links,
		CacheCap:  raw.CacheCap,
		Bandwidth: raw.Bandwidth,
		EdgeCost:  raw.EdgeCost,
		BSCost:    raw.BSCost,
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// solutionJSON is the stable on-disk schema for Solution.
type solutionJSON struct {
	Caching  [][]bool      `json:"caching"`
	Routing  [][][]float64 `json:"routing"`
	Edge     float64       `json:"edge_cost"`
	Backhaul float64       `json:"backhaul_cost"`
	Total    float64       `json:"total_cost"`
}

// WriteJSON serializes the solution.
func (s *Solution) WriteJSON(w io.Writer) error {
	if s.Caching == nil || s.Routing == nil {
		return fmt.Errorf("model: solution missing policies")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(solutionJSON{
		Caching:  s.Caching.Bools(),
		Routing:  s.Routing.Blocks(),
		Edge:     s.Cost.Edge,
		Backhaul: s.Cost.Backhaul,
		Total:    s.Cost.Total,
	})
}

// ReadSolutionJSON deserializes a solution and re-derives its cost against
// the given instance (the stored cost is informational; the instance is
// authoritative). It fails if the policies do not fit the instance or are
// infeasible.
func ReadSolutionJSON(r io.Reader, in *Instance) (*Solution, error) {
	var raw solutionJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("model: decode solution: %w", err)
	}
	if len(raw.Caching) != in.N || len(raw.Routing) != in.N {
		return nil, fmt.Errorf("model: solution sized for %d SBSs, instance has %d", len(raw.Caching), in.N)
	}
	for n := 0; n < in.N; n++ {
		if len(raw.Caching[n]) != in.F {
			return nil, fmt.Errorf("model: caching row %d has %d entries, want %d", n, len(raw.Caching[n]), in.F)
		}
		if len(raw.Routing[n]) != in.U {
			return nil, fmt.Errorf("model: routing block %d has %d rows, want %d", n, len(raw.Routing[n]), in.U)
		}
		for u := 0; u < in.U; u++ {
			if len(raw.Routing[n][u]) != in.F {
				return nil, fmt.Errorf("model: routing[%d][%d] has %d entries, want %d",
					n, u, len(raw.Routing[n][u]), in.F)
			}
		}
	}
	caching, err := CachingPolicyFromBools(raw.Caching)
	if err != nil {
		return nil, err
	}
	routing, err := RoutingPolicyFromBlocks(raw.Routing)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Caching: caching, Routing: routing}
	if vs := CheckFeasibility(in, sol.Caching, sol.Routing); len(vs) != 0 {
		return nil, fmt.Errorf("model: stored solution infeasible:\n%s", FormatViolations(vs))
	}
	sol.Cost = TotalServingCost(in, sol.Routing)
	return sol, nil
}
