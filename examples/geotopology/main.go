// Geographic topology: build the edge network from physical placement
// instead of an abstract link count — SBSs and MU clusters dropped on a
// map, links from coverage radii, transmission costs from distance — then
// optimize caching and routing on it. This is how a deployment team would
// feed real site data into the library.
//
//	go run ./examples/geotopology
package main

import (
	"fmt"
	"log"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/topology"
	"edgecache/internal/trace"
)

func main() {
	// Drop 4 SBSs and 25 MU clusters on a 1000m × 1000m field; an SBS
	// covers MUs within 320m.
	geo, err := topology.PlaceGeometric(topology.GeometricConfig{
		SBSs:           4,
		Groups:         25,
		FieldSize:      1000,
		CoverageRadius: 320,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Edge transmission cost grows with distance (base 1 + 0.01/m);
	// the BS serves everything it can see at a flat premium plus its own
	// distance component.
	edgeCosts, err := topology.DistanceEdgeCosts(geo.SBSDist, 1, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	bsCosts := make([]float64, len(geo.BSDist))
	for u, d := range geo.BSDist {
		bsCosts[u] = 100 + 0.05*d
	}

	// Demand: a 40-video trending catalog spread over the clusters.
	views, err := trace.TrendingVideos(trace.TrendingConfig{
		Videos: 40, HeadViews: 120000, Exponent: 0.9, Jitter: 0.15, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, v := range views {
		total += v
	}
	demand, err := trace.DemandMatrix(views, 25, 3200/total, 8)
	if err != nil {
		log.Fatal(err)
	}

	inst := &model.Instance{
		N: 4, U: 25, F: 40,
		Demand:    demand,
		Links:     geo.Links,
		CacheCap:  []int{8, 8, 8, 8},
		Bandwidth: []float64{800, 800, 800, 800},
		EdgeCost:  edgeCosts,
		BSCost:    bsCosts,
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("field 1000m², coverage 320m → %d links; demand %.0f units\n",
		inst.LinkCount(), inst.TotalDemand())
	for n, pos := range geo.SBSPos {
		fmt.Printf("  SBS %d at (%.0f, %.0f) covers %d clusters\n",
			n, pos.X, pos.Y, len(inst.LinkedGroups(n)))
	}

	coord, err := core.NewCoordinator(inst, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlgorithm 1: %s (converged=%v, %d sweeps)\n",
		res.Solution, res.Converged, res.Sweeps)
	fmt.Printf("all-backhaul ceiling would cost %.0f → %.1f%% saved\n",
		inst.MaxCost(), 100*(inst.MaxCost()-res.Solution.Cost.Total)/inst.MaxCost())
	for n := 0; n < inst.N; n++ {
		fmt.Printf("SBS %d: caches %v, load %.0f/%.0f\n",
			n, res.Solution.Caching.Contents(n),
			res.Solution.Routing.Load(inst, n), inst.Bandwidth[n])
	}
}
