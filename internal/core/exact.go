package core

import (
	"fmt"

	"edgecache/internal/model"
)

// SolveExact computes the exact optimum of P_n by exhausting every cache
// set of size ≤ C_n and solving the routing knapsack for each. It is
// exponential in F and exists to certify the dual solver's quality in
// tests; callers must keep F small (the solver refuses F > 20).
//
// Unlike Solve, the returned Result is freshly allocated and owned by the
// caller (exhaustive search is never on the hot path).
func (s *Subproblem) SolveExact(yMinus model.Mat) (*Result, error) {
	if s.inst.F > 20 {
		return nil, fmt.Errorf("core: SolveExact limited to F ≤ 20, got %d", s.inst.F)
	}
	if yMinus.U != s.inst.U || yMinus.F != s.inst.F {
		return nil, fmt.Errorf("core: yMinus is %dx%d, want U=%d F=%d",
			yMinus.U, yMinus.F, s.inst.U, s.inst.F)
	}
	caps := make([]float64, len(s.items))
	for i, it := range s.items {
		caps[i] = clamp01(1 - yMinus.At(it.u, it.f))
	}

	capN := s.inst.CacheCap[s.n]
	bestGain := -1.0
	var bestX []bool
	var bestY []float64
	x := make([]bool, s.inst.F)
	for mask := 0; mask < 1<<s.inst.F; mask++ {
		if popcount(mask) > capN {
			continue
		}
		for f := 0; f < s.inst.F; f++ {
			x[f] = mask&(1<<f) != 0
		}
		y, gain := s.RoutingGivenCache(x, caps)
		if gain > bestGain {
			bestGain = gain
			bestX = append([]bool(nil), x...)
			bestY = y
		}
	}
	res := &Result{Cache: bestX, Routing: model.NewMat(s.inst.U, s.inst.F), Gain: bestGain}
	for i, it := range s.items {
		res.Routing.Set(it.u, it.f, bestY[i])
	}
	return res, nil
}

func popcount(v int) int {
	count := 0
	for v != 0 {
		v &= v - 1
		count++
	}
	return count
}

// EvaluateUpload computes the objective contribution of a routing block for
// SBS n against the instance: the gain Σ (d̂_u − d_nu)·λ_uf·y_nuf over
// linked pairs. Used by tests and the experiment harness to compare
// sub-problem solutions without rebuilding full policies.
func EvaluateUpload(inst *model.Instance, n int, routing model.Mat) float64 {
	var gain float64
	for u := 0; u < inst.U; u++ {
		if !inst.Links[n][u] {
			continue
		}
		density := inst.BSCost[u] - inst.EdgeCost[n][u]
		row := routing.Row(u)
		demand := inst.Demand[u]
		for f := range row {
			gain += density * demand[f] * row[f]
		}
	}
	return gain
}
