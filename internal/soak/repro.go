package soak

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"edgecache/internal/chaos"
)

// Repro is a minimized failing soak episode, serializable as a small text
// file: the violated invariants, the scenario knobs that rebuild the exact
// instance, and the minimized fault schedule as a plain -chaos (or
// -proc-chaos) spec string. Everything needed to replay the failure — by
// the soak harness or by hand with edgesim — and nothing else.
type Repro struct {
	// Invariants names the violated invariants (sorted).
	Invariants []string
	// Episode is the failing episode index; Seed its derived seed.
	Episode int
	Seed    int64
	// Scenario knobs (experiments.Scenario subset) rebuilding the
	// instance. Zero values are omitted from the file.
	SBSs, Groups, LinkCount, Videos, CacheCap int
	// Spec is the minimized in-process fault schedule (Schedule.Spec
	// output). Empty for cluster episodes.
	Spec string
	// ProcSpec is the minimized process-fault schedule for cluster
	// episodes (ProcSchedule.Spec output). Empty for in-process episodes.
	ProcSpec string
	// Detail carries the violation messages, one per line, as # comments.
	Detail []string
}

// String renders the repro file body.
func (r Repro) String() string {
	var b strings.Builder
	b.WriteString("# edgecache soak repro — minimized failing fault schedule\n")
	b.WriteString("# replay: go run ./cmd/edgesim -soak -soak-repro <this file>\n")
	for _, d := range r.Detail {
		for _, line := range strings.Split(d, "\n") {
			fmt.Fprintf(&b, "# %s\n", line)
		}
	}
	inv := append([]string(nil), r.Invariants...)
	sort.Strings(inv)
	fmt.Fprintf(&b, "invariants: %s\n", strings.Join(inv, " "))
	fmt.Fprintf(&b, "episode: %d\n", r.Episode)
	fmt.Fprintf(&b, "seed: %d\n", r.Seed)
	for _, kv := range []struct {
		key string
		val int
	}{
		{"sbss", r.SBSs}, {"groups", r.Groups}, {"links", r.LinkCount},
		{"videos", r.Videos}, {"cache", r.CacheCap},
	} {
		if kv.val != 0 {
			fmt.Fprintf(&b, "%s: %d\n", kv.key, kv.val)
		}
	}
	if r.Spec != "" {
		fmt.Fprintf(&b, "spec: %s\n", r.Spec)
	}
	if r.ProcSpec != "" {
		fmt.Fprintf(&b, "proc-spec: %s\n", r.ProcSpec)
	}
	return b.String()
}

// WriteFile persists the repro.
func (r Repro) WriteFile(path string) error {
	return os.WriteFile(path, []byte(r.String()), 0o644)
}

// ParseRepro reads a repro file back. The spec strings are re-parsed
// through chaos.ParseSpec/ParseProcSpec so a corrupted file fails here,
// with the parser's self-diagnosing errors, not at replay time.
func ParseRepro(data string) (Repro, error) {
	var r Repro
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return Repro{}, fmt.Errorf("soak: repro line %d: want key: value, got %q", ln+1, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "invariants":
			r.Invariants = strings.Fields(val)
		case "episode":
			r.Episode, err = strconv.Atoi(val)
		case "seed":
			r.Seed, err = strconv.ParseInt(val, 10, 64)
		case "sbss":
			r.SBSs, err = strconv.Atoi(val)
		case "groups":
			r.Groups, err = strconv.Atoi(val)
		case "links":
			r.LinkCount, err = strconv.Atoi(val)
		case "videos":
			r.Videos, err = strconv.Atoi(val)
		case "cache":
			r.CacheCap, err = strconv.Atoi(val)
		case "spec":
			r.Spec = val
			_, err = chaos.ParseSpec(val)
		case "proc-spec":
			r.ProcSpec = val
			_, err = chaos.ParseProcSpec(val)
		default:
			return Repro{}, fmt.Errorf("soak: repro line %d: unknown key %q", ln+1, key)
		}
		if err != nil {
			return Repro{}, fmt.Errorf("soak: repro line %d (%s): %w", ln+1, key, err)
		}
	}
	return r, nil
}

// ParseReproFile reads and parses a repro file.
func ParseReproFile(path string) (Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, err
	}
	return ParseRepro(string(data))
}
