package lp

import (
	"fmt"
	"math"
)

// MILPOptions tunes the branch-and-bound search.
type MILPOptions struct {
	// MaxNodes bounds the number of explored branch-and-bound nodes.
	// 0 means the default (100000).
	MaxNodes int
	// IntTol is the integrality tolerance: a value within IntTol of an
	// integer is considered integral. 0 means the default (1e-6).
	IntTol float64
	// Gap is the relative optimality gap at which search stops early.
	// 0 means prove optimality exactly (up to tolerances).
	Gap float64
}

func (o MILPOptions) withDefaults() MILPOptions {
	if o.MaxNodes == 0 {
		o.MaxNodes = 100000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// SolveMILP solves p with the Integer flags enforced, by LP-relaxation
// branch and bound (depth-first, most-fractional branching, incumbent
// pruning). It is intended for the repository's small verification
// instances, not for industrial MILPs.
func SolveMILP(p *Problem, opts MILPOptions) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if p.Integer == nil {
		return Solve(p)
	}

	root := p.cloneShallow()
	var incumbent *Solution
	nodes := 0
	worse := func(a, b float64) bool { // is a worse than b for this sense?
		if p.Maximize {
			return a <= b+1e-12
		}
		return a >= b-1e-12
	}

	var visit func(node *Problem) error
	visit = func(node *Problem) error {
		if nodes >= opts.MaxNodes {
			return fmt.Errorf("lp: branch-and-bound node budget (%d) exhausted", opts.MaxNodes)
		}
		nodes++
		rel, err := Solve(node)
		if err != nil {
			return err
		}
		switch rel.Status {
		case Infeasible:
			return nil
		case Unbounded:
			// An unbounded relaxation at the root means the MILP is
			// unbounded or infeasible; bounds added by branching cannot
			// cause it, so surface it.
			return errUnbounded
		case IterLimit:
			return fmt.Errorf("lp: simplex iteration limit inside branch-and-bound")
		}
		if incumbent != nil && worse(rel.Objective, incumbent.Objective) {
			return nil // bound: relaxation cannot beat the incumbent
		}
		if incumbent != nil && opts.Gap > 0 {
			gap := math.Abs(rel.Objective-incumbent.Objective) / (1e-12 + math.Abs(incumbent.Objective))
			if gap <= opts.Gap {
				return nil
			}
		}

		// Find the most fractional integer variable.
		branchVar, bestFrac := -1, opts.IntTol
		for j := 0; j < p.NumVars; j++ {
			if !p.integer(j) {
				continue
			}
			frac := math.Abs(rel.X[j] - math.Round(rel.X[j]))
			if frac > bestFrac {
				bestFrac = frac
				branchVar = j
			}
		}
		if branchVar == -1 {
			// Integral: round off the tolerance and accept as incumbent.
			x := append([]float64(nil), rel.X...)
			obj := 0.0
			for j := range x {
				if p.integer(j) {
					x[j] = math.Round(x[j])
				}
				obj += p.Obj[j] * x[j]
			}
			if incumbent == nil || !worse(obj, incumbent.Objective) {
				incumbent = &Solution{Status: Optimal, X: x, Objective: obj}
			}
			return nil
		}

		v := rel.X[branchVar]
		floorV, ceilV := math.Floor(v), math.Ceil(v)
		lo, hi := node.lower(branchVar), node.upper(branchVar)

		// Down branch: x ≤ floor(v). Skip when it would empty the domain.
		if floorV >= lo {
			down := node.cloneShallow()
			down.SetBounds(branchVar, lo, floorV)
			if err := visit(down); err != nil {
				return err
			}
		}
		// Up branch: x ≥ ceil(v).
		if ceilV <= hi {
			up := node.cloneShallow()
			up.SetBounds(branchVar, ceilV, hi)
			return visit(up)
		}
		return nil
	}

	if err := visit(root); err != nil {
		if err == errUnbounded {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	if incumbent == nil {
		return &Solution{Status: Infeasible}, nil
	}
	return incumbent, nil
}

var errUnbounded = fmt.Errorf("lp: unbounded relaxation")

// cloneShallow copies the problem with fresh bound slices (so branching can
// tighten bounds) while sharing the constraint and objective storage, which
// branch and bound never mutates.
func (p *Problem) cloneShallow() *Problem {
	q := &Problem{
		NumVars:  p.NumVars,
		Obj:      p.Obj,
		Maximize: p.Maximize,
		Cons:     p.Cons,
		Integer:  p.Integer,
	}
	if p.Lower != nil {
		q.Lower = append([]float64(nil), p.Lower...)
	}
	if p.Upper != nil {
		q.Upper = append([]float64(nil), p.Upper...)
	}
	return q
}
