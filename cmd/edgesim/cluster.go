package main

import (
	"context"
	"fmt"
	"os"

	"edgecache/internal/chaos"
	"edgecache/internal/cluster"
	"edgecache/internal/experiments"
	"edgecache/internal/model"
)

// runCluster is the -cluster supervisor mode: load the cell spec, build or
// load each cell's instance, and supervise one multi-process run. The exit
// status is non-zero when any cell failed, so CI gates on it directly.
func runCluster(cellsPath, procSpec, runDir string) error {
	if cellsPath == "" {
		return fmt.Errorf("-cluster requires -cells")
	}
	f, err := os.Open(cellsPath)
	if err != nil {
		return err
	}
	spec, err := model.ReadClusterSpec(f)
	f.Close()
	if err != nil {
		return err
	}
	var procs chaos.ProcSchedule
	if procSpec != "" {
		if procs, err = chaos.ParseProcSpec(procSpec); err != nil {
			return err
		}
	}
	if runDir == "" {
		if runDir, err = os.MkdirTemp("", "edgesim-cluster-"); err != nil {
			return err
		}
	}
	fmt.Printf("cluster: %d cells, run dir %s\n", len(spec.Cells), runDir)

	insts := make([]*model.Instance, len(spec.Cells))
	for i, c := range spec.Cells {
		if insts[i], err = buildCellInstance(c); err != nil {
			return fmt.Errorf("cell %q: %w", c.Name, err)
		}
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	sup, err := cluster.NewSupervisor(cluster.Config{
		Spec:      *spec,
		Instances: insts,
		Command:   []string{exe},
		RunDir:    runDir,
		Proc:      procs,
		Log:       os.Stderr,
	})
	if err != nil {
		return err
	}
	res, runErr := sup.Run(context.Background())
	if res != nil {
		for _, c := range res.Cells {
			if c.Completed {
				fmt.Printf("  %s: converged=%v sweeps=%d cost=%.1f (restarts: bs=%d sbs=%d)\n",
					c.Name, c.Result.Converged, c.Result.Sweeps, c.Result.CostTotal,
					c.BSRestarts, c.SBSRestarts)
				if len(c.Escalated) > 0 {
					fmt.Printf("  %s: permanently down: %v\n", c.Name, c.Escalated)
				}
			} else {
				fmt.Printf("  %s: FAILED: %s\n", c.Name, c.Failure)
			}
		}
		for _, fp := range res.Fired {
			fmt.Printf("  fault fired: %v (cell at sweep %d)\n", fp.Event, fp.AtSweep)
		}
		for _, ue := range res.Unfired {
			fmt.Printf("  fault never triggered: %v\n", ue)
		}
	}
	return runErr
}

// buildCellInstance resolves one cell's instance: an explicit instance
// file wins; otherwise the cell's scenario knobs override the paper
// defaults.
func buildCellInstance(c model.ClusterCell) (*model.Instance, error) {
	if c.Instance != "" {
		f, err := os.Open(c.Instance)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return model.ReadJSON(f)
	}
	sc := experiments.DefaultScenario()
	sc.SBSs = c.SBSs
	if c.Seed != 0 {
		sc.Seed = c.Seed
	}
	if c.Groups > 0 {
		sc.Groups = c.Groups
	}
	if c.Links > 0 {
		sc.LinkCount = c.Links
	}
	if c.Videos > 0 {
		sc.Videos = c.Videos
	}
	if c.CacheCap > 0 {
		sc.CachePerSBS = c.CacheCap
	}
	if c.Bandwidth > 0 {
		sc.Bandwidth = c.Bandwidth
	}
	return sc.Build()
}
