// Package baseline implements the comparison schemes of the paper's
// evaluation (§V) plus verification oracles:
//
//   - PlanLRFU: the paper's baseline — an online replay in which per-SBS
//     caches (LRFU by default; any replacement family via LRFUConfig.Policy)
//     serve hits at the edge and fetch misses over the backhaul, measuring
//     the cost a classical reactive scheme actually pays.
//   - CentralizedMILP: the exact joint optimum computed by mixed-integer
//     programming over internal/lp. Exponential in N·F; used on small
//     instances to certify that Algorithm 1 reaches the global optimum
//     (the paper's Theorem 2).
//   - TopPopular: cache the most demanded contents everywhere (a common
//     femtocaching strawman).
//   - NoCache: serve everything from the BS (the cost ceiling W).
package baseline

import (
	"math/rand"

	"edgecache/internal/cache"
	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/trace"
)

// GreedyRouting computes a feasible routing for a fixed caching policy by
// letting each SBS in index order grab the highest-density residual demand
// it can serve (the same fractional knapsack the paper's routing
// sub-problem uses). It mutates nothing and returns a fresh policy.
func GreedyRouting(inst *model.Instance, caching *model.CachingPolicy) (*model.RoutingPolicy, error) {
	routing := model.NewRoutingPolicy(inst)
	for n := 0; n < inst.N; n++ {
		sub, err := core.NewSubproblem(inst, n, core.SubproblemConfig{DualIters: 1})
		if err != nil {
			return nil, err
		}
		yMinus := routing.AggregateExcept(inst, n)
		block, err := sub.BestRoutingForCache(caching.RowBools(n), yMinus)
		if err != nil {
			return nil, err
		}
		routing.SetSBS(n, block)
	}
	return routing, nil
}

// LRFUConfig parameterizes the online-replay baseline.
type LRFUConfig struct {
	// Policy selects the replacement family ("LRU", "LFU", "FIFO",
	// "LRFU", "LFUDA", "CLOCK"); empty means LRFU, the paper's baseline.
	Policy string
	// Lambda is LRFU's recency/frequency trade-off in [0,1]. The default
	// (0 → 0.1) weighs frequency heavily, which is the regime where LRFU
	// is competitive on skewed video workloads. Other policies ignore it.
	Lambda float64
	// MaxRequests caps the replayed stream length; the demand matrix is
	// scaled down to approximately this many requests before expansion.
	// 0 means the default 20000.
	MaxRequests int
	// Seed drives the stream expansion.
	Seed int64
}

func (c LRFUConfig) withDefaults() LRFUConfig {
	if c.Policy == "" {
		c.Policy = "LRFU"
	}
	if c.Lambda == 0 {
		c.Lambda = 0.1
	}
	if c.MaxRequests == 0 {
		c.MaxRequests = 20000
	}
	return c
}

// LRFUResult is the outcome of the online LRFU replay.
type LRFUResult struct {
	// Snapshot is the end-of-replay cache contents combined with the
	// greedy routing on those caches — a feasible (x, y) pair for
	// inspection and for any evaluation that needs a model.Solution.
	Snapshot *model.Solution
	// OnlineCost is the serving cost measured during the replay itself:
	// cache hits with spare bandwidth are served at the edge, everything
	// else goes over the backhaul. This is the cost the paper's "classical
	// replacement scheme" actually pays in operation, including the misses
	// it suffers while its caches are still converging and the thrash its
	// swapping causes; the figure experiments plot it.
	OnlineCost model.CostBreakdown
	// HitRate is the fraction of replayed requests served at the edge.
	HitRate float64
}

// PlanLRFU runs the paper's LRFU baseline as an online simulation: the
// request trace is replayed in time order; each request is served from the
// cheapest linked SBS that has the content cached and bandwidth left
// (updating that cache's recency/frequency state), and otherwise from the
// BS, in which case one linked SBS admits the content, evicting per LRFU.
//
// This is the operating regime of a classical replacement scheme: no
// global optimization, no foresight. The distributed algorithm and the
// MILP oracle decide caches and routing jointly and in advance, which is
// exactly the advantage the paper's Figs. 3-6 quantify.
func PlanLRFU(inst *model.Instance, cfg LRFUConfig) (*LRFUResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	// Scale the demand matrix so the expanded stream stays tractable;
	// every replayed request then stands for `unit` demand units.
	total := inst.TotalDemand()
	if total <= 0 {
		sol, err := NoCache(inst)
		if err != nil {
			return nil, err
		}
		return &LRFUResult{Snapshot: sol, OnlineCost: sol.Cost}, nil
	}
	scale := 1.0
	if total > float64(cfg.MaxRequests) {
		scale = float64(cfg.MaxRequests) / total
	}
	scaled := make([][]float64, inst.U)
	for u := range scaled {
		scaled[u] = make([]float64, inst.F)
		for f := range scaled[u] {
			scaled[u][f] = inst.Demand[u][f] * scale
		}
	}
	stream, err := trace.Stream(scaled, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}

	caches := make([]cache.Policy, inst.N)
	bandwidthLeft := make([]float64, inst.N)
	for n := 0; n < inst.N; n++ {
		caches[n], err = cache.NewByName(cfg.Policy, inst.CacheCap[n], cfg.Lambda)
		if err != nil {
			return nil, err
		}
		bandwidthLeft[n] = inst.Bandwidth[n]
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var cost model.CostBreakdown
	hits := 0
	// Each replayed request stands for one request of the scaled matrix,
	// i.e. 1/scale demand units of the original instance.
	unit := 1 / scale
	// Precompute each group's linked SBSs for the attachment draw.
	linkedSBSs := make([][]int, inst.U)
	for u := 0; u < inst.U; u++ {
		for n := 0; n < inst.N; n++ {
			if inst.Links[n][u] {
				linkedSBSs[u] = append(linkedSBSs[u], n)
			}
		}
	}
	for _, req := range stream {
		linked := linkedSBSs[req.Group]
		if len(linked) == 0 {
			cost.Backhaul += inst.BSCost[req.Group] * unit
			continue
		}
		// The request attaches to one linked SBS (cell selection is by
		// radio conditions, not by cache contents — a classical scheme has
		// no cache-aware request steering). A cached content with
		// bandwidth to spare is served at the edge; a miss is served over
		// the backhaul and the SBS admits the content, which consumes SBS
		// bandwidth for the fill transfer (the planner-based schemes place
		// caches ahead of the serving window instead, which is exactly the
		// reactive-vs-planned gap the paper's figures quantify).
		attach := linked[rng.Intn(len(linked))]
		if caches[attach].Contains(req.Content) {
			accessAt(caches[attach], req.Content, req.Time)
			if bandwidthLeft[attach] >= unit {
				hits++
				bandwidthLeft[attach] -= unit
				cost.Edge += inst.EdgeCost[attach][req.Group] * unit
				continue
			}
			cost.Backhaul += inst.BSCost[req.Group] * unit
			continue
		}
		cost.Backhaul += inst.BSCost[req.Group] * unit
		if bandwidthLeft[attach] >= unit {
			bandwidthLeft[attach] -= unit
			accessAt(caches[attach], req.Content, req.Time) // fetch and admit
		}
	}
	// The Poisson expansion realizes slightly more or less mass than the
	// instance's total demand; normalize the measured cost to the exact
	// demand mass so it is comparable with the model-evaluated costs.
	if streamMass := float64(len(stream)) * unit; streamMass > 0 {
		factor := total / streamMass
		cost.Edge *= factor
		cost.Backhaul *= factor
	}
	cost.Total = cost.Edge + cost.Backhaul

	caching := model.NewCachingPolicy(inst)
	for n := 0; n < inst.N; n++ {
		for _, f := range caches[n].Contents() {
			caching.Set(n, f, true)
		}
	}
	routing, err := GreedyRouting(inst, caching)
	if err != nil {
		return nil, err
	}
	hitRate := 0.0
	if len(stream) > 0 {
		hitRate = float64(hits) / float64(len(stream))
	}
	return &LRFUResult{
		Snapshot: &model.Solution{
			Caching: caching,
			Routing: routing,
			Cost:    model.TotalServingCost(inst, routing),
		},
		OnlineCost: cost,
		HitRate:    hitRate,
	}, nil
}

// TopPopular caches the C_n globally most demanded contents at every SBS
// and routes greedily.
func TopPopular(inst *model.Instance) (*model.Solution, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	ranked := trace.TopContents(inst.Demand, inst.F)
	caching := model.NewCachingPolicy(inst)
	for n := 0; n < inst.N; n++ {
		limit := inst.CacheCap[n]
		if limit > len(ranked) {
			limit = len(ranked)
		}
		for _, f := range ranked[:limit] {
			caching.Set(n, f, true)
		}
	}
	routing, err := GreedyRouting(inst, caching)
	if err != nil {
		return nil, err
	}
	return &model.Solution{
		Caching: caching,
		Routing: routing,
		Cost:    model.TotalServingCost(inst, routing),
	}, nil
}

// NoCache returns the empty policy whose cost is the ceiling W = MaxCost.
func NoCache(inst *model.Instance) (*model.Solution, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	caching := model.NewCachingPolicy(inst)
	routing := model.NewRoutingPolicy(inst)
	return &model.Solution{
		Caching: caching,
		Routing: routing,
		Cost:    model.TotalServingCost(inst, routing),
	}, nil
}

// accessAt records a reference with a real timestamp when the policy
// supports one (LRFU's CRF decay), falling back to the logical clock.
func accessAt(p cache.Policy, content int, t float64) {
	if lrfu, ok := p.(*cache.LRFU); ok {
		lrfu.AccessAt(content, t)
		return
	}
	p.Access(content)
}
