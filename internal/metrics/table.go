// Package metrics renders experiment results as aligned text tables and
// CSV files — the output layer of the figure-regeneration harness.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Table is a titled grid of cells. Build one with NewTable, fill it with
// AddRow, and render it with Render (human-readable) or WriteCSV.
type Table struct {
	Title   string
	Notes   []string
	columns []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, columns: append([]string(nil), columns...)}
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddRow appends one row. Cells may be strings, fmt.Stringer values,
// integers or floats; floats are rendered with %.4g. The number of cells
// must match the number of columns.
func (t *Table) AddRow(cells ...any) error {
	if len(cells) != len(t.columns) {
		return fmt.Errorf("metrics: row has %d cells, table has %d columns", len(cells), len(t.columns))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
	return nil
}

// MustAddRow is AddRow for construction sites where a mismatch is a
// programming error.
func (t *Table) MustAddRow(cells ...any) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case fmt.Stringer:
		return v.String()
	case float64:
		return strconv.FormatFloat(v, 'g', 5, 64)
	case float32:
		return strconv.FormatFloat(float64(v), 'g', 5, 32)
	case int:
		return strconv.Itoa(v)
	case int64:
		return strconv.FormatInt(v, 10)
	default:
		return fmt.Sprint(v)
	}
}

// Columns returns a copy of the header row.
func (t *Table) Columns() []string { return append([]string(nil), t.columns...) }

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col); it panics on out-of-range
// indices like a slice access would.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("metrics: render failed: %v", err)
	}
	return b.String()
}

// WriteMarkdown writes the table as a GitHub-flavored Markdown table with
// the title as a heading and notes as trailing italics — the format the
// EXPERIMENTS.md result sections use.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, row := range t.rows {
		escaped := make([]string, len(row))
		for i, cell := range row {
			escaped[i] = strings.ReplaceAll(cell, "|", "\\|")
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | ")); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", note); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the header and rows in CSV form (title and notes are
// omitted: CSV output feeds plotting scripts).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
