package main

import (
	"os"
	"path/filepath"
	"testing"
)

// smallArgs shrinks the scenario so a full run stays fast in unit tests.
func smallArgs(extra ...string) []string {
	base := []string{
		"-groups", "8", "-links", "12", "-videos", "12",
		"-cache", "4", "-bandwidth", "300",
	}
	return append(base, extra...)
}

func TestRunBasic(t *testing.T) {
	if err := run(smallArgs()); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPrivacyAndCompare(t *testing.T) {
	if err := run(smallArgs("-epsilon", "0.5", "-compare")); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributed(t *testing.T) {
	if err := run(smallArgs("-distributed")); err != nil {
		t.Fatal(err)
	}
}

func TestRunChaos(t *testing.T) {
	args := smallArgs("-chaos", "seed=3,dup=0.5,crash=1@1+2", "-phase-timeout", "500ms")
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if err := run(smallArgs("-chaos", "drop=oops")); err == nil {
		t.Error("bad chaos spec: want error")
	}
	if err := run(smallArgs("-chaos", "crash=99@1")); err == nil {
		t.Error("out-of-range chaos target: want error")
	}
}

func TestRunWithRestarts(t *testing.T) {
	if err := run(smallArgs("-restarts", "2")); err != nil {
		t.Fatal(err)
	}
}

func TestRunJacobi(t *testing.T) {
	if err := run(smallArgs("-jacobi")); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiRegion(t *testing.T) {
	if err := run(smallArgs("-regions", "2", "-epsilon", "0.5")); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidateFlag(t *testing.T) {
	if err := run(smallArgs("-validate")); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaveAndLoad(t *testing.T) {
	dir := t.TempDir()
	instPath := dir + "/inst.json"
	solPath := dir + "/sol.json"
	if err := run(smallArgs("-save-instance", instPath, "-save-solution", solPath)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load-instance", instPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load-instance", dir + "/missing.json"}); err == nil {
		t.Error("missing file: want error")
	}
}

func TestRunProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	if err := run(smallArgs("-cpuprofile", cpu, "-memprofile", mem, "-trace", tr)); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	if err := run(smallArgs("-cpuprofile", filepath.Join(dir, "no", "dir", "cpu"))); err == nil {
		t.Error("unwritable profile path: want error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag: want error")
	}
	if err := run([]string{"-sbss", "0"}); err == nil {
		t.Error("zero SBSs: want error")
	}
	if err := run(smallArgs("-links", "1000")); err == nil {
		t.Error("too many links: want error")
	}
	if err := run(smallArgs("-regions", "9")); err == nil {
		t.Error("more regions than SBSs: want error")
	}
}
