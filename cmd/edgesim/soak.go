package main

import (
	"context"
	"fmt"
	"os"

	"edgecache/internal/soak"
)

// runSoak drives the randomized chaos soak harness (-soak) or replays a
// previously minimized repro file (-soak-repro).
func runSoak(episodes int, seed int64, clusterEpisodes int, disk bool, reproDir, reproPath string) error {
	ctx := context.Background()
	if reproPath != "" {
		return replayRepro(ctx, disk, reproPath)
	}
	cfg := soak.Config{
		Episodes:        episodes,
		Seed:            seed,
		DiskFaults:      disk,
		ReproDir:        reproDir,
		ClusterEpisodes: clusterEpisodes,
		Log:             os.Stdout,
	}
	if clusterEpisodes > 0 {
		// Supervised episodes re-execute this binary as the agent (the
		// same "-role" sub-entrypoint -cluster uses).
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("soak: resolve agent binary: %w", err)
		}
		cfg.Command = []string{self}
	}
	res, err := soak.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if f := res.Failure; f != nil {
		for _, v := range f.Violations {
			fmt.Printf("violated %s\n", v)
		}
		return fmt.Errorf("soak: episode %d (seed %d) violated %d invariant(s); minimized repro: %s",
			f.Episode, f.Seed, len(f.Violations), f.ReproPath)
	}
	fmt.Printf("soak passed: %d in-process episodes", res.Episodes)
	if res.ClusterEpisodes > 0 {
		fmt.Printf(", %d cluster episodes", res.ClusterEpisodes)
	}
	if disk {
		fmt.Printf("; disk faults injected: %d (%d short writes, %d ENOSPC, %d rename failures, %d torn renames, %d bit rots)",
			res.DiskStats.Total(), res.DiskStats.ShortWrites, res.DiskStats.ENOSPC,
			res.DiskStats.RenameFails, res.DiskStats.TornRenames, res.DiskStats.BitRots)
	}
	fmt.Println()
	return nil
}

// replayRepro re-runs a minimized repro under the same invariant checker.
// Reproducing the failure exits non-zero — the repro documents a bug, so a
// clean exit means it has been fixed.
func replayRepro(ctx context.Context, disk bool, path string) error {
	repro, err := soak.ParseReproFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %s (episode %d, seed %d, spec %q)\n", path, repro.Episode, repro.Seed, repro.Spec)
	violations, err := soak.ReplayRepro(ctx, soak.Config{DiskFaults: disk, Log: os.Stdout}, repro)
	if err != nil {
		return err
	}
	if len(violations) == 0 {
		fmt.Println("repro no longer triggers any invariant violation")
		return nil
	}
	for _, v := range violations {
		fmt.Printf("violated %s\n", v)
	}
	return fmt.Errorf("repro still triggers %d invariant violation(s)", len(violations))
}
