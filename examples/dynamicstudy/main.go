// Dynamic study: how the schemes behave when popularity keeps moving — the
// operating question the paper's static snapshot leaves open. The example
// runs a time-slotted horizon with rank churn and a diurnal load curve,
// comparing per-slot re-planning with Algorithm 1, frozen slot-0 caches,
// and the reactive LRFU baseline, and charts the result in the terminal.
//
//	go run ./examples/dynamicstudy
package main

import (
	"fmt"
	"log"

	"edgecache/internal/core"
	"edgecache/internal/dynamic"
	"edgecache/internal/experiments"
	"edgecache/internal/plot"
	"edgecache/internal/trace"
)

func main() {
	inst, err := experiments.DefaultScenario().Build()
	if err != nil {
		log.Fatal(err)
	}

	const slots = 8
	// Load swings ±30% around the base scenario over the horizon.
	diurnal, err := trace.DiurnalProfile(slots, 0.7, 1.3, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dynamic.RunChurnStudy(inst, dynamic.ChurnConfig{
		Slots:        slots,
		SwapsPerSlot: 4,
		SlotScale:    diurnal,
		Seed:         7,
	}, core.DefaultSubproblemConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d slots, 4 popularity swaps per slot, diurnal load 0.7x–1.3x\n\n", slots)
	series := []plot.Series{{Name: "replan"}, {Name: "static"}, {Name: "LRFU"}}
	for _, s := range res.Slots {
		x := float64(s.Slot + 1)
		series[0].X = append(series[0].X, x)
		series[0].Y = append(series[0].Y, s.Replan)
		series[1].X = append(series[1].X, x)
		series[1].Y = append(series[1].Y, s.Static)
		series[2].X = append(series[2].X, x)
		series[2].Y = append(series[2].Y, s.LRFU)
		fmt.Printf("slot %d: replan %.0f (%d cache updates), static %.0f, LRFU %.0f\n",
			s.Slot+1, s.Replan, s.CacheChanges, s.Static, s.LRFU)
	}
	chart, err := plot.Lines(plot.Config{Title: "\nserving cost per slot", Height: 12}, series...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)
	fmt.Printf("horizon totals: replan %.0f | static %.0f (+%.1f%%) | LRFU %.0f (+%.1f%%)\n",
		res.TotalReplan,
		res.TotalStatic, 100*(res.TotalStatic-res.TotalReplan)/res.TotalReplan,
		res.TotalLRFU, 100*(res.TotalLRFU-res.TotalReplan)/res.TotalReplan)
	fmt.Printf("re-planning refreshed %d cache slots over the horizon\n", res.TotalCacheChanges)
}
