package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec builds a Schedule from a compact comma-separated spec string,
// the format accepted by edgesim's -chaos flag:
//
//	seed=N          RNG seed for all link fault draws (default 1)
//	drop=P          baseline per-message drop probability on every link
//	dup=P           baseline duplication probability
//	reorder=P       baseline adjacent-swap reorder probability
//	delay=DUR       baseline max random extra delivery delay (e.g. 5ms)
//	crash=S@T[+K]   crash SBS S at trigger T; with +K, restart it K sweeps
//	                later (same phase)
//	restart=S@T     restart SBS S on its own (a no-op if S is alive)
//	partition=S@T[+D]  cut SBS S's link at T; with +D, heal it D phases
//	                   later (otherwise the cut is permanent)
//	heal=S@T        heal SBS S's partition on its own
//	linkfault=S@T[:k=v;...]  replace SBS S's link fault configuration at T
//	                (S = * targets every link); k ∈ drop,dup,reorder,delay;
//	                no pairs means clean links, e.g. "linkfault=*@3:drop=0.4;delay=2ms"
//	bscrash=T[+K]   crash the BS coordinator at T; with +K, schedule the
//	                recovery restart (the restart is consumed when the
//	                crash happens — protocol time is frozen while the BS is
//	                down, so K is nominal)
//	bsrestart=T     schedule a BS restart on its own (nominal trigger T)
//
// A trigger T is a sweep number "W", optionally phase-granular as "W.P"
// (fire when the BS announces phase P of sweep W).
//
// Example: "seed=7,drop=0.3,crash=1@2+3" drops 30% of all traffic and
// crashes SBS 1 for sweeps 2..4. "bscrash=2+1,drop=0.3" kills the BS at
// sweep 2 and resumes it from its newest checkpoint.
//
// Events for one target (one SBS, or the BS) must be written in strictly
// increasing protocol-time order, counting the events a directive
// auto-generates (crash=1@2+3 occupies sweeps 2 and 5 for SBS 1). A
// duplicate trigger point or a later directive that jumps back in time
// for the same target is rejected with a *SpecConflictError naming both
// events — the runner fires same-point events in written order, so such a
// spec silently shadows (crashing an already-crashed SBS is a no-op)
// instead of doing what was written.
//
// Schedule.Spec reverses this parse: any parsed (or generator-produced)
// schedule formats back to a string that re-parses to the same schedule,
// which is how soak repro lines stay replayable.
func ParseSpec(spec string) (Schedule, error) {
	s := Schedule{Seed: 1}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return Schedule{}, specItemError(spec, item, errors.New("want key=value"))
		}
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			s.Links.DropProb, err = parseProb(val)
		case "dup":
			s.Links.DupProb, err = parseProb(val)
		case "reorder":
			s.Links.ReorderProb, err = parseProb(val)
		case "delay":
			s.Links.MaxDelay, err = parseDelay(val)
		case "crash":
			var sbs, sweep, phase, dur int
			sbs, sweep, phase, dur, err = parseTarget(val, true)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, Phase: phase, SBS: sbs, Op: OpCrash})
			if dur > 0 {
				s.Events = append(s.Events, Event{Sweep: sweep + dur, Phase: phase, SBS: sbs, Op: OpRestart})
			}
		case "restart":
			var sbs, sweep, phase int
			sbs, sweep, phase, _, err = parseTarget(val, false)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, Phase: phase, SBS: sbs, Op: OpRestart})
		case "partition":
			var sbs, sweep, phase, dur int
			sbs, sweep, phase, dur, err = parseTarget(val, true)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, Phase: phase, SBS: sbs, Op: OpPartition, Phases: dur})
		case "heal":
			var sbs, sweep, phase int
			sbs, sweep, phase, _, err = parseTarget(val, false)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, Phase: phase, SBS: sbs, Op: OpHeal})
		case "linkfault":
			var ev Event
			ev, err = parseLinkFault(val)
			if err != nil {
				break
			}
			s.Events = append(s.Events, ev)
		case "bscrash":
			var sweep, phase, dur int
			sweep, phase, dur, err = parseSweep(val, true)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, Phase: phase, SBS: -1, Op: OpBSCrash})
			if dur > 0 {
				s.Events = append(s.Events, Event{Sweep: sweep + dur, Phase: phase, SBS: -1, Op: OpBSRestart})
			}
		case "bsrestart":
			var sweep, phase int
			sweep, phase, _, err = parseSweep(val, false)
			if err != nil {
				break
			}
			s.Events = append(s.Events, Event{Sweep: sweep, Phase: phase, SBS: -1, Op: OpBSRestart})
		default:
			return Schedule{}, specItemError(spec, item, errors.New("unknown directive"))
		}
		if err != nil {
			return Schedule{}, specItemError(spec, item, err)
		}
	}
	if err := checkSpecConflicts(s.Events); err != nil {
		var conflict *SpecConflictError
		if errors.As(err, &conflict) {
			conflict.Spec = spec
		}
		return Schedule{}, err
	}
	return s, nil
}

// specItemError renders a parse failure with both the offending item and
// the complete spec string, so a failing repro line pasted from a soak
// report is self-diagnosing without hunting for its source.
func specItemError(spec, item string, err error) error {
	return fmt.Errorf("chaos: %q (in spec %q): %w", item, spec, err)
}

// SpecConflictError reports two spec events for the same target whose
// written order is not strictly increasing in protocol time. Prev is the
// earlier directive's event, Next the offending one (chaos.Event for
// ParseSpec, chaos.ProcEvent for ParseProcSpec); Duplicate distinguishes
// an identical trigger point from a jump backwards. Spec, when set, is
// the complete spec string the conflict was found in.
type SpecConflictError struct {
	Prev, Next fmt.Stringer
	Duplicate  bool
	Spec       string
}

// Error renders both conflicting events (and the full spec when known).
func (e *SpecConflictError) Error() string {
	var msg string
	if e.Duplicate {
		msg = fmt.Sprintf("chaos: duplicate trigger for one target: %q repeats the trigger point of earlier %q", e.Next, e.Prev)
	} else {
		msg = fmt.Sprintf("chaos: time-unordered events for one target: %q fires before earlier %q", e.Next, e.Prev)
	}
	if e.Spec != "" {
		msg += fmt.Sprintf(" (in spec %q)", e.Spec)
	}
	return msg
}

// checkSpecConflicts enforces the per-target ordering ParseSpec documents.
// Programmatic schedules are exempt (Schedule.Validate does not call this):
// there the caller controls firing order explicitly and overlapping plans
// can be intentional.
func checkSpecConflicts(events []Event) error {
	last := map[int]Event{}
	for _, ev := range events {
		if prev, ok := last[ev.SBS]; ok {
			if ev.Sweep == prev.Sweep && ev.Phase == prev.Phase {
				return &SpecConflictError{Prev: prev, Next: ev, Duplicate: true}
			}
			if ev.Sweep < prev.Sweep || (ev.Sweep == prev.Sweep && ev.Phase < prev.Phase) {
				return &SpecConflictError{Prev: prev, Next: ev}
			}
		}
		last[ev.SBS] = ev
	}
	return nil
}

// parseProb parses a probability in [0, 1].
func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// parseDelay parses a non-negative link delay duration.
func parseDelay(val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative delay %v", d)
	}
	return d, nil
}

// parseTrigger parses a protocol-time trigger "W" or phase-granular "W.P".
func parseTrigger(tok string) (sweep, phase int, err error) {
	sweepStr, phaseStr, hasPhase := strings.Cut(tok, ".")
	if sweep, err = strconv.Atoi(sweepStr); err != nil {
		return 0, 0, err
	}
	if hasPhase {
		if phase, err = strconv.Atoi(phaseStr); err != nil {
			return 0, 0, err
		}
		if phase < 0 {
			return 0, 0, fmt.Errorf("negative trigger phase %d", phase)
		}
	}
	return sweep, phase, nil
}

// parseSweep parses "T" or (withDur) "T+DUR", T a trigger per parseTrigger.
func parseSweep(val string, withDur bool) (sweep, phase, dur int, err error) {
	when, tail, hasDur := strings.Cut(val, "+")
	if hasDur && !withDur {
		return 0, 0, 0, fmt.Errorf("unexpected duration in %q", val)
	}
	if sweep, phase, err = parseTrigger(when); err != nil {
		return 0, 0, 0, err
	}
	if hasDur {
		if dur, err = strconv.Atoi(tail); err != nil {
			return 0, 0, 0, err
		}
		if dur <= 0 {
			return 0, 0, 0, fmt.Errorf("duration must be positive, got %d", dur)
		}
	}
	return sweep, phase, dur, nil
}

// parseTarget parses "SBS@T" or (withDur) "SBS@T+DUR".
func parseTarget(val string, withDur bool) (sbs, sweep, phase, dur int, err error) {
	target, at, ok := strings.Cut(val, "@")
	if !ok {
		want := "SBS@SWEEP[.PHASE]"
		if withDur {
			want += "[+DUR]"
		}
		return 0, 0, 0, 0, fmt.Errorf("want %s, got %q", want, val)
	}
	if sbs, err = strconv.Atoi(target); err != nil {
		return 0, 0, 0, 0, err
	}
	if sweep, phase, dur, err = parseSweep(at, withDur); err != nil {
		return 0, 0, 0, 0, err
	}
	return sbs, sweep, phase, dur, nil
}

// parseLinkFault parses "S@T[:k=v;...]" where S is an SBS index or "*"
// (every link) and the optional pairs configure the installed faults.
func parseLinkFault(val string) (Event, error) {
	ev := Event{Op: OpLinkFaults}
	target, rest, ok := strings.Cut(val, "@")
	if !ok {
		return Event{}, fmt.Errorf("want SBS@SWEEP[.PHASE][:k=v;...], got %q", val)
	}
	if target == "*" {
		ev.SBS = -1
	} else {
		n, err := strconv.Atoi(target)
		if err != nil {
			return Event{}, err
		}
		ev.SBS = n
	}
	trigger, pairs, hasPairs := strings.Cut(rest, ":")
	var err error
	if ev.Sweep, ev.Phase, err = parseTrigger(trigger); err != nil {
		return Event{}, err
	}
	if !hasPairs {
		return ev, nil
	}
	for _, pair := range strings.Split(pairs, ";") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return Event{}, fmt.Errorf("link fault pair %q: want key=value", pair)
		}
		switch k {
		case "drop":
			ev.Faults.DropProb, err = parseProb(v)
		case "dup":
			ev.Faults.DupProb, err = parseProb(v)
		case "reorder":
			ev.Faults.ReorderProb, err = parseProb(v)
		case "delay":
			ev.Faults.MaxDelay, err = parseDelay(v)
		default:
			return Event{}, fmt.Errorf("unknown link fault key %q", k)
		}
		if err != nil {
			return Event{}, fmt.Errorf("link fault pair %q: %w", pair, err)
		}
	}
	if err := ev.Faults.Validate(); err != nil {
		return Event{}, err
	}
	return ev, nil
}
