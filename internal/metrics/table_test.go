package metrics

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig. 3", "epsilon", "LPPM", "Optimum")
	tb.MustAddRow(0.01, 1234.5, 1100.0)
	tb.MustAddRow("0.1", 1200, int64(1100))
	tb.AddNote("averaged over %d seeds", 5)
	out := tb.String()
	for _, want := range []string{"Fig. 3", "epsilon", "LPPM", "1234.5", "note: averaged over 5 seeds"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
	if got := tb.Cell(1, 0); got != "0.1" {
		t.Errorf("Cell(1,0) = %q, want 0.1", got)
	}
	cols := tb.Columns()
	cols[0] = "mutated"
	if tb.Columns()[0] != "epsilon" {
		t.Error("Columns() exposed internal storage")
	}
}

func TestTableAddRowMismatch(t *testing.T) {
	tb := NewTable("x", "a", "b")
	if err := tb.AddRow(1); err == nil {
		t.Error("want error for cell-count mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow should panic on mismatch")
		}
	}()
	tb.MustAddRow(1, 2, 3)
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Fig. 3", "a", "b")
	tb.MustAddRow(1, "x|y")
	tb.AddNote("n=%d", 3)
	var b strings.Builder
	if err := tb.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{"### Fig. 3", "| a | b |", "|---|---|", "| 1 | x\\|y |", "*n=3*"} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown missing %q:\n%s", want, got)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.MustAddRow(1, "x,y")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\n1,\"x,y\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

type stringerCell struct{}

func (stringerCell) String() string { return "S" }

func TestFormatCellKinds(t *testing.T) {
	tb := NewTable("t", "a")
	tb.MustAddRow(stringerCell{})
	tb.MustAddRow(float32(1.5))
	tb.MustAddRow(uint(7)) // falls through to fmt.Sprint
	if tb.Cell(0, 0) != "S" || tb.Cell(1, 0) != "1.5" || tb.Cell(2, 0) != "7" {
		t.Errorf("cells = %q %q %q", tb.Cell(0, 0), tb.Cell(1, 0), tb.Cell(2, 0))
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.MustAddRow(1)
	if strings.Contains(tb.String(), "---") {
		t.Error("untitled table should not render a rule")
	}
}
