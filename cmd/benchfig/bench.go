package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/model"
)

// BenchResult is one microbenchmark measurement in the -bench-json output.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the JSON document -bench-json writes. The scales mirror
// internal/core's BenchmarkSweep (same instance distribution and seed), so
// numbers are directly comparable with `go test -bench Sweep ./internal/core/`
// runs at any commit.
type BenchReport struct {
	Description string        `json:"description"`
	Results     []BenchResult `json:"results"`
}

// benchInstance draws the benchmark instance exactly like internal/core's
// benchScale (seed 99, ~60% link density, d̂ ≫ d, skewed demand), keeping
// -bench-json numbers comparable with the test-binary benchmarks.
func benchInstance(n, u, f int) *model.Instance {
	rng := rand.New(rand.NewSource(99))
	inst := &model.Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  make([]int, n),
		Bandwidth: make([]float64, n),
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 20
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < n; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.6
			inst.EdgeCost[i][j] = 1 + rng.Float64()*3
		}
		inst.CacheCap[i] = 1 + rng.Intn(f)
		inst.Bandwidth[i] = 5 + rng.Float64()*40
	}
	return inst
}

// runBenchJSON executes the tensor-layer benchmarks in-process and writes
// the measurements as JSON to path ("-" for stdout).
func runBenchJSON(path string) error {
	type scale struct {
		name    string
		n, u, f int
		sweeps  int
	}
	scales := []scale{
		{"Sweep/paper_N3_U30_F50", 3, 30, 50, 4},
		{"Sweep/scaled_N20_U200_F500", 20, 200, 500, 2},
	}

	// Fail on an unwritable destination before spending half a minute
	// measuring.
	var dst *os.File
	if path == "-" {
		dst = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		dst = f
		defer f.Close()
	}

	report := BenchReport{
		Description: "DUA hot-path microbenchmarks (flat-tensor substrate); " +
			"instance distribution matches internal/core BenchmarkSweep (seed 99)",
	}

	for _, sc := range scales {
		fmt.Fprintf(os.Stderr, "benchfig: measuring %s ...\n", sc.name)
		inst := benchInstance(sc.n, sc.u, sc.f)
		cfg := core.DefaultConfig()
		cfg.MaxSweeps = sc.sweeps
		cfg.Gamma = 1e-300 // exhaust the sweep budget: fixed work per op
		coord, err := core.NewCoordinator(inst, cfg)
		if err != nil {
			return fmt.Errorf("bench %s: %w", sc.name, err)
		}
		var runErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Run(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return fmt.Errorf("bench %s: %w", sc.name, runErr)
		}
		report.Results = append(report.Results, toResult(sc.name, res))
	}

	fmt.Fprintln(os.Stderr, "benchfig: measuring SubproblemSolve/warm ...")
	inst := benchInstance(3, 30, 50)
	sub, err := core.NewSubproblem(inst, 0, core.DefaultSubproblemConfig())
	if err != nil {
		return fmt.Errorf("bench SubproblemSolve: %w", err)
	}
	yMinus := inst.NewUFMat()
	if _, err := sub.Solve(yMinus); err != nil { // warm the workspace
		return fmt.Errorf("bench SubproblemSolve: %w", err)
	}
	var solveErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sub.Solve(yMinus); err != nil {
				solveErr = err
				b.FailNow()
			}
		}
	})
	if solveErr != nil {
		return fmt.Errorf("bench SubproblemSolve: %w", solveErr)
	}
	report.Results = append(report.Results, toResult("SubproblemSolve/warm", res))

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if _, err := dst.Write(out); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "benchfig: wrote %s\n", path)
	}
	return nil
}

func toResult(name string, res testing.BenchmarkResult) BenchResult {
	return BenchResult{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}
