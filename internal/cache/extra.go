package cache

import (
	"container/ring"
	"fmt"
)

// LFUDA is LFU with Dynamic Aging (Arlitt et al.), the classic fix for
// LFU's cache pollution: a global age L is added to each admitted or
// re-referenced content's key value, and L is raised to the victim's key
// on every eviction, so stale once-popular contents eventually age out.
// With unit-size contents the key is K_i = C_i + L (C_i the reference
// count since admission).
type LFUDA struct {
	capacity int
	age      float64
	clock    int64
	items    map[int]*lfudaEntry
}

type lfudaEntry struct {
	key      float64
	lastUsed int64
}

// NewLFUDA returns an empty LFUDA cache.
func NewLFUDA(capacity int) (*LFUDA, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: capacity must be non-negative, got %d", capacity)
	}
	return &LFUDA{capacity: capacity, items: make(map[int]*lfudaEntry)}, nil
}

// Access implements Policy.
func (c *LFUDA) Access(content int) bool {
	c.clock++
	if e, ok := c.items[content]; ok {
		e.key++ // one more reference
		e.lastUsed = c.clock
		return true
	}
	if c.capacity == 0 {
		return false
	}
	if len(c.items) >= c.capacity {
		victim, best := -1, &lfudaEntry{key: 1 << 62, lastUsed: 1 << 62}
		for k, e := range c.items {
			if e.key < best.key || (e.key == best.key && e.lastUsed < best.lastUsed) { //edgecache:lint-ignore floateq LFUDA keys are sums of integer costs and ages; equal keys are bit-identical
				victim, best = k, e
			}
		}
		c.age = best.key // dynamic aging: L ← K_victim
		delete(c.items, victim)
	}
	c.items[content] = &lfudaEntry{key: c.age + 1, lastUsed: c.clock}
	return false
}

// Contains implements Policy.
func (c *LFUDA) Contains(content int) bool { _, ok := c.items[content]; return ok }

// Contents implements Policy.
func (c *LFUDA) Contents() []int { return sortedKeys(c.items) }

// Len implements Policy.
func (c *LFUDA) Len() int { return len(c.items) }

// Cap implements Policy.
func (c *LFUDA) Cap() int { return c.capacity }

// Name implements Policy.
func (c *LFUDA) Name() string { return "LFUDA" }

// Clock is the second-chance (CLOCK) approximation of LRU: contents sit on
// a ring with a reference bit; the hand sweeps, clearing bits, and evicts
// the first unreferenced content it meets.
type Clock struct {
	capacity int
	hand     *ring.Ring
	items    map[int]*clockEntry
}

type clockEntry struct {
	node       *ring.Ring
	referenced bool
}

// NewClock returns an empty CLOCK cache.
func NewClock(capacity int) (*Clock, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: capacity must be non-negative, got %d", capacity)
	}
	return &Clock{capacity: capacity, items: make(map[int]*clockEntry)}, nil
}

// Access implements Policy.
func (c *Clock) Access(content int) bool {
	if e, ok := c.items[content]; ok {
		e.referenced = true
		return true
	}
	if c.capacity == 0 {
		return false
	}
	if len(c.items) < c.capacity {
		node := ring.New(1)
		node.Value = content
		if c.hand == nil {
			c.hand = node
		} else {
			c.hand.Prev().Link(node) // insert behind the hand
		}
		c.items[content] = &clockEntry{node: node}
		return false
	}
	// Sweep: clear reference bits until an unreferenced victim appears.
	for {
		victim := c.hand.Value.(int)
		e := c.items[victim]
		if !e.referenced {
			delete(c.items, victim)
			e.node.Value = content
			c.items[content] = &clockEntry{node: e.node}
			c.hand = e.node.Next()
			return false
		}
		e.referenced = false
		c.hand = c.hand.Next()
	}
}

// Contains implements Policy.
func (c *Clock) Contains(content int) bool { _, ok := c.items[content]; return ok }

// Contents implements Policy.
func (c *Clock) Contents() []int { return sortedKeys(c.items) }

// Len implements Policy.
func (c *Clock) Len() int { return len(c.items) }

// Cap implements Policy.
func (c *Clock) Cap() int { return c.capacity }

// Name implements Policy.
func (c *Clock) Name() string { return "CLOCK" }

// NewByName constructs a policy by its canonical name; the online-replay
// baseline uses it to compare replacement families. lambda only affects
// LRFU.
func NewByName(name string, capacity int, lambda float64) (Policy, error) {
	switch name {
	case "LRU":
		return NewLRU(capacity)
	case "LFU":
		return NewLFU(capacity)
	case "FIFO":
		return NewFIFO(capacity)
	case "LRFU":
		return NewLRFU(capacity, lambda)
	case "LFUDA":
		return NewLFUDA(capacity)
	case "CLOCK":
		return NewClock(capacity)
	default:
		return nil, fmt.Errorf("cache: unknown policy %q", name)
	}
}

// PolicyNames lists the canonical policy names NewByName accepts.
func PolicyNames() []string {
	return []string{"LRU", "LFU", "FIFO", "LRFU", "LFUDA", "CLOCK"}
}
