package attack

import (
	"math/rand"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/model"
)

func randomInstance(rng *rand.Rand, n, u, f int) *model.Instance {
	inst := &model.Instance{
		N: n, U: u, F: f,
		Demand:    make([][]float64, u),
		Links:     make([][]bool, n),
		CacheCap:  make([]int, n),
		Bandwidth: make([]float64, n),
		EdgeCost:  make([][]float64, n),
		BSCost:    make([]float64, u),
	}
	for i := 0; i < u; i++ {
		inst.Demand[i] = make([]float64, f)
		for j := 0; j < f; j++ {
			if rng.Float64() < 0.7 {
				inst.Demand[i][j] = rng.Float64() * 20
			}
		}
		inst.BSCost[i] = 100 + rng.Float64()*50
	}
	for i := 0; i < n; i++ {
		inst.Links[i] = make([]bool, u)
		inst.EdgeCost[i] = make([]float64, u)
		for j := 0; j < u; j++ {
			inst.Links[i][j] = rng.Float64() < 0.6
			inst.EdgeCost[i][j] = 1
		}
		inst.CacheCap[i] = 1 + rng.Intn(f/2+1)
		inst.Bandwidth[i] = 10 + rng.Float64()*40
	}
	return inst
}

// TestReconstructionExactWithoutLPPM is the headline privacy demonstration:
// an observer of the broadcast channel recovers every SBS's full routing
// policy exactly when no privacy mechanism runs.
func TestReconstructionExactWithoutLPPM(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		inst := randomInstance(rng, 3, 6, 8)
		_, obs, truth, err := RunWithObserver(inst, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sweeps := obs.CompleteSweeps()
		if len(sweeps) == 0 {
			t.Fatal("no complete sweeps captured")
		}
		last := sweeps[len(sweeps)-1]
		recovered, err := obs.Reconstruct(last)
		if err != nil {
			t.Fatal(err)
		}
		truthPolicy, err := truth.Truth(last)
		if err != nil {
			t.Fatal(err)
		}
		errRate, err := ReconstructionError(inst, truthPolicy, recovered)
		if err != nil {
			t.Fatal(err)
		}
		if errRate > 1e-9 {
			t.Errorf("trial %d: reconstruction error %v without LPPM, want exact recovery", trial, errRate)
		}
	}
}

// TestLPPMDegradesReconstruction: with LPPM on, the recovered policies
// move away from the true ones, and more noise (smaller ε) hurts the
// attacker more.
func TestLPPMDegradesReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	inst := randomInstance(rng, 3, 6, 8)

	measure := func(eps float64) float64 {
		cfg := core.DefaultConfig()
		cfg.MaxSweeps = 8
		cfg.Privacy = &core.PrivacyConfig{
			Epsilon: eps, Delta: 0.5, Rng: rand.New(rand.NewSource(63)),
		}
		_, obs, truth, err := RunWithObserver(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sweeps := obs.CompleteSweeps()
		last := sweeps[len(sweeps)-1]
		recovered, err := obs.Reconstruct(last)
		if err != nil {
			t.Fatal(err)
		}
		truthPolicy, err := truth.Truth(last)
		if err != nil {
			t.Fatal(err)
		}
		e, err := ReconstructionError(inst, truthPolicy, recovered)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	tight := measure(0.01)
	loose := measure(100)
	if tight < 0.02 {
		t.Errorf("reconstruction error at ε=0.01 is %v — LPPM provided no protection", tight)
	}
	if tight <= loose {
		t.Errorf("error at ε=0.01 (%v) should exceed error at ε=100 (%v)", tight, loose)
	}
}

// TestFirstSweepReconstruction: the leak is immediate — the attacker does
// not need to wait for convergence to recover SBSs 0..N−2 exactly.
func TestFirstSweepReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	inst := randomInstance(rng, 3, 6, 8)
	_, obs, truth, err := RunWithObserver(inst, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := obs.ReconstructFirstSweep()
	if err != nil {
		t.Fatal(err)
	}
	truthPolicy, err := truth.Truth(0)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < inst.N-1; n++ {
		for u := 0; u < inst.U; u++ {
			if !inst.Links[n][u] {
				continue
			}
			for f := 0; f < inst.F; f++ {
				diff := truthPolicy.At(n, u, f) - recovered[n][u][f]
				if diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("SBS %d (%d,%d): recovered %v, truth %v",
						n, u, f, recovered[n][u][f], truthPolicy.At(n, u, f))
				}
			}
		}
	}
	// Single-SBS and incomplete observers fail cleanly.
	single := NewSweepObserver(1)
	single.Tap(0, 0, [][]float64{{0}})
	if _, err := single.ReconstructFirstSweep(); err == nil {
		t.Error("single SBS: want error")
	}
	empty := NewSweepObserver(2)
	if _, err := empty.ReconstructFirstSweep(); err == nil {
		t.Error("no captures: want error")
	}
}

func TestObserverBookkeeping(t *testing.T) {
	obs := NewSweepObserver(2)
	if _, err := obs.Reconstruct(0); err == nil {
		t.Error("empty observer: want error")
	}
	obs.Tap(0, 0, [][]float64{{1}})
	if got := obs.CompleteSweeps(); len(got) != 0 {
		t.Errorf("incomplete sweep listed: %v", got)
	}
	obs.Tap(0, 1, [][]float64{{2}})
	if got := obs.CompleteSweeps(); len(got) != 1 || got[0] != 0 {
		t.Errorf("CompleteSweeps = %v, want [0]", got)
	}
	// N=1 observer cannot reconstruct.
	single := NewSweepObserver(1)
	single.Tap(0, 0, [][]float64{{0}})
	if _, err := single.Reconstruct(0); err == nil {
		t.Error("single-SBS reconstruction: want error")
	}
	// Out-of-order phases are tolerated via the nil guard.
	ooo := NewSweepObserver(2)
	ooo.Tap(0, 1, [][]float64{{1}})
	if _, err := ooo.Reconstruct(0); err == nil {
		t.Error("sweep with missing phase: want error")
	}
}

func TestReconstructKnownValues(t *testing.T) {
	// Hand-built converged sweep: y0 = [[0.2]], y1 = [[0.5]], y2 = [[0.3]].
	// B_n = Y − y_n with Y = 1.0.
	obs := NewSweepObserver(3)
	obs.Tap(0, 0, [][]float64{{0.8}})
	obs.Tap(0, 1, [][]float64{{0.5}})
	obs.Tap(0, 2, [][]float64{{0.7}})
	recovered, err := obs.Reconstruct(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.5, 0.3}
	for n, w := range want {
		if diff := recovered[n][0][0] - w; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("recovered[%d] = %v, want %v", n, recovered[n][0][0], w)
		}
	}
}

func TestReconstructionErrorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	inst := randomInstance(rng, 2, 3, 4)
	y := model.NewRoutingPolicy(inst)
	if _, err := ReconstructionError(inst, y, make([][][]float64, 1)); err == nil {
		t.Error("wrong SBS count: want error")
	}
	// Zero-mass truth with zero-recovery is a perfect (trivial) match.
	zero := make([][][]float64, inst.N)
	for n := range zero {
		zero[n] = inst.NewZeroMatrix()
	}
	e, err := ReconstructionError(inst, y, zero)
	if err != nil || e != 0 {
		t.Errorf("zero case: e=%v err=%v", e, err)
	}
}

func TestRunWithObserverRejectsRestarts(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	inst := randomInstance(rng, 2, 3, 4)
	cfg := core.DefaultConfig()
	cfg.Restarts = 2
	if _, _, _, err := RunWithObserver(inst, cfg); err == nil {
		t.Error("restarts: want error")
	}
}
