package soak

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edgecache/internal/chaos"
	"edgecache/internal/cluster"
)

// TestMain doubles as the cluster agent binary, exactly like the cluster
// package's own suite: the soak's supervised episodes launch this test
// executable with "-role ..." as the first argument.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "-role" {
		if err := cluster.AgentMain(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "agent:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestSoakCleanPass runs a small soak — disk drills included — and expects
// every invariant to hold: the generator only emits schedules the tuned
// protocol is designed to survive, so a failure here is a real regression
// in either the protocol or the harness.
func TestSoakCleanPass(t *testing.T) {
	res, err := Run(testCtx(t), Config{
		Episodes:   2,
		Seed:       1,
		DiskFaults: true,
		ReproDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		t.Fatalf("soak failed: %+v (repro %s)", res.Failure.Violations, res.Failure.ReproPath)
	}
	if res.Episodes != 2 {
		t.Errorf("episodes passed = %d, want 2", res.Episodes)
	}
}

// linkFaultSeed finds a base seed whose FIRST episode schedule contains a
// link-fault event, replicating the runner's derivation (episode 0's
// schedule seed is the base seed itself, on the default 3-SBS scenario).
// Deterministic: the generator is a pure function of the seed.
func linkFaultSeed(t *testing.T) int64 {
	t.Helper()
	for seed := int64(1); seed <= 200; seed++ {
		sched, err := chaos.RandomSchedule(chaos.RandomScheduleConfig{Seed: seed, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range sched.Events {
			if ev.Op == chaos.OpLinkFaults {
				return seed
			}
		}
	}
	t.Fatal("no seed in [1,200] generates a link-fault event; generator weights changed?")
	return 0
}

// TestSoakInjectedInvariantShrinksAndReproduces is the harness acceptance:
// a deliberately broken invariant ("any schedule containing a link fault
// fails") must produce a ddmin-minimized repro — a single link-fault event
// — whose file re-parses and re-triggers the same invariant on replay.
func TestSoakInjectedInvariantShrinksAndReproduces(t *testing.T) {
	seed := linkFaultSeed(t)
	reproDir := t.TempDir()
	injected := func(ep *Episode) []Violation {
		for _, ev := range ep.Schedule.Events {
			if ev.Op == chaos.OpLinkFaults {
				return []Violation{{"injected", fmt.Sprintf("schedule contains link fault %s", ev)}}
			}
		}
		return nil
	}
	cfg := Config{
		Episodes:     1,
		Seed:         seed,
		ShrinkRuns:   30,
		ReproDir:     reproDir,
		CheckEpisode: injected,
	}
	res, err := Run(testCtx(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("injected invariant did not fail the soak")
	}
	f := res.Failure
	if len(f.Violations) == 0 || f.Violations[0].Invariant != "injected" {
		t.Fatalf("violations = %+v, want the injected invariant", f.Violations)
	}

	// ddmin must strip every event except one link fault: any subset
	// containing a link fault is interesting, so the 1-minimal result is
	// a single event.
	if len(f.Minimized.Events) != 1 || f.Minimized.Events[0].Op != chaos.OpLinkFaults {
		t.Fatalf("minimized = %s (%d events), want exactly one link fault",
			f.Minimized.Spec(), len(f.Minimized.Events))
	}
	if len(f.Schedule.Events) <= 1 {
		t.Fatalf("original schedule had %d events; the shrink proved nothing", len(f.Schedule.Events))
	}
	if f.ShrinkRuns == 0 || f.ShrinkRuns > cfg.ShrinkRuns {
		t.Errorf("shrink runs = %d, want in (0, %d]", f.ShrinkRuns, cfg.ShrinkRuns)
	}

	// The repro file must exist, re-parse, and carry the minimized spec.
	if filepath.Dir(f.ReproPath) != reproDir {
		t.Errorf("repro written to %s, want dir %s", f.ReproPath, reproDir)
	}
	repro, err := ParseReproFile(f.ReproPath)
	if err != nil {
		t.Fatalf("repro does not re-parse: %v", err)
	}
	if repro.Spec != f.Minimized.Spec() {
		t.Errorf("repro spec %q != minimized %q", repro.Spec, f.Minimized.Spec())
	}
	if len(repro.Invariants) != 1 || repro.Invariants[0] != "injected" {
		t.Errorf("repro invariants = %v, want [injected]", repro.Invariants)
	}

	// Replaying the repro re-triggers the same invariant, deterministically.
	for round := 0; round < 2; round++ {
		violations, err := ReplayRepro(testCtx(t), Config{CheckEpisode: injected}, repro)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, v := range violations {
			if v.Invariant == "injected" {
				found = true
			}
		}
		if !found {
			t.Fatalf("replay %d: violations = %v, injected invariant did not re-trigger", round, violations)
		}
	}
}

// TestSoakDeterministic pins that the same seed replays the same episode
// schedules: two runs observe identical specs through the episode hook.
func TestSoakDeterministic(t *testing.T) {
	specs := func() []string {
		var out []string
		_, err := Run(testCtx(t), Config{
			Episodes: 2,
			Seed:     42,
			ReproDir: t.TempDir(),
			CheckEpisode: func(ep *Episode) []Violation {
				out = append(out, ep.Schedule.Spec())
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := specs(), specs()
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Errorf("schedules diverged across identical runs:\n%v\n%v", a, b)
	}
}

// TestSoakClusterRequiresCommand pins the fast-fail for a cluster soak
// with no agent binary configured.
func TestSoakClusterRequiresCommand(t *testing.T) {
	_, err := Run(testCtx(t), Config{ClusterEpisodes: 1})
	if err == nil || !strings.Contains(err.Error(), "Command") {
		t.Fatalf("err = %v, want the Command requirement", err)
	}
}

// TestSoakClusterEpisodeSmoke runs one supervised multi-process episode
// under a randomized process-fault schedule.
func TestSoakClusterEpisodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped in -short")
	}
	res, err := Run(testCtx(t), Config{
		Episodes:        1,
		Seed:            7,
		ClusterEpisodes: 1,
		Command:         []string{os.Args[0]},
		ReproDir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		t.Fatalf("cluster soak failed: %+v (repro %s)", res.Failure.Violations, res.Failure.ReproPath)
	}
	if res.ClusterEpisodes != 1 {
		t.Errorf("cluster episodes passed = %d, want 1", res.ClusterEpisodes)
	}
}
