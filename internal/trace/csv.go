package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// LoadViewsCSV reads a view-count vector from CSV in the format tracegen
// emits (`rank,views` header followed by one row per content). It lets a
// user substitute a real trending trace for the synthetic one: feed the
// result into DemandMatrix, or set Scenario.CustomViews.
//
// Rows must be in rank order starting at 1; views must be non-negative.
func LoadViewsCSV(r io.Reader) ([]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read views CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("trace: views CSV needs a header and at least one row")
	}
	if records[0][0] != "rank" || records[0][1] != "views" {
		return nil, fmt.Errorf("trace: unexpected header %v, want [rank views]", records[0])
	}
	views := make([]float64, 0, len(records)-1)
	for i, rec := range records[1:] {
		rank, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d rank %q: %w", i+1, rec[0], err)
		}
		if rank != i+1 {
			return nil, fmt.Errorf("trace: row %d has rank %d, want %d (rows must be rank-ordered)", i+1, rank, i+1)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d views %q: %w", i+1, rec[1], err)
		}
		if v < 0 {
			return nil, fmt.Errorf("trace: row %d has negative views %v", i+1, v)
		}
		views = append(views, v)
	}
	return views, nil
}
