package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame hardens the TCP wire format: arbitrary inbound bytes must
// produce an error or a valid message, never a panic or an unbounded
// allocation. Run with `go test -fuzz=FuzzReadFrame ./internal/transport`.
func FuzzReadFrame(f *testing.F) {
	valid, err := encodeFrame(Message{Type: MsgPhaseStart, Sweep: 1, Payload: []byte("x")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:2])                      // truncated header
	f.Add(valid[:len(valid)-1])           // truncated body
	f.Add([]byte{})                       // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length prefix
	f.Add(append(valid[:4], 0xde, 0xad))  // valid length, garbage body
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, maxFrameSize+1)
	f.Add(huge) // over-limit length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if msg.Type == 0 {
			t.Fatal("readFrame returned a zero-type message without error")
		}
		// A decoded message must survive re-encoding.
		if _, err := encodeFrame(msg); err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
	})
}

// FuzzDecodePayload hardens the payload codec used by both transports.
func FuzzDecodePayload(f *testing.F) {
	agg, err := EncodePayload(AggregateAnnounce{YMinus: [][]float64{{0.5, 0}, {1, 0.25}}})
	if err != nil {
		f.Fatal(err)
	}
	up, err := EncodePayload(PolicyUpload{Cache: []bool{true}, Routing: [][]float64{{0.5}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(agg)
	f.Add(up)
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var a AggregateAnnounce
		_ = DecodePayload(data, &a) // must not panic
		var p PolicyUpload
		_ = DecodePayload(data, &p) // must not panic
	})
}
