// Package floats provides the epsilon-comparison helpers the edgelint
// floateq analyzer steers float64 code onto. Exact `==`/`!=` between
// computed float64 values is almost always a bug (two mathematically equal
// expressions rarely share a bit pattern after independent rounding), so
// comparisons of computed values go through Eq/Near/LeqSlack instead; the
// rare intentionally-exact comparison (sort tie-breaks, bit-pattern
// checks) carries an //edgecache:lint-ignore floateq directive with a
// written reason.
//
// The package is dependency-free so every layer — model, core, sim — can
// import it.
package floats

import "math"

// Eps is the default absolute/relative tolerance. The solver's interior
// quantities (costs, routing fractions, multipliers) live within a few
// orders of magnitude of 1, where 1e-9 comfortably exceeds accumulated
// rounding error while staying far below any meaningful difference.
const Eps = 1e-9

// Eq reports whether a and b are equal within Eps, absolutely for small
// values and relatively for large ones: |a−b| ≤ Eps·max(1, |a|, |b|).
//
//edgecache:noalloc
func Eq(a, b float64) bool { return Near(a, b, Eps) }

// Near reports |a−b| ≤ eps·max(1, |a|, |b|). Infinities of the same sign
// compare equal; any comparison involving NaN is false.
//
//edgecache:noalloc
func Near(a, b, eps float64) bool {
	if a == b { //edgecache:lint-ignore floateq the fast path and the Inf==Inf case are exact by design
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 1) {
		// Opposite infinities, or finite vs infinite: the relative-scale
		// bound would be infinite too and wave the comparison through.
		return false
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return diff <= eps*scale
}

// LeqSlack reports a ≤ b + slack, the one-sided check used for feasibility
// slack (capacity, bandwidth and box constraints may overshoot by rounding
// but never by more than slack).
//
//edgecache:noalloc
func LeqSlack(a, b, slack float64) bool { return a <= b+slack }
