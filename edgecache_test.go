package edgecache

import (
	"math"
	"testing"
)

func TestFacadeSolve(t *testing.T) {
	sc := DefaultScenario()
	sc.Groups = 10
	sc.Videos = 15
	sc.LinkCount = 14
	sc.CachePerSBS = 4
	sc.TargetDemand = 1500
	sc.Bandwidth = 400
	inst, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("facade solve did not converge")
	}
	if vs := CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible: %v", vs)
	}
	cb := TotalServingCost(inst, res.Solution.Routing)
	if math.Abs(cb.Total-res.Solution.Cost.Total) > 1e-9 {
		t.Errorf("cost mismatch: %v vs %v", cb.Total, res.Solution.Cost.Total)
	}
	if cb.Total >= inst.MaxCost() {
		t.Error("solve produced no savings over all-backhaul")
	}
}

func TestFacadeSolveWithPrivacy(t *testing.T) {
	sc := DefaultScenario()
	sc.Groups = 10
	sc.Videos = 15
	sc.LinkCount = 14
	sc.CachePerSBS = 4
	sc.TargetDemand = 1500
	sc.Bandwidth = 400
	inst, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	var acct Accountant
	res, err := SolveWithPrivacy(inst, PrivacyParams{
		Epsilon: 0.1, Delta: 0.5, Seed: 42, Accountant: &acct,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckFeasibility(inst, res.Solution.Caching, res.Solution.Routing); len(vs) != 0 {
		t.Fatalf("infeasible: %v", vs)
	}
	if res.Solution.Cost.Total < clean.Solution.Cost.Total-1e-6 {
		t.Errorf("private cost %v below clean cost %v", res.Solution.Cost.Total, clean.Solution.Cost.Total)
	}
	if acct.Count() == 0 {
		t.Error("accountant recorded nothing")
	}
	if _, err := SolveWithPrivacy(inst, PrivacyParams{Epsilon: -1}); err == nil {
		t.Error("invalid privacy params: want error")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := Solve(&Instance{N: 0}); err == nil {
		t.Error("invalid instance: want error")
	}
}
